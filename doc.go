// Package repro is a from-scratch Go reproduction of "Finding the Dwarf:
// Recovering Precise Types from WebAssembly Binaries" (Lehmann & Pradel,
// PLDI 2022), the SnowWhite system.
//
// The implementation lives under internal/ (one package per subsystem,
// see DESIGN.md for the inventory), runnable examples under examples/,
// command-line tools under cmd/, and the benchmarks that regenerate every
// table and figure of the paper's evaluation in bench_test.go at this
// root.
package repro
