// Compile-and-inspect exercises the toolchain substrates without any
// training: it compiles a C translation unit with structs, classes,
// typedefs, enums, and function pointers to WebAssembly, prints the module
// layout and disassembly, dumps the embedded DWARF, and shows how each
// function signature is expressed in all four type-language variants of
// the paper (Section 3.7).
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

const source = `
typedef unsigned long size_t;
typedef struct _IO_FILE { int fd; int flags; long pos; } FILE;
typedef int (*compare_fn)(const void *a, const void *b);

extern int fgetc(FILE *stream);
extern unsigned long strlen(const char *s);

struct vec3 { double x; double y; double z; };
class Matrix { int rows; int cols; double *data; };
enum axis { AXIS_X, AXIS_Y, AXIS_Z };

double vec3_get(const struct vec3 *v, enum axis a) {
	if (a == AXIS_X) { return v->x; }
	if (a == AXIS_Y) { return v->y; }
	return v->z;
}

size_t count_lines(FILE *f) {
	size_t n = 0;
	int c = fgetc(f);
	while (c >= 0) {
		if (c == '\n') { n = n + 1; }
		c = fgetc(f);
	}
	return n;
}

double matrix_at(class Matrix *m, int i, int j) {
	if (m == NULL || m->data == NULL) { return 0.0; }
	return m->data[i * m->cols + j];
}

int dispatch(compare_fn cmp, const char *key) {
	if (cmp != NULL) { return (int) strlen(key); }
	return -1;
}
`

func main() {
	log.SetFlags(0)
	obj, err := cc.Compile(source, cc.Options{FileName: "inspect.c", Debug: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary: %d bytes, %d functions, %d imports, %d custom sections\n\n",
		len(obj.Binary), len(obj.Module.Funcs), obj.Module.NumImportedFuncs(), len(obj.Module.Customs))

	fmt.Println("=== Module disassembly ===")
	fmt.Println(wasm.Disassemble(obj.Module))

	secs, err := dwarf.Extract(obj.Module)
	if err != nil {
		log.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		log.Fatal(err)
	}

	// Common names for L_SW: pretend the well-known ones are common.
	common := func(n string) bool {
		switch n {
		case "size_t", "FILE", "compare_fn":
			return true
		}
		return false
	}

	fmt.Println("=== Signatures in each type-language variant ===")
	for _, sub := range cu.FindAll(dwarf.TagSubprogram) {
		fmt.Printf("\n%s:\n", sub.Name())
		show := func(what string, die *dwarf.DIE) {
			master := typelang.FromDWARF(die, typelang.AllNames())
			fmt.Printf("  %-8s", what)
			for _, v := range typelang.Variants() {
				fmt.Printf("  [%s] %s", v, core.LabelString(v.Apply(master, common)))
			}
			fmt.Println()
		}
		for i, p := range sub.FindAll(dwarf.TagFormalParameter) {
			show(fmt.Sprintf("param%d", i), p.TypeRef())
		}
		if rt := sub.TypeRef(); rt != nil {
			show("return", rt)
		}
	}
}
