// Quickstart reproduces the paper's Figure 1 end to end: it compiles the
// motivating C function to WebAssembly with DWARF, shows the binary and
// the debug info, trains a small SnowWhite model on a synthetic corpus,
// strips the binary, and recovers the parameter's high-level type —
// ideally `pointer primitive float 64`, the paper's Figure 1d.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

const source = `
extern int printf(const char *fmt, ...);

double DEFAULT_DENSE = 10.0;
int DEFAULT_AGGRESSIVE = 1;

void amd_control(double Control[]) {
	double alpha;
	int aggressive;
	if (Control != (double *) NULL) {
		alpha = Control[0];
		aggressive = Control[1] != 0;
	} else {
		alpha = DEFAULT_DENSE;
		aggressive = DEFAULT_AGGRESSIVE;
	}
	if (alpha < 0) {
		printf("no rows treated as dense");
	}
	if (aggressive) { printf("aggressive"); }
}
`

func main() {
	log.SetFlags(0)

	// (a) Compile the source (Figure 1a) with debug info, like -g.
	obj, err := cc.Compile(source, cc.Options{FileName: "amd_control.c", Debug: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1b: compiled WebAssembly ===")
	text, err := wasm.DisassembleFunction(obj.Module, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)

	// (c) The DWARF debugging information.
	secs, err := dwarf.Extract(obj.Module)
	if err != nil {
		log.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1c: DWARF debugging information ===")
	fmt.Println(cu.Dump())

	// (d) The ground-truth high-level type.
	sub := cu.FindAll(dwarf.TagSubprogram)[0]
	param := sub.FindAll(dwarf.TagFormalParameter)[0]
	truth := typelang.FromDWARF(param.TypeRef(), typelang.AllNames())
	fmt.Printf("=== Figure 1d: ground-truth type of %q ===\n%s\n\n", param.Name(), truth)

	// Train a small model (this is the slow part: ~a minute on a laptop).
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = 60
	cfg.Model.Epochs = 3
	cfg.Split.Valid, cfg.Split.Test = 0.05, 0.05
	fmt.Println("=== Training SnowWhite on a synthetic corpus ===")
	d, err := core.BuildDataset(cfg, func(s string) { fmt.Fprintln(os.Stderr, " ", s) })
	if err != nil {
		log.Fatal(err)
	}
	_, trained := d.RunTask(core.Task{Variant: typelang.VariantLSW}, func(s string) { fmt.Fprintln(os.Stderr, " ", s) })

	// Strip the binary — this is what a reverse engineer would have.
	dwarf.Strip(obj.Module)
	stripped, _, err := wasm.Encode(obj.Module)
	if err != nil {
		log.Fatal(err)
	}
	p := &core.Predictor{Param: trained, Opts: cfg.Extract}
	preds, err := p.PredictBinary(stripped, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Top-5 predictions for parameter `Control` (stripped binary) ===")
	for i, tp := range preds["param0"] {
		marker := ""
		if tp.Text == truth.String() {
			marker = "   <- exact match with ground truth"
		}
		fmt.Printf("%d. %s%s\n", i+1, tp.Text, marker)
	}
}
