// Reverse-engineer plays through the paper's motivating scenario
// (Section 1): a security engineer receives a stripped third-party
// WebAssembly module — no debug info, no parameter names — and wants to
// understand its exported functions before integrating it. The example
// trains SnowWhite's parameter and return models, then prints a recovered
// signature report for every exported function of the unknown module.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// thirdPartyModule simulates the vendor's (unseen) source code. The
// reverse engineer never sees this — only the stripped binary below.
const thirdPartyModule = `
typedef unsigned long size_t;
typedef struct _IO_FILE { int fd; int flags; long pos; } FILE;
extern int fputc(int c, FILE *stream);
extern unsigned long strlen(const char *s);

struct pixel_buf { int w; int h; double *samples; struct pixel_buf *next; char tag; };

double buf_mean(struct pixel_buf *buf) {
	double acc = 0;
	int i;
	if (buf == NULL || buf->samples == NULL) { return 0.0; }
	for (i = 0; i < buf->w * buf->h; i++) { acc += buf->samples[i]; }
	return acc / (double)(buf->w * buf->h);
}

size_t sanitize(char *name) {
	size_t n = 0;
	while (name[n] != 0) {
		if (name[n] == '/') { name[n] = '_'; }
		n = n + 1;
	}
	return n;
}

int dump(struct pixel_buf *buf, FILE *out) {
	int written = 0;
	if (buf == NULL || out == NULL) { return -1; }
	while (buf != NULL) {
		fputc(buf->tag, out);
		written = written + 1;
		buf = buf->next;
	}
	return written;
}

bool is_empty(const char *s) {
	return s == NULL || strlen(s) == 0;
}
`

func main() {
	log.SetFlags(0)
	say := func(s string) { fmt.Fprintln(os.Stderr, " ", s) }

	// The vendor ships a stripped binary: compile and remove all DWARF.
	obj, err := cc.Compile(thirdPartyModule, cc.Options{FileName: "vendor.c", Debug: false})
	if err != nil {
		log.Fatal(err)
	}
	stripped := obj.Binary
	dec, err := wasm.Decode(stripped)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dwarf.Extract(dec.Module); err == nil {
		log.Fatal("binary unexpectedly has debug info")
	}
	fmt.Printf("received stripped module: %d bytes, %d functions\n\n", len(stripped), len(dec.Module.Funcs))

	// Train parameter and return models.
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = 80
	cfg.Model.Epochs = 3
	cfg.Split.Valid, cfg.Split.Test = 0.05, 0.05
	d, err := core.BuildDataset(cfg, say)
	if err != nil {
		log.Fatal(err)
	}
	say("training parameter model")
	_, paramModel := d.RunTask(core.Task{Variant: typelang.VariantLSW}, say)
	say("training return model")
	_, retModel := d.RunTask(core.Task{Variant: typelang.VariantLSW, Return: true}, say)
	p := &core.Predictor{Param: paramModel, Return: retModel, Opts: cfg.Extract}

	fmt.Println("=== Recovered signatures (top prediction, with alternatives) ===")
	m := dec.Module
	for fi := range m.Funcs {
		name := exportName(m, fi)
		sig, err := m.FuncTypeAt(uint32(fi + m.NumImportedFuncs()))
		if err != nil {
			log.Fatal(err)
		}
		preds, err := p.PredictBinary(stripped, fi, 3)
		if err != nil {
			log.Fatal(err)
		}
		var parts []string
		for pi := range sig.Params {
			key := fmt.Sprintf("param%d", pi)
			parts = append(parts, fmt.Sprintf("%s /*%s*/", top(preds[key]), sig.Params[pi]))
		}
		ret := "void"
		if len(sig.Results) > 0 {
			ret = fmt.Sprintf("%s /*%s*/", top(preds["return"]), sig.Results[0])
		}
		fmt.Printf("\n%s %s(%s)\n", ret, name, strings.Join(parts, ", "))
		for key, ps := range preds {
			if len(ps) > 1 {
				var alts []string
				for _, alt := range ps[1:] {
					alts = append(alts, alt.Text)
				}
				fmt.Printf("    %s alternatives: %s\n", key, strings.Join(alts, " | "))
			}
		}
	}
}

func top(preds []core.TypePrediction) string {
	if len(preds) == 0 {
		return "unknown"
	}
	return preds[0].Text
}

func exportName(m *wasm.Module, funcIdx int) string {
	abs := uint32(funcIdx + m.NumImportedFuncs())
	for _, e := range m.Exports {
		if e.Kind == wasm.KindFunc && e.Index == abs {
			return e.Name
		}
	}
	return fmt.Sprintf("func[%d]", funcIdx)
}
