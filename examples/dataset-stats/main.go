// Dataset-stats builds the synthetic corpus and prints the dataset-side
// results of the paper without training any model: the Section 5
// statistics (dedup reduction, sample counts, split), Table 2 (most common
// L_SW types), Table 3 (most common type names), and Table 4 (type
// distributions across language variants).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/typelang"
)

func main() {
	log.SetFlags(0)
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = 150
	d, err := core.BuildDataset(cfg, func(s string) { fmt.Fprintln(os.Stderr, " ", s) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(core.Table1())
	fmt.Println(d.Section5Stats())
	fmt.Println(d.Table2(10))
	fmt.Println(d.Table3(8))
	fmt.Println(core.FormatTable4(d.Table4()))

	// Recursion statistics (Section 6.2): the paper reports 20.7% of L_SW
	// samples with no nested constructor, 48.3% with one, 31% deeper.
	depth := map[int]int{}
	maxDepth := 0
	for _, s := range d.Samples {
		toks := typelang.VariantLSW.Apply(s.Master, d.CommonFilter)
		t, err := typelang.Parse(toks)
		if err != nil {
			continue
		}
		dd := t.Depth()
		depth[dd]++
		if dd > maxDepth {
			maxDepth = dd
		}
	}
	fmt.Println("Type nesting depth distribution (Section 6.2):")
	total := float64(len(d.Samples))
	for i := 0; i <= maxDepth; i++ {
		fmt.Printf("  depth %d: %5.1f%% (%d samples)\n", i, float64(depth[i])/total*100, depth[i])
	}
}
