// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (Section 6). Each benchmark prints the same rows
// or series the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Heavy benchmarks (model training for Table 5) run once per invocation;
// scale with SNOWWHITE_BENCH_PACKAGES and SNOWWHITE_BENCH_EPOCHS.
package repro

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/extract"
	"repro/internal/seq2seq"
	"repro/internal/server"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// benchConfig returns the benchmark-scale pipeline configuration.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = envInt("SNOWWHITE_BENCH_PACKAGES", 140)
	cfg.Model.Epochs = envInt("SNOWWHITE_BENCH_EPOCHS", 6)
	// A larger-than-paper test fraction keeps the small test set
	// statistically meaningful at reproduction scale.
	cfg.Split.Valid, cfg.Split.Test = 0.06, 0.08
	return cfg
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

var bench struct {
	once    sync.Once
	dataset *core.Dataset
	err     error

	taskMu  sync.Mutex
	results map[string]*core.TaskResult
	trained map[string]*core.Trained
}

func benchDataset(b *testing.B) *core.Dataset {
	b.Helper()
	bench.once.Do(func() {
		bench.results = map[string]*core.TaskResult{}
		bench.trained = map[string]*core.Trained{}
		bench.dataset, bench.err = core.BuildDataset(benchConfig(), nil)
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return bench.dataset
}

// benchTask trains (once per process) and returns a task's results.
func benchTask(b *testing.B, task core.Task) (*core.TaskResult, *core.Trained) {
	d := benchDataset(b)
	bench.taskMu.Lock()
	defer bench.taskMu.Unlock()
	key := task.Name()
	if r, ok := bench.results[key]; ok {
		return r, bench.trained[key]
	}
	res, tr := d.RunTask(task, nil)
	bench.results[key] = res
	bench.trained[key] = tr
	return res, tr
}

// BenchmarkTable1FeatureMatrix regenerates Table 1: the type-language
// feature comparison.
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = core.Table1()
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable2MostCommonTypes regenerates Table 2: the ten most common
// types of the dataset expressed in L_SW.
func BenchmarkTable2MostCommonTypes(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = d.Table2(10)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable3MostCommonNames regenerates Table 3: the most common
// extracted type names by package share.
func BenchmarkTable3MostCommonNames(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = d.Table3(8)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable4TypeDistributions regenerates Table 4: |L|, normalized
// entropy, and most frequent parameter/return type per language variant.
func BenchmarkTable4TypeDistributions(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	var rows []core.Table4Row
	for i := 0; i < b.N; i++ {
		rows = d.Table4()
	}
	b.StopTimer()
	fmt.Println(core.FormatTable4(rows))
}

// BenchmarkTable5ModelAccuracy regenerates Table 5: top-1/top-5/TPS of the
// seq2seq model vs the conditional-probability baseline across all five
// language tasks for parameter and return prediction. This is the heavy
// benchmark: it trains ten models.
func BenchmarkTable5ModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []*core.TaskResult
		for _, task := range core.Table5Tasks() {
			res, _ := benchTask(b, task)
			results = append(results, res)
		}
		if i == b.N-1 {
			b.StopTimer()
			fmt.Println(core.FormatTable5(results))
			b.StartTimer()
		}
	}
}

// BenchmarkFigure4AccuracyByDepth regenerates Figure 4: L_SW prediction
// accuracy bucketed by type nesting depth, for parameters and returns.
func BenchmarkFigure4AccuracyByDepth(b *testing.B) {
	var param, ret *core.TaskResult
	for i := 0; i < b.N; i++ {
		param, _ = benchTask(b, core.Task{Variant: typelang.VariantLSW})
		ret, _ = benchTask(b, core.Task{Variant: typelang.VariantLSW, Return: true})
	}
	b.StopTimer()
	fmt.Println(core.FormatFigure4(param, ret))
}

// BenchmarkSection5DatasetStats regenerates the dataset statistics of
// Section 5: dedup reduction, sample counts, and the package split.
func BenchmarkSection5DatasetStats(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = d.Section5Stats()
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkPredictionLatency measures per-sample beam-search inference
// time (paper Section 6.1: 3–40 ms per input sample, including beam
// search).
func BenchmarkPredictionLatency(b *testing.B) {
	_, tr := benchTask(b, core.Task{Variant: typelang.VariantLSW})
	src := []string{"i32", "<begin>", "local.get", "<param>", ";", "f64.load", "offset=8", ";", "drop", ";", "return"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(src, 5)
	}
}

// BenchmarkServerPredict measures the serving subsystem's end-to-end
// request latency over HTTP — beam-search inference on a cold cache vs the
// LRU fast path on repeated identical functions (the case the paper's
// dedup analysis shows dominates real object-file corpora).
func BenchmarkServerPredict(b *testing.B) {
	_, param := benchTask(b, core.Task{Variant: typelang.VariantLSW})
	_, ret := benchTask(b, core.Task{Variant: typelang.VariantLSW, Return: true})
	pred := &core.Predictor{Param: param, Return: ret, Opts: benchConfig().Extract}

	obj, err := cc.Compile(`
double first(double *xs, int n) {
	if (xs != NULL && n > 0) { return xs[0]; }
	return 0.0;
}
`, cc.Options{Debug: true})
	if err != nil {
		b.Fatal(err)
	}
	bin, _, err := wasm.Encode(obj.Module)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, cacheSize int, prime bool) {
		s, err := server.New(pred, server.Config{CacheSize: cacheSize})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		do := func() {
			resp, err := http.Post(ts.URL+"/v1/predict?func=first", "application/wasm", bytes.NewReader(bin))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		if prime {
			do()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do()
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, -1, false) })
	b.Run("cached", func(b *testing.B) { run(b, 4096, true) })
}

// BenchmarkServerPredictConcurrent measures the serving subsystem under
// concurrent load with request batching on and the cache off, so every
// request decodes: the dynamic batcher coalesces overlapping queries
// into shared beam decodes. The reported batch-mean metric is the mean
// coalesced batch size read back from /metrics — above 1 means
// concurrent requests actually shared decoder GEMMs.
func BenchmarkServerPredictConcurrent(b *testing.B) {
	_, param := benchTask(b, core.Task{Variant: typelang.VariantLSW})
	_, ret := benchTask(b, core.Task{Variant: typelang.VariantLSW, Return: true})
	pred := &core.Predictor{Param: param, Return: ret, Opts: benchConfig().Extract}

	obj, err := cc.Compile(`
double first(double *xs, int n) {
	if (xs != NULL && n > 0) { return xs[0]; }
	return 0.0;
}
`, cc.Options{Debug: true})
	if err != nil {
		b.Fatal(err)
	}
	bin, _, err := wasm.Encode(obj.Module)
	if err != nil {
		b.Fatal(err)
	}

	for _, cfg := range []struct {
		name  string
		batch int
		wait  time.Duration
	}{
		{"batch=1", 1, 0}, // coalescing off: each query decodes alone
		{"batch=8,wait=2ms", 8, 2 * time.Millisecond},
		{"batch=8,wait=10ms", 8, 10 * time.Millisecond},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := server.New(pred, server.Config{
				Workers:   16,
				CacheSize: -1,
				BatchSize: cfg.batch,
				BatchWait: cfg.wait,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := http.Post(ts.URL+"/v1/predict", "application/wasm", bytes.NewReader(bin))
					if err != nil {
						b.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
				}
			})
			b.StopTimer()
			if sum, count := scrapeMetric(b, ts.URL, "snowwhite_batch_size_sum"), scrapeMetric(b, ts.URL, "snowwhite_batch_size_count"); count > 0 {
				b.ReportMetric(sum/count, "batch-mean")
			}
		})
	}
}

// scrapeMetric reads one un-labeled metric value off the /metrics
// endpoint.
func scrapeMetric(b *testing.B, baseURL, name string) float64 {
	b.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				b.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	b.Fatalf("metric %s not found", name)
	return 0
}

// BenchmarkBuildDataset measures the parallel dataset pipeline
// (generate → compile → dedup → extract) at 1, 2, and NumCPU workers.
// EXPERIMENTS.md records the measured speedup; the outputs are
// byte-identical at every width (TestPipelineDeterminism), so this
// benchmark is purely about wall clock. Scale the corpus with
// SNOWWHITE_BENCH_PIPELINE_PACKAGES.
func BenchmarkBuildDataset(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = envInt("SNOWWHITE_BENCH_PIPELINE_PACKAGES", 60)
	widths := []int{1, 2, runtime.NumCPU(), 4}
	seen := map[int]bool{}
	for _, j := range widths {
		if seen[j] {
			continue
		}
		seen[j] = true
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			c := cfg
			c.Parallelism = j
			var d *core.Dataset
			for i := 0; i < b.N; i++ {
				var err error
				d, err = core.BuildDataset(c, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(d.Samples)), "samples")
		})
	}
}

// BenchmarkAblationWindowSize compares extraction with different window
// sizes (DESIGN.md ablation): smaller windows shrink inputs but may cut
// off type-revealing instructions.
func BenchmarkAblationWindowSize(b *testing.B) {
	pkgs := corpus.Generate(corpus.Options{
		Seed: 3, Packages: 10, MinFiles: 1, MaxFiles: 2, MinFuncs: 4, MaxFuncs: 8,
	})
	var bins [][]byte
	for _, p := range pkgs {
		for _, f := range p.Files {
			obj, err := cc.Compile(f.Source, cc.Options{FileName: f.Name, Debug: true})
			if err != nil {
				b.Fatal(err)
			}
			bins = append(bins, obj.Binary)
		}
	}
	for _, w := range []int{7, 21, 41} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			opts := extract.Options{WindowSize: w}
			total, n := 0, 0
			for i := 0; i < b.N; i++ {
				total, n = 0, 0
				for bi, bin := range bins {
					samples, err := extract.FromBinary("p", fmt.Sprint(bi), bin, opts)
					if err != nil {
						b.Fatal(err)
					}
					for _, s := range samples {
						total += len(s.Input)
						n++
					}
				}
			}
			b.ReportMetric(float64(total)/float64(n), "tokens/sample")
		})
	}
}

// BenchmarkAblationDedup compares binary-level (paper) vs exact-only
// deduplication on a duplication-heavy corpus.
func BenchmarkAblationDedup(b *testing.B) {
	pkgs := corpus.Generate(corpus.Options{
		Seed: 4, Packages: 30, MinFiles: 1, MaxFiles: 2, MinFuncs: 3, MaxFuncs: 6,
		LibraryShare: 0.9, ExactDupShare: 0.4,
	})
	var bins []dedup.Binary
	for _, p := range pkgs {
		for _, f := range p.Files {
			obj, err := cc.Compile(f.Source, cc.Options{FileName: f.Name, Debug: true})
			if err != nil {
				b.Fatal(err)
			}
			bins = append(bins, dedup.Binary{Pkg: p.Name, Name: f.Name, Data: obj.Binary})
		}
	}
	for _, level := range []struct {
		name string
		lv   dedup.Level
	}{{"binary", dedup.LevelBinary}, {"exact", dedup.LevelExact}} {
		b.Run(level.name, func(b *testing.B) {
			var stats dedup.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = dedup.Dedup(bins, level.lv)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.BinariesAfter), "binaries-kept")
			b.ReportMetric(float64(stats.ExactDuplicates+stats.NearDuplicates), "dupes-removed")
		})
	}
}

// BenchmarkTrainingThroughput measures raw training speed (samples/sec) of
// the seq2seq substrate, independent of the pipeline.
func BenchmarkTrainingThroughput(b *testing.B) {
	cfg := seq2seq.DefaultConfig()
	cfg.Hidden, cfg.Embed, cfg.Epochs = 32, 24, 1
	var pairs []seq2seq.Pair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, seq2seq.Pair{
			Src: []string{"i32", "<begin>", "local.get", "<param>", ";", "f64.load"},
			Tgt: []string{"pointer", "primitive", "float", "64"},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq2seq.Train(cfg, pairs, nil, nil)
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkAblationEncoder compares the paper's BiLSTM encoder against the
// Transformer alternative it explored (Section 4.2: "we also explored
// Transformers, but did not find it improving accuracy, so we select the
// computationally much cheaper LSTM model").
func BenchmarkAblationEncoder(b *testing.B) {
	d := benchDataset(b)
	for _, enc := range []struct{ name, kind string }{
		{"bilstm", seq2seq.EncoderBiLSTM},
		{"transformer", seq2seq.EncoderTransformer},
	} {
		b.Run(enc.name, func(b *testing.B) {
			var top1 float64
			for i := 0; i < b.N; i++ {
				cfgCopy := *d
				cfgCopy.Cfg.Model.Encoder = enc.kind
				// Self-attention is O(T^2): shorten inputs and epochs so
				// the comparison finishes in minutes on one CPU.
				cfgCopy.Cfg.Model.MaxSrcLen = 60
				cfgCopy.Cfg.Model.Epochs = 3
				res, _ := cfgCopy.RunTask(core.Task{Variant: typelang.VariantLSW}, nil)
				top1 = res.Model.Top1()
			}
			b.ReportMetric(top1*100, "top1-%")
		})
	}
}

// BenchmarkEvalThroughput measures whole-task test-set evaluation at
// increasing worker counts (the -j convention shared with the dataset
// pipeline). The output is byte-identical at any width — TestEvalParallelismGolden
// pins that — so only the wall time changes.
func BenchmarkEvalThroughput(b *testing.B) {
	task := core.Task{Variant: typelang.VariantLSW}
	_, tr := benchTask(b, task)
	d := benchDataset(b)
	defer func() { d.Cfg.Parallelism = 0 }()
	seen := map[int]bool{}
	for _, par := range []int{1, 2, runtime.NumCPU()} {
		if seen[par] {
			continue // NumCPU may collide with 1 or 2 on small machines
		}
		seen[par] = true
		b.Run(fmt.Sprintf("j=%d", par), func(b *testing.B) {
			d.Cfg.Parallelism = par
			b.ResetTimer()
			var res *core.TaskResult
			for i := 0; i < b.N; i++ {
				res = d.EvalTask(task, tr, nil)
			}
			b.StopTimer()
			b.ReportMetric(float64(res.TestN)*float64(b.N)/b.Elapsed().Seconds(), "examples/s")
		})
	}
}
