package dwarf

import (
	"encoding/binary"
	"fmt"

	"repro/internal/leb128"
)

// Sections holds the serialized DWARF custom-section payloads that get
// embedded into a WebAssembly binary.
type Sections struct {
	Info   []byte // .debug_info
	Abbrev []byte // .debug_abbrev
	Str    []byte // .debug_str
}

// cuHeaderSize is the DWARF32 v4 compile-unit header size:
// unit_length(4) + version(2) + debug_abbrev_offset(4) + address_size(1).
const cuHeaderSize = 11

// addressSize is 4: wasm "addresses" are 32-bit byte offsets into the binary.
const addressSize = 4

// abbrevKey uniquely identifies an abbreviation declaration.
type abbrevKey struct {
	tag         Tag
	hasChildren bool
	attrs       string // packed (attr,form) pairs
}

type abbrevDecl struct {
	code        uint64
	tag         Tag
	hasChildren bool
	attrs       []Attr
	forms       []Form
}

type writer struct {
	abbrevs   map[abbrevKey]*abbrevDecl
	abbrevSeq []*abbrevDecl
	strs      map[string]uint32
	strBuf    []byte
}

// formFor deterministically picks the on-disk form for an attribute value.
// Returns FormFlagPresent with size 0 for true flags; false flags must be
// filtered out by the caller.
func formFor(a Attr, v any) (Form, int, error) {
	switch val := v.(type) {
	case *DIE:
		return FormRef4, 4, nil
	case string:
		return FormStrp, 4, nil
	case bool:
		return FormFlagPresent, 0, nil
	case uint64:
		if a == AttrLowPC {
			return FormAddr, addressSize, nil
		}
		switch {
		case val < 1<<8:
			return FormData1, 1, nil
		case val < 1<<16:
			return FormData2, 2, nil
		case val < 1<<32:
			return FormData4, 4, nil
		default:
			return FormData8, 8, nil
		}
	case int64:
		return FormSdata, len(leb128.AppendInt(nil, val)), nil
	}
	return 0, 0, fmt.Errorf("dwarf: unsupported attribute value type %T for %s", v, a)
}

// liveAttrs returns the attributes that actually get serialized (dropping
// false flags) along with their forms and encoded sizes.
func liveAttrs(d *DIE) ([]AttrValue, []Form, int, error) {
	var attrs []AttrValue
	var forms []Form
	size := 0
	for _, av := range d.Attrs {
		if b, ok := av.Val.(bool); ok && !b {
			continue
		}
		f, n, err := formFor(av.Attr, av.Val)
		if err != nil {
			return nil, nil, 0, err
		}
		attrs = append(attrs, av)
		forms = append(forms, f)
		size += n
	}
	return attrs, forms, size, nil
}

func (w *writer) abbrevFor(d *DIE, attrs []AttrValue, forms []Form) *abbrevDecl {
	key := abbrevKey{tag: d.Tag, hasChildren: len(d.Children) > 0}
	packed := make([]byte, 0, len(attrs)*8)
	for i, av := range attrs {
		packed = binary.LittleEndian.AppendUint32(packed, uint32(av.Attr))
		packed = binary.LittleEndian.AppendUint32(packed, uint32(forms[i]))
	}
	key.attrs = string(packed)
	if a, ok := w.abbrevs[key]; ok {
		return a
	}
	a := &abbrevDecl{
		code:        uint64(len(w.abbrevSeq) + 1),
		tag:         d.Tag,
		hasChildren: key.hasChildren,
	}
	for i, av := range attrs {
		a.attrs = append(a.attrs, av.Attr)
		a.forms = append(a.forms, forms[i])
	}
	w.abbrevs[key] = a
	w.abbrevSeq = append(w.abbrevSeq, a)
	return a
}

func (w *writer) strOffset(s string) uint32 {
	if off, ok := w.strs[s]; ok {
		return off
	}
	off := uint32(len(w.strBuf))
	w.strBuf = append(w.strBuf, s...)
	w.strBuf = append(w.strBuf, 0)
	w.strs[s] = off
	return off
}

// assignOffsets computes each DIE's .debug_info offset (also interning
// abbrevs and strings so the serialization pass is mechanical). pos is the
// offset where d begins; the returned value is the offset just past d's
// subtree including its null terminator if it has children.
func (w *writer) assignOffsets(d *DIE, pos uint32) (uint32, error) {
	d.Offset = pos
	attrs, forms, size, err := liveAttrs(d)
	if err != nil {
		return 0, fmt.Errorf("dwarf: %s at 0x%x: %w", d.Tag, pos, err)
	}
	a := w.abbrevFor(d, attrs, forms)
	for _, av := range attrs {
		if s, ok := av.Val.(string); ok {
			w.strOffset(s)
		}
	}
	pos += uint32(leb128.UintLen(a.code)) + uint32(size)
	if len(d.Children) > 0 {
		for _, c := range d.Children {
			if pos, err = w.assignOffsets(c, pos); err != nil {
				return 0, err
			}
		}
		pos++ // null terminator
	}
	return pos, nil
}

func (w *writer) serialize(d *DIE, out []byte) ([]byte, error) {
	attrs, forms, _, err := liveAttrs(d)
	if err != nil {
		return nil, err
	}
	a := w.abbrevFor(d, attrs, forms)
	out = leb128.AppendUint(out, a.code)
	for i, av := range attrs {
		switch forms[i] {
		case FormRef4:
			ref := av.Val.(*DIE)
			out = binary.LittleEndian.AppendUint32(out, ref.Offset)
		case FormStrp:
			out = binary.LittleEndian.AppendUint32(out, w.strOffset(av.Val.(string)))
		case FormFlagPresent:
			// no bytes
		case FormAddr, FormData4:
			out = binary.LittleEndian.AppendUint32(out, uint32(av.Val.(uint64)))
		case FormData1:
			out = append(out, byte(av.Val.(uint64)))
		case FormData2:
			out = binary.LittleEndian.AppendUint16(out, uint16(av.Val.(uint64)))
		case FormData8:
			out = binary.LittleEndian.AppendUint64(out, av.Val.(uint64))
		case FormSdata:
			out = leb128.AppendInt(out, av.Val.(int64))
		default:
			return nil, fmt.Errorf("dwarf: cannot serialize form %s", forms[i])
		}
	}
	if len(d.Children) > 0 {
		for _, c := range d.Children {
			if out, err = w.serialize(c, out); err != nil {
				return nil, err
			}
		}
		out = append(out, 0) // null terminator ends the sibling list
	}
	return out, nil
}

func (w *writer) abbrevSection() []byte {
	var out []byte
	for _, a := range w.abbrevSeq {
		out = leb128.AppendUint(out, a.code)
		out = leb128.AppendUint(out, uint64(a.tag))
		if a.hasChildren {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		for i, at := range a.attrs {
			out = leb128.AppendUint(out, uint64(at))
			out = leb128.AppendUint(out, uint64(a.forms[i]))
		}
		out = append(out, 0, 0)
	}
	out = append(out, 0) // end of abbreviation table
	return out
}

// Write serializes a compile-unit DIE tree into DWARF32 v4 sections.
// Reference attributes may point at any DIE within the same tree,
// including forward references and cycles.
func Write(cu *DIE) (Sections, error) {
	if cu.Tag != TagCompileUnit {
		return Sections{}, fmt.Errorf("dwarf: root must be a compile unit, got %s", cu.Tag)
	}
	w := &writer{
		abbrevs: make(map[abbrevKey]*abbrevDecl),
		strs:    make(map[string]uint32),
	}
	end, err := w.assignOffsets(cu, cuHeaderSize)
	if err != nil {
		return Sections{}, err
	}

	info := make([]byte, 0, end)
	info = binary.LittleEndian.AppendUint32(info, end-4) // unit_length excludes itself
	info = binary.LittleEndian.AppendUint16(info, 4)     // DWARF version 4
	info = binary.LittleEndian.AppendUint32(info, 0)     // abbrev offset
	info = append(info, addressSize)
	if info, err = w.serialize(cu, info); err != nil {
		return Sections{}, err
	}
	if uint32(len(info)) != end {
		return Sections{}, fmt.Errorf("dwarf: internal error: wrote %d bytes, planned %d", len(info), end)
	}
	return Sections{Info: info, Abbrev: w.abbrevSection(), Str: w.strBuf}, nil
}
