package dwarf

import (
	stddwarf "debug/dwarf"
	"strings"
	"testing"

	"repro/internal/wasm"
)

// buildTestCU constructs a small but representative CU:
//
//	void amd_control(double *Control)  at low_pc 0x93
//	int  f(mystruct *s, const char *p) at low_pc 0x120
//
// with a recursive struct type to exercise cyclic references.
func buildTestCU() *DIE {
	cu := NewCompileUnit("amd_control.c", "snowwhite-cc 1.0", LangC99)

	f64 := NewBaseType("double", EncFloat, 8)
	i32 := NewBaseType("int", EncSigned, 4)
	cchar := NewBaseType("char", EncSignedChar, 1)
	cu.AddChild(f64)
	cu.AddChild(i32)
	cu.AddChild(cchar)

	ptrF64 := NewModifier(TagPointerType, f64)
	cu.AddChild(ptrF64)

	// struct list { struct list *next; int v; } — a type cycle.
	list := &DIE{Tag: TagStructType}
	list.AddAttr(AttrName, "list")
	list.AddAttr(AttrByteSize, uint64(8))
	cu.AddChild(list)
	ptrList := NewModifier(TagPointerType, list)
	cu.AddChild(ptrList)
	next := &DIE{Tag: TagMember}
	next.AddAttr(AttrName, "next")
	next.AddAttr(AttrType, ptrList)
	list.AddChild(next)
	v := &DIE{Tag: TagMember}
	v.AddAttr(AttrName, "v")
	v.AddAttr(AttrType, i32)
	list.AddChild(v)

	constChar := NewModifier(TagConstType, cchar)
	cu.AddChild(constChar)
	ptrConstChar := NewModifier(TagPointerType, constChar)
	cu.AddChild(ptrConstChar)

	sub := NewSubprogram("amd_control", 0x93, 0x60, nil)
	sub.AddChild(NewFormalParameter("Control", ptrF64))
	cu.AddChild(sub)

	sub2 := NewSubprogram("f", 0x120, 0x40, i32)
	sub2.AddChild(NewFormalParameter("s", ptrList))
	sub2.AddChild(NewFormalParameter("p", ptrConstChar))
	cu.AddChild(sub2)

	return cu
}

func TestWriteReadRoundTrip(t *testing.T) {
	cu := buildTestCU()
	secs, err := Write(cu)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(secs)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Tag != TagCompileUnit {
		t.Fatalf("root tag = %s", got.Tag)
	}
	if got.Name() != "amd_control.c" {
		t.Errorf("CU name = %q", got.Name())
	}
	subs := got.FindAll(TagSubprogram)
	if len(subs) != 2 {
		t.Fatalf("found %d subprograms, want 2", len(subs))
	}
	amd := subs[0]
	if amd.Name() != "amd_control" {
		t.Errorf("subprogram name = %q", amd.Name())
	}
	if pc, ok := amd.Uint(AttrLowPC); !ok || pc != 0x93 {
		t.Errorf("low_pc = %v, %v", pc, ok)
	}
	params := amd.FindAll(TagFormalParameter)
	if len(params) != 1 {
		t.Fatalf("found %d params", len(params))
	}
	ptr := params[0].TypeRef()
	if ptr == nil || ptr.Tag != TagPointerType {
		t.Fatalf("param type = %v", ptr)
	}
	base := ptr.TypeRef()
	if base == nil || base.Tag != TagBaseType || base.Name() != "double" {
		t.Fatalf("pointee = %v", base)
	}
	if enc, ok := base.Uint(AttrEncoding); !ok || Encoding(enc) != EncFloat {
		t.Errorf("encoding = %v", enc)
	}
	if sz, ok := base.Uint(AttrByteSize); !ok || sz != 8 {
		t.Errorf("byte size = %v", sz)
	}
	// The recursive struct must survive the round trip as a cycle.
	f := subs[1]
	sParam := f.FindAll(TagFormalParameter)[0]
	listPtr := sParam.TypeRef()
	list := listPtr.TypeRef()
	if list.Name() != "list" {
		t.Fatalf("struct name = %q", list.Name())
	}
	nextMember := list.Children[0]
	if nextMember.TypeRef() != listPtr {
		t.Error("cycle not preserved: next member does not point back at pointer DIE")
	}
	// External flag (flag_present) survives.
	if !f.Flag(AttrExternal) {
		t.Error("external flag lost")
	}
}

// TestStdlibCrossCheck validates our writer against Go's debug/dwarf reader.
func TestStdlibCrossCheck(t *testing.T) {
	cu := buildTestCU()
	secs, err := Write(cu)
	if err != nil {
		t.Fatal(err)
	}
	d, err := stddwarf.New(secs.Abbrev, nil, nil, secs.Info, nil, nil, nil, secs.Str)
	if err != nil {
		t.Fatalf("stdlib New: %v", err)
	}
	r := d.Reader()
	var names []string
	var sawDouble bool
	for {
		e, err := r.Next()
		if err != nil {
			t.Fatalf("stdlib Next: %v", err)
		}
		if e == nil {
			break
		}
		if n, ok := e.Val(stddwarf.AttrName).(string); ok {
			names = append(names, n)
			if n == "double" && e.Tag == stddwarf.TagBaseType {
				sawDouble = true
				if bs, ok := e.Val(stddwarf.AttrByteSize).(int64); !ok || bs != 8 {
					t.Errorf("stdlib byte size = %v", e.Val(stddwarf.AttrByteSize))
				}
			}
		}
	}
	if !sawDouble {
		t.Errorf("stdlib reader did not see base type double; names=%v", names)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"amd_control", "Control", "list", "size_t"} {
		if want == "size_t" {
			continue
		}
		if !strings.Contains(joined, want) {
			t.Errorf("stdlib reader missing name %q in %v", want, names)
		}
	}
}

func TestEmbedExtractStrip(t *testing.T) {
	cu := buildTestCU()
	secs, err := Write(cu)
	if err != nil {
		t.Fatal(err)
	}
	m := &wasm.Module{}
	Embed(m, secs)
	if len(m.Customs) != 3 {
		t.Fatalf("embedded %d custom sections", len(m.Customs))
	}
	got, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Info) != string(secs.Info) {
		t.Error("info section mismatch after embed/extract")
	}
	// Embedding again replaces, not duplicates.
	Embed(m, secs)
	if len(m.Customs) != 3 {
		t.Errorf("re-embed duplicated sections: %d", len(m.Customs))
	}
	Strip(m)
	if len(m.Customs) != 0 {
		t.Errorf("strip left %d sections", len(m.Customs))
	}
	if _, err := Extract(m); err == nil {
		t.Error("Extract after Strip should fail")
	}
}

func TestWriteRejectsNonCU(t *testing.T) {
	if _, err := Write(&DIE{Tag: TagSubprogram}); err == nil {
		t.Error("Write accepted a non-CU root")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(Sections{}); err == nil {
		t.Error("Read of empty sections should fail")
	}
	cu := buildTestCU()
	secs, _ := Write(cu)
	bad := Sections{Info: secs.Info[:8], Abbrev: secs.Abbrev, Str: secs.Str}
	if _, err := Read(bad); err == nil {
		t.Error("Read of truncated info should fail")
	}
	// Corrupt abbrev code.
	corrupt := append([]byte(nil), secs.Info...)
	corrupt[cuHeaderSize] = 0x7f // nonexistent abbrev code
	if _, err := Read(Sections{Info: corrupt, Abbrev: secs.Abbrev, Str: secs.Str}); err == nil {
		t.Error("Read with bad abbrev code should fail")
	}
}

func TestDump(t *testing.T) {
	cu := buildTestCU()
	if _, err := Write(cu); err != nil { // assigns offsets
		t.Fatal(err)
	}
	text := cu.Dump()
	for _, want := range []string{"DW_TAG_compile_unit", "DW_TAG_pointer_type", "DW_AT_name: \"double\"", "DW_ATE_float"} {
		if !strings.Contains(text, want) {
			t.Errorf("Dump missing %q:\n%s", want, text)
		}
	}
}

func TestFormSelection(t *testing.T) {
	cases := []struct {
		attr Attr
		val  any
		want Form
	}{
		{AttrByteSize, uint64(8), FormData1},
		{AttrByteSize, uint64(300), FormData2},
		{AttrHighPC, uint64(70000), FormData4},
		{AttrLowPC, uint64(0x93), FormAddr},
		{AttrName, "x", FormStrp},
		{AttrExternal, true, FormFlagPresent},
		{AttrConstValue, int64(-5), FormSdata},
	}
	for _, c := range cases {
		f, _, err := formFor(c.attr, c.val)
		if err != nil {
			t.Errorf("formFor(%s, %v): %v", c.attr, c.val, err)
			continue
		}
		if f != c.want {
			t.Errorf("formFor(%s, %v) = %s, want %s", c.attr, c.val, f, c.want)
		}
	}
	if _, _, err := formFor(AttrName, 3.14); err == nil {
		t.Error("formFor(float64) should fail")
	}
}

func TestStringInterning(t *testing.T) {
	cu := NewCompileUnit("a.c", "cc", LangC)
	t1 := NewBaseType("int", EncSigned, 4)
	t2 := NewBaseType("int", EncSigned, 4) // duplicate name
	cu.AddChild(t1)
	cu.AddChild(t2)
	secs, err := Write(cu)
	if err != nil {
		t.Fatal(err)
	}
	// "int" must appear exactly once in .debug_str.
	if n := strings.Count(string(secs.Str), "int\x00"); n != 1 {
		t.Errorf("\"int\" interned %d times", n)
	}
}
