package dwarf

import (
	"fmt"

	"repro/internal/wasm"
)

// Custom section names used for DWARF in WebAssembly binaries, as emitted
// by LLVM/Emscripten.
const (
	SectionInfo   = ".debug_info"
	SectionAbbrev = ".debug_abbrev"
	SectionStr    = ".debug_str"
)

// Embed attaches the DWARF sections to a module as custom sections,
// replacing any existing ones of the same name.
func Embed(m *wasm.Module, s Sections) {
	set := func(name string, data []byte) {
		if c := m.Custom(name); c != nil {
			c.Bytes = data
			return
		}
		m.Customs = append(m.Customs, wasm.Custom{Name: name, Bytes: data})
	}
	set(SectionInfo, s.Info)
	set(SectionAbbrev, s.Abbrev)
	set(SectionStr, s.Str)
}

// Extract pulls the DWARF sections out of a module's custom sections.
func Extract(m *wasm.Module) (Sections, error) {
	var s Sections
	info := m.Custom(SectionInfo)
	abbrev := m.Custom(SectionAbbrev)
	if info == nil || abbrev == nil {
		return s, fmt.Errorf("dwarf: module has no debug info (compile with -g)")
	}
	s.Info = info.Bytes
	s.Abbrev = abbrev.Bytes
	if str := m.Custom(SectionStr); str != nil {
		s.Str = str.Bytes
	}
	return s, nil
}

// Strip removes all DWARF custom sections from the module, simulating the
// stripped binaries a reverse engineer typically encounters.
func Strip(m *wasm.Module) {
	keep := m.Customs[:0]
	for _, c := range m.Customs {
		switch c.Name {
		case SectionInfo, SectionAbbrev, SectionStr:
			continue
		}
		keep = append(keep, c)
	}
	m.Customs = keep
}

// NewCompileUnit builds a compile-unit DIE with the standard attributes.
func NewCompileUnit(name, producer string, lang uint64) *DIE {
	cu := &DIE{Tag: TagCompileUnit}
	cu.AddAttr(AttrProducer, producer)
	cu.AddAttr(AttrLanguage, lang)
	cu.AddAttr(AttrName, name)
	return cu
}

// NewBaseType builds a DW_TAG_base_type DIE.
func NewBaseType(name string, enc Encoding, byteSize uint64) *DIE {
	d := &DIE{Tag: TagBaseType}
	d.AddAttr(AttrName, name)
	d.AddAttr(AttrEncoding, uint64(enc))
	d.AddAttr(AttrByteSize, byteSize)
	return d
}

// NewModifier builds a pointer/const/volatile/... DIE wrapping inner.
// A nil inner leaves DW_AT_type absent (e.g. a void pointer).
func NewModifier(tag Tag, inner *DIE) *DIE {
	d := &DIE{Tag: tag}
	if inner != nil {
		d.AddAttr(AttrType, inner)
	}
	return d
}

// NewTypedef builds a DW_TAG_typedef DIE aliasing inner under name.
func NewTypedef(name string, inner *DIE) *DIE {
	d := &DIE{Tag: TagTypedef}
	d.AddAttr(AttrName, name)
	if inner != nil {
		d.AddAttr(AttrType, inner)
	}
	return d
}

// NewSubprogram builds a DW_TAG_subprogram DIE for a function at the given
// code offset. retType may be nil for void functions.
func NewSubprogram(name string, lowPC, highPC uint64, retType *DIE) *DIE {
	d := &DIE{Tag: TagSubprogram}
	d.AddAttr(AttrName, name)
	d.AddAttr(AttrLowPC, lowPC)
	d.AddAttr(AttrHighPC, highPC)
	if retType != nil {
		d.AddAttr(AttrType, retType)
	}
	d.AddAttr(AttrExternal, true)
	return d
}

// NewFormalParameter builds a DW_TAG_formal_parameter DIE.
func NewFormalParameter(name string, typ *DIE) *DIE {
	d := &DIE{Tag: TagFormalParameter}
	if name != "" {
		d.AddAttr(AttrName, name)
	}
	if typ != nil {
		d.AddAttr(AttrType, typ)
	}
	return d
}
