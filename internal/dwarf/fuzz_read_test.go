// Native fuzz target for the DWARF reader, seeded from sections the
// internal C compiler actually emits (external test package so the seeds
// can come from internal/cc, which imports dwarf). Run with:
//
//	go test -fuzz=FuzzRead ./internal/dwarf
package dwarf_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/dwarf"
)

// fuzzSeedSources cover the type shapes the corpus generator produces:
// scalars, pointers, records with members, typedefs, const chains, and
// multiple subprograms sharing type DIEs.
var fuzzSeedSources = []string{
	`int add(int a, int b) { return a + b; }`,
	`typedef unsigned long size_t;
size_t len(const char *s) { int n = 0; while (s[n] != 0) { n++; } return (size_t) n; }`,
	`struct node { int id; double w; struct node *next; };
double weight(struct node *n) { return n->w; }
struct node *next(struct node *n) { return n->next; }`,
	`typedef struct _IO_FILE { int fd; int flags; long pos; } FILE;
extern int fgetc(FILE *stream);
int count(FILE *f) { int n = 0; while (fgetc(f) != -1) { n++; } return n; }`,
	`double dot(const double *xs, const double *ys, int n) {
	double acc = 0; int i;
	for (i = 0; i < n; i++) { acc += xs[i] * ys[i]; }
	return acc;
}`,
}

// FuzzRead feeds mutated DWARF sections to the reader: every input must
// produce a DIE tree or an error, never a panic, and a tree that parses
// must re-serialize without panicking (reverse-engineering tools see
// malformed debug info constantly).
func FuzzRead(f *testing.F) {
	for _, src := range fuzzSeedSources {
		obj, err := cc.Compile(src, cc.Options{FileName: "seed.c", Debug: true})
		if err != nil {
			f.Fatal(err)
		}
		secs, err := dwarf.Extract(obj.Module)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(secs.Info, secs.Abbrev, secs.Str)
		// Truncated and cross-wired variants broaden initial coverage.
		f.Add(secs.Info[:len(secs.Info)/2], secs.Abbrev, secs.Str)
		f.Add(secs.Info, secs.Abbrev[:len(secs.Abbrev)/2], secs.Str)
		f.Add(secs.Abbrev, secs.Info, secs.Str)
	}
	f.Add([]byte{}, []byte{}, []byte{})

	f.Fuzz(func(t *testing.T, info, abbrev, str []byte) {
		root, err := dwarf.Read(dwarf.Sections{Info: info, Abbrev: abbrev, Str: str})
		if err != nil {
			return
		}
		if root == nil {
			t.Fatal("Read returned nil root without error")
		}
		// Whatever parses must round-trip through the writer without
		// panicking; Write may reject it with an error.
		_, _ = dwarf.Write(root)
	})
}
