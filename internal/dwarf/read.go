package dwarf

import (
	"encoding/binary"
	"fmt"

	"repro/internal/leb128"
)

// Read parses DWARF32 v4 sections (a single compile unit) back into a DIE
// tree, resolving DW_FORM_ref4 references to *DIE pointers.
func Read(s Sections) (*DIE, error) {
	abbrevs, err := parseAbbrev(s.Abbrev)
	if err != nil {
		return nil, err
	}
	if len(s.Info) < cuHeaderSize {
		return nil, fmt.Errorf("dwarf: .debug_info too short (%d bytes)", len(s.Info))
	}
	unitLen := binary.LittleEndian.Uint32(s.Info)
	if int(unitLen)+4 > len(s.Info) {
		return nil, fmt.Errorf("dwarf: unit length %d exceeds section size %d", unitLen, len(s.Info))
	}
	if int(unitLen)+4 < cuHeaderSize {
		return nil, fmt.Errorf("dwarf: unit length %d does not cover the CU header", unitLen)
	}
	ver := binary.LittleEndian.Uint16(s.Info[4:])
	if ver != 4 {
		return nil, fmt.Errorf("dwarf: unsupported version %d", ver)
	}
	if s.Info[10] != addressSize {
		return nil, fmt.Errorf("dwarf: unsupported address size %d", s.Info[10])
	}

	p := &infoParser{
		buf:     s.Info[:unitLen+4],
		pos:     cuHeaderSize,
		str:     s.Str,
		abbrevs: abbrevs,
		byOff:   make(map[uint32]*DIE),
	}
	root, err := p.parseDIE()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("dwarf: empty compile unit")
	}
	// Resolve reference attributes now that every offset is known.
	for _, fix := range p.fixups {
		target, ok := p.byOff[fix.ref]
		if !ok {
			return nil, fmt.Errorf("dwarf: %s references unknown offset 0x%x", fix.die.Tag, fix.ref)
		}
		fix.die.Attrs[fix.attrIdx].Val = target
	}
	return root, nil
}

type abbrevEntry struct {
	tag         Tag
	hasChildren bool
	attrs       []Attr
	forms       []Form
}

func parseAbbrev(buf []byte) (map[uint64]*abbrevEntry, error) {
	out := make(map[uint64]*abbrevEntry)
	pos := 0
	u := func() (uint64, error) {
		v, n, err := leb128.Uint(buf[pos:], 64)
		pos += n
		return v, err
	}
	for {
		code, err := u()
		if err != nil {
			return nil, fmt.Errorf("dwarf: bad abbrev table: %w", err)
		}
		if code == 0 {
			return out, nil
		}
		tag, err := u()
		if err != nil {
			return nil, err
		}
		if pos >= len(buf) {
			return nil, fmt.Errorf("dwarf: truncated abbrev table")
		}
		children := buf[pos]
		pos++
		e := &abbrevEntry{tag: Tag(tag), hasChildren: children == 1}
		for {
			at, err := u()
			if err != nil {
				return nil, err
			}
			form, err := u()
			if err != nil {
				return nil, err
			}
			if at == 0 && form == 0 {
				break
			}
			e.attrs = append(e.attrs, Attr(at))
			e.forms = append(e.forms, Form(form))
		}
		if _, dup := out[code]; dup {
			return nil, fmt.Errorf("dwarf: duplicate abbrev code %d", code)
		}
		out[code] = e
	}
}

type refFixup struct {
	die     *DIE
	attrIdx int
	ref     uint32
}

type infoParser struct {
	buf     []byte
	pos     int
	str     []byte
	abbrevs map[uint64]*abbrevEntry
	byOff   map[uint32]*DIE
	fixups  []refFixup
}

func (p *infoParser) uleb() (uint64, error) {
	if p.pos > len(p.buf) {
		return 0, fmt.Errorf("dwarf: truncated .debug_info at 0x%x", p.pos)
	}
	v, n, err := leb128.Uint(p.buf[p.pos:], 64)
	p.pos += n
	return v, err
}

func (p *infoParser) sleb() (int64, error) {
	if p.pos > len(p.buf) {
		return 0, fmt.Errorf("dwarf: truncated .debug_info at 0x%x", p.pos)
	}
	v, n, err := leb128.Int(p.buf[p.pos:], 64)
	p.pos += n
	return v, err
}

func (p *infoParser) need(n int) error {
	if p.pos+n > len(p.buf) {
		return fmt.Errorf("dwarf: truncated .debug_info at 0x%x", p.pos)
	}
	return nil
}

func (p *infoParser) strAt(off uint32) (string, error) {
	if int(off) >= len(p.str) {
		return "", fmt.Errorf("dwarf: string offset 0x%x out of range", off)
	}
	end := int(off)
	for end < len(p.str) && p.str[end] != 0 {
		end++
	}
	return string(p.str[off:end]), nil
}

// parseDIE parses one DIE (and its children). Returns nil for a null entry.
func (p *infoParser) parseDIE() (*DIE, error) {
	off := uint32(p.pos)
	code, err := p.uleb()
	if err != nil {
		return nil, err
	}
	if code == 0 {
		return nil, nil
	}
	ab, ok := p.abbrevs[code]
	if !ok {
		return nil, fmt.Errorf("dwarf: unknown abbrev code %d at 0x%x", code, off)
	}
	d := &DIE{Tag: ab.tag, Offset: off}
	p.byOff[off] = d
	for i, at := range ab.attrs {
		val, fix, err := p.parseValue(ab.forms[i])
		if err != nil {
			return nil, fmt.Errorf("dwarf: %s/%s at 0x%x: %w", ab.tag, at, off, err)
		}
		d.Attrs = append(d.Attrs, AttrValue{Attr: at, Val: val})
		if fix {
			p.fixups = append(p.fixups, refFixup{die: d, attrIdx: len(d.Attrs) - 1, ref: val.(uint32)})
		}
	}
	if ab.hasChildren {
		for {
			c, err := p.parseDIE()
			if err != nil {
				return nil, err
			}
			if c == nil {
				break
			}
			d.Children = append(d.Children, c)
		}
	}
	return d, nil
}

// parseValue decodes one attribute value. For reference forms it returns
// the raw uint32 offset and fix=true; the caller records a fixup.
func (p *infoParser) parseValue(form Form) (any, bool, error) {
	switch form {
	case FormAddr, FormData4, FormSecOffset:
		if err := p.need(4); err != nil {
			return nil, false, err
		}
		v := binary.LittleEndian.Uint32(p.buf[p.pos:])
		p.pos += 4
		return uint64(v), false, nil
	case FormRef4:
		if err := p.need(4); err != nil {
			return nil, false, err
		}
		v := binary.LittleEndian.Uint32(p.buf[p.pos:])
		p.pos += 4
		return v, true, nil
	case FormData1:
		if err := p.need(1); err != nil {
			return nil, false, err
		}
		v := uint64(p.buf[p.pos])
		p.pos++
		return v, false, nil
	case FormData2:
		if err := p.need(2); err != nil {
			return nil, false, err
		}
		v := uint64(binary.LittleEndian.Uint16(p.buf[p.pos:]))
		p.pos += 2
		return v, false, nil
	case FormData8:
		if err := p.need(8); err != nil {
			return nil, false, err
		}
		v := binary.LittleEndian.Uint64(p.buf[p.pos:])
		p.pos += 8
		return v, false, nil
	case FormUdata:
		v, err := p.uleb()
		return v, false, err
	case FormSdata:
		v, err := p.sleb()
		return v, false, err
	case FormStrp:
		if err := p.need(4); err != nil {
			return nil, false, err
		}
		off := binary.LittleEndian.Uint32(p.buf[p.pos:])
		p.pos += 4
		s, err := p.strAt(off)
		return s, false, err
	case FormString:
		start := p.pos
		for p.pos < len(p.buf) && p.buf[p.pos] != 0 {
			p.pos++
		}
		if p.pos >= len(p.buf) {
			return nil, false, fmt.Errorf("dwarf: unterminated inline string")
		}
		s := string(p.buf[start:p.pos])
		p.pos++
		return s, false, nil
	case FormFlagPresent:
		return true, false, nil
	case FormFlag:
		if err := p.need(1); err != nil {
			return nil, false, err
		}
		v := p.buf[p.pos] != 0
		p.pos++
		return v, false, nil
	}
	return nil, false, fmt.Errorf("dwarf: unsupported form %s", form)
}
