package dwarf

import (
	"fmt"
	"strings"
)

// DIE is one debugging information entry: a tag, a set of attribute
// values, and child entries. Attribute values referencing other entries
// (DW_AT_type and friends) hold *DIE pointers; the writer serializes them
// as DW_FORM_ref4 offsets and the reader resolves offsets back to
// pointers, so the in-memory form is a directed — possibly cyclic — graph,
// exactly as described in Section 2 of the paper.
type DIE struct {
	Tag      Tag
	Attrs    []AttrValue
	Children []*DIE

	// Offset is the entry's position relative to the start of
	// .debug_info. It is populated by both the writer and the reader.
	Offset uint32
}

// AttrValue is one attribute of a DIE. Val holds one of:
//
//	string  — names, producer strings (written as DW_FORM_strp)
//	uint64  — sizes, encodings, PCs (form chosen by magnitude / attribute)
//	int64   — signed constants (DW_FORM_sdata)
//	bool    — flags (DW_FORM_flag_present; false values are omitted)
//	*DIE    — references to other entries (DW_FORM_ref4)
type AttrValue struct {
	Attr Attr
	Val  any
}

// AddAttr appends an attribute value.
func (d *DIE) AddAttr(a Attr, v any) *DIE {
	d.Attrs = append(d.Attrs, AttrValue{Attr: a, Val: v})
	return d
}

// AddChild appends a child entry and returns it.
func (d *DIE) AddChild(c *DIE) *DIE {
	d.Children = append(d.Children, c)
	return c
}

// Attr returns the value of the first attribute with the given name, or nil.
func (d *DIE) Attr(a Attr) any {
	for _, av := range d.Attrs {
		if av.Attr == a {
			return av.Val
		}
	}
	return nil
}

// Name returns the DW_AT_name string, or "".
func (d *DIE) Name() string {
	if s, ok := d.Attr(AttrName).(string); ok {
		return s
	}
	return ""
}

// TypeRef returns the DIE referenced by DW_AT_type, or nil.
func (d *DIE) TypeRef() *DIE {
	if t, ok := d.Attr(AttrType).(*DIE); ok {
		return t
	}
	return nil
}

// Uint returns the attribute's value as a uint64 (covering uint64 and
// int64 representations) and whether it was present.
func (d *DIE) Uint(a Attr) (uint64, bool) {
	switch v := d.Attr(a).(type) {
	case uint64:
		return v, true
	case int64:
		return uint64(v), true
	}
	return 0, false
}

// Flag reports whether the attribute is present and true.
func (d *DIE) Flag(a Attr) bool {
	b, ok := d.Attr(a).(bool)
	return ok && b
}

// Dump renders the DIE tree in a readable, dwarfdump-like format.
func (d *DIE) Dump() string {
	var sb strings.Builder
	d.dump(&sb, 0)
	return sb.String()
}

func (d *DIE) dump(sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s%04x: %s\n", indent, d.Offset, d.Tag)
	for _, av := range d.Attrs {
		switch v := av.Val.(type) {
		case *DIE:
			fmt.Fprintf(sb, "%s        %s @ %04x\n", indent, av.Attr, v.Offset)
		case string:
			fmt.Fprintf(sb, "%s        %s: %q\n", indent, av.Attr, v)
		case uint64:
			if av.Attr == AttrEncoding {
				fmt.Fprintf(sb, "%s        %s: %s\n", indent, av.Attr, Encoding(v))
			} else {
				fmt.Fprintf(sb, "%s        %s: %d\n", indent, av.Attr, v)
			}
		default:
			fmt.Fprintf(sb, "%s        %s: %v\n", indent, av.Attr, v)
		}
	}
	for _, c := range d.Children {
		c.dump(sb, depth+1)
	}
}

// Walk visits d and all entries below it in pre-order. Cycles through
// attribute references are not followed (only the child tree is walked).
func (d *DIE) Walk(fn func(*DIE)) {
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// FindAll returns all entries in the child tree with the given tag.
func (d *DIE) FindAll(tag Tag) []*DIE {
	var out []*DIE
	d.Walk(func(e *DIE) {
		if e.Tag == tag {
			out = append(out, e)
		}
	})
	return out
}
