package dwarf

import (
	"math/rand"
	"testing"
)

// TestReadNeverPanics mutates valid DWARF sections and feeds them to the
// reader: malformed debug info must produce errors, never panics.
func TestReadNeverPanics(t *testing.T) {
	secs, err := Write(buildTestCU())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	mutate := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		if len(out) == 0 {
			return out
		}
		for j := 0; j < 1+r.Intn(4); j++ {
			out[r.Intn(len(out))] = byte(r.Intn(256))
		}
		return out
	}
	for i := 0; i < 3000; i++ {
		mut := Sections{Info: secs.Info, Abbrev: secs.Abbrev, Str: secs.Str}
		switch r.Intn(3) {
		case 0:
			mut.Info = mutate(secs.Info)
		case 1:
			mut.Abbrev = mutate(secs.Abbrev)
		default:
			mut.Str = mutate(secs.Str)
		}
		// Random truncation too.
		if r.Intn(4) == 0 && len(mut.Info) > 0 {
			mut.Info = mut.Info[:r.Intn(len(mut.Info))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Read panicked on mutation %d: %v", i, p)
				}
			}()
			_, _ = Read(mut)
		}()
	}
}
