// Package dwarf implements a writer and reader for the subset of the
// DWARF v4 debugging format needed to label WebAssembly functions with
// source-level types: a tree of debugging information entries (DIEs) in
// .debug_info, the abbreviation tables in .debug_abbrev, and the string
// table in .debug_str — the same custom sections Emscripten/LLVM emit into
// wasm object files when compiling with -g.
package dwarf

import "fmt"

// Tag identifies the kind of a DIE (DW_TAG_*).
type Tag uint32

// DWARF v4 tags used by the type-recovery pipeline.
const (
	TagArrayType         Tag = 0x01
	TagClassType         Tag = 0x02
	TagEnumerationType   Tag = 0x04
	TagFormalParameter   Tag = 0x05
	TagLexicalBlock      Tag = 0x0b
	TagMember            Tag = 0x0d
	TagPointerType       Tag = 0x0f
	TagReferenceType     Tag = 0x10
	TagCompileUnit       Tag = 0x11
	TagStructType        Tag = 0x13
	TagSubroutineType    Tag = 0x15
	TagTypedef           Tag = 0x16
	TagUnionType         Tag = 0x17
	TagUnspecifiedParams Tag = 0x18
	TagVariant           Tag = 0x19
	TagInheritance       Tag = 0x1c
	TagSubrangeType      Tag = 0x21
	TagBaseType          Tag = 0x24
	TagConstType         Tag = 0x26
	TagEnumerator        Tag = 0x28
	TagSubprogram        Tag = 0x2e
	TagVariable          Tag = 0x34
	TagVolatileType      Tag = 0x35
	TagRestrictType      Tag = 0x37
	TagNamespace         Tag = 0x39
	TagUnspecifiedType   Tag = 0x3b
	TagRvalueRefType     Tag = 0x42
)

var tagNames = map[Tag]string{
	TagArrayType:         "DW_TAG_array_type",
	TagClassType:         "DW_TAG_class_type",
	TagEnumerationType:   "DW_TAG_enumeration_type",
	TagFormalParameter:   "DW_TAG_formal_parameter",
	TagLexicalBlock:      "DW_TAG_lexical_block",
	TagMember:            "DW_TAG_member",
	TagPointerType:       "DW_TAG_pointer_type",
	TagReferenceType:     "DW_TAG_reference_type",
	TagCompileUnit:       "DW_TAG_compile_unit",
	TagStructType:        "DW_TAG_structure_type",
	TagSubroutineType:    "DW_TAG_subroutine_type",
	TagTypedef:           "DW_TAG_typedef",
	TagUnionType:         "DW_TAG_union_type",
	TagUnspecifiedParams: "DW_TAG_unspecified_parameters",
	TagVariant:           "DW_TAG_variant",
	TagInheritance:       "DW_TAG_inheritance",
	TagSubrangeType:      "DW_TAG_subrange_type",
	TagBaseType:          "DW_TAG_base_type",
	TagConstType:         "DW_TAG_const_type",
	TagEnumerator:        "DW_TAG_enumerator",
	TagSubprogram:        "DW_TAG_subprogram",
	TagVariable:          "DW_TAG_variable",
	TagVolatileType:      "DW_TAG_volatile_type",
	TagRestrictType:      "DW_TAG_restrict_type",
	TagNamespace:         "DW_TAG_namespace",
	TagUnspecifiedType:   "DW_TAG_unspecified_type",
	TagRvalueRefType:     "DW_TAG_rvalue_reference_type",
}

// String returns the DW_TAG_* name.
func (t Tag) String() string {
	if n, ok := tagNames[t]; ok {
		return n
	}
	return fmt.Sprintf("DW_TAG(0x%02x)", uint32(t))
}

// Attr identifies a DIE attribute (DW_AT_*).
type Attr uint32

// DWARF v4 attributes used by the type-recovery pipeline.
const (
	AttrName          Attr = 0x03
	AttrByteSize      Attr = 0x0b
	AttrBitSize       Attr = 0x0d
	AttrLowPC         Attr = 0x11
	AttrHighPC        Attr = 0x12
	AttrLanguage      Attr = 0x13
	AttrCompDir       Attr = 0x1b
	AttrConstValue    Attr = 0x1c
	AttrUpperBound    Attr = 0x2f
	AttrProducer      Attr = 0x25
	AttrPrototyped    Attr = 0x27
	AttrCount         Attr = 0x37
	AttrDataMemberLoc Attr = 0x38
	AttrDeclFile      Attr = 0x3a
	AttrDeclLine      Attr = 0x3b
	AttrDeclaration   Attr = 0x3c
	AttrEncoding      Attr = 0x3e
	AttrExternal      Attr = 0x3f
	AttrType          Attr = 0x49
)

var attrNames = map[Attr]string{
	AttrName:          "DW_AT_name",
	AttrByteSize:      "DW_AT_byte_size",
	AttrBitSize:       "DW_AT_bit_size",
	AttrLowPC:         "DW_AT_low_pc",
	AttrHighPC:        "DW_AT_high_pc",
	AttrLanguage:      "DW_AT_language",
	AttrCompDir:       "DW_AT_comp_dir",
	AttrConstValue:    "DW_AT_const_value",
	AttrUpperBound:    "DW_AT_upper_bound",
	AttrProducer:      "DW_AT_producer",
	AttrPrototyped:    "DW_AT_prototyped",
	AttrCount:         "DW_AT_count",
	AttrDataMemberLoc: "DW_AT_data_member_location",
	AttrDeclFile:      "DW_AT_decl_file",
	AttrDeclLine:      "DW_AT_decl_line",
	AttrDeclaration:   "DW_AT_declaration",
	AttrEncoding:      "DW_AT_encoding",
	AttrExternal:      "DW_AT_external",
	AttrType:          "DW_AT_type",
}

// String returns the DW_AT_* name.
func (a Attr) String() string {
	if n, ok := attrNames[a]; ok {
		return n
	}
	return fmt.Sprintf("DW_AT(0x%02x)", uint32(a))
}

// Form identifies the on-disk encoding of an attribute value (DW_FORM_*).
type Form uint32

// DWARF v4 forms supported by this codec.
const (
	FormAddr        Form = 0x01
	FormData2       Form = 0x05
	FormData4       Form = 0x06
	FormData8       Form = 0x07
	FormString      Form = 0x08
	FormData1       Form = 0x0b
	FormFlag        Form = 0x0c
	FormSdata       Form = 0x0d
	FormStrp        Form = 0x0e
	FormUdata       Form = 0x0f
	FormRef4        Form = 0x13
	FormSecOffset   Form = 0x17
	FormFlagPresent Form = 0x19
)

var formNames = map[Form]string{
	FormAddr:        "DW_FORM_addr",
	FormData2:       "DW_FORM_data2",
	FormData4:       "DW_FORM_data4",
	FormData8:       "DW_FORM_data8",
	FormString:      "DW_FORM_string",
	FormData1:       "DW_FORM_data1",
	FormFlag:        "DW_FORM_flag",
	FormSdata:       "DW_FORM_sdata",
	FormStrp:        "DW_FORM_strp",
	FormUdata:       "DW_FORM_udata",
	FormRef4:        "DW_FORM_ref4",
	FormSecOffset:   "DW_FORM_sec_offset",
	FormFlagPresent: "DW_FORM_flag_present",
}

// String returns the DW_FORM_* name.
func (f Form) String() string {
	if n, ok := formNames[f]; ok {
		return n
	}
	return fmt.Sprintf("DW_FORM(0x%02x)", uint32(f))
}

// Base type encodings (DW_ATE_*).
type Encoding uint8

// DWARF v4 base type encodings.
const (
	EncAddress      Encoding = 0x01
	EncBoolean      Encoding = 0x02
	EncComplexFloat Encoding = 0x03
	EncFloat        Encoding = 0x04
	EncSigned       Encoding = 0x05
	EncSignedChar   Encoding = 0x06
	EncUnsigned     Encoding = 0x07
	EncUnsignedChar Encoding = 0x08
	EncUTF          Encoding = 0x10
)

var encNames = map[Encoding]string{
	EncAddress:      "DW_ATE_address",
	EncBoolean:      "DW_ATE_boolean",
	EncComplexFloat: "DW_ATE_complex_float",
	EncFloat:        "DW_ATE_float",
	EncSigned:       "DW_ATE_signed",
	EncSignedChar:   "DW_ATE_signed_char",
	EncUnsigned:     "DW_ATE_unsigned",
	EncUnsignedChar: "DW_ATE_unsigned_char",
	EncUTF:          "DW_ATE_UTF",
}

// String returns the DW_ATE_* name.
func (e Encoding) String() string {
	if n, ok := encNames[e]; ok {
		return n
	}
	return fmt.Sprintf("DW_ATE(0x%02x)", uint8(e))
}

// Source language codes (DW_LANG_*), recorded on compile units.
const (
	LangC89       uint64 = 0x01
	LangC         uint64 = 0x02
	LangCPlusPlus uint64 = 0x04
	LangC99       uint64 = 0x0c
	LangCPP14     uint64 = 0x21
)
