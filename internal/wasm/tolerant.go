package wasm

import "fmt"

// SectionStatus classifies the outcome of decoding one section in
// tolerant mode.
type SectionStatus string

// Section outcomes, from healthy to unusable.
const (
	// SectionOK: the section parsed cleanly.
	SectionOK SectionStatus = "ok"
	// SectionUnknown: the section id is outside the MVP set; its payload
	// was skipped but the rest of the module parsed on.
	SectionUnknown SectionStatus = "unknown"
	// SectionOutOfOrder: a non-custom section appeared after a
	// higher-numbered one (or twice); it was parsed anyway, last one wins.
	SectionOutOfOrder SectionStatus = "out_of_order"
	// SectionMalformed: the payload was rejected by its decoder; the
	// section's contents were dropped and decoding continued after it.
	SectionMalformed SectionStatus = "malformed"
	// SectionTruncated: the section claims more bytes than the binary
	// holds; decoding stopped at it (the tail framing is unreliable).
	SectionTruncated SectionStatus = "truncated"
)

// SectionDiag records the outcome of decoding one section (or, for the
// code section, one code entry) in tolerant mode.
type SectionDiag struct {
	// ID is the section id (0 for a custom section).
	ID byte
	// Name is the custom section's name, when it parsed.
	Name string
	// Offset is the file offset of the section's id byte; for per-entry
	// code diagnostics it is the entry's code offset (the same value
	// CodeOffsets records).
	Offset int
	// Size is the declared payload size (for code entries: the entry size).
	Size int
	// Status classifies the outcome.
	Status SectionStatus
	// Err is the underlying parse failure for non-ok statuses.
	Err error
}

// Tolerant is the result of a best-effort decode: whatever sections
// parsed, plus one diagnostic per section describing what happened.
type Tolerant struct {
	Decoded *Decoded
	Diags   []SectionDiag
}

// DecodeTolerant parses as much of a WebAssembly binary as it can,
// skipping unknown and malformed sections instead of rejecting the
// module, and degrading gracefully on truncated tails. Real-world
// binaries carry producer metadata, source maps, and occasionally broken
// custom sections that the strict Decode (built for the corpus
// generator's own output) refuses; ingestion needs the healthy remainder.
//
// Only an unusable header (bad magic or version) returns an error. A
// malformed section's contents are dropped wholesale — except for the
// code section, where recovery is per entry: the binary format frames
// every code entry with its size, so a corrupt function body costs only
// that function. CodeOffsets stays index-aligned with Module.Funcs for
// every entry that was at least framed, so DWARF low_pc matching keeps
// working on partially readable binaries.
func DecodeTolerant(data []byte) (*Tolerant, error) {
	r := &reader{buf: data}
	hdr, err := r.bytes(8)
	if err != nil {
		return nil, ErrNotWasm
	}
	for i := 0; i < 4; i++ {
		if hdr[i] != magic[i] {
			return nil, ErrNotWasm
		}
		if hdr[4+i] != version[i] {
			return nil, fmt.Errorf("wasm: unsupported version %x", hdr[4:8])
		}
	}

	m := &Module{}
	d := &Decoded{Module: m}
	t := &Tolerant{Decoded: d}
	lastSec := -1
	for r.remaining() > 0 {
		secOff := r.pos
		id, _ := r.byte() // cannot fail: remaining() > 0
		size, err := r.u32()
		if err != nil {
			t.Diags = append(t.Diags, SectionDiag{ID: id, Offset: secOff, Status: SectionTruncated, Err: err})
			break
		}
		declared := int(size)
		body, err := r.bytes(declared)
		if err != nil {
			t.Diags = append(t.Diags, SectionDiag{ID: id, Offset: secOff, Size: declared, Status: SectionTruncated, Err: err})
			break
		}
		diag := SectionDiag{ID: id, Offset: secOff, Size: declared, Status: SectionOK}
		if id != secCustom && id <= secData {
			if int(id) <= lastSec {
				diag.Status = SectionOutOfOrder
				diag.Err = fmt.Errorf("wasm: section %d out of order", id)
			} else {
				lastSec = int(id)
			}
		}
		base := r.pos - declared
		sr := &reader{buf: body}
		switch {
		case id == secCustom:
			name, err := sr.name()
			if err != nil {
				diag.Status = SectionMalformed
				diag.Err = err
				break
			}
			diag.Name = name
			m.Customs = append(m.Customs, Custom{Name: name, Bytes: append([]byte(nil), body[sr.pos:]...)})
		case id > secData:
			diag.Status = SectionUnknown
			diag.Err = fmt.Errorf("wasm: unknown section id %d", id)
		case id == secCode:
			t.Diags = append(t.Diags, diag)
			t.Diags = append(t.Diags, decodeCodeTolerant(sr, m, d, base)...)
			continue
		default:
			// Parse into a scratch module so a mid-payload failure cannot
			// leave half a section behind; merge only on success.
			probe := &Module{}
			if err := decodeKnownSection(id, sr, probe, &Decoded{Module: probe}, base); err != nil {
				diag.Status = SectionMalformed
				diag.Err = err
				break
			}
			mergeSection(m, probe, id)
		}
		t.Diags = append(t.Diags, diag)
	}
	return t, nil
}

// mergeSection installs one successfully parsed non-code section into the
// module. Duplicate sections (already diagnosed as out of order)
// overwrite: the last occurrence wins.
func mergeSection(m, probe *Module, id byte) {
	switch id {
	case secType:
		m.Types = probe.Types
	case secImport:
		m.Imports = probe.Imports
	case secFunction:
		m.Funcs = probe.Funcs
	case secTable:
		m.Tables = probe.Tables
	case secMemory:
		m.Memories = probe.Memories
	case secGlobal:
		m.Globals = probe.Globals
	case secExport:
		m.Exports = probe.Exports
	case secStart:
		m.Start = probe.Start
	case secElem:
		m.Elems = probe.Elems
	case secData:
		m.Datas = probe.Datas
	}
}

// decodeCodeTolerant parses the code section entry by entry, recovering
// at the next entry's size framing when one body is corrupt. A failed
// entry leaves its function with an empty body but keeps its code offset,
// so function indices and DWARF matching stay aligned.
func decodeCodeTolerant(r *reader, m *Module, d *Decoded, base int) []SectionDiag {
	var diags []SectionDiag
	n, err := r.u32()
	if err != nil {
		return append(diags, SectionDiag{ID: secCode, Offset: base, Status: SectionMalformed, Err: err})
	}
	if int64(n) != int64(len(m.Funcs)) {
		diags = append(diags, SectionDiag{
			ID: secCode, Offset: base, Status: SectionMalformed,
			Err: fmt.Errorf("wasm: code section has %d entries, function section %d", n, len(m.Funcs)),
		})
	}
	for i := 0; int64(i) < int64(n); i++ {
		entryOff := base + r.pos
		size, err := r.u32()
		if err != nil {
			diags = append(diags, SectionDiag{ID: secCode, Offset: entryOff, Status: SectionTruncated, Err: err})
			break
		}
		end := r.pos + int(size)
		if end > len(r.buf) || end < r.pos {
			diags = append(diags, SectionDiag{
				ID: secCode, Offset: entryOff, Size: int(size), Status: SectionTruncated,
				Err: fmt.Errorf("wasm: code entry %d overflows section", i),
			})
			break
		}
		if i < len(m.Funcs) {
			d.CodeOffsets = append(d.CodeOffsets, uint32(entryOff))
			if err := decodeCodeEntry(r, &m.Funcs[i], end); err != nil {
				m.Funcs[i].Locals, m.Funcs[i].Body = nil, nil
				diags = append(diags, SectionDiag{
					ID: secCode, Offset: entryOff, Size: int(size), Status: SectionMalformed,
					Err: fmt.Errorf("wasm: code entry %d: %w", i, err),
				})
			}
		}
		r.pos = end // realign to the declared entry frame
	}
	return diags
}

// decodeCodeEntry parses one code entry's locals and body, bounded at the
// entry's declared end so a corrupt body cannot bleed into the next
// entry's bytes.
func decodeCodeEntry(r *reader, f *Function, end int) error {
	er := &reader{buf: r.buf[:end], pos: r.pos}
	nl, err := er.u32()
	if err != nil {
		return err
	}
	var locals []LocalDecl
	for j := uint32(0); j < nl; j++ {
		cnt, err := er.u32()
		if err != nil {
			return err
		}
		vt, err := er.valType()
		if err != nil {
			return err
		}
		locals = append(locals, LocalDecl{Count: cnt, Type: vt})
	}
	body, err := decodeExpr(er)
	if err != nil {
		return err
	}
	if er.pos != end {
		return fmt.Errorf("wasm: %d trailing bytes", end-er.pos)
	}
	f.Locals, f.Body = locals, body
	r.pos = er.pos
	return nil
}
