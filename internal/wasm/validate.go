package wasm

import (
	"fmt"
)

// Validate type-checks every function body in the module against the
// WebAssembly validation algorithm (stack typing with structured control
// frames). It catches the classic codegen bugs — stack underflow, type
// mismatches, wrong branch arities — that a round-trip decode cannot.
func Validate(m *Module) error {
	for i := range m.Funcs {
		if err := ValidateFunction(m, i); err != nil {
			return fmt.Errorf("wasm: function %d (%s): %w", i, m.Funcs[i].Name, err)
		}
	}
	for gi, g := range m.Globals {
		if err := validateConstExpr(g.Init, g.Type.Type); err != nil {
			return fmt.Errorf("wasm: global %d: %w", gi, err)
		}
	}
	for di, d := range m.Datas {
		if err := validateConstExpr(d.Offset, I32); err != nil {
			return fmt.Errorf("wasm: data segment %d: %w", di, err)
		}
	}
	return nil
}

func validateConstExpr(expr []Instr, want ValType) error {
	if len(expr) != 1 {
		return fmt.Errorf("constant expression must be a single instruction")
	}
	var got ValType
	switch expr[0].Op {
	case OpI32Const:
		got = I32
	case OpI64Const:
		got = I64
	case OpF32Const:
		got = F32
	case OpF64Const:
		got = F64
	case OpGlobalGet:
		return nil // imported-global initializers are not resolved here
	default:
		return fmt.Errorf("non-constant instruction %s", expr[0].Op.Name())
	}
	if got != want {
		return fmt.Errorf("constant expression has type %s, want %s", got, want)
	}
	return nil
}

// vUnknown marks a polymorphic stack slot that appears after unreachable
// code; it unifies with any value type.
const vUnknown ValType = 0

// ctrlFrame is one entry of the control stack.
type ctrlFrame struct {
	op          Opcode // block, loop, if, or 0 for the function frame
	startTypes  []ValType
	endTypes    []ValType
	height      int
	unreachable bool
}

// labelTypes returns the types a branch to this frame must provide: the
// start types for loops (branch to the top), end types otherwise.
func (f *ctrlFrame) labelTypes() []ValType {
	if f.op == OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

type validator struct {
	mod    *Module
	locals []ValType
	vals   []ValType
	ctrls  []ctrlFrame
	pos    int
}

// ValidateFunction type-checks one module-defined function body.
func ValidateFunction(m *Module, funcIdx int) error {
	fn := &m.Funcs[funcIdx]
	if int(fn.TypeIdx) >= len(m.Types) {
		return fmt.Errorf("type index %d out of range", fn.TypeIdx)
	}
	sig := m.Types[fn.TypeIdx]
	v := &validator{mod: m}
	v.locals = append(v.locals, sig.Params...)
	for _, d := range fn.Locals {
		for i := uint32(0); i < d.Count; i++ {
			v.locals = append(v.locals, d.Type)
		}
	}
	v.pushCtrl(0, nil, sig.Results)
	for i, in := range fn.Body {
		v.pos = i
		if err := v.instr(in); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, in.String(), err)
		}
	}
	// The implicit end of the function frame.
	v.pos = len(fn.Body)
	if err := v.end(); err != nil {
		return fmt.Errorf("at function end: %w", err)
	}
	if len(v.vals) != len(sig.Results) {
		return fmt.Errorf("function leaves %d values, signature has %d results", len(v.vals), len(sig.Results))
	}
	return nil
}

func (v *validator) pushVal(t ValType) { v.vals = append(v.vals, t) }

func (v *validator) popVal(want ValType) (ValType, error) {
	frame := &v.ctrls[len(v.ctrls)-1]
	if len(v.vals) == frame.height {
		if frame.unreachable {
			return want, nil
		}
		return 0, fmt.Errorf("stack underflow")
	}
	got := v.vals[len(v.vals)-1]
	v.vals = v.vals[:len(v.vals)-1]
	if want != vUnknown && got != vUnknown && got != want {
		return 0, fmt.Errorf("expected %s on stack, found %s", want, got)
	}
	return got, nil
}

func (v *validator) popVals(types []ValType) error {
	for i := len(types) - 1; i >= 0; i-- {
		if _, err := v.popVal(types[i]); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) pushCtrl(op Opcode, start, end []ValType) {
	v.ctrls = append(v.ctrls, ctrlFrame{
		op: op, startTypes: start, endTypes: end, height: len(v.vals),
	})
	for _, t := range start {
		v.pushVal(t)
	}
}

func (v *validator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, fmt.Errorf("control stack underflow")
	}
	frame := v.ctrls[len(v.ctrls)-1]
	if err := v.popVals(frame.endTypes); err != nil {
		return frame, err
	}
	if len(v.vals) != frame.height {
		return frame, fmt.Errorf("%d leftover values at end of block", len(v.vals)-frame.height)
	}
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	return frame, nil
}

func (v *validator) unreachable() {
	frame := &v.ctrls[len(v.ctrls)-1]
	v.vals = v.vals[:frame.height]
	frame.unreachable = true
}

func (v *validator) frameAt(label int64) (*ctrlFrame, error) {
	if label < 0 || int(label) >= len(v.ctrls) {
		return nil, fmt.Errorf("branch label %d out of range (depth %d)", label, len(v.ctrls))
	}
	return &v.ctrls[len(v.ctrls)-1-int(label)], nil
}

func blockTypeResults(bt int64) ([]ValType, error) {
	if bt == BlockTypeEmpty {
		return nil, nil
	}
	vt := ValType(byte(bt & 0x7f))
	if !vt.Valid() {
		return nil, fmt.Errorf("unsupported block type %d", bt)
	}
	return []ValType{vt}, nil
}

func (v *validator) end() error {
	frame, err := v.popCtrl()
	if err != nil {
		return err
	}
	for _, t := range frame.endTypes {
		v.pushVal(t)
	}
	return nil
}

func (v *validator) instr(in Instr) error {
	switch in.Op {
	case OpUnreachable:
		v.unreachable()
		return nil
	case OpNop:
		return nil

	case OpBlock, OpLoop:
		res, err := blockTypeResults(in.Imm)
		if err != nil {
			return err
		}
		v.pushCtrl(in.Op, nil, res)
		return nil

	case OpIf:
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		res, err := blockTypeResults(in.Imm)
		if err != nil {
			return err
		}
		v.pushCtrl(OpIf, nil, res)
		return nil

	case OpElse:
		if len(v.ctrls) == 0 || v.ctrls[len(v.ctrls)-1].op != OpIf {
			return fmt.Errorf("else outside if")
		}
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		v.pushCtrl(OpElse, frame.startTypes, frame.endTypes)
		return nil

	case OpEnd:
		return v.end()

	case OpBr:
		frame, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		if err := v.popVals(frame.labelTypes()); err != nil {
			return err
		}
		v.unreachable()
		return nil

	case OpBrIf:
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		frame, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		lt := frame.labelTypes()
		if err := v.popVals(lt); err != nil {
			return err
		}
		for _, t := range lt {
			v.pushVal(t)
		}
		return nil

	case OpBrTable:
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		def, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		want := def.labelTypes()
		for _, l := range in.Table {
			f, err := v.frameAt(int64(l))
			if err != nil {
				return err
			}
			if len(f.labelTypes()) != len(want) {
				return fmt.Errorf("br_table arity mismatch")
			}
		}
		if err := v.popVals(want); err != nil {
			return err
		}
		v.unreachable()
		return nil

	case OpReturn:
		if err := v.popVals(v.ctrls[0].endTypes); err != nil {
			return err
		}
		v.unreachable()
		return nil

	case OpCall:
		sig, err := v.mod.FuncTypeAt(uint32(in.Imm))
		if err != nil {
			return err
		}
		if err := v.popVals(sig.Params); err != nil {
			return err
		}
		for _, t := range sig.Results {
			v.pushVal(t)
		}
		return nil

	case OpCallIndirect:
		if int(in.Imm) >= len(v.mod.Types) {
			return fmt.Errorf("call_indirect type %d out of range", in.Imm)
		}
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		sig := v.mod.Types[in.Imm]
		if err := v.popVals(sig.Params); err != nil {
			return err
		}
		for _, t := range sig.Results {
			v.pushVal(t)
		}
		return nil

	case OpDrop:
		_, err := v.popVal(vUnknown)
		return err

	case OpSelect:
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		a, err := v.popVal(vUnknown)
		if err != nil {
			return err
		}
		b, err := v.popVal(a)
		if err != nil {
			return err
		}
		if a == vUnknown {
			a = b
		}
		v.pushVal(a)
		return nil

	case OpLocalGet, OpLocalSet, OpLocalTee:
		if in.Imm < 0 || int(in.Imm) >= len(v.locals) {
			return fmt.Errorf("local %d out of range (%d locals)", in.Imm, len(v.locals))
		}
		t := v.locals[in.Imm]
		switch in.Op {
		case OpLocalGet:
			v.pushVal(t)
		case OpLocalSet:
			if _, err := v.popVal(t); err != nil {
				return err
			}
		case OpLocalTee:
			if _, err := v.popVal(t); err != nil {
				return err
			}
			v.pushVal(t)
		}
		return nil

	case OpGlobalGet, OpGlobalSet:
		gt, err := v.globalType(in.Imm)
		if err != nil {
			return err
		}
		if in.Op == OpGlobalGet {
			v.pushVal(gt.Type)
			return nil
		}
		if !gt.Mutable {
			return fmt.Errorf("global.set of immutable global %d", in.Imm)
		}
		_, err = v.popVal(gt.Type)
		return err

	case OpMemorySize:
		v.pushVal(I32)
		return nil
	case OpMemoryGrow:
		if _, err := v.popVal(I32); err != nil {
			return err
		}
		v.pushVal(I32)
		return nil

	case OpI32Const:
		v.pushVal(I32)
		return nil
	case OpI64Const:
		v.pushVal(I64)
		return nil
	case OpF32Const:
		v.pushVal(F32)
		return nil
	case OpF64Const:
		v.pushVal(F64)
		return nil
	}

	// Memory access and numeric instructions follow fixed signatures.
	if sig, ok := instrSignature(in.Op); ok {
		if err := v.popVals(sig.params); err != nil {
			return err
		}
		for _, t := range sig.results {
			v.pushVal(t)
		}
		return nil
	}
	return fmt.Errorf("no validation rule for %s", in.Op.Name())
}

func (v *validator) globalType(idx int64) (GlobalType, error) {
	i := int(idx)
	for _, imp := range v.mod.Imports {
		if imp.Kind != KindGlobal {
			continue
		}
		if i == 0 {
			return imp.Global, nil
		}
		i--
	}
	if i >= len(v.mod.Globals) {
		return GlobalType{}, fmt.Errorf("global %d out of range", idx)
	}
	return v.mod.Globals[i].Type, nil
}

type instrSig struct {
	params  []ValType
	results []ValType
}

// instrSignature returns the value signature of memory and numeric
// opcodes.
func instrSignature(op Opcode) (instrSig, bool) {
	u := func(p []ValType, r ...ValType) (instrSig, bool) {
		return instrSig{params: p, results: r}, true
	}
	switch {
	case op >= OpI32Load && op <= OpI64Load32U: // loads: [i32] -> [t]
		return u([]ValType{I32}, loadResult(op))
	case op >= OpI32Store && op <= OpI64Store32: // stores: [i32 t] -> []
		return u([]ValType{I32, storeOperand(op)})
	}
	switch op {
	case OpI32Eqz:
		return u([]ValType{I32}, I32)
	case OpI64Eqz:
		return u([]ValType{I64}, I32)
	}
	switch {
	case op >= OpI32Eq && op <= OpI32GeU:
		return u([]ValType{I32, I32}, I32)
	case op >= OpI64Eq && op <= OpI64GeU:
		return u([]ValType{I64, I64}, I32)
	case op >= OpF32Eq && op <= OpF32Ge:
		return u([]ValType{F32, F32}, I32)
	case op >= OpF64Eq && op <= OpF64Ge:
		return u([]ValType{F64, F64}, I32)
	case op >= OpI32Clz && op <= OpI32Pop:
		return u([]ValType{I32}, I32)
	case op >= OpI32Add && op <= OpI32Rotr:
		return u([]ValType{I32, I32}, I32)
	case op >= OpI64Clz && op <= OpI64Pop:
		return u([]ValType{I64}, I64)
	case op >= OpI64Add && op <= OpI64Rotr:
		return u([]ValType{I64, I64}, I64)
	case op >= OpF32Abs && op <= OpF32Sqrt:
		return u([]ValType{F32}, F32)
	case op >= OpF32Add && op <= OpF32Copysign:
		return u([]ValType{F32, F32}, F32)
	case op >= OpF64Abs && op <= OpF64Sqrt:
		return u([]ValType{F64}, F64)
	case op >= OpF64Add && op <= OpF64Copysign:
		return u([]ValType{F64, F64}, F64)
	}
	switch op {
	case OpI32WrapI64:
		return u([]ValType{I64}, I32)
	case OpI32TruncF32S, OpI32TruncF32U, OpI32ReinterpretF32:
		return u([]ValType{F32}, I32)
	case OpI32TruncF64S, OpI32TruncF64U:
		return u([]ValType{F64}, I32)
	case OpI64ExtendI32S, OpI64ExtendI32U:
		return u([]ValType{I32}, I64)
	case OpI64TruncF32S, OpI64TruncF32U:
		return u([]ValType{F32}, I64)
	case OpI64TruncF64S, OpI64TruncF64U, OpI64ReinterpretF64:
		return u([]ValType{F64}, I64)
	case OpF32ConvertI32S, OpF32ConvertI32U, OpF32ReinterpretI32:
		return u([]ValType{I32}, F32)
	case OpF32ConvertI64S, OpF32ConvertI64U:
		return u([]ValType{I64}, F32)
	case OpF32DemoteF64:
		return u([]ValType{F64}, F32)
	case OpF64ConvertI32S, OpF64ConvertI32U:
		return u([]ValType{I32}, F64)
	case OpF64ConvertI64S, OpF64ConvertI64U:
		return u([]ValType{I64}, F64)
	case OpF64PromoteF32:
		return u([]ValType{F32}, F64)
	case OpI32Extend8S, OpI32Extend16S:
		return u([]ValType{I32}, I32)
	case OpI64Extend8S, OpI64Extend16S, OpI64Extend32S:
		return u([]ValType{I64}, I64)
	}
	return instrSig{}, false
}

func loadResult(op Opcode) ValType {
	switch op {
	case OpI64Load, OpI64Load8S, OpI64Load8U, OpI64Load16S, OpI64Load16U, OpI64Load32S, OpI64Load32U:
		return I64
	case OpF32Load:
		return F32
	case OpF64Load:
		return F64
	}
	return I32
}

func storeOperand(op Opcode) ValType {
	switch op {
	case OpI64Store, OpI64Store8, OpI64Store16, OpI64Store32:
		return I64
	case OpF32Store:
		return F32
	case OpF64Store:
		return F64
	}
	return I32
}
