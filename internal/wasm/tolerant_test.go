package wasm_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cc"
	"repro/internal/leb128"
	"repro/internal/wasm"
)

// appendSection appends a raw section (id, size-prefixed payload) to a
// binary, the way toolchains append custom metadata after the code.
func appendSection(bin []byte, id byte, payload []byte) []byte {
	out := append([]byte(nil), bin...)
	out = append(out, id)
	out = leb128.AppendUint(out, uint64(len(payload)))
	return append(out, payload...)
}

// customPayload frames a custom-section payload: name then contents.
func customPayload(name string, contents []byte) []byte {
	var p []byte
	p = leb128.AppendUint(p, uint64(len(name)))
	p = append(p, name...)
	return append(p, contents...)
}

func compileTolerantSeed(t *testing.T, debug bool) []byte {
	t.Helper()
	obj, err := cc.Compile(`
int add(int a, int b) { return a + b; }
double half(double x) { return x / 2.0; }
`, cc.Options{FileName: "seed.c", Debug: debug})
	if err != nil {
		t.Fatal(err)
	}
	return obj.Binary
}

// TestDecodeTolerantCleanBinary pins tolerant decoding of a healthy
// binary to the strict decoder: same module, same code offsets, all
// sections diagnosed ok.
func TestDecodeTolerantCleanBinary(t *testing.T) {
	bin := compileTolerantSeed(t, true)
	strict, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := wasm.DecodeTolerant(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tol.Decoded.Module, strict.Module) {
		t.Error("tolerant module differs from strict decode on a clean binary")
	}
	if !reflect.DeepEqual(tol.Decoded.CodeOffsets, strict.CodeOffsets) {
		t.Errorf("code offsets differ: tolerant %v strict %v", tol.Decoded.CodeOffsets, strict.CodeOffsets)
	}
	for _, dg := range tol.Diags {
		if dg.Status != wasm.SectionOK {
			t.Errorf("section id %d at %d: status %q (%v)", dg.ID, dg.Offset, dg.Status, dg.Err)
		}
	}
}

// TestDecodeTolerantUnknownSection: strict decoding rejects a section id
// outside the MVP set with a typed error; tolerant decoding skips it and
// recovers the full module.
func TestDecodeTolerantUnknownSection(t *testing.T) {
	bin := compileTolerantSeed(t, false)
	bad := appendSection(bin, 63, []byte{0xde, 0xad, 0xbe, 0xef})

	_, err := wasm.Decode(bad)
	var mal *wasm.ErrMalformedSection
	if !errors.As(err, &mal) {
		t.Fatalf("strict Decode: want ErrMalformedSection, got %v", err)
	}
	if mal.ID != 63 || mal.Offset != len(bin) {
		t.Errorf("ErrMalformedSection{ID: %d, Offset: %d}, want {63, %d}", mal.ID, mal.Offset, len(bin))
	}

	strict, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := wasm.DecodeTolerant(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tol.Decoded.Module, strict.Module) {
		t.Error("unknown section changed the decoded module")
	}
	last := tol.Diags[len(tol.Diags)-1]
	if last.Status != wasm.SectionUnknown || last.ID != 63 {
		t.Errorf("last diag = %+v, want unknown id 63", last)
	}
}

// TestDecodeTolerantMalformedCustom: a custom section whose name length
// overruns the payload is dropped with a diagnostic, and later sections
// still parse.
func TestDecodeTolerantMalformedCustom(t *testing.T) {
	bin := compileTolerantSeed(t, false)
	bad := appendSection(bin, 0, []byte{0xff}) // name length 255, no name bytes
	bad = appendSection(bad, 0, customPayload("trailing.meta", []byte("v1")))

	tol, err := wasm.DecodeTolerant(bad)
	if err != nil {
		t.Fatal(err)
	}
	var malformed, ok int
	for _, dg := range tol.Diags {
		if dg.ID != 0 {
			continue
		}
		switch dg.Status {
		case wasm.SectionMalformed:
			malformed++
		case wasm.SectionOK:
			ok++
		}
	}
	if malformed != 1 {
		t.Errorf("malformed custom diags = %d, want 1", malformed)
	}
	if c := tol.Decoded.Module.Custom("trailing.meta"); c == nil || string(c.Bytes) != "v1" {
		t.Error("custom section after the malformed one was not recovered")
	}
}

// TestDecodeTolerantTruncatedTail: chopping the binary mid-section yields
// the sections before the cut plus a truncated diagnostic, not an error.
func TestDecodeTolerantTruncatedTail(t *testing.T) {
	bin := compileTolerantSeed(t, true)
	cut := bin[:len(bin)-7]
	tol, err := wasm.DecodeTolerant(cut)
	if err != nil {
		t.Fatal(err)
	}
	last := tol.Diags[len(tol.Diags)-1]
	if last.Status != wasm.SectionTruncated {
		t.Errorf("last diag status = %q, want truncated", last.Status)
	}
	if len(tol.Decoded.Module.Funcs) == 0 {
		t.Error("sections before the cut were not preserved")
	}
}

// TestDecodeTolerantCodeEntryRecovery: corrupting one function's body (an
// unknown opcode inside an intact entry frame) loses only that function;
// its neighbors and its code offset survive.
func TestDecodeTolerantCodeEntryRecovery(t *testing.T) {
	bin := compileTolerantSeed(t, false)
	strict, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.CodeOffsets) < 2 {
		t.Fatalf("need at least 2 functions, got %d", len(strict.CodeOffsets))
	}
	bad := append([]byte(nil), bin...)
	// The entry's first body byte sits after its size and local-count
	// fields; 0xC5 is not an MVP opcode. Clobbering one byte inside the
	// body keeps the entry frame (its size field) intact.
	bad[strict.CodeOffsets[0]+2] = 0xc5

	tol, err := wasm.DecodeTolerant(bad)
	if err != nil {
		t.Fatal(err)
	}
	m := tol.Decoded.Module
	if len(m.Funcs) != len(strict.Module.Funcs) {
		t.Fatalf("func count %d, want %d", len(m.Funcs), len(strict.Module.Funcs))
	}
	if len(m.Funcs[0].Body) != 0 {
		t.Error("corrupt function body should have been dropped")
	}
	if !reflect.DeepEqual(m.Funcs[1].Body, strict.Module.Funcs[1].Body) {
		t.Error("healthy neighbor function was damaged by recovery")
	}
	if !reflect.DeepEqual(tol.Decoded.CodeOffsets, strict.CodeOffsets) {
		t.Errorf("code offsets %v, want %v", tol.Decoded.CodeOffsets, strict.CodeOffsets)
	}
	found := false
	for _, dg := range tol.Diags {
		if dg.Status == wasm.SectionMalformed && dg.Offset == int(strict.CodeOffsets[0]) {
			found = true
		}
	}
	if !found {
		t.Errorf("no malformed diag at the corrupt entry's offset; diags: %+v", tol.Diags)
	}
}

// TestDecodeTolerantOutOfOrder: a duplicated non-custom section is
// diagnosed but still parsed (last occurrence wins).
func TestDecodeTolerantOutOfOrder(t *testing.T) {
	bin := compileTolerantSeed(t, false)
	// Append a second type section declaring one ()->() functype.
	bad := appendSection(bin, 1, []byte{0x01, 0x60, 0x00, 0x00})
	tol, err := wasm.DecodeTolerant(bad)
	if err != nil {
		t.Fatal(err)
	}
	last := tol.Diags[len(tol.Diags)-1]
	if last.Status != wasm.SectionOutOfOrder {
		t.Errorf("last diag status = %q, want out_of_order", last.Status)
	}
	if got := len(tol.Decoded.Module.Types); got != 1 {
		t.Errorf("duplicate type section should win: %d types, want 1", got)
	}
}

// TestErrMalformedSectionTyped: mid-payload failures in strict decoding
// carry the section id and offset of the failing section.
func TestErrMalformedSectionTyped(t *testing.T) {
	bin := compileTolerantSeed(t, false)
	d, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first code entry body as above: strict decode must fail
	// with a typed error naming the code section.
	bad := append([]byte(nil), bin...)
	bad[d.CodeOffsets[0]+2] = 0xc5
	_, err = wasm.Decode(bad)
	var mal *wasm.ErrMalformedSection
	if !errors.As(err, &mal) {
		t.Fatalf("want ErrMalformedSection, got %v", err)
	}
	if mal.ID != 10 {
		t.Errorf("section id = %d, want 10 (code)", mal.ID)
	}
	if mal.Err == nil {
		t.Error("underlying error missing")
	}
}
