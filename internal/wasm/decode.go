package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/leb128"
)

// Magic and version of the WebAssembly binary format.
var (
	magic   = []byte{0x00, 0x61, 0x73, 0x6d}
	version = []byte{0x01, 0x00, 0x00, 0x00}
)

// ErrNotWasm is returned when the input does not start with the wasm magic.
var ErrNotWasm = errors.New("wasm: not a WebAssembly binary")

// ErrMalformedSection reports a decoding failure localized to one section:
// which section rejected its payload (by id) and where its header sits in
// the file. Decode wraps every section-level failure in it, so callers
// that triage real-world binaries (the ingest layer) can classify
// failures with errors.As instead of matching message strings.
type ErrMalformedSection struct {
	// ID is the section id (0 for a custom section).
	ID byte
	// Offset is the file offset of the section's id byte.
	Offset int
	// Err is the underlying cause.
	Err error
}

func (e *ErrMalformedSection) Error() string {
	msg := e.Err.Error()
	msg = strings.TrimPrefix(msg, "wasm: ")
	return fmt.Sprintf("wasm: malformed section %d at offset %d: %s", e.ID, e.Offset, msg)
}

func (e *ErrMalformedSection) Unwrap() error { return e.Err }

// reader is a cursor over the binary with absolute-offset tracking, so
// function code offsets can be reported for DWARF matching.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("wasm: truncated at offset %d (need %d bytes)", r.pos, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	v, n, err := leb128.Uint(r.buf[r.pos:], 32)
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return uint32(v), nil
}

func (r *reader) s32() (int32, error) {
	v, n, err := leb128.Int(r.buf[r.pos:], 32)
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return int32(v), nil
}

func (r *reader) s64() (int64, error) {
	v, n, err := leb128.Int(r.buf[r.pos:], 64)
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return v, nil
}

func (r *reader) s33() (int64, error) {
	v, n, err := leb128.Int(r.buf[r.pos:], 33)
	if err != nil {
		return 0, fmt.Errorf("wasm: at offset %d: %w", r.pos, err)
	}
	r.pos += n
	return v, nil
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) valType() (ValType, error) {
	b, err := r.byte()
	if err != nil {
		return 0, err
	}
	vt := ValType(b)
	if !vt.Valid() {
		return 0, fmt.Errorf("wasm: invalid value type 0x%02x at offset %d", b, r.pos-1)
	}
	return vt, nil
}

func (r *reader) limits() (Limits, error) {
	flag, err := r.byte()
	if err != nil {
		return Limits{}, err
	}
	min, err := r.u32()
	if err != nil {
		return Limits{}, err
	}
	l := Limits{Min: min}
	switch flag {
	case 0:
	case 1:
		l.HasMax = true
		if l.Max, err = r.u32(); err != nil {
			return Limits{}, err
		}
	default:
		return Limits{}, fmt.Errorf("wasm: invalid limits flag 0x%02x", flag)
	}
	return l, nil
}

// Decoded is a decoded module along with layout information (per-function
// code offsets) needed to match functions to DWARF low_pc values.
type Decoded struct {
	Module *Module
	// CodeOffsets[i] is the file offset of the i-th module-defined
	// function's code entry (the offset of its size field), matching
	// what the encoder reports and what the DWARF emitter records
	// as DW_AT_low_pc.
	CodeOffsets []uint32
}

// Decode parses a complete WebAssembly binary.
func Decode(data []byte) (*Decoded, error) {
	r := &reader{buf: data}
	hdr, err := r.bytes(8)
	if err != nil {
		return nil, ErrNotWasm
	}
	for i := 0; i < 4; i++ {
		if hdr[i] != magic[i] {
			return nil, ErrNotWasm
		}
		if hdr[4+i] != version[i] {
			return nil, fmt.Errorf("wasm: unsupported version %x", hdr[4:8])
		}
	}

	m := &Module{}
	d := &Decoded{Module: m}
	lastSec := -1
	for r.remaining() > 0 {
		secOff := r.pos
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, &ErrMalformedSection{ID: id, Offset: secOff, Err: err}
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return nil, &ErrMalformedSection{ID: id, Offset: secOff, Err: err}
		}
		// Non-custom sections must appear at most once, in order.
		if id != secCustom {
			if int(id) <= lastSec {
				return nil, &ErrMalformedSection{ID: id, Offset: secOff, Err: fmt.Errorf("wasm: section %d out of order", id)}
			}
			lastSec = int(id)
		}
		// Section-relative offsets must be translated to file offsets.
		base := r.pos - int(size)
		sr := &reader{buf: body}
		if id == secCustom {
			name, err := sr.name()
			if err != nil {
				return nil, &ErrMalformedSection{ID: id, Offset: secOff, Err: err}
			}
			m.Customs = append(m.Customs, Custom{Name: name, Bytes: append([]byte(nil), body[sr.pos:]...)})
			continue
		}
		if err := decodeKnownSection(id, sr, m, d, base); err != nil {
			return nil, &ErrMalformedSection{ID: id, Offset: secOff, Err: err}
		}
	}
	if len(d.CodeOffsets) != len(m.Funcs) {
		if len(m.Funcs) != 0 {
			return nil, fmt.Errorf("wasm: function section has %d entries but code section has %d", len(m.Funcs), len(d.CodeOffsets))
		}
	}
	return d, nil
}

// decodeKnownSection dispatches a non-custom section payload to its
// decoder; base is the file offset of the payload, which the code section
// needs to record per-function code offsets. Both the strict Decode and
// the tolerant loader route through it.
func decodeKnownSection(id byte, sr *reader, m *Module, d *Decoded, base int) error {
	switch id {
	case secType:
		return decodeTypeSection(sr, m)
	case secImport:
		return decodeImportSection(sr, m)
	case secFunction:
		return decodeFunctionSection(sr, m)
	case secTable:
		return decodeTableSection(sr, m)
	case secMemory:
		return decodeMemorySection(sr, m)
	case secGlobal:
		return decodeGlobalSection(sr, m)
	case secExport:
		return decodeExportSection(sr, m)
	case secStart:
		idx, err := sr.u32()
		if err != nil {
			return err
		}
		m.Start = &idx
		return nil
	case secElem:
		return decodeElemSection(sr, m)
	case secCode:
		return decodeCodeSection(sr, m, d, base)
	case secData:
		return decodeDataSection(sr, m)
	}
	return fmt.Errorf("wasm: unknown section id %d", id)
}

func decodeTypeSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		b, err := r.byte()
		if err != nil {
			return err
		}
		if b != 0x60 {
			return fmt.Errorf("wasm: expected functype 0x60, got 0x%02x", b)
		}
		var ft FuncType
		np, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			vt, err := r.valType()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, vt)
		}
		nr, err := r.u32()
		if err != nil {
			return err
		}
		if nr > 1 {
			return fmt.Errorf("wasm: multi-value results not supported (%d results)", nr)
		}
		for j := uint32(0); j < nr; j++ {
			vt, err := r.valType()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, vt)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImportSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var imp Import
		if imp.Module, err = r.name(); err != nil {
			return err
		}
		if imp.Name, err = r.name(); err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		imp.Kind = ExternKind(kind)
		switch imp.Kind {
		case KindFunc:
			if imp.TypeIdx, err = r.u32(); err != nil {
				return err
			}
		case KindTable:
			et, err := r.byte()
			if err != nil {
				return err
			}
			if et != 0x70 {
				return fmt.Errorf("wasm: unsupported table element type 0x%02x", et)
			}
			if imp.Table.Limits, err = r.limits(); err != nil {
				return err
			}
		case KindMemory:
			if imp.Mem, err = r.limits(); err != nil {
				return err
			}
		case KindGlobal:
			vt, err := r.valType()
			if err != nil {
				return err
			}
			mut, err := r.byte()
			if err != nil {
				return err
			}
			imp.Global = GlobalType{Type: vt, Mutable: mut == 1}
		default:
			return fmt.Errorf("wasm: invalid import kind %d", kind)
		}
		m.Imports = append(m.Imports, imp)
	}
	return nil
}

func decodeFunctionSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, Function{TypeIdx: ti})
	}
	return nil
}

func decodeTableSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		et, err := r.byte()
		if err != nil {
			return err
		}
		if et != 0x70 {
			return fmt.Errorf("wasm: unsupported table element type 0x%02x", et)
		}
		lim, err := r.limits()
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, Table{Limits: lim})
	}
	return nil
}

func decodeMemorySection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		lim, err := r.limits()
		if err != nil {
			return err
		}
		m.Memories = append(m.Memories, lim)
	}
	return nil
}

func decodeGlobalSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		vt, err := r.valType()
		if err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		init, err := decodeExpr(r)
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, Global{Type: GlobalType{Type: vt, Mutable: mut == 1}, Init: init})
	}
	return nil
}

func decodeExportSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var ex Export
		if ex.Name, err = r.name(); err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		ex.Kind = ExternKind(kind)
		if ex.Index, err = r.u32(); err != nil {
			return err
		}
		m.Exports = append(m.Exports, ex)
	}
	return nil
}

func decodeElemSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := r.u32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return fmt.Errorf("wasm: unsupported element segment flag %d", flag)
		}
		off, err := decodeExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		// Each function index takes at least one byte; a count beyond the
		// remaining input is corrupt and must not drive the allocation.
		if int64(cnt) > int64(r.remaining()) {
			return fmt.Errorf("wasm: element segment declares %d functions with %d bytes left", cnt, r.remaining())
		}
		fns := make([]uint32, cnt)
		for j := range fns {
			if fns[j], err = r.u32(); err != nil {
				return err
			}
		}
		m.Elems = append(m.Elems, Elem{Offset: off, Funcs: fns})
	}
	return nil
}

func decodeCodeSection(r *reader, m *Module, d *Decoded, base int) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if int(n) != len(m.Funcs) {
		return fmt.Errorf("wasm: code section has %d entries, function section %d", n, len(m.Funcs))
	}
	for i := uint32(0); i < n; i++ {
		// The code offset of a function is the file offset of its size
		// field; this matches the encoder and the DWARF low_pc values.
		d.CodeOffsets = append(d.CodeOffsets, uint32(base+r.pos))
		size, err := r.u32()
		if err != nil {
			return err
		}
		end := r.pos + int(size)
		if end > len(r.buf) {
			return fmt.Errorf("wasm: code entry %d overflows section", i)
		}
		nl, err := r.u32()
		if err != nil {
			return err
		}
		f := &m.Funcs[i]
		for j := uint32(0); j < nl; j++ {
			cnt, err := r.u32()
			if err != nil {
				return err
			}
			vt, err := r.valType()
			if err != nil {
				return err
			}
			f.Locals = append(f.Locals, LocalDecl{Count: cnt, Type: vt})
		}
		body, err := decodeExpr(r)
		if err != nil {
			return fmt.Errorf("wasm: function %d: %w", i, err)
		}
		f.Body = body
		if r.pos != end {
			return fmt.Errorf("wasm: code entry %d: %d trailing bytes", i, end-r.pos)
		}
	}
	return nil
}

func decodeDataSection(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := r.u32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return fmt.Errorf("wasm: unsupported data segment flag %d", flag)
		}
		off, err := decodeExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		b, err := r.bytes(int(cnt))
		if err != nil {
			return err
		}
		m.Datas = append(m.Datas, Data{Offset: off, Bytes: append([]byte(nil), b...)})
	}
	return nil
}

// decodeExpr reads instructions until the matching top-level `end`, which
// is consumed but not included in the result.
func decodeExpr(r *reader) ([]Instr, error) {
	var out []Instr
	depth := 0
	for {
		in, err := decodeInstr(r)
		if err != nil {
			return nil, err
		}
		switch in.Op {
		case OpBlock, OpLoop, OpIf:
			depth++
		case OpEnd:
			if depth == 0 {
				return out, nil
			}
			depth--
		}
		out = append(out, in)
	}
}

func decodeInstr(r *reader) (Instr, error) {
	b, err := r.byte()
	if err != nil {
		return Instr{}, err
	}
	op := Opcode(b)
	if !op.Known() {
		return Instr{}, fmt.Errorf("wasm: unknown opcode 0x%02x at offset %d", b, r.pos-1)
	}
	in := Instr{Op: op}
	switch op.Imm() {
	case ImmNone:
	case ImmBlockType:
		if in.Imm, err = r.s33(); err != nil {
			return Instr{}, err
		}
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		v, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		in.Imm = int64(v)
	case ImmBrTable:
		n, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		// Each label takes at least one byte; cap the allocation by the
		// remaining input so a corrupt count cannot exhaust memory.
		if int64(n) > int64(r.remaining()) {
			return Instr{}, fmt.Errorf("wasm: br_table declares %d targets with %d bytes left", n, r.remaining())
		}
		in.Table = make([]uint32, n)
		for i := range in.Table {
			if in.Table[i], err = r.u32(); err != nil {
				return Instr{}, err
			}
		}
		def, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		in.Imm = int64(def)
	case ImmCallInd:
		ti, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		tbl, err := r.byte()
		if err != nil {
			return Instr{}, err
		}
		in.Imm, in.Imm2 = int64(ti), int64(tbl)
	case ImmMem:
		align, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		off, err := r.u32()
		if err != nil {
			return Instr{}, err
		}
		in.Imm, in.Imm2 = int64(align), int64(off)
	case ImmMemSize:
		if _, err := r.byte(); err != nil {
			return Instr{}, err
		}
	case ImmI32:
		v, err := r.s32()
		if err != nil {
			return Instr{}, err
		}
		in.Imm = int64(v)
	case ImmI64:
		if in.Imm, err = r.s64(); err != nil {
			return Instr{}, err
		}
	case ImmF32:
		b, err := r.bytes(4)
		if err != nil {
			return Instr{}, err
		}
		in.F32 = math.Float32frombits(binary.LittleEndian.Uint32(b))
	case ImmF64:
		b, err := r.bytes(8)
		if err != nil {
			return Instr{}, err
		}
		in.F64 = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return in, nil
}
