// Package wasm implements a decoder, encoder, and text renderer for the
// WebAssembly MVP binary format (plus sign-extension operators), sufficient
// to build, inspect, and disassemble the object files used by the
// SnowWhite type-prediction pipeline.
package wasm

import "fmt"

// ValType is a WebAssembly value type.
type ValType byte

// The four WebAssembly MVP value types.
const (
	I32 ValType = 0x7f
	I64 ValType = 0x7e
	F32 ValType = 0x7d
	F64 ValType = 0x7c
)

// String returns the text-format name of the value type ("i32", ...).
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valtype(0x%02x)", byte(t))
}

// Valid reports whether t is one of the four MVP value types.
func (t ValType) Valid() bool {
	return t == I32 || t == I64 || t == F32 || t == F64
}

// FuncType is a function signature: parameter and result types.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two function types are identical.
func (ft FuncType) Equal(other FuncType) bool {
	if len(ft.Params) != len(other.Params) || len(ft.Results) != len(other.Results) {
		return false
	}
	for i, p := range ft.Params {
		if p != other.Params[i] {
			return false
		}
	}
	for i, r := range ft.Results {
		if r != other.Results[i] {
			return false
		}
	}
	return true
}

// String renders the signature in text format, e.g. "(param i32 f64) (result i32)".
func (ft FuncType) String() string {
	s := "(param"
	for _, p := range ft.Params {
		s += " " + p.String()
	}
	s += ") (result"
	for _, r := range ft.Results {
		s += " " + r.String()
	}
	return s + ")"
}

// Limits bounds a memory or table.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// ExternKind identifies the namespace of an import or export.
type ExternKind byte

// Import/export kinds.
const (
	KindFunc   ExternKind = 0
	KindTable  ExternKind = 1
	KindMemory ExternKind = 2
	KindGlobal ExternKind = 3
)

// String returns the text-format kind name.
func (k ExternKind) String() string {
	switch k {
	case KindFunc:
		return "func"
	case KindTable:
		return "table"
	case KindMemory:
		return "memory"
	case KindGlobal:
		return "global"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Import declares an imported function, table, memory, or global.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind
	// TypeIdx is set for function imports.
	TypeIdx uint32
	// Table is set for table imports.
	Table Table
	// Mem is set for memory imports.
	Mem Limits
	// Global is set for global imports.
	Global GlobalType
}

// Export exposes a module-internal entity under a name.
type Export struct {
	Name  string
	Kind  ExternKind
	Index uint32
}

// Table is a funcref table.
type Table struct {
	Limits Limits
}

// GlobalType describes a global's value type and mutability.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// Global is a module-defined global with a constant initializer.
type Global struct {
	Type GlobalType
	Init []Instr // constant expression, without the trailing `end`
}

// LocalDecl declares Count consecutive locals of the same type, as in the
// binary format's compressed local vector.
type LocalDecl struct {
	Count uint32
	Type  ValType
}

// Function is a module-defined (non-imported) function.
type Function struct {
	TypeIdx uint32
	Locals  []LocalDecl
	Body    []Instr // without the trailing `end`
	// Name is an optional debug name (from the name section or the
	// producer); it is not part of the code section encoding.
	Name string
}

// NumLocals returns the total number of declared locals (excluding params).
func (f *Function) NumLocals() int {
	n := 0
	for _, d := range f.Locals {
		n += int(d.Count)
	}
	return n
}

// Elem is an element segment initializing the table with function indices.
type Elem struct {
	Offset []Instr // constant expression
	Funcs  []uint32
}

// Data is a data segment initializing linear memory.
type Data struct {
	Offset []Instr // constant expression
	Bytes  []byte
}

// Custom is a custom section, e.g. ".debug_info" carrying DWARF.
type Custom struct {
	Name  string
	Bytes []byte
}

// Module is a decoded (or to-be-encoded) WebAssembly module.
type Module struct {
	Types    []FuncType
	Imports  []Import
	Funcs    []Function
	Tables   []Table
	Memories []Limits
	Globals  []Global
	Exports  []Export
	Start    *uint32
	Elems    []Elem
	Datas    []Data
	Customs  []Custom
}

// NumImportedFuncs returns the number of imported functions; module-defined
// functions are indexed after them.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == KindFunc {
			n++
		}
	}
	return n
}

// FuncTypeAt returns the signature of the function with the given index in
// the module's function index space (imports first).
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	i := int(idx)
	for _, imp := range m.Imports {
		if imp.Kind != KindFunc {
			continue
		}
		if i == 0 {
			if int(imp.TypeIdx) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import type index %d out of range", imp.TypeIdx)
			}
			return m.Types[imp.TypeIdx], nil
		}
		i--
	}
	if i >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Funcs[i].TypeIdx
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: type index %d out of range", ti)
	}
	return m.Types[ti], nil
}

// AddType interns ft in the type section and returns its index.
func (m *Module) AddType(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}

// Custom returns the first custom section with the given name, or nil.
func (m *Module) Custom(name string) *Custom {
	for i := range m.Customs {
		if m.Customs[i].Name == name {
			return &m.Customs[i]
		}
	}
	return nil
}

// Section IDs of the binary format.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)
