package wasm

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// testModule builds a module exercising all sections.
func testModule() *Module {
	m := &Module{}
	ti := m.AddType(FuncType{Params: []ValType{I32, F64}, Results: []ValType{I32}})
	tv := m.AddType(FuncType{})
	m.Imports = append(m.Imports,
		Import{Module: "env", Name: "ext", Kind: KindFunc, TypeIdx: ti},
		Import{Module: "env", Name: "mem", Kind: KindMemory, Mem: Limits{Min: 1, Max: 4, HasMax: true}},
		Import{Module: "env", Name: "g", Kind: KindGlobal, Global: GlobalType{Type: I32, Mutable: true}},
	)
	m.Funcs = append(m.Funcs, Function{
		TypeIdx: ti,
		Locals:  []LocalDecl{{Count: 2, Type: I32}, {Count: 1, Type: F64}},
		Body: []Instr{
			I1(OpBlock, BlockTypeEmpty),
			I1(OpLocalGet, 0),
			I1(OpBrIf, 0),
			ConstI32(42),
			I1(OpLocalSet, 2),
			I(OpEnd),
			I1(OpLocalGet, 0),
			Mem(OpF64Load, 3, 8),
			I(OpDrop),
			ConstF64(2.5),
			I(OpDrop),
			ConstF32(1.5),
			I(OpDrop),
			ConstI64(-7),
			I(OpDrop),
			ConstI32(42),
			I1(OpLocalSet, 2),
			I1(OpLocalGet, 0), // the function result a branch must carry
			ConstI32(0),       // br_table index
			Instr{Op: OpBrTable, Table: []uint32{0, 0}, Imm: 0},
			I1(OpLocalGet, 0),
			I(OpReturn),
		},
	})
	m.Funcs = append(m.Funcs, Function{TypeIdx: tv, Body: []Instr{I(OpNop)}})
	m.Tables = append(m.Tables, Table{Limits: Limits{Min: 2}})
	m.Globals = append(m.Globals, Global{Type: GlobalType{Type: I32, Mutable: false}, Init: []Instr{ConstI32(1024)}})
	m.Exports = append(m.Exports, Export{Name: "f", Kind: KindFunc, Index: 1})
	start := uint32(2)
	m.Start = &start
	m.Elems = append(m.Elems, Elem{Offset: []Instr{ConstI32(0)}, Funcs: []uint32{1, 2}})
	m.Datas = append(m.Datas, Data{Offset: []Instr{ConstI32(16)}, Bytes: []byte("hello")})
	m.Customs = append(m.Customs, Custom{Name: ".debug_info", Bytes: []byte{1, 2, 3}})
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testModule()
	bin, layout, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(layout.CodeOffsets) != 2 {
		t.Fatalf("layout has %d code offsets, want 2", len(layout.CodeOffsets))
	}
	d, err := Decode(bin)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := d.Module
	if !reflect.DeepEqual(got.Types, m.Types) {
		t.Errorf("Types = %v, want %v", got.Types, m.Types)
	}
	if !reflect.DeepEqual(got.Imports, m.Imports) {
		t.Errorf("Imports mismatch:\n got %+v\nwant %+v", got.Imports, m.Imports)
	}
	if !reflect.DeepEqual(got.Funcs, m.Funcs) {
		t.Errorf("Funcs mismatch:\n got %+v\nwant %+v", got.Funcs, m.Funcs)
	}
	if !reflect.DeepEqual(got.Globals, m.Globals) || !reflect.DeepEqual(got.Exports, m.Exports) {
		t.Errorf("Globals/Exports mismatch")
	}
	if got.Start == nil || *got.Start != 2 {
		t.Errorf("Start = %v, want 2", got.Start)
	}
	if !reflect.DeepEqual(got.Elems, m.Elems) || !reflect.DeepEqual(got.Datas, m.Datas) {
		t.Errorf("Elems/Datas mismatch")
	}
	if !reflect.DeepEqual(got.Customs, m.Customs) {
		t.Errorf("Customs mismatch: %+v", got.Customs)
	}
	if !reflect.DeepEqual(d.CodeOffsets, layout.CodeOffsets) {
		t.Errorf("decoder code offsets %v != encoder layout %v", d.CodeOffsets, layout.CodeOffsets)
	}
	// The code offset must point at the function's size field.
	for i, off := range layout.CodeOffsets {
		if int(off) >= len(bin) {
			t.Fatalf("offset %d out of file", off)
		}
		_ = i
	}
}

func TestCodeOffsetsPointAtEntries(t *testing.T) {
	m := testModule()
	bin, layout, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding with more custom sections must not move code offsets.
	m.Customs = append(m.Customs, Custom{Name: "extra", Bytes: bytes.Repeat([]byte{9}, 100)})
	bin2, layout2, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(layout.CodeOffsets, layout2.CodeOffsets) {
		t.Errorf("custom sections moved code offsets: %v vs %v", layout.CodeOffsets, layout2.CodeOffsets)
	}
	_ = bin
	_ = bin2
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not wasm")); err != ErrNotWasm {
		t.Errorf("Decode(garbage) = %v, want ErrNotWasm", err)
	}
	if _, err := Decode(nil); err != ErrNotWasm {
		t.Errorf("Decode(nil) = %v, want ErrNotWasm", err)
	}
	bad := []byte{0, 0x61, 0x73, 0x6d, 2, 0, 0, 0}
	if _, err := Decode(bad); err == nil || strings.Contains(err.Error(), "not a") {
		t.Errorf("bad version: %v", err)
	}
	// Truncated section.
	m := testModule()
	bin, _, _ := Encode(m)
	if _, err := Decode(bin[:len(bin)-2]); err == nil {
		t.Error("truncated binary decoded without error")
	}
}

func TestFuncTypeAt(t *testing.T) {
	m := testModule()
	ft, err := m.FuncTypeAt(0) // the import
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 2 {
		t.Errorf("import signature params = %d, want 2", len(ft.Params))
	}
	ft, err = m.FuncTypeAt(2) // second module function
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 0 || len(ft.Results) != 0 {
		t.Errorf("func 2 signature = %v", ft)
	}
	if _, err := m.FuncTypeAt(99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{ConstI32(42), "i32.const 42"},
		{Mem(OpF64Load, 3, 8), "f64.load offset=8 align=3"},
		{Mem(OpI32Load, 0, 0), "i32.load"},
		{I1(OpLocalGet, 0), "local.get 0"},
		{I(OpI32Eqz), "i32.eqz"},
		{I1(OpBlock, BlockTypeEmpty), "block"},
		{I1(OpIf, int64(I32)), "if (result i32)"},
		{ConstF64(2.5), "f64.const 2.5"},
		{Instr{Op: OpBrTable, Table: []uint32{1, 2}, Imm: 0}, "br_table 1 2 0"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestInstrTokens(t *testing.T) {
	// Per Section 4.1: call omits the callee, loads omit alignment.
	if got := I1(OpCall, 17).Tokens(); !reflect.DeepEqual(got, []string{"call"}) {
		t.Errorf("call tokens = %v", got)
	}
	if got := Mem(OpF64Load, 3, 8).Tokens(); !reflect.DeepEqual(got, []string{"f64.load", "offset=8"}) {
		t.Errorf("f64.load tokens = %v", got)
	}
	if got := ConstI32(42).Tokens(); !reflect.DeepEqual(got, []string{"i32.const", "42"}) {
		t.Errorf("i32.const tokens = %v", got)
	}
}

func TestBodyTokens(t *testing.T) {
	body := []Instr{ConstI32(1), I1(OpLocalSet, 0), I(OpReturn)}
	got := BodyTokens(body)
	want := []string{"i32.const", "1", ";", "local.set", "0", ";", "return"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BodyTokens = %v, want %v", got, want)
	}
}

func TestAbstract(t *testing.T) {
	if got := I1(OpLocalGet, 5).Abstract(); got != "local.get" {
		t.Errorf("Abstract = %q", got)
	}
	if got := Mem(OpI32Load, 2, 8).Abstract(); got != "i32.load" {
		t.Errorf("Abstract = %q", got)
	}
}

func TestDisassemble(t *testing.T) {
	m := testModule()
	text := Disassemble(m)
	for _, want := range []string{"(module", "f64.load offset=8", "(export \"f\"", ".debug_info"} {
		if !strings.Contains(text, want) {
			t.Errorf("Disassemble output missing %q:\n%s", want, text)
		}
	}
	if _, err := DisassembleFunction(m, 99); err == nil {
		t.Error("DisassembleFunction(99) should fail")
	}
}

func TestOpcodeTableConsistency(t *testing.T) {
	for op, info := range opTable {
		if info.name == "" {
			t.Errorf("opcode 0x%02x has no name", byte(op))
		}
		if !op.Known() {
			t.Errorf("opcode %s not Known", info.name)
		}
	}
	if Opcode(0xff).Known() {
		t.Error("0xff should be unknown")
	}
	if got := Opcode(0xff).Name(); !strings.Contains(got, "0xff") {
		t.Errorf("unknown opcode name = %q", got)
	}
}

func TestQuickConstRoundTrip(t *testing.T) {
	f := func(v int32, u int64, f32 float32, f64v float64) bool {
		if math.IsNaN(float64(f32)) || math.IsNaN(f64v) {
			return true
		}
		m := &Module{}
		ti := m.AddType(FuncType{})
		m.Funcs = append(m.Funcs, Function{TypeIdx: ti, Body: []Instr{
			ConstI32(v), I(OpDrop),
			ConstI64(u), I(OpDrop),
			ConstF32(f32), I(OpDrop),
			ConstF64(f64v), I(OpDrop),
		}})
		bin, _, err := Encode(m)
		if err != nil {
			return false
		}
		d, err := Decode(bin)
		if err != nil {
			return false
		}
		b := d.Module.Funcs[0].Body
		return b[0].Imm == int64(v) && b[2].Imm == u && b[4].F32 == f32 && b[6].F64 == f64v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddTypeDedups(t *testing.T) {
	m := &Module{}
	a := m.AddType(FuncType{Params: []ValType{I32}})
	b := m.AddType(FuncType{Params: []ValType{I32}})
	c := m.AddType(FuncType{Params: []ValType{I64}})
	if a != b || a == c {
		t.Errorf("AddType dedup broken: %d %d %d", a, b, c)
	}
}
