// Native fuzz target for the WebAssembly decoder, seeded from binaries
// the internal C compiler actually emits (external test package so the
// seeds can come from internal/cc, which imports wasm). Run with:
//
//	go test -fuzz=FuzzDecode ./internal/wasm
package wasm_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

// fuzzSeedSources cover the module shapes the corpus generator produces:
// arithmetic over locals, memory loads/stores, control flow, imported
// functions, and DWARF custom sections riding along.
var fuzzSeedSources = []string{
	`int add(int a, int b) { return a + b; }`,
	`double first(double *xs, int n) { if (xs != 0 && n > 0) { return xs[0]; } return 0.0; }`,
	`int abs_(int x) { if (x < 0) { return -x; } return x; }
long sum(const long *v, int n) { long s = 0; int i; for (i = 0; i < n; i++) { s += v[i]; } return s; }`,
	`struct point { int x; int y; };
int manhattan(struct point *p) { int ax = p->x; int ay = p->y; if (ax < 0) { ax = -ax; } if (ay < 0) { ay = -ay; } return ax + ay; }`,
	`extern int getchar(void);
int drain(void) { int n = 0; while (getchar() != -1) { n++; } return n; }`,
}

// FuzzDecode feeds mutated WebAssembly binaries to the decoder: every
// input must produce a module or an error, never a panic, and a module
// that decodes must survive re-encoding and validation (reverse-
// engineering tools see malformed binaries all the time).
func FuzzDecode(f *testing.F) {
	for _, src := range fuzzSeedSources {
		for _, debug := range []bool{true, false} {
			obj, err := cc.Compile(src, cc.Options{FileName: "seed.c", Debug: debug})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(obj.Binary)
			// Truncated variants broaden initial coverage into the
			// mid-section error paths.
			f.Add(obj.Binary[:len(obj.Binary)/2])
			f.Add(obj.Binary[:8])
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := wasm.Decode(data)
		if err != nil {
			return
		}
		if d == nil {
			t.Fatal("Decode returned nil module without error")
		}
		// Whatever decodes must re-encode and validate without panicking;
		// both may reject it with an error.
		_, _, _ = wasm.Encode(d.Module)
		_ = wasm.Validate(d.Module)
	})
}
