package wasm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/leb128"
)

// Layout reports where the encoder placed each module-defined function's
// code entry in the final binary. These offsets are what the DWARF emitter
// records as DW_AT_low_pc, which in turn is how the extraction pipeline
// matches DWARF subprograms to WebAssembly functions (paper, Section 5).
type Layout struct {
	// CodeOffsets[i] is the file offset of the size field of the i-th
	// module-defined function's code entry.
	CodeOffsets []uint32
}

type sectionWriter struct {
	buf []byte
}

func (w *sectionWriter) u32(v uint32)      { w.buf = leb128.AppendUint(w.buf, uint64(v)) }
func (w *sectionWriter) s32(v int32)       { w.buf = leb128.AppendInt(w.buf, int64(v)) }
func (w *sectionWriter) s64(v int64)       { w.buf = leb128.AppendInt(w.buf, v) }
func (w *sectionWriter) s33(v int64)       { w.buf = leb128.AppendInt(w.buf, v) }
func (w *sectionWriter) byte(b byte)       { w.buf = append(w.buf, b) }
func (w *sectionWriter) raw(b []byte)      { w.buf = append(w.buf, b...) }
func (w *sectionWriter) name(s string)     { w.u32(uint32(len(s))); w.raw([]byte(s)) }
func (w *sectionWriter) valType(v ValType) { w.byte(byte(v)) }

func (w *sectionWriter) limits(l Limits) {
	if l.HasMax {
		w.byte(1)
		w.u32(l.Min)
		w.u32(l.Max)
	} else {
		w.byte(0)
		w.u32(l.Min)
	}
}

func (w *sectionWriter) funcType(ft FuncType) {
	w.byte(0x60)
	w.u32(uint32(len(ft.Params)))
	for _, p := range ft.Params {
		w.valType(p)
	}
	w.u32(uint32(len(ft.Results)))
	for _, r := range ft.Results {
		w.valType(r)
	}
}

func (w *sectionWriter) instr(in Instr) error {
	w.byte(byte(in.Op))
	switch in.Op.Imm() {
	case ImmNone:
	case ImmBlockType:
		w.s33(in.Imm)
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		if in.Imm < 0 || in.Imm > math.MaxUint32 {
			return fmt.Errorf("wasm: index immediate %d out of range for %s", in.Imm, in.Op.Name())
		}
		w.u32(uint32(in.Imm))
	case ImmBrTable:
		w.u32(uint32(len(in.Table)))
		for _, l := range in.Table {
			w.u32(l)
		}
		w.u32(uint32(in.Imm))
	case ImmCallInd:
		w.u32(uint32(in.Imm))
		w.byte(byte(in.Imm2))
	case ImmMem:
		w.u32(uint32(in.Imm))
		w.u32(uint32(in.Imm2))
	case ImmMemSize:
		w.byte(0)
	case ImmI32:
		if in.Imm < math.MinInt32 || in.Imm > math.MaxInt32 {
			return fmt.Errorf("wasm: i32.const immediate %d out of range", in.Imm)
		}
		w.s32(int32(in.Imm))
	case ImmI64:
		w.s64(in.Imm)
	case ImmF32:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(in.F32))
		w.raw(b[:])
	case ImmF64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(in.F64))
		w.raw(b[:])
	}
	return nil
}

func (w *sectionWriter) expr(body []Instr) error {
	for _, in := range body {
		if err := w.instr(in); err != nil {
			return err
		}
	}
	w.byte(byte(OpEnd))
	return nil
}

// appendSection appends a section with the given id and body to out.
func appendSection(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = leb128.AppendUint(out, uint64(len(body)))
	return append(out, body...)
}

// Encode serializes the module to the binary format and reports the layout
// of the code section. Custom sections are emitted after the data section
// in the order they appear in m.Customs.
func Encode(m *Module) ([]byte, *Layout, error) {
	out := append([]byte(nil), magic...)
	out = append(out, version...)
	layout := &Layout{}

	if len(m.Types) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Types)))
		for _, ft := range m.Types {
			w.funcType(ft)
		}
		out = appendSection(out, secType, w.buf)
	}

	if len(m.Imports) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Imports)))
		for _, imp := range m.Imports {
			w.name(imp.Module)
			w.name(imp.Name)
			w.byte(byte(imp.Kind))
			switch imp.Kind {
			case KindFunc:
				w.u32(imp.TypeIdx)
			case KindTable:
				w.byte(0x70)
				w.limits(imp.Table.Limits)
			case KindMemory:
				w.limits(imp.Mem)
			case KindGlobal:
				w.valType(imp.Global.Type)
				if imp.Global.Mutable {
					w.byte(1)
				} else {
					w.byte(0)
				}
			default:
				return nil, nil, fmt.Errorf("wasm: invalid import kind %d", imp.Kind)
			}
		}
		out = appendSection(out, secImport, w.buf)
	}

	if len(m.Funcs) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Funcs)))
		for _, f := range m.Funcs {
			w.u32(f.TypeIdx)
		}
		out = appendSection(out, secFunction, w.buf)
	}

	if len(m.Tables) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Tables)))
		for _, t := range m.Tables {
			w.byte(0x70)
			w.limits(t.Limits)
		}
		out = appendSection(out, secTable, w.buf)
	}

	if len(m.Memories) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Memories)))
		for _, l := range m.Memories {
			w.limits(l)
		}
		out = appendSection(out, secMemory, w.buf)
	}

	if len(m.Globals) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Globals)))
		for _, g := range m.Globals {
			w.valType(g.Type.Type)
			if g.Type.Mutable {
				w.byte(1)
			} else {
				w.byte(0)
			}
			if err := w.expr(g.Init); err != nil {
				return nil, nil, err
			}
		}
		out = appendSection(out, secGlobal, w.buf)
	}

	if len(m.Exports) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Exports)))
		for _, e := range m.Exports {
			w.name(e.Name)
			w.byte(byte(e.Kind))
			w.u32(e.Index)
		}
		out = appendSection(out, secExport, w.buf)
	}

	if m.Start != nil {
		w := &sectionWriter{}
		w.u32(*m.Start)
		out = appendSection(out, secStart, w.buf)
	}

	if len(m.Elems) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Elems)))
		for _, e := range m.Elems {
			w.u32(0)
			if err := w.expr(e.Offset); err != nil {
				return nil, nil, err
			}
			w.u32(uint32(len(e.Funcs)))
			for _, f := range e.Funcs {
				w.u32(f)
			}
		}
		out = appendSection(out, secElem, w.buf)
	}

	if len(m.Funcs) > 0 {
		// Encode each code entry separately so we can record its offset
		// in the final binary once the section header size is known.
		entries := make([][]byte, len(m.Funcs))
		total := 0
		for i := range m.Funcs {
			f := &m.Funcs[i]
			body := &sectionWriter{}
			body.u32(uint32(len(f.Locals)))
			for _, d := range f.Locals {
				body.u32(d.Count)
				body.valType(d.Type)
			}
			if err := body.expr(f.Body); err != nil {
				return nil, nil, fmt.Errorf("wasm: function %d: %w", i, err)
			}
			entry := leb128.AppendUint(nil, uint64(len(body.buf)))
			entry = append(entry, body.buf...)
			entries[i] = entry
			total += len(entry)
		}
		countLen := leb128.UintLen(uint64(len(m.Funcs)))
		secBodyLen := countLen + total
		// File offset where the section body begins:
		// current length + 1 (section id) + size-field length.
		bodyStart := len(out) + 1 + leb128.UintLen(uint64(secBodyLen))
		w := &sectionWriter{}
		w.u32(uint32(len(m.Funcs)))
		off := bodyStart + countLen
		for _, e := range entries {
			layout.CodeOffsets = append(layout.CodeOffsets, uint32(off))
			w.raw(e)
			off += len(e)
		}
		out = appendSection(out, secCode, w.buf)
	}

	if len(m.Datas) > 0 {
		w := &sectionWriter{}
		w.u32(uint32(len(m.Datas)))
		for _, d := range m.Datas {
			w.u32(0)
			if err := w.expr(d.Offset); err != nil {
				return nil, nil, err
			}
			w.u32(uint32(len(d.Bytes)))
			w.raw(d.Bytes)
		}
		out = appendSection(out, secData, w.buf)
	}

	for _, c := range m.Customs {
		w := &sectionWriter{}
		w.name(c.Name)
		w.raw(c.Bytes)
		out = appendSection(out, secCustom, w.buf)
	}

	return out, layout, nil
}
