package wasm

import (
	"fmt"

	"repro/internal/leb128"
)

// NameSection is the standard "name" custom section's content: an optional
// module name and per-function debug names (indexed over the full function
// index space, imports included).
type NameSection struct {
	Module string
	Funcs  map[uint32]string
}

// nameSubsection IDs per the WebAssembly spec appendix.
const (
	nameSubModule = 0
	nameSubFuncs  = 1
)

// EncodeNameSection serializes a "name" custom section payload.
func EncodeNameSection(ns *NameSection) []byte {
	var out []byte
	sub := func(id byte, body []byte) {
		out = append(out, id)
		out = leb128.AppendUint(out, uint64(len(body)))
		out = append(out, body...)
	}
	if ns.Module != "" {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(ns.Module)))
		b = append(b, ns.Module...)
		sub(nameSubModule, b)
	}
	if len(ns.Funcs) > 0 {
		// The name map must be sorted by index.
		idxs := make([]uint32, 0, len(ns.Funcs))
		for i := range ns.Funcs {
			idxs = append(idxs, i)
		}
		for i := 1; i < len(idxs); i++ {
			for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
				idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
			}
		}
		var b []byte
		b = leb128.AppendUint(b, uint64(len(idxs)))
		for _, i := range idxs {
			b = leb128.AppendUint(b, uint64(i))
			name := ns.Funcs[i]
			b = leb128.AppendUint(b, uint64(len(name)))
			b = append(b, name...)
		}
		sub(nameSubFuncs, b)
	}
	return out
}

// DecodeNameSection parses a "name" custom section payload. Unknown
// subsections are skipped, as the spec requires.
func DecodeNameSection(data []byte) (*NameSection, error) {
	ns := &NameSection{Funcs: map[uint32]string{}}
	pos := 0
	u := func() (uint64, error) {
		v, n, err := leb128.Uint(data[pos:], 32)
		pos += n
		return v, err
	}
	str := func() (string, error) {
		n, err := u()
		if err != nil {
			return "", err
		}
		if pos+int(n) > len(data) {
			return "", fmt.Errorf("wasm: truncated name")
		}
		s := string(data[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	for pos < len(data) {
		id := data[pos]
		pos++
		size, err := u()
		if err != nil {
			return nil, err
		}
		end := pos + int(size)
		if end > len(data) {
			return nil, fmt.Errorf("wasm: name subsection %d overflows", id)
		}
		switch id {
		case nameSubModule:
			if ns.Module, err = str(); err != nil {
				return nil, err
			}
		case nameSubFuncs:
			cnt, err := u()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < cnt; i++ {
				idx, err := u()
				if err != nil {
					return nil, err
				}
				name, err := str()
				if err != nil {
					return nil, err
				}
				ns.Funcs[uint32(idx)] = name
			}
		}
		pos = end
	}
	return ns, nil
}

// AttachNames embeds (or replaces) the "name" custom section built from
// the module's function names, as toolchains emit for debugging.
func AttachNames(m *Module, moduleName string) {
	ns := &NameSection{Module: moduleName, Funcs: map[uint32]string{}}
	nimp := uint32(m.NumImportedFuncs())
	fi := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind == KindFunc {
			ns.Funcs[fi] = imp.Name
			fi++
		}
	}
	for i := range m.Funcs {
		if m.Funcs[i].Name != "" {
			ns.Funcs[nimp+uint32(i)] = m.Funcs[i].Name
		}
	}
	data := EncodeNameSection(ns)
	if c := m.Custom("name"); c != nil {
		c.Bytes = data
		return
	}
	m.Customs = append(m.Customs, Custom{Name: "name", Bytes: data})
}

// ApplyNames decodes the module's "name" section (if present) and fills
// the in-memory function names from it.
func ApplyNames(m *Module) error {
	c := m.Custom("name")
	if c == nil {
		return nil
	}
	ns, err := DecodeNameSection(c.Bytes)
	if err != nil {
		return err
	}
	nimp := uint32(m.NumImportedFuncs())
	for idx, name := range ns.Funcs {
		if idx >= nimp && int(idx-nimp) < len(m.Funcs) {
			m.Funcs[idx-nimp].Name = name
		}
	}
	return nil
}
