package wasm

import (
	"fmt"
	"strconv"
	"strings"
)

// BlockTypeEmpty is the s33 block type for blocks with no result value.
const BlockTypeEmpty int64 = -64 // 0x40 as a signed 7-bit value

// Instr is one decoded WebAssembly instruction. The meaning of the
// immediate fields depends on Op.Imm():
//
//	ImmBlockType: Imm = s33 block type (BlockTypeEmpty or a ValType byte)
//	ImmLabel:     Imm = label index
//	ImmBrTable:   Table = target labels, Imm = default label
//	ImmFunc:      Imm = function index
//	ImmCallInd:   Imm = type index, Imm2 = table index
//	ImmLocal:     Imm = local index
//	ImmGlobal:    Imm = global index
//	ImmMem:       Imm = alignment exponent, Imm2 = offset
//	ImmI32/I64:   Imm = constant value
//	ImmF32:       F32 = constant value
//	ImmF64:       F64 = constant value
type Instr struct {
	Op    Opcode
	Imm   int64
	Imm2  int64
	F32   float32
	F64   float64
	Table []uint32
}

// I returns an instruction without immediates.
func I(op Opcode) Instr { return Instr{Op: op} }

// I1 returns an instruction with a single integer immediate.
func I1(op Opcode, imm int64) Instr { return Instr{Op: op, Imm: imm} }

// Mem returns a load/store instruction with the given alignment exponent
// and byte offset.
func Mem(op Opcode, align, offset int64) Instr {
	return Instr{Op: op, Imm: align, Imm2: offset}
}

// ConstI32 returns an i32.const instruction.
func ConstI32(v int32) Instr { return Instr{Op: OpI32Const, Imm: int64(v)} }

// ConstI64 returns an i64.const instruction.
func ConstI64(v int64) Instr { return Instr{Op: OpI64Const, Imm: v} }

// ConstF32 returns an f32.const instruction.
func ConstF32(v float32) Instr { return Instr{Op: OpF32Const, F32: v} }

// ConstF64 returns an f64.const instruction.
func ConstF64(v float64) Instr { return Instr{Op: OpF64Const, F64: v} }

// blockTypeString renders an s33 block type for the text format.
func blockTypeString(bt int64) string {
	if bt == BlockTypeEmpty {
		return ""
	}
	vt := ValType(byte(bt & 0x7f))
	if vt.Valid() {
		return " (result " + vt.String() + ")"
	}
	return fmt.Sprintf(" (type %d)", bt)
}

// String renders the instruction in the WebAssembly text format, including
// all immediates, e.g. "f64.load offset=8 align=3" or "i32.const 42".
func (in Instr) String() string {
	name := in.Op.Name()
	switch in.Op.Imm() {
	case ImmNone, ImmMemSize:
		return name
	case ImmBlockType:
		return name + blockTypeString(in.Imm)
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		return name + " " + strconv.FormatInt(in.Imm, 10)
	case ImmBrTable:
		var sb strings.Builder
		sb.WriteString(name)
		for _, l := range in.Table {
			fmt.Fprintf(&sb, " %d", l)
		}
		fmt.Fprintf(&sb, " %d", in.Imm)
		return sb.String()
	case ImmCallInd:
		return fmt.Sprintf("%s (type %d)", name, in.Imm)
	case ImmMem:
		s := name
		if in.Imm2 != 0 {
			s += " offset=" + strconv.FormatInt(in.Imm2, 10)
		}
		if in.Imm != 0 {
			s += " align=" + strconv.FormatInt(in.Imm, 10)
		}
		return s
	case ImmI32, ImmI64:
		return name + " " + strconv.FormatInt(in.Imm, 10)
	case ImmF32:
		return name + " " + strconv.FormatFloat(float64(in.F32), 'g', -1, 32)
	case ImmF64:
		return name + " " + strconv.FormatFloat(in.F64, 'g', -1, 64)
	}
	return name
}

// Tokens renders the instruction as whitespace-free tokens for the
// learning pipeline, following Section 4.1 of the paper: alignment hints
// and callee indices are omitted, memory offsets are kept.
func (in Instr) Tokens() []string {
	name := in.Op.Name()
	switch in.Op.Imm() {
	case ImmNone, ImmMemSize, ImmBlockType, ImmCallInd:
		// Block types and call_indirect type indices carry little signal
		// and would blow up the vocabulary; keep only the mnemonic.
		return []string{name}
	case ImmFunc:
		// The callee index is omitted (paper, Section 4.1).
		return []string{name}
	case ImmLabel:
		return []string{name, strconv.FormatInt(in.Imm, 10)}
	case ImmBrTable:
		return []string{name}
	case ImmLocal, ImmGlobal:
		return []string{name, strconv.FormatInt(in.Imm, 10)}
	case ImmMem:
		// Alignment hints are omitted; the offset is kept.
		return []string{name, "offset=" + strconv.FormatInt(in.Imm2, 10)}
	case ImmI32, ImmI64:
		return []string{name, strconv.FormatInt(in.Imm, 10)}
	case ImmF32:
		return []string{name, strconv.FormatFloat(float64(in.F32), 'g', -1, 32)}
	case ImmF64:
		return []string{name, strconv.FormatFloat(in.F64, 'g', -1, 64)}
	}
	return []string{name}
}

// Abstract returns the instruction with all immediate arguments removed,
// used for the approximate dedup signature (paper, Section 5): e.g.
// "local.get $0" maps to "local.get" and "i32.load offset=8" to "i32.load".
func (in Instr) Abstract() string {
	return in.Op.Name()
}
