package wasm

import (
	"reflect"
	"testing"
)

func TestNameSectionRoundTrip(t *testing.T) {
	ns := &NameSection{
		Module: "libexample",
		Funcs:  map[uint32]string{0: "printf", 1: "amd_control", 5: "helper"},
	}
	data := EncodeNameSection(ns)
	got, err := DecodeNameSection(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != ns.Module || !reflect.DeepEqual(got.Funcs, ns.Funcs) {
		t.Errorf("round trip = %+v, want %+v", got, ns)
	}
}

func TestNameSectionEmpty(t *testing.T) {
	got, err := DecodeNameSection(nil)
	if err != nil || got.Module != "" || len(got.Funcs) != 0 {
		t.Errorf("empty decode = %+v, %v", got, err)
	}
	if data := EncodeNameSection(&NameSection{}); len(data) != 0 {
		t.Errorf("empty encode = %x", data)
	}
}

func TestNameSectionUnknownSubsectionSkipped(t *testing.T) {
	// Subsection id 7 (locals-ish), then a valid module name.
	data := []byte{7, 2, 0xaa, 0xbb}
	data = append(data, EncodeNameSection(&NameSection{Module: "m"})...)
	got, err := DecodeNameSection(data)
	if err != nil || got.Module != "m" {
		t.Errorf("skip unknown: %+v, %v", got, err)
	}
}

func TestNameSectionTruncated(t *testing.T) {
	ns := &NameSection{Funcs: map[uint32]string{0: "very_long_function_name"}}
	data := EncodeNameSection(ns)
	if _, err := DecodeNameSection(data[:len(data)-4]); err == nil {
		t.Error("truncated section accepted")
	}
}

func TestAttachApplyNames(t *testing.T) {
	m := testModule()
	m.Funcs[0].Name = "first"
	m.Funcs[1].Name = "second"
	AttachNames(m, "mod")
	if m.Custom("name") == nil {
		t.Fatal("no name section attached")
	}
	// Re-attach replaces rather than duplicates.
	AttachNames(m, "mod")
	count := 0
	for _, c := range m.Customs {
		if c.Name == "name" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d name sections", count)
	}
	// Round trip through the binary and recover names.
	bin, _, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if d.Module.Funcs[0].Name != "" {
		t.Fatal("decoder should not apply names implicitly")
	}
	if err := ApplyNames(d.Module); err != nil {
		t.Fatal(err)
	}
	if d.Module.Funcs[0].Name != "first" || d.Module.Funcs[1].Name != "second" {
		t.Errorf("names = %q, %q", d.Module.Funcs[0].Name, d.Module.Funcs[1].Name)
	}
}
