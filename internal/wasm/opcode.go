package wasm

import "fmt"

// Opcode is a single-byte WebAssembly MVP opcode.
type Opcode byte

// ImmKind describes the immediate operands an opcode carries in the binary.
type ImmKind int

// Immediate operand layouts.
const (
	ImmNone      ImmKind = iota
	ImmBlockType         // block, loop, if: s33 block type
	ImmLabel             // br, br_if: label index (u32)
	ImmBrTable           // br_table: vector of labels + default
	ImmFunc              // call: function index (u32)
	ImmCallInd           // call_indirect: type index + table byte
	ImmLocal             // local.get/set/tee: local index (u32)
	ImmGlobal            // global.get/set: global index (u32)
	ImmMem               // loads/stores: align (u32) + offset (u32)
	ImmMemSize           // memory.size/grow: reserved zero byte
	ImmI32               // i32.const: s32
	ImmI64               // i64.const: s64
	ImmF32               // f32.const: 4 bytes
	ImmF64               // f64.const: 8 bytes
)

// Control and parametric opcodes.
const (
	OpUnreachable  Opcode = 0x00
	OpNop          Opcode = 0x01
	OpBlock        Opcode = 0x02
	OpLoop         Opcode = 0x03
	OpIf           Opcode = 0x04
	OpElse         Opcode = 0x05
	OpEnd          Opcode = 0x0b
	OpBr           Opcode = 0x0c
	OpBrIf         Opcode = 0x0d
	OpBrTable      Opcode = 0x0e
	OpReturn       Opcode = 0x0f
	OpCall         Opcode = 0x10
	OpCallIndirect Opcode = 0x11
	OpDrop         Opcode = 0x1a
	OpSelect       Opcode = 0x1b
)

// Variable access opcodes.
const (
	OpLocalGet  Opcode = 0x20
	OpLocalSet  Opcode = 0x21
	OpLocalTee  Opcode = 0x22
	OpGlobalGet Opcode = 0x23
	OpGlobalSet Opcode = 0x24
)

// Memory opcodes.
const (
	OpI32Load    Opcode = 0x28
	OpI64Load    Opcode = 0x29
	OpF32Load    Opcode = 0x2a
	OpF64Load    Opcode = 0x2b
	OpI32Load8S  Opcode = 0x2c
	OpI32Load8U  Opcode = 0x2d
	OpI32Load16S Opcode = 0x2e
	OpI32Load16U Opcode = 0x2f
	OpI64Load8S  Opcode = 0x30
	OpI64Load8U  Opcode = 0x31
	OpI64Load16S Opcode = 0x32
	OpI64Load16U Opcode = 0x33
	OpI64Load32S Opcode = 0x34
	OpI64Load32U Opcode = 0x35
	OpI32Store   Opcode = 0x36
	OpI64Store   Opcode = 0x37
	OpF32Store   Opcode = 0x38
	OpF64Store   Opcode = 0x39
	OpI32Store8  Opcode = 0x3a
	OpI32Store16 Opcode = 0x3b
	OpI64Store8  Opcode = 0x3c
	OpI64Store16 Opcode = 0x3d
	OpI64Store32 Opcode = 0x3e
	OpMemorySize Opcode = 0x3f
	OpMemoryGrow Opcode = 0x40
)

// Constant opcodes.
const (
	OpI32Const Opcode = 0x41
	OpI64Const Opcode = 0x42
	OpF32Const Opcode = 0x43
	OpF64Const Opcode = 0x44
)

// Numeric opcodes (comparisons, arithmetic, conversions).
const (
	OpI32Eqz  Opcode = 0x45
	OpI32Eq   Opcode = 0x46
	OpI32Ne   Opcode = 0x47
	OpI32LtS  Opcode = 0x48
	OpI32LtU  Opcode = 0x49
	OpI32GtS  Opcode = 0x4a
	OpI32GtU  Opcode = 0x4b
	OpI32LeS  Opcode = 0x4c
	OpI32LeU  Opcode = 0x4d
	OpI32GeS  Opcode = 0x4e
	OpI32GeU  Opcode = 0x4f
	OpI64Eqz  Opcode = 0x50
	OpI64Eq   Opcode = 0x51
	OpI64Ne   Opcode = 0x52
	OpI64LtS  Opcode = 0x53
	OpI64LtU  Opcode = 0x54
	OpI64GtS  Opcode = 0x55
	OpI64GtU  Opcode = 0x56
	OpI64LeS  Opcode = 0x57
	OpI64LeU  Opcode = 0x58
	OpI64GeS  Opcode = 0x59
	OpI64GeU  Opcode = 0x5a
	OpF32Eq   Opcode = 0x5b
	OpF32Ne   Opcode = 0x5c
	OpF32Lt   Opcode = 0x5d
	OpF32Gt   Opcode = 0x5e
	OpF32Le   Opcode = 0x5f
	OpF32Ge   Opcode = 0x60
	OpF64Eq   Opcode = 0x61
	OpF64Ne   Opcode = 0x62
	OpF64Lt   Opcode = 0x63
	OpF64Gt   Opcode = 0x64
	OpF64Le   Opcode = 0x65
	OpF64Ge   Opcode = 0x66
	OpI32Clz  Opcode = 0x67
	OpI32Ctz  Opcode = 0x68
	OpI32Pop  Opcode = 0x69
	OpI32Add  Opcode = 0x6a
	OpI32Sub  Opcode = 0x6b
	OpI32Mul  Opcode = 0x6c
	OpI32DivS Opcode = 0x6d
	OpI32DivU Opcode = 0x6e
	OpI32RemS Opcode = 0x6f
	OpI32RemU Opcode = 0x70
	OpI32And  Opcode = 0x71
	OpI32Or   Opcode = 0x72
	OpI32Xor  Opcode = 0x73
	OpI32Shl  Opcode = 0x74
	OpI32ShrS Opcode = 0x75
	OpI32ShrU Opcode = 0x76
	OpI32Rotl Opcode = 0x77
	OpI32Rotr Opcode = 0x78
	OpI64Clz  Opcode = 0x79
	OpI64Ctz  Opcode = 0x7a
	OpI64Pop  Opcode = 0x7b
	OpI64Add  Opcode = 0x7c
	OpI64Sub  Opcode = 0x7d
	OpI64Mul  Opcode = 0x7e
	OpI64DivS Opcode = 0x7f
	OpI64DivU Opcode = 0x80
	OpI64RemS Opcode = 0x81
	OpI64RemU Opcode = 0x82
	OpI64And  Opcode = 0x83
	OpI64Or   Opcode = 0x84
	OpI64Xor  Opcode = 0x85
	OpI64Shl  Opcode = 0x86
	OpI64ShrS Opcode = 0x87
	OpI64ShrU Opcode = 0x88
	OpI64Rotl Opcode = 0x89
	OpI64Rotr Opcode = 0x8a

	OpF32Abs      Opcode = 0x8b
	OpF32Neg      Opcode = 0x8c
	OpF32Ceil     Opcode = 0x8d
	OpF32Floor    Opcode = 0x8e
	OpF32Trunc    Opcode = 0x8f
	OpF32Nearest  Opcode = 0x90
	OpF32Sqrt     Opcode = 0x91
	OpF32Add      Opcode = 0x92
	OpF32Sub      Opcode = 0x93
	OpF32Mul      Opcode = 0x94
	OpF32Div      Opcode = 0x95
	OpF32Min      Opcode = 0x96
	OpF32Max      Opcode = 0x97
	OpF32Copysign Opcode = 0x98
	OpF64Abs      Opcode = 0x99
	OpF64Neg      Opcode = 0x9a
	OpF64Ceil     Opcode = 0x9b
	OpF64Floor    Opcode = 0x9c
	OpF64Trunc    Opcode = 0x9d
	OpF64Nearest  Opcode = 0x9e
	OpF64Sqrt     Opcode = 0x9f
	OpF64Add      Opcode = 0xa0
	OpF64Sub      Opcode = 0xa1
	OpF64Mul      Opcode = 0xa2
	OpF64Div      Opcode = 0xa3
	OpF64Min      Opcode = 0xa4
	OpF64Max      Opcode = 0xa5
	OpF64Copysign Opcode = 0xa6

	OpI32WrapI64        Opcode = 0xa7
	OpI32TruncF32S      Opcode = 0xa8
	OpI32TruncF32U      Opcode = 0xa9
	OpI32TruncF64S      Opcode = 0xaa
	OpI32TruncF64U      Opcode = 0xab
	OpI64ExtendI32S     Opcode = 0xac
	OpI64ExtendI32U     Opcode = 0xad
	OpI64TruncF32S      Opcode = 0xae
	OpI64TruncF32U      Opcode = 0xaf
	OpI64TruncF64S      Opcode = 0xb0
	OpI64TruncF64U      Opcode = 0xb1
	OpF32ConvertI32S    Opcode = 0xb2
	OpF32ConvertI32U    Opcode = 0xb3
	OpF32ConvertI64S    Opcode = 0xb4
	OpF32ConvertI64U    Opcode = 0xb5
	OpF32DemoteF64      Opcode = 0xb6
	OpF64ConvertI32S    Opcode = 0xb7
	OpF64ConvertI32U    Opcode = 0xb8
	OpF64ConvertI64S    Opcode = 0xb9
	OpF64ConvertI64U    Opcode = 0xba
	OpF64PromoteF32     Opcode = 0xbb
	OpI32ReinterpretF32 Opcode = 0xbc
	OpI64ReinterpretF64 Opcode = 0xbd
	OpF32ReinterpretI32 Opcode = 0xbe
	OpF64ReinterpretI64 Opcode = 0xbf

	OpI32Extend8S  Opcode = 0xc0
	OpI32Extend16S Opcode = 0xc1
	OpI64Extend8S  Opcode = 0xc2
	OpI64Extend16S Opcode = 0xc3
	OpI64Extend32S Opcode = 0xc4
)

// opInfo describes one opcode's name and immediate layout.
type opInfo struct {
	name string
	imm  ImmKind
}

var opTable = map[Opcode]opInfo{
	OpUnreachable:  {"unreachable", ImmNone},
	OpNop:          {"nop", ImmNone},
	OpBlock:        {"block", ImmBlockType},
	OpLoop:         {"loop", ImmBlockType},
	OpIf:           {"if", ImmBlockType},
	OpElse:         {"else", ImmNone},
	OpEnd:          {"end", ImmNone},
	OpBr:           {"br", ImmLabel},
	OpBrIf:         {"br_if", ImmLabel},
	OpBrTable:      {"br_table", ImmBrTable},
	OpReturn:       {"return", ImmNone},
	OpCall:         {"call", ImmFunc},
	OpCallIndirect: {"call_indirect", ImmCallInd},
	OpDrop:         {"drop", ImmNone},
	OpSelect:       {"select", ImmNone},

	OpLocalGet:  {"local.get", ImmLocal},
	OpLocalSet:  {"local.set", ImmLocal},
	OpLocalTee:  {"local.tee", ImmLocal},
	OpGlobalGet: {"global.get", ImmGlobal},
	OpGlobalSet: {"global.set", ImmGlobal},

	OpI32Load:    {"i32.load", ImmMem},
	OpI64Load:    {"i64.load", ImmMem},
	OpF32Load:    {"f32.load", ImmMem},
	OpF64Load:    {"f64.load", ImmMem},
	OpI32Load8S:  {"i32.load8_s", ImmMem},
	OpI32Load8U:  {"i32.load8_u", ImmMem},
	OpI32Load16S: {"i32.load16_s", ImmMem},
	OpI32Load16U: {"i32.load16_u", ImmMem},
	OpI64Load8S:  {"i64.load8_s", ImmMem},
	OpI64Load8U:  {"i64.load8_u", ImmMem},
	OpI64Load16S: {"i64.load16_s", ImmMem},
	OpI64Load16U: {"i64.load16_u", ImmMem},
	OpI64Load32S: {"i64.load32_s", ImmMem},
	OpI64Load32U: {"i64.load32_u", ImmMem},
	OpI32Store:   {"i32.store", ImmMem},
	OpI64Store:   {"i64.store", ImmMem},
	OpF32Store:   {"f32.store", ImmMem},
	OpF64Store:   {"f64.store", ImmMem},
	OpI32Store8:  {"i32.store8", ImmMem},
	OpI32Store16: {"i32.store16", ImmMem},
	OpI64Store8:  {"i64.store8", ImmMem},
	OpI64Store16: {"i64.store16", ImmMem},
	OpI64Store32: {"i64.store32", ImmMem},
	OpMemorySize: {"memory.size", ImmMemSize},
	OpMemoryGrow: {"memory.grow", ImmMemSize},

	OpI32Const: {"i32.const", ImmI32},
	OpI64Const: {"i64.const", ImmI64},
	OpF32Const: {"f32.const", ImmF32},
	OpF64Const: {"f64.const", ImmF64},

	OpI32Eqz: {"i32.eqz", ImmNone},
	OpI32Eq:  {"i32.eq", ImmNone},
	OpI32Ne:  {"i32.ne", ImmNone},
	OpI32LtS: {"i32.lt_s", ImmNone},
	OpI32LtU: {"i32.lt_u", ImmNone},
	OpI32GtS: {"i32.gt_s", ImmNone},
	OpI32GtU: {"i32.gt_u", ImmNone},
	OpI32LeS: {"i32.le_s", ImmNone},
	OpI32LeU: {"i32.le_u", ImmNone},
	OpI32GeS: {"i32.ge_s", ImmNone},
	OpI32GeU: {"i32.ge_u", ImmNone},
	OpI64Eqz: {"i64.eqz", ImmNone},
	OpI64Eq:  {"i64.eq", ImmNone},
	OpI64Ne:  {"i64.ne", ImmNone},
	OpI64LtS: {"i64.lt_s", ImmNone},
	OpI64LtU: {"i64.lt_u", ImmNone},
	OpI64GtS: {"i64.gt_s", ImmNone},
	OpI64GtU: {"i64.gt_u", ImmNone},
	OpI64LeS: {"i64.le_s", ImmNone},
	OpI64LeU: {"i64.le_u", ImmNone},
	OpI64GeS: {"i64.ge_s", ImmNone},
	OpI64GeU: {"i64.ge_u", ImmNone},
	OpF32Eq:  {"f32.eq", ImmNone},
	OpF32Ne:  {"f32.ne", ImmNone},
	OpF32Lt:  {"f32.lt", ImmNone},
	OpF32Gt:  {"f32.gt", ImmNone},
	OpF32Le:  {"f32.le", ImmNone},
	OpF32Ge:  {"f32.ge", ImmNone},
	OpF64Eq:  {"f64.eq", ImmNone},
	OpF64Ne:  {"f64.ne", ImmNone},
	OpF64Lt:  {"f64.lt", ImmNone},
	OpF64Gt:  {"f64.gt", ImmNone},
	OpF64Le:  {"f64.le", ImmNone},
	OpF64Ge:  {"f64.ge", ImmNone},

	OpI32Clz:  {"i32.clz", ImmNone},
	OpI32Ctz:  {"i32.ctz", ImmNone},
	OpI32Pop:  {"i32.popcnt", ImmNone},
	OpI32Add:  {"i32.add", ImmNone},
	OpI32Sub:  {"i32.sub", ImmNone},
	OpI32Mul:  {"i32.mul", ImmNone},
	OpI32DivS: {"i32.div_s", ImmNone},
	OpI32DivU: {"i32.div_u", ImmNone},
	OpI32RemS: {"i32.rem_s", ImmNone},
	OpI32RemU: {"i32.rem_u", ImmNone},
	OpI32And:  {"i32.and", ImmNone},
	OpI32Or:   {"i32.or", ImmNone},
	OpI32Xor:  {"i32.xor", ImmNone},
	OpI32Shl:  {"i32.shl", ImmNone},
	OpI32ShrS: {"i32.shr_s", ImmNone},
	OpI32ShrU: {"i32.shr_u", ImmNone},
	OpI32Rotl: {"i32.rotl", ImmNone},
	OpI32Rotr: {"i32.rotr", ImmNone},
	OpI64Clz:  {"i64.clz", ImmNone},
	OpI64Ctz:  {"i64.ctz", ImmNone},
	OpI64Pop:  {"i64.popcnt", ImmNone},
	OpI64Add:  {"i64.add", ImmNone},
	OpI64Sub:  {"i64.sub", ImmNone},
	OpI64Mul:  {"i64.mul", ImmNone},
	OpI64DivS: {"i64.div_s", ImmNone},
	OpI64DivU: {"i64.div_u", ImmNone},
	OpI64RemS: {"i64.rem_s", ImmNone},
	OpI64RemU: {"i64.rem_u", ImmNone},
	OpI64And:  {"i64.and", ImmNone},
	OpI64Or:   {"i64.or", ImmNone},
	OpI64Xor:  {"i64.xor", ImmNone},
	OpI64Shl:  {"i64.shl", ImmNone},
	OpI64ShrS: {"i64.shr_s", ImmNone},
	OpI64ShrU: {"i64.shr_u", ImmNone},
	OpI64Rotl: {"i64.rotl", ImmNone},
	OpI64Rotr: {"i64.rotr", ImmNone},

	OpF32Abs:      {"f32.abs", ImmNone},
	OpF32Neg:      {"f32.neg", ImmNone},
	OpF32Ceil:     {"f32.ceil", ImmNone},
	OpF32Floor:    {"f32.floor", ImmNone},
	OpF32Trunc:    {"f32.trunc", ImmNone},
	OpF32Nearest:  {"f32.nearest", ImmNone},
	OpF32Sqrt:     {"f32.sqrt", ImmNone},
	OpF32Add:      {"f32.add", ImmNone},
	OpF32Sub:      {"f32.sub", ImmNone},
	OpF32Mul:      {"f32.mul", ImmNone},
	OpF32Div:      {"f32.div", ImmNone},
	OpF32Min:      {"f32.min", ImmNone},
	OpF32Max:      {"f32.max", ImmNone},
	OpF32Copysign: {"f32.copysign", ImmNone},
	OpF64Abs:      {"f64.abs", ImmNone},
	OpF64Neg:      {"f64.neg", ImmNone},
	OpF64Ceil:     {"f64.ceil", ImmNone},
	OpF64Floor:    {"f64.floor", ImmNone},
	OpF64Trunc:    {"f64.trunc", ImmNone},
	OpF64Nearest:  {"f64.nearest", ImmNone},
	OpF64Sqrt:     {"f64.sqrt", ImmNone},
	OpF64Add:      {"f64.add", ImmNone},
	OpF64Sub:      {"f64.sub", ImmNone},
	OpF64Mul:      {"f64.mul", ImmNone},
	OpF64Div:      {"f64.div", ImmNone},
	OpF64Min:      {"f64.min", ImmNone},
	OpF64Max:      {"f64.max", ImmNone},
	OpF64Copysign: {"f64.copysign", ImmNone},

	OpI32WrapI64:        {"i32.wrap_i64", ImmNone},
	OpI32TruncF32S:      {"i32.trunc_f32_s", ImmNone},
	OpI32TruncF32U:      {"i32.trunc_f32_u", ImmNone},
	OpI32TruncF64S:      {"i32.trunc_f64_s", ImmNone},
	OpI32TruncF64U:      {"i32.trunc_f64_u", ImmNone},
	OpI64ExtendI32S:     {"i64.extend_i32_s", ImmNone},
	OpI64ExtendI32U:     {"i64.extend_i32_u", ImmNone},
	OpI64TruncF32S:      {"i64.trunc_f32_s", ImmNone},
	OpI64TruncF32U:      {"i64.trunc_f32_u", ImmNone},
	OpI64TruncF64S:      {"i64.trunc_f64_s", ImmNone},
	OpI64TruncF64U:      {"i64.trunc_f64_u", ImmNone},
	OpF32ConvertI32S:    {"f32.convert_i32_s", ImmNone},
	OpF32ConvertI32U:    {"f32.convert_i32_u", ImmNone},
	OpF32ConvertI64S:    {"f32.convert_i64_s", ImmNone},
	OpF32ConvertI64U:    {"f32.convert_i64_u", ImmNone},
	OpF32DemoteF64:      {"f32.demote_f64", ImmNone},
	OpF64ConvertI32S:    {"f64.convert_i32_s", ImmNone},
	OpF64ConvertI32U:    {"f64.convert_i32_u", ImmNone},
	OpF64ConvertI64S:    {"f64.convert_i64_s", ImmNone},
	OpF64ConvertI64U:    {"f64.convert_i64_u", ImmNone},
	OpF64PromoteF32:     {"f64.promote_f32", ImmNone},
	OpI32ReinterpretF32: {"i32.reinterpret_f32", ImmNone},
	OpI64ReinterpretF64: {"i64.reinterpret_f64", ImmNone},
	OpF32ReinterpretI32: {"f32.reinterpret_i32", ImmNone},
	OpF64ReinterpretI64: {"f64.reinterpret_i64", ImmNone},

	OpI32Extend8S:  {"i32.extend8_s", ImmNone},
	OpI32Extend16S: {"i32.extend16_s", ImmNone},
	OpI64Extend8S:  {"i64.extend8_s", ImmNone},
	OpI64Extend16S: {"i64.extend16_s", ImmNone},
	OpI64Extend32S: {"i64.extend32_s", ImmNone},
}

// Name returns the text-format mnemonic of the opcode.
func (op Opcode) Name() string {
	if info, ok := opTable[op]; ok {
		return info.name
	}
	return fmt.Sprintf("op(0x%02x)", byte(op))
}

// Imm returns the immediate layout of the opcode.
func (op Opcode) Imm() ImmKind {
	return opTable[op].imm
}

// Known reports whether op is part of the supported instruction set.
func (op Opcode) Known() bool {
	_, ok := opTable[op]
	return ok
}
