package wasm

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds random byte mutations of valid binaries into
// the decoder: every input must produce a module or an error, never a
// panic. Reverse-engineering tools see malformed binaries all the time.
func TestDecodeNeverPanics(t *testing.T) {
	m := testModule()
	valid, _, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		buf := append([]byte(nil), valid...)
		// Mutate up to 4 random bytes.
		for j := 0; j < 1+r.Intn(4); j++ {
			buf[r.Intn(len(buf))] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on mutation %d: %v\ninput: %x", i, p, buf)
				}
			}()
			d, err := Decode(buf)
			if err == nil {
				// If it still decodes, it must also re-encode and the
				// validator must not panic either.
				_, _, _ = Encode(d.Module)
				_ = Validate(d.Module)
			}
		}()
	}
	// Pure random garbage too.
	for i := 0; i < 2000; i++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		r.Read(buf)
		if n >= 8 {
			copy(buf, magic)
			copy(buf[4:], version)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on garbage: %v\ninput: %x", p, buf)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

// TestNameSectionNeverPanics fuzzes the name-section parser.
func TestNameSectionNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, r.Intn(64))
		r.Read(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("DecodeNameSection panicked: %v on %x", p, buf)
				}
			}()
			_, _ = DecodeNameSection(buf)
		}()
	}
}
