package wasm

import (
	"fmt"
	"strings"
)

// DisassembleFunction renders a function body in a flat, line-per-instruction
// wat-like form with nesting indentation, similar to the listing in Figure 1
// of the paper.
func DisassembleFunction(m *Module, funcIdx int) (string, error) {
	if funcIdx < 0 || funcIdx >= len(m.Funcs) {
		return "", fmt.Errorf("wasm: function index %d out of range", funcIdx)
	}
	f := &m.Funcs[funcIdx]
	var sb strings.Builder
	ft := FuncType{}
	if int(f.TypeIdx) < len(m.Types) {
		ft = m.Types[f.TypeIdx]
	}
	abs := funcIdx + m.NumImportedFuncs()
	fmt.Fprintf(&sb, "func $%d: ;; %s\n", abs, nameOf(m, uint32(abs)))
	fmt.Fprintf(&sb, "  type %s\n", ft)
	for _, d := range f.Locals {
		fmt.Fprintf(&sb, "  (local %d %s)\n", d.Count, d.Type)
	}
	depth := 1
	for _, in := range f.Body {
		switch in.Op {
		case OpEnd, OpElse:
			if depth > 1 {
				depth--
			}
		}
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(in.String())
		sb.WriteByte('\n')
		switch in.Op {
		case OpBlock, OpLoop, OpIf, OpElse:
			depth++
		}
	}
	sb.WriteString("end\n")
	return sb.String(), nil
}

// nameOf returns the export name of the function with the given absolute
// index, or a placeholder.
func nameOf(m *Module, idx uint32) string {
	for _, e := range m.Exports {
		if e.Kind == KindFunc && e.Index == idx {
			return e.Name
		}
	}
	nimp := m.NumImportedFuncs()
	if int(idx) >= nimp {
		if n := m.Funcs[int(idx)-nimp].Name; n != "" {
			return n
		}
	}
	return fmt.Sprintf("func[%d]", idx)
}

// Disassemble renders the whole module: signatures, imports, exports, and
// per-function listings.
func Disassemble(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(module ;; %d types, %d imports, %d functions\n", len(m.Types), len(m.Imports), len(m.Funcs))
	for i, ft := range m.Types {
		fmt.Fprintf(&sb, "  (type %d %s)\n", i, ft)
	}
	for _, imp := range m.Imports {
		fmt.Fprintf(&sb, "  (import %q %q (%s))\n", imp.Module, imp.Name, imp.Kind)
	}
	for _, e := range m.Exports {
		fmt.Fprintf(&sb, "  (export %q (%s %d))\n", e.Name, e.Kind, e.Index)
	}
	for _, c := range m.Customs {
		fmt.Fprintf(&sb, "  (custom %q (%d bytes))\n", c.Name, len(c.Bytes))
	}
	for i := range m.Funcs {
		text, err := DisassembleFunction(m, i)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			sb.WriteString("  " + line + "\n")
		}
	}
	sb.WriteString(")\n")
	return sb.String()
}

// BodyTokens flattens a function body into the token sequence used by the
// learning pipeline: each instruction's tokens, with instructions delimited
// by ";" as in Section 4.1 of the paper.
func BodyTokens(body []Instr) []string {
	var out []string
	for i, in := range body {
		if i > 0 {
			out = append(out, ";")
		}
		out = append(out, in.Tokens()...)
	}
	return out
}
