package wasm

import (
	"strings"
	"testing"
)

// vmod builds a single-function module for validation tests.
func vmod(sig FuncType, locals []LocalDecl, body []Instr) *Module {
	m := &Module{}
	ti := m.AddType(sig)
	m.Funcs = append(m.Funcs, Function{TypeIdx: ti, Locals: locals, Body: body})
	m.Memories = append(m.Memories, Limits{Min: 1})
	return m
}

func TestValidateGood(t *testing.T) {
	cases := []struct {
		name string
		mod  *Module
	}{
		{"empty void", vmod(FuncType{}, nil, nil)},
		{"const return", vmod(FuncType{Results: []ValType{I32}}, nil, []Instr{ConstI32(1)})},
		{"add params", vmod(FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}}, nil, []Instr{
			I1(OpLocalGet, 0), I1(OpLocalGet, 1), I(OpI32Add),
		})},
		{"block with result", vmod(FuncType{Results: []ValType{F64}}, nil, []Instr{
			I1(OpBlock, int64(F64)), ConstF64(1.5), I(OpEnd),
		})},
		{"if else", vmod(FuncType{Params: []ValType{I32}, Results: []ValType{I32}}, nil, []Instr{
			I1(OpLocalGet, 0),
			I1(OpIf, int64(I32)), ConstI32(1), I(OpElse), ConstI32(2), I(OpEnd),
		})},
		{"loop with branch", vmod(FuncType{Params: []ValType{I32}}, []LocalDecl{{Count: 1, Type: I32}}, []Instr{
			I1(OpBlock, BlockTypeEmpty),
			I1(OpLoop, BlockTypeEmpty),
			I1(OpLocalGet, 0), I(OpI32Eqz), I1(OpBrIf, 1),
			I1(OpLocalGet, 0), ConstI32(1), I(OpI32Sub), I1(OpLocalSet, 0),
			I1(OpBr, 0),
			I(OpEnd), I(OpEnd),
		})},
		{"early return", vmod(FuncType{Results: []ValType{I32}}, nil, []Instr{
			ConstI32(1), I(OpReturn), ConstI32(2),
		})},
		{"memory ops", vmod(FuncType{Params: []ValType{I32}, Results: []ValType{F64}}, nil, []Instr{
			I1(OpLocalGet, 0), Mem(OpF64Load, 3, 8),
		})},
		{"unreachable then anything", vmod(FuncType{Results: []ValType{I32}}, nil, []Instr{
			I(OpUnreachable), I(OpI32Add),
		})},
	}
	for _, c := range cases {
		if err := Validate(c.mod); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestValidateBad(t *testing.T) {
	cases := []struct {
		name    string
		mod     *Module
		wantErr string
	}{
		{"stack underflow", vmod(FuncType{}, nil, []Instr{I(OpI32Add)}), "underflow"},
		{"type mismatch", vmod(FuncType{}, nil, []Instr{ConstF32(1), ConstI32(1), I(OpI32Add), I(OpDrop)}), "expected i32"},
		{"missing result", vmod(FuncType{Results: []ValType{I32}}, nil, nil), "underflow"},
		{"wrong result type", vmod(FuncType{Results: []ValType{I32}}, nil, []Instr{ConstF64(1)}), "expected i32"},
		{"leftover values", vmod(FuncType{}, nil, []Instr{ConstI32(1)}), "leftover"},
		{"bad local", vmod(FuncType{}, nil, []Instr{I1(OpLocalGet, 3), I(OpDrop)}), "out of range"},
		{"branch out of range", vmod(FuncType{}, nil, []Instr{I1(OpBr, 5)}), "out of range"},
		{"else without if", vmod(FuncType{}, nil, []Instr{I(OpElse)}), "else outside if"},
		{"if without condition", vmod(FuncType{}, nil, []Instr{I1(OpIf, BlockTypeEmpty), I(OpEnd)}), "underflow"},
		{"store missing operand", vmod(FuncType{}, nil, []Instr{ConstI32(0), Mem(OpF64Store, 3, 0)}), "expected f64"},
		{"call bad index", vmod(FuncType{}, nil, []Instr{I1(OpCall, 9)}), "out of range"},
	}
	for _, c := range cases {
		err := Validate(c.mod)
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestValidateGlobalsAndData(t *testing.T) {
	m := vmod(FuncType{}, nil, nil)
	m.Globals = append(m.Globals, Global{Type: GlobalType{Type: I32}, Init: []Instr{ConstI32(5)}})
	m.Datas = append(m.Datas, Data{Offset: []Instr{ConstI32(8)}, Bytes: []byte("x")})
	if err := Validate(m); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
	m.Globals[0].Init = []Instr{ConstF64(1)}
	if err := Validate(m); err == nil {
		t.Error("global init type mismatch accepted")
	}
	m.Globals[0].Init = []Instr{ConstI32(1)}
	m.Datas[0].Offset = []Instr{I(OpNop)}
	if err := Validate(m); err == nil {
		t.Error("non-constant data offset accepted")
	}
}

func TestValidateGlobalSetImmutable(t *testing.T) {
	m := vmod(FuncType{}, nil, []Instr{ConstI32(1), I1(OpGlobalSet, 0)})
	m.Globals = append(m.Globals, Global{Type: GlobalType{Type: I32, Mutable: false}, Init: []Instr{ConstI32(0)}})
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Errorf("set of immutable global: %v", err)
	}
	m.Globals[0].Type.Mutable = true
	if err := Validate(m); err != nil {
		t.Errorf("set of mutable global rejected: %v", err)
	}
}

func TestValidateTestModule(t *testing.T) {
	// The round-trip test module from wasm_test.go must validate.
	if err := Validate(testModule()); err != nil {
		t.Errorf("testModule invalid: %v", err)
	}
}
