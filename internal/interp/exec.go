package interp

import (
	"encoding/binary"
	"math"
	"math/bits"

	"repro/internal/wasm"
)

// run executes the frame's function body to completion.
func (f *frame) run() error {
	body := f.fn.Body
	for f.pc < len(body) {
		if f.inst.fuelLeft--; f.inst.fuelLeft < 0 {
			return ErrFuelExhausted
		}
		in := body[f.pc]
		switch in.Op {
		case wasm.OpUnreachable:
			return ErrUnreachable
		case wasm.OpNop:

		case wasm.OpBlock, wasm.OpLoop:
			f.labels = append(f.labels, label{
				start: f.pc, end: f.ctrl[f.pc].end, isLoop: in.Op == wasm.OpLoop,
				height: len(f.stack), arity: blockArity(in.Imm),
			})

		case wasm.OpIf:
			cond := f.pop().AsI32()
			ci := f.ctrl[f.pc]
			f.labels = append(f.labels, label{
				start: f.pc, end: ci.end, height: len(f.stack), arity: blockArity(in.Imm),
			})
			if cond == 0 {
				if ci.els >= 0 {
					f.pc = ci.els // jump into the else arm
				} else {
					f.labels = f.labels[:len(f.labels)-1]
					f.pc = ci.end - 1 // the end pops nothing; skip to it
				}
			}

		case wasm.OpElse:
			// Reached only by falling out of the then-arm: skip to end.
			f.pc = f.ctrl[f.pc].end - 1
			continue

		case wasm.OpEnd:
			if len(f.labels) > 0 {
				f.labels = f.labels[:len(f.labels)-1]
			}

		case wasm.OpBr:
			f.branch(int(in.Imm))
			continue

		case wasm.OpBrIf:
			if f.pop().AsI32() != 0 {
				f.branch(int(in.Imm))
				continue
			}

		case wasm.OpBrTable:
			idx := f.pop().AsI32()
			depth := int(in.Imm)
			if idx >= 0 && int(idx) < len(in.Table) {
				depth = int(in.Table[idx])
			}
			f.branch(depth)
			continue

		case wasm.OpReturn:
			return nil

		case wasm.OpCall:
			sig, err := f.inst.Module.FuncTypeAt(uint32(in.Imm))
			if err != nil {
				return err
			}
			args := make([]Value, len(sig.Params))
			for i := len(args) - 1; i >= 0; i-- {
				args[i] = f.pop()
			}
			res, err := f.inst.call(uint32(in.Imm), args)
			if err != nil {
				return err
			}
			f.stack = append(f.stack, res...)

		case wasm.OpDrop:
			f.pop()

		case wasm.OpSelect:
			c := f.pop().AsI32()
			b := f.pop()
			a := f.pop()
			if c != 0 {
				f.push(a)
			} else {
				f.push(b)
			}

		case wasm.OpLocalGet:
			f.push(f.locals[in.Imm])
		case wasm.OpLocalSet:
			f.locals[in.Imm] = f.pop()
		case wasm.OpLocalTee:
			f.locals[in.Imm] = f.stack[len(f.stack)-1]

		case wasm.OpGlobalGet:
			f.push(f.inst.globals[in.Imm])
		case wasm.OpGlobalSet:
			f.inst.globals[in.Imm] = f.pop()

		case wasm.OpMemorySize:
			f.push(I32(int32(len(f.inst.Memory) / PageSize)))
		case wasm.OpMemoryGrow:
			delta := f.pop().AsI32()
			old := len(f.inst.Memory) / PageSize
			if delta >= 0 && old+int(delta) <= 1024 {
				f.inst.Memory = append(f.inst.Memory, make([]byte, int(delta)*PageSize)...)
				f.push(I32(int32(old)))
			} else {
				f.push(I32(-1))
			}

		case wasm.OpI32Const:
			f.push(I32(int32(in.Imm)))
		case wasm.OpI64Const:
			f.push(I64(in.Imm))
		case wasm.OpF32Const:
			f.push(F32(in.F32))
		case wasm.OpF64Const:
			f.push(F64(in.F64))

		default:
			if err := f.execDataOp(in); err != nil {
				return err
			}
		}
		f.pc++
	}
	return nil
}

// addr computes and bounds-checks an effective memory address.
func (f *frame) addr(in wasm.Instr, size int) (int, error) {
	base := uint64(uint32(f.pop().AsI32()))
	ea := base + uint64(in.Imm2)
	if ea+uint64(size) > uint64(len(f.inst.Memory)) {
		return 0, ErrOutOfBounds
	}
	return int(ea), nil
}

// execDataOp handles loads, stores, and all numeric operations.
func (f *frame) execDataOp(in wasm.Instr) error {
	mem := func() []byte { return f.inst.Memory }
	switch in.Op {
	// Loads.
	case wasm.OpI32Load:
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		f.push(I32(int32(binary.LittleEndian.Uint32(mem()[a:]))))
	case wasm.OpI64Load:
		a, err := f.addr(in, 8)
		if err != nil {
			return err
		}
		f.push(I64(int64(binary.LittleEndian.Uint64(mem()[a:]))))
	case wasm.OpF32Load:
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		f.push(F32(math.Float32frombits(binary.LittleEndian.Uint32(mem()[a:]))))
	case wasm.OpF64Load:
		a, err := f.addr(in, 8)
		if err != nil {
			return err
		}
		f.push(F64(math.Float64frombits(binary.LittleEndian.Uint64(mem()[a:]))))
	case wasm.OpI32Load8S:
		a, err := f.addr(in, 1)
		if err != nil {
			return err
		}
		f.push(I32(int32(int8(mem()[a]))))
	case wasm.OpI32Load8U:
		a, err := f.addr(in, 1)
		if err != nil {
			return err
		}
		f.push(I32(int32(mem()[a])))
	case wasm.OpI32Load16S:
		a, err := f.addr(in, 2)
		if err != nil {
			return err
		}
		f.push(I32(int32(int16(binary.LittleEndian.Uint16(mem()[a:])))))
	case wasm.OpI32Load16U:
		a, err := f.addr(in, 2)
		if err != nil {
			return err
		}
		f.push(I32(int32(binary.LittleEndian.Uint16(mem()[a:]))))
	case wasm.OpI64Load8S:
		a, err := f.addr(in, 1)
		if err != nil {
			return err
		}
		f.push(I64(int64(int8(mem()[a]))))
	case wasm.OpI64Load8U:
		a, err := f.addr(in, 1)
		if err != nil {
			return err
		}
		f.push(I64(int64(mem()[a])))
	case wasm.OpI64Load16S:
		a, err := f.addr(in, 2)
		if err != nil {
			return err
		}
		f.push(I64(int64(int16(binary.LittleEndian.Uint16(mem()[a:])))))
	case wasm.OpI64Load16U:
		a, err := f.addr(in, 2)
		if err != nil {
			return err
		}
		f.push(I64(int64(binary.LittleEndian.Uint16(mem()[a:]))))
	case wasm.OpI64Load32S:
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		f.push(I64(int64(int32(binary.LittleEndian.Uint32(mem()[a:])))))
	case wasm.OpI64Load32U:
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		f.push(I64(int64(binary.LittleEndian.Uint32(mem()[a:]))))

	// Stores.
	case wasm.OpI32Store:
		v := f.pop()
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(mem()[a:], uint32(v.Bits))
	case wasm.OpI64Store:
		v := f.pop()
		a, err := f.addr(in, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(mem()[a:], v.Bits)
	case wasm.OpF32Store:
		v := f.pop()
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(mem()[a:], uint32(v.Bits))
	case wasm.OpF64Store:
		v := f.pop()
		a, err := f.addr(in, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(mem()[a:], v.Bits)
	case wasm.OpI32Store8, wasm.OpI64Store8:
		v := f.pop()
		a, err := f.addr(in, 1)
		if err != nil {
			return err
		}
		mem()[a] = byte(v.Bits)
	case wasm.OpI32Store16, wasm.OpI64Store16:
		v := f.pop()
		a, err := f.addr(in, 2)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(mem()[a:], uint16(v.Bits))
	case wasm.OpI64Store32:
		v := f.pop()
		a, err := f.addr(in, 4)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(mem()[a:], uint32(v.Bits))

	default:
		return f.execNumeric(in)
	}
	return nil
}

func boolVal(b bool) Value {
	if b {
		return I32(1)
	}
	return I32(0)
}

// execNumeric handles comparisons, arithmetic, and conversions.
func (f *frame) execNumeric(in wasm.Instr) error {
	op := in.Op
	switch {
	case op == wasm.OpI32Eqz:
		f.push(boolVal(f.pop().AsI32() == 0))
		return nil
	case op == wasm.OpI64Eqz:
		f.push(boolVal(f.pop().AsI64() == 0))
		return nil

	case op >= wasm.OpI32Eq && op <= wasm.OpI32GeU:
		b, a := f.pop().AsI32(), f.pop().AsI32()
		ub, ua := uint32(b), uint32(a)
		var r bool
		switch op {
		case wasm.OpI32Eq:
			r = a == b
		case wasm.OpI32Ne:
			r = a != b
		case wasm.OpI32LtS:
			r = a < b
		case wasm.OpI32LtU:
			r = ua < ub
		case wasm.OpI32GtS:
			r = a > b
		case wasm.OpI32GtU:
			r = ua > ub
		case wasm.OpI32LeS:
			r = a <= b
		case wasm.OpI32LeU:
			r = ua <= ub
		case wasm.OpI32GeS:
			r = a >= b
		case wasm.OpI32GeU:
			r = ua >= ub
		}
		f.push(boolVal(r))
		return nil

	case op >= wasm.OpI64Eq && op <= wasm.OpI64GeU:
		b, a := f.pop().AsI64(), f.pop().AsI64()
		ub, ua := uint64(b), uint64(a)
		var r bool
		switch op {
		case wasm.OpI64Eq:
			r = a == b
		case wasm.OpI64Ne:
			r = a != b
		case wasm.OpI64LtS:
			r = a < b
		case wasm.OpI64LtU:
			r = ua < ub
		case wasm.OpI64GtS:
			r = a > b
		case wasm.OpI64GtU:
			r = ua > ub
		case wasm.OpI64LeS:
			r = a <= b
		case wasm.OpI64LeU:
			r = ua <= ub
		case wasm.OpI64GeS:
			r = a >= b
		case wasm.OpI64GeU:
			r = ua >= ub
		}
		f.push(boolVal(r))
		return nil

	case op >= wasm.OpF32Eq && op <= wasm.OpF32Ge:
		b, a := f.pop().AsF32(), f.pop().AsF32()
		var r bool
		switch op {
		case wasm.OpF32Eq:
			r = a == b
		case wasm.OpF32Ne:
			r = a != b
		case wasm.OpF32Lt:
			r = a < b
		case wasm.OpF32Gt:
			r = a > b
		case wasm.OpF32Le:
			r = a <= b
		case wasm.OpF32Ge:
			r = a >= b
		}
		f.push(boolVal(r))
		return nil

	case op >= wasm.OpF64Eq && op <= wasm.OpF64Ge:
		b, a := f.pop().AsF64(), f.pop().AsF64()
		var r bool
		switch op {
		case wasm.OpF64Eq:
			r = a == b
		case wasm.OpF64Ne:
			r = a != b
		case wasm.OpF64Lt:
			r = a < b
		case wasm.OpF64Gt:
			r = a > b
		case wasm.OpF64Le:
			r = a <= b
		case wasm.OpF64Ge:
			r = a >= b
		}
		f.push(boolVal(r))
		return nil

	case op >= wasm.OpI32Clz && op <= wasm.OpI32Pop:
		a := uint32(f.pop().Bits)
		switch op {
		case wasm.OpI32Clz:
			f.push(I32(int32(bits.LeadingZeros32(a))))
		case wasm.OpI32Ctz:
			f.push(I32(int32(bits.TrailingZeros32(a))))
		case wasm.OpI32Pop:
			f.push(I32(int32(bits.OnesCount32(a))))
		}
		return nil

	case op >= wasm.OpI32Add && op <= wasm.OpI32Rotr:
		return f.i32Bin(op)

	case op >= wasm.OpI64Clz && op <= wasm.OpI64Pop:
		a := f.pop().Bits
		switch op {
		case wasm.OpI64Clz:
			f.push(I64(int64(bits.LeadingZeros64(a))))
		case wasm.OpI64Ctz:
			f.push(I64(int64(bits.TrailingZeros64(a))))
		case wasm.OpI64Pop:
			f.push(I64(int64(bits.OnesCount64(a))))
		}
		return nil

	case op >= wasm.OpI64Add && op <= wasm.OpI64Rotr:
		return f.i64Bin(op)

	case op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt:
		a := f.pop().AsF32()
		var r float64
		x := float64(a)
		switch op {
		case wasm.OpF32Abs:
			r = math.Abs(x)
		case wasm.OpF32Neg:
			r = -x
		case wasm.OpF32Ceil:
			r = math.Ceil(x)
		case wasm.OpF32Floor:
			r = math.Floor(x)
		case wasm.OpF32Trunc:
			r = math.Trunc(x)
		case wasm.OpF32Nearest:
			r = math.RoundToEven(x)
		case wasm.OpF32Sqrt:
			r = math.Sqrt(x)
		}
		f.push(F32(float32(r)))
		return nil

	case op >= wasm.OpF32Add && op <= wasm.OpF32Copysign:
		b, a := f.pop().AsF32(), f.pop().AsF32()
		var r float32
		switch op {
		case wasm.OpF32Add:
			r = a + b
		case wasm.OpF32Sub:
			r = a - b
		case wasm.OpF32Mul:
			r = a * b
		case wasm.OpF32Div:
			r = a / b
		case wasm.OpF32Min:
			r = float32(math.Min(float64(a), float64(b)))
		case wasm.OpF32Max:
			r = float32(math.Max(float64(a), float64(b)))
		case wasm.OpF32Copysign:
			r = float32(math.Copysign(float64(a), float64(b)))
		}
		f.push(F32(r))
		return nil

	case op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		a := f.pop().AsF64()
		var r float64
		switch op {
		case wasm.OpF64Abs:
			r = math.Abs(a)
		case wasm.OpF64Neg:
			r = -a
		case wasm.OpF64Ceil:
			r = math.Ceil(a)
		case wasm.OpF64Floor:
			r = math.Floor(a)
		case wasm.OpF64Trunc:
			r = math.Trunc(a)
		case wasm.OpF64Nearest:
			r = math.RoundToEven(a)
		case wasm.OpF64Sqrt:
			r = math.Sqrt(a)
		}
		f.push(F64(r))
		return nil

	case op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		b, a := f.pop().AsF64(), f.pop().AsF64()
		var r float64
		switch op {
		case wasm.OpF64Add:
			r = a + b
		case wasm.OpF64Sub:
			r = a - b
		case wasm.OpF64Mul:
			r = a * b
		case wasm.OpF64Div:
			r = a / b
		case wasm.OpF64Min:
			r = math.Min(a, b)
		case wasm.OpF64Max:
			r = math.Max(a, b)
		case wasm.OpF64Copysign:
			r = math.Copysign(a, b)
		}
		f.push(F64(r))
		return nil
	}
	return f.execConvert(in)
}

func (f *frame) i32Bin(op wasm.Opcode) error {
	b, a := f.pop().AsI32(), f.pop().AsI32()
	ub, ua := uint32(b), uint32(a)
	var r int32
	switch op {
	case wasm.OpI32Add:
		r = a + b
	case wasm.OpI32Sub:
		r = a - b
	case wasm.OpI32Mul:
		r = a * b
	case wasm.OpI32DivS:
		if b == 0 {
			return ErrDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			return ErrOverflow
		}
		r = a / b
	case wasm.OpI32DivU:
		if b == 0 {
			return ErrDivByZero
		}
		r = int32(ua / ub)
	case wasm.OpI32RemS:
		if b == 0 {
			return ErrDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			r = 0
		} else {
			r = a % b
		}
	case wasm.OpI32RemU:
		if b == 0 {
			return ErrDivByZero
		}
		r = int32(ua % ub)
	case wasm.OpI32And:
		r = a & b
	case wasm.OpI32Or:
		r = a | b
	case wasm.OpI32Xor:
		r = a ^ b
	case wasm.OpI32Shl:
		r = a << (ub & 31)
	case wasm.OpI32ShrS:
		r = a >> (ub & 31)
	case wasm.OpI32ShrU:
		r = int32(ua >> (ub & 31))
	case wasm.OpI32Rotl:
		r = int32(bits.RotateLeft32(ua, int(ub&31)))
	case wasm.OpI32Rotr:
		r = int32(bits.RotateLeft32(ua, -int(ub&31)))
	}
	f.push(I32(r))
	return nil
}

func (f *frame) i64Bin(op wasm.Opcode) error {
	b, a := f.pop().AsI64(), f.pop().AsI64()
	ub, ua := uint64(b), uint64(a)
	var r int64
	switch op {
	case wasm.OpI64Add:
		r = a + b
	case wasm.OpI64Sub:
		r = a - b
	case wasm.OpI64Mul:
		r = a * b
	case wasm.OpI64DivS:
		if b == 0 {
			return ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			return ErrOverflow
		}
		r = a / b
	case wasm.OpI64DivU:
		if b == 0 {
			return ErrDivByZero
		}
		r = int64(ua / ub)
	case wasm.OpI64RemS:
		if b == 0 {
			return ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			r = 0
		} else {
			r = a % b
		}
	case wasm.OpI64RemU:
		if b == 0 {
			return ErrDivByZero
		}
		r = int64(ua % ub)
	case wasm.OpI64And:
		r = a & b
	case wasm.OpI64Or:
		r = a | b
	case wasm.OpI64Xor:
		r = a ^ b
	case wasm.OpI64Shl:
		r = a << (ub & 63)
	case wasm.OpI64ShrS:
		r = a >> (ub & 63)
	case wasm.OpI64ShrU:
		r = int64(ua >> (ub & 63))
	case wasm.OpI64Rotl:
		r = int64(bits.RotateLeft64(ua, int(ub&63)))
	case wasm.OpI64Rotr:
		r = int64(bits.RotateLeft64(ua, -int(ub&63)))
	}
	f.push(I64(r))
	return nil
}

func (f *frame) execConvert(in wasm.Instr) error {
	switch in.Op {
	case wasm.OpI32WrapI64:
		f.push(I32(int32(f.pop().AsI64())))
	case wasm.OpI32TruncF32S:
		return f.truncToI32(float64(f.pop().AsF32()), true)
	case wasm.OpI32TruncF32U:
		return f.truncToI32(float64(f.pop().AsF32()), false)
	case wasm.OpI32TruncF64S:
		return f.truncToI32(f.pop().AsF64(), true)
	case wasm.OpI32TruncF64U:
		return f.truncToI32(f.pop().AsF64(), false)
	case wasm.OpI64ExtendI32S:
		f.push(I64(int64(f.pop().AsI32())))
	case wasm.OpI64ExtendI32U:
		f.push(I64(int64(uint32(f.pop().Bits))))
	case wasm.OpI64TruncF32S:
		return f.truncToI64(float64(f.pop().AsF32()), true)
	case wasm.OpI64TruncF32U:
		return f.truncToI64(float64(f.pop().AsF32()), false)
	case wasm.OpI64TruncF64S:
		return f.truncToI64(f.pop().AsF64(), true)
	case wasm.OpI64TruncF64U:
		return f.truncToI64(f.pop().AsF64(), false)
	case wasm.OpF32ConvertI32S:
		f.push(F32(float32(f.pop().AsI32())))
	case wasm.OpF32ConvertI32U:
		f.push(F32(float32(uint32(f.pop().Bits))))
	case wasm.OpF32ConvertI64S:
		f.push(F32(float32(f.pop().AsI64())))
	case wasm.OpF32ConvertI64U:
		f.push(F32(float32(f.pop().Bits)))
	case wasm.OpF32DemoteF64:
		f.push(F32(float32(f.pop().AsF64())))
	case wasm.OpF64ConvertI32S:
		f.push(F64(float64(f.pop().AsI32())))
	case wasm.OpF64ConvertI32U:
		f.push(F64(float64(uint32(f.pop().Bits))))
	case wasm.OpF64ConvertI64S:
		f.push(F64(float64(f.pop().AsI64())))
	case wasm.OpF64ConvertI64U:
		f.push(F64(float64(f.pop().Bits)))
	case wasm.OpF64PromoteF32:
		f.push(F64(float64(f.pop().AsF32())))
	case wasm.OpI32ReinterpretF32, wasm.OpF32ReinterpretI32:
		v := f.pop()
		t := wasm.I32
		if in.Op == wasm.OpF32ReinterpretI32 {
			t = wasm.F32
		}
		f.push(Value{Type: t, Bits: v.Bits & 0xffffffff})
	case wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64:
		v := f.pop()
		t := wasm.I64
		if in.Op == wasm.OpF64ReinterpretI64 {
			t = wasm.F64
		}
		f.push(Value{Type: t, Bits: v.Bits})
	case wasm.OpI32Extend8S:
		f.push(I32(int32(int8(f.pop().Bits))))
	case wasm.OpI32Extend16S:
		f.push(I32(int32(int16(f.pop().Bits))))
	case wasm.OpI64Extend8S:
		f.push(I64(int64(int8(f.pop().Bits))))
	case wasm.OpI64Extend16S:
		f.push(I64(int64(int16(f.pop().Bits))))
	case wasm.OpI64Extend32S:
		f.push(I64(int64(int32(f.pop().Bits))))
	default:
		return errUnsupported(in)
	}
	return nil
}

func errUnsupported(in wasm.Instr) error {
	return &UnsupportedError{Op: in.Op}
}

// UnsupportedError reports an instruction the interpreter cannot execute.
type UnsupportedError struct{ Op wasm.Opcode }

func (e *UnsupportedError) Error() string {
	return "interp: unsupported instruction " + e.Op.Name()
}

func (f *frame) truncToI32(x float64, signed bool) error {
	if math.IsNaN(x) {
		return ErrOverflow
	}
	t := math.Trunc(x)
	if signed {
		if t < math.MinInt32 || t > math.MaxInt32 {
			return ErrOverflow
		}
		f.push(I32(int32(t)))
	} else {
		if t < 0 || t > math.MaxUint32 {
			return ErrOverflow
		}
		f.push(I32(int32(uint32(t))))
	}
	return nil
}

func (f *frame) truncToI64(x float64, signed bool) error {
	if math.IsNaN(x) {
		return ErrOverflow
	}
	t := math.Trunc(x)
	if signed {
		if t < math.MinInt64 || t >= math.MaxInt64 {
			return ErrOverflow
		}
		f.push(I64(int64(t)))
	} else {
		if t < 0 || t >= math.MaxUint64 {
			return ErrOverflow
		}
		f.push(I64(int64(uint64(t))))
	}
	return nil
}
