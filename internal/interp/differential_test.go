package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

// expr is a randomly generated integer expression over two parameters,
// evaluated both by the compiled wasm and by a Go reference evaluator.
type expr interface {
	c() string
	eval(a, b int32) int32
}

type leaf struct{ text string }

func (l leaf) c() string {
	// Parenthesize negative constants so `-(-19)` never lexes as `--`.
	if len(l.text) > 0 && l.text[0] == '-' {
		return "(" + l.text + ")"
	}
	return l.text
}
func (l leaf) eval(a, b int32) int32 {
	switch l.text {
	case "a":
		return a
	case "b":
		return b
	}
	var v int32
	fmt.Sscanf(l.text, "%d", &v)
	return v
}

type binop struct {
	op   string
	l, r expr
}

func (x binop) c() string { return "(" + x.l.c() + " " + x.op + " " + x.r.c() + ")" }
func (x binop) eval(a, b int32) int32 {
	lv, rv := x.l.eval(a, b), x.r.eval(a, b)
	switch x.op {
	case "+":
		return lv + rv
	case "-":
		return lv - rv
	case "*":
		return lv * rv
	case "&":
		return lv & rv
	case "|":
		return lv | rv
	case "^":
		return lv ^ rv
	case "<<":
		return lv << (uint32(rv) & 31)
	case ">>":
		return lv >> (uint32(rv) & 31)
	case "<":
		if lv < rv {
			return 1
		}
		return 0
	case "==":
		if lv == rv {
			return 1
		}
		return 0
	}
	panic("bad op")
}

type unop struct {
	op string
	x  expr
}

func (x unop) c() string { return "(" + x.op + x.x.c() + ")" }
func (x unop) eval(a, b int32) int32 {
	v := x.x.eval(a, b)
	switch x.op {
	case "-":
		return -v
	case "~":
		return ^v
	}
	panic("bad unop")
}

func randExpr(r *rand.Rand, depth int) expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return leaf{"a"}
		case 1:
			return leaf{"b"}
		default:
			return leaf{fmt.Sprint(r.Intn(201) - 100)}
		}
	}
	if r.Intn(6) == 0 {
		return unop{op: []string{"-", "~"}[r.Intn(2)], x: randExpr(r, depth-1)}
	}
	// Division and modulo are excluded: they trap on zero and overflow,
	// which the reference evaluator would have to replicate exactly.
	// Shifts are masked identically (&31) on both sides.
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "=="}
	op := ops[r.Intn(len(ops))]
	return binop{op: op, l: randExpr(r, depth-1), r: randExpr(r, depth-1)}
}

// shiftWrap wraps shift amounts like the wasm semantics (mod 32); the C
// source masks explicitly so both sides agree.
type shift struct {
	op   string
	l, r expr
}

func (x shift) c() string { return "(" + x.l.c() + " " + x.op + " (" + x.r.c() + " & 31))" }
func (x shift) eval(a, b int32) int32 {
	lv, rv := x.l.eval(a, b), x.r.eval(a, b)
	if x.op == "<<" {
		return lv << (uint32(rv&31) & 31)
	}
	return lv >> (uint32(rv&31) & 31)
}

// TestDifferentialExpressions compiles dozens of random expressions and
// checks, on many inputs each, that the interpreted wasm agrees with the
// Go reference evaluation — i.e. the compiler implements C's (wrapping
// int32) arithmetic exactly.
func TestDifferentialExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for i := 0; i < 40; i++ {
		var e expr = randExpr(r, 4)
		if r.Intn(3) == 0 {
			e = shift{op: []string{"<<", ">>"}[r.Intn(2)], l: e, r: randExpr(r, 2)}
		}
		src := fmt.Sprintf("int f(int a, int b) { return %s; }", e.c())
		obj, err := cc.Compile(src, cc.Options{Debug: false})
		if err != nil {
			t.Fatalf("expr %d does not compile: %v\n%s", i, err, src)
		}
		if err := wasm.Validate(obj.Module); err != nil {
			t.Fatalf("expr %d invalid: %v\n%s", i, err, src)
		}
		inst, err := Instantiate(obj.Module, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 25; j++ {
			a := int32(r.Uint32())
			b := int32(r.Uint32())
			if j < 5 {
				a, b = int32(j)-2, int32(j) // small values too
			}
			res, err := inst.CallExport("f", I32(a), I32(b))
			if err != nil {
				t.Fatalf("expr %d trap on (%d,%d): %v\n%s", i, a, b, err, src)
			}
			want := e.eval(a, b)
			if got := res[0].AsI32(); got != want {
				t.Fatalf("expr %d: f(%d,%d) = %d, want %d\n%s", i, a, b, got, want, src)
			}
		}
	}
}
