package interp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

// run compiles C source, instantiates it, and calls the named export.
func run(t *testing.T, src, fn string, imports map[string]HostFunc, args ...Value) ([]Value, error) {
	t.Helper()
	obj, err := cc.Compile(src, cc.Options{FileName: "t.c", Debug: false})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := wasm.Validate(obj.Module); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(obj.Module, imports)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return inst.CallExport(fn, args...)
}

func one(t *testing.T, src, fn string, args ...Value) Value {
	t.Helper()
	res, err := run(t, src, fn, nil, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	if len(res) != 1 {
		t.Fatalf("call %s returned %d values", fn, len(res))
	}
	return res[0]
}

func TestArithmetic(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int mixed(int a) { return a * 3 - (a / 2) + a % 5; }
unsigned int ushift(unsigned int x) { return (x >> 3) | (x << 29); }
long long big(long long a, long long b) { return a * b + 7; }
double fma(double x, double y) { return x * y + 0.5; }
float fhalf(float x) { return x * 0.5f; }
`
	if got := one(t, src, "add", I32(2), I32(40)).AsI32(); got != 42 {
		t.Errorf("add = %d", got)
	}
	if got := one(t, src, "mixed", I32(11)).AsI32(); got != 11*3-5+1 {
		t.Errorf("mixed = %d", got)
	}
	var ux uint32 = 0x80000001
	if got := uint32(one(t, src, "ushift", I32(int32(ux))).AsI32()); got != (ux>>3)|(ux<<29) {
		t.Errorf("ushift = %#x", got)
	}
	if got := one(t, src, "big", I64(1<<33), I64(3)).AsI64(); got != 3*(1<<33)+7 {
		t.Errorf("big = %d", got)
	}
	if got := one(t, src, "fma", F64(2.5), F64(4)).AsF64(); got != 10.5 {
		t.Errorf("fma = %g", got)
	}
	if got := one(t, src, "fhalf", F32(7)).AsF32(); got != 3.5 {
		t.Errorf("fhalf = %g", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int fact(int n) {
	int acc = 1;
	while (n > 1) { acc *= n; n--; }
	return acc;
}
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n /= 2; } else { n = 3 * n + 1; }
		steps++;
	}
	return steps;
}
int sumskip(int n) {
	int acc = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0) { continue; }
		if (i > 20) { break; }
		acc += i;
	}
	return acc;
}
int pick(int c) { return c > 0 ? 10 : -10; }
`
	if got := one(t, src, "fact", I32(6)).AsI32(); got != 720 {
		t.Errorf("fact(6) = %d", got)
	}
	if got := one(t, src, "fib", I32(12)).AsI32(); got != 144 {
		t.Errorf("fib(12) = %d", got)
	}
	if got := one(t, src, "collatz", I32(27)).AsI32(); got != 111 {
		t.Errorf("collatz(27) = %d", got)
	}
	want := 0
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			continue
		}
		if i > 20 {
			break
		}
		want += i
	}
	if got := one(t, src, "sumskip", I32(30)).AsI32(); got != int32(want) {
		t.Errorf("sumskip = %d, want %d", got, want)
	}
	if got := one(t, src, "pick", I32(0)).AsI32(); got != -10 {
		t.Errorf("pick(0) = %d", got)
	}
}

func TestMemoryAndStructs(t *testing.T) {
	src := `
struct point { int x; int y; double w; };
double use(struct point *p, int n) {
	int i;
	double acc = 0;
	for (i = 0; i < n; i++) {
		p[i].x = i;
		p[i].y = i * 2;
		p[i].w = (double) i * 0.5;
	}
	for (i = 0; i < n; i++) {
		acc += p[i].w + (double) p[i].y;
	}
	return acc;
}
int strlen_c(const char *s) {
	int n = 0;
	while (s[n] != 0) { n++; }
	return n;
}
char first(const char *s) { return s[0]; }
`
	// Place the struct array at address 2048 (past static data).
	got := one(t, src, "use", I32(2048), I32(5)).AsF64()
	want := 0.0
	for i := 0; i < 5; i++ {
		want += float64(i)*0.5 + float64(i*2)
	}
	if got != want {
		t.Errorf("use = %g, want %g", got, want)
	}

	// String literals land in static memory; exercise them via a
	// function that returns one.
	src2 := `
const char *msg(void) { return "hello"; }
int msglen(void) {
	const char *s = msg();
	int n = 0;
	while (s[n] != 0) { n++; }
	return n;
}
char msgat(int i) {
	const char *s = msg();
	return s[i];
}
`
	if got := one(t, src2, "msglen").AsI32(); got != 5 {
		t.Errorf("msglen = %d", got)
	}
	if got := one(t, src2, "msgat", I32(1)).AsI32(); got != 'e' {
		t.Errorf("msgat(1) = %c", rune(got))
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter = 100;
double ratio = 0.25;
int bump(int by) { counter += by; return counter; }
double scaled(double x) { return x * ratio; }
`
	obj, err := cc.Compile(src, cc.Options{Debug: false})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(obj.Module, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := inst.CallExport("bump", I32(5))
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].AsI32() != 105 {
		t.Errorf("bump = %d", r1[0].AsI32())
	}
	// Global state persists across calls.
	r2, _ := inst.CallExport("bump", I32(1))
	if r2[0].AsI32() != 106 {
		t.Errorf("second bump = %d", r2[0].AsI32())
	}
	r3, _ := inst.CallExport("scaled", F64(8))
	if r3[0].AsF64() != 2 {
		t.Errorf("scaled = %g", r3[0].AsF64())
	}
}

func TestHostImports(t *testing.T) {
	src := `
extern int add_host(int a, int b);
int twice(int x) { return add_host(x, x); }
`
	imports := map[string]HostFunc{
		"env.add_host": func(_ *Instance, args []Value) ([]Value, error) {
			return []Value{I32(args[0].AsI32() + args[1].AsI32())}, nil
		},
	}
	res, err := run(t, src, "twice", imports, I32(21))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AsI32() != 42 {
		t.Errorf("twice = %d", res[0].AsI32())
	}
	// Unresolved import traps with a useful message.
	if _, err := run(t, src, "twice", nil, I32(1)); err == nil {
		t.Error("unresolved import did not trap")
	}
}

func TestConversionsSemantics(t *testing.T) {
	src := `
int f2i(double x) { return (int) x; }
double i2f(int x) { return (double) x; }
unsigned int u_narrow(long long x) { return (unsigned int) x; }
char narrow8(int x) { return (char) x; }
unsigned short narrow16(int x) { return (unsigned short) x; }
long long widen(int x) { return (long long) x; }
`
	if got := one(t, src, "f2i", F64(-3.7)).AsI32(); got != -3 {
		t.Errorf("f2i = %d", got)
	}
	if got := one(t, src, "i2f", I32(-5)).AsF64(); got != -5 {
		t.Errorf("i2f = %g", got)
	}
	if got := one(t, src, "u_narrow", I64(0x1_0000_0007)).AsI32(); got != 7 {
		t.Errorf("u_narrow = %d", got)
	}
	if got := one(t, src, "narrow8", I32(0x181)).AsI32(); got != -127 {
		t.Errorf("narrow8 = %d", got)
	}
	if got := one(t, src, "narrow16", I32(0x1ffff)).AsI32(); got != 0xffff {
		t.Errorf("narrow16 = %d", got)
	}
	if got := one(t, src, "widen", I32(-2)).AsI64(); got != -2 {
		t.Errorf("widen = %d", got)
	}
}

func TestLogicShortCircuit(t *testing.T) {
	src := `
extern int boom(void);
int safe(int a) { return a != 0 && boom(); }
int safeor(int a) { return a != 0 || boom(); }
`
	// boom is unresolved: calling it traps, so short-circuiting is
	// observable.
	if res, err := run(t, src, "safe", nil, I32(0)); err != nil || res[0].AsI32() != 0 {
		t.Errorf("safe(0) = %v, %v (should not call boom)", res, err)
	}
	if _, err := run(t, src, "safe", nil, I32(1)); err == nil {
		t.Error("safe(1) should reach boom and trap")
	}
	if res, err := run(t, src, "safeor", nil, I32(1)); err != nil || res[0].AsI32() != 1 {
		t.Errorf("safeor(1) = %v, %v", res, err)
	}
}

func TestTraps(t *testing.T) {
	src := `
int div(int a, int b) { return a / b; }
int deref_far(int addr) { int *p = (int *) addr; return p[0]; }
int spin(void) { while (1) { } return 0; }
`
	if _, err := run(t, src, "div", nil, I32(1), I32(0)); !errors.Is(err, ErrDivByZero) {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := run(t, src, "div", nil, I32(math.MinInt32), I32(-1)); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: %v", err)
	}
	if _, err := run(t, src, "deref_far", nil, I32(1<<30)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("oob: %v", err)
	}
	obj, err := cc.Compile(src, cc.Options{Debug: false})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(obj.Module, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Fuel = 10000
	if _, err := inst.CallExport("spin"); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("infinite loop: %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	src := `int down(int n) { if (n <= 0) { return 0; } return down(n - 1); }`
	if _, err := run(t, src, "down", nil, I32(100)); err != nil {
		t.Errorf("depth 100: %v", err)
	}
	if _, err := run(t, src, "down", nil, I32(100000)); !errors.Is(err, ErrStackDepth) {
		t.Errorf("deep recursion: %v", err)
	}
}

func TestEnumAndBool(t *testing.T) {
	src := `
enum mode { OFF, SLOW = 5, FAST };
int next(enum mode m) {
	if ((int) m == SLOW) { return FAST; }
	if ((int) m == FAST) { return OFF; }
	return SLOW;
}
bool toggle(bool b) { return !b; }
`
	if got := one(t, src, "next", I32(5)).AsI32(); got != 6 {
		t.Errorf("next(SLOW) = %d", got)
	}
	if got := one(t, src, "toggle", I32(1)).AsI32(); got != 0 {
		t.Errorf("toggle(true) = %d", got)
	}
	if got := one(t, src, "toggle", I32(0)).AsI32(); got != 1 {
		t.Errorf("toggle(false) = %d", got)
	}
}

func TestIncDecSemantics(t *testing.T) {
	src := `
int post(int x) { int y = x++; return y * 1000 + x; }
int pre(int x) { int y = ++x; return y * 1000 + x; }
int memop(int *p) { p[0] = 10; int old = p[0]++; return old * 1000 + p[0]; }
`
	if got := one(t, src, "post", I32(5)).AsI32(); got != 5*1000+6 {
		t.Errorf("post = %d", got)
	}
	if got := one(t, src, "pre", I32(5)).AsI32(); got != 6*1000+6 {
		t.Errorf("pre = %d", got)
	}
	if got := one(t, src, "memop", I32(4096)).AsI32(); got != 10*1000+11 {
		t.Errorf("memop = %d", got)
	}
}

func TestValueString(t *testing.T) {
	if I32(5).String() != "i32:5" || F64(1.5).String() != "f64:1.5" {
		t.Error("Value.String format")
	}
}

func TestSwitchSemantics(t *testing.T) {
	src := `
int dense(int x) {
	int acc = 0;
	switch (x) {
	case 0: acc += 1; break;
	case 1: acc += 10;      /* falls through */
	case 2: acc += 100; break;
	case 5: acc += 1000; break;
	default: acc = -1;
	}
	return acc;
}
int sparse(int x) {
	switch (x) {
	case 7: return 1;
	case 7000: return 2;
	case 7000000: return 3;
	}
	return 0;
}
`
	cases := map[int32]int32{0: 1, 1: 110, 2: 100, 5: 1000, 3: -1, 99: -1, -4: -1}
	for in, want := range cases {
		if got := one(t, src, "dense", I32(in)).AsI32(); got != want {
			t.Errorf("dense(%d) = %d, want %d", in, got, want)
		}
	}
	sparseCases := map[int32]int32{7: 1, 7000: 2, 7000000: 3, 8: 0, 0: 0}
	for in, want := range sparseCases {
		if got := one(t, src, "sparse", I32(in)).AsI32(); got != want {
			t.Errorf("sparse(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	src := `
int count(int n) {
	int evens = 0;
	int odds = 0;
	int i;
	for (i = 0; i < n; i++) {
		switch (i % 2) {
		case 0: evens++; break;
		default: odds++;
		}
		if (i > 100) { continue; }
	}
	return evens * 1000 + odds;
}
`
	if got := one(t, src, "count", I32(9)).AsI32(); got != 5*1000+4 {
		t.Errorf("count(9) = %d", got)
	}
}
