// Package interp is a WebAssembly interpreter for the MVP instruction set
// (plus sign extension). It exists to test the compiler end to end: the
// test suite compiles C functions, executes them, and compares results
// against the C semantics — the strongest evidence that the corpus the
// models learn from behaves like real compiled code.
package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/wasm"
)

// Errors produced by traps.
var (
	ErrUnreachable   = errors.New("interp: unreachable executed")
	ErrDivByZero     = errors.New("interp: integer divide by zero")
	ErrOverflow      = errors.New("interp: integer overflow")
	ErrOutOfBounds   = errors.New("interp: out of bounds memory access")
	ErrFuelExhausted = errors.New("interp: fuel exhausted (possible infinite loop)")
	ErrStackDepth    = errors.New("interp: call stack exhausted")
)

// Value is a typed WebAssembly value. Bits holds the raw representation
// (sign-extended for i32).
type Value struct {
	Type wasm.ValType
	Bits uint64
}

// I32 wraps an int32 value.
func I32(v int32) Value { return Value{Type: wasm.I32, Bits: uint64(uint32(v))} }

// I64 wraps an int64 value.
func I64(v int64) Value { return Value{Type: wasm.I64, Bits: uint64(v)} }

// F32 wraps a float32 value.
func F32(v float32) Value { return Value{Type: wasm.F32, Bits: uint64(math.Float32bits(v))} }

// F64 wraps a float64 value.
func F64(v float64) Value { return Value{Type: wasm.F64, Bits: math.Float64bits(v)} }

// AsI32 returns the value as an int32.
func (v Value) AsI32() int32 { return int32(uint32(v.Bits)) }

// AsI64 returns the value as an int64.
func (v Value) AsI64() int64 { return int64(v.Bits) }

// AsF32 returns the value as a float32.
func (v Value) AsF32() float32 { return math.Float32frombits(uint32(v.Bits)) }

// AsF64 returns the value as a float64.
func (v Value) AsF64() float64 { return math.Float64frombits(v.Bits) }

// String renders the value with its type.
func (v Value) String() string {
	switch v.Type {
	case wasm.I32:
		return fmt.Sprintf("i32:%d", v.AsI32())
	case wasm.I64:
		return fmt.Sprintf("i64:%d", v.AsI64())
	case wasm.F32:
		return fmt.Sprintf("f32:%g", v.AsF32())
	case wasm.F64:
		return fmt.Sprintf("f64:%g", v.AsF64())
	}
	return fmt.Sprintf("?:%x", v.Bits)
}

// HostFunc implements an imported function.
type HostFunc func(inst *Instance, args []Value) ([]Value, error)

// PageSize is the WebAssembly memory page size.
const PageSize = 64 * 1024

// Instance is an instantiated module ready for calls.
type Instance struct {
	Module  *wasm.Module
	Memory  []byte
	globals []Value
	hosts   []HostFunc // indexed by import position in function index space
	// Fuel bounds the number of executed instructions per Call.
	Fuel int64

	// control metadata per module function: matching end/else indices.
	ctrl [][]ctrlInfo

	fuelLeft int64
	depth    int
}

type ctrlInfo struct {
	end int // index just past the matching end
	els int // index of the else (for if), or -1
}

// Instantiate prepares a module for execution. imports maps "module.name"
// to host implementations; missing function imports trap when called.
func Instantiate(m *wasm.Module, imports map[string]HostFunc) (*Instance, error) {
	inst := &Instance{Module: m, Fuel: 50_000_000}
	pages := uint32(1)
	for _, mem := range m.Memories {
		pages = mem.Min
	}
	for _, imp := range m.Imports {
		if imp.Kind == wasm.KindMemory {
			pages = imp.Mem.Min
		}
	}
	if pages == 0 {
		pages = 1
	}
	inst.Memory = make([]byte, int(pages)*PageSize)

	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.KindFunc:
			inst.hosts = append(inst.hosts, imports[imp.Module+"."+imp.Name])
		case wasm.KindGlobal:
			inst.globals = append(inst.globals, Value{Type: imp.Global.Type})
		}
	}
	for _, g := range m.Globals {
		v, err := evalConst(g.Init, g.Type.Type)
		if err != nil {
			return nil, err
		}
		inst.globals = append(inst.globals, v)
	}
	for di, d := range m.Datas {
		off, err := evalConst(d.Offset, wasm.I32)
		if err != nil {
			return nil, err
		}
		at := int(off.AsI32())
		if at < 0 || at+len(d.Bytes) > len(inst.Memory) {
			return nil, fmt.Errorf("interp: data segment %d out of bounds", di)
		}
		copy(inst.Memory[at:], d.Bytes)
	}

	inst.ctrl = make([][]ctrlInfo, len(m.Funcs))
	for i := range m.Funcs {
		ci, err := buildCtrl(m.Funcs[i].Body)
		if err != nil {
			return nil, fmt.Errorf("interp: function %d: %w", i, err)
		}
		inst.ctrl[i] = ci
	}
	return inst, nil
}

func evalConst(expr []wasm.Instr, want wasm.ValType) (Value, error) {
	if len(expr) != 1 {
		return Value{}, fmt.Errorf("interp: unsupported constant expression")
	}
	in := expr[0]
	switch in.Op {
	case wasm.OpI32Const:
		return I32(int32(in.Imm)), nil
	case wasm.OpI64Const:
		return I64(in.Imm), nil
	case wasm.OpF32Const:
		return F32(in.F32), nil
	case wasm.OpF64Const:
		return F64(in.F64), nil
	}
	return Value{}, fmt.Errorf("interp: unsupported constant instruction %s", in.Op.Name())
}

// buildCtrl matches structured-control instructions ahead of time.
func buildCtrl(body []wasm.Instr) ([]ctrlInfo, error) {
	out := make([]ctrlInfo, len(body))
	var stack []int
	for i, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			out[i] = ctrlInfo{els: -1}
			stack = append(stack, i)
		case wasm.OpElse:
			if len(stack) == 0 {
				return nil, fmt.Errorf("else without if at %d", i)
			}
			out[stack[len(stack)-1]].els = i
		case wasm.OpEnd:
			if len(stack) == 0 {
				return nil, fmt.Errorf("unmatched end at %d", i)
			}
			start := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out[start].end = i + 1
			if out[start].els >= 0 {
				out[out[start].els] = ctrlInfo{end: i + 1, els: -1}
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%d unterminated blocks", len(stack))
	}
	return out, nil
}

// CallExport invokes an exported function by name.
func (inst *Instance) CallExport(name string, args ...Value) ([]Value, error) {
	for _, e := range inst.Module.Exports {
		if e.Kind == wasm.KindFunc && e.Name == name {
			return inst.Call(e.Index, args...)
		}
	}
	return nil, fmt.Errorf("interp: no exported function %q", name)
}

// Call invokes a function by its index in the function index space
// (imports first).
func (inst *Instance) Call(funcIdx uint32, args ...Value) ([]Value, error) {
	inst.fuelLeft = inst.Fuel
	inst.depth = 0
	return inst.call(funcIdx, args)
}

func (inst *Instance) call(funcIdx uint32, args []Value) ([]Value, error) {
	inst.depth++
	defer func() { inst.depth-- }()
	if inst.depth > 512 {
		return nil, ErrStackDepth
	}
	sig, err := inst.Module.FuncTypeAt(funcIdx)
	if err != nil {
		return nil, err
	}
	if len(args) != len(sig.Params) {
		return nil, fmt.Errorf("interp: call with %d args, want %d", len(args), len(sig.Params))
	}
	for i, a := range args {
		if a.Type != sig.Params[i] {
			return nil, fmt.Errorf("interp: arg %d has type %s, want %s", i, a.Type, sig.Params[i])
		}
	}
	nimp := inst.Module.NumImportedFuncs()
	if int(funcIdx) < nimp {
		host := inst.hosts[funcIdx]
		if host == nil {
			imp := funcImport(inst.Module, int(funcIdx))
			return nil, fmt.Errorf("interp: unresolved import %s.%s", imp.Module, imp.Name)
		}
		return host(inst, args)
	}
	fi := int(funcIdx) - nimp
	fn := &inst.Module.Funcs[fi]

	frame := &frame{inst: inst, fn: fn, ctrl: inst.ctrl[fi]}
	frame.locals = make([]Value, 0, len(args)+fn.NumLocals())
	frame.locals = append(frame.locals, args...)
	for _, d := range fn.Locals {
		for i := uint32(0); i < d.Count; i++ {
			frame.locals = append(frame.locals, Value{Type: d.Type})
		}
	}
	if err := frame.run(); err != nil {
		return nil, err
	}
	if len(sig.Results) == 0 {
		return nil, nil
	}
	if len(frame.stack) < len(sig.Results) {
		return nil, fmt.Errorf("interp: function left %d values, want %d", len(frame.stack), len(sig.Results))
	}
	return frame.stack[len(frame.stack)-len(sig.Results):], nil
}

func funcImport(m *wasm.Module, idx int) wasm.Import {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == wasm.KindFunc {
			if n == idx {
				return imp
			}
			n++
		}
	}
	return wasm.Import{}
}

// label is one entry of a frame's control stack.
type label struct {
	start  int // instruction index of the block/loop/if opcode
	end    int // index just past the matching end
	isLoop bool
	height int // value stack height at entry
	arity  int // number of result values
}

type frame struct {
	inst   *Instance
	fn     *wasm.Function
	ctrl   []ctrlInfo
	locals []Value
	stack  []Value
	labels []label
	pc     int
}

func (f *frame) push(v Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// branch performs br to the given relative label depth.
func (f *frame) branch(depth int) {
	target := f.labels[len(f.labels)-1-depth]
	// Carry the branch results, reset the stack, jump.
	var carry []Value
	if !target.isLoop && target.arity > 0 {
		carry = append(carry, f.stack[len(f.stack)-target.arity:]...)
	}
	f.stack = f.stack[:target.height]
	f.stack = append(f.stack, carry...)
	if target.isLoop {
		f.labels = f.labels[:len(f.labels)-depth]
		f.pc = target.start + 1
	} else {
		f.labels = f.labels[:len(f.labels)-1-depth]
		f.pc = target.end
	}
}

func blockArity(bt int64) int {
	if bt == wasm.BlockTypeEmpty {
		return 0
	}
	return 1
}
