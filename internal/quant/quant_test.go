package quant

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestQuantizeRoundTripError: Dequantize(QuantizeMatrix(w)) must stay
// within the documented per-mode error bound of w, across magnitudes
// spanning the range a trained checkpoint actually contains.
func TestQuantizeRoundTripError(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+r.Intn(24), 1+r.Intn(24)
		w := make([]float64, rows*cols)
		mag := math.Exp(float64(r.Intn(12) - 6))
		for i := range w {
			w[i] = (r.Float64()*2 - 1) * mag
		}
		for _, mode := range []Mode{F32, Int8} {
			m, err := QuantizeMatrix(rows, cols, w, mode)
			if err != nil {
				t.Fatalf("QuantizeMatrix(%s): %v", mode, err)
			}
			got := m.Dequantize(nil)
			for i := range w {
				var bound float64
				if mode == Int8 {
					bound = m.MaxError()
				} else {
					bound = m.MaxError() * math.Abs(w[i])
				}
				if d := math.Abs(got[i] - w[i]); d > bound {
					t.Fatalf("%s %dx%d: w[%d]=%g round-tripped to %g (|Δ|=%g > %g)",
						mode, rows, cols, i, w[i], got[i], d, bound)
				}
			}
		}
	}
}

// TestQuantizeDegenerate covers constant and all-zero matrices, where
// the int8 range collapses.
func TestQuantizeDegenerate(t *testing.T) {
	for _, w := range [][]float64{
		{0, 0, 0, 0},
		{3.25, 3.25, 3.25, 3.25},
		{-1e-8, -1e-8, -1e-8, -1e-8},
	} {
		m, err := QuantizeMatrix(2, 2, w, Int8)
		if err != nil {
			t.Fatalf("QuantizeMatrix(%v): %v", w, err)
		}
		got := m.Dequantize(nil)
		for i := range w {
			if d := math.Abs(got[i] - w[i]); d > m.MaxError() {
				t.Fatalf("constant %g round-tripped to %g (bound %g)", w[i], got[i], m.MaxError())
			}
		}
	}
}

// TestQuantizeRejectsNonFinite: Inf/NaN weights indicate a corrupt
// checkpoint and must be refused in both modes.
func TestQuantizeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		for _, mode := range []Mode{F32, Int8} {
			if _, err := QuantizeMatrix(1, 2, []float64{1, bad}, mode); err == nil {
				t.Fatalf("QuantizeMatrix(%s) accepted %g", mode, bad)
			}
		}
	}
}

// TestEncodeDecodeMatrices: serialization is the identity in both
// directions on a mixed-mode checkpoint.
func TestEncodeDecodeMatrices(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var ms []Matrix
	for i := 0; i < 7; i++ {
		rows, cols := 1+r.Intn(9), 1+r.Intn(9)
		w := make([]float64, rows*cols)
		for j := range w {
			w[j] = r.NormFloat64()
		}
		mode := F32
		if i%2 == 0 {
			mode = Int8
		}
		m, err := QuantizeMatrix(rows, cols, w, mode)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	enc := EncodeMatrices(ms)
	dec, err := DecodeMatrices(enc)
	if err != nil {
		t.Fatalf("DecodeMatrices: %v", err)
	}
	if len(dec) != len(ms) {
		t.Fatalf("decoded %d matrices, want %d", len(dec), len(ms))
	}
	for i := range ms {
		a, b := ms[i], dec[i]
		if a.Rows != b.Rows || a.Cols != b.Cols || a.Mode != b.Mode ||
			math.Float64bits(a.Scale) != math.Float64bits(b.Scale) ||
			math.Float64bits(a.Zero) != math.Float64bits(b.Zero) ||
			!bytes.Equal(i8Bytes(a.I8), i8Bytes(b.I8)) || !f32Equal(a.F32, b.F32) {
			t.Fatalf("matrix %d did not round-trip: %+v vs %+v", i, a, b)
		}
	}
	if reenc := EncodeMatrices(dec); !bytes.Equal(reenc, enc) {
		t.Fatal("re-encoding decoded matrices changed the bytes")
	}
}

// TestDecodeRejectsMalformed: truncations, bad magic, hostile counts and
// dims, invalid scale, and trailing garbage all error without panicking
// or over-allocating.
func TestDecodeRejectsMalformed(t *testing.T) {
	m, err := QuantizeMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6}, Int8)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeMatrices([]Matrix{m})
	cases := map[string][]byte{
		"empty":       {},
		"short magic": good[:3],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"huge count":  append(append([]byte{}, good[:4]...), 0xff, 0xff, 0xff, 0xff),
		"truncated":   good[:len(good)-2],
		"trailing":    append(append([]byte{}, good...), 0),
		"bad mode":    overwrite(good, 8, 7),
		"huge dims":   overwrite(good, 9, 0xff, 0xff, 0xff, 0x7f),
		"zero scale":  overwrite(good, 17, 0, 0, 0, 0, 0, 0, 0, 0),
		"nan scale":   overwrite(good, 17, 1, 0, 0, 0, 0, 0, 0xf0, 0x7f),
	}
	for name, data := range cases {
		if _, err := DecodeMatrices(data); err == nil {
			t.Errorf("%s: decode succeeded on malformed input", name)
		}
	}
}

func overwrite(src []byte, off int, b ...byte) []byte {
	out := append([]byte{}, src...)
	copy(out[off:], b)
	return out
}

func i8Bytes(q []int8) []byte {
	out := make([]byte, len(q))
	for i, v := range q {
		out[i] = byte(v)
	}
	return out
}

func f32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
