// Package quant implements per-matrix weight quantization for
// inference-only model export: float32 truncation and affine int8
// encodings with a round-trip binary serialization that travels
// alongside the full-precision gob checkpoint format. Quantization is
// lossy by design — the engine dequantizes back to float64 at load time
// and runs the fast-math inference kernels over the reconstructed
// weights — so the correctness story for anything built on this package
// is the accuracy-budget harness (internal/accbudget), not bitwise
// equality with the trained checkpoint.
package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mode selects a quantized element encoding.
type Mode string

const (
	// F32 stores each weight as the nearest float32: 2x smaller,
	// relative error bounded by 2^-24 per weight.
	F32 Mode = "f32"
	// Int8 stores each weight as an asymmetric affine int8 against a
	// per-matrix scale and zero point: 8x smaller, absolute error
	// bounded by ~1.5*Scale (scale/2 rounding plus at most one clamped
	// step at the range edges).
	Int8 Mode = "int8"
)

// ParseMode validates a -quantize flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case F32, Int8:
		return Mode(s), nil
	}
	return "", fmt.Errorf("quant: unknown mode %q (want %q or %q)", s, F32, Int8)
}

// Matrix is one quantized weight matrix. Exactly one of F32/I8 is
// populated, matching Mode; Scale and Zero are meaningful for Int8 only
// (w ≈ (q - Zero) * Scale, Zero integral-valued).
type Matrix struct {
	Rows, Cols int
	Mode       Mode
	F32        []float32
	I8         []int8
	Scale      float64
	Zero       float64
}

// QuantizeMatrix encodes the row-major weights w (length rows*cols)
// under the given mode. All weights must be finite: quantization ranges
// are computed from the data, and a trained checkpoint never contains
// Inf/NaN — their presence indicates a corrupt model.
func QuantizeMatrix(rows, cols int, w []float64, mode Mode) (Matrix, error) {
	if rows < 0 || cols < 0 || len(w) != rows*cols {
		return Matrix{}, fmt.Errorf("quant: %dx%d matrix with %d weights", rows, cols, len(w))
	}
	for i, x := range w {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return Matrix{}, fmt.Errorf("quant: non-finite weight %g at %d", x, i)
		}
	}
	m := Matrix{Rows: rows, Cols: cols, Mode: mode}
	switch mode {
	case F32:
		m.F32 = make([]float32, len(w))
		for i, x := range w {
			m.F32[i] = float32(x)
		}
	case Int8:
		lo, hi := 0.0, 0.0
		for _, x := range w {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		scale := (hi - lo) / 255
		if scale == 0 {
			scale = 1 // constant-zero matrix: any scale round-trips exactly
		}
		zero := math.Round(-lo/scale) - 128
		m.Scale, m.Zero = scale, zero
		m.I8 = make([]int8, len(w))
		for i, x := range w {
			q := math.Round(x/scale) + zero
			if q < -128 {
				q = -128
			} else if q > 127 {
				q = 127
			}
			m.I8[i] = int8(q)
		}
	default:
		return Matrix{}, fmt.Errorf("quant: unknown mode %q", mode)
	}
	return m, nil
}

// Dequantize reconstructs the float64 weights into dst (allocated if
// nil or too short) and returns it.
func (m *Matrix) Dequantize(dst []float64) []float64 {
	n := m.Rows * m.Cols
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	switch m.Mode {
	case F32:
		for i, x := range m.F32 {
			dst[i] = float64(x)
		}
	case Int8:
		for i, q := range m.I8 {
			dst[i] = (float64(q) - m.Zero) * m.Scale
		}
	}
	return dst
}

// DequantizeF32 reconstructs the weights as float32 into dst (allocated
// if nil or too short) and returns it: the direct-load path for the f32
// inference engine. F32-mode payloads copy verbatim — they already are
// the float32 truncation — and Int8 reconstructs in float64 and rounds
// once, so every element equals float32 of the Dequantize result.
func (m *Matrix) DequantizeF32(dst []float32) []float32 {
	n := m.Rows * m.Cols
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	switch m.Mode {
	case F32:
		copy(dst, m.F32)
	case Int8:
		for i, q := range m.I8 {
			dst[i] = float32((float64(q) - m.Zero) * m.Scale)
		}
	}
	return dst
}

// MaxError bounds |w - Dequantize(QuantizeMatrix(w))| per element for
// an Int8 matrix, and the relative error for F32 (as a fraction of
// |w|; callers multiply by the weight magnitude).
func (m *Matrix) MaxError() float64 {
	if m.Mode == Int8 {
		return 1.5 * m.Scale
	}
	return 0x1p-24
}

// Binary serialization. Layout (all integers little-endian):
//
//	magic "SWQ1" | u32 count
//	per matrix:
//	  u8 mode (0 = f32, 1 = int8) | u32 rows | u32 cols
//	  int8: f64 scale | f64 zero | rows*cols bytes
//	  f32:  rows*cols * 4 bytes (IEEE-754 binary32 bits)
//
// Decoding validates every length against the remaining input before
// allocating, so a truncated or hostile header cannot trigger a large
// allocation, and rejects trailing garbage — DecodeMatrices composed
// with EncodeMatrices is the identity in both directions
// (FuzzQuantRoundTrip).

var magic = [4]byte{'S', 'W', 'Q', '1'}

const (
	modeF32  = 0
	modeInt8 = 1
	// maxDim caps rows/cols: generous for any model this repo trains,
	// and keeps rows*cols far from integer overflow on 32-bit ints.
	maxDim = 1 << 24
)

// EncodeMatrices serializes a quantized checkpoint.
func EncodeMatrices(ms []Matrix) []byte {
	size := 8
	for _, m := range ms {
		size += 9
		if m.Mode == Int8 {
			size += 16 + m.Rows*m.Cols
		} else {
			size += 4 * m.Rows * m.Cols
		}
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ms)))
	for _, m := range ms {
		if m.Mode == Int8 {
			out = append(out, modeInt8)
		} else {
			out = append(out, modeF32)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(m.Rows))
		out = binary.LittleEndian.AppendUint32(out, uint32(m.Cols))
		if m.Mode == Int8 {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.Scale))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.Zero))
			for _, q := range m.I8 {
				out = append(out, byte(q))
			}
		} else {
			for _, x := range m.F32 {
				out = binary.LittleEndian.AppendUint32(out, math.Float32bits(x))
			}
		}
	}
	return out
}

// DecodeMatrices parses a quantized checkpoint produced by
// EncodeMatrices, validating structure, bounds, and parameter sanity.
func DecodeMatrices(data []byte) ([]Matrix, error) {
	if len(data) < 8 || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("quant: bad magic")
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	rest := data[8:]
	// A matrix needs at least 9 header bytes: cap count before trusting it.
	if uint64(count)*9 > uint64(len(rest)) {
		return nil, fmt.Errorf("quant: count %d exceeds input", count)
	}
	ms := make([]Matrix, 0, count)
	for mi := uint32(0); mi < count; mi++ {
		if len(rest) < 9 {
			return nil, fmt.Errorf("quant: truncated matrix %d header", mi)
		}
		mode := rest[0]
		rows := int(binary.LittleEndian.Uint32(rest[1:5]))
		cols := int(binary.LittleEndian.Uint32(rest[5:9]))
		rest = rest[9:]
		if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim {
			return nil, fmt.Errorf("quant: matrix %d dims %dx%d out of range", mi, rows, cols)
		}
		n := rows * cols
		m := Matrix{Rows: rows, Cols: cols}
		switch mode {
		case modeInt8:
			if len(rest) < 16+n {
				return nil, fmt.Errorf("quant: truncated int8 matrix %d payload", mi)
			}
			m.Mode = Int8
			m.Scale = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
			m.Zero = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16]))
			if !(m.Scale > 0) || math.IsInf(m.Scale, 0) ||
				math.IsInf(m.Zero, 0) || math.IsNaN(m.Zero) {
				return nil, fmt.Errorf("quant: matrix %d has invalid scale/zero %g/%g", mi, m.Scale, m.Zero)
			}
			rest = rest[16:]
			m.I8 = make([]int8, n)
			for i := range m.I8 {
				m.I8[i] = int8(rest[i])
			}
			rest = rest[n:]
		case modeF32:
			if len(rest) < 4*n {
				return nil, fmt.Errorf("quant: truncated f32 matrix %d payload", mi)
			}
			m.Mode = F32
			m.F32 = make([]float32, n)
			for i := range m.F32 {
				m.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
			}
			rest = rest[4*n:]
		default:
			return nil, fmt.Errorf("quant: matrix %d has unknown mode %d", mi, mode)
		}
		ms = append(ms, m)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("quant: %d trailing bytes", len(rest))
	}
	return ms, nil
}
