package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// batcher coalesces concurrent per-element prediction queries against
// one trained model into batched decodes. Queries from any number of
// requests land on a bounded queue; a single dispatcher goroutine
// collects up to maxBatch of them — waiting at most maxWait once at
// least one is in hand — and decodes the whole batch through
// core.Trained.PredictTyped, where the model advances every live beam
// hypothesis of every query in one GEMM per decoder step.
//
// A lone query never waits: producers count themselves in pending
// before enqueueing, so when the dispatcher holds the only outstanding
// query (pending == 0) it dispatches immediately instead of arming the
// maxWait timer. Queries whose context has expired by flush time are
// skipped, so abandoned requests never burn decode time.
type batcher struct {
	tr       *core.Trained
	queue    chan *batchItem
	maxBatch int
	maxWait  time.Duration
	// pending counts queries accepted by predictMany but not yet taken
	// off the queue by the dispatcher.
	pending  atomic.Int64
	sizeHist *metrics.Histogram
	waitHist *metrics.Histogram

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// batchItem is one (source, k) decode in flight through the batcher.
type batchItem struct {
	ctx   context.Context
	src   []string
	k     int
	enq   time.Time
	done  chan struct{}
	preds []core.TypePrediction
	err   error
}

// newBatcher starts the dispatcher for one trained model. queueDepth
// bounds queries waiting to be batched (producers block, honoring their
// context, when it is full).
func newBatcher(tr *core.Trained, maxBatch int, maxWait time.Duration, queueDepth int, sizeHist, waitHist *metrics.Histogram) *batcher {
	b := &batcher{
		tr:       tr,
		queue:    make(chan *batchItem, queueDepth),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		sizeHist: sizeHist,
		waitHist: waitHist,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// close stops the dispatcher after draining every enqueued query. Only
// call once no producer can enqueue anymore (the server closes batchers
// after its worker pool has drained).
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.queue) })
	b.wg.Wait()
}

// run is the dispatcher loop: collect a batch, flush it, repeat.
func (b *batcher) run() {
	defer b.wg.Done()
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		b.pending.Add(-1)
		batch := append(make([]*batchItem, 0, b.maxBatch), first)
		closed := b.collect(&batch)
		b.flush(batch)
		if closed {
			return
		}
	}
}

// collect fills batch up to maxBatch, arming the maxWait timer only
// when more queries are known to be on the way; it reports whether the
// queue was closed.
func (b *batcher) collect(batch *[]*batchItem) bool {
	var timer *time.Timer
	var timeout <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for len(*batch) < b.maxBatch {
		if b.pending.Load() == 0 {
			// Nothing accepted and not yet collected: dispatch now, so a
			// lone request sees zero batching latency.
			return false
		}
		if timeout == nil {
			timer = time.NewTimer(b.maxWait)
			timeout = timer.C
		}
		select {
		case it, ok := <-b.queue:
			if !ok {
				return true
			}
			b.pending.Add(-1)
			*batch = append(*batch, it)
		case <-timeout:
			return false
		}
	}
	return false
}

// flush decodes one batch. Expired queries are failed without decoding;
// the rest run through one batched multi-search beam decode.
func (b *batcher) flush(batch []*batchItem) {
	live := batch[:0]
	for _, it := range batch {
		if err := it.ctx.Err(); err != nil {
			it.err = err
			close(it.done)
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	now := time.Now()
	b.sizeHist.Observe(float64(len(live)))
	srcs := make([][]string, len(live))
	ks := make([]int, len(live))
	for i, it := range live {
		b.waitHist.Observe(now.Sub(it.enq).Seconds())
		srcs[i] = it.src
		ks[i] = it.k
	}
	preds := b.tr.PredictTyped(srcs, ks)
	for i, it := range live {
		it.preds = preds[i]
		close(it.done)
	}
}

// predictMany enqueues one request's cache-miss queries and waits for
// their batched results. Slot i of the result corresponds to srcs[i];
// the error is the first per-query error (a context expiry). When the
// queue is full, enqueueing blocks until space frees or ctx expires —
// the bounded queue is the service's decode backpressure.
func (b *batcher) predictMany(ctx context.Context, srcs [][]string, ks []int) ([][]core.TypePrediction, error) {
	items := make([]*batchItem, len(srcs))
	now := time.Now()
	for i := range srcs {
		items[i] = &batchItem{ctx: ctx, src: srcs[i], k: ks[i], enq: now, done: make(chan struct{})}
	}
	// Count the whole request before enqueueing so the dispatcher keeps
	// collecting until it has seen every query of this request.
	b.pending.Add(int64(len(items)))
	sent := 0
enqueue:
	for _, it := range items {
		select {
		case b.queue <- it:
			sent++
		case <-ctx.Done():
			break enqueue
		}
	}
	for _, it := range items[sent:] {
		it.err = ctx.Err()
	}
	b.pending.Add(int64(sent - len(items)))
	out := make([][]core.TypePrediction, len(items))
	var firstErr error
	for i, it := range items {
		if i < sent {
			<-it.done
		}
		if it.err != nil && firstErr == nil {
			firstErr = it.err
		}
		out[i] = it.preds
	}
	return out, firstErr
}
