package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/wasm"
)

func key(b byte, elem string, k int) cacheKey {
	return cacheKey{fn: [32]byte{b}, elem: elem, k: k}
}

func preds(text string) []core.TypePrediction {
	return []core.TypePrediction{{Tokens: []string{text}, Text: text}}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(key(1, "param0", 5), preds("a"))
	c.put(key(2, "param0", 5), preds("b"))
	c.get(key(1, "param0", 5)) // touch 1 → 2 becomes LRU
	c.put(key(3, "param0", 5), preds("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(key(2, "param0", 5)); ok {
		t.Error("least recently used entry survived eviction")
	}
	if v, ok := c.get(key(1, "param0", 5)); !ok || v[0].Text != "a" {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get(key(3, "param0", 5)); !ok {
		t.Error("new entry missing")
	}
}

func TestLRUKeyGranularity(t *testing.T) {
	c := newLRUCache(10)
	c.put(key(1, "param0", 5), preds("a"))
	if _, ok := c.get(key(1, "param0", 3)); ok {
		t.Error("k not part of the key")
	}
	if _, ok := c.get(key(1, "param1", 5)); ok {
		t.Error("element not part of the key")
	}
	if _, ok := c.get(key(2, "param0", 5)); ok {
		t.Error("function hash not part of the key")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put(key(1, "return", 5), preds("old"))
	c.put(key(1, "return", 5), preds("new"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get(key(1, "return", 5)); v[0].Text != "new" {
		t.Errorf("value = %q, want new", v[0].Text)
	}
}

func TestLRUNilDisabled(t *testing.T) {
	var c *lruCache
	c.put(key(1, "param0", 5), preds("a"))
	if _, ok := c.get(key(1, "param0", 5)); ok {
		t.Error("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("nil cache has entries")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(byte(i%64), "param0", g%3)
				c.put(k, preds(fmt.Sprint(i)))
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 32 {
		t.Errorf("len = %d exceeds capacity", c.len())
	}
}

// TestLRUEntriesOrder checks the snapshot enumeration is exactly LRU →
// MRU, tracking both inserts and get-touches: replaying it through put
// must rebuild an identical cache.
func TestLRUEntriesOrder(t *testing.T) {
	c := newLRUCache(4)
	c.put(key(1, "param0", 5), preds("a"))
	c.put(key(2, "param0", 5), preds("b"))
	c.put(key(3, "param0", 5), preds("c"))
	c.get(key(1, "param0", 5)) // 1 becomes MRU: order is now 2, 3, 1
	got := c.entries()
	wantOrder := []byte{2, 3, 1}
	if len(got) != len(wantOrder) {
		t.Fatalf("entries = %d, want %d", len(got), len(wantOrder))
	}
	for i, want := range wantOrder {
		if got[i].key.fn != [32]byte{want} {
			t.Errorf("entries[%d] = fn[%d], want fn[%d]", i, got[i].key.fn[0], want)
		}
	}
	// Replaying entries through put must preserve eviction order: one more
	// put evicts 2 (the replayed LRU), not 1.
	c2 := newLRUCache(4)
	for _, e := range got {
		c2.put(e.key, e.val)
	}
	c2.put(key(4, "param0", 5), preds("d"))
	c2.put(key(5, "param0", 5), preds("e"))
	if _, ok := c2.get(key(2, "param0", 5)); ok {
		t.Error("replayed LRU entry survived eviction")
	}
	if _, ok := c2.get(key(1, "param0", 5)); !ok {
		t.Error("replayed MRU entry was evicted")
	}
	var nc *lruCache
	if nc.entries() != nil {
		t.Error("nil cache entries() must be nil")
	}
}

// TestFuncHashOutOfRangeTypeIdx covers the tolerant-decode edge: two
// functions with identical bodies but different out-of-range type
// indices must not collide (the signature hash used to be skipped
// entirely for them), and an out-of-range function must differ from an
// in-range one with the same body.
func TestFuncHashOutOfRangeTypeIdx(t *testing.T) {
	m := &wasm.Module{
		Types: []wasm.FuncType{{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}},
		Funcs: []wasm.Function{
			{TypeIdx: 7}, // out of range (1 type defined)
			{TypeIdx: 9}, // out of range, different index, same (empty) body
			{TypeIdx: 0}, // in range, same body
			{TypeIdx: 7}, // identical to func 0: must hash equal
		},
	}
	if funcHash(m, 0) == funcHash(m, 1) {
		t.Error("different out-of-range type indices with identical bodies collide")
	}
	if funcHash(m, 0) == funcHash(m, 2) {
		t.Error("out-of-range function collides with in-range function")
	}
	if funcHash(m, 0) != funcHash(m, 3) {
		t.Error("identical out-of-range functions hash differently")
	}
}

// TestFuncHashContent checks the hash tracks function content, not
// position: identical bodies hash equal, different bodies differ.
func TestFuncHashContent(t *testing.T) {
	obj, err := cc.Compile(`
int same_a(int x) { return x + 1; }
int same_b(int x) { return x + 1; }
int other(int x) { return x * 3; }
`, cc.Options{Debug: false})
	if err != nil {
		t.Fatal(err)
	}
	m := obj.Module
	if len(m.Funcs) < 3 {
		t.Fatalf("only %d functions", len(m.Funcs))
	}
	if funcHash(m, 0) != funcHash(m, 1) {
		t.Error("identical function bodies hash differently")
	}
	if funcHash(m, 0) == funcHash(m, 2) {
		t.Error("different function bodies hash equal")
	}
	// Equality must also hold across separately decoded modules (the
	// cross-upload dedup case).
	bin, _, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.DecodeStripped(bin)
	if err != nil {
		t.Fatal(err)
	}
	if funcHash(m, 0) != funcHash(m2, 0) {
		t.Error("hash differs across decode round trip")
	}
}
