package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// fillCache populates a cache with n distinct entries plus one
// get-touch so the LRU order is non-trivial.
func fillCache(c *lruCache, n int) {
	for i := 0; i < n; i++ {
		eng := ""
		if i%2 == 0 {
			eng = "fast"
		}
		k := cacheKey{model: [32]byte{0xAA}, fn: [32]byte{byte(i)}, elem: "param0", k: 5, engine: eng}
		c.put(k, preds(fmt.Sprintf("t%d", i)))
	}
	c.get(cacheKey{model: [32]byte{0xAA}, fn: [32]byte{0}, elem: "param0", k: 5, engine: "fast"})
}

// TestCacheSnapshotRoundTripDeterminism: snapshot → load → snapshot must
// be byte-identical, and the restored cache must match entry for entry in
// LRU order.
func TestCacheSnapshotRoundTripDeterminism(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "snap1.jsonl")
	p2 := filepath.Join(dir, "snap2.jsonl")

	c := newLRUCache(16)
	fillCache(c, 8)
	n, err := snapshotTo(p1, c)
	if err != nil || n != 8 {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}

	c2 := newLRUCache(16)
	loaded, skipped, err := loadCacheFile(p1, c2)
	if err != nil || loaded != 8 || skipped != 0 {
		t.Fatalf("load: loaded=%d skipped=%d err=%v", loaded, skipped, err)
	}
	e1, e2 := c.entries(), c2.entries()
	if len(e1) != len(e2) {
		t.Fatalf("entry count %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].key != e2[i].key || e1[i].val[0].Text != e2[i].val[0].Text {
			t.Errorf("entry %d differs after round trip", i)
		}
	}

	if _, err := snapshotTo(p2, c2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("snapshot → load → snapshot not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
}

// TestCacheLogTornTail: a crash mid-append leaves a torn last line; the
// replay must keep everything before it.
func TestCacheLogTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")

	c := newLRUCache(16)
	fillCache(c, 4)
	if _, err := snapshotTo(path, c); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"model":"truncated mid-`)
	f.Close()

	c2 := newLRUCache(16)
	loaded, skipped, err := loadCacheFile(path, c2)
	if err != nil {
		t.Fatalf("torn tail should not error: %v", err)
	}
	if loaded != 4 || skipped != 1 {
		t.Errorf("loaded=%d skipped=%d, want 4 and 1", loaded, skipped)
	}
}

// TestCacheLogMissingAndForeign: a missing file is an empty cache;
// foreign records (bad hashes, empty preds) are skipped, not fatal.
func TestCacheLogMissingAndForeign(t *testing.T) {
	c := newLRUCache(4)
	loaded, skipped, err := loadCacheFile(filepath.Join(t.TempDir(), "nope.jsonl"), c)
	if err != nil || loaded != 0 || skipped != 0 {
		t.Fatalf("missing file: loaded=%d skipped=%d err=%v", loaded, skipped, err)
	}

	path := filepath.Join(t.TempDir(), "mixed.jsonl")
	good := recordOf(cacheKey{model: [32]byte{1}, fn: [32]byte{2}, elem: "return", k: 3}, preds("ok"))
	lines := []string{
		`{"model":"zz","fn":"zz","elem":"x","k":1,"preds":[{"text":"bad hex"}]}`,
		`{"model":"` + good.Model + `","fn":"` + good.Fn + `","elem":"return","k":3,"preds":[]}`,
		`{"model":"` + good.Model + `","fn":"` + good.Fn + `","elem":"return","k":3,"preds":[{"text":"ok","tokens":["ok"]}]}`,
	}
	if err := os.WriteFile(path, []byte(lines[0]+"\n"+lines[1]+"\n"+lines[2]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, skipped, err = loadCacheFile(path, c)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 2 {
		t.Errorf("loaded=%d skipped=%d, want 1 and 2", loaded, skipped)
	}
}

// TestServerWarmStart is the end-to-end persistence property: a server
// with a CachePath answers, shuts down (compacting the log), and a fresh
// server over the same path answers the same request entirely from the
// replayed cache.
func TestServerWarmStart(t *testing.T) {
	pred, bin := testPredictor(t)
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	post := func(s *Server) PredictResponse {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict?func=first", bytes.NewReader(bin))
		req.Header.Set("Content-Type", "application/wasm")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return decodeResponse(t, rec.Body.Bytes())
	}

	s1, err := New(pred, Config{CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	cold := post(s1)
	if cold.CacheHits != 0 {
		t.Errorf("cold start: cache_hits = %d, want 0", cold.CacheHits)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(pred, Config{CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.met.cacheLoaded.Value(); got == 0 {
		t.Error("warm start replayed 0 entries")
	}
	warm := post(s2)
	wantElems := len(warm.Functions[0].Elements)
	if warm.CacheHits != wantElems {
		t.Errorf("warm start: cache_hits = %d, want %d (all elements replayed)", warm.CacheHits, wantElems)
	}
	// Warm answers must be identical to cold ones.
	if fmt.Sprint(cold.Functions) != fmt.Sprint(warm.Functions) {
		t.Error("warm-start predictions differ from the run that wrote the cache")
	}
}
