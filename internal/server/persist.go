package server

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// Cache persistence: an append-only JSONL log of prediction-cache
// entries, keyed by model content hash + cacheKey. The server appends a
// record for every decode it caches and replays the log at startup, so
// restarts and fresh replicas start warm — the corpus-level dedup the
// cache already exploits (identical library functions across uploads)
// makes the warm-start hit rate directly measurable with
// `snowwhite bench-serve`.
//
// One JSON object per line; the fields mirror cacheKey plus the cached
// predictions. JSON keeps the format self-describing and tolerant: a
// line that fails to parse (a torn tail from a crash mid-append) ends
// the replay instead of poisoning it, and unknown fields from newer
// versions are ignored. Replay order is append order, so the restored
// LRU reproduces the writer's recency order; compaction (snapshotTo, run
// on graceful shutdown) rewrites the log from the live entries oldest
// first, which bounds the file at one cache's worth of records and makes
// snapshot → load → snapshot byte-identical (the verify.sh determinism
// gate).

// cacheRecord is one persisted cache entry.
type cacheRecord struct {
	// Model is the hex fingerprint of the predictor that produced the
	// entry (core.FingerprintPredictor).
	Model string `json:"model"`
	// Fn is the hex content hash of the function (funcHash).
	Fn   string `json:"fn"`
	Elem string `json:"elem"`
	K    int    `json:"k"`
	// Engine is the precision tier that produced the entry ("" full,
	// "fast", "f32"). Fast is the pre-f32 encoding of the fast tier,
	// still accepted on read so old logs replay.
	Engine string `json:"engine,omitempty"`
	Fast   bool   `json:"fast,omitempty"`
	// Preds is the cached ranked predictions for the element.
	Preds []core.TypePrediction `json:"preds"`
}

func recordOf(key cacheKey, preds []core.TypePrediction) cacheRecord {
	return cacheRecord{
		Model:  hex.EncodeToString(key.model[:]),
		Fn:     hex.EncodeToString(key.fn[:]),
		Elem:   key.elem,
		K:      key.k,
		Engine: key.engine,
		Preds:  preds,
	}
}

// key converts a record back to its cache key; an error means the record
// is from a corrupt or foreign line.
func (r cacheRecord) key() (cacheKey, error) {
	var k cacheKey
	if r.Elem == "" || r.K <= 0 {
		return k, errors.New("missing elem or k")
	}
	if n, err := hex.Decode(k.model[:], []byte(r.Model)); err != nil || n != len(k.model) {
		return k, fmt.Errorf("bad model hash %q", r.Model)
	}
	if n, err := hex.Decode(k.fn[:], []byte(r.Fn)); err != nil || n != len(k.fn) {
		return k, fmt.Errorf("bad function hash %q", r.Fn)
	}
	k.elem, k.k, k.engine = r.Elem, r.K, r.Engine
	if k.engine == "" && r.Fast {
		k.engine = "fast"
	}
	return k, nil
}

// cacheLog appends cache entries to the persistence file. Safe for
// concurrent use; a nil *cacheLog drops every append (persistence
// disabled).
type cacheLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	enc  *json.Encoder
	path string
}

// openCacheLog opens (creating if needed) the cache log at path for
// appending.
func openCacheLog(path string) (*cacheLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: cache log: %w", err)
	}
	w := bufio.NewWriter(f)
	return &cacheLog{f: f, w: w, enc: json.NewEncoder(w), path: path}, nil
}

// append writes one entry to the log. I/O errors are returned so the
// caller can degrade to in-memory-only caching; they never fail the
// prediction that produced the entry.
func (l *cacheLog) append(key cacheKey, preds []core.TypePrediction) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("server: cache log closed")
	}
	if err := l.enc.Encode(recordOf(key, preds)); err != nil {
		return err
	}
	return l.w.Flush()
}

// close flushes and closes the log file.
func (l *cacheLog) close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// loadCacheFile replays a cache log or snapshot into the cache. Records
// beyond the cache's capacity evict in replay order, exactly as live
// puts would. A missing file is an empty cache; a torn or foreign tail
// ends the replay at the last good line and reports how many lines were
// skipped.
func loadCacheFile(path string, cache *lruCache) (loaded, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("server: cache load: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var rec cacheRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return loaded, skipped, nil
			}
			// Torn tail (crash mid-append): everything before it loaded.
			return loaded, skipped + 1, nil
		}
		key, err := rec.key()
		if err != nil || len(rec.Preds) == 0 {
			skipped++
			continue
		}
		cache.put(key, rec.Preds)
		loaded++
	}
}

// snapshotTo compacts the cache into a fresh log at path (atomic
// temp+rename): the live entries, least recently used first, so a replay
// rebuilds this cache bit for bit and the file size is bounded by the
// cache capacity regardless of how many appends the run made. Returns
// the number of entries written.
func snapshotTo(path string, cache *lruCache) (int, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cache-snapshot-*")
	if err != nil {
		return 0, fmt.Errorf("server: cache snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	entries := cache.entries()
	for _, e := range entries {
		if err := enc.Encode(recordOf(e.key, e.val)); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("server: cache snapshot: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: cache snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("server: cache snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("server: cache snapshot: %w", err)
	}
	return len(entries), nil
}
