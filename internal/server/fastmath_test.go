package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/quant"
)

// fastState caches the quantized counterpart of the shared test
// predictor.
var fastState struct {
	once sync.Once
	pred *core.Predictor
	err  error
}

func testFastPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	pred, _ := testPredictor(t)
	fastState.once.Do(func() {
		fastState.pred, fastState.err = core.QuantizePredictor(pred, quant.Int8)
	})
	if fastState.err != nil {
		t.Fatal(fastState.err)
	}
	return fastState.pred
}

func newFastTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.FastPred = testFastPredictor(t)
	return newTestServer(t, cfg)
}

// TestFastMathRouting covers the fast=true opt-in across both request
// encodings, the echo of the flag in the response, and rejection when
// no fast-math model is loaded.
func TestFastMathRouting(t *testing.T) {
	_, ts := newFastTestServer(t, Config{})
	_, bin := testPredictor(t)

	resp, body := postWasm(t, ts.URL, bin, "func=first&k=3&fast=true")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodeResponse(t, body)
	if !pr.Fast {
		t.Error("response does not echo fast=true")
	}
	if len(pr.Functions) != 1 || len(pr.Functions[0].Elements) == 0 {
		t.Fatalf("fast request returned no predictions: %s", body)
	}
	for elem, preds := range pr.Functions[0].Elements {
		if len(preds) == 0 || preds[0].Text == "" {
			t.Errorf("%s: empty fast-math prediction", elem)
		}
	}

	// Same opt-in through the JSON envelope.
	env, _ := json.Marshal(predictEnvelope{
		WasmBase64: base64.StdEncoding.EncodeToString(bin),
		Func:       "first",
		K:          2,
		Fast:       true,
	})
	hresp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	ebody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status = %d, body %s", hresp.StatusCode, ebody)
	}
	if epr := decodeResponse(t, ebody); !epr.Fast {
		t.Error("envelope response does not echo fast=true")
	}

	// A full-precision request on the same server stays full-precision.
	resp, body = postWasm(t, ts.URL, bin, "func=first&k=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-precision status = %d, body %s", resp.StatusCode, body)
	}
	if pr := decodeResponse(t, body); pr.Fast {
		t.Error("full-precision response claims fast=true")
	}

	// Malformed flag.
	resp, body = postWasm(t, ts.URL, bin, "fast=maybe")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fast=maybe: status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestFastMathUnavailable: fast=true against a server without a
// fast-math model is a client error, not a silent fallback.
func TestFastMathUnavailable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)
	resp, body := postWasm(t, ts.URL, bin, "fast=true")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestHealthzReportsFastMath: readiness tells clients whether fast=true
// will be accepted.
func TestHealthzReportsFastMath(t *testing.T) {
	check := func(url string, want bool) {
		t.Helper()
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if got, _ := h["fast_math"].(bool); got != want {
			t.Errorf("fast_math = %v, want %v", got, want)
		}
	}
	_, full := newTestServer(t, Config{})
	check(full.URL, false)
	_, fast := newFastTestServer(t, Config{})
	check(fast.URL, true)
}

// TestFastMathCacheIsolation: the two engines must never answer each
// other's requests from the cache, even for the same function and k.
func TestFastMathCacheIsolation(t *testing.T) {
	_, ts := newFastTestServer(t, Config{})
	_, bin := testPredictor(t)

	_, body := postWasm(t, ts.URL, bin, "func=first&k=3")
	full := decodeResponse(t, body)
	if full.CacheHits != 0 {
		t.Fatalf("first full request: cache_hits = %d, want 0", full.CacheHits)
	}
	// The fast request for the identical (function, k) must miss.
	_, body = postWasm(t, ts.URL, bin, "func=first&k=3&fast=true")
	fast := decodeResponse(t, body)
	if fast.CacheHits != 0 {
		t.Errorf("fast request answered from full-precision cache (%d hits)", fast.CacheHits)
	}
	// And each engine's repeat hits its own entries.
	_, body = postWasm(t, ts.URL, bin, "func=first&k=3&fast=true")
	if again := decodeResponse(t, body); again.CacheHits != len(again.Functions[0].Elements) {
		t.Errorf("repeated fast request: cache_hits = %d, want %d",
			again.CacheHits, len(again.Functions[0].Elements))
	}
}

// TestFastMathMixedStressShutdown is the fast-math engine's -race
// stress test: many concurrent requests alternating between the full
// and quantized engines, pushed through the dynamic batcher (small
// batches, both encodings), with the server shut down while the last
// wave is still in flight. Every completed response must be correct for
// the engine that served it, and identical queries to one engine must
// agree (batching and quantization stay deterministic under load).
func TestFastMathMixedStressShutdown(t *testing.T) {
	pred, bin := testPredictor(t)
	cfg := Config{
		Workers:        4,
		QueueDepth:     256,
		BatchSize:      4,
		BatchWait:      time.Millisecond,
		RequestTimeout: 2 * time.Minute,
		FastPred:       testFastPredictor(t),
	}
	s, err := New(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const n = 64
	var wg sync.WaitGroup
	type result struct {
		key  string
		body string
		code int
		err  error
	}
	results := make(chan result, n)
	var finished atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer finished.Add(1)
			fn := []string{"first", "length"}[i%2]
			k := 1 + i%2
			fast := i%4 < 2
			key := fmt.Sprintf("%s/%d/%v", fn, k, fast)
			var resp *http.Response
			var err error
			if i%8 == 0 {
				// Exercise the JSON envelope under load too.
				env, _ := json.Marshal(predictEnvelope{
					WasmBase64: base64.StdEncoding.EncodeToString(bin),
					Func:       fn, K: k, Fast: fast,
				})
				resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(env))
			} else {
				url := fmt.Sprintf("%s/v1/predict?func=%s&k=%d&fast=%v", ts.URL, fn, k, fast)
				resp, err = http.Post(url, "application/wasm", bytes.NewReader(bin))
			}
			if err != nil {
				// Connection torn down by shutdown: acceptable.
				results <- result{key: key, err: err}
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				results <- result{key: key, err: rerr}
				return
			}
			results <- result{key: key, body: string(body), code: resp.StatusCode}
		}(i)
	}

	// Shut down mid-flight: wait until at least half the wave is done (so
	// the batcher has seen real mixed load and some requests are still in
	// the air), then stop the HTTP front first (it drains handlers), then
	// the pool and batchers — the server's documented order.
	for finished.Load() < n/2 {
		time.Sleep(time.Millisecond)
	}
	ts.Close()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(results)

	canonical := map[string]string{}
	completed := 0
	for r := range results {
		if r.err != nil {
			continue
		}
		switch r.code {
		case http.StatusOK:
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// Load shedding under stress is allowed.
			continue
		default:
			t.Fatalf("%s: unexpected status %d: %s", r.key, r.code, r.body)
		}
		completed++
		var pr PredictResponse
		if err := json.Unmarshal([]byte(r.body), &pr); err != nil {
			t.Fatalf("%s: bad response body: %v", r.key, err)
		}
		if len(pr.Functions) != 1 || len(pr.Functions[0].Elements) == 0 {
			t.Fatalf("%s: empty predictions", r.key)
		}
		// Compare predictions only: cache_hits legitimately varies between
		// identical requests.
		preds := fmt.Sprint(pr.Functions)
		if prev, ok := canonical[r.key]; ok {
			if prev != preds {
				t.Errorf("%s: non-deterministic predictions under load:\n%s\n%s", r.key, prev, preds)
			}
		} else {
			canonical[r.key] = preds
		}
	}
	if completed == 0 {
		t.Fatal("no request completed before shutdown")
	}
	// A second shutdown stays a no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}
