// Package server turns a trained core.Predictor into a long-lived,
// concurrent type-prediction service: an HTTP/JSON API over a bounded
// worker pool, with an LRU prediction cache keyed by function content and
// a plain-text metrics endpoint. This is the process boundary the paper's
// downstream users (reverse-engineering pipelines, decompilers) integrate
// against.
//
// Endpoints:
//
//	POST /v1/predict   wasm binary (raw body, or base64 in a JSON envelope)
//	                   → ranked type predictions per parameter/return
//	GET  /healthz      liveness + readiness
//	GET  /metrics      request counts, latency histogram, cache hits
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wasm"
)

// Config tunes the service. The zero value of any field selects the
// default noted on it.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8642").
	Addr string
	// Workers bounds concurrent model inference (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds prediction jobs waiting for a worker; beyond it
	// requests are rejected with 503 (default 4×Workers).
	QueueDepth int
	// MaxBodyBytes rejects larger uploads with 413 (default 8 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds one request's wait+inference time; on expiry
	// the request gets 504 (default 60s).
	RequestTimeout time.Duration
	// CacheSize is the LRU capacity in cached elements; < 0 disables
	// caching (default 4096).
	CacheSize int
	// MaxK caps the per-element beam width a client may request
	// (default 10).
	MaxK int
	// DefaultK is the beam width when the client does not pass k
	// (default 5).
	DefaultK int
	// BatchSize caps how many concurrent per-element queries the dynamic
	// batcher coalesces into one batched beam decode (default 8). A value
	// of 1 or below disables batching; queries then decode individually
	// on the worker pool.
	BatchSize int
	// BatchWait bounds how long the batcher holds a non-full batch open
	// for stragglers once at least one query is in hand (default 2ms). A
	// lone in-flight query never waits: it dispatches immediately.
	BatchWait time.Duration
	// FastPred is an optional second predictor — typically a quantized
	// fast-math model (core.LoadQuantizedPredictor) — serving requests
	// that opt in with fast=true. It gets its own dynamic batchers and
	// cache entries (the two models' predictions may differ). Nil means
	// fast requests are rejected.
	FastPred *core.Predictor
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8642"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxK <= 0 {
		c.MaxK = 10
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	return c
}

// serverMetrics is the service's operational instrumentation, exposed at
// /metrics.
type serverMetrics struct {
	registry    *metrics.Registry
	requests    *metrics.Counter
	errors      *metrics.Counter
	rejected    *metrics.Counter
	timeouts    *metrics.Counter
	predictions *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	inFlight    *metrics.Gauge
	cacheSize   *metrics.Gauge
	latency     *metrics.Histogram
	inference   *metrics.Histogram
	batchSize   *metrics.Histogram
	batchWait   *metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	return &serverMetrics{
		registry:    r,
		requests:    r.NewCounter("snowwhite_requests_total", "Predict requests received."),
		errors:      r.NewCounter("snowwhite_request_errors_total", "Predict requests answered with a 4xx/5xx status."),
		rejected:    r.NewCounter("snowwhite_requests_rejected_total", "Predict requests rejected because the worker queue was full."),
		timeouts:    r.NewCounter("snowwhite_request_timeouts_total", "Predict requests that exceeded the request timeout."),
		predictions: r.NewCounter("snowwhite_predictions_total", "Signature elements predicted (model inference runs)."),
		cacheHits:   r.NewCounter("snowwhite_cache_hits_total", "Prediction cache hits."),
		cacheMisses: r.NewCounter("snowwhite_cache_misses_total", "Prediction cache misses."),
		inFlight:    r.NewGauge("snowwhite_in_flight_requests", "Predict requests currently being handled."),
		cacheSize:   r.NewGauge("snowwhite_cache_entries", "Prediction cache occupancy."),
		latency:     r.NewHistogram("snowwhite_request_seconds", "Predict request latency in seconds.", nil),
		inference:   r.NewHistogram("snowwhite_inference_seconds", "Per-element beam-search latency in seconds (cache misses only).", nil),
		batchSize:   r.NewHistogram("snowwhite_batch_size", "Queries coalesced per batched beam decode.", []float64{1, 2, 4, 8, 16, 32}),
		batchWait:   r.NewHistogram("snowwhite_batch_queue_seconds", "Time a query waited on the batching queue before its decode started.", nil),
	}
}

// engine is one predictor with its dynamic batchers: the server runs a
// full-precision engine always, plus an optional fast-math engine for
// requests that opt in.
type engine struct {
	pred *core.Predictor
	// paramBatch/returnBatch coalesce concurrent queries per model; nil
	// when batching is disabled or the model is absent.
	paramBatch  *batcher
	returnBatch *batcher
}

// Server serves type predictions from one loaded predictor.
type Server struct {
	cfg   Config
	cache *lruCache
	met   *serverMetrics
	mux   *http.ServeMux

	jobs     chan func()
	workerWG sync.WaitGroup
	stopPool sync.Once

	// full answers every request; fast answers fast=true requests and is
	// nil when no fast-math predictor was configured.
	full engine
	fast *engine

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// newEngine wires one predictor with its batchers.
func (s *Server) newEngine(pred *core.Predictor) engine {
	e := engine{pred: pred}
	if s.cfg.BatchSize > 1 {
		if pred.Param != nil {
			e.paramBatch = newBatcher(pred.Param, s.cfg.BatchSize, s.cfg.BatchWait, s.cfg.QueueDepth, s.met.batchSize, s.met.batchWait)
		}
		if pred.Return != nil {
			e.returnBatch = newBatcher(pred.Return, s.cfg.BatchSize, s.cfg.BatchWait, s.cfg.QueueDepth, s.met.batchSize, s.met.batchWait)
		}
	}
	return e
}

// New builds a Server around a loaded predictor and starts its worker
// pool. Callers must eventually call Shutdown (or Close) to stop the
// workers.
func New(pred *core.Predictor, cfg Config) (*Server, error) {
	if pred == nil || (pred.Param == nil && pred.Return == nil) {
		return nil, errors.New("server: predictor has no models")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheSize),
		met:   newServerMetrics(),
		jobs:  make(chan func(), cfg.QueueDepth),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.full = s.newEngine(pred)
	if fp := cfg.FastPred; fp != nil {
		if fp.Param == nil && fp.Return == nil {
			return nil, errors.New("server: fast-math predictor has no models")
		}
		e := s.newEngine(fp)
		s.fast = &e
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler (for embedding or tests).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.jobs {
		job()
	}
}

// errQueueFull reports a full worker queue (mapped to 503).
var errQueueFull = errors.New("server: worker queue full")

// submit enqueues fn on the worker pool and waits for it to finish or for
// ctx to expire. A job whose context has already expired when a worker
// picks it up is skipped, so abandoned requests never burn inference time.
func (s *Server) submit(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		if ctx.Err() != nil {
			return
		}
		fn()
	}
	select {
	case s.jobs <- job:
	default:
		return errQueueFull
	}
	select {
	case <-done:
		if err := ctx.Err(); err != nil {
			// The worker skipped the job because we timed out first.
			return err
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// elemQuery is one cache-missed signature element awaiting a decode.
type elemQuery struct {
	key  cacheKey
	name string // "param0".."paramN" or "return"
	src  []string
	k    int
}

// runQueries decodes a function's cache-missed queries against one
// model. With batching enabled the queries join the model's dynamic
// batcher, coalescing with concurrent requests into one batched beam
// decode; otherwise they decode directly (still batched with each
// other). Results land in out and the cache.
func (s *Server) runQueries(ctx context.Context, tr *core.Trained, b *batcher, qs []elemQuery, out map[string][]core.TypePrediction) error {
	if len(qs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	srcs := make([][]string, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		srcs[i] = q.src
		ks[i] = q.k
	}
	start := time.Now()
	var preds [][]core.TypePrediction
	var err error
	if b != nil {
		preds, err = b.predictMany(ctx, srcs, ks)
	} else {
		preds = tr.PredictTyped(srcs, ks)
	}
	if err != nil {
		return err
	}
	perElem := time.Since(start).Seconds() / float64(len(qs))
	for i, q := range qs {
		s.met.inference.Observe(perElem)
		s.met.predictions.Inc()
		s.cache.put(q.key, preds[i])
		out[q.name] = preds[i]
	}
	s.met.cacheSize.Set(int64(s.cache.len()))
	return nil
}

// predictFunc predicts every signature element of one module-defined
// function on the given engine, mirroring core.PredictModule but in two
// phases: consult the cache and extract inputs for every element first,
// then decode all misses together (through the engine's dynamic batcher
// when enabled, where they coalesce with other requests' queries into
// one batched beam decode). fast marks the cache entries: the full and
// fast-math models may rank types differently, so their predictions
// never share a key.
func (s *Server) predictFunc(ctx context.Context, e *engine, fast bool, m *wasm.Module, funcIdx, k int) (map[string][]core.TypePrediction, int, error) {
	sig, err := m.FuncTypeAt(uint32(funcIdx + m.NumImportedFuncs()))
	if err != nil {
		return nil, 0, err
	}
	fnHash := funcHash(m, funcIdx)
	out := make(map[string][]core.TypePrediction, len(sig.Params)+1)
	hits := 0
	var paramQs, returnQs []elemQuery
	if e.pred.Param != nil {
		for pi := range sig.Params {
			name := fmt.Sprintf("param%d", pi)
			key := cacheKey{fn: fnHash, elem: name, k: k, fast: fast}
			if preds, ok := s.cache.get(key); ok {
				s.met.cacheHits.Inc()
				out[name] = preds
				hits++
				continue
			}
			s.met.cacheMisses.Inc()
			src, err := e.pred.ParamInput(m, funcIdx, pi)
			if err != nil {
				return nil, hits, err
			}
			paramQs = append(paramQs, elemQuery{key: key, name: name, src: src, k: k})
		}
	}
	if len(sig.Results) > 0 && e.pred.Return != nil {
		key := cacheKey{fn: fnHash, elem: "return", k: k, fast: fast}
		if preds, ok := s.cache.get(key); ok {
			s.met.cacheHits.Inc()
			out["return"] = preds
			hits++
		} else {
			s.met.cacheMisses.Inc()
			src, err := e.pred.ReturnInput(m, funcIdx)
			if err != nil {
				return nil, hits, err
			}
			returnQs = append(returnQs, elemQuery{key: key, name: "return", src: src, k: k})
		}
	}
	if err := s.runQueries(ctx, e.pred.Param, e.paramBatch, paramQs, out); err != nil {
		return nil, hits, err
	}
	if err := s.runQueries(ctx, e.pred.Return, e.returnBatch, returnQs, out); err != nil {
		return nil, hits, err
	}
	return out, hits, nil
}

// ListenAndServe runs the HTTP service on cfg.Addr until Shutdown. It
// returns http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) ListenAndServe() error {
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown gracefully stops the service: it stops accepting connections,
// waits (up to ctx) for in-flight requests to finish, drains and stops
// the worker pool, and only then stops the batching dispatchers — the
// workers are the batchers' only producers, so every coalesced query
// still in flight completes before its dispatcher exits.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.stopPool.Do(func() {
		close(s.jobs)
	})
	s.workerWG.Wait()
	engines := []*engine{&s.full}
	if s.fast != nil {
		engines = append(engines, s.fast)
	}
	for _, e := range engines {
		if e.paramBatch != nil {
			e.paramBatch.close()
		}
		if e.returnBatch != nil {
			e.returnBatch.close()
		}
	}
	return err
}

// Close is Shutdown with a short drain deadline, for tests and defers.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
