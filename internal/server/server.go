// Package server turns trained core.Predictors into a long-lived,
// concurrent type-prediction service: an HTTP/JSON API over a bounded
// worker pool, a multi-model registry with zero-downtime hot swap, a
// disk-backed LRU prediction cache keyed by (model, function) content
// hashes, and a plain-text metrics endpoint. This is the process boundary
// the paper's downstream users (reverse-engineering pipelines,
// decompilers) integrate against.
//
// Endpoints:
//
//	POST /v1/predict                  wasm binary (raw body, or base64 in a
//	                                  JSON envelope) → ranked type
//	                                  predictions, served by the default model
//	POST /v1/models/{model}/predict   same, served by a named model
//	GET  /v1/models                   registry listing (versions, fingerprints)
//	PUT  /v1/models/{model}           load or hot-swap a model from disk
//	DELETE /v1/models/{model}         unregister a model
//	GET  /healthz                     liveness + readiness
//	GET  /metrics                     request counts, latency histograms,
//	                                  cache hits, per-model series
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wasm"
)

// Config tunes the service. The zero value of any field selects the
// default noted on it.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8642").
	Addr string
	// Workers bounds concurrent model inference (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds prediction jobs waiting for a worker; beyond it
	// requests are rejected with 503 (default 4×Workers).
	QueueDepth int
	// MaxBodyBytes rejects larger uploads with 413 (default 8 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds one request's wait+inference time; on expiry
	// the request gets 504 (default 60s).
	RequestTimeout time.Duration
	// CacheSize is the LRU capacity in cached elements; < 0 disables
	// caching (default 4096).
	CacheSize int
	// CachePath enables disk persistence for the prediction cache: the
	// log at this path is replayed at startup (a warm start) and every
	// cached decode is appended to it; graceful shutdown compacts it to a
	// snapshot of the live entries. Empty disables persistence.
	CachePath string
	// MaxK caps the per-element beam width a client may request
	// (default 10).
	MaxK int
	// DefaultK is the beam width when the client does not pass k
	// (default 5).
	DefaultK int
	// BatchSize caps how many concurrent per-element queries the dynamic
	// batcher coalesces into one batched beam decode (default 8). A value
	// of 1 or below disables batching; queries then decode individually
	// on the worker pool.
	BatchSize int
	// BatchWait bounds how long the batcher holds a non-full batch open
	// for stragglers once at least one query is in hand (default 2ms). A
	// lone in-flight query never waits: it dispatches immediately.
	BatchWait time.Duration
	// DefaultModel is the registry name given to the predictor passed to
	// New, and the model /v1/predict routes to (default "default").
	DefaultModel string
	// FastPred is an optional second predictor — typically a quantized
	// fast-math model (core.LoadQuantizedPredictor) — serving requests
	// that opt in with fast=true. It becomes the default model's fast
	// sibling, with its own dynamic batchers and cache entries (the two
	// models' predictions may differ). Nil means fast requests to the
	// default model are rejected.
	FastPred *core.Predictor
	// F32Pred is an optional third predictor pinned to the f32 inference
	// engine (core.LoadQuantizedPredictorPrecision with precision "f32"),
	// serving requests that opt in with precision=f32. Like FastPred it
	// gets its own dynamic batchers and cache entries. Nil means f32
	// requests to the default model are rejected.
	F32Pred *core.Predictor
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8642"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxK <= 0 {
		c.MaxK = 10
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.DefaultModel == "" {
		c.DefaultModel = "default"
	}
	return c
}

// modelMetrics is one model name's labeled series (label model="name").
// The set survives hot swaps, so a name's counters are continuous across
// versions; version and swaps make the swap history visible.
type modelMetrics struct {
	requests    *metrics.Counter
	predictions *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	inference   *metrics.Histogram
	swaps       *metrics.Counter
	version     *metrics.Gauge
}

// serverMetrics is the service's operational instrumentation, exposed at
// /metrics.
type serverMetrics struct {
	registry      *metrics.Registry
	requests      *metrics.Counter
	errors        *metrics.Counter
	rejected      *metrics.Counter
	timeouts      *metrics.Counter
	predictions   *metrics.Counter
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	swaps         *metrics.Counter
	persistErrors *metrics.Counter
	inFlight      *metrics.Gauge
	cacheSize     *metrics.Gauge
	cacheLoaded   *metrics.Gauge
	latency       *metrics.Histogram
	inference     *metrics.Histogram
	batchSize     *metrics.Histogram
	batchWait     *metrics.Histogram

	mu       sync.Mutex
	perModel map[string]*modelMetrics
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	return &serverMetrics{
		registry:      r,
		requests:      r.NewCounter("snowwhite_requests_total", "Predict requests received."),
		errors:        r.NewCounter("snowwhite_request_errors_total", "Predict requests answered with a 4xx/5xx status."),
		rejected:      r.NewCounter("snowwhite_requests_rejected_total", "Predict requests rejected because the worker queue was full."),
		timeouts:      r.NewCounter("snowwhite_request_timeouts_total", "Predict requests that exceeded the request timeout."),
		predictions:   r.NewCounter("snowwhite_predictions_total", "Signature elements predicted (model inference runs)."),
		cacheHits:     r.NewCounter("snowwhite_cache_hits_total", "Prediction cache hits."),
		cacheMisses:   r.NewCounter("snowwhite_cache_misses_total", "Prediction cache misses."),
		swaps:         r.NewCounter("snowwhite_model_hot_swaps_total", "Zero-downtime model hot swaps performed."),
		persistErrors: r.NewCounter("snowwhite_cache_persist_errors_total", "Cache log appends that failed (cache degrades to in-memory)."),
		inFlight:      r.NewGauge("snowwhite_in_flight_requests", "Predict requests currently being handled."),
		cacheSize:     r.NewGauge("snowwhite_cache_entries", "Prediction cache occupancy."),
		cacheLoaded:   r.NewGauge("snowwhite_cache_loaded_entries", "Cache entries replayed from the persistence log at startup."),
		latency:       r.NewHistogram("snowwhite_request_seconds", "Predict request latency in seconds.", nil),
		inference:     r.NewHistogram("snowwhite_inference_seconds", "Per-element beam-search latency in seconds (cache misses only).", nil),
		batchSize:     r.NewHistogram("snowwhite_batch_size", "Queries coalesced per batched beam decode.", []float64{1, 2, 4, 8, 16, 32}),
		batchWait:     r.NewHistogram("snowwhite_batch_queue_seconds", "Time a query waited on the batching queue before its decode started.", nil),
		perModel:      map[string]*modelMetrics{},
	}
}

// forModel returns (creating on first use) the labeled series for one
// model name. Idempotent: a name re-registered after removal, or
// hot-swapped, keeps its series.
func (sm *serverMetrics) forModel(name string) *modelMetrics {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if pm, ok := sm.perModel[name]; ok {
		return pm
	}
	l := metrics.Labels{"model": name}
	pm := &modelMetrics{
		requests:    sm.registry.NewCounterLabeled("snowwhite_model_requests_total", "Predict requests routed to a model.", l),
		predictions: sm.registry.NewCounterLabeled("snowwhite_model_predictions_total", "Signature elements predicted by a model.", l),
		cacheHits:   sm.registry.NewCounterLabeled("snowwhite_model_cache_hits_total", "Prediction cache hits for a model's entries.", l),
		cacheMisses: sm.registry.NewCounterLabeled("snowwhite_model_cache_misses_total", "Prediction cache misses for a model's entries.", l),
		inference:   sm.registry.NewHistogramLabeled("snowwhite_model_inference_seconds", "Per-element beam-search latency per model.", nil, l),
		swaps:       sm.registry.NewCounterLabeled("snowwhite_model_swaps_total", "Hot swaps of a model name.", l),
		version:     sm.registry.NewGaugeLabeled("snowwhite_model_version", "Currently served version ordinal of a model name.", l),
	}
	sm.perModel[name] = pm
	return pm
}

// engine is one predictor with its dynamic batchers and content
// fingerprint — the unit the cache namespaces entries by. Each registered
// model runs a full-precision engine always, plus an optional fast-math
// engine for requests that opt in.
type engine struct {
	pred *core.Predictor
	// fp is the content hash of the predictor (core.FingerprintPredictor):
	// the cache namespace its predictions live under, stable across
	// restarts of the same weights.
	fp [32]byte
	// paramBatch/returnBatch coalesce concurrent queries per model; nil
	// when batching is disabled or the model is absent.
	paramBatch  *batcher
	returnBatch *batcher
}

// Server serves type predictions from a registry of loaded predictors.
type Server struct {
	cfg   Config
	cache *lruCache
	clog  *cacheLog
	met   *serverMetrics
	mux   *http.ServeMux

	jobs     chan func()
	workerWG sync.WaitGroup
	stopPool sync.Once

	reg         registry
	persistOnce sync.Once // guards the shutdown snapshot+log close

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// newEngine wires one predictor with its fingerprint and batchers.
func (s *Server) newEngine(pred *core.Predictor) (engine, error) {
	fp, err := core.FingerprintPredictor(pred)
	if err != nil {
		return engine{}, fmt.Errorf("fingerprint: %w", err)
	}
	e := engine{pred: pred, fp: fp}
	if s.cfg.BatchSize > 1 {
		if pred.Param != nil {
			e.paramBatch = newBatcher(pred.Param, s.cfg.BatchSize, s.cfg.BatchWait, s.cfg.QueueDepth, s.met.batchSize, s.met.batchWait)
		}
		if pred.Return != nil {
			e.returnBatch = newBatcher(pred.Return, s.cfg.BatchSize, s.cfg.BatchWait, s.cfg.QueueDepth, s.met.batchSize, s.met.batchWait)
		}
	}
	return e, nil
}

// New builds a Server around a loaded predictor — registered under
// cfg.DefaultModel, with cfg.FastPred as its fast-math sibling — and
// starts the worker pool. Further models can be added with RegisterModel
// or LoadModel. Callers must eventually call Shutdown (or Close) to stop
// the workers.
func New(pred *core.Predictor, cfg Config) (*Server, error) {
	return NewWithSource(pred, cfg, ModelSource{})
}

// NewWithSource is New recording where the default model was loaded from,
// so SIGHUP/admin reloads can re-read it from disk.
func NewWithSource(pred *core.Predictor, cfg Config, src ModelSource) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheSize),
		met:   newServerMetrics(),
		jobs:  make(chan func(), cfg.QueueDepth),
	}
	s.reg.entries = map[string]*modelEntry{}
	s.reg.defName = cfg.DefaultModel
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/models/{model}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("PUT /v1/models/{model}", s.handleModelPut)
	s.mux.HandleFunc("DELETE /v1/models/{model}", s.handleModelDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.CachePath != "" && s.cache != nil {
		loaded, _, err := loadCacheFile(cfg.CachePath, s.cache)
		if err != nil {
			return nil, err
		}
		s.met.cacheLoaded.Set(int64(loaded))
		s.met.cacheSize.Set(int64(s.cache.len()))
		if s.clog, err = openCacheLog(cfg.CachePath); err != nil {
			return nil, err
		}
	}
	if err := s.RegisterModel(cfg.DefaultModel, pred, cfg.FastPred, cfg.F32Pred, src); err != nil {
		s.clog.close()
		return nil, err
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler (for embedding or tests).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.jobs {
		job()
	}
}

// errQueueFull reports a full worker queue (mapped to 503).
var errQueueFull = errors.New("server: worker queue full")

// submit enqueues fn on the worker pool and waits for it to finish or for
// ctx to expire. A job whose context has already expired when a worker
// picks it up is skipped, so abandoned requests never burn inference time.
func (s *Server) submit(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		if ctx.Err() != nil {
			return
		}
		fn()
	}
	select {
	case s.jobs <- job:
	default:
		return errQueueFull
	}
	select {
	case <-done:
		if err := ctx.Err(); err != nil {
			// The worker skipped the job because we timed out first.
			return err
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// cachePut stores a decoded prediction and appends it to the persistence
// log. Log I/O failures degrade to in-memory-only caching (counted, never
// surfaced to the request).
func (s *Server) cachePut(key cacheKey, preds []core.TypePrediction) {
	s.cache.put(key, preds)
	if err := s.clog.append(key, preds); err != nil {
		s.met.persistErrors.Inc()
	}
}

// elemQuery is one cache-missed signature element awaiting a decode.
type elemQuery struct {
	key  cacheKey
	name string // "param0".."paramN" or "return"
	src  []string
	k    int
}

// runQueries decodes a function's cache-missed queries against one
// model. With batching enabled the queries join the model's dynamic
// batcher, coalescing with concurrent requests into one batched beam
// decode; otherwise they decode directly (still batched with each other,
// and checking ctx between decoder steps so an expired request stops
// burning inference time mid-decode). Results land in out and the cache.
func (s *Server) runQueries(ctx context.Context, tr *core.Trained, b *batcher, qs []elemQuery, out map[string][]core.TypePrediction, pm *modelMetrics) error {
	if len(qs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	srcs := make([][]string, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		srcs[i] = q.src
		ks[i] = q.k
	}
	start := time.Now()
	var preds [][]core.TypePrediction
	var err error
	if b != nil {
		preds, err = b.predictMany(ctx, srcs, ks)
	} else {
		preds, err = tr.PredictTypedCtx(ctx, srcs, ks)
	}
	if err != nil {
		return err
	}
	perElem := time.Since(start).Seconds() / float64(len(qs))
	for i, q := range qs {
		s.met.inference.Observe(perElem)
		s.met.predictions.Inc()
		pm.inference.Observe(perElem)
		pm.predictions.Inc()
		s.cachePut(q.key, preds[i])
		out[q.name] = preds[i]
	}
	s.met.cacheSize.Set(int64(s.cache.len()))
	return nil
}

// predictFunc predicts every signature element of one module-defined
// function on the given engine, mirroring core.PredictModule but in two
// phases: consult the cache and extract inputs for every element first,
// then decode all misses together (through the engine's dynamic batcher
// when enabled, where they coalesce with other requests' queries into
// one batched beam decode). Cache keys carry the engine's content
// fingerprint plus the engine tier ("" full, "fast", "f32"), so models,
// versions, and precision modes never answer from each other's entries.
func (s *Server) predictFunc(ctx context.Context, pm *modelMetrics, e *engine, tier string, m *wasm.Module, funcIdx, k int) (map[string][]core.TypePrediction, int, error) {
	sig, err := m.FuncTypeAt(uint32(funcIdx + m.NumImportedFuncs()))
	if err != nil {
		return nil, 0, err
	}
	fnHash := funcHash(m, funcIdx)
	out := make(map[string][]core.TypePrediction, len(sig.Params)+1)
	hits := 0
	var paramQs, returnQs []elemQuery
	if e.pred.Param != nil {
		for pi := range sig.Params {
			name := fmt.Sprintf("param%d", pi)
			key := cacheKey{model: e.fp, fn: fnHash, elem: name, k: k, engine: tier}
			if preds, ok := s.cache.get(key); ok {
				s.met.cacheHits.Inc()
				pm.cacheHits.Inc()
				out[name] = preds
				hits++
				continue
			}
			s.met.cacheMisses.Inc()
			pm.cacheMisses.Inc()
			src, err := e.pred.ParamInput(m, funcIdx, pi)
			if err != nil {
				return nil, hits, err
			}
			paramQs = append(paramQs, elemQuery{key: key, name: name, src: src, k: k})
		}
	}
	if len(sig.Results) > 0 && e.pred.Return != nil {
		key := cacheKey{model: e.fp, fn: fnHash, elem: "return", k: k, engine: tier}
		if preds, ok := s.cache.get(key); ok {
			s.met.cacheHits.Inc()
			pm.cacheHits.Inc()
			out["return"] = preds
			hits++
		} else {
			s.met.cacheMisses.Inc()
			pm.cacheMisses.Inc()
			src, err := e.pred.ReturnInput(m, funcIdx)
			if err != nil {
				return nil, hits, err
			}
			returnQs = append(returnQs, elemQuery{key: key, name: "return", src: src, k: k})
		}
	}
	if err := s.runQueries(ctx, e.pred.Param, e.paramBatch, paramQs, out, pm); err != nil {
		return nil, hits, err
	}
	if err := s.runQueries(ctx, e.pred.Return, e.returnBatch, returnQs, out, pm); err != nil {
		return nil, hits, err
	}
	return out, hits, nil
}

// ListenAndServe runs the HTTP service on cfg.Addr until Shutdown. It
// returns http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) ListenAndServe() error {
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown gracefully stops the service: it stops accepting connections,
// waits (up to ctx) for in-flight requests to finish, drains and stops
// the worker pool, then drains every registered engine set (stopping its
// batching dispatchers — the workers are the batchers' only producers, so
// every coalesced query still in flight completes first), and finally
// compacts the prediction cache to its on-disk snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.stopPool.Do(func() {
		close(s.jobs)
	})
	s.workerWG.Wait()
	for _, name := range s.reg.names() {
		if e := s.reg.lookup(name); e != nil {
			if es := e.cur.Load(); es != nil {
				es.drain()
			}
		}
	}
	s.persistOnce.Do(func() {
		if cerr := s.clog.close(); err == nil {
			err = cerr
		}
		if s.cfg.CachePath != "" && s.cache != nil {
			if _, serr := snapshotTo(s.cfg.CachePath, s.cache); err == nil {
				err = serr
			}
		}
	})
	return err
}

// Close is Shutdown with a short drain deadline, for tests and defers.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
