package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/quant"
)

// Multi-model registry. The server maps model names to independently
// loaded engines; every name can be hot-swapped to a new model version
// with zero downtime: requests route through an atomic pointer, so new
// arrivals see the new engine immediately, while the swap drains the old
// engine's in-flight decodes (refcount protocol below) before closing
// its dispatchers and releasing the model.
//
// Drain protocol: each engineSet carries an acquisition refcount.
// Request handlers acquire (refs++, then re-check retirement) before
// touching the engine and release when the whole request is done — the
// engine's batchers only ever carry queries from ref holders. A swap
// stores the new engineSet in the entry's atomic pointer, marks the old
// one retired, and waits for its refcount to hit zero; an acquirer that
// loses the race (refs++ after retirement) backs out and retries on the
// pointer, landing on the successor. Sequential consistency of the
// atomics makes the handshake airtight: an acquirer that observed
// retired == false incremented refs before the swapper's retirement
// store, so the swapper's drain wait cannot miss it.

// ModelSource records where a model's bytes came from, so SIGHUP (or the
// admin API) can reload the same name from disk. A model trained
// in-process has no Path and is skipped by Reload.
type ModelSource struct {
	// Path is the predictor file (either on-disk format).
	Path string `json:"path,omitempty"`
	// FastPath is a quantized predictor file served to fast=true
	// requests alongside this model.
	FastPath string `json:"fast_path,omitempty"`
	// Quantize, when non-empty ("int8" or "f32") and FastPath is unset,
	// derives the fast-math sibling by quantizing the loaded model in
	// memory.
	Quantize string `json:"quantize,omitempty"`
	// F32Path is a quantized predictor file loaded straight into float32
	// storage and served to precision=f32 requests alongside this model.
	F32Path string `json:"f32_path,omitempty"`
	// F32Quantize, when non-empty ("int8" or "f32") and F32Path is unset,
	// derives the f32 sibling by round-tripping the loaded model through
	// that quantization mode in memory, landing the weights on the f32
	// engine.
	F32Quantize string `json:"f32_quantize,omitempty"`
}

// engineSet is one loaded version of one named model: the full-precision
// engine, its optional fast-math and f32 siblings, and the refcount
// machinery the hot-swap drain rides on.
type engineSet struct {
	name    string
	version uint64
	src     ModelSource
	full    engine
	fast    *engine
	f32     *engine
	pm      *modelMetrics

	refs    atomic.Int64
	retired atomic.Bool
	drained chan struct{} // buffered 1: signaled on refs 0-transition after retirement
}

// release undoes one acquire; the last release of a retired set wakes
// its drainer.
func (es *engineSet) release() {
	if es.refs.Add(-1) == 0 && es.retired.Load() {
		select {
		case es.drained <- struct{}{}:
		default:
		}
	}
}

// drain retires the set and blocks until every acquisition has been
// released, then stops its dispatchers. On return no request references
// the engines and no query of theirs is in flight.
func (es *engineSet) drain() {
	es.retired.Store(true)
	for es.refs.Load() != 0 {
		<-es.drained
	}
	for _, e := range []*engine{&es.full, es.fast, es.f32} {
		if e == nil {
			continue
		}
		if e.paramBatch != nil {
			e.paramBatch.close()
		}
		if e.returnBatch != nil {
			e.returnBatch.close()
		}
	}
}

// modelEntry is one registered model name: the swap pointer plus the
// name's stable per-model metrics (which survive swaps).
type modelEntry struct {
	name  string
	cur   atomic.Pointer[engineSet]
	pm    *modelMetrics
	swaps atomic.Uint64 // version counter; engineSet.version = swap ordinal
}

// registry maps model names to entries. The map itself is mutated only
// by registration/removal (RWMutex); per-name swaps go through the
// entry's atomic pointer without touching the map.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*modelEntry
	defName string
}

var errModelNotFound = errors.New("server: model not found")

// lookup resolves a name ("" = the default model) to its entry.
func (r *registry) lookup(name string) *modelEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defName
	}
	return r.entries[name]
}

// names returns the registered model names, sorted.
func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// acquireModel resolves a model name and takes a drain reference on its
// current engine set. Callers must release() the result exactly once.
func (s *Server) acquireModel(name string) (*engineSet, error) {
	e := s.reg.lookup(name)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", errModelNotFound, name)
	}
	for {
		es := e.cur.Load()
		if es == nil {
			// Deleted between lookup and load.
			return nil, fmt.Errorf("%w: %q", errModelNotFound, name)
		}
		es.refs.Add(1)
		if !es.retired.Load() && e.cur.Load() == es {
			return es, nil
		}
		// Lost a race with a swap or delete: back out and retry on
		// whatever the pointer holds now. A set retired with the pointer
		// unchanged means the server itself is draining (Shutdown retires
		// in place) — fail rather than spin.
		cur := e.cur.Load()
		es.release()
		if cur == es {
			return nil, fmt.Errorf("server: model %q is shutting down", name)
		}
	}
}

// newEngineSet wires one loaded model (and optional fast and f32
// siblings) with batchers, fingerprints, and the entry's metrics.
func (s *Server) newEngineSet(name string, pred, fastPred, f32Pred *core.Predictor, src ModelSource, pm *modelMetrics) (*engineSet, error) {
	if pred == nil || (pred.Param == nil && pred.Return == nil) {
		return nil, fmt.Errorf("server: model %q has no task models", name)
	}
	es := &engineSet{name: name, src: src, pm: pm, drained: make(chan struct{}, 1)}
	var err error
	if es.full, err = s.newEngine(pred); err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	if fastPred != nil {
		if fastPred.Param == nil && fastPred.Return == nil {
			return nil, fmt.Errorf("server: model %q: fast-math predictor has no task models", name)
		}
		fe, err := s.newEngine(fastPred)
		if err != nil {
			return nil, fmt.Errorf("server: model %q fast sibling: %w", name, err)
		}
		es.fast = &fe
	}
	if f32Pred != nil {
		if f32Pred.Param == nil && f32Pred.Return == nil {
			return nil, fmt.Errorf("server: model %q: f32 predictor has no task models", name)
		}
		fe, err := s.newEngine(f32Pred)
		if err != nil {
			return nil, fmt.Errorf("server: model %q f32 sibling: %w", name, err)
		}
		es.f32 = &fe
	}
	return es, nil
}

// RegisterModel installs (or, if the name exists, hot-swaps) a loaded
// model under a name. The swap is zero-downtime: requests arriving after
// the atomic pointer store decode on the new engines while the old
// version's in-flight decodes drain to completion; only then are its
// dispatchers stopped and the model released. src records how to reload
// the name from disk (zero value: not reloadable).
func (s *Server) RegisterModel(name string, pred, fastPred, f32Pred *core.Predictor, src ModelSource) error {
	if name == "" {
		return errors.New("server: empty model name")
	}
	s.reg.mu.Lock()
	e := s.reg.entries[name]
	if e == nil {
		e = &modelEntry{name: name, pm: s.met.forModel(name)}
		s.reg.entries[name] = e
	}
	s.reg.mu.Unlock()

	es, err := s.newEngineSet(name, pred, fastPred, f32Pred, src, e.pm)
	if err != nil {
		return err
	}
	es.version = e.swaps.Add(1)
	old := e.cur.Swap(es)
	e.pm.version.Set(int64(es.version))
	if old != nil {
		e.pm.swaps.Inc()
		s.met.swaps.Inc()
		old.drain()
	}
	return nil
}

// LoadModel loads a model from disk per src and registers (or hot-swaps)
// it under name. Either on-disk predictor format is accepted; quantized
// files come back fast-math-enabled but still serve as the name's full
// engine. The fast=true sibling comes from src.FastPath, or from an
// in-memory quantization when src.Quantize is set; the precision=f32
// sibling likewise from src.F32Path or src.F32Quantize.
func (s *Server) LoadModel(name string, src ModelSource) error {
	if src.Path == "" {
		return fmt.Errorf("server: model %q: no path to load from", name)
	}
	pred, err := core.LoadPredictorAuto(src.Path)
	if err != nil {
		return fmt.Errorf("server: load model %q: %w", name, err)
	}
	var fastPred *core.Predictor
	switch {
	case src.FastPath != "":
		if fastPred, err = core.LoadQuantizedPredictor(src.FastPath); err != nil {
			return fmt.Errorf("server: load model %q fast sibling: %w", name, err)
		}
	case src.Quantize != "":
		mode, err := quant.ParseMode(src.Quantize)
		if err != nil {
			return fmt.Errorf("server: model %q: %w", name, err)
		}
		if fastPred, err = core.QuantizePredictor(pred, mode); err != nil {
			return fmt.Errorf("server: quantize model %q: %w", name, err)
		}
	}
	var f32Pred *core.Predictor
	switch {
	case src.F32Path != "":
		if f32Pred, err = core.LoadQuantizedPredictorPrecision(src.F32Path, "f32"); err != nil {
			return fmt.Errorf("server: load model %q f32 sibling: %w", name, err)
		}
	case src.F32Quantize != "":
		mode, err := quant.ParseMode(src.F32Quantize)
		if err != nil {
			return fmt.Errorf("server: model %q: %w", name, err)
		}
		if f32Pred, err = core.QuantizePredictorPrecision(pred, mode, "f32"); err != nil {
			return fmt.Errorf("server: quantize model %q for f32: %w", name, err)
		}
	}
	return s.RegisterModel(name, pred, fastPred, f32Pred, src)
}

// RemoveModel unregisters a name and drains its engines. The default
// model cannot be removed.
func (s *Server) RemoveModel(name string) error {
	s.reg.mu.Lock()
	if name == s.reg.defName {
		s.reg.mu.Unlock()
		return fmt.Errorf("server: cannot remove default model %q", name)
	}
	e := s.reg.entries[name]
	delete(s.reg.entries, name)
	s.reg.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", errModelNotFound, name)
	}
	if old := e.cur.Swap(nil); old != nil {
		old.drain()
	}
	return nil
}

// Reload hot-swaps every disk-backed model from its recorded source —
// the SIGHUP handler. Names without a Path (trained in-process) are
// skipped. The first error aborts the sweep but already-swapped names
// keep their new versions; a name whose reload fails keeps serving its
// old version.
func (s *Server) Reload() (reloaded []string, err error) {
	for _, name := range s.reg.names() {
		e := s.reg.lookup(name)
		if e == nil {
			continue
		}
		es := e.cur.Load()
		if es == nil || es.src.Path == "" {
			continue
		}
		if err := s.LoadModel(name, es.src); err != nil {
			return reloaded, err
		}
		reloaded = append(reloaded, name)
	}
	return reloaded, nil
}

// ModelStatus is one row of the /v1/models listing.
type ModelStatus struct {
	Name    string `json:"name"`
	Default bool   `json:"default"`
	Version uint64 `json:"version"`
	// Fingerprint is the hex content hash of the full-precision engine's
	// predictor — the namespace its cache entries live under.
	Fingerprint string `json:"fingerprint"`
	// FastMath reports whether the model has a fast=true sibling engine.
	FastMath bool `json:"fast_math"`
	// F32 reports whether the model has a precision=f32 sibling engine.
	F32    bool        `json:"f32"`
	Source ModelSource `json:"source,omitempty"`
}

// Models lists the registered models, sorted by name.
func (s *Server) Models() []ModelStatus {
	var out []ModelStatus
	for _, name := range s.reg.names() {
		e := s.reg.lookup(name)
		if e == nil {
			continue
		}
		es := e.cur.Load()
		if es == nil {
			continue
		}
		out = append(out, ModelStatus{
			Name:        name,
			Default:     name == s.reg.defName,
			Version:     es.version,
			Fingerprint: fmt.Sprintf("%x", es.full.fp),
			FastMath:    es.fast != nil,
			F32:         es.f32 != nil,
			Source:      es.src,
		})
	}
	return out
}

// DefaultModel returns the name /v1/predict routes to.
func (s *Server) DefaultModel() string {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	return s.reg.defName
}
