package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/wasm"
)

// predictEnvelope is the JSON request body accepted by POST /v1/predict as
// an alternative to a raw wasm body with query parameters.
type predictEnvelope struct {
	// WasmBase64 is the wasm binary, standard base64.
	WasmBase64 string `json:"wasm_base64"`
	// Func selects one function by export/debug name or decimal index
	// (module-defined index space); empty predicts all defined functions.
	Func string `json:"func,omitempty"`
	// K is the number of ranked predictions per element (default
	// Config.DefaultK, capped at Config.MaxK).
	K int `json:"k,omitempty"`
	// Fast routes the request to the model's fast-math engine (quantized
	// weights, fused-rounding kernels). Rejected with 400 when the model
	// has no fast sibling.
	Fast bool `json:"fast,omitempty"`
	// Precision routes the request to a precision tier: "f32" selects the
	// model's single-precision engine (float32 tapes and 8-lane kernels),
	// "" or "f64" the default. Rejected with 400 when the model has no
	// f32 sibling, or when combined with Fast (they are distinct
	// engines).
	Precision string `json:"precision,omitempty"`
	// Model names the registry model to serve the request; empty means
	// the server's default. A {model} path segment takes precedence.
	Model string `json:"model,omitempty"`
}

// FunctionResult is the predictions for one function.
type FunctionResult struct {
	// Index is the function's index among module-defined functions.
	Index int `json:"index"`
	// Name is the export or debug name, when known.
	Name string `json:"name,omitempty"`
	// Elements maps "param0".."paramN" and "return" to ranked predictions.
	Elements map[string][]core.TypePrediction `json:"elements"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	Functions []FunctionResult `json:"functions"`
	// CacheHits counts elements of this response answered from the cache.
	CacheHits int `json:"cache_hits"`
	// Fast reports which engine answered: true when the fast-math model
	// produced these predictions.
	Fast bool `json:"fast,omitempty"`
	// Precision reports "f32" when the single-precision engine produced
	// these predictions; omitted for the f64 tiers.
	Precision string `json:"precision,omitempty"`
	// Model and Version identify the registry model (and hot-swap
	// ordinal) that served the request.
	Model   string `json:"model,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// errorResponse is the body of every non-2xx API answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.errors.Inc()
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fastMath, f32 := false, false
	if es, err := s.acquireModel(""); err == nil {
		fastMath = es.fast != nil
		f32 = es.f32 != nil
		es.release()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"fast_math": fastMath,
		"f32":       f32,
		"default":   s.DefaultModel(),
		"models":    len(s.reg.names()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.registry.WriteTo(w)
}

// handleModels serves GET /v1/models: the registry listing.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"default": s.DefaultModel(),
		"models":  s.Models(),
	})
}

// handleModelPut serves PUT /v1/models/{model}: load (or hot-swap) a
// model from disk. The body is a JSON ModelSource.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var src ModelSource
	if err := json.Unmarshal(body, &src); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := s.LoadModel(name, src); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for _, st := range s.Models() {
		if st.Name == name {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name})
}

// handleModelDelete serves DELETE /v1/models/{model}.
func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	switch err := s.RemoveModel(name); {
	case errors.Is(err, errModelNotFound):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"removed": name})
	}
}

// readRequest extracts (binary, func selector, k, fast flag, precision,
// model name) from either encoding of the request.
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request) (bin []byte, funcSel string, k int, fast bool, precision, model string, ok bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBodyBytes)
		} else {
			s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, "", 0, false, "", "", false
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "application/json":
		var env predictEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
			return nil, "", 0, false, "", "", false
		}
		bin, err = base64.StdEncoding.DecodeString(env.WasmBase64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid wasm_base64: %v", err)
			return nil, "", 0, false, "", "", false
		}
		funcSel, k, fast, precision, model = env.Func, env.K, env.Fast, env.Precision, env.Model
	default:
		// Raw binary body (application/wasm, application/octet-stream, or
		// unlabeled); selection comes from query parameters.
		bin = body
		funcSel = r.URL.Query().Get("func")
		model = r.URL.Query().Get("model")
		precision = r.URL.Query().Get("precision")
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err = strconv.Atoi(ks)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "invalid k %q", ks)
				return nil, "", 0, false, "", "", false
			}
		}
		if fs := r.URL.Query().Get("fast"); fs != "" {
			fast, err = strconv.ParseBool(fs)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "invalid fast %q", fs)
				return nil, "", 0, false, "", "", false
			}
		}
	}
	switch precision {
	case "", "f64", "f32":
	default:
		s.writeError(w, http.StatusBadRequest, "invalid precision %q (want f64 or f32)", precision)
		return nil, "", 0, false, "", "", false
	}
	if fast && precision == "f32" {
		s.writeError(w, http.StatusBadRequest, "fast=true and precision=f32 select different engines; pick one")
		return nil, "", 0, false, "", "", false
	}
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	if len(bin) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty wasm binary")
		return nil, "", 0, false, "", "", false
	}
	return bin, funcSel, k, fast, precision, model, true
}

// resolveFuncs maps the func selector to module-defined function indices.
// Exact export/debug names resolve first and numeric index parsing is the
// fallback, so an export literally named "3" selects that export rather
// than function index 3. Name resolution is one pass over the exports and
// one over the functions (not O(funcs×exports)); as before, the lowest
// function index wins when a name is ambiguous.
func resolveFuncs(m *wasm.Module, sel string) ([]int, error) {
	if sel == "" {
		all := make([]int, len(m.Funcs))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	if fi, ok := funcByName(m)[sel]; ok {
		return []int{fi}, nil
	}
	if idx, err := strconv.Atoi(sel); err == nil {
		if idx < 0 || idx >= len(m.Funcs) {
			return nil, fmt.Errorf("function index %d out of range (%d defined functions)", idx, len(m.Funcs))
		}
		return []int{idx}, nil
	}
	return nil, fmt.Errorf("no function named %q", sel)
}

// funcByName builds the name → module-defined-index map resolveFuncs
// consults: every export and debug name of every defined function, lowest
// function index winning on duplicates (the order the old per-function
// scan realized).
func funcByName(m *wasm.Module) map[string]int {
	imported := m.NumImportedFuncs()
	expNames := make(map[uint32][]string)
	for _, e := range m.Exports {
		if e.Kind == wasm.KindFunc {
			expNames[e.Index] = append(expNames[e.Index], e.Name)
		}
	}
	byName := make(map[string]int, len(m.Funcs))
	claim := func(name string, fi int) {
		if name == "" {
			return
		}
		if _, ok := byName[name]; !ok {
			byName[name] = fi
		}
	}
	for fi := range m.Funcs {
		for _, n := range expNames[uint32(fi+imported)] {
			claim(n, fi)
		}
		claim(m.Funcs[fi].Name, fi)
	}
	return byName
}

// funcName returns the export or debug name of a module-defined function.
func funcName(m *wasm.Module, funcIdx int) string {
	abs := uint32(funcIdx + m.NumImportedFuncs())
	for _, e := range m.Exports {
		if e.Kind == wasm.KindFunc && e.Index == abs {
			return e.Name
		}
	}
	return m.Funcs[funcIdx].Name
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	s.met.inFlight.Inc()
	defer s.met.inFlight.Dec()
	start := time.Now()
	defer func() { s.met.latency.Observe(time.Since(start).Seconds()) }()

	bin, funcSel, k, fast, precision, model, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	// The {model} path segment wins over the envelope/query field; both
	// empty routes to the default model.
	if pm := r.PathValue("model"); pm != "" {
		model = pm
	}
	es, err := s.acquireModel(model)
	if err != nil {
		if errors.Is(err, errModelNotFound) {
			s.writeError(w, http.StatusNotFound, "%v", err)
		} else {
			s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	// Held for the whole request: a hot swap of this model drains only
	// after every element below has decoded.
	defer es.release()
	es.pm.requests.Inc()
	eng, tier := &es.full, ""
	switch {
	case fast:
		if es.fast == nil {
			s.writeError(w, http.StatusBadRequest, "fast=true but model %q has no fast-math sibling", es.name)
			return
		}
		eng, tier = es.fast, "fast"
	case precision == "f32":
		if es.f32 == nil {
			s.writeError(w, http.StatusBadRequest, "precision=f32 but model %q has no f32 sibling", es.name)
			return
		}
		eng, tier = es.f32, "f32"
	}
	m, err := core.DecodeStripped(bin)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid wasm binary: %v", err)
		return
	}
	funcs, err := resolveFuncs(m, funcSel)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	resp := PredictResponse{
		Functions: make([]FunctionResult, 0, len(funcs)),
		Fast:      fast,
		Model:     es.name,
		Version:   es.version,
	}
	if tier == "f32" {
		resp.Precision = "f32"
	}
	var predictErr error
	err = s.submit(ctx, func() {
		for _, fi := range funcs {
			// Between functions is the cheapest cancellation point a
			// multi-function request has: without it an expired request
			// would keep decoding every remaining function.
			if err := ctx.Err(); err != nil {
				predictErr = err
				return
			}
			elems, hits, err := s.predictFunc(ctx, es.pm, eng, tier, m, fi, k)
			resp.CacheHits += hits
			if err != nil {
				predictErr = err
				return
			}
			resp.Functions = append(resp.Functions, FunctionResult{
				Index:    fi,
				Name:     funcName(m, fi),
				Elements: elems,
			})
		}
	})
	switch {
	case errors.Is(err, errQueueFull):
		s.met.rejected.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server overloaded, retry later")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "prediction timed out after %s", s.cfg.RequestTimeout)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if predictErr != nil {
		if errors.Is(predictErr, context.DeadlineExceeded) {
			s.met.timeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "prediction timed out after %s", s.cfg.RequestTimeout)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, "prediction failed: %v", predictErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
