package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/wasm"
)

// testState holds the expensive fixtures — a trained predictor and a
// compiled binary — shared by every test in the package.
var testState struct {
	once sync.Once
	pred *core.Predictor
	bin  []byte
	err  error
}

func testPredictor(t testing.TB) (*core.Predictor, []byte) {
	t.Helper()
	testState.once.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Corpus.Packages = 16
		cfg.Corpus.MinFuncs = 3
		cfg.Corpus.MaxFuncs = 5
		cfg.Model.Hidden = 32
		cfg.Model.Embed = 24
		cfg.Model.Epochs = 1
		cfg.Model.MaxSrcLen = 60
		cfg.BPESrcVocab = 300
		testState.pred, testState.err = core.TrainPredictor(cfg, nil)
		if testState.err != nil {
			return
		}
		obj, err := cc.Compile(`
double first(double *xs, int n) {
	if (xs != NULL && n > 0) { return xs[0]; }
	return 0.0;
}
int length(char *s) {
	int n = 0;
	while (s[n] != 0) { n = n + 1; }
	return n;
}
`, cc.Options{Debug: true})
		if err != nil {
			testState.err = err
			return
		}
		testState.bin, _, testState.err = wasm.Encode(obj.Module)
	})
	if testState.err != nil {
		t.Fatal(testState.err)
	}
	return testState.pred, testState.bin
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	pred, _ := testPredictor(t)
	s, err := New(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postWasm(t testing.TB, url string, bin []byte, query string) (*http.Response, []byte) {
	t.Helper()
	u := url + "/v1/predict"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Post(u, "application/wasm", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decodeResponse(t testing.TB, body []byte) PredictResponse {
	t.Helper()
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding response %q: %v", body, err)
	}
	return pr
}

func TestPredictHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)

	resp, body := postWasm(t, ts.URL, bin, "func=first&k=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodeResponse(t, body)
	if len(pr.Functions) != 1 {
		t.Fatalf("functions = %d, want 1", len(pr.Functions))
	}
	fn := pr.Functions[0]
	if fn.Name != "first" {
		t.Errorf("name = %q, want first", fn.Name)
	}
	for _, elem := range []string{"param0", "param1", "return"} {
		preds := fn.Elements[elem]
		if len(preds) == 0 || len(preds) > 3 {
			t.Errorf("%s: %d predictions, want 1..3", elem, len(preds))
		}
		for _, p := range preds {
			if p.Text == "" || len(p.Tokens) == 0 {
				t.Errorf("%s: empty prediction", elem)
			}
		}
	}
}

func TestPredictAllFunctionsAndJSONEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)

	env, _ := json.Marshal(predictEnvelope{
		WasmBase64: base64.StdEncoding.EncodeToString(bin),
		K:          2,
	})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodeResponse(t, body)
	if len(pr.Functions) != 2 {
		t.Fatalf("functions = %d, want 2 (all defined)", len(pr.Functions))
	}
}

func TestPredictBadWasm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postWasm(t, ts.URL, []byte("this is not wasm"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("error body malformed: %s", body)
	}
}

func TestPredictEmptyBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postWasm(t, ts.URL, nil, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestPredictOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, body := postWasm(t, ts.URL, make([]byte, 1024), "")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", resp.StatusCode, body)
	}
}

func TestPredictUnknownFunction(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)
	resp, body := postWasm(t, ts.URL, bin, "func=no_such_function")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, body)
	}
	resp, body = postWasm(t, ts.URL, bin, "func=99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("index out of range: status = %d, want 404; body %s", resp.StatusCode, body)
	}
}

func TestPredictByIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)
	resp, body := postWasm(t, ts.URL, bin, "func=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodeResponse(t, body)
	if len(pr.Functions) != 1 || pr.Functions[0].Index != 1 {
		t.Fatalf("unexpected functions: %+v", pr.Functions)
	}
}

func TestPredictTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	_, bin := testPredictor(t)
	resp, body := postWasm(t, ts.URL, bin, "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
}

func TestPredictCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)

	_, body := postWasm(t, ts.URL, bin, "func=first")
	first := decodeResponse(t, body)
	if first.CacheHits != 0 {
		t.Errorf("first request: cache_hits = %d, want 0", first.CacheHits)
	}
	resp, body := postWasm(t, ts.URL, bin, "func=first")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	second := decodeResponse(t, body)
	if len(second.Functions) != 1 {
		t.Fatalf("functions = %d", len(second.Functions))
	}
	wantElems := len(second.Functions[0].Elements)
	if second.CacheHits != wantElems {
		t.Errorf("second request: cache_hits = %d, want %d (every element cached)", second.CacheHits, wantElems)
	}
	if hits := s.met.cacheHits.Value(); hits != int64(wantElems) {
		t.Errorf("metrics cache hits = %d, want %d", hits, wantElems)
	}
	// Identical responses from cache and from inference.
	if fmt.Sprint(first.Functions) != fmt.Sprint(second.Functions) {
		t.Error("cached response differs from computed response")
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	_, bin := testPredictor(t)
	postWasm(t, ts.URL, bin, "func=first")
	_, body := postWasm(t, ts.URL, bin, "func=first")
	pr := decodeResponse(t, body)
	if pr.CacheHits != 0 {
		t.Errorf("cache_hits = %d with caching disabled", pr.CacheHits)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)
	postWasm(t, ts.URL, bin, "func=first")
	postWasm(t, ts.URL, bin, "func=first")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"snowwhite_requests_total 2",
		"snowwhite_cache_hits_total",
		"snowwhite_request_seconds_bucket",
		"snowwhite_inference_seconds_bucket",
		"snowwhite_batch_size_bucket",
		"snowwhite_batch_queue_seconds_bucket",
		"snowwhite_in_flight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	// Cache hits must be visible after repeated identical requests.
	if strings.Contains(out, "snowwhite_cache_hits_total 0\n") {
		t.Errorf("no cache hits recorded after identical requests:\n%s", out)
	}
}

// TestConcurrentRequests hammers one server with 64 concurrent requests
// mixing functions and beam widths; run with -race. Every response must be
// a 200 with non-empty predictions.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 128, RequestTimeout: 2 * time.Minute})
	_, bin := testPredictor(t)

	const n = 64
	var wg sync.WaitGroup
	failures := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn := []string{"first", "length"}[i%2]
			k := 1 + i%3
			resp, body := postWasm(t, ts.URL, bin, fmt.Sprintf("func=%s&k=%d", fn, k))
			if resp.StatusCode != http.StatusOK {
				failures <- fmt.Sprintf("request %d: status %d body %s", i, resp.StatusCode, body)
				return
			}
			pr := decodeResponse(t, body)
			if len(pr.Functions) != 1 || len(pr.Functions[0].Elements) == 0 {
				failures <- fmt.Sprintf("request %d: empty predictions", i)
			}
		}(i)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
}

// TestQueueFull fills the pool with slow jobs and checks overload maps to
// 503 rather than unbounded queuing.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	_, bin := testPredictor(t)

	// Occupy the single worker and the single queue slot.
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	s.jobs <- func() { started <- struct{}{}; <-block }
	s.jobs <- func() { started <- struct{}{}; <-block }
	<-started // worker picked up the first job; second fills the queue

	resp, body := postWasm(t, ts.URL, bin, "func=first")
	close(block)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	if s.met.rejected.Value() == 0 {
		t.Error("rejection not counted")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	pred, bin := testPredictor(t)
	s, err := New(pred, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Launch requests, then shut down while they may still be in flight.
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postWasm(t, ts.URL, bin, "func=first")
			codes <- resp.StatusCode
		}()
	}
	wg.Wait() // httptest.Close below blocks on in-flight anyway; be explicit
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Errorf("in-flight request got %d during shutdown", c)
		}
	}
	// After shutdown the pool is gone; a second Close must be a no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}

func TestNewRejectsEmptyPredictor(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := New(&core.Predictor{}, Config{}); err == nil {
		t.Error("model-less predictor accepted")
	}
}
