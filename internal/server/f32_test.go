package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/quant"
)

// f32State caches the f32-engine counterpart of the shared test
// predictor.
var f32State struct {
	once sync.Once
	pred *core.Predictor
	err  error
}

func testF32Predictor(t testing.TB) *core.Predictor {
	t.Helper()
	pred, _ := testPredictor(t)
	f32State.once.Do(func() {
		f32State.pred, f32State.err = core.QuantizePredictorPrecision(pred, quant.F32, "f32")
	})
	if f32State.err != nil {
		t.Fatal(f32State.err)
	}
	return f32State.pred
}

func newF32TestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.F32Pred = testF32Predictor(t)
	return newTestServer(t, cfg)
}

// TestF32Routing covers the precision=f32 opt-in across both request
// encodings, the echo of the precision in the response, and rejection
// when no f32 engine is loaded.
func TestF32Routing(t *testing.T) {
	_, ts := newF32TestServer(t, Config{})
	_, bin := testPredictor(t)

	resp, body := postWasm(t, ts.URL, bin, "func=first&k=3&precision=f32")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodeResponse(t, body)
	if pr.Precision != "f32" {
		t.Errorf("response precision = %q, want f32", pr.Precision)
	}
	if pr.Fast {
		t.Error("f32 response claims fast=true")
	}
	if len(pr.Functions) != 1 || len(pr.Functions[0].Elements) == 0 {
		t.Fatalf("f32 request returned no predictions: %s", body)
	}
	for elem, preds := range pr.Functions[0].Elements {
		if len(preds) == 0 || preds[0].Text == "" {
			t.Errorf("%s: empty f32 prediction", elem)
		}
	}

	// Same opt-in through the JSON envelope.
	env, _ := json.Marshal(predictEnvelope{
		WasmBase64: base64.StdEncoding.EncodeToString(bin),
		Func:       "first",
		K:          2,
		Precision:  "f32",
	})
	hresp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	ebody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status = %d, body %s", hresp.StatusCode, ebody)
	}
	if epr := decodeResponse(t, ebody); epr.Precision != "f32" {
		t.Errorf("envelope response precision = %q, want f32", epr.Precision)
	}

	// precision=f64 (and omission) stays on the full-precision engine.
	for _, q := range []string{"func=first&k=3", "func=first&k=3&precision=f64"} {
		resp, body = postWasm(t, ts.URL, bin, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", q, resp.StatusCode, body)
		}
		if pr := decodeResponse(t, body); pr.Precision != "" {
			t.Errorf("%s: response precision = %q, want empty", q, pr.Precision)
		}
	}

	// Malformed and conflicting selections.
	resp, body = postWasm(t, ts.URL, bin, "precision=f16")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("precision=f16: status = %d, want 400; body %s", resp.StatusCode, body)
	}
	resp, body = postWasm(t, ts.URL, bin, "fast=true&precision=f32")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fast+f32: status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestF32Unavailable: precision=f32 against a server without an f32
// engine is a client error, not a silent fallback.
func TestF32Unavailable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bin := testPredictor(t)
	resp, body := postWasm(t, ts.URL, bin, "precision=f32")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestHealthzReportsF32: readiness tells clients whether precision=f32
// will be accepted, and /v1/models lists the sibling.
func TestHealthzReportsF32(t *testing.T) {
	check := func(url string, want bool) {
		t.Helper()
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if got, _ := h["f32"].(bool); got != want {
			t.Errorf("f32 = %v, want %v", got, want)
		}
	}
	_, full := newTestServer(t, Config{})
	check(full.URL, false)
	s, f32 := newF32TestServer(t, Config{})
	check(f32.URL, true)
	models := s.Models()
	if len(models) != 1 || !models[0].F32 || models[0].FastMath {
		t.Errorf("model status = %+v, want F32 and no FastMath", models)
	}
}

// TestF32CacheIsolation: the f32 engine must never answer full-precision
// requests from the cache (or vice versa), even for the same function
// and k — the tiers may rank types differently.
func TestF32CacheIsolation(t *testing.T) {
	_, ts := newF32TestServer(t, Config{})
	_, bin := testPredictor(t)

	_, body := postWasm(t, ts.URL, bin, "func=first&k=3")
	full := decodeResponse(t, body)
	if full.CacheHits != 0 {
		t.Fatalf("first full request: cache_hits = %d, want 0", full.CacheHits)
	}
	// The f32 request for the identical (function, k) must miss.
	_, body = postWasm(t, ts.URL, bin, "func=first&k=3&precision=f32")
	f32 := decodeResponse(t, body)
	if f32.CacheHits != 0 {
		t.Errorf("f32 request answered from full-precision cache (%d hits)", f32.CacheHits)
	}
	// And each engine's repeat hits its own entries.
	_, body = postWasm(t, ts.URL, bin, "func=first&k=3&precision=f32")
	if again := decodeResponse(t, body); again.CacheHits != len(again.Functions[0].Elements) {
		t.Errorf("repeated f32 request: cache_hits = %d, want %d",
			again.CacheHits, len(again.Functions[0].Elements))
	}
}

// TestF32Deterministic: repeated f32 requests through the batcher return
// byte-identical predictions.
func TestF32Deterministic(t *testing.T) {
	_, ts := newF32TestServer(t, Config{CacheSize: -1})
	_, bin := testPredictor(t)
	_, first := postWasm(t, ts.URL, bin, "func=first&k=3&precision=f32")
	_, second := postWasm(t, ts.URL, bin, "func=first&k=3&precision=f32")
	if !bytes.Equal(first, second) {
		t.Errorf("f32 responses differ across identical requests:\n%s\n%s", first, second)
	}
}
