package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestModelRouting registers a second model and checks both path-based
// and default routing, plus 404 for unknown names.
func TestModelRouting(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	pred, bin := testPredictor(t)
	if err := s.RegisterModel("alt", pred, nil, nil, ModelSource{}); err != nil {
		t.Fatal(err)
	}

	resp, body := postWasm(t, ts.URL, bin, "func=first")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default route: status %d body %s", resp.StatusCode, body)
	}
	if pr := decodeResponse(t, body); pr.Model != "default" || pr.Version != 1 {
		t.Errorf("default route answered by %q v%d", pr.Model, pr.Version)
	}

	r2, err := http.Post(ts.URL+"/v1/models/alt/predict?func=first", "application/wasm", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("named route: status %d body %s", r2.StatusCode, b2)
	}
	if pr := decodeResponse(t, b2); pr.Model != "alt" {
		t.Errorf("named route answered by %q", pr.Model)
	}

	r3, err := http.Post(ts.URL+"/v1/models/ghost/predict", "application/wasm", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", r3.StatusCode)
	}

	// The query/envelope model field routes too.
	resp, body = postWasm(t, ts.URL, bin, "func=first&model=alt")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model query param: status %d body %s", resp.StatusCode, body)
	}
	if pr := decodeResponse(t, body); pr.Model != "alt" {
		t.Errorf("model query param answered by %q", pr.Model)
	}
}

// TestModelsAdminAPI exercises GET /v1/models and DELETE semantics.
func TestModelsAdminAPI(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	pred, _ := testPredictor(t)
	if err := s.RegisterModel("extra", pred, nil, nil, ModelSource{}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Default string        `json:"default"`
		Models  []ModelStatus `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Default != "default" || len(listing.Models) != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	for _, st := range listing.Models {
		if len(st.Fingerprint) != 64 {
			t.Errorf("model %q fingerprint %q is not a sha256 hex", st.Name, st.Fingerprint)
		}
		if st.Version != 1 {
			t.Errorf("model %q version %d, want 1", st.Name, st.Version)
		}
	}

	del := func(name string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+name, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		return r.StatusCode
	}
	if code := del("extra"); code != http.StatusOK {
		t.Errorf("delete extra: %d", code)
	}
	if code := del("extra"); code != http.StatusNotFound {
		t.Errorf("delete missing: %d, want 404", code)
	}
	if code := del("default"); code != http.StatusBadRequest {
		t.Errorf("delete default: %d, want 400", code)
	}
}

// TestHotSwapVersionAndIsolation: re-registering a name bumps the
// version, keeps serving, and the same weights keep hitting the same
// cache entries (content-hash namespacing survives the swap).
func TestHotSwapVersionAndIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	pred, bin := testPredictor(t)

	_, body := postWasm(t, ts.URL, bin, "func=first")
	first := decodeResponse(t, body)
	if first.Version != 1 {
		t.Fatalf("version = %d, want 1", first.Version)
	}
	if err := s.RegisterModel("default", pred, nil, nil, ModelSource{}); err != nil {
		t.Fatal(err)
	}
	resp, body := postWasm(t, ts.URL, bin, "func=first")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap status %d body %s", resp.StatusCode, body)
	}
	second := decodeResponse(t, body)
	if second.Version != 2 {
		t.Errorf("post-swap version = %d, want 2", second.Version)
	}
	// Same weights → same fingerprint → the swap serves from the cache the
	// old version populated.
	if wantElems := len(second.Functions[0].Elements); second.CacheHits != wantElems {
		t.Errorf("post-swap cache_hits = %d, want %d", second.CacheHits, wantElems)
	}
	if s.met.swaps.Value() != 1 {
		t.Errorf("swap counter = %d, want 1", s.met.swaps.Value())
	}
}

// TestHotSwapUnderLoad hammers the server with concurrent predictions
// while the default model hot-swaps repeatedly; run with -race. Zero
// failed requests is the acceptance bar: every response is a 200 with
// non-empty predictions, before, during, and after the swaps.
func TestHotSwapUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 256, RequestTimeout: 2 * time.Minute})
	pred, bin := testPredictor(t)

	var stop atomic.Bool
	var wg sync.WaitGroup
	failures := make(chan string, 256)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				fn := []string{"first", "length"}[i%2]
				resp, body := postWasm(t, ts.URL, bin, fmt.Sprintf("func=%s&k=%d", fn, 1+i%3))
				if resp.StatusCode != http.StatusOK {
					failures <- fmt.Sprintf("worker %d request %d: status %d body %s", g, i, resp.StatusCode, body)
					return
				}
				pr := decodeResponse(t, body)
				if len(pr.Functions) != 1 || len(pr.Functions[0].Elements) == 0 {
					failures <- fmt.Sprintf("worker %d request %d: empty predictions", g, i)
					return
				}
			}
		}(g)
	}
	for swap := 0; swap < 5; swap++ {
		time.Sleep(50 * time.Millisecond)
		if err := s.RegisterModel("default", pred, nil, nil, ModelSource{}); err != nil {
			t.Errorf("swap %d: %v", swap, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if got := s.met.swaps.Value(); got != 5 {
		t.Errorf("swap counter = %d, want 5", got)
	}
	if es, err := s.acquireModel(""); err != nil {
		t.Errorf("post-swap acquire: %v", err)
	} else {
		if es.version != 6 {
			t.Errorf("final version = %d, want 6", es.version)
		}
		es.release()
	}
}

// TestReloadFromDisk saves the predictor, serves it via NewWithSource,
// and checks Reload hot-swaps it from the recorded path (the SIGHUP
// path), bumping the version without dropping requests.
func TestReloadFromDisk(t *testing.T) {
	pred, bin := testPredictor(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := core.SavePredictor(pred, path); err != nil {
		t.Fatal(err)
	}
	s, err := NewWithSource(pred, Config{}, ModelSource{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reloaded, err := s.Reload()
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(reloaded) != 1 || reloaded[0] != "default" {
		t.Fatalf("reloaded = %v, want [default]", reloaded)
	}
	st := s.Models()
	if len(st) != 1 || st[0].Version != 2 {
		t.Fatalf("post-reload status = %+v, want version 2", st)
	}

	// In-memory models (no Path) are skipped, not an error.
	if err := s.RegisterModel("mem", pred, nil, nil, ModelSource{}); err != nil {
		t.Fatal(err)
	}
	reloaded, err = s.Reload()
	if err != nil || len(reloaded) != 1 {
		t.Fatalf("second reload = %v, %v; want just the disk-backed model", reloaded, err)
	}

	// The reloaded engines still serve.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict?func=first", bytes.NewReader(bin))
	req.Header.Set("Content-Type", "application/wasm")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload predict: %d %s", rec.Code, rec.Body.String())
	}
}
