package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// testBatcher builds a batcher over the shared test predictor's
// parameter model with its own histograms.
func testBatcher(t testing.TB, maxBatch int, maxWait time.Duration) (*batcher, *metrics.Histogram, *metrics.Histogram) {
	t.Helper()
	pred, _ := testPredictor(t)
	r := metrics.NewRegistry()
	size := r.NewHistogram("batch_size", "", []float64{1, 2, 4, 8, 16, 32})
	wait := r.NewHistogram("batch_wait", "", nil)
	b := newBatcher(pred.Param, maxBatch, maxWait, 64, size, wait)
	t.Cleanup(b.close)
	return b, size, wait
}

func batchSrcs(n int) ([][]string, []int) {
	srcs := make([][]string, n)
	ks := make([]int, n)
	for i := range srcs {
		srcs[i] = []string{"<begin>", "i32", fmt.Sprintf("local.get_%d", i%4), "i32.load", "i32.add"}
		ks[i] = 3
	}
	return srcs, ks
}

// TestBatcherCoalesces submits one multi-query request and checks that
// every query decodes in a single batch, with per-slot results equal to
// the direct (unbatched) decode.
func TestBatcherCoalesces(t *testing.T) {
	pred, _ := testPredictor(t)
	b, size, wait := testBatcher(t, 8, 50*time.Millisecond)
	srcs, ks := batchSrcs(4)
	got, err := b.predictMany(context.Background(), srcs, ks)
	if err != nil {
		t.Fatal(err)
	}
	if size.Count() != 1 {
		t.Fatalf("expected one flush, size histogram has %d observations", size.Count())
	}
	if size.Sum() != 4 {
		t.Fatalf("expected one batch of 4, size sum = %v", size.Sum())
	}
	if wait.Count() != 4 {
		t.Errorf("expected 4 queue-wait observations, got %d", wait.Count())
	}
	want := pred.Param.PredictTyped(srcs, ks)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: batched %d predictions, direct %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Text != want[i][j].Text {
				t.Errorf("query %d beam %d: batched %q, direct %q", i, j, got[i][j].Text, want[i][j].Text)
			}
		}
	}
}

// TestBatcherSingleRequestNoWait pins the lone-query fast path: with a
// max wait far beyond the test deadline, a single query must dispatch
// immediately instead of holding the batch open.
func TestBatcherSingleRequestNoWait(t *testing.T) {
	b, size, _ := testBatcher(t, 8, time.Hour)
	srcs, ks := batchSrcs(1)
	start := time.Now()
	if _, err := b.predictMany(context.Background(), srcs, ks); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("lone query waited %v; fast path broken", elapsed)
	}
	if size.Count() != 1 || size.Sum() != 1 {
		t.Errorf("size histogram count=%d sum=%v, want one batch of 1", size.Count(), size.Sum())
	}
}

// TestBatcherDeadline submits queries with an already-expired context:
// they must fail with the context error without burning a decode.
func TestBatcherDeadline(t *testing.T) {
	b, size, _ := testBatcher(t, 8, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs, ks := batchSrcs(3)
	preds, err := b.predictMany(ctx, srcs, ks)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, p := range preds {
		if p != nil {
			t.Errorf("query %d decoded despite expired context", i)
		}
	}
	if size.Count() != 0 {
		t.Errorf("expired queries were flushed as a live batch (count %d)", size.Count())
	}
}

// TestBatcherMixedDeadlines coalesces live and expired queries in one
// window: live ones decode, expired ones fail, slots stay aligned.
func TestBatcherMixedDeadlines(t *testing.T) {
	b, _, _ := testBatcher(t, 16, 100*time.Millisecond)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 1 {
				ctx = expired
			}
			srcs, ks := batchSrcs(1)
			preds, err := b.predictMany(ctx, srcs, ks)
			errs[i] = err
			if err == nil && len(preds[0]) == 0 {
				errs[i] = fmt.Errorf("no predictions")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if i%2 == 0 && err != nil {
			t.Errorf("live query %d failed: %v", i, err)
		}
		if i%2 == 1 && err != context.Canceled {
			t.Errorf("expired query %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestServerBatcherStress hammers a batching server with concurrent
// clients under mixed client-side timeouts, then shuts down while
// clients are still sending; run under -race this exercises the full
// enqueue/flush/drain paths.
func TestServerBatcherStress(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    8,
		QueueDepth: 64,
		CacheSize:  -1, // every request decodes
		BatchSize:  8,
		BatchWait:  2 * time.Millisecond,
	})
	_, bin := testPredictor(t)

	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			timeout := 30 * time.Second
			if c%4 == 3 {
				timeout = time.Millisecond // hopeless deadline; must not wedge anything
			}
			client := &http.Client{Timeout: timeout}
			for i := 0; i < 6; i++ {
				resp, err := client.Post(ts.URL+"/v1/predict?k=2", "application/wasm", bytes.NewReader(bin))
				if err != nil {
					continue // client timeout or server mid-shutdown
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable &&
					resp.StatusCode != http.StatusGatewayTimeout {
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	// Shut down while clients are still in flight: the HTTP layer drains
	// first, then the worker pool, then the batching dispatchers — every
	// accepted request completes and later sends fail at the client.
	time.Sleep(50 * time.Millisecond)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("stress clients wedged")
	}
	if got := s.met.batchSize.Count(); got == 0 {
		t.Error("no batches recorded under concurrent load")
	}
}
