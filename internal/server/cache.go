package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/wasm"
)

// cacheKey identifies one prediction: the content hash of the model that
// produced it, the content hash of a function, the element ("param3",
// "return"), and the beam width. Keying by function *content* rather than
// (binary, index) means identical functions shared across object files —
// common per the paper's dedup analysis, where statically linked library
// code repeats across packages — hit the same entry regardless of which
// upload they arrive in. The model fingerprint namespaces the shared
// cache across the registry's models and across hot swaps: entries from
// an old model version simply stop being hit and age out, and a restarted
// (or replica) process loading the persisted cache only answers from
// entries its exact model wrote.
type cacheKey struct {
	model [32]byte
	fn    [32]byte
	elem  string
	k     int
	// engine separates the precision tiers' entries even when their
	// weights fingerprint identically (an f32 in-memory quantization):
	// "" is the full-precision engine, "fast" the fused-rounding
	// fast-math engine, "f32" the single-precision engine. Each tier's
	// kernels may rank types differently, so a request must never be
	// answered from another tier's entry.
	engine string
}

// funcHash fingerprints a module-defined function's prediction-relevant
// content: its low-level signature, locals, and instruction stream.
func funcHash(m *wasm.Module, funcIdx int) [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fn := &m.Funcs[funcIdx]
	// Always hash the type index itself plus a validity marker: two
	// tolerant-decoded functions with different out-of-range type indices
	// but identical bodies must not share an entry, and an out-of-range
	// function must not collide with an in-range one whose signature
	// happens to hash to nothing.
	put(uint64(fn.TypeIdx))
	if int(fn.TypeIdx) < len(m.Types) {
		put(1)
		sig := m.Types[fn.TypeIdx]
		put(uint64(len(sig.Params)))
		for _, p := range sig.Params {
			put(uint64(p))
		}
		put(uint64(len(sig.Results)))
		for _, r := range sig.Results {
			put(uint64(r))
		}
	} else {
		put(0)
	}
	put(uint64(len(fn.Locals)))
	for _, d := range fn.Locals {
		put(uint64(d.Count))
		put(uint64(d.Type))
	}
	put(uint64(len(fn.Body)))
	for _, in := range fn.Body {
		put(uint64(in.Op))
		put(uint64(in.Imm))
		put(uint64(in.Imm2))
		put(uint64(math.Float32bits(in.F32)))
		put(math.Float64bits(in.F64))
		put(uint64(len(in.Table)))
		for _, tgt := range in.Table {
			put(uint64(tgt))
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// lruCache is a fixed-capacity LRU map from prediction keys to ranked
// predictions. Safe for concurrent use. A nil *lruCache disables caching
// (every lookup misses, every store is dropped).
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	val []core.TypePrediction
}

// newLRUCache returns a cache holding at most max entries; max <= 0
// returns nil (caching disabled).
func newLRUCache(max int) *lruCache {
	if max <= 0 {
		return nil
	}
	return &lruCache{max: max, order: list.New(), items: map[cacheKey]*list.Element{}}
}

func (c *lruCache) get(key cacheKey) ([]core.TypePrediction, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key cacheKey, val []core.TypePrediction) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for len(c.items) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// entries returns a copy of the cache contents, least recently used
// first — the order a snapshot must replay puts in so the restored cache
// reproduces this one's eviction order exactly.
func (c *lruCache) entries() []lruEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruEntry, 0, len(c.items))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry)
		out = append(out, lruEntry{key: e.key, val: e.val})
	}
	return out
}
