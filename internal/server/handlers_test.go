package server

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/wasm"
)

// TestResolveFuncsNameBeforeIndex covers the selector-precedence fix: an
// export literally named "3" must resolve as a name, not be shadowed by
// parsing "3" as function index 3.
func TestResolveFuncsNameBeforeIndex(t *testing.T) {
	m := &wasm.Module{
		Types: []wasm.FuncType{{}},
		Funcs: make([]wasm.Function, 5),
		Exports: []wasm.Export{
			{Name: "3", Kind: wasm.KindFunc, Index: 1},
		},
	}
	got, err := resolveFuncs(m, "3")
	if err != nil || len(got) != 1 || got[0] != 1 {
		t.Fatalf(`resolveFuncs("3") = %v, %v; want [1] (the export named "3")`, got, err)
	}
	// Numeric fallback still works for selectors that name nothing.
	got, err = resolveFuncs(m, "4")
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf(`resolveFuncs("4") = %v, %v; want [4]`, got, err)
	}
	if _, err := resolveFuncs(m, "99"); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := resolveFuncs(m, "nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if got, err := resolveFuncs(m, ""); err != nil || len(got) != 5 {
		t.Errorf("empty selector = %v, %v; want all 5 functions", got, err)
	}
}

// TestResolveFuncsNamePriority checks the one-pass name map keeps the old
// scan's semantics: export indices are in the full function index space
// (imports first), debug names resolve, and the lowest defined-function
// index wins an ambiguous name.
func TestResolveFuncsNamePriority(t *testing.T) {
	m := &wasm.Module{
		Types:   []wasm.FuncType{{}},
		Imports: []wasm.Import{{Module: "env", Name: "host", Kind: wasm.KindFunc}},
		Funcs:   []wasm.Function{{Name: "dbg"}, {}, {}},
		Exports: []wasm.Export{
			// Both name defined functions (index space offset by 1 import);
			// the lower defined index must win.
			{Name: "dup", Kind: wasm.KindFunc, Index: 3}, // defined func 2
			{Name: "dup", Kind: wasm.KindFunc, Index: 2}, // defined func 1
		},
	}
	if got, err := resolveFuncs(m, "dup"); err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf(`resolveFuncs("dup") = %v, %v; want [1] (lowest function index)`, got, err)
	}
	if got, err := resolveFuncs(m, "dbg"); err != nil || len(got) != 1 || got[0] != 0 {
		t.Errorf(`resolveFuncs("dbg") = %v, %v; want [0] (debug name)`, got, err)
	}
}

// TestPredictTypedCtxCancellation covers the ctx-threading fix: a decode
// on the unbatched path must notice cancellation between decoder steps
// instead of running to completion.
func TestPredictTypedCtxCancellation(t *testing.T) {
	pred, bin := testPredictor(t)
	m, err := core.DecodeStripped(bin)
	if err != nil {
		t.Fatal(err)
	}
	src, err := pred.ParamInput(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pred.Param.PredictTypedCtx(ctx, [][]string{src}, []int{3}); err == nil {
		t.Error("canceled context produced predictions")
	}
	// And a live context decodes identically to the ctx-less path.
	got, err := pred.Param.PredictTypedCtx(context.Background(), [][]string{src}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	want := pred.Param.PredictTyped([][]string{src}, []int{3})
	if len(got) != 1 || len(want) != 1 || len(got[0]) != len(want[0]) {
		t.Fatalf("ctx path shape %d differs from plain path %d", len(got[0]), len(want[0]))
	}
	for i := range got[0] {
		if got[0][i].Text != want[0][i].Text {
			t.Errorf("prediction %d: ctx path %q, plain path %q", i, got[0][i].Text, want[0][i].Text)
		}
	}
}
