package baseline

import (
	"reflect"
	"testing"
)

func TestPredictRanksByFrequency(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Add("i32", []string{"pointer", "class"})
	}
	for i := 0; i < 5; i++ {
		m.Add("i32", []string{"primitive", "int", "32"})
	}
	m.Add("i32", []string{"pointer", "struct"})
	m.Add("f32", []string{"primitive", "float", "32"})

	got := m.Predict("i32", 2)
	want := [][]string{{"pointer", "class"}, {"primitive", "int", "32"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Predict(i32, 2) = %v", got)
	}
	if got := m.Predict("f32", 5); len(got) != 1 || got[0][2] != "32" {
		t.Errorf("Predict(f32) = %v", got)
	}
	if m.Seen("i32") != 16 {
		t.Errorf("Seen = %d", m.Seen("i32"))
	}
}

func TestPredictUnseenLowFallsBack(t *testing.T) {
	m := New()
	m.Add("i32", []string{"pointer", "class"})
	got := m.Predict("f64", 1)
	if len(got) != 1 || got[0][0] != "pointer" {
		t.Errorf("fallback = %v", got)
	}
}

func TestCacheInvalidation(t *testing.T) {
	m := New()
	m.Add("i32", []string{"a"})
	_ = m.Predict("i32", 1) // populate cache
	m.Add("i32", []string{"b"})
	m.Add("i32", []string{"b"})
	got := m.Predict("i32", 1)
	if got[0][0] != "b" {
		t.Errorf("stale cache: %v", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	m := New()
	m.Add("i32", []string{"zeta"})
	m.Add("i32", []string{"alpha"})
	got := m.Predict("i32", 2)
	if got[0][0] != "alpha" || got[1][0] != "zeta" {
		t.Errorf("tie break = %v", got)
	}
}

func TestEmptyModel(t *testing.T) {
	m := New()
	if got := m.Predict("i32", 3); len(got) != 0 {
		t.Errorf("empty model predicted %v", got)
	}
}
