// Package baseline implements the paper's statistical comparison point
// (Section 6.3): top-k predictions are "generated" by copying the k most
// likely high-level types for a given low-level WebAssembly type from the
// conditional distribution P(t_high | t_low) observed on the training
// data. Beating this baseline is what shows the neural model actually
// reads the code rather than the label distribution.
package baseline

import (
	"sort"
	"strings"
)

// Model is the empirical conditional distribution P(t_high | t_low).
type Model struct {
	counts map[string]map[string]int
	// ranked caches the frequency-ordered type list per low-level type.
	ranked map[string][][]string
	total  map[string]int
}

// New returns an empty model.
func New() *Model {
	return &Model{
		counts: map[string]map[string]int{},
		ranked: map[string][][]string{},
		total:  map[string]int{},
	}
}

// Add records one training observation.
func (m *Model) Add(low string, typeTokens []string) {
	c := m.counts[low]
	if c == nil {
		c = map[string]int{}
		m.counts[low] = c
	}
	c[strings.Join(typeTokens, " ")]++
	m.total[low]++
	delete(m.ranked, low) // invalidate cache
}

// Predict returns the k most frequent type sequences for the low-level
// type, most frequent first. Ties break lexicographically for
// determinism. An unseen low-level type falls back to the union
// distribution.
func (m *Model) Predict(low string, k int) [][]string {
	rank, ok := m.ranked[low]
	if !ok {
		c := m.counts[low]
		if c == nil {
			c = m.union()
		}
		type tc struct {
			typ string
			n   int
		}
		all := make([]tc, 0, len(c))
		for typ, n := range c {
			all = append(all, tc{typ, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].typ < all[j].typ
		})
		rank = make([][]string, 0, len(all))
		for _, e := range all {
			rank = append(rank, strings.Fields(e.typ))
		}
		m.ranked[low] = rank
	}
	if len(rank) > k {
		rank = rank[:k]
	}
	return rank
}

// union merges all conditional distributions (fallback for unseen lows).
func (m *Model) union() map[string]int {
	out := map[string]int{}
	for _, c := range m.counts {
		for typ, n := range c {
			out[typ] += n
		}
	}
	return out
}

// Seen reports how many observations were recorded for a low-level type.
func (m *Model) Seen(low string) int { return m.total[low] }
