package typelang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dwarf"
)

func TestTokensPaperExamples(t *testing.T) {
	cases := []struct {
		typ  *Type
		want string
	}{
		// Figure 1d: double[] parameter.
		{Pointer(Float(64)), "pointer primitive float 64"},
		// Table 2 rows.
		{Pointer(Class()), "pointer class"},
		{Pointer(Struct()), "pointer struct"},
		{Int(32), "primitive int 32"},
		{Pointer(Const(Class())), "pointer const class"},
		{Pointer(Const(CChar())), "pointer const primitive cchar"},
		{Named("size_t", Uint(32)), `name "size_t" primitive uint 32`},
		{Pointer(Unknown()), "pointer unknown"},
		{Pointer(Int(32)), "pointer primitive int 32"},
		// Section 3.3: *char[] is array pointer char.
		{Array(Pointer(CChar())), "array pointer primitive cchar"},
		{Bool(), "primitive bool"},
		{Complex(), "primitive complex"},
		{WChar(16), "primitive wchar 16"},
		{Function(), "function"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		parsed, err := ParseString(c.want)
		if err != nil {
			t.Errorf("ParseString(%q): %v", c.want, err)
			continue
		}
		if !parsed.Equal(c.typ) {
			t.Errorf("ParseString(%q) = %v, want %v", c.want, parsed, c.typ)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"pointer",
		"primitive",
		"primitive int",
		"primitive int 33",
		"primitive float 8",
		"name struct",
		`name "x"`,
		"frobnicate",
		"pointer struct struct", // trailing tokens
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	typ, rest, err := ParsePrefix([]string{"pointer", "struct", "junk", "junk"})
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "pointer struct" || len(rest) != 2 {
		t.Errorf("ParsePrefix = %v, rest %v", typ, rest)
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		typ  *Type
		want int
	}{
		{Int(32), 0},
		{Struct(), 0},
		{Pointer(Float(64)), 1},
		{Pointer(Const(CChar())), 2},
		{Named("size_t", Uint(32)), 1},
		{Array(Pointer(Const(Named("T", Struct())))), 4},
	}
	for _, c := range cases {
		if got := c.typ.Depth(); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.typ, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []*Type{Int(32), Pointer(Struct()), Named("x", Class()), Float(128)}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", g, err)
		}
	}
	bad := []*Type{
		{Ctor: CtorPointer},               // missing elem
		{Ctor: CtorStruct, Elem: Int(32)}, // leaf with elem
		{Ctor: CtorName, Elem: Int(32)},   // empty name
		Prim(PrimInt, 33),                 // bad bits
		Pointer(&Type{Ctor: CtorConst}),   // nested missing elem
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", b)
		}
	}
	var nilType *Type
	if err := nilType.Validate(); err == nil {
		t.Error("Validate(nil) should fail")
	}
}

// randType produces a random valid type for property tests.
func randType(r *rand.Rand, depth int) *Type {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(8) {
		case 0:
			return Int([]int{8, 16, 32, 64}[r.Intn(4)])
		case 1:
			return Uint([]int{8, 16, 32, 64}[r.Intn(4)])
		case 2:
			return Float([]int{32, 64, 128}[r.Intn(3)])
		case 3:
			return Bool()
		case 4:
			return CChar()
		case 5:
			return Struct()
		case 6:
			return Class()
		default:
			return Unknown()
		}
	}
	switch r.Intn(4) {
	case 0:
		return Pointer(randType(r, depth-1))
	case 1:
		return Array(randType(r, depth-1))
	case 2:
		return Const(randType(r, depth-1))
	default:
		return Named("n"+string(rune('a'+r.Intn(26))), randType(r, depth-1))
	}
}

func TestQuickTokenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		typ := randType(r, 5)
		parsed, err := Parse(typ.Tokens())
		return err == nil && parsed.Equal(typ)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(uint8) bool { return f() }, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		typ := randType(r, 4)
		c := typ.Clone()
		if !typ.Equal(c) {
			t.Fatalf("clone not equal: %s vs %s", typ, c)
		}
		if !typ.IsLeaf() && c.Elem == typ.Elem {
			t.Fatal("clone shares element pointer")
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	// Section 6.3 examples:
	// TPS(pointer struct, pointer class) = 1
	// TPS(pointer struct, primitive int 32) = 0
	a := []string{"pointer", "struct"}
	if got := CommonPrefixLen(a, []string{"pointer", "class"}); got != 1 {
		t.Errorf("TPS = %d, want 1", got)
	}
	if got := CommonPrefixLen(a, []string{"primitive", "int", "32"}); got != 0 {
		t.Errorf("TPS = %d, want 0", got)
	}
	if got := CommonPrefixLen(a, a); got != 2 {
		t.Errorf("TPS(self) = %d, want 2", got)
	}
}

// --- DWARF conversion ---

func dieBase(name string, enc dwarf.Encoding, size uint64) *dwarf.DIE {
	return dwarf.NewBaseType(name, enc, size)
}

func TestFromDWARFPrimitives(t *testing.T) {
	cases := []struct {
		die  *dwarf.DIE
		want string
	}{
		{dieBase("double", dwarf.EncFloat, 8), "primitive float 64"},
		{dieBase("float", dwarf.EncFloat, 4), "primitive float 32"},
		{dieBase("long double", dwarf.EncFloat, 16), "primitive float 128"},
		{dieBase("int", dwarf.EncSigned, 4), "primitive int 32"},
		{dieBase("long long", dwarf.EncSigned, 8), "primitive int 64"},
		{dieBase("short", dwarf.EncSigned, 2), "primitive int 16"},
		{dieBase("unsigned int", dwarf.EncUnsigned, 4), "primitive uint 32"},
		{dieBase("bool", dwarf.EncBoolean, 1), "primitive bool"},
		{dieBase("char", dwarf.EncSignedChar, 1), "primitive cchar"},
		{dieBase("signed char", dwarf.EncSignedChar, 1), "primitive int 8"},
		{dieBase("unsigned char", dwarf.EncUnsignedChar, 1), "primitive uint 8"},
		{dieBase("char16_t", dwarf.EncUTF, 2), "primitive wchar 16"},
		{dieBase("char32_t", dwarf.EncUTF, 4), "primitive wchar 32"},
		{dieBase("complex", dwarf.EncComplexFloat, 16), "primitive complex"},
	}
	for _, c := range cases {
		got := FromDWARF(c.die, AllNames())
		if got.String() != c.want {
			t.Errorf("FromDWARF(%s) = %q, want %q", c.die.Name(), got, c.want)
		}
	}
}

func TestFromDWARFStructure(t *testing.T) {
	f64 := dieBase("double", dwarf.EncFloat, 8)
	ptr := dwarf.NewModifier(dwarf.TagPointerType, f64)
	if got := FromDWARF(ptr, AllNames()).String(); got != "pointer primitive float 64" {
		t.Errorf("pointer double = %q", got)
	}

	// void* → pointer unknown.
	voidPtr := dwarf.NewModifier(dwarf.TagPointerType, nil)
	if got := FromDWARF(voidPtr, AllNames()).String(); got != "pointer unknown" {
		t.Errorf("void* = %q", got)
	}

	// Forward-declared struct behind pointer → pointer unknown.
	fwd := &dwarf.DIE{Tag: dwarf.TagStructType}
	fwd.AddAttr(dwarf.AttrName, "opaque")
	fwd.AddAttr(dwarf.AttrDeclaration, true)
	fwdPtr := dwarf.NewModifier(dwarf.TagPointerType, fwd)
	if got := FromDWARF(fwdPtr, AllNames()).String(); got != "pointer unknown" {
		t.Errorf("fwd-decl pointer = %q", got)
	}

	// C++ reference → pointer.
	ref := dwarf.NewModifier(dwarf.TagReferenceType, f64)
	if got := FromDWARF(ref, AllNames()).String(); got != "pointer primitive float 64" {
		t.Errorf("reference = %q", got)
	}

	// volatile dropped.
	vol := dwarf.NewModifier(dwarf.TagVolatileType, f64)
	if got := FromDWARF(vol, AllNames()).String(); got != "primitive float 64" {
		t.Errorf("volatile = %q", got)
	}

	// const kept (in L_SW) or dropped (Simplified).
	cst := dwarf.NewModifier(dwarf.TagConstType, f64)
	if got := FromDWARF(cst, AllNames()).String(); got != "const primitive float 64" {
		t.Errorf("const = %q", got)
	}
	if got := FromDWARF(cst, Simplified()).String(); got != "primitive float 64" {
		t.Errorf("const simplified = %q", got)
	}

	// Function pointer.
	fn := &dwarf.DIE{Tag: dwarf.TagSubroutineType}
	fnPtr := dwarf.NewModifier(dwarf.TagPointerType, fn)
	if got := FromDWARF(fnPtr, AllNames()).String(); got != "pointer function" {
		t.Errorf("function pointer = %q", got)
	}

	// nullptr_t.
	null := &dwarf.DIE{Tag: dwarf.TagUnspecifiedType}
	nullPtr := dwarf.NewModifier(dwarf.TagPointerType, null)
	if got := FromDWARF(nullPtr, AllNames()).String(); got != "pointer unknown" {
		t.Errorf("nullptr = %q", got)
	}
}

func TestFromDWARFNames(t *testing.T) {
	// typedef struct sname {...} tname; used as `tname` → name "tname" struct
	// (outermost name wins, Section 3.6).
	sname := &dwarf.DIE{Tag: dwarf.TagStructType}
	sname.AddAttr(dwarf.AttrName, "sname")
	sname.AddAttr(dwarf.AttrByteSize, uint64(8))
	tname := dwarf.NewTypedef("tname", sname)

	if got := FromDWARF(tname, AllNames()).String(); got != `name "tname" struct` {
		t.Errorf("typedef struct = %q", got)
	}
	// With a filter that rejects tname but accepts sname, the inner name
	// surfaces.
	onlySname := LSW(func(n string) bool { return n == "sname" })
	if got := FromDWARF(tname, onlySname).String(); got != `name "sname" struct` {
		t.Errorf("filtered typedef struct = %q", got)
	}
	// Simplified drops names entirely.
	if got := FromDWARF(tname, Simplified()).String(); got != "struct" {
		t.Errorf("simplified typedef struct = %q", got)
	}
	// size_t as typedef of unsigned long (ILP32: 4 bytes).
	ulong := dieBase("unsigned long", dwarf.EncUnsigned, 4)
	sizeT := dwarf.NewTypedef("size_t", ulong)
	if got := FromDWARF(sizeT, AllNames()).String(); got != `name "size_t" primitive uint 32` {
		t.Errorf("size_t = %q", got)
	}
}

func TestFromDWARFCycle(t *testing.T) {
	// struct list { struct list *next; }
	list := &dwarf.DIE{Tag: dwarf.TagStructType}
	list.AddAttr(dwarf.AttrName, "list")
	ptr := dwarf.NewModifier(dwarf.TagPointerType, list)
	member := &dwarf.DIE{Tag: dwarf.TagMember}
	member.AddAttr(dwarf.AttrType, ptr)
	list.AddChild(member)

	// Converting the pointer type terminates (fields are not captured,
	// so the cycle is only reachable via the member's type attribute,
	// which conversion does not follow — but a typedef cycle does).
	got := FromDWARF(ptr, AllNames())
	if got.String() != `pointer name "list" struct` {
		t.Errorf("recursive struct pointer = %q", got)
	}

	// A genuinely cyclic modifier chain must terminate via cycle breaking.
	a := &dwarf.DIE{Tag: dwarf.TagPointerType}
	b := &dwarf.DIE{Tag: dwarf.TagPointerType}
	a.AddAttr(dwarf.AttrType, b)
	b.AddAttr(dwarf.AttrType, a)
	cyc := FromDWARF(a, AllNames())
	if err := cyc.Validate(); err != nil {
		t.Errorf("cyclic conversion produced invalid type: %v", err)
	}
	if !strings.Contains(cyc.String(), "unknown") {
		t.Errorf("cycle not broken: %q", cyc)
	}
}

func TestMaxDepth(t *testing.T) {
	// A deep non-cyclic chain gets truncated at MaxDepth.
	inner := dieBase("int", dwarf.EncSigned, 4)
	cur := inner
	for i := 0; i < 20; i++ {
		cur = dwarf.NewModifier(dwarf.TagPointerType, cur)
	}
	got := FromDWARF(cur, ConvertOptions{MaxDepth: 3})
	if got.Depth() > 4 {
		t.Errorf("depth = %d, want <= 4; %s", got.Depth(), got)
	}
}

func TestToEklavya(t *testing.T) {
	cases := []struct {
		typ  *Type
		want string
	}{
		{Int(32), "int"},
		{Uint(64), "int"},
		{Bool(), "int"},
		{Float(64), "float"},
		{Complex(), "float"},
		{CChar(), "char"},
		{Pointer(Struct()), "pointer"},
		{Array(Int(8)), "pointer"},
		{Named("size_t", Uint(32)), "int"},
		{Const(Enum()), "enum"},
		{Union(), "union"},
		{Class(), "struct"},
		{Function(), "pointer"},
		{Unknown(), "int"},
	}
	for _, c := range cases {
		if got := ToEklavya(c.typ); got != c.want {
			t.Errorf("ToEklavya(%s) = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestVariantApply(t *testing.T) {
	master := Named("mytype", Pointer(Const(Named("inner", Class()))))
	common := func(n string) bool { return n == "mytype" }

	if got := strings.Join(VariantAllNames.Apply(master, nil), " "); got != `name "mytype" pointer const name "inner" class` {
		// dropInnerNames was already applied during conversion in the real
		// pipeline; Apply on a raw master keeps it as-is for AllNames.
		t.Errorf("AllNames = %q", got)
	}
	if got := strings.Join(VariantLSW.Apply(master, common), " "); got != `name "mytype" pointer const class` {
		t.Errorf("LSW = %q", got)
	}
	if got := strings.Join(VariantSimplified.Apply(master, nil), " "); got != "pointer struct" {
		t.Errorf("Simplified = %q", got)
	}
	if got := strings.Join(VariantEklavya.Apply(master, nil), " "); got != "pointer" {
		t.Errorf("Eklavya = %q", got)
	}
}

func TestNameStats(t *testing.T) {
	s := NewNameStats()
	// size_t in 3 of 4 packages; FILE in 1; _internal in all; uint32_t in all.
	for i, pkg := range []string{"p1", "p2", "p3", "p4"} {
		if i < 3 {
			s.Add(pkg, Named("size_t", Uint(32)))
		}
		s.Add(pkg, Named("_internal", Struct()))
		s.Add(pkg, Named("uint32_t", Uint(32)))
	}
	s.Add("p1", Pointer(Named("FILE", Struct())))
	if s.NumPackages() != 4 {
		t.Fatalf("NumPackages = %d", s.NumPackages())
	}
	common := s.Common(0.5)
	if len(common) != 1 || common[0].Name != "size_t" {
		t.Fatalf("Common(0.5) = %v", common)
	}
	if common[0].SampleCount != 3 || common[0].PackageShare != 0.75 {
		t.Errorf("size_t row = %+v", common[0])
	}
	all := s.Common(0.0)
	for _, n := range all {
		if n.Name == "_internal" || n.Name == "uint32_t" {
			t.Errorf("filtered name %q leaked into vocabulary", n.Name)
		}
	}
	f := FilterFunc(common)
	if !f("size_t") || f("FILE") {
		t.Error("FilterFunc membership wrong")
	}
}

func TestFeatureMatrix(t *testing.T) {
	rows := FeatureMatrix()
	if len(rows) != 6 {
		t.Fatalf("FeatureMatrix has %d rows, want 6", len(rows))
	}
	if rows[4].Approach != "SnowWhite" || rows[4].PointeeType != "recursive" || !rows[4].Const {
		t.Errorf("SnowWhite row wrong: %+v", rows[4])
	}
	if rows[0].Approach != "Eklavya" || rows[0].NumTypes != "7" {
		t.Errorf("Eklavya row wrong: %+v", rows[0])
	}
}

func TestVariantsList(t *testing.T) {
	vs := Variants()
	if len(vs) != 4 {
		t.Fatalf("Variants() = %v", vs)
	}
	want := []string{"Lsw, All Names", "Lsw", "Lsw, Simplified", "Leklavya"}
	for i, v := range vs {
		if v.String() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v, want[i])
		}
	}
}

func TestKeyStability(t *testing.T) {
	a := Pointer(Const(CChar()))
	b := Pointer(Const(CChar()))
	if a.Key() != b.Key() {
		t.Error("equal types have different keys")
	}
	if reflect.DeepEqual(a.Key(), Pointer(CChar()).Key()) {
		t.Error("different types share a key")
	}
}
