package typelang

import (
	"fmt"
	"strconv"
	"strings"
)

// Tokens renders the type as the linear token sequence the model predicts,
// e.g. `pointer const primitive cchar` or `name "size_t" primitive uint 32`.
// Name tokens are quoted so they can never collide with keywords.
func (t *Type) Tokens() []string {
	var out []string
	t.appendTokens(&out)
	return out
}

func (t *Type) appendTokens(out *[]string) {
	if t == nil {
		*out = append(*out, "unknown")
		return
	}
	switch t.Ctor {
	case CtorPrimitive:
		*out = append(*out, "primitive", t.Prim.Kind.String())
		if t.Prim.Kind.hasBits() {
			*out = append(*out, strconv.Itoa(t.Prim.Bits))
		}
	case CtorPointer, CtorArray, CtorConst:
		*out = append(*out, t.Ctor.String())
		t.Elem.appendTokens(out)
	case CtorName:
		*out = append(*out, "name", strconv.Quote(t.Name))
		t.Elem.appendTokens(out)
	default:
		*out = append(*out, t.Ctor.String())
	}
}

// String renders the token sequence separated by spaces.
func (t *Type) String() string {
	return strings.Join(t.Tokens(), " ")
}

// Key returns a canonical string identity for the type, usable as a map key
// when counting type distributions.
func (t *Type) Key() string { return t.String() }

// Parse parses a token sequence back into a type. It is the inverse of
// Tokens and rejects malformed sequences, including trailing tokens.
func Parse(tokens []string) (*Type, error) {
	t, rest, err := parseType(tokens)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("typelang: %d trailing tokens after type: %v", len(rest), rest)
	}
	return t, nil
}

// ParsePrefix parses the longest valid type that is a prefix of tokens,
// returning the remaining tokens. Model outputs may be truncated or have
// junk suffixes; ParsePrefix recovers the leading well-formed part.
func ParsePrefix(tokens []string) (*Type, []string, error) {
	return parseType(tokens)
}

func parseType(tokens []string) (*Type, []string, error) {
	if len(tokens) == 0 {
		return nil, nil, fmt.Errorf("typelang: empty token sequence")
	}
	head, rest := tokens[0], tokens[1:]
	switch head {
	case "primitive":
		return parsePrimitive(rest)
	case "pointer", "array", "const":
		elem, rest, err := parseType(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("typelang: after %q: %w", head, err)
		}
		ctor := map[string]Ctor{"pointer": CtorPointer, "array": CtorArray, "const": CtorConst}[head]
		return &Type{Ctor: ctor, Elem: elem}, rest, nil
	case "name":
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("typelang: name constructor missing name token")
		}
		name, err := strconv.Unquote(rest[0])
		if err != nil {
			return nil, nil, fmt.Errorf("typelang: invalid name token %q: %w", rest[0], err)
		}
		elem, rest2, err := parseType(rest[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("typelang: after name %q: %w", name, err)
		}
		return Named(name, elem), rest2, nil
	case "struct":
		return Struct(), rest, nil
	case "class":
		return Class(), rest, nil
	case "union":
		return Union(), rest, nil
	case "enum":
		return Enum(), rest, nil
	case "function":
		return Function(), rest, nil
	case "unknown":
		return Unknown(), rest, nil
	}
	return nil, nil, fmt.Errorf("typelang: unexpected token %q", head)
}

func parsePrimitive(tokens []string) (*Type, []string, error) {
	if len(tokens) == 0 {
		return nil, nil, fmt.Errorf("typelang: primitive constructor missing kind")
	}
	kindTok, rest := tokens[0], tokens[1:]
	var kind PrimKind
	found := false
	for k, name := range primNames {
		if name == kindTok {
			kind, found = k, true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("typelang: unknown primitive kind %q", kindTok)
	}
	bits := 0
	if kind.hasBits() {
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("typelang: primitive %s missing bit width", kindTok)
		}
		var err error
		bits, err = strconv.Atoi(rest[0])
		if err != nil {
			return nil, nil, fmt.Errorf("typelang: invalid bit width %q: %w", rest[0], err)
		}
		rest = rest[1:]
	}
	if !kind.validBits(bits) {
		return nil, nil, fmt.Errorf("typelang: invalid bit width %d for %s", bits, kind)
	}
	return Prim(kind, bits), rest, nil
}

// ParseString parses a space-separated token string, e.g.
// `pointer primitive float 64`.
func ParseString(s string) (*Type, error) {
	return Parse(strings.Fields(s))
}

// CommonPrefixLen returns the number of leading tokens shared by two token
// sequences: the Type Prefix Score of a prediction against the ground
// truth (Section 6.3).
func CommonPrefixLen(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
