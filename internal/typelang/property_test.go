package typelang

import (
	"math/rand"
	"testing"

	"repro/internal/dwarf"
)

// randDIE builds a random DWARF type graph, possibly cyclic, from a pool
// of nodes, exercising every constructor the converter handles.
func randDIE(r *rand.Rand, pool []*dwarf.DIE, depth int) *dwarf.DIE {
	if depth <= 0 || (len(pool) > 0 && r.Intn(5) == 0) {
		// Leaf: base type, enum, fwd decl, or a back-edge into the pool
		// (potential cycle).
		switch r.Intn(6) {
		case 0:
			return dwarf.NewBaseType("int", dwarf.EncSigned, 4)
		case 1:
			return dwarf.NewBaseType("double", dwarf.EncFloat, 8)
		case 2:
			return dwarf.NewBaseType("char", dwarf.EncSignedChar, 1)
		case 3:
			e := &dwarf.DIE{Tag: dwarf.TagEnumerationType}
			if r.Intn(2) == 0 {
				e.AddAttr(dwarf.AttrName, "color")
			}
			return e
		case 4:
			s := &dwarf.DIE{Tag: dwarf.TagStructType}
			s.AddAttr(dwarf.AttrName, "fwd")
			s.AddAttr(dwarf.AttrDeclaration, true)
			return s
		default:
			if len(pool) > 0 {
				return pool[r.Intn(len(pool))]
			}
			return nil // void
		}
	}
	tags := []dwarf.Tag{
		dwarf.TagPointerType, dwarf.TagArrayType, dwarf.TagConstType,
		dwarf.TagVolatileType, dwarf.TagRestrictType, dwarf.TagTypedef,
		dwarf.TagReferenceType, dwarf.TagStructType, dwarf.TagClassType,
		dwarf.TagUnionType, dwarf.TagSubroutineType, dwarf.TagUnspecifiedType,
	}
	tag := tags[r.Intn(len(tags))]
	d := &dwarf.DIE{Tag: tag}
	switch tag {
	case dwarf.TagTypedef:
		d.AddAttr(dwarf.AttrName, "td"+string(rune('a'+r.Intn(26))))
		d.AddAttr(dwarf.AttrType, randDIE(r, append(pool, d), depth-1))
	case dwarf.TagStructType, dwarf.TagClassType, dwarf.TagUnionType:
		if r.Intn(2) == 0 {
			d.AddAttr(dwarf.AttrName, "rec"+string(rune('a'+r.Intn(26))))
		}
		d.AddAttr(dwarf.AttrByteSize, uint64(8))
	case dwarf.TagSubroutineType, dwarf.TagUnspecifiedType:
		// no inner type
	default:
		if inner := randDIE(r, append(pool, d), depth-1); inner != nil {
			d.AddAttr(dwarf.AttrType, inner)
		}
	}
	return d
}

// TestQuickFromDWARFAlwaysValid: for arbitrary (even cyclic) DWARF type
// graphs and every language variant, conversion must terminate and
// produce a type whose token sequence is valid and parses back to an
// equal type.
func TestQuickFromDWARFAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	common := func(n string) bool { return len(n) > 0 && n[0] == 't' }
	for i := 0; i < 2000; i++ {
		die := randDIE(r, nil, 4)
		for _, v := range Variants() {
			if v == VariantEklavya {
				continue // collapsed to a single label, checked below
			}
			typ := FromDWARF(die, v.Options(common))
			if err := typ.Validate(); err != nil {
				t.Fatalf("iter %d, variant %s: invalid type %v: %v", i, v, typ, err)
			}
			parsed, err := Parse(typ.Tokens())
			if err != nil {
				t.Fatalf("iter %d, variant %s: tokens %v do not parse: %v", i, v, typ.Tokens(), err)
			}
			if !parsed.Equal(typ) {
				t.Fatalf("iter %d: round trip changed type: %v vs %v", i, parsed, typ)
			}
		}
		// Eklavya labels stay within the fixed vocabulary.
		master := FromDWARF(die, AllNames())
		label := ToEklavya(master)
		ok := false
		for _, l := range EklavyaLabels {
			if l == label {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("iter %d: Eklavya label %q outside vocabulary", i, label)
		}
	}
}

// TestQuickVariantApplyValid: Variant.Apply output always parses for the
// sequence languages.
func TestQuickVariantApplyValid(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 1000; i++ {
		master := randType(r, 5)
		for _, v := range []Variant{VariantAllNames, VariantLSW, VariantSimplified} {
			toks := v.Apply(master, func(string) bool { return r.Intn(2) == 0 })
			if _, err := Parse(toks); err != nil {
				t.Fatalf("variant %s tokens %v do not parse: %v", v, toks, err)
			}
		}
	}
}
