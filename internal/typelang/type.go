// Package typelang implements the high-level type language L_SW from
// Section 3 of the paper, its variants, and the conversion from DWARF type
// graphs to type-token sequences.
//
// Types are linear sequences of type tokens produced by the grammar of
// Figure 3:
//
//	type      ::= primitive primitive
//	            | pointer type | array type
//	            | const type
//	            | name name type
//	            | struct | class | union | enum
//	            | function
//	            | unknown
//	primitive ::= bool | int bits | uint bits | float bits | complex
//	            | cchar | wchar bits
//
// The set of describable types is infinite; each type is both a small AST
// (*Type) and a token sequence (Type.Tokens), which is what the
// sequence-to-sequence model predicts.
package typelang

import "fmt"

// Ctor is a type constructor of the grammar in Figure 3.
type Ctor int

// Type constructors.
const (
	CtorPrimitive Ctor = iota
	CtorPointer
	CtorArray
	CtorConst
	CtorName
	CtorStruct
	CtorClass
	CtorUnion
	CtorEnum
	CtorFunction
	CtorUnknown
)

var ctorNames = map[Ctor]string{
	CtorPrimitive: "primitive",
	CtorPointer:   "pointer",
	CtorArray:     "array",
	CtorConst:     "const",
	CtorName:      "name",
	CtorStruct:    "struct",
	CtorClass:     "class",
	CtorUnion:     "union",
	CtorEnum:      "enum",
	CtorFunction:  "function",
	CtorUnknown:   "unknown",
}

// String returns the constructor's token.
func (c Ctor) String() string {
	if n, ok := ctorNames[c]; ok {
		return n
	}
	return fmt.Sprintf("ctor(%d)", int(c))
}

// PrimKind classifies primitive types.
type PrimKind int

// Primitive kinds. Integers carry signedness explicitly (Section 3.2);
// plain C char is its own kind (cchar) distinct from int8/uint8.
const (
	PrimBool PrimKind = iota
	PrimInt
	PrimUint
	PrimFloat
	PrimComplex
	PrimCChar
	PrimWChar
)

var primNames = map[PrimKind]string{
	PrimBool:    "bool",
	PrimInt:     "int",
	PrimUint:    "uint",
	PrimFloat:   "float",
	PrimComplex: "complex",
	PrimCChar:   "cchar",
	PrimWChar:   "wchar",
}

// String returns the primitive kind's token.
func (k PrimKind) String() string {
	if n, ok := primNames[k]; ok {
		return n
	}
	return fmt.Sprintf("prim(%d)", int(k))
}

// hasBits reports whether the kind carries a bit width in the grammar.
func (k PrimKind) hasBits() bool {
	switch k {
	case PrimInt, PrimUint, PrimFloat, PrimWChar:
		return true
	}
	return false
}

// validBits reports whether bits is legal for the kind, per Figure 3:
// bits_int ∈ {8,16,32,64}, bits_float ∈ {32,64,128}, bits_wchar ∈ {16,32}.
func (k PrimKind) validBits(bits int) bool {
	switch k {
	case PrimInt, PrimUint:
		return bits == 8 || bits == 16 || bits == 32 || bits == 64
	case PrimFloat:
		return bits == 32 || bits == 64 || bits == 128
	case PrimWChar:
		return bits == 16 || bits == 32
	}
	return bits == 0
}

// Primitive is a fully resolved primitive type: an unambiguous,
// language-independent representation based on kind and bit width,
// normalizing the 16 underlying machine primitives (Section 3.2).
type Primitive struct {
	Kind PrimKind
	Bits int
}

// Type is a node of a type in the high-level type language. The linear
// token sequence is obtained with Tokens.
type Type struct {
	Ctor Ctor
	// Prim is set when Ctor == CtorPrimitive.
	Prim Primitive
	// Name is set when Ctor == CtorName (without quotes).
	Name string
	// Elem is the nested type for pointer, array, const, and name.
	Elem *Type
}

// Convenience constructors.

// Prim returns a primitive type.
func Prim(kind PrimKind, bits int) *Type {
	return &Type{Ctor: CtorPrimitive, Prim: Primitive{Kind: kind, Bits: bits}}
}

// Bool returns the boolean primitive type.
func Bool() *Type { return Prim(PrimBool, 0) }

// Int returns a signed integer primitive of the given width.
func Int(bits int) *Type { return Prim(PrimInt, bits) }

// Uint returns an unsigned integer primitive of the given width.
func Uint(bits int) *Type { return Prim(PrimUint, bits) }

// Float returns a floating-point primitive of the given width.
func Float(bits int) *Type { return Prim(PrimFloat, bits) }

// CChar returns the plain C character type.
func CChar() *Type { return Prim(PrimCChar, 0) }

// WChar returns a wide character type of the given width.
func WChar(bits int) *Type { return Prim(PrimWChar, bits) }

// Complex returns the C complex floating-point type.
func Complex() *Type { return Prim(PrimComplex, 0) }

// Pointer returns a pointer to elem.
func Pointer(elem *Type) *Type { return &Type{Ctor: CtorPointer, Elem: elem} }

// Array returns an array of elem.
func Array(elem *Type) *Type { return &Type{Ctor: CtorArray, Elem: elem} }

// Const returns a const-qualified elem.
func Const(elem *Type) *Type { return &Type{Ctor: CtorConst, Elem: elem} }

// Named returns elem annotated with a source-level name (typedef or
// aggregate name).
func Named(name string, elem *Type) *Type {
	return &Type{Ctor: CtorName, Name: name, Elem: elem}
}

// Struct returns the struct aggregate type.
func Struct() *Type { return &Type{Ctor: CtorStruct} }

// Class returns the class aggregate type.
func Class() *Type { return &Type{Ctor: CtorClass} }

// Union returns the union aggregate type.
func Union() *Type { return &Type{Ctor: CtorUnion} }

// Enum returns the enum aggregate type.
func Enum() *Type { return &Type{Ctor: CtorEnum} }

// Function returns the function type (for function pointers).
func Function() *Type { return &Type{Ctor: CtorFunction} }

// Unknown returns the uninformative top type.
func Unknown() *Type { return &Type{Ctor: CtorUnknown} }

// IsLeaf reports whether the constructor has no nested type.
func (t *Type) IsLeaf() bool {
	switch t.Ctor {
	case CtorPrimitive, CtorStruct, CtorClass, CtorUnion, CtorEnum, CtorFunction, CtorUnknown:
		return true
	}
	return false
}

// Depth returns the type's nesting depth: the number of nested type
// constructors below the outermost one. Primitive and other leaf types
// have depth 0; `pointer primitive float 64` has depth 1 (Figure 4).
func (t *Type) Depth() int {
	d := 0
	for !t.IsLeaf() && t.Elem != nil {
		d++
		t = t.Elem
	}
	return d
}

// Equal reports structural equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Ctor != o.Ctor || t.Prim != o.Prim || t.Name != o.Name {
		return false
	}
	if (t.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if t.Elem == nil {
		return true
	}
	return t.Elem.Equal(o.Elem)
}

// Clone returns a deep copy.
func (t *Type) Clone() *Type {
	if t == nil {
		return nil
	}
	c := *t
	c.Elem = t.Elem.Clone()
	return &c
}

// Validate checks that the type is well-formed per the grammar: leaf
// constructors carry no Elem, nested ones do, and primitive bit widths are
// legal.
func (t *Type) Validate() error {
	if t == nil {
		return fmt.Errorf("typelang: nil type")
	}
	if t.IsLeaf() {
		if t.Elem != nil {
			return fmt.Errorf("typelang: leaf constructor %s has nested type", t.Ctor)
		}
		if t.Ctor == CtorPrimitive && !t.Prim.Kind.validBits(t.Prim.Bits) {
			return fmt.Errorf("typelang: invalid bit width %d for %s", t.Prim.Bits, t.Prim.Kind)
		}
		return nil
	}
	if t.Elem == nil {
		return fmt.Errorf("typelang: constructor %s missing nested type", t.Ctor)
	}
	if t.Ctor == CtorName && t.Name == "" {
		return fmt.Errorf("typelang: name constructor with empty name")
	}
	return t.Elem.Validate()
}
