package typelang

import (
	"strings"

	"repro/internal/dwarf"
)

// ConvertOptions controls the DWARF → L_SW conversion, realizing the
// language variants of Section 3.7.
type ConvertOptions struct {
	// KeepNames enables the name constructor. If NameFilter is non-nil,
	// only names it accepts are kept ("common names", Section 3.6); a nil
	// filter keeps all names (the "All Names" variant).
	KeepNames  bool
	NameFilter func(string) bool
	// KeepConst enables the const constructor; when false, const
	// qualifiers are flattened away (Simplified variant).
	KeepConst bool
	// ClassDistinct keeps class distinct from struct; when false, classes
	// are represented as structs (Simplified variant).
	ClassDistinct bool
	// MaxDepth bounds the emitted nesting depth as a safety net on top of
	// cycle breaking. Zero means the default of 8.
	MaxDepth int
}

// LSW returns the options of the default language L_SNOWWHITE with the
// given common-name filter.
func LSW(nameFilter func(string) bool) ConvertOptions {
	return ConvertOptions{KeepNames: true, NameFilter: nameFilter, KeepConst: true, ClassDistinct: true}
}

// AllNames returns the options of the L_SW "All Names" variant.
func AllNames() ConvertOptions {
	return ConvertOptions{KeepNames: true, KeepConst: true, ClassDistinct: true}
}

// Simplified returns the options of the simplified L_SW variant: no names,
// no const, classes merged into structs.
func Simplified() ConvertOptions {
	return ConvertOptions{}
}

// FromDWARF converts a DWARF type DIE (the target of a DW_AT_type
// attribute) into a type of the high-level language. A nil DIE represents
// C's void and converts to unknown, so `void*` becomes `pointer unknown`
// (Section 3.5). The conversion breaks reference cycles, drops
// volatile/restrict qualifiers, maps C++ references to pointers, and
// applies the outermost-name rule (Section 3.6).
func FromDWARF(die *dwarf.DIE, opts ConvertOptions) *Type {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 8
	}
	c := converter{opts: opts, visited: make(map[*dwarf.DIE]bool)}
	t := c.convert(die, 0)
	t = filterNames(t, opts)
	t = dropInnerNames(t, false)
	return t
}

type converter struct {
	opts    ConvertOptions
	visited map[*dwarf.DIE]bool
}

func (c *converter) convert(die *dwarf.DIE, depth int) *Type {
	if die == nil {
		return Unknown()
	}
	if depth > c.opts.MaxDepth {
		return Unknown()
	}
	if c.visited[die] {
		// A back edge in the DWARF type graph: break the cycle so the
		// emitted token sequence is finite (Section 3.1).
		return Unknown()
	}
	c.visited[die] = true
	defer delete(c.visited, die)

	switch die.Tag {
	case dwarf.TagBaseType:
		return convertBase(die)

	case dwarf.TagPointerType, dwarf.TagReferenceType, dwarf.TagRvalueRefType:
		// C++ references convey little extra intuition, so they map to a
		// single pointer constructor (Section 3.4).
		return Pointer(c.convert(die.TypeRef(), depth+1))

	case dwarf.TagArrayType:
		return Array(c.convert(die.TypeRef(), depth+1))

	case dwarf.TagConstType:
		inner := c.convert(die.TypeRef(), depth+1)
		if !c.opts.KeepConst {
			return inner
		}
		return Const(inner)

	case dwarf.TagVolatileType, dwarf.TagRestrictType:
		// Optimization hints, unlikely to be recoverable: dropped
		// (Section 3.4).
		return c.convert(die.TypeRef(), depth+1)

	case dwarf.TagTypedef:
		inner := c.convert(die.TypeRef(), depth+1)
		if name := die.Name(); name != "" {
			return Named(name, inner)
		}
		return inner

	case dwarf.TagStructType:
		if die.Flag(dwarf.AttrDeclaration) {
			// Forward declaration: the layout is unknown (Section 3.5).
			return Unknown()
		}
		return c.aggregate(die, Struct())

	case dwarf.TagClassType:
		if die.Flag(dwarf.AttrDeclaration) {
			return Unknown()
		}
		if !c.opts.ClassDistinct {
			return c.aggregate(die, Struct())
		}
		return c.aggregate(die, Class())

	case dwarf.TagUnionType:
		if die.Flag(dwarf.AttrDeclaration) {
			return Unknown()
		}
		return c.aggregate(die, Union())

	case dwarf.TagEnumerationType:
		return c.aggregate(die, Enum())

	case dwarf.TagSubroutineType:
		return Function()

	case dwarf.TagUnspecifiedType:
		// decltype(nullptr) and friends (Section 3.5).
		return Unknown()
	}
	return Unknown()
}

// aggregate wraps a named aggregate in a name constructor; datatype names
// and typedef names map to the same constructor (Section 3.6).
func (c *converter) aggregate(die *dwarf.DIE, t *Type) *Type {
	if name := die.Name(); name != "" {
		return Named(name, t)
	}
	return t
}

// convertBase maps a DW_TAG_base_type to one of the 16 normalized
// primitive types (Section 3.2).
func convertBase(die *dwarf.DIE) *Type {
	enc, _ := die.Uint(dwarf.AttrEncoding)
	size, _ := die.Uint(dwarf.AttrByteSize)
	bits := int(size) * 8
	name := die.Name()
	switch dwarf.Encoding(enc) {
	case dwarf.EncBoolean:
		return Bool()
	case dwarf.EncFloat:
		if strings.Contains(name, "complex") {
			return Complex()
		}
		return Float(clampBits(bits, 32, 64, 128))
	case dwarf.EncComplexFloat:
		return Complex()
	case dwarf.EncSigned:
		return Int(clampBits(bits, 8, 16, 32, 64))
	case dwarf.EncUnsigned:
		return Uint(clampBits(bits, 8, 16, 32, 64))
	case dwarf.EncSignedChar:
		// Plain `char` is used for character data and is distinct from
		// the 8-bit integers (Section 3.2); explicitly signed chars are
		// just int 8.
		if name == "char" {
			return CChar()
		}
		return Int(8)
	case dwarf.EncUnsignedChar:
		if name == "char" {
			return CChar()
		}
		return Uint(8)
	case dwarf.EncUTF:
		return WChar(clampBits(bits, 16, 32))
	}
	return Unknown()
}

// clampBits returns bits if it is one of the allowed widths, otherwise the
// nearest allowed width (DWARF byte sizes from odd ABIs get normalized).
func clampBits(bits int, allowed ...int) int {
	best := allowed[0]
	bestDiff := diff(bits, best)
	for _, a := range allowed[1:] {
		if d := diff(bits, a); d < bestDiff {
			best, bestDiff = a, d
		}
	}
	return best
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// filterNames removes name constructors rejected by the options: all of
// them when names are disabled, or those failing the common-name filter.
func filterNames(t *Type, opts ConvertOptions) *Type {
	if t == nil {
		return nil
	}
	if t.Ctor == CtorName {
		keep := opts.KeepNames
		if keep && opts.NameFilter != nil {
			keep = opts.NameFilter(t.Name)
		}
		if !keep {
			return filterNames(t.Elem, opts)
		}
	}
	if !t.IsLeaf() {
		t = &Type{Ctor: t.Ctor, Prim: t.Prim, Name: t.Name, Elem: filterNames(t.Elem, opts)}
	}
	return t
}

// dropInnerNames keeps only the outermost name constructor in the
// sequence, which is most likely the user-visible name (Section 3.6).
func dropInnerNames(t *Type, sawName bool) *Type {
	if t == nil {
		return nil
	}
	if t.Ctor == CtorName {
		if sawName {
			return dropInnerNames(t.Elem, true)
		}
		return &Type{Ctor: CtorName, Name: t.Name, Elem: dropInnerNames(t.Elem, true)}
	}
	if !t.IsLeaf() {
		return &Type{Ctor: t.Ctor, Prim: t.Prim, Name: t.Name, Elem: dropInnerNames(t.Elem, sawName)}
	}
	return t
}

// PrimitiveEquivalentName reports whether a type name duplicates what the
// primitive representation already captures (e.g. uint32_t, int8_t); such
// names are filtered out of the common-name vocabulary (Section 3.6).
func PrimitiveEquivalentName(name string) bool {
	switch name {
	case "int8_t", "int16_t", "int32_t", "int64_t",
		"uint8_t", "uint16_t", "uint32_t", "uint64_t",
		"__int8_t", "__int16_t", "__int32_t", "__int64_t",
		"__uint8_t", "__uint16_t", "__uint32_t", "__uint64_t",
		"char8_t", "char16_t", "char32_t", "wchar_t", "wchar16_t",
		"float_t", "double_t", "_Bool", "bool":
		return true
	}
	return false
}
