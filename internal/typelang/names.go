package typelang

import (
	"sort"
	"strings"
)

// NameStats accumulates, per type name, how many packages use it and how
// many samples carry it, for building the common-name vocabulary
// (Section 3.6) and Table 3.
type NameStats struct {
	packages map[string]map[string]bool // name -> set of package ids
	samples  map[string]int             // name -> sample count
	pkgSeen  map[string]bool
}

// NewNameStats returns an empty accumulator.
func NewNameStats() *NameStats {
	return &NameStats{
		packages: make(map[string]map[string]bool),
		samples:  make(map[string]int),
		pkgSeen:  make(map[string]bool),
	}
}

// Add records every name constructor in t as occurring in pkg.
func (s *NameStats) Add(pkg string, t *Type) {
	s.pkgSeen[pkg] = true
	for ; t != nil; t = t.Elem {
		if t.Ctor == CtorName {
			set := s.packages[t.Name]
			if set == nil {
				set = make(map[string]bool)
				s.packages[t.Name] = set
			}
			set[pkg] = true
			s.samples[t.Name]++
		}
		if t.IsLeaf() {
			break
		}
	}
}

// NumPackages returns the number of distinct packages seen.
func (s *NameStats) NumPackages() int { return len(s.pkgSeen) }

// NameCount is one row of the name-frequency table (Table 3).
type NameCount struct {
	Name         string
	SampleCount  int
	PackageShare float64 // fraction of packages the name appears in
}

// Common returns the common-name vocabulary: names appearing in at least
// minPackageShare of all packages (the paper uses 1%), excluding names
// starting with an underscore (likely internal) and names that duplicate
// the primitive representation (Section 3.6). Rows are sorted by package
// share, descending.
func (s *NameStats) Common(minPackageShare float64) []NameCount {
	total := float64(len(s.pkgSeen))
	if total == 0 {
		return nil
	}
	var out []NameCount
	for name, pkgs := range s.packages {
		if strings.HasPrefix(name, "_") || PrimitiveEquivalentName(name) {
			continue
		}
		// A "common" name must be shared: at least the given fraction of
		// packages and never just a single package (which matters when
		// the corpus is much smaller than the paper's 4,081 packages).
		if len(pkgs) < 2 {
			continue
		}
		share := float64(len(pkgs)) / total
		if share < minPackageShare {
			continue
		}
		out = append(out, NameCount{Name: name, SampleCount: s.samples[name], PackageShare: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PackageShare != out[j].PackageShare {
			return out[i].PackageShare > out[j].PackageShare
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FilterFunc returns a membership predicate over the given vocabulary,
// suitable for ConvertOptions.NameFilter.
func FilterFunc(vocab []NameCount) func(string) bool {
	set := make(map[string]bool, len(vocab))
	for _, n := range vocab {
		set[n.Name] = true
	}
	return func(name string) bool { return set[name] }
}
