package typelang

// Variant identifies one of the evaluated type languages (Section 3.7 and
// Table 5).
type Variant int

// The four evaluated type languages.
const (
	// VariantLSW is the default language L_SNOWWHITE: names restricted to
	// the common-name vocabulary, const, class/struct distinction.
	VariantLSW Variant = iota
	// VariantAllNames is L_SW without restricting the name vocabulary.
	VariantAllNames
	// VariantSimplified removes const, class, and name from the grammar.
	VariantSimplified
	// VariantEklavya is the 7-label fixed set of Eklavya (Chua et al.,
	// USENIX Security 2017), used as the least-expressive comparison.
	VariantEklavya
)

var variantNames = map[Variant]string{
	VariantLSW:        "Lsw",
	VariantAllNames:   "Lsw, All Names",
	VariantSimplified: "Lsw, Simplified",
	VariantEklavya:    "Leklavya",
}

// String returns the variant's display name as used in the paper's tables.
func (v Variant) String() string { return variantNames[v] }

// Variants lists all evaluated language variants in Table 4/5 order.
func Variants() []Variant {
	return []Variant{VariantAllNames, VariantLSW, VariantSimplified, VariantEklavya}
}

// Options returns the conversion options realizing the variant.
// commonNames is only consulted for VariantLSW; it may be nil during
// vocabulary extraction.
func (v Variant) Options(commonNames func(string) bool) ConvertOptions {
	switch v {
	case VariantLSW:
		return LSW(commonNames)
	case VariantAllNames:
		return AllNames()
	case VariantSimplified:
		return Simplified()
	case VariantEklavya:
		// Conversion runs with the simplified options; ToEklavya collapses
		// the result to the fixed label set afterwards.
		return Simplified()
	}
	return Simplified()
}

// EklavyaLabels is the fixed 7-type vocabulary of Eklavya: no pointee
// types, no signedness or width on integers, booleans mapped to int,
// arrays mapped to pointers.
var EklavyaLabels = []string{"int", "char", "float", "pointer", "enum", "union", "struct"}

// ToEklavya collapses a type of our language onto the Eklavya label set.
func ToEklavya(t *Type) string {
	for t != nil && !t.IsLeaf() {
		switch t.Ctor {
		case CtorPointer, CtorArray:
			// Arrays map to pointers; pointee types are not tracked.
			return "pointer"
		}
		t = t.Elem
	}
	if t == nil {
		return "int"
	}
	switch t.Ctor {
	case CtorPrimitive:
		switch t.Prim.Kind {
		case PrimFloat, PrimComplex:
			return "float"
		case PrimCChar, PrimWChar:
			return "char"
		default:
			// bool and both integer signs collapse to int.
			return "int"
		}
	case CtorEnum:
		return "enum"
	case CtorUnion:
		return "union"
	case CtorStruct, CtorClass:
		return "struct"
	case CtorFunction:
		return "pointer"
	}
	return "int"
}

// Apply converts a DWARF-derived L_SW "All Names" master type into the
// variant's representation, returning its token sequence. Conversion is
// defined on the richest variant so a dataset can be re-expressed in every
// language without re-reading DWARF (Section 6.2, "we re-extract samples
// ... with different configuration settings").
func (v Variant) Apply(master *Type, commonNames func(string) bool) []string {
	switch v {
	case VariantAllNames:
		return master.Tokens()
	case VariantLSW:
		t := filterNames(master, ConvertOptions{KeepNames: true, NameFilter: commonNames})
		return dropInnerNames(t, false).Tokens()
	case VariantSimplified:
		return simplify(master).Tokens()
	case VariantEklavya:
		return []string{ToEklavya(master)}
	}
	return master.Tokens()
}

// simplify strips names and const and merges class into struct.
func simplify(t *Type) *Type {
	if t == nil {
		return nil
	}
	switch t.Ctor {
	case CtorName, CtorConst:
		return simplify(t.Elem)
	case CtorClass:
		return Struct()
	}
	if t.IsLeaf() {
		return t
	}
	return &Type{Ctor: t.Ctor, Elem: simplify(t.Elem)}
}

// FeatureRow is one row of Table 1: which type-language features a binary
// type prediction approach supports.
type FeatureRow struct {
	Approach     string
	NumTypes     string // reported |L|
	Structure    string
	IntChar      bool
	Bool         bool
	IntSign      bool
	PrimSize     string // "yes", "no", or "C names"
	Float        bool
	Complex      bool
	Array        bool
	Pointer      bool
	Struct       bool
	Const        bool
	PointeeType  string
	Names        string
	LangSpecific string
}

// FeatureMatrix reproduces Table 1 of the paper: a comparison of the type
// languages of learning-based binary type prediction approaches.
func FeatureMatrix() []FeatureRow {
	return []FeatureRow{
		{"Eklavya", "7", "Fixed set", true, false, false, "no", true, false, false, true, false, false, "none", "none", "none"},
		{"Debin", "17", "Fixed set", true, true, false, "C names", false, false, true, true, true, false, "none", "none", "none"},
		{"TypeMiner", "11", "Fixed set", true, true, true, "C names", false, false, false, true, true, false, "struct,char,func", "none", "none"},
		{"StateFormer", "35", "Fixed set", true, false, true, "yes", true, false, true, true, true, false, "single level", "none", "none"},
		{"SnowWhite", "inf", "Sequence", true, true, true, "yes", true, true, true, true, true, true, "recursive", "top-k", "class"},
		{"Full DWARF", "inf", "Full graph", true, true, true, "yes", true, true, true, true, true, true, "recursive", "all", "all"},
	}
}
