package extract

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/dwarf"
	"repro/internal/wasm"
)

const src = `
extern int printf(const char *fmt, ...);

void amd_control(double Control[]) {
	double alpha;
	int aggressive;
	if (Control != (double *) NULL) {
		alpha = Control[0];
		aggressive = Control[1] != 0;
	} else {
		alpha = 10.0;
		aggressive = 1;
	}
	if (alpha < 0) {
		printf("no rows treated as dense");
	}
	if (aggressive) { printf("x"); }
}

int add3(int a, long long b, float c) {
	if (a > 0) { return a + (int) b; }
	return (int) c;
}

void noret(int unused_param) { int x = 1; x = x * 2; }
`

func compileAndExtract(t *testing.T, opts Options) []Sample {
	t.Helper()
	obj, err := cc.Compile(src, cc.Options{FileName: "t.c", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := FromBinary("pkg1", "t.o", obj.Binary, opts)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestExtractSamples(t *testing.T) {
	samples := compileAndExtract(t, Options{})
	// amd_control: 1 param, no return sample (void).
	// add3: 3 params + 1 return. noret: 1 param.
	if len(samples) != 6 {
		for _, s := range samples {
			t.Logf("sample: %s %s", s.Func, s.Elem)
		}
		t.Fatalf("extracted %d samples, want 6", len(samples))
	}
	byKey := map[string]Sample{}
	for _, s := range samples {
		byKey[s.Func+"/"+s.Elem.String()] = s
	}

	ctrl, ok := byKey["amd_control/param0"]
	if !ok {
		t.Fatal("missing amd_control/param0")
	}
	if ctrl.LowType != "i32" {
		t.Errorf("low type = %q", ctrl.LowType)
	}
	if ctrl.Master.String() != "pointer primitive float 64" {
		t.Errorf("master type = %q", ctrl.Master)
	}
	// Input begins with the low type and <begin> (Section 4.1).
	if ctrl.Input[0] != "i32" || ctrl.Input[1] != "<begin>" {
		t.Errorf("input prefix = %v", ctrl.Input[:2])
	}
	joined := strings.Join(ctrl.Input, " ")
	if !strings.Contains(joined, "local.get <param>") {
		t.Errorf("param uses not marked: %s", joined)
	}
	if !strings.Contains(joined, "f64.load") {
		t.Errorf("window misses type-revealing load: %s", joined)
	}
	// Other locals keep their numeric indices.
	if !strings.Contains(joined, ";") {
		t.Errorf("no instruction delimiters: %s", joined)
	}

	ret, ok := byKey["add3/return"]
	if !ok {
		t.Fatal("missing add3/return")
	}
	if ret.LowType != "i32" || ret.Master.String() != "primitive int 32" {
		t.Errorf("return sample = %q %q", ret.LowType, ret.Master)
	}
	retJoined := strings.Join(ret.Input, " ")
	if !strings.Contains(retJoined, "return") {
		t.Errorf("return window misses return instr: %s", retJoined)
	}

	b := byKey["add3/param1"]
	if b.LowType != "i64" || b.Master.String() != "primitive int 64" {
		t.Errorf("param1 = %q %q", b.LowType, b.Master)
	}

	// Unused parameter falls back to the function prefix window.
	if u, ok := byKey["noret/param0"]; !ok || len(u.Input) < 3 {
		t.Errorf("unused param sample missing or empty: %v", u.Input)
	}
}

func TestOmitLowType(t *testing.T) {
	samples := compileAndExtract(t, Options{OmitLowType: true})
	for _, s := range samples {
		if s.Input[0] != "<begin>" {
			t.Fatalf("expected <begin> first, got %v", s.Input[:2])
		}
	}
}

func TestMaxTokens(t *testing.T) {
	samples := compileAndExtract(t, Options{MaxTokens: 10})
	for _, s := range samples {
		if len(s.Input) > 10 {
			t.Fatalf("input has %d tokens, cap 10", len(s.Input))
		}
	}
}

func TestWindowing(t *testing.T) {
	// A function long enough that windows matter: param used at the end.
	var sb strings.Builder
	sb.WriteString("double tail(int filler, double *p) {\n\tint x = filler;\n")
	for i := 0; i < 80; i++ {
		sb.WriteString("\tx = x * 3 + 1;\n")
	}
	sb.WriteString("\treturn p[0];\n}\n")
	obj, err := cc.Compile(sb.String(), cc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := FromBinary("p", "b", obj.Binary, Options{WindowSize: 13})
	if err != nil {
		t.Fatal(err)
	}
	var pSample *Sample
	for i := range samples {
		if samples[i].Elem.String() == "param1" {
			pSample = &samples[i]
		}
	}
	if pSample == nil {
		t.Fatal("no param1 sample")
	}
	// The window must include the f64.load near the use but exclude the
	// long multiplication chain far from it.
	joined := strings.Join(pSample.Input, " ")
	if !strings.Contains(joined, "f64.load") {
		t.Errorf("window misses f64.load: %s", joined)
	}
	if n := strings.Count(joined, "i32.mul"); n > 8 {
		t.Errorf("window too wide: %d i32.mul tokens", n)
	}
}

func TestWindowMerging(t *testing.T) {
	ws := mergeWindows([]window{{5, 10}, {0, 6}, {20, 25}, {8, 12}})
	if len(ws) != 2 || ws[0] != (window{0, 12}) || ws[1] != (window{20, 25}) {
		t.Errorf("mergeWindows = %v", ws)
	}
	if got := mergeWindows(nil); got != nil {
		t.Errorf("mergeWindows(nil) = %v", got)
	}
}

func TestSkipsSignatureMismatch(t *testing.T) {
	// Build a module whose DWARF claims 2 params but wasm has 1: no
	// param samples, but the return sample remains.
	obj, err := cc.Compile("int f(int a) { return a; }", cc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	secs, err := dwarf.Extract(obj.Module)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		t.Fatal(err)
	}
	sub := cu.FindAll(dwarf.TagSubprogram)[0]
	sub.AddChild(dwarf.NewFormalParameter("ghost", nil))
	secs2, err := dwarf.Write(cu)
	if err != nil {
		t.Fatal(err)
	}
	dwarf.Embed(obj.Module, secs2)
	bin, _, err := wasm.Encode(obj.Module)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := FromBinary("p", "b", bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if !s.Elem.IsReturn() {
			t.Errorf("unexpected param sample despite mismatch: %v", s.Elem)
		}
	}
	if len(samples) != 1 {
		t.Errorf("got %d samples, want 1 (return only)", len(samples))
	}
}

func TestNoDebugInfoErrors(t *testing.T) {
	obj, err := cc.Compile("int f(int a) { return a; }", cc.Options{Debug: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBinary("p", "b", obj.Binary, Options{}); err == nil {
		t.Error("extraction from a stripped binary should fail")
	}
}

func TestElementString(t *testing.T) {
	if (Element{Param: 0}).String() != "param0" || !(Element{Param: -1}).IsReturn() {
		t.Error("Element semantics wrong")
	}
}
