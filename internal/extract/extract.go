// Package extract turns WebAssembly object files with DWARF into the
// labeled (instruction tokens, type tokens) samples the model trains on,
// implementing Sections 4.1 and 5 of the paper: function↔DWARF matching by
// code offset, per-parameter and return samples, `<param>` marking,
// instruction-window extraction, and the low-level-type `<begin>` prefix.
package extract

import (
	"fmt"
	"sort"

	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// Element identifies which signature element a sample predicts.
type Element struct {
	// Param is the zero-based parameter index; -1 means the return value.
	Param int
}

// IsReturn reports whether the sample targets the return type.
func (e Element) IsReturn() bool { return e.Param < 0 }

// String renders "param0".."paramN" or "return".
func (e Element) String() string {
	if e.IsReturn() {
		return "return"
	}
	return fmt.Sprintf("param%d", e.Param)
}

// Sample is one labeled type-prediction sample.
type Sample struct {
	Pkg    string
	Binary string
	Func   string
	Elem   Element
	// LowType is the WebAssembly type of the element ("i32", ...).
	LowType string
	// Input is the instruction-token sequence presented to the model.
	Input []string
	// Master is the type in the richest language (L_SW All Names); every
	// variant's label derives from it via Variant.Apply.
	Master *typelang.Type
}

// Options configures extraction.
type Options struct {
	// WindowSize is the instruction window around parameter uses
	// (default 21: 10 left, 10 right, as in the paper).
	WindowSize int
	// ReturnWindow is the window size before return instructions
	// (default 20).
	ReturnWindow int
	// MaxTokens truncates the final input sequence (paper: 500).
	MaxTokens int
	// OmitLowType drops the low-level type prefix (the Table 5 ablation).
	OmitLowType bool
}

// DefaultOptions mirrors the paper's extraction parameters.
func DefaultOptions() Options {
	return Options{WindowSize: 21, ReturnWindow: 20, MaxTokens: 500}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.WindowSize == 0 {
		o.WindowSize = d.WindowSize
	}
	if o.ReturnWindow == 0 {
		o.ReturnWindow = d.ReturnWindow
	}
	if o.MaxTokens == 0 {
		o.MaxTokens = d.MaxTokens
	}
	return o
}

// FromBinary extracts all samples from one object file.
func FromBinary(pkg, name string, bin []byte, opts Options) ([]Sample, error) {
	d, err := wasm.Decode(bin)
	if err != nil {
		return nil, fmt.Errorf("extract: %s: %w", name, err)
	}
	return FromModule(pkg, name, d, opts)
}

// FromModule extracts all samples from a decoded module.
func FromModule(pkg, name string, d *wasm.Decoded, opts Options) ([]Sample, error) {
	opts = opts.withDefaults()
	m := d.Module
	secs, err := dwarf.Extract(m)
	if err != nil {
		return nil, fmt.Errorf("extract: %s: %w", name, err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		return nil, fmt.Errorf("extract: %s: %w", name, err)
	}

	// Match subprograms to functions via DW_AT_low_pc == code offset.
	funcByOffset := make(map[uint32]int, len(d.CodeOffsets))
	for i, off := range d.CodeOffsets {
		funcByOffset[off] = i
	}

	var out []Sample
	for _, sub := range cu.FindAll(dwarf.TagSubprogram) {
		pc, ok := sub.Uint(dwarf.AttrLowPC)
		if !ok {
			continue
		}
		fi, ok := funcByOffset[uint32(pc)]
		if !ok {
			continue // optimized-out or external function
		}
		fn := &m.Funcs[fi]
		sig := wasm.FuncType{}
		if int(fn.TypeIdx) < len(m.Types) {
			sig = m.Types[fn.TypeIdx]
		}
		params := sub.FindAll(dwarf.TagFormalParameter)

		// Only extract parameter samples when the DWARF and wasm
		// signatures agree on the parameter count (Section 5).
		if len(params) == len(sig.Params) {
			for pi, pdie := range params {
				master := typelang.FromDWARF(pdie.TypeRef(), typelang.AllNames())
				input := paramInput(fn, pi, sig.Params[pi], opts)
				out = append(out, Sample{
					Pkg: pkg, Binary: name, Func: sub.Name(),
					Elem:    Element{Param: pi},
					LowType: sig.Params[pi].String(),
					Input:   input,
					Master:  master,
				})
			}
		}
		// Return sample when DWARF has a non-void type and wasm returns a
		// value.
		if ret := sub.TypeRef(); ret != nil && len(sig.Results) == 1 {
			master := typelang.FromDWARF(ret, typelang.AllNames())
			input := returnInput(fn, sig.Results[0], opts)
			out = append(out, Sample{
				Pkg: pkg, Binary: name, Func: sub.Name(),
				Elem:    Element{Param: -1},
				LowType: sig.Results[0].String(),
				Input:   input,
				Master:  master,
			})
		}
	}
	return out, nil
}

// InputForParam builds the model input sequence for one parameter of a
// function, without needing DWARF — the prediction-time path on stripped
// binaries (Figure 2, bottom).
func InputForParam(fn *wasm.Function, paramIdx int, low wasm.ValType, opts Options) []string {
	return paramInput(fn, paramIdx, low, opts.withDefaults())
}

// InputForReturn builds the model input sequence for a function's return
// value, without needing DWARF.
func InputForReturn(fn *wasm.Function, low wasm.ValType, opts Options) []string {
	return returnInput(fn, low, opts.withDefaults())
}

// instrTokens renders one instruction's tokens, replacing the index of the
// target parameter in local.get/set/tee with the special <param> token.
func instrTokens(in wasm.Instr, paramIdx int) []string {
	switch in.Op {
	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		if paramIdx >= 0 && in.Imm == int64(paramIdx) {
			return []string{in.Op.Name(), "<param>"}
		}
	}
	return in.Tokens()
}

// usesParam reports whether the instruction accesses the parameter.
func usesParam(in wasm.Instr, paramIdx int) bool {
	switch in.Op {
	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		return in.Imm == int64(paramIdx)
	}
	return false
}

// window is a half-open instruction index range.
type window struct{ lo, hi int }

// mergeWindows sorts and merges overlapping windows.
func mergeWindows(ws []window) []window {
	if len(ws) == 0 {
		return nil
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].lo < ws[j].lo })
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.lo <= last.hi {
			if w.hi > last.hi {
				last.hi = w.hi
			}
		} else {
			out = append(out, w)
		}
	}
	return out
}

// renderWindows flattens the selected windows into tokens, delimiting
// instructions with ";" and windows with "<window>".
func renderWindows(body []wasm.Instr, ws []window, paramIdx int) []string {
	var out []string
	for wi, w := range ws {
		if wi > 0 {
			out = append(out, "<window>")
		}
		for i := w.lo; i < w.hi; i++ {
			if i > w.lo {
				out = append(out, ";")
			}
			out = append(out, instrTokens(body[i], paramIdx)...)
		}
	}
	return out
}

// paramInput builds the model input for a parameter sample: the low-level
// type, <begin>, then windows around every instruction using the
// parameter.
func paramInput(fn *wasm.Function, paramIdx int, low wasm.ValType, opts Options) []string {
	var ws []window
	half := opts.WindowSize / 2
	for i, in := range fn.Body {
		if usesParam(in, paramIdx) {
			lo, hi := i-half, i+half+1
			if lo < 0 {
				lo = 0
			}
			if hi > len(fn.Body) {
				hi = len(fn.Body)
			}
			ws = append(ws, window{lo, hi})
		}
	}
	if len(ws) == 0 {
		// Unused parameter: fall back to the function prefix.
		hi := opts.WindowSize
		if hi > len(fn.Body) {
			hi = len(fn.Body)
		}
		ws = []window{{0, hi}}
	}
	ws = mergeWindows(ws)
	toks := renderWindows(fn.Body, ws, paramIdx)
	return finish(low, toks, opts)
}

// returnInput builds the model input for a return sample: windows of
// instructions ending in each return instruction, plus the function tail
// (the implicit return).
func returnInput(fn *wasm.Function, low wasm.ValType, opts Options) []string {
	var ws []window
	for i, in := range fn.Body {
		if in.Op == wasm.OpReturn {
			lo := i + 1 - opts.ReturnWindow
			if lo < 0 {
				lo = 0
			}
			ws = append(ws, window{lo, i + 1})
		}
	}
	if len(ws) == 0 {
		lo := len(fn.Body) - opts.ReturnWindow
		if lo < 0 {
			lo = 0
		}
		ws = []window{{lo, len(fn.Body)}}
	}
	ws = mergeWindows(ws)
	toks := renderWindows(fn.Body, ws, -1)
	return finish(low, toks, opts)
}

// finish prepends the low-level type and <begin> marker and truncates.
func finish(low wasm.ValType, toks []string, opts Options) []string {
	var out []string
	if !opts.OmitLowType {
		out = append(out, low.String())
	}
	out = append(out, "<begin>")
	out = append(out, toks...)
	if len(out) > opts.MaxTokens {
		out = out[:opts.MaxTokens]
	}
	return out
}
