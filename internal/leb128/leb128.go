// Package leb128 implements the Little Endian Base 128 variable-length
// integer encoding used throughout the WebAssembly binary format and DWARF.
package leb128

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned when a varint does not fit the requested width.
var ErrOverflow = errors.New("leb128: integer overflow")

// ErrTruncated is returned when the input ends in the middle of a varint.
var ErrTruncated = errors.New("leb128: truncated input")

// AppendUint appends the unsigned LEB128 encoding of v to dst.
func AppendUint(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendInt appends the signed LEB128 encoding of v to dst.
func AppendInt(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// Uint decodes an unsigned LEB128 integer of at most maxBits (32 or 64)
// from p. It returns the value and the number of bytes consumed.
func Uint(p []byte, maxBits uint) (uint64, int, error) {
	var v uint64
	var shift uint
	maxBytes := int(maxBits+6) / 7
	for i := 0; i < len(p); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("%w: encoding longer than %d bytes", ErrOverflow, maxBytes)
		}
		b := p[i]
		if shift >= maxBits {
			// Only low bits of the final byte may be set.
			if b&0x80 != 0 || uint64(b)<<shift>>shift != uint64(b) {
				return 0, 0, fmt.Errorf("%w: more than %d bits", ErrOverflow, maxBits)
			}
		}
		if shift < 64 {
			v |= uint64(b&0x7f) << shift
		} else if b&0x7f != 0 {
			return 0, 0, fmt.Errorf("%w: more than %d bits", ErrOverflow, maxBits)
		}
		if b&0x80 == 0 {
			if maxBits < 64 && v>>maxBits != 0 {
				return 0, 0, fmt.Errorf("%w: more than %d bits", ErrOverflow, maxBits)
			}
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// Int decodes a signed LEB128 integer of at most maxBits (32 or 64) from p.
// It returns the value and the number of bytes consumed.
func Int(p []byte, maxBits uint) (int64, int, error) {
	var v int64
	var shift uint
	maxBytes := int(maxBits+6) / 7
	for i := 0; i < len(p); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("%w: encoding longer than %d bytes", ErrOverflow, maxBytes)
		}
		b := p[i]
		if shift < 64 {
			v |= int64(b&0x7f) << shift
		}
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			if maxBits < 64 {
				min := int64(-1) << (maxBits - 1)
				max := int64(1)<<(maxBits-1) - 1
				if v < min || v > max {
					return 0, 0, fmt.Errorf("%w: value %d outside int%d", ErrOverflow, v, maxBits)
				}
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, ErrTruncated
}

// UintLen reports the number of bytes AppendUint would emit for v.
func UintLen(v uint64) int {
	n := 1
	for v >>= 7; v != 0; v >>= 7 {
		n++
	}
	return n
}
