// Native fuzz target for the LEB128 codec, the innermost primitive of
// both the WebAssembly and DWARF decoders. Run with:
//
//	go test -fuzz=FuzzRoundTrip ./internal/leb128
package leb128

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzSeedValues cover the encoding's boundary shapes: one-byte values,
// continuation-bit edges (7-bit multiples), sign-bit edges for the
// signed form, and the width extremes.
var fuzzSeedValues = []uint64{
	0, 1, 63, 64, 127, 128, 16383, 16384,
	1 << 31, 1<<32 - 1, 1 << 32, 1<<63 - 1, 1 << 63, math.MaxUint64,
}

// FuzzRoundTrip checks the codec's two invariants on arbitrary inputs:
//
//  1. Round trip: any value encodes to bytes that decode back to the
//     same value, consuming exactly the encoded length, for both the
//     unsigned and signed forms at both supported widths.
//  2. Canonical length: decoding rejects over-long encodings — a varint
//     padded past maxBytes = (maxBits+6)/7 must return ErrOverflow, not
//     a value (redundant 0x80 continuations are how smuggled bytes hide
//     in malformed binaries).
func FuzzRoundTrip(f *testing.F) {
	for _, v := range fuzzSeedValues {
		f.Add(v, byte(0))
	}
	f.Fuzz(func(t *testing.T, v uint64, pad byte) {
		// Unsigned round trip at 64 bits, with trailing garbage ignored.
		enc := AppendUint(nil, v)
		got, n, err := Uint(append(enc, pad), 64)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("Uint(AppendUint(%d)) = (%d, %d, %v), want (%d, %d, nil)", v, got, n, err, v, len(enc))
		}
		if n != UintLen(v) {
			t.Fatalf("UintLen(%d) = %d, encoder emitted %d bytes", v, UintLen(v), n)
		}

		// Signed round trip of the same bit pattern at 64 bits.
		sv := int64(v)
		senc := AppendInt(nil, sv)
		sgot, sn, err := Int(append(senc, pad), 64)
		if err != nil || sgot != sv || sn != len(senc) {
			t.Fatalf("Int(AppendInt(%d)) = (%d, %d, %v), want (%d, %d, nil)", sv, sgot, sn, err, sv, len(senc))
		}

		// 32-bit round trip when the value fits the narrower width.
		if v <= math.MaxUint32 {
			if got, n, err := Uint(enc, 32); err != nil || got != v || n != len(enc) {
				t.Fatalf("Uint(%d, 32) = (%d, %d, %v)", v, got, n, err)
			}
		}
		if sv >= math.MinInt32 && sv <= math.MaxInt32 {
			if got, n, err := Int(senc, 32); err != nil || got != sv || n != len(senc) {
				t.Fatalf("Int(%d, 32) = (%d, %d, %v)", sv, got, n, err)
			}
		}

		// Over-long encodings must be rejected: keep the continuation bit
		// going with zero-payload bytes past the width's maxBytes.
		overlong := bytes.TrimSuffix(enc, enc[len(enc)-1:])
		overlong = append(overlong, enc[len(enc)-1]|0x80)
		for len(overlong) < 11 {
			overlong = append(overlong, 0x80)
		}
		overlong = append(overlong, 0)
		if _, _, err := Uint(overlong, 64); !errors.Is(err, ErrOverflow) {
			t.Fatalf("Uint accepted %d-byte over-long encoding of %d: %v", len(overlong), v, err)
		}
		if _, _, err := Int(overlong, 64); !errors.Is(err, ErrOverflow) {
			t.Fatalf("Int accepted %d-byte over-long encoding of %d: %v", len(overlong), v, err)
		}

		// A lone continuation byte stream is truncated input.
		if _, _, err := Uint(enc[:len(enc)-1], 64); len(enc) > 1 && !errors.Is(err, ErrTruncated) {
			t.Fatalf("Uint on truncated input: %v, want ErrTruncated", err)
		}
	})
}
