package leb128

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 255, 256, 624485, math.MaxUint32, math.MaxUint64}
	for _, v := range cases {
		enc := AppendUint(nil, v)
		got, n, err := Uint(enc, 64)
		if err != nil {
			t.Fatalf("Uint(%x): %v", enc, err)
		}
		if got != v || n != len(enc) {
			t.Errorf("Uint(%x) = %d,%d; want %d,%d", enc, got, n, v, len(enc))
		}
		if UintLen(v) != len(enc) {
			t.Errorf("UintLen(%d) = %d; want %d", v, UintLen(v), len(enc))
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, 64, -64, -65, 127, 128, -128, -123456, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		enc := AppendInt(nil, v)
		got, n, err := Int(enc, 64)
		if err != nil {
			t.Fatalf("Int(%x): %v", enc, err)
		}
		if got != v || n != len(enc) {
			t.Errorf("Int(%x) = %d,%d; want %d,%d", enc, got, n, v, len(enc))
		}
	}
}

func TestKnownEncodings(t *testing.T) {
	// Examples from the DWARF spec.
	if got := AppendUint(nil, 624485); !bytes.Equal(got, []byte{0xe5, 0x8e, 0x26}) {
		t.Errorf("AppendUint(624485) = %x", got)
	}
	if got := AppendInt(nil, -123456); !bytes.Equal(got, []byte{0xc0, 0xbb, 0x78}) {
		t.Errorf("AppendInt(-123456) = %x", got)
	}
}

func TestUint32Bounds(t *testing.T) {
	if _, _, err := Uint(AppendUint(nil, math.MaxUint32), 32); err != nil {
		t.Errorf("MaxUint32 should fit in 32 bits: %v", err)
	}
	if _, _, err := Uint(AppendUint(nil, math.MaxUint32+1), 32); !errors.Is(err, ErrOverflow) {
		t.Errorf("MaxUint32+1 in 32 bits: got %v, want overflow", err)
	}
}

func TestInt32Bounds(t *testing.T) {
	if _, _, err := Int(AppendInt(nil, math.MinInt32), 32); err != nil {
		t.Errorf("MinInt32 should fit: %v", err)
	}
	if _, _, err := Int(AppendInt(nil, math.MinInt32-1), 32); !errors.Is(err, ErrOverflow) {
		t.Errorf("MinInt32-1: got %v, want overflow", err)
	}
	if _, _, err := Int(AppendInt(nil, math.MaxInt32+1), 32); !errors.Is(err, ErrOverflow) {
		t.Errorf("MaxInt32+1: got %v, want overflow", err)
	}
}

func TestTruncated(t *testing.T) {
	if _, _, err := Uint([]byte{0x80}, 32); !errors.Is(err, ErrTruncated) {
		t.Errorf("Uint(0x80): got %v, want truncated", err)
	}
	if _, _, err := Int([]byte{0xff, 0xff}, 64); !errors.Is(err, ErrTruncated) {
		t.Errorf("Int: got %v, want truncated", err)
	}
	if _, _, err := Uint(nil, 32); !errors.Is(err, ErrTruncated) {
		t.Errorf("Uint(nil): got %v, want truncated", err)
	}
}

func TestOverlongRejected(t *testing.T) {
	// 6-byte encoding of a u32 is invalid even if the value fits.
	overlong := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x00}
	if _, _, err := Uint(overlong, 32); !errors.Is(err, ErrOverflow) {
		t.Errorf("overlong u32: got %v, want overflow", err)
	}
}

func TestQuickUint(t *testing.T) {
	f := func(v uint64) bool {
		got, n, err := Uint(AppendUint(nil, v), 64)
		return err == nil && got == v && n == UintLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInt(t *testing.T) {
	f := func(v int64) bool {
		got, _, err := Int(AppendInt(nil, v), 64)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTrailingBytesIgnored(t *testing.T) {
	f := func(v uint32, trailer []byte) bool {
		enc := AppendUint(nil, uint64(v))
		got, n, err := Uint(append(enc, trailer...), 32)
		return err == nil && got == uint64(v) && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
