// Package nn provides the neural-network layers and optimizer of the
// SnowWhite model: embeddings, linear layers, LSTM cells, dropout, and
// Adam with gradient clipping — all on top of the internal/ad autodiff
// engine.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ad"
)

// Params collects trainable parameters for the optimizer and
// serialization.
type Params struct {
	names []string
	vals  []*ad.V
}

// Add registers a parameter under a unique name.
func (p *Params) Add(name string, v *ad.V) *ad.V {
	for _, n := range p.names {
		if n == name {
			panic(fmt.Sprintf("nn: duplicate parameter %q", name))
		}
	}
	p.names = append(p.names, name)
	p.vals = append(p.vals, v)
	return v
}

// All returns the registered parameters.
func (p *Params) All() []*ad.V { return p.vals }

// Names returns the registered parameter names in registration order —
// the order that also fixes the serialized weight layout.
func (p *Params) Names() []string { return append([]string(nil), p.names...) }

// Count returns the total number of scalar parameters. Elems counts
// whichever storage a parameter carries, so models loaded straight into
// float32 weights (quantized f32 serving) report the same count as
// their float64 twins.
func (p *Params) Count() int {
	n := 0
	for _, v := range p.vals {
		n += v.Elems()
	}
	return n
}

// ZeroGrad clears all gradients.
func (p *Params) ZeroGrad() {
	for _, v := range p.vals {
		v.ZeroGrad()
	}
}

// ReduceGrads overwrites p's gradients with the scaled ordered sum of
// the shard parameter sets' gradients: for every parameter element,
// G = (shard0.G + shard1.G + ... + shardN.G) * scale, summed in
// ascending shard order. Because the bracketing is fixed by shard index
// — never by which worker finished first — the reduction is bitwise
// deterministic at any worker count; scale is typically 1/totalTokens,
// turning per-shard summed losses into the batch-mean gradient. Shard
// gradients are drained (zeroed) as they are read, leaving the shard
// sets ready for the next step. Shards must mirror p's registration
// order and shapes (shadow models built from the same config do).
func (p *Params) ReduceGrads(shards []*Params, scale float64) {
	for si, s := range shards {
		if len(s.vals) != len(p.vals) {
			panic(fmt.Sprintf("nn: ReduceGrads shard %d has %d parameters, want %d", si, len(s.vals), len(p.vals)))
		}
	}
	for pi, v := range p.vals {
		for si, s := range shards {
			sv := s.vals[pi]
			if len(sv.G) != len(v.G) {
				panic(fmt.Sprintf("nn: ReduceGrads shard %d parameter %q has %d gradient elements, want %d",
					si, p.names[pi], len(sv.G), len(v.G)))
			}
		}
		for i := range v.G {
			sum := 0.0
			for _, s := range shards {
				g := &s.vals[pi].G[i]
				sum += *g
				*g = 0
			}
			v.G[i] = sum * scale
		}
	}
}

// xavier initializes a matrix with Glorot-uniform values.
func xavier(r *rand.Rand, rows, cols int) *ad.V {
	v := ad.New(rows, cols)
	limit := math.Sqrt(6.0 / float64(rows+cols))
	for i := range v.W {
		v.W[i] = (r.Float64()*2 - 1) * limit
	}
	return v
}

// Embedding maps token ids to dense vectors.
type Embedding struct {
	Table *ad.V
}

// NewEmbedding builds a [vocab, dim] embedding table.
func NewEmbedding(p *Params, name string, r *rand.Rand, vocab, dim int) *Embedding {
	return &Embedding{Table: p.Add(name, xavier(r, vocab, dim))}
}

// Lookup returns the embedded rows for the given ids as a [len(ids), dim]
// matrix.
func (e *Embedding) Lookup(t *ad.Tape, ids []int) *ad.V {
	return t.Rows(e.Table, ids)
}

// Linear is an affine layer y = x@W + b.
type Linear struct {
	W, B *ad.V
}

// NewLinear builds a [in, out] affine layer.
func NewLinear(p *Params, name string, r *rand.Rand, in, out int) *Linear {
	return &Linear{
		W: p.Add(name+".W", xavier(r, in, out)),
		B: p.Add(name+".b", ad.New(1, out)),
	}
}

// Apply computes x@W + b.
func (l *Linear) Apply(t *ad.Tape, x *ad.V) *ad.V {
	return t.Add(t.MatMul(x, l.W), l.B)
}

// LSTM is a single LSTM layer applied step by step.
type LSTM struct {
	Wx, Wh, B *ad.V
	Hidden    int
}

// NewLSTM builds an LSTM with the given input and hidden sizes. The
// forget-gate bias is initialized to 1, the standard trick for gradient
// flow early in training.
func NewLSTM(p *Params, name string, r *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{
		Wx:     p.Add(name+".Wx", xavier(r, in, 4*hidden)),
		Wh:     p.Add(name+".Wh", xavier(r, hidden, 4*hidden)),
		B:      p.Add(name+".b", ad.New(1, 4*hidden)),
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ { // forget gate block
		l.B.W[j] = 1
	}
	return l
}

// State is an LSTM's recurrent state.
type State struct {
	H, C *ad.V
}

// ZeroState returns an all-zero state for a batch of the given size.
func (l *LSTM) ZeroState(batch int) State {
	return State{H: ad.New(batch, l.Hidden), C: ad.New(batch, l.Hidden)}
}

// GatherState selects rows of a batched recurrent state: row r of the
// result is row idx[r] of s. Batched beam search uses it to hand each
// surviving hypothesis its parent's decoder state for the next step;
// indices may repeat when several survivors share a parent.
func GatherState(t *ad.Tape, s State, idx []int) State {
	return State{H: t.GatherRows(s.H, idx), C: t.GatherRows(s.C, idx)}
}

// Step advances the LSTM one timestep with input x [B, in].
func (l *LSTM) Step(t *ad.Tape, x *ad.V, s State) State {
	z := t.Add(t.Add(t.MatMul(x, l.Wx), t.MatMul(s.H, l.Wh)), l.B)
	H := l.Hidden
	i := t.Sigmoid(t.SliceCols(z, 0, H))
	f := t.Sigmoid(t.SliceCols(z, H, 2*H))
	g := t.Tanh(t.SliceCols(z, 2*H, 3*H))
	o := t.Sigmoid(t.SliceCols(z, 3*H, 4*H))
	c := t.Add(t.Mul(f, s.C), t.Mul(i, g))
	h := t.Mul(o, t.Tanh(c))
	return State{H: h, C: c}
}

// StepMasked advances the LSTM but holds state constant for examples
// whose mask entry is 0 (padding timesteps).
func (l *LSTM) StepMasked(t *ad.Tape, x *ad.V, s State, mask []float64) State {
	next := l.Step(t, x, s)
	return State{
		H: t.Blend(next.H, s.H, mask),
		C: t.Blend(next.C, s.C, mask),
	}
}

// Adam is the Adam optimizer with global-norm gradient clipping.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // max global gradient norm; 0 disables
	step    int
	m, v    [][]float64
	targets []*ad.V
}

// NewAdam returns an Adam optimizer over the given parameters with the
// paper's defaults (lr 0.001, standard momenta).
func NewAdam(p *Params, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, targets: p.All()}
	for _, v := range a.targets {
		a.m = append(a.m, make([]float64, len(v.W)))
		a.v = append(a.v, make([]float64, len(v.W)))
	}
	return a
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, v := range a.targets {
		for _, g := range v.G {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// AdamState is the optimizer's serializable state — the step count and
// first/second moment estimates in parameter-registration order — which,
// together with the weights, makes training resumable at an epoch
// boundary: a restored optimizer continues the exact update sequence an
// uninterrupted run would have produced.
type AdamState struct {
	Step int
	M, V [][]float64
}

// Export deep-copies the optimizer state for checkpointing.
func (a *Adam) Export() AdamState {
	st := AdamState{Step: a.step}
	for i := range a.targets {
		st.M = append(st.M, append([]float64(nil), a.m[i]...))
		st.V = append(st.V, append([]float64(nil), a.v[i]...))
	}
	return st
}

// Restore overwrites the optimizer state with a previously Exported one.
// The optimizer must have been built over an identically shaped parameter
// set.
func (a *Adam) Restore(st AdamState) error {
	if len(st.M) != len(a.targets) || len(st.V) != len(a.targets) {
		return fmt.Errorf("nn: restore: %d/%d moment tensors, optimizer has %d", len(st.M), len(st.V), len(a.targets))
	}
	for i, v := range a.targets {
		if len(st.M[i]) != len(v.W) || len(st.V[i]) != len(v.W) {
			return fmt.Errorf("nn: restore: tensor %d has %d moments, parameter has %d weights", i, len(st.M[i]), len(v.W))
		}
		copy(a.m[i], st.M[i])
		copy(a.v[i], st.V[i])
	}
	a.step = st.Step
	return nil
}

// Step applies one optimization step and returns the (pre-clip) gradient
// norm.
func (a *Adam) Step() float64 {
	a.step++
	norm := a.GradNorm()
	scale := 1.0
	if a.Clip > 0 && norm > a.Clip {
		scale = a.Clip / norm
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for vi, v := range a.targets {
		m, vv := a.m[vi], a.v[vi]
		for i := range v.W {
			g := v.G[i] * scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			vv[i] = a.Beta2*vv[i] + (1-a.Beta2)*g*g
			v.W[i] -= a.LR * (m[i] / b1c) / (math.Sqrt(vv[i]/b2c) + a.Eps)
		}
	}
	return norm
}
