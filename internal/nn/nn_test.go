package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ad"
)

func TestParamsRegistry(t *testing.T) {
	var p Params
	r := rand.New(rand.NewSource(1))
	NewLinear(&p, "l1", r, 4, 3)
	NewEmbedding(&p, "emb", r, 10, 4)
	if p.Count() != 4*3+3+10*4 {
		t.Errorf("Count = %d", p.Count())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	NewLinear(&p, "l1", r, 2, 2)
}

func TestLinearShapes(t *testing.T) {
	var p Params
	r := rand.New(rand.NewSource(2))
	l := NewLinear(&p, "l", r, 4, 3)
	tape := ad.NewTape()
	x := ad.New(5, 4)
	y := l.Apply(tape, x)
	if y.R != 5 || y.C != 3 {
		t.Errorf("shape = %dx%d", y.R, y.C)
	}
}

func TestLSTMStep(t *testing.T) {
	var p Params
	r := rand.New(rand.NewSource(3))
	l := NewLSTM(&p, "lstm", r, 4, 6)
	tape := ad.NewTape()
	x := ad.New(2, 4)
	for i := range x.W {
		x.W[i] = r.NormFloat64()
	}
	s := l.ZeroState(2)
	s1 := l.Step(tape, x, s)
	if s1.H.R != 2 || s1.H.C != 6 || s1.C.R != 2 {
		t.Fatalf("state shapes wrong")
	}
	// Hidden values bounded by tanh.
	for _, h := range s1.H.W {
		if math.Abs(h) >= 1 {
			t.Errorf("|h| = %g >= 1", h)
		}
	}
	// Masked step holds state for masked example.
	s2 := l.StepMasked(tape, x, s1, []float64{1, 0})
	for j := 0; j < 6; j++ {
		if s2.H.At(1, j) != s1.H.At(1, j) {
			t.Errorf("masked example state changed")
		}
		if s2.H.At(0, j) == s1.H.At(0, j) {
			t.Errorf("unmasked example state frozen")
		}
	}
}

// TestLSTMLearnsToggle trains a tiny LSTM + classifier to detect whether a
// specific token appears in a sequence — learning must drive the loss down
// and reach perfect accuracy on this separable toy task.
func TestLSTMLearnsToggle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var p Params
	emb := NewEmbedding(&p, "emb", r, 5, 8)
	lstm := NewLSTM(&p, "lstm", r, 8, 12)
	out := NewLinear(&p, "out", r, 12, 2)
	opt := NewAdam(&p, 0.01)

	gen := func() ([]int, int) {
		seq := make([]int, 6)
		label := 0
		for i := range seq {
			seq[i] = 1 + r.Intn(3)
		}
		if r.Intn(2) == 0 {
			seq[r.Intn(len(seq))] = 4 // the marker token
			label = 1
		}
		return seq, label
	}

	var firstLoss, lastLoss float64
	for step := 0; step < 300; step++ {
		seq, label := gen()
		tape := ad.NewTape()
		s := lstm.ZeroState(1)
		for _, tok := range seq {
			x := emb.Lookup(tape, []int{tok})
			s = lstm.Step(tape, x, s)
		}
		logits := out.Apply(tape, s.H)
		loss := tape.SoftmaxCrossEntropy(logits, []int{label}, []float64{1})
		if step == 0 {
			firstLoss = loss.W[0]
		}
		lastLoss = loss.W[0]
		p.ZeroGrad()
		loss.G[0] = 1
		tape.Backward()
		opt.Step()
	}
	if lastLoss >= firstLoss {
		t.Errorf("loss did not decrease: %g -> %g", firstLoss, lastLoss)
	}
	// Evaluate.
	correct := 0
	for i := 0; i < 50; i++ {
		seq, label := gen()
		tape := ad.NewTape()
		s := lstm.ZeroState(1)
		for _, tok := range seq {
			s = lstm.Step(tape, emb.Lookup(tape, []int{tok}), s)
		}
		logits := out.Apply(tape, s.H)
		pred := 0
		if logits.At(0, 1) > logits.At(0, 0) {
			pred = 1
		}
		if pred == label {
			correct++
		}
	}
	if correct < 45 {
		t.Errorf("toy task accuracy %d/50", correct)
	}
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 elementwise.
	var p Params
	w := p.Add("w", ad.New(1, 4))
	opt := NewAdam(&p, 0.05)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		for j := range w.W {
			w.G[j] = 2 * (w.W[j] - 3)
		}
		opt.Step()
	}
	for _, x := range w.W {
		if math.Abs(x-3) > 0.01 {
			t.Errorf("w = %v, want 3", w.W)
		}
	}
}

func TestGradClipping(t *testing.T) {
	var p Params
	w := p.Add("w", ad.New(1, 2))
	opt := NewAdam(&p, 0.1)
	opt.Clip = 1
	w.G[0], w.G[1] = 30, 40 // norm 50
	if n := opt.Step(); math.Abs(n-50) > 1e-9 {
		t.Errorf("reported norm %g, want 50", n)
	}
	// After clipping the effective gradient has norm 1, so both moments
	// stay small; just verify no NaNs and movement happened.
	if w.W[0] == 0 || math.IsNaN(w.W[0]) {
		t.Errorf("w = %v", w.W)
	}
}

func TestForgetGateBias(t *testing.T) {
	var p Params
	r := rand.New(rand.NewSource(5))
	l := NewLSTM(&p, "l", r, 2, 3)
	for j := 3; j < 6; j++ {
		if l.B.W[j] != 1 {
			t.Errorf("forget bias not initialized: %v", l.B.W)
		}
	}
	if l.B.W[0] != 0 {
		t.Errorf("input gate bias should be 0")
	}
}

// TestAdamExportRestore checks that a restored optimizer continues the
// exact update sequence of the original: two parameter sets start equal,
// one optimizer is checkpointed and rebuilt mid-run, and both end with
// bitwise-identical weights.
func TestAdamExportRestore(t *testing.T) {
	build := func() (*Params, *ad.V) {
		var p Params
		r := rand.New(rand.NewSource(17))
		v := p.Add("w", ad.New(3, 4))
		for i := range v.W {
			v.W[i] = r.NormFloat64()
		}
		return &p, v
	}
	step := func(p *Params, v *ad.V, opt *Adam, i int) {
		p.ZeroGrad()
		for j := range v.G {
			v.G[j] = v.W[j] + float64(i)*0.1 // deterministic pseudo-gradient
		}
		opt.Step()
	}

	pa, va := build()
	oa := NewAdam(pa, 0.01)
	pb, vb := build()
	ob := NewAdam(pb, 0.01)

	for i := 0; i < 5; i++ {
		step(pa, va, oa, i)
		step(pb, vb, ob, i)
	}
	// Checkpoint B and rebuild it from scratch, as a resumed run would.
	st := ob.Export()
	pb2, vb2 := build()
	copy(vb2.W, vb.W)
	ob2 := NewAdam(pb2, 0.01)
	if err := ob2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		step(pa, va, oa, i)
		step(pb2, vb2, ob2, i)
	}
	for i := range va.W {
		if va.W[i] != vb2.W[i] {
			t.Fatalf("weight %d diverged after restore: %g vs %g", i, va.W[i], vb2.W[i])
		}
	}

	// Shape validation.
	var empty Params
	if err := NewAdam(&empty, 0.01).Restore(st); err == nil {
		t.Error("mismatched restore accepted")
	}
}

// TestReduceGrads: the reduction must sum shard gradients in ascending
// shard order (fixed bracketing — the basis of -j invariance), scale the
// sum, overwrite the destination gradient, and drain the shards.
func TestReduceGrads(t *testing.T) {
	build := func(seed int64) *Params {
		var p Params
		r := rand.New(rand.NewSource(seed))
		NewLinear(&p, "l", r, 3, 2)
		NewEmbedding(&p, "e", r, 5, 3)
		return &p
	}
	master := build(1)
	shards := []*Params{build(2), build(3), build(4)}
	for si, s := range shards {
		for pi, v := range s.All() {
			for i := range v.G {
				v.G[i] = float64(si+1) * float64(pi*100+i+1) * 1e-3
			}
		}
	}
	// Expected: ordered sum with explicit left-to-right bracketing.
	var want [][]float64
	for pi, v := range master.All() {
		w := make([]float64, len(v.G))
		for i := range w {
			sum := 0.0
			for _, s := range shards {
				sum += s.All()[pi].G[i]
			}
			w[i] = sum * 0.25
		}
		want = append(want, w)
		for i := range v.G {
			v.G[i] = 999 // must be overwritten, not accumulated into
		}
	}
	master.ReduceGrads(shards, 0.25)
	for pi, v := range master.All() {
		for i := range v.G {
			if math.Float64bits(v.G[i]) != math.Float64bits(want[pi][i]) {
				t.Fatalf("param %d elem %d: got %v want %v", pi, i, v.G[i], want[pi][i])
			}
		}
	}
	for si, s := range shards {
		for pi, v := range s.All() {
			for i := range v.G {
				if v.G[i] != 0 {
					t.Fatalf("shard %d param %d grad not drained", si, pi)
				}
			}
		}
	}
}

// TestReduceGradsShapeMismatch: mismatched shard parameter sets must
// panic rather than silently corrupt the update.
func TestReduceGradsShapeMismatch(t *testing.T) {
	var a, b Params
	r := rand.New(rand.NewSource(9))
	NewLinear(&a, "l", r, 3, 2)
	NewLinear(&b, "l", r, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	a.ReduceGrads([]*Params{&b}, 1)
}
