// Package dedup implements the binary-level deduplication of Section 5 of
// the paper: exact duplicates are removed by hashing full file contents,
// and near-duplicates by an approximate signature over abstracted
// instructions (immediates removed), hashing per-function and then over
// the ordered function hashes.
package dedup

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/wasm"
)

// Binary is one object file in the corpus.
type Binary struct {
	Pkg  string
	Name string
	Data []byte
}

// Level selects the dedup granularity.
type Level int

// Dedup levels. The paper argues for binary-level dedup because function
// duplication across binaries (static linking) is part of the true data
// distribution; function-level dedup is provided for the ablation.
const (
	// LevelBinary removes exact and near-duplicate binaries.
	LevelBinary Level = iota
	// LevelExact removes only byte-identical binaries.
	LevelExact
)

// Stats reports the reduction achieved by deduplication, mirroring the
// numbers reported in Section 5.
type Stats struct {
	BinariesBefore, BinariesAfter         int
	FunctionsBefore, FunctionsAfter       int
	InstructionsBefore, InstructionsAfter int
	ExactDuplicates, NearDuplicates       int
}

// String renders the stats like the paper's prose.
func (s Stats) String() string {
	return fmt.Sprintf("dedup: %d binaries / %d functions / %d instructions -> %d / %d / %d (%d exact, %d near duplicates removed)",
		s.BinariesBefore, s.FunctionsBefore, s.InstructionsBefore,
		s.BinariesAfter, s.FunctionsAfter, s.InstructionsAfter,
		s.ExactDuplicates, s.NearDuplicates)
}

// Dedup retains one binary per equivalence class. The first occurrence
// wins, so results are deterministic in input order. It is a thin serial
// driver over the order-resolving Index the parallel pipeline shares.
func Dedup(bins []Binary, level Level) ([]Binary, Stats, error) {
	var stats Stats
	stats.BinariesBefore = len(bins)

	ix := NewIndex()
	keys := make([]Key, len(bins))
	for i, b := range bins {
		k, err := KeyOf(b.Data)
		if err != nil {
			return nil, stats, fmt.Errorf("dedup: %s: %w", b.Name, err)
		}
		keys[i] = k
		ix.Observe(k, uint64(i))
	}
	stats = Stats{}
	var kept []Binary
	for i, b := range bins {
		v := ix.Resolve(keys[i], uint64(i), level)
		stats.Count(keys[i], v)
		if v == Keep {
			kept = append(kept, b)
		}
	}
	return kept, stats, nil
}

func counts(m *wasm.Module) (funcs, instrs int) {
	for i := range m.Funcs {
		funcs++
		instrs += len(m.Funcs[i].Body)
	}
	return
}

// Signature computes the approximate binary signature: each function is
// hashed over its abstracted instructions (e.g. `local.get $0` becomes
// `local.get`, `i32.load offset=8` becomes `i32.load`), and the ordered
// function hashes are hashed again — so binaries differing only in
// immediates (string addresses, build-time constants) collide.
func Signature(m *wasm.Module) uint64 {
	outer := fnv.New64a()
	var buf [8]byte
	for i := range m.Funcs {
		inner := fnv.New64a()
		for _, in := range m.Funcs[i].Body {
			inner.Write([]byte(in.Abstract()))
			inner.Write([]byte{0})
		}
		binary.LittleEndian.PutUint64(buf[:], inner.Sum64())
		outer.Write(buf[:])
	}
	return outer.Sum64()
}
