package dedup

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

// dupCorpus compiles a corpus with known exact and near duplicates:
// identical sources (exact), sources differing only in immediates (near),
// and genuinely distinct functions.
func dupCorpus(t testing.TB) []Binary {
	t.Helper()
	srcs := []struct{ name, src string }{
		{"a0.c", `int add7(int x) { return x + 7; }`},
		{"a1.c", `int add7(int x) { return x + 7; }`}, // exact duplicate of a0
		{"b0.c", `int add7(int x) { return x + 9; }`}, // near duplicate: immediates differ
		{"c0.c", `double sq(double v) { return v * v; }`},
		{"d0.c", `int len(char *s) { int n = 0; while (s[n] != 0) { n = n + 1; } return n; }`},
	}
	var bins []Binary
	for i, s := range srcs {
		// A fixed FileName makes byte-identical sources byte-identical
		// binaries (the name is embedded in DWARF).
		obj, err := cc.Compile(s.src, cc.Options{FileName: "unit.c", Debug: true})
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		bins = append(bins, Binary{Pkg: fmt.Sprintf("pkg%d", i), Name: s.name, Data: obj.Binary})
	}
	return bins
}

// sequentialDedup is the original first-occurrence-wins scan, kept as the
// oracle the Index-based implementation must match.
func sequentialDedup(t *testing.T, bins []Binary, level Level) ([]Binary, Stats) {
	t.Helper()
	var stats Stats
	stats.BinariesBefore = len(bins)
	seenExact := make(map[[32]byte]bool)
	seenApprox := make(map[uint64]bool)
	var kept []Binary
	for _, b := range bins {
		d, err := wasm.Decode(b.Data)
		if err != nil {
			t.Fatal(err)
		}
		nf, ni := counts(d.Module)
		stats.FunctionsBefore += nf
		stats.InstructionsBefore += ni
		exact := sha256.Sum256(b.Data)
		if seenExact[exact] {
			stats.ExactDuplicates++
			continue
		}
		seenExact[exact] = true
		if level == LevelBinary {
			sig := Signature(d.Module)
			if seenApprox[sig] {
				stats.NearDuplicates++
				continue
			}
			seenApprox[sig] = true
		}
		kept = append(kept, b)
		stats.BinariesAfter++
		stats.FunctionsAfter += nf
		stats.InstructionsAfter += ni
	}
	return kept, stats
}

func names(bins []Binary) []string {
	out := make([]string, len(bins))
	for i, b := range bins {
		out[i] = b.Name
	}
	return out
}

// TestDedupMatchesSequentialOracle: the Index-backed Dedup must classify
// a corpus with exact dups, near dups, and unique binaries exactly like
// the original sequential scan, at both levels.
func TestDedupMatchesSequentialOracle(t *testing.T) {
	bins := dupCorpus(t)
	for _, level := range []Level{LevelBinary, LevelExact} {
		wantKept, wantStats := sequentialDedup(t, bins, level)
		gotKept, gotStats, err := Dedup(bins, level)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(names(gotKept), names(wantKept)) {
			t.Errorf("level %d: kept %v, want %v", level, names(gotKept), names(wantKept))
		}
		if gotStats != wantStats {
			t.Errorf("level %d: stats %+v, want %+v", level, gotStats, wantStats)
		}
	}
	// Sanity: the corpus actually exercises both duplicate kinds.
	_, stats, err := Dedup(bins, LevelBinary)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExactDuplicates == 0 || stats.NearDuplicates == 0 {
		t.Fatalf("corpus exercises no duplicates: %+v", stats)
	}
}

// TestIndexOrderIndependent observes keys in many random permutations,
// concurrently, and checks the resolution never changes: the kept set is
// a function of the canonical orders alone, not of arrival order.
func TestIndexOrderIndependent(t *testing.T) {
	bins := dupCorpus(t)
	keys := make([]Key, len(bins))
	for i, b := range bins {
		k, err := KeyOf(b.Data)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	wantKept, wantStats := sequentialDedup(t, bins, LevelBinary)

	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(len(bins))
		ix := NewIndex()
		var wg sync.WaitGroup
		for _, i := range perm {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ix.Observe(keys[i], uint64(i))
			}(i)
		}
		wg.Wait()
		var stats Stats
		var kept []Binary
		for i := range bins {
			v := ix.Resolve(keys[i], uint64(i), LevelBinary)
			stats.Count(keys[i], v)
			if v == Keep {
				kept = append(kept, bins[i])
			}
		}
		if !reflect.DeepEqual(names(kept), names(wantKept)) {
			t.Fatalf("trial %d: kept %v, want %v", trial, names(kept), names(wantKept))
		}
		if stats != wantStats {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, stats, wantStats)
		}
	}
}
