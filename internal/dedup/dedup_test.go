package dedup

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

func bin(t *testing.T, pkg, name, src string) Binary {
	t.Helper()
	obj, err := cc.Compile(src, cc.Options{FileName: name, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	return Binary{Pkg: pkg, Name: name, Data: obj.Binary}
}

const base = `
int f(int a) {
	int acc = 0;
	int i;
	for (i = 0; i < a; i++) { acc += i * MAGIC; }
	return acc;
}
`

func TestExactDuplicates(t *testing.T) {
	src := strings.ReplaceAll(base, "MAGIC", "3")
	// The same translation unit compiled twice (same file name, so the
	// DWARF is byte-identical too) shipped by two packages.
	a := bin(t, "p1", "f.o", src)
	b := bin(t, "p2", "f.o", src)
	bins := []Binary{a, b}
	kept, stats, err := Dedup(bins, LevelExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || stats.ExactDuplicates != 1 {
		t.Errorf("kept %d, stats %+v", len(kept), stats)
	}
	if kept[0].Pkg != "p1" {
		t.Errorf("first occurrence should win, kept %s", kept[0].Pkg)
	}
}

func TestNearDuplicates(t *testing.T) {
	// Same abstracted instructions, different immediates (like build
	// timestamps or addresses baked into constants).
	bins := []Binary{
		bin(t, "p1", "a.o", strings.ReplaceAll(base, "MAGIC", "3")),
		bin(t, "p2", "b.o", strings.ReplaceAll(base, "MAGIC", "12345")),
	}
	// Exact dedup keeps both...
	kept, stats, err := Dedup(bins, LevelExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Fatalf("exact dedup dropped a non-identical binary: %+v", stats)
	}
	// ...binary-level dedup collapses them.
	kept, stats, err = Dedup(bins, LevelBinary)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || stats.NearDuplicates != 1 {
		t.Errorf("kept %d, stats %+v", len(kept), stats)
	}
}

func TestDifferentCodeKept(t *testing.T) {
	bins := []Binary{
		bin(t, "p1", "a.o", strings.ReplaceAll(base, "MAGIC", "3")),
		bin(t, "p2", "b.o", `double g(double x) { return x * 0.5; }`),
	}
	kept, stats, err := Dedup(bins, LevelBinary)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("distinct binaries collapsed: %+v", stats)
	}
}

func TestStatsCounts(t *testing.T) {
	src := strings.ReplaceAll(base, "MAGIC", "3")
	bins := []Binary{bin(t, "p1", "a.o", src), bin(t, "p1", "b.o", src)}
	_, stats, err := Dedup(bins, LevelBinary)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BinariesBefore != 2 || stats.BinariesAfter != 1 {
		t.Errorf("binaries %d -> %d", stats.BinariesBefore, stats.BinariesAfter)
	}
	if stats.FunctionsBefore != 2*stats.FunctionsAfter {
		t.Errorf("functions %d -> %d", stats.FunctionsBefore, stats.FunctionsAfter)
	}
	if stats.InstructionsBefore <= stats.InstructionsAfter {
		t.Errorf("instructions %d -> %d", stats.InstructionsBefore, stats.InstructionsAfter)
	}
	if !strings.Contains(stats.String(), "exact") {
		t.Errorf("stats string: %s", stats)
	}
}

func TestCorruptBinaryErrors(t *testing.T) {
	if _, _, err := Dedup([]Binary{{Name: "bad", Data: []byte("junk")}}, LevelBinary); err == nil {
		t.Error("corrupt binary should error")
	}
}
