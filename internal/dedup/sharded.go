package dedup

import (
	"crypto/sha256"
	"sync"

	"repro/internal/wasm"
)

// Key is the precomputed dedup identity of one binary: the exact content
// hash, the abstracted-instruction signature, and the function and
// instruction counts Stats aggregate. Computing keys is the expensive part
// of deduplication (it decodes the binary); keys are designed to be
// computed concurrently by pipeline workers, leaving only cheap map
// lookups on the serial path.
type Key struct {
	Exact  [32]byte
	Approx uint64
	Funcs  int
	Instrs int
}

// KeyOf decodes one binary and computes its dedup key.
func KeyOf(data []byte) (Key, error) {
	d, err := wasm.Decode(data)
	if err != nil {
		return Key{}, err
	}
	k := Key{Exact: sha256.Sum256(data), Approx: Signature(d.Module)}
	k.Funcs, k.Instrs = counts(d.Module)
	return k, nil
}

// nShards is the shard count of Index; a power of two so shard selection
// is a mask.
const nShards = 64

// Index is a sharded concurrent first-occurrence index over dedup keys.
// Workers Observe (key, order) pairs in any order and from any number of
// goroutines; once all observations are in, Resolve classifies each
// binary exactly as the sequential first-occurrence-wins scan would —
// "first" meaning minimal order, not arrival time — so the result is
// independent of worker count and scheduling.
//
// Orders must be unique across binaries and must embed the canonical
// corpus order (the pipeline uses pkgIdx<<20 | fileIdx).
type Index struct {
	exact  [nShards]exactShard
	approx [nShards]approxShard
}

type exactShard struct {
	mu sync.Mutex
	m  map[[32]byte]uint64
}

type approxShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{}
	for i := range ix.exact {
		ix.exact[i].m = make(map[[32]byte]uint64)
		ix.approx[i].m = make(map[uint64]uint64)
	}
	return ix
}

// Observe records the binary at the given canonical order under its key,
// keeping the minimum order per exact hash and per signature.
func (ix *Index) Observe(k Key, order uint64) {
	es := &ix.exact[k.Exact[0]&(nShards-1)]
	es.mu.Lock()
	if o, ok := es.m[k.Exact]; !ok || order < o {
		es.m[k.Exact] = order
	}
	es.mu.Unlock()

	as := &ix.approx[k.Approx&(nShards-1)]
	as.mu.Lock()
	if o, ok := as.m[k.Approx]; !ok || order < o {
		as.m[k.Approx] = order
	}
	as.mu.Unlock()
}

// Verdict classifies one binary after all observations are in.
type Verdict int

// Verdicts, mirroring the sequential scan: a binary that is not the first
// of its exact class is an exact duplicate; a first-of-exact-class binary
// that is not the first of its signature class is a near duplicate.
const (
	Keep Verdict = iota
	ExactDuplicate
	NearDuplicate
)

// Resolve returns the verdict for the binary observed at order. It must
// only be called after every Observe has completed (the pipeline
// interposes a barrier); concurrent Resolve calls are safe.
//
// Equivalence with the sequential scan: the sequential algorithm only
// registers a signature after a binary passes the exact filter, but the
// globally order-minimal binary of a signature class is necessarily also
// the order-minimal binary of its own exact class (any earlier
// exact-equal binary would share the signature and precede it), so
// taking minima over all observations yields the same keeper.
func (ix *Index) Resolve(k Key, order uint64, level Level) Verdict {
	es := &ix.exact[k.Exact[0]&(nShards-1)]
	es.mu.Lock()
	exactMin := es.m[k.Exact]
	es.mu.Unlock()
	if exactMin != order {
		return ExactDuplicate
	}
	if level == LevelBinary {
		as := &ix.approx[k.Approx&(nShards-1)]
		as.mu.Lock()
		approxMin := as.m[k.Approx]
		as.mu.Unlock()
		if approxMin != order {
			return NearDuplicate
		}
	}
	return Keep
}

// Count folds one classified binary into the stats.
func (s *Stats) Count(k Key, v Verdict) {
	s.BinariesBefore++
	s.FunctionsBefore += k.Funcs
	s.InstructionsBefore += k.Instrs
	switch v {
	case ExactDuplicate:
		s.ExactDuplicates++
	case NearDuplicate:
		s.NearDuplicates++
	default:
		s.BinariesAfter++
		s.FunctionsAfter += k.Funcs
		s.InstructionsAfter += k.Instrs
	}
}

// Merge adds o's counts into s. Addition is commutative, so merging
// per-worker partial stats in any order gives the sequential totals; the
// pipeline still merges in canonical package order for clarity.
func (s *Stats) Merge(o Stats) {
	s.BinariesBefore += o.BinariesBefore
	s.BinariesAfter += o.BinariesAfter
	s.FunctionsBefore += o.FunctionsBefore
	s.FunctionsAfter += o.FunctionsAfter
	s.InstructionsBefore += o.InstructionsBefore
	s.InstructionsAfter += o.InstructionsAfter
	s.ExactDuplicates += o.ExactDuplicates
	s.NearDuplicates += o.NearDuplicates
}
