package corpus

import "math/rand"

// libFunc is one shared "static library" function whose identical source
// appears in many packages, so its compiled body is byte-identical across
// binaries — the duplication pattern the binary-level dedup targets
// (Section 5 of the paper).
type libFunc struct {
	name       string
	source     string
	externs    map[string]string
	needsSizeT bool
	needsFILE  bool
}

// Library holds the shared function pool. It is immutable once built, so
// concurrent package generators may share one instance.
type Library struct {
	funcs []libFunc
}

// NewLibrary builds the library pool for a corpus seed. The shuffle
// consumes the first draws of a dedicated rand stream, matching what
// sequential generation historically produced for the same seed.
func NewLibrary(seed int64) *Library {
	return buildLibrary(rand.New(rand.NewSource(seed)))
}

// buildLibrary constructs a deterministic pool of library functions. The
// rand source only shuffles the order they get sampled in.
func buildLibrary(r *rand.Rand) *Library {
	lib := &Library{}
	add := func(f libFunc) { lib.funcs = append(lib.funcs, f) }

	add(libFunc{
		name: "lib_strnlen",
		source: `size_t lib_strnlen(const char *s, size_t maxlen) {
	int n = 0;
	while (n < (int) maxlen && s[n] != 0) { n++; }
	return (size_t) n;
}
`,
		needsSizeT: true,
	})
	add(libFunc{
		name: "lib_sum_doubles",
		source: `double lib_sum_doubles(const double *xs, int n) {
	double acc = 0;
	int i;
	for (i = 0; i < n; i++) { acc += xs[i]; }
	return acc;
}
`,
	})
	add(libFunc{
		name: "lib_clampi",
		source: `int lib_clampi(int v, int lo, int hi) {
	if (v < lo) { return lo; }
	if (v > hi) { return hi; }
	return v;
}
`,
	})
	add(libFunc{
		name: "lib_fputs_count",
		source: `int lib_fputs_count(const char *s, FILE *f) {
	int n = 0;
	while (s[n] != 0) { fputc(s[n], f); n++; }
	return n;
}
`,
		needsFILE: true,
	})
	add(libFunc{
		name: "lib_hash32",
		source: `unsigned int lib_hash32(const char *key) {
	unsigned int h = 2166136261u;
	int i = 0;
	while (key[i] != 0) { h = (h ^ (unsigned int) key[i]) * 16777619u; i++; }
	return h;
}
`,
	})
	add(libFunc{
		name: "lib_absf",
		source: `double lib_absf(double x) {
	if (x < 0.0) { return -x; }
	return x;
}
`,
	})
	add(libFunc{
		name: "lib_memrev",
		source: `void lib_memrev(char *buf, int n) {
	int i = 0;
	int j = n - 1;
	while (i < j) {
		char t = buf[i];
		buf[i] = buf[j];
		buf[j] = t;
		i++;
		j--;
	}
}
`,
	})
	add(libFunc{
		name: "lib_popcount64",
		source: `int lib_popcount64(unsigned long long v) {
	int n = 0;
	while (v != 0) { n += (int) (v & 1); v >>= 1; }
	return n;
}
`,
	})
	// Shuffle deterministically so different seeds see different orders.
	r.Shuffle(len(lib.funcs), func(i, j int) {
		lib.funcs[i], lib.funcs[j] = lib.funcs[j], lib.funcs[i]
	})
	return lib
}
