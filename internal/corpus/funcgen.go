package corpus

import (
	"fmt"
	"strings"
)

// funcGen builds one function's source.
type funcGen struct {
	ctx    *pkgCtx
	body   []string
	locals map[string]bool
}

func (g *funcGen) stmt(format string, args ...any) {
	g.body = append(g.body, "\t"+fmt.Sprintf(format, args...))
}

// local declares a local variable once and returns its name.
func (g *funcGen) local(name, decl string) string {
	if !g.locals[name] {
		g.locals[name] = true
		g.body = append(g.body, "\t"+decl)
	}
	return name
}

// spec describes one parameter/return type of the synthetic catalog: how
// to declare it, how characteristic code uses it, and how to produce a
// return value of it.
type spec struct {
	key string
	// weight/retWeight give the sampling weight as a parameter/return
	// type; zero disables. They may depend on the package profile.
	weight    func(c *pkgCtx) float64
	retWeight func(c *pkgCtx) float64
	// decl returns the C parameter type (and registers any externs).
	decl func(g *funcGen) string
	// use appends statements that exercise a parameter of this type.
	use func(g *funcGen, name string)
	// ret returns an expression of this type; params lists the names of
	// parameters with the same spec (preferred as return values).
	ret func(g *funcGen, params []string) string
}

func w(v float64) func(*pkgCtx) float64 { return func(*pkgCtx) float64 { return v } }
func cppW(v float64) func(*pkgCtx) float64 {
	return func(c *pkgCtx) float64 {
		if c.isCPP {
			return v
		}
		return 0
	}
}

// catalog returns the type catalog. Weights are calibrated so the corpus
// type distribution has the shape of Table 2 (parameters) and Table 4
// (returns).
func catalog() []spec {
	return []spec{
		{
			// pointer class — Table 2 rank 1 (20.5%).
			key:       "ptr_class",
			weight:    cppW(52),
			retWeight: cppW(14),
			decl: func(g *funcGen) string {
				c := g.ctx.localClasses[g.ctx.r.Intn(len(g.ctx.localClasses))]
				return "class " + c + " *"
			},
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { %s->refcount = %s->refcount + 1; }", p, p, p)
				if g.ctx.r.Intn(2) == 0 {
					acc := g.local("accd", "double accd = 0;")
					g.stmt("if (%s != NULL && %s->values != NULL) { %s += %s->values[0]; }", p, p, acc, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return "NULL"
			},
		},
		{
			// pointer struct — rank 2 (14.4%).
			key:       "ptr_struct",
			weight:    w(16),
			retWeight: w(6),
			decl: func(g *funcGen) string {
				s := g.ctx.localStructs[g.ctx.r.Intn(len(g.ctx.localStructs))]
				return "struct " + s + " *"
			},
			use: func(g *funcGen, p string) {
				switch g.ctx.r.Intn(3) {
				case 0:
					acc := g.local("accd", "double accd = 0;")
					g.stmt("while (%s != NULL) { %s += %s->weight; %s = %s->next; }", p, acc, p, p, p)
				case 1:
					g.stmt("if (%s != NULL) { %s->id = %s->id + 1; }", p, p, p)
				default:
					g.stmt("if (%s != NULL && %s->tag == 'x') { %s->weight = 0.5; }", p, p, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0] + " != NULL ? " + params[0] + "->next : NULL"
				}
				return "NULL"
			},
		},
		{
			// int — rank 3 (12.1% params, 39% returns).
			key:       "int",
			weight:    w(8),
			retWeight: w(34),
			decl:      func(g *funcGen) string { return "int " },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				switch g.ctx.r.Intn(3) {
				case 0:
					g.stmt("if (%s > 0) { %s += %s * 2; } else { %s -= %s; }", p, acc, p, acc, p)
				case 1:
					i := g.local("i", "int i;")
					g.stmt("for (%s = 0; %s < %s; %s++) { %s += %s; }", i, i, p, i, acc, i)
				default:
					g.stmt("%s = %s %% 17 + (%s >> 2);", acc, p, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if g.locals["acci"] {
					return "acci"
				}
				if len(params) > 0 {
					return params[0] + " + 1"
				}
				return fmt.Sprintf("%d", g.ctx.r.Intn(100))
			},
		},
		{
			// pointer const class — rank 4 (7.3%).
			key:    "ptr_const_class",
			weight: cppW(17),
			decl: func(g *funcGen) string {
				c := g.ctx.localClasses[g.ctx.r.Intn(len(g.ctx.localClasses))]
				return "const class " + c + " *"
			},
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s != NULL) { %s += %s->refcount; }", p, acc, p)
			},
		},
		{
			// pointer const struct — rank 5 (2.9%).
			key:    "ptr_const_struct",
			weight: w(3.2),
			decl: func(g *funcGen) string {
				s := g.ctx.localStructs[g.ctx.r.Intn(len(g.ctx.localStructs))]
				return "const struct " + s + " *"
			},
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				g.stmt("if (%s != NULL) { %s += %s->weight * 2.0; }", p, acc, p)
			},
		},
		{
			// pointer const char — rank 6 (2.9%): string handling.
			key:       "ptr_const_char",
			weight:    w(3.4),
			retWeight: w(2),
			decl: func(g *funcGen) string {
				g.ctx.extern("strlen", "extern unsigned long strlen(const char *s);")
				return "const char *"
			},
			use: func(g *funcGen, p string) {
				switch g.ctx.r.Intn(2) {
				case 0:
					n := g.local("slen", "int slen = 0;")
					g.stmt("while (%s != NULL && %s[%s] != 0) { %s++; }", p, p, n, n)
				default:
					acc := g.local("acci", "int acci = 0;")
					g.stmt("%s += (int) strlen(%s);", acc, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return `"ok"`
			},
		},
		{
			// size_t — rank 7 (2.8%).
			key: "size_t",
			weight: func(c *pkgCtx) float64 {
				if c.hasSizeT {
					return 5
				}
				return 0
			},
			retWeight: func(c *pkgCtx) float64 {
				if c.hasSizeT {
					return 4
				}
				return 0
			},
			decl: func(g *funcGen) string { return "size_t " },
			use: func(g *funcGen, p string) {
				i := g.local("i", "int i;")
				acc := g.local("acci", "int acci = 0;")
				g.stmt("for (%s = 0; %s < (int) %s; %s++) { %s += %s; }", i, i, p, i, acc, i)
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0] + " + 1"
				}
				return "(size_t) 16"
			},
		},
		{
			// unsigned int — rank 8 (2.3%).
			key:       "uint",
			weight:    w(2.6),
			retWeight: w(3),
			decl:      func(g *funcGen) string { return "unsigned int " },
			use: func(g *funcGen, p string) {
				acc := g.local("accu", "unsigned int accu = 0;")
				g.stmt("%s = (%s >> 3) ^ (%s << 1) ^ %s;", acc, p, p, acc)
			},
			ret: func(g *funcGen, params []string) string {
				if g.locals["accu"] {
					return "accu"
				}
				return "0x7fu"
			},
		},
		{
			// void* — rank 9 (1.8%).
			key:       "void_ptr",
			weight:    w(2.0),
			retWeight: w(2),
			decl: func(g *funcGen) string {
				g.ctx.extern("memset", "extern void *memset(void *p, int c, unsigned long n);")
				return "void *"
			},
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { memset(%s, 0, 8); }", p, p)
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return "NULL"
			},
		},
		{
			// int* — rank 10 (1.6%).
			key:    "ptr_int",
			weight: w(1.8),
			decl:   func(g *funcGen) string { return "int *" },
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { %s[0] = %s[0] + 1; }", p, p, p)
			},
		},
		{
			// double — the Figure 1 family.
			key:       "double",
			weight:    w(4.5),
			retWeight: w(7),
			decl:      func(g *funcGen) string { return "double " },
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				switch g.ctx.r.Intn(2) {
				case 0:
					g.stmt("if (%s < 0.0) { %s -= %s; } else { %s += %s * 0.5; }", p, acc, p, acc, p)
				default:
					g.stmt("%s += %s * %s + 1.0;", acc, p, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if g.locals["accd"] {
					return "accd"
				}
				if len(params) > 0 {
					return params[0]
				}
				return "0.0"
			},
		},
		{
			// double* — Figure 1's parameter.
			key:       "ptr_double",
			weight:    w(3.0),
			retWeight: w(1.5),
			decl:      func(g *funcGen) string { return "double *" },
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				switch g.ctx.r.Intn(2) {
				case 0:
					g.stmt("if (%s != (double *) NULL) { %s = %s[0]; } else { %s = 10.0; }", p, acc, p, acc)
				default:
					g.stmt("if (%s != NULL) { %s += %s[1]; }", p, acc, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return "NULL"
			},
		},
		{
			// float.
			key:       "float",
			weight:    w(1.5),
			retWeight: w(2),
			decl:      func(g *funcGen) string { return "float " },
			use: func(g *funcGen, p string) {
				acc := g.local("accf", "float accf = 0;")
				g.stmt("%s += %s * 0.25f;", acc, p)
			},
			ret: func(g *funcGen, params []string) string {
				if g.locals["accf"] {
					return "accf"
				}
				return "1.5f"
			},
		},
		{
			// char* (mutable strings/buffers).
			key:    "ptr_char",
			weight: w(2.2),
			decl:   func(g *funcGen) string { return "char *" },
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { %s[0] = 'a'; }", p, p)
			},
		},
		{
			// bool.
			key:       "bool",
			weight:    w(1.6),
			retWeight: w(4),
			decl:      func(g *funcGen) string { return "bool " },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s) { %s += 1; } else { %s -= 1; }", p, acc, acc)
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return "!" + params[0]
				}
				if g.locals["acci"] {
					return "acci > 0"
				}
				return "1 == 1"
			},
		},
		{
			// long long.
			key:       "i64",
			weight:    w(1.4),
			retWeight: w(2),
			decl:      func(g *funcGen) string { return "long long " },
			use: func(g *funcGen, p string) {
				acc := g.local("accll", "long long accll = 0;")
				g.stmt("%s += %s * 3;", acc, p)
			},
			ret: func(g *funcGen, params []string) string {
				if g.locals["accll"] {
					return "accll"
				}
				return "0"
			},
		},
		{
			// unsigned long long.
			key:    "u64",
			weight: w(0.9),
			decl:   func(g *funcGen) string { return "unsigned long long " },
			use: func(g *funcGen, p string) {
				acc := g.local("accull", "unsigned long long accull = 0;")
				g.stmt("%s = (%s >> 7) | (%s << 3);", acc, p, p)
			},
		},
		{
			// FILE* — Table 3 rank 2 name.
			key: "ptr_FILE",
			weight: func(c *pkgCtx) float64 {
				if c.hasFILE {
					return 4
				}
				return 0
			},
			retWeight: func(c *pkgCtx) float64 {
				if c.hasFILE {
					return 1
				}
				return 0
			},
			decl: func(g *funcGen) string { return "FILE *" },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				switch g.ctx.r.Intn(2) {
				case 0:
					g.stmt("if (%s != NULL) { %s = fgetc(%s); }", p, acc, p)
				default:
					g.stmt("if (%s != NULL) { fputc(%s, %s); fflush(%s); }", p, acc, p, p)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return "NULL"
			},
		},
		{
			// string* (C++).
			key: "ptr_string",
			weight: func(c *pkgCtx) float64 {
				if c.hasString {
					return 4
				}
				return 0
			},
			decl: func(g *funcGen) string { return "string *" },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s != NULL) { %s += (int) string_size(%s); }", p, acc, p)
			},
		},
		{
			// ios_base* (C++ iostream machinery).
			key: "ptr_iosbase",
			weight: func(c *pkgCtx) float64 {
				if c.hasIOSBase {
					return 3
				}
				return 0
			},
			decl: func(g *funcGen) string { return "ios_base *" },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s != NULL && ios_good(%s)) { %s++; }", p, p, acc)
			},
		},
		{
			// va_list* — Table 3 name.
			key: "ptr_valist",
			weight: func(c *pkgCtx) float64 {
				if c.hasVaList {
					return 1.5
				}
				return 0
			},
			decl: func(g *funcGen) string { return "va_list *" },
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { %s->gp = %s->gp + 1; }", p, p, p)
			},
		},
		{
			// enum.
			key: "enum",
			weight: func(c *pkgCtx) float64 {
				if len(c.localEnums) > 0 {
					return 1.8
				}
				return 0
			},
			retWeight: func(c *pkgCtx) float64 {
				if len(c.localEnums) > 0 {
					return 1
				}
				return 0
			},
			decl: func(g *funcGen) string {
				return "enum " + g.ctx.localEnums[g.ctx.r.Intn(len(g.ctx.localEnums))] + " "
			},
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				switch g.ctx.r.Intn(2) {
				case 0:
					g.stmt("if ((int) %s == 1) { %s = 2; } else { %s = 3; }", p, acc, acc)
				default:
					// Dense switch: dispatched with br_table, the classic
					// compiled-enum pattern.
					g.stmt("switch ((int) %s) { case 0: %s = 1; break; case 1: %s = 2; break; case 2: %s = 4; break; default: %s = 0; }", p, acc, acc, acc, acc)
				}
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				e := g.ctx.localEnums[0]
				return "(enum " + e + ") 0"
			},
		},
		{
			// char** (argv-like).
			key:    "ptr_ptr_char",
			weight: w(1.0),
			decl:   func(g *funcGen) string { return "char **" },
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL && %s[0] != NULL && %s[0][0] != 0) { %s[0][0] = '_'; }", p, p, p, p)
			},
		},
		{
			// const pointer to double (const data).
			key:    "ptr_const_double",
			weight: w(0.9),
			decl:   func(g *funcGen) string { return "const double *" },
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				g.stmt("if (%s != NULL) { %s += %s[0] * 0.1; }", p, acc, p)
			},
		},
		{
			// short / unsigned short for width diversity.
			key:    "short",
			weight: w(0.8),
			decl:   func(g *funcGen) string { return "short " },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("%s += %s * 2;", acc, p)
			},
		},
		{
			// unsigned char (byte processing).
			key:    "uchar",
			weight: w(0.9),
			decl:   func(g *funcGen) string { return "unsigned char " },
			use: func(g *funcGen, p string) {
				acc := g.local("accu", "unsigned int accu = 0;")
				g.stmt("%s = (%s << 8) | %s;", acc, acc, p)
			},
		},
		{
			// plain char by value (character processing).
			key:       "char",
			weight:    w(1.2),
			retWeight: w(1),
			decl:      func(g *funcGen) string { return "char " },
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s >= 'a' && %s <= 'z') { %s++; }", p, p, acc)
			},
			ret: func(g *funcGen, params []string) string {
				if len(params) > 0 {
					return params[0]
				}
				return "'x'"
			},
		},
		{
			// pointer to a local union.
			key: "ptr_union",
			weight: func(c *pkgCtx) float64 {
				if len(c.localUnions) > 0 {
					return 2.2
				}
				return 0
			},
			decl: func(g *funcGen) string {
				u := g.ctx.localUnions[g.ctx.r.Intn(len(g.ctx.localUnions))]
				return "union " + u + " *"
			},
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				switch g.ctx.r.Intn(2) {
				case 0:
					g.stmt("if (%s != NULL) { %s += %s->i; }", p, acc, p)
				default:
					g.stmt("if (%s != NULL) { %s->d = %s->d * 0.5; }", p, p, p)
				}
			},
		},
		{
			// pointer to a typedef'd fixed-size array (deep nesting:
			// pointer name "mat4" array primitive float 64).
			key: "mat_ptr",
			weight: func(c *pkgCtx) float64 {
				if c.hasMat {
					return 2.0
				}
				return 0
			},
			decl: func(g *funcGen) string { return "mat4 *" },
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				g.stmt("if (%s != NULL) { %s += %s[0][0] + %s[0][3]; }", p, acc, p, p)
			},
		},
		{
			// double** (matrix rows): depth-3 nesting.
			key:    "ptr_ptr_double",
			weight: w(1.1),
			decl:   func(g *funcGen) string { return "double **" },
			use: func(g *funcGen, p string) {
				acc := g.local("accd", "double accd = 0;")
				g.stmt("if (%s != NULL && %s[0] != NULL) { %s += %s[0][1]; }", p, p, acc, p)
			},
		},
		{
			// const char** (argv-style with const): depth-3 nesting.
			key:    "ptr_ptr_const_char",
			weight: w(0.7),
			decl: func(g *funcGen) string {
				g.ctx.extern("strlen", "extern unsigned long strlen(const char *s);")
				return "const char **"
			},
			use: func(g *funcGen, p string) {
				acc := g.local("acci", "int acci = 0;")
				g.stmt("if (%s != NULL && %s[0] != NULL) { %s += (int) strlen(%s[0]); }", p, p, acc, p)
			},
		},
		{
			// float* (single-precision buffers).
			key:    "ptr_float",
			weight: w(1.2),
			decl:   func(g *funcGen) string { return "float *" },
			use: func(g *funcGen, p string) {
				acc := g.local("accf", "float accf = 0;")
				g.stmt("if (%s != NULL) { %s += %s[0] * 0.5f; }", p, acc, p)
			},
		},
		{
			// long long* (64-bit counters).
			key:    "ptr_i64",
			weight: w(0.8),
			decl:   func(g *funcGen) string { return "long long *" },
			use: func(g *funcGen, p string) {
				g.stmt("if (%s != NULL) { %s[0] = %s[0] + 1; }", p, p, p)
			},
		},
		{
			// unsigned short* (pixel/sample buffers).
			key:    "ptr_u16",
			weight: w(0.7),
			decl:   func(g *funcGen) string { return "unsigned short *" },
			use: func(g *funcGen, p string) {
				acc := g.local("accu", "unsigned int accu = 0;")
				g.stmt("if (%s != NULL) { %s += %s[0]; }", p, acc, p)
			},
		},
		{
			// const void* (opaque read-only blobs).
			key:    "const_void_ptr",
			weight: w(0.8),
			decl: func(g *funcGen) string {
				g.ctx.extern("checksum", "extern unsigned int checksum(const void *p, unsigned long n);")
				return "const void *"
			},
			use: func(g *funcGen, p string) {
				acc := g.local("accu", "unsigned int accu = 0;")
				g.stmt("if (%s != NULL) { %s ^= checksum(%s, 16); }", p, acc, p)
			},
		},
	}
}

// fix for ret of double spec above (string concat bug guard).
var _ = strings.TrimSpace
