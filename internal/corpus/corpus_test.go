package corpus

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

func TestGenerateDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Packages = 5
	a := Generate(opts)
	b := Generate(opts)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("got %d/%d packages", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Files) != len(b[i].Files) {
			t.Fatalf("package %d differs between runs", i)
		}
		for j := range a[i].Files {
			if a[i].Files[j].Source != b[i].Files[j].Source {
				t.Fatalf("file %s not deterministic", a[i].Files[j].Name)
			}
		}
	}
	// Different seeds differ.
	opts.Seed = 2
	c := Generate(opts)
	same := true
	for i := range a {
		if a[i].Files[0].Source != c[i].Files[0].Source {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// TestGeneratePackageIndependent: generating package i alone, in reverse
// order, or concurrently must reproduce Generate(opts)[i] exactly — the
// property that lets the parallel pipeline fan packages out over workers
// without changing the corpus.
func TestGeneratePackageIndependent(t *testing.T) {
	opts := DefaultOptions()
	opts.Packages = 8
	all := Generate(opts)
	lib := NewLibrary(opts.Seed)

	for i := opts.Packages - 1; i >= 0; i-- {
		p := GeneratePackage(opts, lib, i)
		if p.Name != all[i].Name || len(p.Files) != len(all[i].Files) {
			t.Fatalf("package %d differs when generated in isolation", i)
		}
		for j := range p.Files {
			if p.Files[j].Source != all[i].Files[j].Source {
				t.Fatalf("package %d file %d differs when generated in isolation", i, j)
			}
		}
	}

	// Concurrent generation over a shared library (run with -race).
	got := make([]Package, opts.Packages)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = GeneratePackage(opts, lib, i)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i].Files[0].Source != all[i].Files[0].Source {
			t.Fatalf("package %d differs when generated concurrently", i)
		}
	}
}

func TestAllGeneratedSourcesCompile(t *testing.T) {
	opts := DefaultOptions()
	opts.Packages = 30
	pkgs := Generate(opts)
	nfuncs := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			obj, err := cc.Compile(f.Source, cc.Options{FileName: f.Name, Debug: true})
			if err != nil {
				t.Fatalf("%s does not compile: %v\n--- source ---\n%s", f.Name, err, f.Source)
			}
			if err := wasm.Validate(obj.Module); err != nil {
				t.Fatalf("%s produces invalid wasm: %v\n--- source ---\n%s", f.Name, err, f.Source)
			}
			nfuncs += len(obj.Module.Funcs)
		}
	}
	if nfuncs < 100 {
		t.Errorf("only %d functions generated across 30 packages", nfuncs)
	}
}

func TestCorpusHasExpectedNames(t *testing.T) {
	opts := DefaultOptions()
	opts.Packages = 40
	pkgs := Generate(opts)
	sizeT, file := 0, 0
	for _, pkg := range pkgs {
		all := ""
		for _, f := range pkg.Files {
			all += f.Source
		}
		if strings.Contains(all, "typedef unsigned long size_t") {
			sizeT++
		}
		if strings.Contains(all, "} FILE;") {
			file++
		}
	}
	// Table 3 shares: size_t ~64%, FILE ~45% of packages. Allow slack.
	if sizeT < 15 || sizeT > 38 {
		t.Errorf("size_t in %d/40 packages, want roughly 25", sizeT)
	}
	if file < 8 || file > 32 {
		t.Errorf("FILE in %d/40 packages, want roughly 18", file)
	}
}

func TestLibraryDuplication(t *testing.T) {
	opts := DefaultOptions()
	opts.Packages = 40
	opts.LibraryShare = 1.0
	pkgs := Generate(opts)
	lib := buildLibrary(rand.New(rand.NewSource(1)))
	count := map[string]int{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, lf := range lib.funcs {
				if strings.Contains(f.Source, lf.name+"(") {
					count[lf.name]++
				}
			}
		}
	}
	dup := 0
	for _, c := range count {
		if c >= 2 {
			dup++
		}
	}
	if dup == 0 {
		t.Error("no library function appears in multiple files; dedup cannot be exercised")
	}
}
