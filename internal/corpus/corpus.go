// Package corpus generates a synthetic corpus of C/C++ packages that
// stands in for the paper's 4,081 Ubuntu source packages. Every package is
// a set of translation units compiled with the internal/cc compiler into
// WebAssembly object files with DWARF, so the downstream pipeline
// (extraction, dedup, splitting, training) is exactly the paper's.
//
// The generator is calibrated to the paper's measured distributions:
//
//   - parameter types follow Table 2's shape (pointer-to-class and
//     pointer-to-struct dominate, then int32, const pointers, char*, ...);
//   - return types are dominated by int32 (Table 4);
//   - type names follow Table 3 (size_t in ~64% of packages, FILE in
//     ~45%, C++ string machinery in ~16%, plus many package-local names);
//   - functions are duplicated across packages via a shared "static
//     library" pool, which the binary-level deduplication must remove
//     (Section 5).
//
// Crucially, generated function bodies use each parameter in
// type-revealing ways (f64 loads through double pointers, byte loads and
// string-function calls through char pointers, member loads at
// record-specific offsets, ...), so the code's instruction patterns carry
// the statistical signal the neural model learns — the same signal real
// compiled code carries.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options configures corpus generation.
type Options struct {
	Seed     int64
	Packages int
	// FilesPerPackage and FuncsPerFile bound the uniform ranges.
	MinFiles, MaxFiles int
	MinFuncs, MaxFuncs int
	// LibraryShare is the probability that a file statically links (i.e.
	// textually includes) functions from the shared library pool.
	LibraryShare float64
	// ExactDupShare is the probability that a package re-ships one of its
	// files verbatim under another name (an exact duplicate binary).
	ExactDupShare float64
}

// DefaultOptions returns a mid-size corpus configuration.
func DefaultOptions() Options {
	return Options{
		Seed:     1,
		Packages: 120,
		MinFiles: 1, MaxFiles: 3,
		MinFuncs: 4, MaxFuncs: 10,
		LibraryShare:  0.35,
		ExactDupShare: 0.15,
	}
}

// SourceFile is one translation unit.
type SourceFile struct {
	Name   string
	Source string
}

// Package is one synthetic source package.
type Package struct {
	Name  string
	Files []SourceFile
}

// Generate produces the synthetic corpus. Each package is generated from
// its own seed derived from (opts.Seed, index), so Generate(opts)[i] is
// identical to GeneratePackage(opts, lib, i) and the corpus does not
// depend on generation order — the property the parallel dataset
// pipeline's determinism guarantee rests on.
func Generate(opts Options) []Package {
	lib := NewLibrary(opts.Seed)
	pkgs := make([]Package, 0, opts.Packages)
	for i := 0; i < opts.Packages; i++ {
		pkgs = append(pkgs, GeneratePackage(opts, lib, i))
	}
	return pkgs
}

// GeneratePackage generates the idx-th package of the corpus described by
// opts, independently of every other package: the package's random stream
// is seeded from (opts.Seed, idx) alone. lib must come from
// NewLibrary(opts.Seed). Safe for concurrent use across goroutines.
func GeneratePackage(opts Options, lib *Library, idx int) Package {
	r := rand.New(rand.NewSource(pkgSeed(opts.Seed, idx)))
	return genPackage(r, idx, opts, lib)
}

// pkgSeed mixes the corpus seed and a package index into a per-package
// seed (splitmix64 finalizer), so neighbouring indices get uncorrelated
// random streams.
func pkgSeed(seed int64, idx int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// pkgCtx accumulates the declarations one file needs.
type pkgCtx struct {
	r          *rand.Rand
	pkgIdx     int
	isCPP      bool
	hasSizeT   bool
	hasFILE    bool
	hasVaList  bool
	hasString  bool
	hasIOSBase bool
	// Package-local record/enum names (project-specific, filtered out of
	// the common-name vocabulary).
	localStructs []string
	localClasses []string
	localEnums   []string
	localUnions  []string
	hasMat       bool              // typedef'd fixed-size matrix type (deep nesting)
	externs      map[string]string // name -> prototype
}

func (c *pkgCtx) extern(name, proto string) string {
	c.externs[name] = proto
	return name
}

var structNameParts = []string{
	"ctx", "node", "state", "buf", "entry", "conf", "req", "span",
	"item", "job", "task", "conn", "page", "frame", "cell", "slot",
}

var pkgPrefixes = []string{
	"amd", "glpk", "tiff", "gdal", "zmq", "curl", "pngx", "sqlx",
	"yaml", "avro", "brotli", "lz", "gsl", "fftw", "cairo", "pango",
	"expat", "jpeg", "uv", "ev", "pcre", "icu", "xml", "ssl",
}

func genPackage(r *rand.Rand, idx int, opts Options, lib *Library) Package {
	pkgName := fmt.Sprintf("%s-%d", pkgPrefixes[r.Intn(len(pkgPrefixes))], idx)
	// ~55% of packages are "C++" (define classes): makes pointer-to-class
	// the most common parameter type, as in Table 2.
	isCPP := r.Float64() < 0.55

	nfiles := opts.MinFiles + r.Intn(opts.MaxFiles-opts.MinFiles+1)
	pkg := Package{Name: pkgName}
	for f := 0; f < nfiles; f++ {
		ctx := &pkgCtx{
			r:      r,
			pkgIdx: idx,
			isCPP:  isCPP,
			// Table 3 package shares.
			hasSizeT:   r.Float64() < 0.64,
			hasFILE:    r.Float64() < 0.45,
			hasString:  isCPP && r.Float64() < 0.30,
			hasIOSBase: isCPP && r.Float64() < 0.28,
			hasVaList:  r.Float64() < 0.16,
			externs:    map[string]string{},
		}
		// Local type names are project-specific: they embed the package
		// index so they never cross the common-name threshold (the paper
		// filters such names out of the prediction vocabulary).
		used := map[string]bool{}
		for i := 0; i < 1+r.Intn(3); i++ {
			name := fmt.Sprintf("%s%d_%s", strings.SplitN(pkgName, "-", 2)[0], idx, structNameParts[r.Intn(len(structNameParts))])
			if used[name] {
				continue
			}
			used[name] = true
			ctx.localStructs = append(ctx.localStructs, name)
		}
		if isCPP {
			for i := 0; i < 1+r.Intn(2); i++ {
				part := structNameParts[r.Intn(len(structNameParts))]
				name := strings.ToUpper(part[:1]) + part[1:] + fmt.Sprintf("Impl%d_%d", idx, i)
				if used[name] {
					continue
				}
				used[name] = true
				ctx.localClasses = append(ctx.localClasses, name)
			}
		}
		if r.Float64() < 0.4 {
			ctx.localEnums = append(ctx.localEnums, fmt.Sprintf("mode%d_%d", idx, f))
		}
		if r.Float64() < 0.3 {
			ctx.localUnions = append(ctx.localUnions, fmt.Sprintf("var%d_%s", idx, structNameParts[r.Intn(len(structNameParts))]))
		}
		if r.Float64() < 0.25 {
			ctx.hasMat = true
		}

		nfuncs := opts.MinFuncs + r.Intn(opts.MaxFuncs-opts.MinFuncs+1)
		var funcs []string
		for i := 0; i < nfuncs; i++ {
			funcs = append(funcs, genFunction(ctx, fmt.Sprintf("%s_f%d_%d", strings.ReplaceAll(pkgName, "-", "_"), f, i)))
		}
		// Statically "link" shared library code into some files: these
		// identical function bodies across packages are what binary-level
		// dedup exists to catch.
		if r.Float64() < opts.LibraryShare {
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				fn := lib.funcs[r.Intn(len(lib.funcs))]
				if !strings.Contains(strings.Join(funcs, ""), fn.name) {
					funcs = append(funcs, fn.source)
					for k, v := range fn.externs {
						ctx.externs[k] = v
					}
					ctx.hasSizeT = ctx.hasSizeT || fn.needsSizeT
					ctx.hasFILE = ctx.hasFILE || fn.needsFILE
				}
			}
		}
		src := assembleFile(ctx, funcs)
		pkg.Files = append(pkg.Files, SourceFile{
			Name:   fmt.Sprintf("%s_%d.c", pkgName, f),
			Source: src,
		})
	}
	// Exact duplicates: the same translation unit shipped twice.
	if r.Float64() < opts.ExactDupShare && len(pkg.Files) > 0 {
		orig := pkg.Files[r.Intn(len(pkg.Files))]
		pkg.Files = append(pkg.Files, SourceFile{Name: "dup_" + orig.Name, Source: orig.Source})
	}
	return pkg
}

// assembleFile emits the declarations a file's functions need, then the
// functions themselves.
func assembleFile(ctx *pkgCtx, funcs []string) string {
	var sb strings.Builder
	sb.WriteString("/* generated by the snowwhite synthetic corpus */\n")
	if ctx.hasSizeT {
		sb.WriteString("typedef unsigned long size_t;\n")
	}
	if ctx.hasFILE {
		sb.WriteString("typedef struct _IO_FILE { int fd; int flags; long pos; } FILE;\n")
		sb.WriteString("extern int fgetc(FILE *stream);\n")
		sb.WriteString("extern int fputc(int c, FILE *stream);\n")
		sb.WriteString("extern int fflush(FILE *stream);\n")
	}
	if ctx.hasVaList {
		sb.WriteString("typedef struct __va_list_tag { int gp; int fp; void *area; } va_list;\n")
	}
	if ctx.hasString {
		sb.WriteString("typedef class string_impl { char *data; unsigned long len; unsigned long cap; } string;\n")
		sb.WriteString("extern unsigned long string_size(string *s);\n")
		sb.WriteString("extern char *string_data(string *s);\n")
	}
	if ctx.hasIOSBase {
		sb.WriteString("typedef class ios_base_impl { int state; int flags; long width; } ios_base;\n")
		sb.WriteString("extern int ios_good(ios_base *b);\n")
	}
	for _, s := range ctx.localStructs {
		sb.WriteString(fmt.Sprintf("struct %s { int id; double weight; struct %s *next; char tag; };\n", s, s))
	}
	for _, c := range ctx.localClasses {
		sb.WriteString(fmt.Sprintf("class %s { int refcount; double *values; long n; };\n", c))
	}
	for _, e := range ctx.localEnums {
		sb.WriteString(fmt.Sprintf("enum %s { %s_OFF, %s_ON, %s_AUTO };\n", e, strings.ToUpper(e), strings.ToUpper(e), strings.ToUpper(e)))
	}
	for _, u := range ctx.localUnions {
		sb.WriteString(fmt.Sprintf("union %s { int i; double d; char *s; };\n", u))
	}
	if ctx.hasMat {
		sb.WriteString("typedef double mat4[4];\n")
	}
	// Stable extern order.
	names := make([]string, 0, len(ctx.externs))
	for n := range ctx.externs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		sb.WriteString(ctx.externs[n] + "\n")
	}
	sb.WriteString("\n")
	for _, f := range funcs {
		sb.WriteString(f)
		sb.WriteString("\n")
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
