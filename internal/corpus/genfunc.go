package corpus

import (
	"fmt"
	"strings"
)

// pickSpec samples a spec by weight; the weightOf selector chooses
// parameter or return weights.
func pickSpec(ctx *pkgCtx, specs []spec, weightOf func(spec) func(*pkgCtx) float64) *spec {
	total := 0.0
	for i := range specs {
		if wf := weightOf(specs[i]); wf != nil {
			total += wf(ctx)
		}
	}
	if total == 0 {
		return &specs[2] // int fallback
	}
	x := ctx.r.Float64() * total
	for i := range specs {
		wf := weightOf(specs[i])
		if wf == nil {
			continue
		}
		x -= wf(ctx)
		if x <= 0 {
			return &specs[i]
		}
	}
	return &specs[len(specs)-1]
}

// genFunction produces the source of one function with sampled parameter
// and return types and type-revealing body statements.
func genFunction(ctx *pkgCtx, name string) string {
	specs := catalog()
	g := &funcGen{ctx: ctx, locals: map[string]bool{}}

	// Parameter count: mostly 1-3, sometimes 0 or up to 5.
	nparams := 1 + ctx.r.Intn(3)
	switch ctx.r.Intn(10) {
	case 0:
		nparams = 0
	case 1:
		nparams = 4 + ctx.r.Intn(2)
	}

	type paramInfo struct {
		name string
		spec *spec
		typ  string
	}
	params := make([]paramInfo, 0, nparams)
	for i := 0; i < nparams; i++ {
		sp := pickSpec(ctx, specs, func(s spec) func(*pkgCtx) float64 { return s.weight })
		pname := fmt.Sprintf("%s%d", paramNames[ctx.r.Intn(len(paramNames))], i)
		params = append(params, paramInfo{name: pname, spec: sp, typ: sp.decl(g)})
	}

	// Return type: ~45% void, otherwise sampled from return weights.
	var retSpec *spec
	retType := "void "
	if ctx.r.Float64() > 0.45 {
		retSpec = pickSpec(ctx, specs, func(s spec) func(*pkgCtx) float64 { return s.retWeight })
		if retSpec.ret == nil {
			retSpec = nil
		} else {
			retType = retSpec.decl(g)
		}
	}

	// Body: exercise every parameter; order shuffled for variety.
	order := ctx.r.Perm(len(params))
	for _, idx := range order {
		p := params[idx]
		p.spec.use(g, p.name)
		if ctx.r.Intn(4) == 0 {
			p.spec.use(g, p.name) // a second, different usage site
		}
	}
	// Return statement.
	if retSpec != nil {
		var sameTyped []string
		for _, p := range params {
			if p.spec.key == retSpec.key {
				sameTyped = append(sameTyped, p.name)
			}
		}
		g.stmt("return %s;", retSpec.ret(g, sameTyped))
	}

	var sig []string
	for _, p := range params {
		sig = append(sig, strings.TrimRight(p.typ, " ")+" "+p.name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s%s(%s) {\n", retType, name, strings.Join(sig, ", "))
	for _, line := range g.body {
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

var paramNames = []string{
	"p", "v", "arg", "in", "out", "data", "ctx", "obj", "val", "src", "dst", "n",
}
