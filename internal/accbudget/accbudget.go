// Package accbudget is the accuracy-budget harness for the
// inference-only fast-math engine. Quantized weights and fused-rounding
// kernels (ad.NewForwardFast, internal/quant) trade bitwise fidelity
// for speed; this package measures what that trade costs on real
// queries and enforces a budget on it: the candidate (quantized or
// fast-math) predictor's top-1 prediction must appear in the reference
// (full-precision) predictor's top-k on at least a configured fraction
// of a held-out evaluation set. scripts/verify.sh wires the gate into
// the standard check; `snowwhite acctest` is the CLI entry point.
package accbudget

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// Kind says which task model answers a query.
type Kind string

const (
	Param  Kind = "param"
	Return Kind = "return"
)

// Query is one signature element drawn from the evaluation set: the
// prepared model input sequence plus enough provenance to report a
// mismatch usefully.
type Query struct {
	Binary string // relative path of the .wasm file
	Func   int    // module-defined function index
	Elem   string // "param0".."paramN" or "return"
	Kind   Kind
	Src    []string // extracted model input sequence
}

// QueriesFromDir extracts one query per predictable signature element
// from every .wasm binary under root, using the predictor's extraction
// options so candidates see exactly the inputs production prediction
// builds. Binaries that fail strict decoding are skipped (their names
// are returned for reporting); extraction runs on stripped modules.
func QueriesFromDir(p *core.Predictor, root string) (queries []Query, skipped []string, err error) {
	var paths []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".wasm") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		name := filepath.ToSlash(rel)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		m, rerr := core.DecodeStripped(data)
		if rerr != nil {
			skipped = append(skipped, name)
			continue
		}
		for fi := range m.Funcs {
			fn := &m.Funcs[fi]
			if int(fn.TypeIdx) >= len(m.Types) {
				continue
			}
			sig := m.Types[fn.TypeIdx]
			if p.Param != nil {
				for pi := range sig.Params {
					src, perr := p.ParamInput(m, fi, pi)
					if perr != nil {
						continue
					}
					queries = append(queries, Query{
						Binary: name, Func: fi, Elem: fmt.Sprintf("param%d", pi),
						Kind: Param, Src: src,
					})
				}
			}
			if p.Return != nil && len(sig.Results) == 1 {
				src, rerr := p.ReturnInput(m, fi)
				if rerr != nil {
					continue
				}
				queries = append(queries, Query{
					Binary: name, Func: fi, Elem: "return", Kind: Return, Src: src,
				})
			}
		}
	}
	return queries, skipped, nil
}

// Mismatch records one query where the candidate's top-1 prediction
// left the reference's top-k.
type Mismatch struct {
	Query Query    `json:"query"`
	Ref   []string `json:"ref"`  // reference top-k prediction texts
	Cand  string   `json:"cand"` // candidate top-1 prediction text
}

// maxMismatches caps how many mismatches a report retains; counts keep
// accumulating past the cap.
const maxMismatches = 20

// Report aggregates the agreement between a candidate and a reference
// predictor over one query set.
type Report struct {
	TopK  int `json:"top_k"`
	Total int `json:"total"`
	// Top1Matches counts queries whose candidate top-1 equals the
	// reference top-1 exactly (an informational, stricter metric).
	Top1Matches int `json:"top1_matches"`
	// TopKMatches counts queries whose candidate top-1 appears anywhere
	// in the reference top-k — the gated metric.
	TopKMatches   int        `json:"topk_matches"`
	ParamTotal    int        `json:"param_total"`
	ParamMatches  int        `json:"param_matches"`
	ReturnTotal   int        `json:"return_total"`
	ReturnMatches int        `json:"return_matches"`
	Mismatches    []Mismatch `json:"mismatches,omitempty"`
}

// Top1Agreement is the fraction of queries with exact top-1 agreement.
func (r *Report) Top1Agreement() float64 { return frac(r.Top1Matches, r.Total) }

// TopKAgreement is the fraction of queries whose candidate top-1 lies
// in the reference top-k — the budgeted metric.
func (r *Report) TopKAgreement() float64 { return frac(r.TopKMatches, r.Total) }

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Pass reports whether the candidate stays within the accuracy budget.
// An empty query set fails: a gate that never measured anything must
// not pass.
func (r *Report) Pass(budget float64) bool {
	return r.Total > 0 && r.TopKAgreement() >= budget
}

// Compare runs every query through both predictors at beam width k and
// scores whether the candidate's top-1 beam appears in the reference's
// top-k (and, informationally, whether the top-1s agree). Queries
// whose kind has no model on either side are skipped. Both predictors
// decode through the batched path, so this also exercises exactly the
// code the server runs.
func Compare(ref, cand *core.Predictor, queries []Query, k int) *Report {
	rep := &Report{TopK: k}
	compareKind(rep, refModel(ref, Param), refModel(cand, Param), queries, Param)
	compareKind(rep, refModel(ref, Return), refModel(cand, Return), queries, Return)
	return rep
}

func refModel(p *core.Predictor, kind Kind) *core.Trained {
	if p == nil {
		return nil
	}
	if kind == Param {
		return p.Param
	}
	return p.Return
}

func compareKind(rep *Report, ref, cand *core.Trained, queries []Query, kind Kind) {
	if ref == nil || cand == nil {
		return
	}
	var qs []Query
	for _, q := range queries {
		if q.Kind == kind {
			qs = append(qs, q)
		}
	}
	if len(qs) == 0 {
		return
	}
	// Both sides decode at the same beam width: width changes the search
	// itself, so a width-1 candidate would disagree with a width-k
	// reference even for identical models. The candidate's top-1 is the
	// first entry of its width-k beam.
	srcs := make([][]string, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		srcs[i] = q.Src
		ks[i] = rep.TopK
	}
	refPreds := ref.PredictTyped(srcs, ks)
	candPreds := cand.PredictTyped(srcs, ks)
	for i, q := range qs {
		rep.Total++
		total, matches := &rep.ParamTotal, &rep.ParamMatches
		if kind == Return {
			total, matches = &rep.ReturnTotal, &rep.ReturnMatches
		}
		*total++
		refTexts := make([]string, len(refPreds[i]))
		for j, p := range refPreds[i] {
			refTexts[j] = p.Text
		}
		var candText string
		if len(candPreds[i]) > 0 {
			candText = candPreds[i][0].Text
		}
		// Empty-vs-empty agrees: both sides declined to predict.
		top1 := len(refTexts) == 0 && candText == ""
		topK := top1
		if len(refTexts) > 0 && candText != "" {
			top1 = refTexts[0] == candText
			for _, t := range refTexts {
				if t == candText {
					topK = true
					break
				}
			}
		}
		if top1 {
			rep.Top1Matches++
		}
		if topK {
			rep.TopKMatches++
			*matches++
		} else if len(rep.Mismatches) < maxMismatches {
			rep.Mismatches = append(rep.Mismatches, Mismatch{Query: q, Ref: refTexts, Cand: candText})
		}
	}
}
