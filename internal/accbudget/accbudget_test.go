package accbudget

import (
	"testing"

	"repro/internal/core"
	"repro/internal/quant"
)

// tinyPredictor trains the smallest useful predictor, matching the
// shape core's own tests use.
func tinyPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = 16
	cfg.Corpus.MinFuncs = 3
	cfg.Corpus.MaxFuncs = 5
	cfg.Model.Hidden = 32
	cfg.Model.Embed = 24
	cfg.Model.Epochs = 1
	cfg.Model.MaxSrcLen = 60
	cfg.BPESrcVocab = 300
	p, err := core.TrainPredictor(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHarnessEndToEnd drives the full accuracy-budget flow on the
// checked-in evaluation binaries: extract queries, compare the
// reference against itself (must agree perfectly), then against its
// quantized fast-math counterpart (must produce a consistent report).
func TestHarnessEndToEnd(t *testing.T) {
	p := tinyPredictor(t)
	queries, skipped, err := QueriesFromDir(p, "../ingest/testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 {
		t.Fatal("no queries extracted from evaluation binaries")
	}
	t.Logf("%d queries extracted, %d binaries skipped", len(queries), len(skipped))
	var params, returns int
	for _, q := range queries {
		switch q.Kind {
		case Param:
			params++
		case Return:
			returns++
		default:
			t.Fatalf("query with unknown kind %q", q.Kind)
		}
		if len(q.Src) == 0 {
			t.Fatalf("query %s/%d/%s has empty input", q.Binary, q.Func, q.Elem)
		}
	}
	if params == 0 || returns == 0 {
		t.Fatalf("want both kinds represented, got %d params, %d returns", params, returns)
	}

	// Reference vs itself: perfect agreement, and the gate passes.
	self := Compare(p, p, queries, 3)
	if self.Total != len(queries) {
		t.Errorf("self-compare scored %d of %d queries", self.Total, len(queries))
	}
	if self.Top1Agreement() != 1 || self.TopKAgreement() != 1 {
		t.Errorf("self-compare agreement = %g/%g, want 1/1 (mismatches: %v)",
			self.Top1Agreement(), self.TopKAgreement(), self.Mismatches)
	}
	if !self.Pass(0.99) {
		t.Error("self-compare failed the 99%% budget")
	}
	// An unreachable budget must fail even at full agreement.
	if self.Pass(1.01) {
		t.Error("Pass accepted an unreachable budget")
	}
	if self.ParamTotal+self.ReturnTotal != self.Total {
		t.Errorf("kind totals %d+%d do not sum to %d", self.ParamTotal, self.ReturnTotal, self.Total)
	}

	// Reference vs quantized fast-math candidate: the report must stay
	// internally consistent whatever the agreement comes out to.
	for _, mode := range []quant.Mode{quant.F32, quant.Int8} {
		q, err := core.QuantizePredictor(p, mode)
		if err != nil {
			t.Fatal(err)
		}
		rep := Compare(p, q, queries, 3)
		if rep.Total != len(queries) {
			t.Errorf("%s: scored %d of %d queries", mode, rep.Total, len(queries))
		}
		if rep.TopKMatches < rep.Top1Matches || rep.TopKMatches > rep.Total {
			t.Errorf("%s: inconsistent counts top1=%d topk=%d total=%d",
				mode, rep.Top1Matches, rep.TopKMatches, rep.Total)
		}
		if len(rep.Mismatches) < maxMismatches && rep.Total-rep.TopKMatches != len(rep.Mismatches) {
			t.Errorf("%s: %d mismatches recorded for %d disagreements",
				mode, len(rep.Mismatches), rep.Total-rep.TopKMatches)
		}
		t.Logf("%s: top-1 %.3f, top-3 %.3f (%d/%d)", mode,
			rep.Top1Agreement(), rep.TopKAgreement(), rep.TopKMatches, rep.Total)
	}
}

// TestReportEdgeCases pins the gate's behavior on degenerate inputs.
func TestReportEdgeCases(t *testing.T) {
	empty := &Report{TopK: 3}
	if empty.Pass(0.0) {
		t.Error("empty report passed the gate")
	}
	if empty.Top1Agreement() != 0 || empty.TopKAgreement() != 0 {
		t.Error("empty report has nonzero agreement")
	}
	r := &Report{TopK: 3, Total: 100, TopKMatches: 99, Top1Matches: 90}
	if !r.Pass(0.99) {
		t.Error("99/100 failed a 0.99 budget")
	}
	if r.Pass(0.995) {
		t.Error("99/100 passed a 0.995 budget")
	}
}
