package ingest

import (
	"repro/internal/core"
)

// Report is the structured result of ingesting one binary: what the
// loader found (sections, diagnostics, names with provenance) and what
// the models predict for every signature element, with normalized
// confidences. In eval mode, labeled elements additionally carry their
// DWARF-derived ground truth and the rank at which the predictions hit
// it.
type Report struct {
	Schema    string `json:"schema"`
	Binary    string `json:"binary"`
	SizeBytes int    `json:"size_bytes"`
	// Error is set when the binary was unusable (bad magic/version); all
	// other fields are then empty.
	Error string `json:"error,omitempty"`
	// DwarfError explains why present-looking DWARF sections could not be
	// read.
	DwarfError string           `json:"dwarf_error,omitempty"`
	Sections   []SectionReport  `json:"sections,omitempty"`
	Funcs      []FunctionReport `json:"functions,omitempty"`
	// Eval summarizes the external evaluation when ground truth was
	// available.
	Eval *EvalReport `json:"eval,omitempty"`
}

// Degraded reports whether any section needed tolerance (anything beyond
// a clean parse).
func (r *Report) Degraded() bool {
	for _, s := range r.Sections {
		if s.Status != "ok" {
			return true
		}
	}
	return false
}

// SectionReport is one section's diagnostic.
type SectionReport struct {
	ID     byte   `json:"id"`
	Name   string `json:"name,omitempty"`
	Offset int    `json:"offset"`
	Size   int    `json:"size"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// FunctionReport covers one module-defined function.
type FunctionReport struct {
	// Index is the function's index in the full index space (imports
	// first), the way tools and the names section number functions.
	Index      int    `json:"index"`
	Name       string `json:"name"`
	NameSource string `json:"name_source"`
	// Signature is the low-level wasm signature; "?" when the type
	// section did not deliver it.
	Signature string          `json:"signature"`
	Elements  []ElementReport `json:"elements,omitempty"`
}

// ElementReport is one signature element (a parameter or the return
// value) with its ranked type predictions.
type ElementReport struct {
	// Element is "param0".."paramN" or "return".
	Element string `json:"element"`
	// LowType is the element's low-level wasm type.
	LowType string `json:"low_type"`
	// Predictions are ranked best-first with normalized confidences.
	Predictions []core.TypePrediction `json:"predictions,omitempty"`
	// Truth is the DWARF-derived label (eval mode only).
	Truth string `json:"truth,omitempty"`
	// TruthRank is the 1-based rank of the exact match among the
	// predictions; 0 when no prediction matched (or outside eval mode).
	TruthRank int `json:"truth_rank,omitempty"`
}

// EvalReport is an accuracy summary over labeled elements.
type EvalReport struct {
	// Labeled counts signature elements with DWARF ground truth.
	Labeled int     `json:"labeled_elements"`
	Top1    float64 `json:"top1"`
	Top5    float64 `json:"top5"`
	TPS     float64 `json:"tps"`
}
