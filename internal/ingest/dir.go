package ingest

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// DirReport aggregates one report per binary under a directory, in
// path-sorted order, plus a corpus-wide eval summary when evaluation ran.
type DirReport struct {
	Schema   string    `json:"schema"`
	Binaries []*Report `json:"binaries"`
	// Eval merges every binary's labeled elements into one summary.
	Eval *EvalReport `json:"eval,omitempty"`
}

// Dir ingests every .wasm file under root through a bounded worker pool
// (workers <= 0 means one per binary, capped at 8). Binaries are
// discovered and reported in sorted relative-path order and each binary
// is ingested independently, so the output is byte-identical at any
// worker count.
func (ing *Ingester) Dir(root string, workers int) (*DirReport, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".wasm") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("ingest: no .wasm files under %s", root)
	}
	sort.Strings(paths)

	if workers <= 0 || workers > len(paths) {
		workers = len(paths)
	}
	if workers > 8 {
		workers = 8
	}

	type scored struct {
		rep *Report
		acc *metrics.Accuracy
	}
	results := make([]scored, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rel, rerr := filepath.Rel(root, paths[i])
				if rerr != nil {
					rel = paths[i]
				}
				name := filepath.ToSlash(rel)
				data, rerr := os.ReadFile(paths[i])
				if rerr != nil {
					results[i] = scored{rep: &Report{Schema: Schema, Binary: name, Error: rerr.Error()}}
					continue
				}
				rep, acc := ing.binaryScored(name, data)
				results[i] = scored{rep: rep, acc: acc}
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := &DirReport{Schema: Schema}
	var agg *metrics.Accuracy
	for _, r := range results {
		out.Binaries = append(out.Binaries, r.rep)
		if r.acc != nil {
			if agg == nil {
				agg = &metrics.Accuracy{}
			}
			agg.Merge(r.acc)
		}
	}
	if agg != nil {
		out.Eval = evalReport(agg)
	}
	return out, nil
}
