package ingest

import (
	"encoding/json"
	"testing"

	"repro/internal/cc"
	"repro/internal/leb128"
)

// FuzzIngest drives the tolerant loader and the load-only report path
// with arbitrary bytes. Seeds cover the realistic shapes: clean binaries
// with and without DWARF, unknown-id and custom-section tails, truncated
// and bit-flipped variants. The invariant is total robustness: Binary
// never panics, never fails (it reports), names stay index-aligned with
// functions, and every report marshals to JSON.
func FuzzIngest(f *testing.F) {
	for _, debug := range []bool{false, true} {
		obj, err := cc.Compile(`
int mix(int a, float b) { return a + (int)b; }
long touch(long *p) { if (p != 0) { return *p; } return 0; }
`, cc.Options{FileName: "seed.c", Debug: debug})
		if err != nil {
			f.Fatal(err)
		}
		bin := obj.Binary
		f.Add(bin)
		// Unknown section id appended after the code.
		f.Add(appendRawSection(bin, 63, []byte{0xde, 0xad}))
		// Custom section with a name and payload.
		var meta []byte
		meta = leb128.AppendUint(meta, uint64(len("producer")))
		meta = append(meta, "producer"...)
		meta = append(meta, "fuzz 1.0"...)
		f.Add(appendRawSection(bin, 0, meta))
		// Custom section whose name length overruns the payload.
		f.Add(appendRawSection(bin, 0, []byte{0xff}))
		// Truncated tails at a few depths.
		for _, cut := range []int{1, 7, len(bin) / 2} {
			if cut < len(bin) {
				f.Add(bin[:len(bin)-cut])
			}
		}
		// A bit flip in the middle of the code section.
		flip := append([]byte(nil), bin...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x61, 0x73, 0x6d}) // magic only
	f.Add([]byte{0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		ing := &Ingester{}
		rep := ing.Binary("fuzz.wasm", data)
		if rep == nil {
			t.Fatal("Binary returned nil report")
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("report does not marshal: %v", err)
		}
		if rep.Error != "" {
			return // rejected outright; nothing more to check
		}
		ld, err := Load(data)
		if err != nil {
			t.Fatalf("Binary accepted what Load rejects: %v", err)
		}
		if len(ld.Names) != len(ld.Decoded.Module.Funcs) {
			t.Fatalf("%d names for %d functions", len(ld.Names), len(ld.Decoded.Module.Funcs))
		}
		for i, rn := range ld.Names {
			if rn.Name == "" || rn.Source == "" {
				t.Fatalf("function %d: unresolved name %+v", i, rn)
			}
		}
	})
}
