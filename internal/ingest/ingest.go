// Package ingest is the front door for real-world WebAssembly binaries:
// modules the corpus generator never emitted, carrying producer metadata,
// custom sections, partial name information, and occasionally embedded
// DWARF. It layers a tolerant loading policy over internal/wasm, resolves
// the best available function names with explicit provenance, predicts
// parameter and return types for every module-defined function through
// the trained models' batched decoder, and — when DWARF is present — runs
// an external evaluation: DWARF becomes ground truth, the binary is
// stripped, and the predictions are scored against labels the training
// corpus never saw.
package ingest

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/extract"
	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// Schema identifies the report format; bump on breaking changes.
const Schema = "snowwhite.ingest/v1"

// Loaded is a tolerantly decoded binary plus everything ingestion derives
// from it before prediction: section diagnostics, the DWARF tree when one
// is readable, the subprogram match per function, and resolved names.
type Loaded struct {
	Decoded *wasm.Decoded
	Diags   []wasm.SectionDiag
	// CU is the DWARF compile unit, nil when the binary embeds no
	// (readable) debug info.
	CU *dwarf.DIE
	// DwarfErr explains a nil CU when DWARF sections were present but
	// unreadable; nil when DWARF is simply absent.
	DwarfErr error
	// Subs maps defined-function index (into Module.Funcs) to its
	// DW_TAG_subprogram DIE, matched by DW_AT_low_pc == code offset.
	Subs map[int]*dwarf.DIE
	// Names holds one resolved name per defined function, provenance
	// included.
	Names []ResolvedName
}

// Load tolerantly decodes a binary and resolves DWARF matches and
// function names. Only an unusable header fails; everything else degrades
// into diagnostics.
func Load(data []byte) (*Loaded, error) {
	tol, err := wasm.DecodeTolerant(data)
	if err != nil {
		return nil, err
	}
	ld := &Loaded{
		Decoded: tol.Decoded,
		Diags:   tol.Diags,
		Subs:    map[int]*dwarf.DIE{},
	}
	m := tol.Decoded.Module
	if m.Custom(dwarf.SectionInfo) != nil {
		secs, err := dwarf.Extract(m)
		if err == nil {
			ld.CU, err = dwarf.Read(secs)
		}
		if err != nil {
			ld.DwarfErr = err
		}
	}
	if ld.CU != nil {
		funcByOffset := make(map[uint32]int, len(tol.Decoded.CodeOffsets))
		for i, off := range tol.Decoded.CodeOffsets {
			funcByOffset[off] = i
		}
		for _, sub := range ld.CU.FindAll(dwarf.TagSubprogram) {
			if pc, ok := sub.Uint(dwarf.AttrLowPC); ok {
				if fi, ok := funcByOffset[uint32(pc)]; ok {
					ld.Subs[fi] = sub
				}
			}
		}
	}
	ld.Names = resolveNames(m, ld.Subs)
	return ld, nil
}

// Ingester turns binaries into reports. The zero value (nil predictor)
// produces load-only reports: sections, names, signatures, no
// predictions — the mode the fuzz target drives.
type Ingester struct {
	// Pred supplies the parameter and return models; nil skips
	// prediction.
	Pred *core.Predictor
	// K is the number of ranked predictions per signature element
	// (default 5).
	K int
	// Eval enables the external evaluation harness on DWARF-bearing
	// binaries: ground-truth labels from DWARF, predictions on the
	// stripped module, per-element ranks and a per-binary accuracy
	// summary.
	Eval bool
	// Metrics (may be nil) receives operational counters and latencies.
	Metrics *Metrics
}

func (ing *Ingester) k() int {
	if ing.K > 0 {
		return ing.K
	}
	return 5
}

// Binary ingests one binary. It never fails: an unusable binary yields a
// report whose Error field is set and whose other fields are empty.
func (ing *Ingester) Binary(name string, data []byte) *Report {
	rep, _ := ing.binaryScored(name, data)
	return rep
}

// elemQuery is one signature element queued for batched prediction.
type elemQuery struct {
	fn   int // index into Report.Funcs
	elem int // index into that function's Elements
	src  []string
}

// binaryScored ingests one binary and additionally returns the raw
// accuracy accumulator when evaluation ran (for cross-binary merging).
func (ing *Ingester) binaryScored(name string, data []byte) (*Report, *metrics.Accuracy) {
	start := time.Now()
	rep := &Report{Schema: Schema, Binary: name, SizeBytes: len(data)}
	ld, err := Load(data)
	if err != nil {
		rep.Error = err.Error()
		ing.Metrics.observe(rep, start)
		return rep, nil
	}
	for _, dg := range ld.Diags {
		sr := SectionReport{
			ID: dg.ID, Name: dg.Name, Offset: dg.Offset, Size: dg.Size,
			Status: string(dg.Status),
		}
		if dg.Err != nil {
			sr.Error = dg.Err.Error()
		}
		rep.Sections = append(rep.Sections, sr)
	}
	if ld.DwarfErr != nil {
		rep.DwarfError = ld.DwarfErr.Error()
	}

	m := ld.Decoded.Module
	truth := map[[2]int][]string{} // (func, element) -> label tokens
	if ing.Eval && ing.Pred != nil && ld.CU != nil {
		ing.label(ld, truth)
	}
	// Predictions run on the stripped module: DWARF (and every other
	// custom section) plays no part in extraction, so the report reflects
	// exactly what a reverse engineer gets from the code alone.
	dwarf.Strip(m)

	nimp := m.NumImportedFuncs()
	var paramQ, returnQ []elemQuery
	for i := range m.Funcs {
		fn := &m.Funcs[i]
		fr := FunctionReport{
			Index:      nimp + i,
			Name:       ld.Names[i].Name,
			NameSource: string(ld.Names[i].Source),
		}
		if int(fn.TypeIdx) >= len(m.Types) {
			// A tolerantly loaded module can frame a function whose type
			// the (malformed) type section never delivered.
			fr.Signature = "?"
			rep.Funcs = append(rep.Funcs, fr)
			continue
		}
		sig := m.Types[fn.TypeIdx]
		fr.Signature = sig.String()
		for pi, low := range sig.Params {
			el := ElementReport{Element: fmt.Sprintf("param%d", pi), LowType: low.String()}
			if ing.Pred != nil && ing.Pred.Param != nil {
				paramQ = append(paramQ, elemQuery{
					fn: len(rep.Funcs), elem: len(fr.Elements),
					src: extract.InputForParam(fn, pi, low, ing.Pred.Opts),
				})
			}
			fr.Elements = append(fr.Elements, el)
		}
		if len(sig.Results) == 1 {
			el := ElementReport{Element: "return", LowType: sig.Results[0].String()}
			if ing.Pred != nil && ing.Pred.Return != nil {
				returnQ = append(returnQ, elemQuery{
					fn: len(rep.Funcs), elem: len(fr.Elements),
					src: extract.InputForReturn(fn, sig.Results[0], ing.Pred.Opts),
				})
			}
			fr.Elements = append(fr.Elements, el)
		}
		rep.Funcs = append(rep.Funcs, fr)
	}

	if ing.Pred != nil {
		ing.decode(rep, ing.Pred.Param, paramQ)
		ing.decode(rep, ing.Pred.Return, returnQ)
	}

	var acc *metrics.Accuracy
	if len(truth) > 0 {
		acc = ing.score(rep, truth)
	}
	ing.Metrics.observe(rep, start)
	return rep, acc
}

// decode runs one model's queued queries through the batched decoder and
// installs the ranked predictions into the report.
func (ing *Ingester) decode(rep *Report, tr *core.Trained, qs []elemQuery) {
	if tr == nil || len(qs) == 0 {
		return
	}
	srcs := make([][]string, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		srcs[i] = q.src
		ks[i] = ing.k()
	}
	preds := tr.PredictTyped(srcs, ks)
	for i, q := range qs {
		rep.Funcs[q.fn].Elements[q.elem].Predictions = preds[i]
	}
}

// label converts DWARF subprogram signatures into ground-truth label
// tokens, keyed by (defined-function index, element index). Element
// indices match the report's layout: params first (only when the DWARF
// and wasm parameter counts agree, as in corpus extraction), then the
// return element when both sides have one.
func (ing *Ingester) label(ld *Loaded, truth map[[2]int][]string) {
	m := ld.Decoded.Module
	for i := range m.Funcs {
		sub, ok := ld.Subs[i]
		if !ok || int(m.Funcs[i].TypeIdx) >= len(m.Types) {
			continue
		}
		sig := m.Types[m.Funcs[i].TypeIdx]
		params := sub.FindAll(dwarf.TagFormalParameter)
		if len(params) == len(sig.Params) {
			for pi, pdie := range params {
				master := typelang.FromDWARF(pdie.TypeRef(), typelang.AllNames())
				truth[[2]int{i, pi}] = ing.Pred.Param.Task.Variant.Apply(master, vocabNames(ing.Pred.Param))
			}
		}
		if ret := sub.TypeRef(); ret != nil && len(sig.Results) == 1 && ing.Pred.Return != nil {
			master := typelang.FromDWARF(ret, typelang.AllNames())
			truth[[2]int{i, len(sig.Params)}] = ing.Pred.Return.Task.Variant.Apply(master, vocabNames(ing.Pred.Return))
		}
	}
}

// vocabNames approximates the training-time common-name filter with
// target-vocabulary membership: a struct/typedef name the model could
// never emit (it is not in the vocabulary) is dropped from the label the
// same way rare names were dropped from training labels. Name tokens are
// stored quoted (see typelang tokens), so membership is checked on the
// quoted form.
func vocabNames(tr *core.Trained) func(string) bool {
	return func(name string) bool {
		return tr.Model.Tgt.ID(strconv.Quote(name)) != seq2seq.UNK
	}
}

// score annotates labeled elements with their ground truth and the rank
// at which the predictions hit it, and summarizes per-binary accuracy.
func (ing *Ingester) score(rep *Report, truth map[[2]int][]string) *metrics.Accuracy {
	// Element keys are per defined function; report functions are in
	// definition order, so defined-function index == report index.
	acc := &metrics.Accuracy{}
	for key, tgt := range truth {
		fi, ei := key[0], key[1]
		if fi >= len(rep.Funcs) || ei >= len(rep.Funcs[fi].Elements) {
			continue
		}
		el := &rep.Funcs[fi].Elements[ei]
		el.Truth = core.LabelString(tgt)
		var preds [][]string
		for _, p := range el.Predictions {
			preds = append(preds, p.Tokens)
		}
		acc.Add(preds, tgt)
		for rank, p := range preds {
			if core.LabelString(p) == el.Truth {
				el.TruthRank = rank + 1
				break
			}
		}
	}
	rep.Eval = evalReport(acc)
	return acc
}

// evalReport summarizes an accuracy accumulator for the report.
func evalReport(acc *metrics.Accuracy) *EvalReport {
	return &EvalReport{
		Labeled: acc.N(),
		Top1:    acc.Top1(),
		Top5:    acc.Top5(),
		TPS:     acc.TPS(),
	}
}
