package ingest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/leb128"
	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

const testSrc = `
int add(int a, int b) { return a + b; }
double half(double x) { return x / 2.0; }
float *first(float *xs, int n) { if (n > 0) { return xs; } return 0; }
`

func compileTest(t *testing.T, debug bool) *cc.Object {
	t.Helper()
	obj, err := cc.Compile(testSrc, cc.Options{FileName: "ingest.c", Debug: debug})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// reencode serializes a (possibly mutated) module back to binary.
func reencode(t *testing.T, m *wasm.Module) []byte {
	t.Helper()
	bin, _, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// appendRawSection appends an arbitrary section to an encoded binary.
func appendRawSection(bin []byte, id byte, payload []byte) []byte {
	out := append([]byte(nil), bin...)
	out = append(out, id)
	out = leb128.AppendUint(out, uint64(len(payload)))
	return append(out, payload...)
}

// syntheticTrained builds an untrained model over a plausible label
// vocabulary: prediction equivalence and report mechanics do not depend
// on weights, and untrained models decode deterministically.
func syntheticTrained(ret bool) *core.Trained {
	srcs := [][]string{
		{"i32", "<begin>", "local.get", "<param>", ";", "i32.add"},
		{"f64", "<begin>", "local.get", "<param>", ";", "f64.mul"},
	}
	tgts := [][]string{
		{"primitive", "int", "32"},
		{"primitive", "float", "64"},
		{"pointer", "primitive", "float", "32"},
		{"name", `"size_t"`, "primitive", "uint", "32"},
	}
	cfg := seq2seq.DefaultConfig()
	cfg.Hidden = 32
	cfg.Embed = 24
	m := seq2seq.NewModel(cfg, seq2seq.BuildVocab(srcs, 0), seq2seq.BuildVocab(tgts, 0))
	return &core.Trained{
		Task:  core.Task{Variant: typelang.VariantLSW, Return: ret},
		Model: m,
	}
}

func syntheticPredictor() *core.Predictor {
	return &core.Predictor{
		Param:  syntheticTrained(false),
		Return: syntheticTrained(true),
		Opts:   core.DefaultConfig().Extract,
	}
}

// TestNameResolutionChain pins the provenance fallback chain, one module
// per rung: DWARF, names section, exports, fully stripped. Debug builds
// carry DWARF plus a name section; the lower rungs peel sources off one
// by one.
func TestNameResolutionChain(t *testing.T) {
	debug := compileTest(t, true)

	named := compileTest(t, true) // keep the name section, drop DWARF
	dwarf.Strip(named.Module)
	namedBin := reencode(t, named.Module)

	exported := compileTest(t, false) // exports only
	exportedBin := exported.Binary
	if exported.Module.Custom("name") != nil {
		t.Fatal("non-debug build unexpectedly has a name section")
	}

	stripped := compileTest(t, false)
	stripped.Module.Exports = nil
	strippedBin := reencode(t, stripped.Module)

	nimp := exported.Module.NumImportedFuncs()
	cases := []struct {
		label  string
		bin    []byte
		source NameSource
		name   string // expected name of the first defined function
	}{
		{"dwarf", debug.Binary, SourceDWARF, "add"},
		{"names-section", namedBin, SourceNamesSection, "add"},
		{"exports-only", exportedBin, SourceExport, "add"},
		{"fully-stripped", strippedBin, SourceSynthesized, "func[0]"},
	}
	if nimp > 0 {
		cases[3].name = ""
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			ld, err := Load(tc.bin)
			if err != nil {
				t.Fatal(err)
			}
			if len(ld.Names) != len(ld.Decoded.Module.Funcs) {
				t.Fatalf("%d names for %d functions", len(ld.Names), len(ld.Decoded.Module.Funcs))
			}
			got := ld.Names[0]
			if got.Source != tc.source {
				t.Errorf("source = %q, want %q", got.Source, tc.source)
			}
			if tc.name != "" && got.Name != tc.name {
				t.Errorf("name = %q, want %q", got.Name, tc.name)
			}
			// Provenance must also survive into the report.
			rep := (&Ingester{}).Binary(tc.label+".wasm", tc.bin)
			if rep.Error != "" {
				t.Fatalf("report error: %s", rep.Error)
			}
			if rep.Funcs[0].NameSource != string(tc.source) {
				t.Errorf("report name_source = %q, want %q", rep.Funcs[0].NameSource, tc.source)
			}
		})
	}
}

// TestIngestUnknownSections: a binary with an unknown section id and a
// nonstandard custom section still yields a full report — predictions per
// element plus the diagnostics describing what was skipped.
func TestIngestUnknownSections(t *testing.T) {
	obj := compileTest(t, false)
	bin := appendRawSection(obj.Binary, 63, []byte{1, 2, 3})
	var meta []byte
	meta = leb128.AppendUint(meta, uint64(len("snowwhite.meta")))
	meta = append(meta, "snowwhite.meta"...)
	meta = append(meta, []byte(`{"v":1}`)...)
	bin = appendRawSection(bin, 0, meta)

	ing := &Ingester{Pred: syntheticPredictor(), K: 3}
	rep := ing.Binary("mixed.wasm", bin)
	if rep.Error != "" {
		t.Fatalf("report error: %s", rep.Error)
	}
	var unknown, custom bool
	for _, s := range rep.Sections {
		if s.Status == string(wasm.SectionUnknown) && s.ID == 63 {
			unknown = true
		}
		if s.Name == "snowwhite.meta" && s.Status == string(wasm.SectionOK) {
			custom = true
		}
	}
	if !unknown || !custom {
		t.Errorf("diagnostics missing (unknown=%v custom=%v): %+v", unknown, custom, rep.Sections)
	}
	if len(rep.Funcs) == 0 {
		t.Fatal("no functions in report")
	}
	for _, fr := range rep.Funcs {
		for _, el := range fr.Elements {
			if len(el.Predictions) == 0 {
				t.Errorf("%s/%s: no predictions", fr.Name, el.Element)
				continue
			}
			sum := 0.0
			for _, p := range el.Predictions {
				sum += p.Confidence
			}
			fallback := len(el.Predictions) == 1 && el.Predictions[0].Text == "unknown"
			if !fallback && (sum < 1-1e-9 || sum > 1+1e-9) {
				t.Errorf("%s/%s: confidences sum to %v", fr.Name, el.Element, sum)
			}
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

// TestIngestEval: with embedded DWARF, eval mode labels elements, ranks
// the predictions against them, and emits a summary.
func TestIngestEval(t *testing.T) {
	obj := compileTest(t, true)
	ing := &Ingester{Pred: syntheticPredictor(), Eval: true}
	rep := ing.Binary("debug.wasm", obj.Binary)
	if rep.Error != "" {
		t.Fatalf("report error: %s", rep.Error)
	}
	if rep.Eval == nil || rep.Eval.Labeled == 0 {
		t.Fatalf("eval summary missing or empty: %+v", rep.Eval)
	}
	labeled := 0
	for _, fr := range rep.Funcs {
		for _, el := range fr.Elements {
			if el.Truth != "" {
				labeled++
				if _, err := typelang.ParseString(el.Truth); err != nil {
					t.Errorf("%s/%s: truth %q does not parse: %v", fr.Name, el.Element, el.Truth, err)
				}
				if el.TruthRank < 0 || el.TruthRank > len(el.Predictions) {
					t.Errorf("%s/%s: truth_rank %d out of range", fr.Name, el.Element, el.TruthRank)
				}
			}
		}
	}
	if labeled != rep.Eval.Labeled {
		t.Errorf("%d labeled elements in report, summary says %d", labeled, rep.Eval.Labeled)
	}
	// The DWARF names must have been used for naming before stripping.
	if rep.Funcs[0].NameSource != string(SourceDWARF) {
		t.Errorf("name_source = %q, want dwarf", rep.Funcs[0].NameSource)
	}
}

// TestDirDeterminism: a directory ingested with 1 worker and with 4 must
// produce byte-identical JSON, eval summary included.
func TestDirDeterminism(t *testing.T) {
	dir := t.TempDir()
	debug := compileTest(t, true)
	plain := compileTest(t, false)
	mixed := appendRawSection(plain.Binary, 63, []byte{9, 9})
	for name, data := range map[string][]byte{
		"a/debug.wasm":  debug.Binary,
		"b/plain.wasm":  plain.Binary,
		"c/mixed.wasm":  mixed,
		"d/broken.wasm": {0, 1, 2, 3},
	} {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ing := &Ingester{Pred: syntheticPredictor(), Eval: true}
	var outs [][]byte
	for _, workers := range []int{1, 4} {
		rep, err := ing.Dir(dir, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("dir report differs between -j 1 and -j 4")
	}
	var rep DirReport
	if err := json.Unmarshal(outs[0], &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Binaries) != 4 {
		t.Fatalf("%d binaries, want 4", len(rep.Binaries))
	}
	for i := 1; i < len(rep.Binaries); i++ {
		if rep.Binaries[i-1].Binary >= rep.Binaries[i].Binary {
			t.Errorf("binaries not path-sorted: %q >= %q", rep.Binaries[i-1].Binary, rep.Binaries[i].Binary)
		}
	}
	if rep.Binaries[3].Error == "" {
		t.Error("broken binary should carry an error")
	}
	if rep.Eval == nil || rep.Eval.Labeled == 0 {
		t.Error("aggregate eval summary missing")
	}
}

// TestIngestMetricsExposition: the ingest counters land on the shared
// registry and render in exposition format.
func TestIngestMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	im := NewMetrics(reg)
	ing := &Ingester{Metrics: im}

	plain := compileTest(t, false)
	ing.Binary("ok.wasm", plain.Binary)
	ing.Binary("mixed.wasm", appendRawSection(plain.Binary, 63, []byte{1}))
	ing.Binary("broken.wasm", []byte{1, 2, 3})

	if got := im.Binaries.Value(); got != 3 {
		t.Errorf("binaries_total = %d, want 3", got)
	}
	if got := im.OK.Value(); got != 1 {
		t.Errorf("ok_total = %d, want 1", got)
	}
	if got := im.Degraded.Value(); got != 1 {
		t.Errorf("degraded_total = %d, want 1", got)
	}
	if got := im.Rejected.Value(); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
	if got := im.SectionDiags[wasm.SectionUnknown].Value(); got != 1 {
		t.Errorf("sections_unknown_total = %d, want 1", got)
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"snowwhite_ingest_binaries_total 3",
		"snowwhite_ingest_binaries_ok_total 1",
		"snowwhite_ingest_binaries_degraded_total 1",
		"snowwhite_ingest_binaries_rejected_total 1",
		"snowwhite_ingest_sections_unknown_total 1",
		"# TYPE snowwhite_ingest_binary_seconds histogram",
		"snowwhite_ingest_binary_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
