package ingest

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/wasm"
)

// NameSource labels where a function's name came from, best source first
// in the fallback chain.
type NameSource string

// Name provenance, in preference order.
const (
	// SourceDWARF: DW_AT_name of the matched subprogram.
	SourceDWARF NameSource = "dwarf"
	// SourceNamesSection: the standard "name" custom section.
	SourceNamesSection NameSource = "names_section"
	// SourceExport: the function is exported under this name.
	SourceExport NameSource = "export"
	// SourceSynthesized: no name anywhere; "func[N]" over the full
	// function index space.
	SourceSynthesized NameSource = "synthesized"
)

// ResolvedName is a function name with its provenance.
type ResolvedName struct {
	Name   string     `json:"name"`
	Source NameSource `json:"source"`
}

// resolveNames names every defined function through the fallback chain:
// DWARF subprogram name, then the names section, then an export name,
// then a synthesized index placeholder. Real binaries populate these
// sources unevenly (Wasmizer's survey: most are stripped, some keep the
// name section, nearly all export something), so provenance is part of
// the report, not an implementation detail.
func resolveNames(m *wasm.Module, subs map[int]*dwarf.DIE) []ResolvedName {
	nimp := uint32(m.NumImportedFuncs())

	var ns *wasm.NameSection
	if c := m.Custom("name"); c != nil {
		ns, _ = wasm.DecodeNameSection(c.Bytes) // malformed: fall through
	}

	exports := map[uint32]string{}
	for _, ex := range m.Exports {
		if ex.Kind != wasm.KindFunc {
			continue
		}
		if _, ok := exports[ex.Index]; !ok { // first export wins
			exports[ex.Index] = ex.Name
		}
	}

	out := make([]ResolvedName, len(m.Funcs))
	for i := range m.Funcs {
		idx := nimp + uint32(i)
		switch {
		case subs[i] != nil && subs[i].Name() != "":
			out[i] = ResolvedName{Name: subs[i].Name(), Source: SourceDWARF}
		case ns != nil && ns.Funcs[idx] != "":
			out[i] = ResolvedName{Name: ns.Funcs[idx], Source: SourceNamesSection}
		case exports[idx] != "":
			out[i] = ResolvedName{Name: exports[idx], Source: SourceExport}
		default:
			out[i] = ResolvedName{Name: fmt.Sprintf("func[%d]", idx), Source: SourceSynthesized}
		}
	}
	return out
}
