package ingest

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/wasm"
)

// Metrics are the ingest pipeline's operational counters, registered on
// the shared registry the server exposes.
type Metrics struct {
	// Binaries counts every ingested binary, whatever the outcome.
	Binaries *metrics.Counter
	// OK / Degraded / Rejected split binaries by outcome: clean parse,
	// parse needing tolerance, unusable header.
	OK       *metrics.Counter
	Degraded *metrics.Counter
	Rejected *metrics.Counter
	// SectionDiags counts section diagnostics by status.
	SectionDiags map[wasm.SectionStatus]*metrics.Counter
	// Seconds is the per-binary ingest latency (load + predict + score).
	Seconds *metrics.Histogram
}

// NewMetrics registers the ingest metrics on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Binaries: r.NewCounter("snowwhite_ingest_binaries_total",
			"Binaries ingested, any outcome."),
		OK: r.NewCounter("snowwhite_ingest_binaries_ok_total",
			"Binaries that parsed cleanly."),
		Degraded: r.NewCounter("snowwhite_ingest_binaries_degraded_total",
			"Binaries loaded with section diagnostics (tolerance applied)."),
		Rejected: r.NewCounter("snowwhite_ingest_binaries_rejected_total",
			"Binaries rejected outright (bad magic or version)."),
		SectionDiags: map[wasm.SectionStatus]*metrics.Counter{
			wasm.SectionUnknown: r.NewCounter("snowwhite_ingest_sections_unknown_total",
				"Sections skipped for an unknown id."),
			wasm.SectionOutOfOrder: r.NewCounter("snowwhite_ingest_sections_out_of_order_total",
				"Sections parsed despite ordering violations."),
			wasm.SectionMalformed: r.NewCounter("snowwhite_ingest_sections_malformed_total",
				"Sections (or code entries) dropped as malformed."),
			wasm.SectionTruncated: r.NewCounter("snowwhite_ingest_sections_truncated_total",
				"Sections cut off by a truncated binary."),
		},
		Seconds: r.NewHistogram("snowwhite_ingest_binary_seconds",
			"Per-binary ingest latency in seconds.", nil),
	}
}

// observe records one finished binary. Nil receivers are the common
// unmetered path (tests, the fuzz target).
func (im *Metrics) observe(rep *Report, start time.Time) {
	if im == nil {
		return
	}
	im.Binaries.Inc()
	switch {
	case rep.Error != "":
		im.Rejected.Inc()
	case rep.Degraded():
		im.Degraded.Inc()
	default:
		im.OK.Inc()
	}
	for _, s := range rep.Sections {
		if c := im.SectionDiags[wasm.SectionStatus(s.Status)]; c != nil {
			c.Inc()
		}
	}
	im.Seconds.ObserveSince(start)
}
