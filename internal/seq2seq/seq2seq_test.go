package seq2seq

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestVocab(t *testing.T) {
	v := BuildVocab([][]string{{"a", "b", "a"}, {"c", "a"}}, 0)
	if v.Size() != 4+3 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.ID("a") != 4 { // most frequent token right after specials
		t.Errorf("ID(a) = %d", v.ID("a"))
	}
	if v.ID("zzz") != UNK {
		t.Errorf("unknown token id = %d", v.ID("zzz"))
	}
	if got := v.Decode([]int{BOS, v.ID("b"), v.ID("a"), EOS, v.ID("c")}); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Decode = %v", got)
	}
	capped := BuildVocab([][]string{{"a", "b", "c", "d", "e"}}, 2)
	if capped.Size() != 4+2 {
		t.Errorf("capped size = %d", capped.Size())
	}
}

// makeToyData builds a tiny "translation" task with the structure of type
// prediction: the source contains a distinguishing token surrounded by
// noise, and the target is a multi-token sequence determined by it.
func makeToyData(r *rand.Rand, n int) []Pair {
	classes := map[string][]string{
		"f64.load":     {"pointer", "primitive", "float", "64"},
		"i32.load8_s":  {"pointer", "primitive", "cchar"},
		"i32.add":      {"primitive", "int", "32"},
		"f32.mul":      {"primitive", "float", "32"},
		"i64.shl":      {"primitive", "int", "64"},
		"call_special": {"pointer", "name", `"FILE"`, "struct"},
	}
	keys := make([]string, 0, len(classes))
	for k := range classes {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	noise := []string{"local.get", "0", ";", "i32.const", "1", "block", "end", "br_if"}
	var out []Pair
	for i := 0; i < n; i++ {
		key := keys[r.Intn(len(keys))]
		var src []string
		for j := 0; j < 4+r.Intn(4); j++ {
			src = append(src, noise[r.Intn(len(noise))])
		}
		src = append(src, key)
		for j := 0; j < 2+r.Intn(4); j++ {
			src = append(src, noise[r.Intn(len(noise))])
		}
		out = append(out, Pair{Src: src, Tgt: classes[key]})
	}
	return out
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 32
	cfg.Embed = 16
	cfg.Epochs = 20
	cfg.LR = 0.003
	cfg.BatchSize = 16
	cfg.MaxSrcLen = 20
	cfg.Dropout = 0.1
	return cfg
}

func TestTrainLearnsToyTranslation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	train := makeToyData(r, 600)
	valid := makeToyData(r, 60)
	test := makeToyData(r, 100)

	var logs []string
	m := Train(testConfig(), train, valid, func(s string) { logs = append(logs, s) })
	if len(logs) == 0 {
		t.Error("no progress reported")
	}
	if m.NumParams() == 0 {
		t.Fatal("model has no parameters")
	}

	top1, top5 := 0, 0
	for _, p := range test {
		preds := m.Predict(p.Src, 5)
		if len(preds) == 0 {
			t.Fatal("no predictions")
		}
		if reflect.DeepEqual(preds[0].Tokens, p.Tgt) {
			top1++
		}
		for _, pr := range preds {
			if reflect.DeepEqual(pr.Tokens, p.Tgt) {
				top5++
				break
			}
		}
	}
	// The task is fully separable; a working implementation gets nearly
	// everything right.
	if top1 < 80 {
		t.Errorf("top-1 = %d/100 on separable toy task; logs:\n%s", top1, strings.Join(logs, "\n"))
	}
	if top5 < top1 {
		t.Errorf("top5 (%d) < top1 (%d)", top5, top1)
	}
}

func TestBeamOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	train := makeToyData(r, 200)
	cfg := testConfig()
	cfg.Epochs = 2
	m := Train(cfg, train, nil, nil)
	preds := m.Predict(train[0].Src, 5)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].LogProb > preds[i-1].LogProb {
			t.Errorf("beam results not sorted: %v", preds)
		}
	}
	// k=1 returns exactly one.
	if got := m.Predict(train[0].Src, 1); len(got) != 1 {
		t.Errorf("Predict(k=1) returned %d", len(got))
	}
	// Empty input does not crash.
	if got := m.Predict(nil, 3); len(got) == 0 {
		t.Error("Predict(empty) returned nothing")
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	train := makeToyData(r, 100)
	valid := makeToyData(r, 30)
	cfg := testConfig()
	cfg.Epochs = 4
	m := Train(cfg, train, valid, nil)
	// After training, validation loss equals the best seen (restored).
	vl := m.ValidLoss(valid)
	m2 := Train(cfg, train, valid, nil)
	if vl2 := m2.ValidLoss(valid); vl != vl2 {
		t.Errorf("training not deterministic: %g vs %g", vl, vl2)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	cfg := testConfig()
	m := Train(cfg, nil, nil, nil)
	if m == nil {
		t.Fatal("Train(nil) returned nil")
	}
	// An untrained model still predicts something (garbage, but shaped).
	preds := m.Predict([]string{"x"}, 2)
	if len(preds) == 0 {
		t.Error("untrained model made no predictions")
	}
}

func TestTransformerEncoderLearns(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	train := makeToyData(r, 400)
	test := makeToyData(r, 60)
	cfg := testConfig()
	cfg.Encoder = EncoderTransformer
	cfg.Epochs = 15
	m := Train(cfg, train, nil, nil)
	top1 := 0
	for _, p := range test {
		preds := m.Predict(p.Src, 1)
		if len(preds) > 0 && reflect.DeepEqual(preds[0].Tokens, p.Tgt) {
			top1++
		}
	}
	// The transformer variant must also learn the separable toy task.
	if top1 < 40 {
		t.Errorf("transformer top-1 = %d/60", top1)
	}
}

func TestTransformerSaveLoad(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	train := makeToyData(r, 100)
	cfg := testConfig()
	cfg.Encoder = EncoderTransformer
	cfg.Epochs = 2
	m := Train(cfg, train, nil, nil)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := train[0].Src
	if !reflect.DeepEqual(m.Predict(src, 3), got.Predict(src, 3)) {
		t.Error("transformer predictions differ after save/load")
	}
}

func TestBiLSTMSaveLoad(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	train := makeToyData(r, 100)
	cfg := testConfig()
	cfg.Epochs = 2
	m := Train(cfg, train, nil, nil)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := train[0].Src
	if !reflect.DeepEqual(m.Predict(src, 3), got.Predict(src, 3)) {
		t.Error("predictions differ after save/load")
	}
	if got.NumParams() != m.NumParams() {
		t.Errorf("param counts differ: %d vs %d", got.NumParams(), m.NumParams())
	}
}
