package seq2seq

import (
	"fmt"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Encoder kinds. The paper's final model uses the bidirectional LSTM; the
// Transformer is the alternative the authors "also explored ... but did
// not find it improving accuracy" (Section 4.2), provided for the same
// comparison (EXPERIMENTS.md records ours).
const (
	EncoderBiLSTM      = ""
	EncoderTransformer = "transformer"
)

// ParseEncoder maps a user-facing encoder name (the -encoder flag) to a
// Config.Encoder value. The empty string and "bilstm" both select the
// paper's BiLSTM so existing configs and checkpoints read unchanged.
func ParseEncoder(s string) (string, error) {
	switch s {
	case "", "bilstm":
		return EncoderBiLSTM, nil
	case EncoderTransformer:
		return EncoderTransformer, nil
	}
	return "", fmt.Errorf("unknown encoder %q (want bilstm or transformer)", s)
}

// EncoderName returns the user-facing name of a Config.Encoder value.
func EncoderName(kind string) string {
	if kind == EncoderTransformer {
		return "transformer"
	}
	return "bilstm"
}

// encoder is the architecture boundary between the model and its source
// encoder. An implementation owns its parameters (registered at
// construction — registration order is serialization order, so each
// architecture's checkpoint layout is fixed by its constructor) and
// produces the `encoded` bundle the attention decoder consumes: the
// per-example state matrix, its attention mask, and the decoder's
// initial state. Everything downstream — training loss, beam search,
// batched decoding, fast-math inference — is architecture-agnostic and
// works through this interface.
type encoder interface {
	// encode runs the encoder over a PAD-padded [B][T] batch; train
	// enables dropout (drawn from m.rng, so shard-seeded parallel
	// training stays deterministic for every architecture). Every op
	// used must be row-wise independent with fixed ascending-index
	// accumulation so batch row b is bitwise equal to encoding example b
	// alone — the property batched beam search relies on.
	encode(m *Model, t *ad.Tape, srcIDs [][]int, train bool) encoded
}

// newEncoder constructs the encoder cfg.Encoder selects, registering its
// parameters into p.
func newEncoder(p *nn.Params, r *rand.Rand, cfg Config) encoder {
	if cfg.Encoder == EncoderTransformer {
		return newTransformerEncoder(p, r, cfg)
	}
	return newBiLSTMEncoder(p, r, cfg)
}

// bilstmEncoder is the paper's encoder (Section 4.2): EncLayers stacked
// bidirectional LSTM layers, each direction sized Hidden/2.
type bilstmEncoder struct {
	fwd, bwd []*nn.LSTM
}

func newBiLSTMEncoder(p *nn.Params, r *rand.Rand, cfg Config) *bilstmEncoder {
	e := &bilstmEncoder{}
	half := cfg.Hidden / 2
	in := cfg.Embed
	for l := 0; l < cfg.EncLayers; l++ {
		e.fwd = append(e.fwd, nn.NewLSTM(p, name("enc.fwd", l), r, in, half))
		e.bwd = append(e.bwd, nn.NewLSTM(p, name("enc.bwd", l), r, in, half))
		in = cfg.Hidden // next layer consumes concatenated directions
	}
	return e
}

func (e *bilstmEncoder) encode(m *Model, t *ad.Tape, srcIDs [][]int, train bool) encoded {
	B := len(srcIDs)
	T := len(srcIDs[0])
	// Per-timestep masks.
	masks := make([][]float64, T)
	flat := make([]float64, B*T)
	for tt := 0; tt < T; tt++ {
		masks[tt] = make([]float64, B)
		for b := 0; b < B; b++ {
			if srcIDs[b][tt] != PAD {
				masks[tt][b] = 1
				flat[b*T+tt] = 1
			}
		}
	}
	// Layer-0 inputs: embeddings per timestep.
	inputs := make([]*ad.V, T)
	for tt := 0; tt < T; tt++ {
		ids := make([]int, B)
		for b := 0; b < B; b++ {
			ids[b] = srcIDs[b][tt]
		}
		inputs[tt] = m.embSrc.Lookup(t, ids)
	}

	var finalFwd, finalBwd nn.State
	for l := range e.fwd {
		fwdOut := make([]*ad.V, T)
		bwdOut := make([]*ad.V, T)
		sf := e.fwd[l].ZeroState(B)
		for tt := 0; tt < T; tt++ {
			sf = e.fwd[l].StepMasked(t, inputs[tt], sf, masks[tt])
			fwdOut[tt] = sf.H
		}
		sb := e.bwd[l].ZeroState(B)
		for tt := T - 1; tt >= 0; tt-- {
			sb = e.bwd[l].StepMasked(t, inputs[tt], sb, masks[tt])
			bwdOut[tt] = sb.H
		}
		next := make([]*ad.V, T)
		for tt := 0; tt < T; tt++ {
			h := t.ConcatCols(fwdOut[tt], bwdOut[tt])
			if train && m.Cfg.Dropout > 0 {
				h = t.Dropout(h, m.Cfg.Dropout, m.rng.Float64)
			}
			next[tt] = h
		}
		inputs = next
		finalFwd, finalBwd = sf, sb
	}
	stack := t.StackRows(inputs) // [B*T, H]

	// Bridge the final states into the decoder's initial state.
	hCat := t.ConcatCols(finalFwd.H, finalBwd.H)
	cCat := t.ConcatCols(finalFwd.C, finalBwd.C)
	init := nn.State{
		H: t.Tanh(m.bridgeH.Apply(t, hCat)),
		C: t.Tanh(m.bridgeC.Apply(t, cCat)),
	}
	return encoded{states: stack, mask: flat, init: init, T: T}
}
