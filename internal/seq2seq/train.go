package seq2seq

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Pair is one training example: instruction tokens in, type tokens out.
type Pair struct {
	Src []string
	Tgt []string
}

// Train builds vocabularies from the training pairs and trains a model,
// early-stopping on validation token loss (Section 6.1: "we check the
// accuracy on the validation set and stop early if it regresses"). The
// progress callback (may be nil) receives one line per epoch.
func Train(cfg Config, train, valid []Pair, progress func(string)) *Model {
	srcSeqs := make([][]string, len(train))
	tgtSeqs := make([][]string, len(train))
	for i, p := range train {
		srcSeqs[i] = p.Src
		tgtSeqs[i] = p.Tgt
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)
	m := NewModel(cfg, src, tgt)
	m.Fit(train, valid, progress)
	return m
}

// batch is a padded minibatch.
type batch struct {
	src [][]int // [B][Tsrc]
	tgt [][]int // [B][Ttgt] including BOS/EOS
}

// makeBatches length-sorts the pairs (less padding), slices them into
// minibatches, and shuffles batch order.
func (m *Model) makeBatches(pairs []Pair, r *rand.Rand) []batch {
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return len(pairs[idx[a]].Src) < len(pairs[idx[b]].Src)
	})
	var batches []batch
	for lo := 0; lo < len(idx); lo += m.Cfg.BatchSize {
		hi := lo + m.Cfg.BatchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		var b batch
		maxS, maxT := 1, 2
		for _, i := range idx[lo:hi] {
			s := m.Src.Encode(truncate(pairs[i].Src, m.Cfg.MaxSrcLen))
			tg := m.Tgt.Encode(truncate(pairs[i].Tgt, m.Cfg.MaxTgtLen))
			tg = append(append([]int{BOS}, tg...), EOS)
			b.src = append(b.src, s)
			b.tgt = append(b.tgt, tg)
			if len(s) > maxS {
				maxS = len(s)
			}
			if len(tg) > maxT {
				maxT = len(tg)
			}
		}
		for i := range b.src {
			b.src[i] = pad(b.src[i], maxS)
			b.tgt[i] = pad(b.tgt[i], maxT)
		}
		batches = append(batches, b)
	}
	r.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
	return batches
}

func truncate(s []string, n int) []string {
	if n > 0 && len(s) > n {
		return s[:n]
	}
	return s
}

func pad(s []int, n int) []int {
	for len(s) < n {
		s = append(s, PAD)
	}
	return s
}

// batchLossSum runs the teacher-forced forward pass without dropout and
// returns the summed token cross-entropy plus the number of scored
// (non-PAD) target tokens — the pieces of a token-weighted validation
// mean. The sum accumulates per-step summed cross-entropies directly
// (never a mean scaled back up), matching the training objective's
// arithmetic exactly.
func (m *Model) batchLossSum(t *ad.Tape, b batch) (sum, tokens float64) {
	enc := m.encode(t, b.src, false)
	B := len(b.tgt)
	Ttgt := len(b.tgt[0])
	s := enc.init
	for step := 0; step+1 < Ttgt; step++ {
		prev := make([]int, B)
		targets := make([]int, B)
		weights := make([]float64, B)
		n := 0.0
		for i := 0; i < B; i++ {
			prev[i] = b.tgt[i][step]
			targets[i] = b.tgt[i][step+1]
			if targets[i] != PAD {
				weights[i] = 1
				n++
			}
		}
		var logits *ad.V
		s, logits = m.decodeStep(t, enc, s, prev, false)
		if n > 0 {
			ce := t.SoftmaxCrossEntropySum(logits, targets, weights)
			sum += ce.W[0]
			tokens += n
		}
	}
	return sum, tokens
}

// earlyStop tracks patience-based early stopping on validation loss.
// A loss equal to the best so far counts as a new best: a flat plateau
// is not a regression, and treating it as one (strict <) stops training
// two epochs into any plateau and discards the later — equally good —
// snapshots.
type earlyStop struct {
	best     float64
	seen     bool
	bad      int
	patience int
}

// observe scores one epoch's validation loss. newBest asks the caller to
// snapshot; stop means patience is exhausted and training should halt at
// the best snapshot.
func (e *earlyStop) observe(vl float64) (newBest, stop bool) {
	if !e.seen || vl <= e.best {
		e.best = vl
		e.seen = true
		e.bad = 0
		return true, false
	}
	e.bad++
	return false, e.bad >= e.patience
}

// TrainState is everything Fit needs to resume training at an epoch
// boundary: completed-epoch count, early-stopping bookkeeping, the best
// snapshot so far, and the optimizer moments. Together with the model
// weights it makes a resumed run bitwise-identical to an uninterrupted
// one (per-epoch seeding keeps the shuffle and dropout streams aligned).
type TrainState struct {
	Epoch     int // completed epochs
	BestValid float64
	Bad       int
	Best      [][]float64 // nil when no validation epoch has completed
	Opt       nn.AdamState
}

// Fit trains the model in place.
func (m *Model) Fit(train, valid []Pair, progress func(string)) {
	m.FitResume(train, valid, nil, nil, progress)
}

// FitResume trains like Fit, but optionally resumes from a TrainState
// and persists one after every epoch. st (may be nil) continues a run
// checkpointed earlier; checkpoint (may be nil) receives the full
// training state after each completed epoch — returning an error aborts
// training. The batch shuffle is derived from (Seed, epoch) alone and
// each shard's dropout stream from (Seed, epoch, batch, shard), so a
// killed run resumed from its last checkpoint — at any worker count —
// replays the exact streams an uninterrupted run would have used and
// converges to the same weights.
func (m *Model) FitResume(train, valid []Pair, st *TrainState, checkpoint func(*TrainState) error, progress func(string)) error {
	if len(train) == 0 {
		return nil
	}
	opt := nn.NewAdam(&m.params, m.Cfg.LR)
	es := earlyStop{patience: 2}
	var bestSnapshot [][]float64
	start := 0
	if st != nil {
		start = st.Epoch
		if err := opt.Restore(st.Opt); err != nil {
			return err
		}
		if st.Best != nil {
			es = earlyStop{best: st.BestValid, seen: true, bad: st.Bad, patience: 2}
			bestSnapshot = st.Best
		}
	}
	emit := func(epoch int) *TrainState {
		return &TrainState{
			Epoch:     epoch,
			BestValid: es.best,
			Bad:       es.bad,
			Best:      bestSnapshot,
			Opt:       opt.Export(),
		}
	}
	ts := m.newTrainShards(m.parallel())
	for epoch := start; epoch < m.Cfg.Epochs; epoch++ {
		epochStart := time.Now()
		// Per-epoch seeding: the batch shuffle depends only on (Seed,
		// epoch), never on how many epochs this process has already run —
		// the property checkpoint resumption relies on. Dropout streams
		// are seeded per (Seed, epoch, batch, shard) inside the sharded
		// step for the same reason (and for -j invariance).
		r := rand.New(rand.NewSource(m.Cfg.Seed + 100 + 1009*int64(epoch)))
		batches := m.makeBatches(train, r)
		epochSum, epochTokens := 0.0, 0.0
		for bi, b := range batches {
			sum, tokens := m.trainStep(ts, opt, epoch, bi, b)
			epochSum += sum
			epochTokens += tokens
		}
		trainLoss := epochSum / epochTokens
		vl := m.ValidLoss(valid)
		if m.trainObs.Epoch != nil {
			m.trainObs.Epoch(TrainEpochEvent{
				Epoch: epoch, Batches: len(batches),
				Seconds:   time.Since(epochStart).Seconds(),
				TrainLoss: trainLoss, ValidLoss: vl,
			})
		}
		if progress != nil {
			progress(fmt.Sprintf("epoch %d: train loss %.4f, valid loss %.4f", epoch+1, trainLoss, vl))
		}
		if len(valid) == 0 {
			// No validation set: train the full epoch budget.
			if checkpoint != nil {
				if err := checkpoint(emit(epoch + 1)); err != nil {
					return err
				}
			}
			continue
		}
		newBest, stop := es.observe(vl)
		if newBest {
			bestSnapshot = m.snapshot()
		}
		if checkpoint != nil {
			if err := checkpoint(emit(epoch + 1)); err != nil {
				return err
			}
		}
		if stop {
			m.restore(bestSnapshot)
			if progress != nil {
				progress(fmt.Sprintf("epoch %d: validation regressed twice, stopping early", epoch+1))
			}
			return nil
		}
	}
	if bestSnapshot != nil {
		m.restore(bestSnapshot)
	}
	return nil
}

// ValidLoss computes the token-weighted mean cross-entropy over a
// held-out set without updating parameters; returns 0 for an empty set.
// Every scored token carries equal weight regardless of which batch it
// landed in — a per-batch mean of means would overweight the final short
// batch and skew early stopping. Batches are scored concurrently
// (Cfg.Parallelism workers) on forward-only tapes and reduced in batch
// order, so the result is independent of worker count and scheduling.
func (m *Model) ValidLoss(valid []Pair) float64 {
	if len(valid) == 0 {
		return 0
	}
	batches := m.makeBatches(valid, rand.New(rand.NewSource(7)))
	scores := m.scoreBatches(batches, m.parallel())
	sum, tokens := 0.0, 0.0
	for _, s := range scores {
		sum += s.sum
		tokens += s.tokens
	}
	if tokens == 0 {
		return 0
	}
	return sum / tokens
}

func (m *Model) snapshot() [][]float64 {
	out := make([][]float64, 0, len(m.params.All()))
	for _, v := range m.params.All() {
		out = append(out, append([]float64(nil), v.W...))
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	if snap == nil {
		return
	}
	for i, v := range m.params.All() {
		copy(v.W, snap[i])
	}
}
