package seq2seq

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Pair is one training example: instruction tokens in, type tokens out.
type Pair struct {
	Src []string
	Tgt []string
}

// Train builds vocabularies from the training pairs and trains a model,
// early-stopping on validation token loss (Section 6.1: "we check the
// accuracy on the validation set and stop early if it regresses"). The
// progress callback (may be nil) receives one line per epoch.
func Train(cfg Config, train, valid []Pair, progress func(string)) *Model {
	srcSeqs := make([][]string, len(train))
	tgtSeqs := make([][]string, len(train))
	for i, p := range train {
		srcSeqs[i] = p.Src
		tgtSeqs[i] = p.Tgt
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)
	m := NewModel(cfg, src, tgt)
	m.Fit(train, valid, progress)
	return m
}

// batch is a padded minibatch.
type batch struct {
	src [][]int // [B][Tsrc]
	tgt [][]int // [B][Ttgt] including BOS/EOS
}

// makeBatches length-sorts the pairs (less padding), slices them into
// minibatches, and shuffles batch order.
func (m *Model) makeBatches(pairs []Pair, r *rand.Rand) []batch {
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return len(pairs[idx[a]].Src) < len(pairs[idx[b]].Src)
	})
	var batches []batch
	for lo := 0; lo < len(idx); lo += m.Cfg.BatchSize {
		hi := lo + m.Cfg.BatchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		var b batch
		maxS, maxT := 1, 2
		for _, i := range idx[lo:hi] {
			s := m.Src.Encode(truncate(pairs[i].Src, m.Cfg.MaxSrcLen))
			tg := m.Tgt.Encode(truncate(pairs[i].Tgt, m.Cfg.MaxTgtLen))
			tg = append(append([]int{BOS}, tg...), EOS)
			b.src = append(b.src, s)
			b.tgt = append(b.tgt, tg)
			if len(s) > maxS {
				maxS = len(s)
			}
			if len(tg) > maxT {
				maxT = len(tg)
			}
		}
		for i := range b.src {
			b.src[i] = pad(b.src[i], maxS)
			b.tgt[i] = pad(b.tgt[i], maxT)
		}
		batches = append(batches, b)
	}
	r.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
	return batches
}

func truncate(s []string, n int) []string {
	if n > 0 && len(s) > n {
		return s[:n]
	}
	return s
}

func pad(s []int, n int) []int {
	for len(s) < n {
		s = append(s, PAD)
	}
	return s
}

// batchLoss runs the teacher-forced forward pass and returns the loss node.
func (m *Model) batchLoss(t *ad.Tape, b batch, train bool) *ad.V {
	enc := m.encode(t, b.src, train)
	B := len(b.tgt)
	Ttgt := len(b.tgt[0])
	s := enc.init
	var losses []*ad.V
	for step := 0; step+1 < Ttgt; step++ {
		prev := make([]int, B)
		targets := make([]int, B)
		weights := make([]float64, B)
		for i := 0; i < B; i++ {
			prev[i] = b.tgt[i][step]
			targets[i] = b.tgt[i][step+1]
			if targets[i] != PAD {
				weights[i] = 1
			}
		}
		var logits *ad.V
		s, logits = m.decodeStep(t, enc, s, prev, train)
		losses = append(losses, t.SoftmaxCrossEntropy(logits, targets, weights))
	}
	total := losses[0]
	for _, l := range losses[1:] {
		total = t.Add(total, l)
	}
	return t.Scale(total, 1/float64(len(losses)))
}

// Fit trains the model in place.
func (m *Model) Fit(train, valid []Pair, progress func(string)) {
	if len(train) == 0 {
		return
	}
	r := rand.New(rand.NewSource(m.Cfg.Seed + 100))
	opt := nn.NewAdam(&m.params, m.Cfg.LR)
	bestValid := -1.0
	var bestSnapshot [][]float64
	bad := 0
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		batches := m.makeBatches(train, r)
		totalLoss, n := 0.0, 0
		for _, b := range batches {
			tape := ad.NewTape()
			loss := m.batchLoss(tape, b, true)
			m.params.ZeroGrad()
			loss.G[0] = 1
			tape.Backward()
			opt.Step()
			totalLoss += loss.W[0]
			n++
		}
		vl := m.ValidLoss(valid)
		if progress != nil {
			progress(fmt.Sprintf("epoch %d: train loss %.4f, valid loss %.4f", epoch+1, totalLoss/float64(n), vl))
		}
		if len(valid) == 0 {
			continue // no validation set: train the full epoch budget
		}
		// Early stopping with patience 1: small validation sets are
		// noisy, so one regression is tolerated before stopping at the
		// best snapshot.
		if bestValid < 0 || vl < bestValid {
			bestValid = vl
			bestSnapshot = m.snapshot()
			bad = 0
			continue
		}
		bad++
		if bad >= 2 {
			m.restore(bestSnapshot)
			if progress != nil {
				progress(fmt.Sprintf("epoch %d: validation regressed twice, stopping early", epoch+1))
			}
			return
		}
	}
	if bestSnapshot != nil {
		m.restore(bestSnapshot)
	}
}

// ValidLoss computes the mean batch loss on a held-out set without
// updating parameters; returns 0 for an empty set.
func (m *Model) ValidLoss(valid []Pair) float64 {
	if len(valid) == 0 {
		return 0
	}
	r := rand.New(rand.NewSource(7))
	total, n := 0.0, 0
	for _, b := range m.makeBatches(valid, r) {
		tape := ad.NewTape()
		loss := m.batchLoss(tape, b, false)
		total += loss.W[0]
		n++
	}
	return total / float64(n)
}

func (m *Model) snapshot() [][]float64 {
	out := make([][]float64, 0, len(m.params.All()))
	for _, v := range m.params.All() {
		out = append(out, append([]float64(nil), v.W...))
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	if snap == nil {
		return
	}
	for i, v := range m.params.All() {
		copy(v.W, snap[i])
	}
}
