package seq2seq

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Prediction is one beam-search hypothesis: a type-token sequence and its
// total log-probability.
type Prediction struct {
	Tokens  []string
	LogProb float64
}

// Predict returns the k most likely target sequences for the source token
// sequence, using beam search with beam width max(k, 5) as in the paper's
// top-5 evaluation. Duplicate hypotheses are kept, as the paper notes the
// raw model is not constrained to produce unique predictions.
func (m *Model) Predict(src []string, k int) []Prediction {
	if k <= 0 {
		k = 1
	}
	width := k
	if width < 5 {
		width = 5
	}
	tape := ad.NewTape() // inference-only; Backward is never called
	ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
	if len(ids) == 0 {
		ids = []int{UNK}
	}
	enc := m.encode(tape, [][]int{ids}, false)

	type beam struct {
		seq     []int
		logp    float64
		state   nn.State
		stopped bool
	}
	beams := []beam{{seq: []int{BOS}, state: enc.init}}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	for step := 0; step < maxLen; step++ {
		var next []beam
		done := true
		for _, b := range beams {
			if b.stopped {
				next = append(next, b)
				continue
			}
			done = false
			s, logits := m.decodeStep(tape, enc, b.state, []int{b.seq[len(b.seq)-1]}, false)
			logProbs := ad.LogSoftmaxRow(logits.W)
			// Expand with the top `width` continuations.
			type cand struct {
				id int
				lp float64
			}
			cands := make([]cand, 0, len(logProbs))
			for id, lp := range logProbs {
				if id == PAD || id == BOS {
					continue
				}
				cands = append(cands, cand{id, lp})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].lp > cands[j].lp })
			if len(cands) > width {
				cands = cands[:width]
			}
			for _, c := range cands {
				nb := beam{
					seq:     append(append([]int(nil), b.seq...), c.id),
					logp:    b.logp + c.lp,
					state:   s,
					stopped: c.id == EOS,
				}
				next = append(next, nb)
			}
		}
		if done {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].logp > next[j].logp })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}

	sort.SliceStable(beams, func(i, j int) bool { return beams[i].logp > beams[j].logp })
	if len(beams) > k {
		beams = beams[:k]
	}
	out := make([]Prediction, 0, len(beams))
	for _, b := range beams {
		out = append(out, Prediction{Tokens: m.Tgt.Decode(b.seq), LogProb: b.logp})
	}
	return out
}
