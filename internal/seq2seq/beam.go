package seq2seq

import (
	"sort"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Prediction is one beam-search hypothesis: a type-token sequence and its
// total log-probability.
type Prediction struct {
	Tokens  []string
	LogProb float64
}

// beamNode is one decoded token in a hypothesis, linked back to its
// parent. Sharing prefixes through parent pointers means extending a
// beam costs one small node instead of copying the whole sequence —
// per-step work stays constant as the search deepens.
type beamNode struct {
	id   int
	prev *beamNode
}

// tokens materializes the hypothesis token ids, root first.
func (n *beamNode) tokens() []int {
	depth := 0
	for p := n; p != nil; p = p.prev {
		depth++
	}
	out := make([]int, depth)
	for p := n; p != nil; p = p.prev {
		depth--
		out[depth] = p.id
	}
	return out
}

// beam is one live hypothesis of the search.
type beam struct {
	node    *beamNode
	logp    float64
	state   nn.State
	stopped bool
}

// Predict returns the k most likely target sequences for the source token
// sequence, using beam search with beam width max(k, 5) as in the paper's
// top-5 evaluation. Duplicate hypotheses are kept, as the paper notes the
// raw model is not constrained to produce unique predictions.
//
// Inference runs on a forward-only tape whose buffers recycle between
// decode steps (see ad.NewForward), so a call's memory footprint is
// bounded by one step's working set rather than the whole maxLen × width
// search. Predict is safe for concurrent use; each call draws its own
// buffer pool.
func (m *Model) Predict(src []string, k int) []Prediction {
	pool := m.getPool()
	defer m.putPool(pool)
	return m.predictOn(ad.NewForward(pool), src, k)
}

// PredictBatch predicts each source sequence in turn on one shared
// buffer pool, amortizing warm-up across the batch. For concurrent
// evaluation over many examples, use EvalParallel.
func (m *Model) PredictBatch(srcs [][]string, k int) [][]Prediction {
	pool := m.getPool()
	defer m.putPool(pool)
	out := make([][]Prediction, len(srcs))
	for i, src := range srcs {
		out[i] = m.predictOn(ad.NewForward(pool), src, k)
	}
	return out
}

// predictOn runs the beam search on the given tape. The algorithm is
// byte-for-byte equivalent on recording and forward tapes
// (TestPredictPooledMatchesReference); Predict always passes a pooled
// forward tape.
func (m *Model) predictOn(tape *ad.Tape, src []string, k int) []Prediction {
	if k <= 0 {
		k = 1
	}
	width := k
	if width < 5 {
		width = 5
	}
	ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
	if len(ids) == 0 {
		ids = []int{UNK}
	}
	enc := m.encode(tape, [][]int{ids}, false)
	// The encoder outputs feed attention at every step: exempt them from
	// the per-step release cycle.
	tape.Keep()

	beams := []beam{{node: &beamNode{id: BOS}, state: enc.init}}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	// cand is a scored continuation (or a carried-over stopped beam).
	// Sequences are materialized only for the width survivors of each
	// step, not for every scored candidate.
	type cand struct {
		parent  *beamNode
		id      int
		logp    float64
		state   nn.State
		stopped bool
		carried bool
	}

	for step := 0; step < maxLen; step++ {
		var next []cand
		done := true
		for _, b := range beams {
			if b.stopped {
				next = append(next, cand{parent: b.node, logp: b.logp, state: b.state, stopped: true, carried: true})
				continue
			}
			done = false
			s, logits := m.decodeStep(tape, enc, b.state, []int{b.node.id}, false)
			logProbs := tape.LogSoftmaxRow(logits.W)
			// Expand with the top `width` continuations.
			type scored struct {
				id int
				lp float64
			}
			cands := make([]scored, 0, len(logProbs))
			for id, lp := range logProbs {
				if id == PAD || id == BOS {
					continue
				}
				cands = append(cands, scored{id, lp})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].lp > cands[j].lp })
			if len(cands) > width {
				cands = cands[:width]
			}
			for _, c := range cands {
				next = append(next, cand{
					parent:  b.node,
					id:      c.id,
					logp:    b.logp + c.lp,
					state:   s,
					stopped: c.id == EOS,
				})
			}
		}
		if done {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].logp > next[j].logp })
		if len(next) > width {
			next = next[:width]
		}
		beams = beams[:0]
		keep := make([]*ad.V, 0, 2*len(next))
		for _, c := range next {
			node := c.parent
			if !c.carried {
				node = &beamNode{id: c.id, prev: c.parent}
			}
			beams = append(beams, beam{node: node, logp: c.logp, state: c.state, stopped: c.stopped})
			keep = append(keep, c.state.H, c.state.C)
		}
		// Recycle everything this step allocated except the surviving
		// decoder states; states kept for a stopped or pruned beam are
		// reclaimed by a later release once dereferenced.
		tape.ReleaseExcept(keep...)
	}

	sort.SliceStable(beams, func(i, j int) bool { return beams[i].logp > beams[j].logp })
	if len(beams) > k {
		beams = beams[:k]
	}
	out := make([]Prediction, 0, len(beams))
	for _, b := range beams {
		out = append(out, Prediction{Tokens: m.Tgt.Decode(b.node.tokens()), LogProb: b.logp})
	}
	return out
}
