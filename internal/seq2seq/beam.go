package seq2seq

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Prediction is one beam-search hypothesis: a type-token sequence and its
// total log-probability.
type Prediction struct {
	Tokens  []string
	LogProb float64
}

// beamNode is one decoded token in a hypothesis, linked back to its
// parent. Sharing prefixes through parent pointers means extending a
// beam costs one small node instead of copying the whole sequence —
// per-step work stays constant as the search deepens.
type beamNode struct {
	id   int
	prev *beamNode
}

// tokens materializes the hypothesis token ids, root first.
func (n *beamNode) tokens() []int {
	depth := 0
	for p := n; p != nil; p = p.prev {
		depth++
	}
	out := make([]int, depth)
	for p := n; p != nil; p = p.prev {
		depth--
		out[depth] = p.id
	}
	return out
}

// predictGroup bounds how many searches one batched decode advances in
// lockstep. With width-5 beams a full group packs up to 40 hypothesis
// rows per decoder GEMM — deep enough to engage the band-fused kernels —
// while one group's padded encoder tile stays within a pooled buffer's
// working set.
const predictGroup = 8

// scoredTok is one scored continuation token of a single hypothesis.
type scoredTok struct {
	id int
	lp float64
}

// topContinuations selects the width best continuations of one
// hypothesis from its token log-probs, excluding PAD and BOS. Equal
// scores break toward the smaller token id, making the selection a total
// order independent of sort internals — the property that keeps the
// batched and sequential decoders bitwise comparable
// (TestTopContinuationsTieBreak).
//
// The selection keeps a descending-ordered window of the best width
// tokens seen so far instead of sorting the whole vocabulary row: ids
// arrive ascending, a tied newcomer never displaces an incumbent, and
// insertion keeps ties in arrival order, which realizes exactly the
// (score desc, id asc) total order.
//
// Generic over the logit element width so f32 tapes feed their rows in
// without a conversion pass; scores widen to float64 on entry and beam
// totals accumulate in float64 on every engine, so ranking and reported
// log-probs share one comparison domain.
func topContinuations[F ~float64 | ~float32](logProbs []F, width int, buf []scoredTok) []scoredTok {
	cands := buf[:0]
	if width <= 0 {
		return cands
	}
	for id, lpn := range logProbs {
		if id == PAD || id == BOS {
			continue
		}
		lp := float64(lpn)
		if len(cands) == width {
			if lp <= cands[width-1].lp {
				continue
			}
			cands = cands[:width-1]
		}
		j := len(cands)
		cands = append(cands, scoredTok{})
		for j > 0 && cands[j-1].lp < lp {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = scoredTok{id, lp}
	}
	return cands
}

// rowLogProbs slices hypothesis row r out of the step's log-prob batch
// and selects its top continuations, reading whichever storage the
// tape produced (float64, or float32 on f32 tapes).
func rowLogProbs(lps *ad.V, r, width int, buf []scoredTok) []scoredTok {
	if len(lps.W) > 0 {
		return topContinuations(lps.W[r*lps.C:(r+1)*lps.C], width, buf)
	}
	return topContinuations(lps.W32[r*lps.C:(r+1)*lps.C], width, buf)
}

// cand is a scored continuation (or a carried-over stopped beam) of one
// search. Sequences are materialized only for the width survivors of
// each step, not for every scored candidate.
type cand struct {
	parent  *beamNode
	beamIdx int // index of the parent beam within its search
	id      int // continuation token id; -1 for a carried stopped beam
	logp    float64
	row     int      // parent's row in the step's batched decoder output
	state   nn.State // parent's post-step state (sequential decoder only)
	stopped bool
	carried bool
}

// candCmp orders a step's candidates for pruning: total log-prob
// descending, then parent beam index, then token id. The two tie keys
// turn equal-probability candidates into a deterministic total order, so
// pruning does not depend on candidate arrival order or sort internals
// (TestCandTieBreak).
func candCmp(a, b cand) int {
	switch {
	case a.logp > b.logp:
		return -1
	case a.logp < b.logp:
		return 1
	}
	if a.beamIdx != b.beamIdx {
		return a.beamIdx - b.beamIdx
	}
	return a.id - b.id
}

// Predict returns the k most likely target sequences for the source token
// sequence, using beam search with beam width max(k, 5) as in the paper's
// top-5 evaluation. Duplicate hypotheses are kept, as the paper notes the
// raw model is not constrained to produce unique predictions.
//
// All live hypotheses advance in one batched decode step per token
// (predictMultiOn), so each step runs the band-fused GEMM kernels once
// for the whole beam instead of a matvec per hypothesis; the output is
// bitwise identical to decoding each hypothesis alone
// (TestPredictBatchedMatchesSequential). Inference runs on a
// forward-only tape whose buffers recycle between decode steps (see
// ad.NewForward), so a call's memory footprint is bounded by one step's
// working set rather than the whole maxLen × width search. Predict is
// safe for concurrent use; each call draws its own buffer pool.
func (m *Model) Predict(src []string, k int) []Prediction {
	pool := m.getPool()
	defer m.putPool(pool)
	out, _ := m.predictMultiOn(m.inferTape(pool), [][]string{src}, []int{k}, nil)
	return out[0]
}

// PredictBatch predicts every source sequence with one beam cutoff k,
// decoding up to predictGroup searches together per batched step. For
// concurrent evaluation over many examples, use EvalParallel.
func (m *Model) PredictBatch(srcs [][]string, k int) [][]Prediction {
	ks := make([]int, len(srcs))
	for i := range ks {
		ks[i] = k
	}
	return m.PredictMulti(srcs, ks)
}

// PredictMulti predicts every source sequence with its own beam cutoff
// ks[i], decoding up to predictGroup searches — all their live
// hypotheses — in one batched decoder step per token. Output slot i is
// exactly Predict(srcs[i], ks[i]); grouping only changes how many GEMM
// calls the decoding costs, not any result bit.
func (m *Model) PredictMulti(srcs [][]string, ks []int) [][]Prediction {
	out, err := m.predictMulti(srcs, ks, nil)
	if err != nil {
		// Unreachable: without a stop hook predictMulti cannot fail.
		panic(err)
	}
	return out
}

// PredictMultiCtx is PredictMulti with cooperative cancellation: the
// decode checks ctx between groups and between decoder steps, so an
// abandoned caller (an expired server request) stops burning decode time
// within one step's latency instead of running every search to
// completion. On cancellation the partial results are discarded and
// ctx's error is returned. A nil-error return is bitwise identical to
// PredictMulti.
func (m *Model) PredictMultiCtx(ctx context.Context, srcs [][]string, ks []int) ([][]Prediction, error) {
	return m.predictMulti(srcs, ks, ctx.Err)
}

func (m *Model) predictMulti(srcs [][]string, ks []int, stop func() error) ([][]Prediction, error) {
	if len(ks) != len(srcs) {
		panic(fmt.Sprintf("seq2seq: PredictMulti %d sources, %d cutoffs", len(srcs), len(ks)))
	}
	pool := m.getPool()
	defer m.putPool(pool)
	out := make([][]Prediction, 0, len(srcs))
	for lo := 0; lo < len(srcs); lo += predictGroup {
		hi := min(lo+predictGroup, len(srcs))
		group, err := m.predictMultiOn(m.inferTape(pool), srcs[lo:hi], ks[lo:hi], stop)
		if err != nil {
			return nil, err
		}
		out = append(out, group...)
	}
	return out, nil
}

// msearch is one beam search of a batched group.
type msearch struct {
	k, width int
	beams    []mbeam
}

// mbeam is one live hypothesis of a batched search.
type mbeam struct {
	node    *beamNode
	logp    float64
	row     int // this beam's state row in the current batched state
	liveRow int // per-step scratch: row in the step's decode batch
	stopped bool
}

// predictMultiOn runs len(srcs) independent beam searches in lockstep on
// one tape, advancing every live hypothesis of every search in a single
// batched decode step per token.
//
// Layout: the group encodes as one PAD-padded batch into an [S*Tmax, H]
// block matrix, zero-padded past each search's real length with the
// padding masked out of attention. That matrix and its mask are the
// per-search attention operands, cached once at encode time
// (encoded.operands) and read in place by every decode step. Each step
// gathers the live hypotheses' decoder states into a [L, H] batch
// (nn.GatherState) and decodes once with the grouped attention ops
// (decodeStepGrouped): row l attends over shared block rowSearch[l]
// directly — no per-hypothesis tiled copy, so attention memory traffic
// per step is one [Tmax,H] block per search regardless of beam width —
// then scores all rows with one LogSoftmaxRows. Every op involved is
// row-wise independent with fixed ascending-index accumulation, so each
// hypothesis's numbers are bit-identical to decoding it alone — batching
// changes the GEMM shape, not the results (TestPredictBatchedMatchesSequential).
//
// stop (may be nil) is polled at every decoder step; a non-nil return
// aborts the decode and propagates that error, discarding the partial
// beams. The poll sits outside every accumulation, so a decode that runs
// to completion is bitwise independent of whether stop was supplied.
func (m *Model) predictMultiOn(tape *ad.Tape, srcs [][]string, ks []int, stop func() error) ([][]Prediction, error) {
	S := len(srcs)
	if S == 0 {
		return nil, nil
	}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	// Encode the whole group as one PAD-padded batch. Every encoder op is
	// row-wise independent and StepMasked holds each row's state across
	// its padding steps, so row si of the batch is bit-identical to
	// encoding srcs[si] alone — batching only changes the GEMM shapes.
	padded := make([][]int, S)
	Tmax := 1
	for si, src := range srcs {
		ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
		if len(ids) == 0 {
			ids = []int{UNK}
		}
		padded[si] = ids
		if len(ids) > Tmax {
			Tmax = len(ids)
		}
	}
	for si, ids := range padded {
		padded[si] = pad(ids, Tmax)
	}
	enc := m.encode(tape, padded, false)
	ops := enc.operands()                    // [S*Tmax, H] shared blocks + mask
	stateH, stateC := enc.init.H, enc.init.C // [S, H]
	// The cached attention operands feed every decode step in place:
	// exempt them (and everything before them) from the per-step release
	// cycle.
	tape.Keep()

	searches := make([]msearch, S)
	for si := range searches {
		k := ks[si]
		if k <= 0 {
			k = 1
		}
		width := k
		if width < 5 {
			width = 5
		}
		searches[si] = msearch{
			k: k, width: width,
			beams: []mbeam{{node: &beamNode{id: BOS}, row: si}},
		}
	}

	var (
		prev      []int
		gatherIdx []int
		rowSearch []int // owning search of each live row
		cbuf      []cand
		sbuf      []scoredTok
	)
	for step := 0; step < maxLen; step++ {
		if stop != nil {
			if err := stop(); err != nil {
				return nil, err
			}
		}
		prev, gatherIdx, rowSearch = prev[:0], gatherIdx[:0], rowSearch[:0]
		for si := range searches {
			for bi := range searches[si].beams {
				b := &searches[si].beams[bi]
				if b.stopped {
					continue
				}
				b.liveRow = len(prev)
				prev = append(prev, b.node.id)
				gatherIdx = append(gatherIdx, b.row)
				rowSearch = append(rowSearch, si)
			}
		}
		if len(prev) == 0 {
			break
		}
		st := nn.GatherState(tape, nn.State{H: stateH, C: stateC}, gatherIdx)
		newState, logits := m.decodeStepGrouped(tape, ops, rowSearch, st, prev)
		lps := tape.LogSoftmaxRows(logits)

		for si := range searches {
			sr := &searches[si]
			cands := cbuf[:0]
			anyLive := false
			for bi := range sr.beams {
				b := &sr.beams[bi]
				if b.stopped {
					cands = append(cands, cand{parent: b.node, beamIdx: bi, id: -1, logp: b.logp, stopped: true, carried: true})
					continue
				}
				anyLive = true
				top := rowLogProbs(lps, b.liveRow, sr.width, sbuf)
				sbuf = top[:0]
				for _, c := range top {
					cands = append(cands, cand{
						parent:  b.node,
						beamIdx: bi,
						id:      c.id,
						logp:    b.logp + c.lp,
						row:     b.liveRow,
						stopped: c.id == EOS,
					})
				}
			}
			cbuf = cands[:0]
			if !anyLive {
				continue // search finished on an earlier step
			}
			slices.SortFunc(cands, candCmp)
			if len(cands) > sr.width {
				cands = cands[:sr.width]
			}
			sr.beams = sr.beams[:0]
			for _, c := range cands {
				node := c.parent
				if !c.carried {
					node = &beamNode{id: c.id, prev: c.parent}
				}
				sr.beams = append(sr.beams, mbeam{node: node, logp: c.logp, row: c.row, stopped: c.stopped})
			}
		}
		stateH, stateC = newState.H, newState.C
		// Recycle everything this step allocated except the surviving
		// state batch; the attention operands live above the Keep mark.
		tape.ReleaseExcept(stateH, stateC)
	}

	out := make([][]Prediction, S)
	for si := range searches {
		sr := &searches[si]
		sort.SliceStable(sr.beams, func(i, j int) bool { return sr.beams[i].logp > sr.beams[j].logp })
		beams := sr.beams
		if len(beams) > sr.k {
			beams = beams[:sr.k]
		}
		preds := make([]Prediction, 0, len(beams))
		for _, b := range beams {
			preds = append(preds, Prediction{Tokens: m.Tgt.Decode(b.node.tokens()), LogProb: b.logp})
		}
		out[si] = preds
	}
	return out, nil
}

// predictSequential is the pre-batching decoder, retained as the
// arithmetic reference: it advances every live hypothesis with its own
// batch-size-1 decode step. The batched decoder must reproduce it
// bitwise (TestPredictBatchedMatchesSequential pins tokens and
// log-probs); BenchmarkPredictSequential measures what batching buys.
func (m *Model) predictSequential(src []string, k int) []Prediction {
	pool := m.getPool()
	defer m.putPool(pool)
	return m.predictSequentialOn(ad.NewForward(pool), src, k)
}

// predictSequentialOn runs the sequential beam search on the given tape.
// The algorithm is byte-for-byte equivalent on recording and forward
// tapes (TestPredictPooledMatchesReference). Candidate selection shares
// topContinuations/candLess with the batched decoder, so equal-score
// orderings agree between the two by construction.
func (m *Model) predictSequentialOn(tape *ad.Tape, src []string, k int) []Prediction {
	if k <= 0 {
		k = 1
	}
	width := k
	if width < 5 {
		width = 5
	}
	ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
	if len(ids) == 0 {
		ids = []int{UNK}
	}
	enc := m.encode(tape, [][]int{ids}, false)
	// The encoder outputs feed attention at every step: exempt them from
	// the per-step release cycle.
	tape.Keep()

	type beam struct {
		node    *beamNode
		logp    float64
		state   nn.State
		stopped bool
	}
	beams := []beam{{node: &beamNode{id: BOS}, state: enc.init}}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	for step := 0; step < maxLen; step++ {
		var next []cand
		done := true
		for bi, b := range beams {
			if b.stopped {
				next = append(next, cand{parent: b.node, beamIdx: bi, id: -1, logp: b.logp, state: b.state, stopped: true, carried: true})
				continue
			}
			done = false
			s, logits := m.decodeStep(tape, enc, b.state, []int{b.node.id}, false)
			logProbs := tape.LogSoftmaxRow(logits.W)
			for _, c := range topContinuations(logProbs, width, nil) {
				next = append(next, cand{
					parent:  b.node,
					beamIdx: bi,
					id:      c.id,
					logp:    b.logp + c.lp,
					state:   s,
					stopped: c.id == EOS,
				})
			}
		}
		if done {
			break
		}
		slices.SortFunc(next, candCmp)
		if len(next) > width {
			next = next[:width]
		}
		beams = beams[:0]
		keep := make([]*ad.V, 0, 2*len(next))
		for _, c := range next {
			node := c.parent
			if !c.carried {
				node = &beamNode{id: c.id, prev: c.parent}
			}
			beams = append(beams, beam{node: node, logp: c.logp, state: c.state, stopped: c.stopped})
			keep = append(keep, c.state.H, c.state.C)
		}
		// Recycle everything this step allocated except the surviving
		// decoder states; states kept for a stopped or pruned beam are
		// reclaimed by a later release once dereferenced.
		tape.ReleaseExcept(keep...)
	}

	sort.SliceStable(beams, func(i, j int) bool { return beams[i].logp > beams[j].logp })
	if len(beams) > k {
		beams = beams[:k]
	}
	out := make([]Prediction, 0, len(beams))
	for _, b := range beams {
		out = append(out, Prediction{Tokens: m.Tgt.Decode(b.node.tokens()), LogProb: b.logp})
	}
	return out
}
