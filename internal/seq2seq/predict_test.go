package seq2seq

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/ad"
	"repro/internal/nn"
)

// referencePredict is the pre-pooling beam search, kept as an oracle: it
// records a full gradient tape and copies every hypothesis sequence on
// extension. Only the candidate tie-breaking matches the production
// comparators (token id, then stability over beam order); everything
// else is the original algorithm. The production Predict must produce
// bitwise identical output on its forward-only, buffer-recycling,
// batch-decoding tape.
func referencePredict(m *Model, src []string, k int) []Prediction {
	if k <= 0 {
		k = 1
	}
	width := k
	if width < 5 {
		width = 5
	}
	tape := ad.NewTape() // inference-only; Backward is never called
	ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
	if len(ids) == 0 {
		ids = []int{UNK}
	}
	enc := m.encode(tape, [][]int{ids}, false)

	type beam struct {
		seq     []int
		logp    float64
		state   nn.State
		stopped bool
	}
	beams := []beam{{seq: []int{BOS}, state: enc.init}}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	for step := 0; step < maxLen; step++ {
		var next []beam
		done := true
		for _, b := range beams {
			if b.stopped {
				next = append(next, b)
				continue
			}
			done = false
			s, logits := m.decodeStep(tape, enc, b.state, []int{b.seq[len(b.seq)-1]}, false)
			logProbs := ad.LogSoftmaxRow(logits.W)
			type cand struct {
				id int
				lp float64
			}
			cands := make([]cand, 0, len(logProbs))
			for id, lp := range logProbs {
				if id == PAD || id == BOS {
					continue
				}
				cands = append(cands, cand{id, lp})
			}
			// Same tie-breaking as topContinuations: equal scores go to
			// the smaller token id. Combined with the stable sort over
			// beam-ordered candidates below, the reference realizes the
			// exact total order candLess defines.
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].lp != cands[j].lp {
					return cands[i].lp > cands[j].lp
				}
				return cands[i].id < cands[j].id
			})
			if len(cands) > width {
				cands = cands[:width]
			}
			for _, c := range cands {
				next = append(next, beam{
					seq:     append(append([]int(nil), b.seq...), c.id),
					logp:    b.logp + c.lp,
					state:   s,
					stopped: c.id == EOS,
				})
			}
		}
		if done {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].logp > next[j].logp })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}

	sort.SliceStable(beams, func(i, j int) bool { return beams[i].logp > beams[j].logp })
	if len(beams) > k {
		beams = beams[:k]
	}
	out := make([]Prediction, 0, len(beams))
	for _, b := range beams {
		out = append(out, Prediction{Tokens: m.Tgt.Decode(b.seq), LogProb: b.logp})
	}
	return out
}

// predictTestModel trains a small model and returns test sources.
func predictTestModel(t testing.TB, epochs int) (*Model, [][]string) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	train := makeToyData(r, 150)
	test := makeToyData(r, 25)
	cfg := testConfig()
	cfg.Epochs = epochs
	m := Train(cfg, train, nil, nil)
	srcs := make([][]string, len(test))
	for i, p := range test {
		srcs[i] = p.Src
	}
	return m, srcs
}

func TestPredictPooledMatchesReference(t *testing.T) {
	m, srcs := predictTestModel(t, 3)
	for _, k := range []int{1, 5, 8} {
		for i, src := range srcs {
			want := referencePredict(m, src, k)
			got := m.Predict(src, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d src %d: pooled prediction diverged from reference\ngot  %v\nwant %v", k, i, got, want)
			}
			// A second call reuses recycled buffers; it must not be
			// contaminated by the first.
			if again := m.Predict(src, k); !reflect.DeepEqual(again, want) {
				t.Fatalf("k=%d src %d: repeat prediction diverged", k, i)
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	batch := m.PredictBatch(srcs, 5)
	if len(batch) != len(srcs) {
		t.Fatalf("PredictBatch returned %d results for %d inputs", len(batch), len(srcs))
	}
	for i, src := range srcs {
		if want := m.Predict(src, 5); !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("src %d: PredictBatch diverged from Predict", i)
		}
	}
	if got := m.PredictBatch(nil, 5); len(got) != 0 {
		t.Errorf("PredictBatch(nil) = %v", got)
	}
}

func TestEvalParallelDeterministic(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	want := EvalParallel(m, srcs, 5, 1, nil)
	for _, par := range []int{0, 2, 4, 8} {
		var observed int64
		got := EvalParallel(m, srcs, 5, par, func(i int, seconds float64) {
			if i < 0 || i >= len(srcs) || seconds < 0 {
				t.Errorf("observe(%d, %g)", i, seconds)
			}
			atomic.AddInt64(&observed, 1)
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par=%d: results differ from serial evaluation", par)
		}
		if observed != int64(len(srcs)) {
			t.Errorf("par=%d: observe called %d times, want %d", par, observed, len(srcs))
		}
	}
	if got := EvalParallel(m, nil, 5, 4, nil); len(got) != 0 {
		t.Errorf("EvalParallel(no inputs) = %v", got)
	}
}

// TestPredictConcurrent hammers Predict from many goroutines; run under
// -race (scripts/verify.sh does) to verify per-call buffer pools never
// share tensors across calls.
func TestPredictConcurrent(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	want := make([][]Prediction, len(srcs))
	for i, src := range srcs {
		want[i] = m.Predict(src, 5)
	}
	done := make(chan int, 4*len(srcs))
	for w := 0; w < 4; w++ {
		go func() {
			for i, src := range srcs {
				if !reflect.DeepEqual(m.Predict(src, 5), want[i]) {
					done <- i
					return
				}
			}
			done <- -1
		}()
	}
	for w := 0; w < 4; w++ {
		if i := <-done; i >= 0 {
			t.Fatalf("concurrent Predict diverged on src %d", i)
		}
	}
}

// TestPredictAllocsBounded checks the point of the tape rework: pooled
// inference allocates a small fraction of what the recording tape did,
// because per-step tensors recycle instead of accumulating over
// maxLen × width decode steps.
func TestPredictAllocsBounded(t *testing.T) {
	m, srcs := predictTestModel(t, 1)
	src := srcs[0]
	m.Predict(src, 5) // warm the buffer pool
	pooled := testing.AllocsPerRun(20, func() { m.Predict(src, 5) })
	reference := testing.AllocsPerRun(20, func() { referencePredict(m, src, 5) })
	if pooled > reference/2 {
		t.Errorf("pooled Predict allocates %.0f objects/run, reference %.0f — pooling is not engaging", pooled, reference)
	}
}

// TestPredictBatchedMatchesSequential is the oracle for the batched
// decoder: across beam widths 1/5/8 and the toy set's ragged source
// lengths, Predict (all hypotheses in one batched step) and PredictBatch
// (several searches per step, sharing padded encoder tiles) must
// reproduce the retained sequential decoder bitwise — tokens and
// log-probs. reflect.DeepEqual compares float64s with ==, so any
// summation-order drift fails the test.
func TestPredictBatchedMatchesSequential(t *testing.T) {
	m, srcs := predictTestModel(t, 3)
	lens := map[int]bool{}
	for _, src := range srcs {
		lens[len(src)] = true
	}
	if len(lens) < 3 {
		t.Fatalf("toy sources not ragged enough for the oracle: lengths %v", lens)
	}
	for _, k := range []int{1, 5, 8} {
		want := make([][]Prediction, len(srcs))
		for i, src := range srcs {
			want[i] = m.predictSequential(src, k)
		}
		for i, src := range srcs {
			if got := m.Predict(src, k); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("k=%d src %d: batched Predict diverged from sequential\ngot  %v\nwant %v", k, i, got, want[i])
			}
		}
		batch := m.PredictBatch(srcs, k)
		for i := range srcs {
			if !reflect.DeepEqual(batch[i], want[i]) {
				t.Fatalf("k=%d src %d: PredictBatch diverged from sequential\ngot  %v\nwant %v", k, i, batch[i], want[i])
			}
		}
	}
}

// TestPredictMultiMixedK checks per-search beam cutoffs inside one
// batched group: searches with different ks decode together and each
// slot still equals the sequential decoder at its own k.
func TestPredictMultiMixedK(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	ks := make([]int, len(srcs))
	for i := range ks {
		ks[i] = []int{1, 5, 8, 3}[i%4]
	}
	got := m.PredictMulti(srcs, ks)
	for i, src := range srcs {
		if want := m.predictSequential(src, ks[i]); !reflect.DeepEqual(got[i], want) {
			t.Fatalf("src %d k=%d: PredictMulti diverged from sequential\ngot  %v\nwant %v", i, ks[i], got[i], want)
		}
	}
}

// TestTopContinuationsTieBreak pins the per-hypothesis selection order
// on equal scores: the smaller token id wins, regardless of sort
// internals or candidate arrival order.
func TestTopContinuationsTieBreak(t *testing.T) {
	// Vocab of 8; ids 0 (PAD) and 1 (BOS) are excluded. Ties at -1.0
	// between ids 7, 4, 6 and at -2.0 between ids 3, 5.
	lps := []float64{0, 0, -3, -2, -1, -2, -1, -1}
	got := topContinuations(lps, 4, nil)
	want := []scoredTok{{4, -1}, {6, -1}, {7, -1}, {3, -2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("topContinuations = %v, want %v", got, want)
	}
	// Width larger than the candidate count returns everything, still in
	// total order.
	all := topContinuations(lps, 10, nil)
	wantAll := []scoredTok{{4, -1}, {6, -1}, {7, -1}, {3, -2}, {5, -2}, {2, -3}}
	if !reflect.DeepEqual(all, wantAll) {
		t.Errorf("topContinuations(all) = %v, want %v", all, wantAll)
	}
}

// TestCandTieBreak pins pruning order across beams: score descending,
// then parent beam index, then token id — a total order, so equal-score
// candidates from different beams cannot swap between refactors.
func TestCandTieBreak(t *testing.T) {
	cands := []cand{
		{beamIdx: 2, id: 4, logp: -1},
		{beamIdx: 0, id: -1, logp: -1, carried: true},
		{beamIdx: 1, id: 9, logp: -1},
		{beamIdx: 1, id: 5, logp: -1},
		{beamIdx: 0, id: 3, logp: -0.5},
	}
	slices.SortFunc(cands, candCmp)
	var order []int
	for _, c := range cands {
		order = append(order, c.id)
	}
	// Best score first; within the -1 tie: beam 0's carried beam (id -1),
	// then beam 1's ids ascending, then beam 2.
	if want := []int{3, -1, 5, 9, 4}; !reflect.DeepEqual(order, want) {
		t.Errorf("pruning order %v, want %v", order, want)
	}
}

// benchVocab builds an n-token synthetic vocabulary (plus specials).
func benchVocab(prefix string, n int) *Vocab {
	toks := make([]string, n)
	for i := range toks {
		toks[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return BuildVocab([][]string{toks}, 0)
}

// benchSrc draws a source sequence of the given length from the
// synthetic source vocabulary.
func benchSrc(r *rand.Rand, v *Vocab, n int) []string {
	src := make([]string, n)
	for i := range src {
		src[i] = v.Token(len(specials) + r.Intn(v.Size()-len(specials)))
	}
	return src
}

// benchmarkModel builds an untrained model at the paper's configured
// scale — DefaultConfig shapes (Hidden 64, Embed 48) over ~500-subword
// vocabularies and a 60-token source — so decode steps are dominated by
// the same GEMMs as real inference (the out-projection in particular).
// Untrained weights keep every beam alive to maxTgtLen, making the
// decode work fixed across runs.
func benchmarkModel(maxTgtLen int) (*Model, []string) {
	return benchmarkModelEncoder(maxTgtLen, EncoderBiLSTM)
}

func benchmarkModelEncoder(maxTgtLen int, encoder string) (*Model, []string) {
	r := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.MaxTgtLen = maxTgtLen
	cfg.Encoder = encoder
	m := NewModel(cfg, benchVocab("ins", 500), benchVocab("ty", 400))
	return m, benchSrc(r, m.Src, 60)
}

// benchGroup builds the shared throughput workload: one predictGroup of
// ragged sources (48–72 tokens, fixed seed) against the paper-scale
// model. Both the batched and sequential decoder benchmarks run exactly
// these sources, so their ns/search numbers divide into a clean ratio.
func benchGroup(maxTgtLen int) (*Model, [][]string) {
	return benchGroupEncoder(maxTgtLen, EncoderBiLSTM)
}

func benchGroupEncoder(maxTgtLen int, encoder string) (*Model, [][]string) {
	m, _ := benchmarkModelEncoder(maxTgtLen, encoder)
	r := rand.New(rand.NewSource(7))
	srcs := make([][]string, predictGroup)
	for i := range srcs {
		srcs[i] = benchSrc(r, m.Src, 48+r.Intn(25))
	}
	return m, srcs
}

// BenchmarkPredict measures batched beam-search throughput at width 5:
// a group of predictGroup searches is encoded as one padded batch and
// all live hypotheses advance through one decoder GEMM per step. The
// headline metric is ns/search; the ratio against
// BenchmarkPredictSequential on the same sources is what batching buys
// (band-eligible GEMMs that dispatch to the AVX2 micro-kernels, where
// the sequential reference's batch-size-1 matvecs stay scalar).
func BenchmarkPredict(b *testing.B) {
	for _, maxLen := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("maxLen=%d", maxLen), func(b *testing.B) {
			m, srcs := benchGroup(maxLen)
			m.PredictBatch(srcs, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(srcs, 5)
			}
			b.StopTimer()
			perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
			b.ReportMetric(perSearch, "ns/search")
		})
	}
}

// BenchmarkPredictReference measures the old recording-tape beam search
// on the same sources for comparison.
func BenchmarkPredictReference(b *testing.B) {
	m, srcs := benchGroup(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			referencePredict(m, src, 5)
		}
	}
	b.StopTimer()
	perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
	b.ReportMetric(perSearch, "ns/search")
}

// BenchmarkPredictSequential measures the retained sequential decoder —
// one batch-size-1 encode and one batch-size-1 decode step per live
// hypothesis — over the same sources as BenchmarkPredict.
func BenchmarkPredictSequential(b *testing.B) {
	for _, maxLen := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("maxLen=%d", maxLen), func(b *testing.B) {
			m, srcs := benchGroup(maxLen)
			m.predictSequential(srcs[0], 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, src := range srcs {
					m.predictSequential(src, 5)
				}
			}
			b.StopTimer()
			perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
			b.ReportMetric(perSearch, "ns/search")
		})
	}
}

// BenchmarkPredictBatched measures multi-search decoding: a full group
// of predictGroup searches advances all its live hypotheses — up to
// group × width rows — per decoder GEMM. Reported per search, so the
// number is comparable to BenchmarkPredict (group=1 is Predict's path).
func BenchmarkPredictBatched(b *testing.B) {
	for _, group := range []int{1, predictGroup} {
		b.Run(fmt.Sprintf("group=%d", group), func(b *testing.B) {
			m, _ := benchmarkModel(16)
			r := rand.New(rand.NewSource(7))
			srcs := make([][]string, group)
			for i := range srcs {
				srcs[i] = benchSrc(r, m.Src, 48+r.Intn(25)) // ragged lengths
			}
			m.PredictBatch(srcs, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(srcs, 5)
			}
			b.StopTimer()
			perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*group)
			b.ReportMetric(perSearch, "ns/search")
		})
	}
}

// BenchmarkPredictSharedAttn sweeps beam width over the shared-encoder
// attention decode path. Each hypothesis row attends over its search's
// [Tmax,H] encoder block in place (decodeStepGrouped), so widening the
// beam grows the decoder GEMMs but not attention's memory traffic; the
// maxbuf-KiB metric reports the largest buffer the decode drew from its
// pool. At narrow widths that is the shared encoder matrix (flat across
// widths); at wide beams the decoder's own row-scaled matrices (logits,
// gates) take over. The old tiled path instead drew one
// [liveRows*Tmax,H] encoder copy per step — width times the shared
// matrix — which dominated everything at every width.
func BenchmarkPredictSharedAttn(b *testing.B) {
	for _, width := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			m, srcs := benchGroup(16)
			ks := make([]int, len(srcs))
			for i := range ks {
				ks[i] = width
			}
			pool := ad.NewPool()
			run := func() {
				if _, err := m.predictMultiOn(ad.NewForward(pool), srcs, ks, nil); err != nil {
					b.Fatal(err)
				}
			}
			run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.StopTimer()
			perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
			b.ReportMetric(perSearch, "ns/search")
			b.ReportMetric(float64(pool.MaxBufferElems())*8/1024, "maxbuf-KiB")
		})
	}
}
