package seq2seq

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/ad"
	"repro/internal/nn"
)

// referencePredict is the pre-pooling beam search, kept verbatim as an
// oracle: it records a full gradient tape and copies every hypothesis
// sequence on extension. The production Predict must produce bitwise
// identical output on its forward-only, buffer-recycling tape.
func referencePredict(m *Model, src []string, k int) []Prediction {
	if k <= 0 {
		k = 1
	}
	width := k
	if width < 5 {
		width = 5
	}
	tape := ad.NewTape() // inference-only; Backward is never called
	ids := m.Src.Encode(truncate(src, m.Cfg.MaxSrcLen))
	if len(ids) == 0 {
		ids = []int{UNK}
	}
	enc := m.encode(tape, [][]int{ids}, false)

	type beam struct {
		seq     []int
		logp    float64
		state   nn.State
		stopped bool
	}
	beams := []beam{{seq: []int{BOS}, state: enc.init}}
	maxLen := m.Cfg.MaxTgtLen
	if maxLen <= 0 {
		maxLen = 16
	}

	for step := 0; step < maxLen; step++ {
		var next []beam
		done := true
		for _, b := range beams {
			if b.stopped {
				next = append(next, b)
				continue
			}
			done = false
			s, logits := m.decodeStep(tape, enc, b.state, []int{b.seq[len(b.seq)-1]}, false)
			logProbs := ad.LogSoftmaxRow(logits.W)
			type cand struct {
				id int
				lp float64
			}
			cands := make([]cand, 0, len(logProbs))
			for id, lp := range logProbs {
				if id == PAD || id == BOS {
					continue
				}
				cands = append(cands, cand{id, lp})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].lp > cands[j].lp })
			if len(cands) > width {
				cands = cands[:width]
			}
			for _, c := range cands {
				next = append(next, beam{
					seq:     append(append([]int(nil), b.seq...), c.id),
					logp:    b.logp + c.lp,
					state:   s,
					stopped: c.id == EOS,
				})
			}
		}
		if done {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].logp > next[j].logp })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}

	sort.SliceStable(beams, func(i, j int) bool { return beams[i].logp > beams[j].logp })
	if len(beams) > k {
		beams = beams[:k]
	}
	out := make([]Prediction, 0, len(beams))
	for _, b := range beams {
		out = append(out, Prediction{Tokens: m.Tgt.Decode(b.seq), LogProb: b.logp})
	}
	return out
}

// predictTestModel trains a small model and returns test sources.
func predictTestModel(t testing.TB, epochs int) (*Model, [][]string) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	train := makeToyData(r, 150)
	test := makeToyData(r, 25)
	cfg := testConfig()
	cfg.Epochs = epochs
	m := Train(cfg, train, nil, nil)
	srcs := make([][]string, len(test))
	for i, p := range test {
		srcs[i] = p.Src
	}
	return m, srcs
}

func TestPredictPooledMatchesReference(t *testing.T) {
	m, srcs := predictTestModel(t, 3)
	for _, k := range []int{1, 5, 8} {
		for i, src := range srcs {
			want := referencePredict(m, src, k)
			got := m.Predict(src, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d src %d: pooled prediction diverged from reference\ngot  %v\nwant %v", k, i, got, want)
			}
			// A second call reuses recycled buffers; it must not be
			// contaminated by the first.
			if again := m.Predict(src, k); !reflect.DeepEqual(again, want) {
				t.Fatalf("k=%d src %d: repeat prediction diverged", k, i)
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	batch := m.PredictBatch(srcs, 5)
	if len(batch) != len(srcs) {
		t.Fatalf("PredictBatch returned %d results for %d inputs", len(batch), len(srcs))
	}
	for i, src := range srcs {
		if want := m.Predict(src, 5); !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("src %d: PredictBatch diverged from Predict", i)
		}
	}
	if got := m.PredictBatch(nil, 5); len(got) != 0 {
		t.Errorf("PredictBatch(nil) = %v", got)
	}
}

func TestEvalParallelDeterministic(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	want := EvalParallel(m, srcs, 5, 1, nil)
	for _, par := range []int{0, 2, 4, 8} {
		var observed int64
		got := EvalParallel(m, srcs, 5, par, func(i int, seconds float64) {
			if i < 0 || i >= len(srcs) || seconds < 0 {
				t.Errorf("observe(%d, %g)", i, seconds)
			}
			atomic.AddInt64(&observed, 1)
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par=%d: results differ from serial evaluation", par)
		}
		if observed != int64(len(srcs)) {
			t.Errorf("par=%d: observe called %d times, want %d", par, observed, len(srcs))
		}
	}
	if got := EvalParallel(m, nil, 5, 4, nil); len(got) != 0 {
		t.Errorf("EvalParallel(no inputs) = %v", got)
	}
}

// TestPredictConcurrent hammers Predict from many goroutines; run under
// -race (scripts/verify.sh does) to verify per-call buffer pools never
// share tensors across calls.
func TestPredictConcurrent(t *testing.T) {
	m, srcs := predictTestModel(t, 2)
	want := make([][]Prediction, len(srcs))
	for i, src := range srcs {
		want[i] = m.Predict(src, 5)
	}
	done := make(chan int, 4*len(srcs))
	for w := 0; w < 4; w++ {
		go func() {
			for i, src := range srcs {
				if !reflect.DeepEqual(m.Predict(src, 5), want[i]) {
					done <- i
					return
				}
			}
			done <- -1
		}()
	}
	for w := 0; w < 4; w++ {
		if i := <-done; i >= 0 {
			t.Fatalf("concurrent Predict diverged on src %d", i)
		}
	}
}

// TestPredictAllocsBounded checks the point of the tape rework: pooled
// inference allocates a small fraction of what the recording tape did,
// because per-step tensors recycle instead of accumulating over
// maxLen × width decode steps.
func TestPredictAllocsBounded(t *testing.T) {
	m, srcs := predictTestModel(t, 1)
	src := srcs[0]
	m.Predict(src, 5) // warm the buffer pool
	pooled := testing.AllocsPerRun(20, func() { m.Predict(src, 5) })
	reference := testing.AllocsPerRun(20, func() { referencePredict(m, src, 5) })
	if pooled > reference/2 {
		t.Errorf("pooled Predict allocates %.0f objects/run, reference %.0f — pooling is not engaging", pooled, reference)
	}
}

func benchmarkModel(maxTgtLen int) (*Model, []string) {
	r := rand.New(rand.NewSource(3))
	data := makeToyData(r, 200)
	cfg := testConfig()
	cfg.MaxTgtLen = maxTgtLen
	var srcSeqs, tgtSeqs [][]string
	for _, p := range data {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	m := NewModel(cfg, BuildVocab(srcSeqs, cfg.SrcVocab), BuildVocab(tgtSeqs, cfg.TgtVocab))
	return m, data[0].Src
}

// BenchmarkPredict measures pooled beam search at increasing decode
// lengths; with recycling, bytes/op should grow far slower than
// maxLen × width.
func BenchmarkPredict(b *testing.B) {
	for _, maxLen := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("maxLen=%d", maxLen), func(b *testing.B) {
			m, src := benchmarkModel(maxLen)
			m.Predict(src, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Predict(src, 5)
			}
		})
	}
}

// BenchmarkPredictReference measures the old recording-tape beam search
// for comparison.
func BenchmarkPredictReference(b *testing.B) {
	for _, maxLen := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("maxLen=%d", maxLen), func(b *testing.B) {
			m, src := benchmarkModel(maxLen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				referencePredict(m, src, 5)
			}
		})
	}
}
