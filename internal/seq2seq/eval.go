package seq2seq

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/ad"
)

// fanOut runs f(0..n-1) over at most par workers (0 = NumCPU) and waits
// for all of them — the same bounded-pool shape as the dataset pipeline.
func fanOut(par, n int, f func(int)) {
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// parallel returns the model's configured worker count.
func (m *Model) parallel() int {
	if m.Cfg.Parallelism > 0 {
		return m.Cfg.Parallelism
	}
	return runtime.NumCPU()
}

// EvalParallel fans beam searches over a worker pool of par workers
// (0 = NumCPU) in fixed groups of predictGroup examples, so each worker
// decodes a whole group's live hypotheses — j × group × width rows —
// per batched decoder step. Results merge by input index and the
// grouping is position-determined, so the output is byte-identical at
// any worker count: each prediction is a pure function of (model,
// source), and slot i always holds Predict(srcs[i], k). Each worker
// draws buffer pools from the model's cache, reused across its groups.
//
// observe (may be nil) receives every completed example's index and its
// amortized share of the group's wall-clock decode seconds (searches in
// a group finish together); it is called from worker goroutines and
// must be safe for concurrent use (the metrics types are).
func EvalParallel(m *Model, srcs [][]string, k, par int, observe func(i int, seconds float64)) [][]Prediction {
	out := make([][]Prediction, len(srcs))
	if len(srcs) == 0 {
		return out
	}
	groups := (len(srcs) + predictGroup - 1) / predictGroup
	fanOut(par, groups, func(g int) {
		lo := g * predictGroup
		hi := min(lo+predictGroup, len(srcs))
		start := time.Now()
		preds := m.PredictBatch(srcs[lo:hi], k)
		seconds := time.Since(start).Seconds() / float64(hi-lo)
		for i := lo; i < hi; i++ {
			out[i] = preds[i-lo]
			if observe != nil {
				observe(i, seconds)
			}
		}
	})
	return out
}

// validBatchScore is one batch's contribution to the validation loss.
type validBatchScore struct {
	sum    float64 // summed token cross-entropy
	tokens float64 // number of scored (non-PAD) target tokens
}

// scoreBatches computes every batch's token-loss sum on pooled
// forward-only tapes, fanned over par workers; results land in
// batch-index order. Buffer pools are drawn from the model's cache, so
// repeated validation passes recycle their tensors.
func (m *Model) scoreBatches(batches []batch, par int) []validBatchScore {
	scores := make([]validBatchScore, len(batches))
	fanOut(par, len(batches), func(i int) {
		pool := m.getPool()
		tape := ad.NewForward(pool)
		scores[i].sum, scores[i].tokens = m.batchLossSum(tape, batches[i])
		tape.Reset()
		m.putPool(pool)
	})
	return scores
}
