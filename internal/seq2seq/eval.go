package seq2seq

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/ad"
)

// fanOut runs f(0..n-1) over at most par workers (0 = NumCPU) and waits
// for all of them — the same bounded-pool shape as the dataset pipeline.
func fanOut(par, n int, f func(int)) {
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// parallel returns the model's configured worker count.
func (m *Model) parallel() int {
	if m.Cfg.Parallelism > 0 {
		return m.Cfg.Parallelism
	}
	return runtime.NumCPU()
}

// EvalParallel fans per-example beam searches over a worker pool of par
// workers (0 = NumCPU) and merges results by input index, so the output
// is byte-identical at any worker count: each prediction is a pure
// function of (model, source), and slot i always holds Predict(srcs[i], k).
// Each worker owns a private buffer pool, reused across its examples.
//
// observe (may be nil) receives every completed example's index and
// wall-clock inference seconds; it is called from worker goroutines and
// must be safe for concurrent use (the metrics types are).
func EvalParallel(m *Model, srcs [][]string, k, par int, observe func(i int, seconds float64)) [][]Prediction {
	out := make([][]Prediction, len(srcs))
	if len(srcs) == 0 {
		return out
	}
	fanOut(par, len(srcs), func(i int) {
		start := time.Now()
		// fanOut reuses a goroutine per worker; Predict draws a pool per
		// call from the model's internal cache, which amortizes the same
		// way.
		out[i] = m.Predict(srcs[i], k)
		if observe != nil {
			observe(i, time.Since(start).Seconds())
		}
	})
	return out
}

// validBatchScore is one batch's contribution to the validation loss.
type validBatchScore struct {
	sum    float64 // summed token cross-entropy
	tokens float64 // number of scored (non-PAD) target tokens
}

// scoreBatches computes every batch's token-loss sum on pooled
// forward-only tapes, fanned over par workers; results land in
// batch-index order. Buffer pools are drawn from the model's cache, so
// repeated validation passes recycle their tensors.
func (m *Model) scoreBatches(batches []batch, par int) []validBatchScore {
	scores := make([]validBatchScore, len(batches))
	fanOut(par, len(batches), func(i int) {
		pool := m.getPool()
		tape := ad.NewForward(pool)
		scores[i].sum, scores[i].tokens = m.batchLossSum(tape, batches[i])
		tape.Reset()
		m.putPool(pool)
	})
	return scores
}
