package seq2seq

import (
	"math/rand"
	"time"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Data-parallel training step. Every padded minibatch is decomposed into
// fixed shards of shardRows examples; each shard runs its own
// forward+backward pass — on a private shadow model (shared weights,
// private gradients and dropout stream) and a pooled recording tape — in
// a bounded worker pool. Per-parameter gradients then reduce in
// ascending shard order into the master model before a single optimizer
// step.
//
// The decomposition is what makes -j invariance hold bitwise: the shard
// boundaries, each shard's dropout stream (seeded from Seed, epoch,
// batch, shard), and the reduction order are all pure functions of the
// data and configuration — worker count only decides how many shards
// are in flight at once. Float addition is not associative, so any
// scheme that let a worker's finish order pick the summation bracketing
// would drift between runs; slot-per-shard buffers plus the ordered
// merge in nn.ReduceGrads pin the bracketing instead.

// shardRows is the number of examples per training shard. It is a fixed
// property of the arithmetic — NOT derived from the worker count — so
// the gradient bracketing is identical at any -j. Four rows keeps the
// per-shard matmuls on the blocked kernels' fast path while exposing
// BatchSize/4 units of concurrency per step.
const shardRows = 4

// shardSeed mixes the run seed and a (epoch, batch, shard) coordinate
// into the shard's dropout seed (splitmix64 finalizer, the dataset
// pipeline's per-package idiom): every shard draws an uncorrelated,
// position-determined stream, so a resumed run replays exactly the
// streams an uninterrupted run would have used.
func shardSeed(seed int64, epoch, batch, shard int) int64 {
	z := uint64(seed) * 0x9e3779b97f4a7c15
	z += uint64(epoch)*0xbf58476d1ce4b9b9 + uint64(batch)*0x94d049bb133111eb + uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shadow returns a model that shares m's weights but owns private
// gradient storage and a private RNG: the unit of shard isolation.
// Weight slices alias, so the master's optimizer steps are visible to
// every shadow immediately and for free; gradient slices stay separate
// so concurrent backward passes never race.
func (m *Model) shadow() *Model {
	s := NewModel(m.Cfg, m.Src, m.Tgt)
	mine := m.params.All()
	theirs := s.params.All()
	for i := range mine {
		theirs[i].W = mine[i].W
	}
	return s
}

// trainSlot is the per-shard-index training resource set. Slot s is
// used exclusively for shard s of the current batch, whichever worker
// picks it up — worker identity never touches the arithmetic.
type trainSlot struct {
	model  *Model
	tape   *ad.Tape
	sum    float64 // summed token cross-entropy of the last shard run
	tokens float64
}

// trainShards owns the slots and scratch for sharded training steps.
type trainShards struct {
	m     *Model
	par   int
	slots []*trainSlot
	sets  []*nn.Params // slots[i].model's parameters, for ReduceGrads
}

func (m *Model) newTrainShards(par int) *trainShards {
	return &trainShards{m: m, par: par}
}

// ensure grows the slot list to n shards.
func (ts *trainShards) ensure(n int) {
	for len(ts.slots) < n {
		sh := ts.m.shadow()
		ts.slots = append(ts.slots, &trainSlot{model: sh, tape: ad.NewTraining(ad.NewPool())})
		ts.sets = append(ts.sets, &sh.params)
	}
}

// runBatch executes forward+backward for every shard of b concurrently
// and returns the shard count. Afterwards slot s holds shard s's summed
// loss, token count, and parameter gradients.
func (ts *trainShards) runBatch(epoch, bi int, b batch) int {
	B := len(b.src)
	ns := (B + shardRows - 1) / shardRows
	ts.ensure(ns)
	fanOut(ts.par, ns, func(s int) {
		slot := ts.slots[s]
		lo := s * shardRows
		hi := lo + shardRows
		if hi > B {
			hi = B
		}
		slot.model.rng = rand.New(rand.NewSource(shardSeed(ts.m.Cfg.Seed, epoch, bi, s)))
		loss, tokens := slot.model.batchShardLoss(slot.tape, batch{src: b.src[lo:hi], tgt: b.tgt[lo:hi]})
		loss.G[0] = 1
		slot.tape.Backward()
		slot.sum, slot.tokens = loss.W[0], tokens
		slot.tape.Reset()
	})
	return ns
}

// batchShardLoss runs the teacher-forced forward pass with dropout and
// returns the summed (not averaged) token cross-entropy plus the number
// of scored tokens. Shard sums compose exactly: the batch loss is
// (sum over shards in order) / (token total), computed by the caller,
// so the objective's value and gradient are independent of how the
// batch was sharded. Every target row contains at least BOS->token, so
// the loss node always exists.
func (m *Model) batchShardLoss(t *ad.Tape, b batch) (loss *ad.V, tokens float64) {
	enc := m.encode(t, b.src, true)
	B := len(b.tgt)
	Ttgt := len(b.tgt[0])
	s := enc.init
	for step := 0; step+1 < Ttgt; step++ {
		prev := make([]int, B)
		targets := make([]int, B)
		weights := make([]float64, B)
		n := 0.0
		for i := 0; i < B; i++ {
			prev[i] = b.tgt[i][step]
			targets[i] = b.tgt[i][step+1]
			if targets[i] != PAD {
				weights[i] = 1
				n++
			}
		}
		var logits *ad.V
		s, logits = m.decodeStep(t, enc, s, prev, true)
		if n == 0 {
			continue
		}
		ce := t.SoftmaxCrossEntropySum(logits, targets, weights)
		if loss == nil {
			loss = ce
		} else {
			loss = t.Add(loss, ce)
		}
		tokens += n
	}
	return loss, tokens
}

// trainStep runs one optimizer step over a minibatch: parallel shard
// forward+backward, ordered gradient reduction scaled to the token-mean
// objective, then Adam. Returns the batch's summed loss and token count
// for epoch-level (token-weighted, -j-invariant) loss reporting.
func (m *Model) trainStep(ts *trainShards, opt *nn.Adam, epoch, bi int, b batch) (sum, tokens float64) {
	shardStart := time.Now()
	ns := ts.runBatch(epoch, bi, b)
	shardSecs := time.Since(shardStart).Seconds()
	mergeStart := time.Now()
	for _, slot := range ts.slots[:ns] {
		sum += slot.sum
		tokens += slot.tokens
	}
	m.params.ReduceGrads(ts.sets[:ns], 1/tokens)
	opt.Step()
	if m.trainObs.Step != nil {
		m.trainObs.Step(TrainEvent{
			Epoch: epoch, Batch: bi, Shards: ns, Tokens: tokens,
			ShardSeconds: shardSecs, MergeSeconds: time.Since(mergeStart).Seconds(),
		})
	}
	return sum, tokens
}

// TrainEvent describes one completed optimizer step (one minibatch).
type TrainEvent struct {
	Epoch  int // zero-based epoch index
	Batch  int // zero-based batch index within the epoch
	Shards int // shards the batch was decomposed into
	Tokens float64
	// ShardSeconds is the wall clock of the parallel forward+backward
	// phase; MergeSeconds covers gradient reduction plus the optimizer
	// step (the serial tail of every step).
	ShardSeconds float64
	MergeSeconds float64
}

// TrainEpochEvent describes one completed training epoch, including its
// validation pass.
type TrainEpochEvent struct {
	Epoch     int
	Batches   int
	Seconds   float64
	TrainLoss float64
	ValidLoss float64
}

// TrainObserver receives training progress callbacks for metrics;
// either field may be nil. Callbacks run on the training goroutine
// between steps, never concurrently.
type TrainObserver struct {
	Step  func(TrainEvent)
	Epoch func(TrainEpochEvent)
}

// SetTrainObserver installs obs for subsequent Fit/FitResume calls.
func (m *Model) SetTrainObserver(obs TrainObserver) { m.trainObs = obs }
