package seq2seq

import (
	"math"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/nn"
)

// tfLayer holds one Transformer encoder layer's parameters
// (single-head self-attention + position-wise feed-forward, post-norm).
type tfLayer struct {
	wq, wk, wv, wo   *nn.Linear
	ln1Gain, ln1Bias *ad.V
	ffn1, ffn2       *nn.Linear
	ln2Gain, ln2Bias *ad.V
}

func newTFLayer(p *nn.Params, name string, r *rand.Rand, h int) *tfLayer {
	ones := func(n string) *ad.V {
		v := p.Add(n, ad.New(1, h))
		for i := range v.W {
			v.W[i] = 1
		}
		return v
	}
	return &tfLayer{
		wq:      nn.NewLinear(p, name+".wq", r, h, h),
		wk:      nn.NewLinear(p, name+".wk", r, h, h),
		wv:      nn.NewLinear(p, name+".wv", r, h, h),
		wo:      nn.NewLinear(p, name+".wo", r, h, h),
		ln1Gain: ones(name + ".ln1g"),
		ln1Bias: p.Add(name+".ln1b", ad.New(1, h)),
		ffn1:    nn.NewLinear(p, name+".ffn1", r, h, 2*h),
		ffn2:    nn.NewLinear(p, name+".ffn2", r, 2*h, h),
		ln2Gain: ones(name + ".ln2g"),
		ln2Bias: p.Add(name+".ln2b", ad.New(1, h)),
	}
}

// posEncoding returns the sinusoidal positional vector for position t.
func posEncoding(t, dim int) []float64 {
	out := make([]float64, dim)
	for i := 0; i < dim; i += 2 {
		freq := math.Pow(10000, -float64(i)/float64(dim))
		out[i] = math.Sin(float64(t) * freq)
		if i+1 < dim {
			out[i+1] = math.Cos(float64(t) * freq)
		}
	}
	return out
}

// transformerEncoder is the alternative architecture behind the encoder
// interface: an input projection to Hidden plus EncLayers post-norm
// self-attention layers. Its self-attention reuses the same masked
// attention ops as the decoder, so it inherits their fast-math forward
// kernels on inference tapes and their bitwise row independence on
// recording tapes.
type transformerEncoder struct {
	proj   *nn.Linear
	layers []*tfLayer
}

func newTransformerEncoder(p *nn.Params, r *rand.Rand, cfg Config) *transformerEncoder {
	e := &transformerEncoder{
		proj: nn.NewLinear(p, "tf.proj", r, cfg.Embed, cfg.Hidden),
	}
	for l := 0; l < cfg.EncLayers; l++ {
		e.layers = append(e.layers, newTFLayer(p, name("tf.layer", l), r, cfg.Hidden))
	}
	return e
}

func (e *transformerEncoder) encode(m *Model, t *ad.Tape, srcIDs [][]int, train bool) encoded {
	B := len(srcIDs)
	T := len(srcIDs[0])
	H := m.Cfg.Hidden
	flat := make([]float64, B*T)
	for tt := 0; tt < T; tt++ {
		for b := 0; b < B; b++ {
			if srcIDs[b][tt] != PAD {
				flat[b*T+tt] = 1
			}
		}
	}
	// Embed, project to H, add positional encodings.
	xs := make([]*ad.V, T)
	for tt := 0; tt < T; tt++ {
		ids := make([]int, B)
		for b := 0; b < B; b++ {
			ids[b] = srcIDs[b][tt]
		}
		x := e.proj.Apply(t, m.embSrc.Lookup(t, ids))
		pe := posEncoding(tt, H)
		full := make([]float64, B*H)
		for b := 0; b < B; b++ {
			copy(full[b*H:(b+1)*H], pe)
		}
		xs[tt] = t.AddRowsConst(x, full)
	}

	scale := 1 / math.Sqrt(float64(H))
	for _, layer := range e.layers {
		// Self-attention: stack keys and values once, query per position.
		ks := make([]*ad.V, T)
		vs := make([]*ad.V, T)
		qs := make([]*ad.V, T)
		for tt := 0; tt < T; tt++ {
			qs[tt] = layer.wq.Apply(t, xs[tt])
			ks[tt] = layer.wk.Apply(t, xs[tt])
			vs[tt] = layer.wv.Apply(t, xs[tt])
		}
		K := t.StackRows(ks)
		V := t.StackRows(vs)
		next := make([]*ad.V, T)
		for tt := 0; tt < T; tt++ {
			scores := t.Scale(t.AttnScores(qs[tt], K, T), scale)
			alpha := t.SoftmaxRowsMasked(scores, flat)
			ctx := t.WeightedSum(alpha, V, H)
			attn := layer.wo.Apply(t, ctx)
			if train && m.Cfg.Dropout > 0 {
				attn = t.Dropout(attn, m.Cfg.Dropout, m.rng.Float64)
			}
			h1 := t.LayerNorm(t.Add(xs[tt], attn), layer.ln1Gain, layer.ln1Bias)
			ff := layer.ffn2.Apply(t, t.ReLU(layer.ffn1.Apply(t, h1)))
			if train && m.Cfg.Dropout > 0 {
				ff = t.Dropout(ff, m.Cfg.Dropout, m.rng.Float64)
			}
			next[tt] = t.LayerNorm(t.Add(h1, ff), layer.ln2Gain, layer.ln2Bias)
		}
		xs = next
	}
	stack := t.StackRows(xs)

	// Decoder init: masked mean pool over positions, bridged like the
	// LSTM final states.
	pooled := meanPool(t, xs, flat, B, T)
	init := nn.State{
		H: t.Tanh(m.bridgeH.Apply(t, pooled)),
		C: t.Tanh(m.bridgeC.Apply(t, pooled)),
	}
	return encoded{states: stack, mask: flat, init: init, T: T}
}

// meanPool averages the non-padding positions of a time-major sequence.
func meanPool(t *ad.Tape, xs []*ad.V, flat []float64, B, T int) *ad.V {
	// Build per-example weights 1/len as an attention-like weighted sum
	// over the stacked states.
	counts := make([]float64, B)
	for b := 0; b < B; b++ {
		for tt := 0; tt < T; tt++ {
			counts[b] += flat[b*T+tt]
		}
		if counts[b] == 0 {
			counts[b] = 1
		}
	}
	w := ad.New(B, T)
	for b := 0; b < B; b++ {
		for tt := 0; tt < T; tt++ {
			w.Set(b, tt, flat[b*T+tt]/counts[b])
		}
	}
	stack := t.StackRows(xs)
	return t.WeightedSum(w, stack, xs[0].C)
}
