package seq2seq

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/ad"
)

// TestLayerParamNamesUnique pins the layer-name regression: the old
// name() built layer suffixes with string(rune('0'+l)), so layers ≥ 10
// got garbled punctuation names (':' for 10, ';' for 11) instead of
// "10"/"11". A 12-layer config must register every layer under its
// decimal index, uniquely, for both encoder architectures.
func TestLayerParamNamesUnique(t *testing.T) {
	for _, tc := range []struct {
		encoder string
		want    []string
	}{
		{EncoderBiLSTM, []string{"enc.fwd10.Wx", "enc.fwd11.Wx", "enc.bwd11.Wh"}},
		{EncoderTransformer, []string{"tf.layer10.wq.W", "tf.layer11.ffn2.b", "tf.layer11.ln2g"}},
	} {
		t.Run(EncoderName(tc.encoder), func(t *testing.T) {
			cfg := testConfig()
			cfg.EncLayers = 12
			cfg.Encoder = tc.encoder
			voc := BuildVocab([][]string{{"a", "b"}}, 0)
			m := NewModel(cfg, voc, voc) // Params.Add panics on duplicates
			names := m.params.Names()
			seen := map[string]bool{}
			for _, n := range names {
				if seen[n] {
					t.Fatalf("duplicate parameter name %q", n)
				}
				seen[n] = true
			}
			for _, w := range tc.want {
				if !slices.Contains(names, w) {
					t.Errorf("parameter %q not registered; layer indices >= 10 garbled?", w)
				}
			}
		})
	}
}

// TestEncoderRegistrationOrderStable pins the serialization contract the
// interface refactor must not move: parameter registration order (which
// is the checkpoint weight order) keeps the encoder between the
// embeddings and the bridge, exactly where the pre-interface constructor
// put it.
func TestEncoderRegistrationOrderStable(t *testing.T) {
	voc := BuildVocab([][]string{{"a", "b"}}, 0)
	for _, enc := range []string{EncoderBiLSTM, EncoderTransformer} {
		cfg := testConfig()
		cfg.Encoder = enc
		names := NewModel(cfg, voc, voc).params.Names()
		if names[0] != "emb.src" || names[1] != "emb.tgt" {
			t.Fatalf("%s: embeddings not first: %v", EncoderName(enc), names[:2])
		}
		bridge := slices.Index(names, "bridge.h.W")
		if bridge < 0 {
			t.Fatalf("%s: bridge.h.W missing", EncoderName(enc))
		}
		for i := 2; i < bridge; i++ {
			prefix := "enc."
			if enc == EncoderTransformer {
				prefix = "tf."
			}
			if names[i][:len(prefix)] != prefix {
				t.Errorf("%s: name %q between embeddings and bridge is not an encoder parameter", EncoderName(enc), names[i])
			}
		}
		tail := names[bridge:]
		wantTail := []string{"bridge.h.W", "bridge.h.b", "bridge.c.W", "bridge.c.b",
			"dec.Wx", "dec.Wh", "dec.b", "combine.W", "combine.b", "out.W", "out.b"}
		if !slices.Equal(tail, wantTail) {
			t.Errorf("%s: post-encoder order %v, want %v", EncoderName(enc), tail, wantTail)
		}
	}
}

// TestPredictAttnWorkingSetWidthIndependent is the shared-attention
// memory regression test: the largest buffer beam decoding ever draws
// from its pool must not scale with beam width. The tiled decoder drew a
// [liveRows*Tmax, H] encoder copy every step — width times the packed
// encoder matrix — so reintroducing a tile trips both assertions.
func TestPredictAttnWorkingSetWidthIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cfg := testConfig()
	cfg.MaxSrcLen = 60
	cfg.MaxTgtLen = 8
	m := buildModel(t, cfg, makeToyData(r, 80))

	srcs := make([][]string, 4)
	for i := range srcs {
		src := makeToyData(r, 8)
		for _, p := range src {
			srcs[i] = append(srcs[i], p.Src...)
		}
		srcs[i] = truncate(srcs[i], cfg.MaxSrcLen)
	}
	Tmax := 0
	for _, s := range srcs {
		if len(s) > Tmax {
			Tmax = len(s)
		}
	}

	maxBuf := func(width int) int {
		pool := ad.NewPool()
		ks := make([]int, len(srcs))
		for i := range ks {
			ks[i] = width
		}
		if _, err := m.predictMultiOn(ad.NewForward(pool), srcs, ks, nil); err != nil {
			t.Fatal(err)
		}
		return pool.MaxBufferElems()
	}

	H := m.Cfg.Hidden
	encElems := len(srcs) * Tmax * H // the shared [S*Tmax,H] operand cache
	narrow, wide := maxBuf(5), maxBuf(20)
	// At narrow width the encoder matrix is the biggest thing in the
	// pool: no attention buffer exceeds the width-independent cache.
	if narrow != encElems {
		t.Errorf("width 5: max pooled buffer %d elems, want the shared encoder matrix (%d)", narrow, encElems)
	}
	// At any width, the only buffers allowed to scale with the live-row
	// count L are the decoder's own [L,·] matrices — the largest being
	// the LSTM gate matrix [L,4H]. A tiled attention path would draw
	// [L*Tmax,H] (Tmax/4 times bigger); both checks catch it.
	gates := len(srcs) * 20 * 4 * H
	if wide > max(encElems, gates) {
		t.Errorf("width 20: max pooled buffer %d elems exceeds both the shared encoder matrix (%d) and the decoder gate batch (%d): an attention buffer is scaling with width", wide, encElems, gates)
	}
	if tile := len(srcs) * 20 * Tmax * H; wide >= tile {
		t.Errorf("max pooled buffer %d elems >= width-scaled tile %d", wide, tile)
	}
}

// buildModel trains nothing: it builds an initialized model over the
// pairs' vocabulary, enough for decode-path structure tests.
func buildModel(t *testing.T, cfg Config, pairs []Pair) *Model {
	t.Helper()
	var srcs, tgts [][]string
	for _, p := range pairs {
		srcs = append(srcs, p.Src)
		tgts = append(tgts, p.Tgt)
	}
	return NewModel(cfg, BuildVocab(srcs, cfg.SrcVocab), BuildVocab(tgts, cfg.TgtVocab))
}
