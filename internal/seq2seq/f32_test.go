package seq2seq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ad"
)

// TestPredictF32Deterministic: the f32 engine is a third numeric
// contract next to exact and fast-math f64 — different bits, still a
// function of its inputs. Repeated decodes must agree exactly, the
// precision switch must be observable, and switching back to f64 must
// restore the full-precision predictions bit-for-bit.
func TestPredictF32Deterministic(t *testing.T) {
	m, srcs := benchGroup(8)
	testPredictF32Deterministic(t, m, srcs)
}

// TestPredictF32DeterministicTransformer: the Transformer encoder rides
// the same f32 tapes through the encoder interface (LayerNorm, ReLU,
// AddRowsConst and the attention ops all dispatch), so it owes the same
// contract.
func TestPredictF32DeterministicTransformer(t *testing.T) {
	m, srcs := benchGroupEncoder(8, EncoderTransformer)
	testPredictF32Deterministic(t, m, srcs)
}

func testPredictF32Deterministic(t *testing.T, m *Model, srcs [][]string) {
	ks := make([]int, len(srcs))
	for i := range ks {
		ks[i] = 3
	}
	full := m.PredictMulti(srcs, ks)

	if got := m.Precision(); got != "f64" {
		t.Fatalf("model born with precision %q", got)
	}
	if err := m.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	if got := m.Precision(); got != "f32" {
		t.Fatalf("after SetPrecision(f32): precision %q", got)
	}
	a := m.PredictMulti(srcs, ks)
	bPreds := m.PredictMulti(srcs, ks)
	if !reflect.DeepEqual(a, bPreds) {
		t.Error("f32 predictions differ between identical calls")
	}
	for i, preds := range a {
		if len(preds) == 0 {
			t.Fatalf("f32 search %d returned no beams", i)
		}
	}

	if err := m.SetPrecision("f64"); err != nil {
		t.Fatal(err)
	}
	again := m.PredictMulti(srcs, ks)
	if !reflect.DeepEqual(full, again) {
		t.Error("full-precision predictions changed after an f32 episode")
	}
}

// TestSetPrecisionUnknown: the precision knob rejects anything but the
// two engines it can deliver, leaving the model untouched.
func TestSetPrecisionUnknown(t *testing.T) {
	m, _ := benchGroup(8)
	if err := m.SetPrecision("f16"); err == nil {
		t.Fatal("SetPrecision(f16) accepted")
	}
	if got := m.Precision(); got != "f64" {
		t.Fatalf("failed SetPrecision changed precision to %q", got)
	}
	if err := m.SetPrecision(""); err != nil {
		t.Fatalf("SetPrecision(%q) = %v, want default f64", "", err)
	}
}

// TestPredictF32TracksF64 is the in-package accuracy smoke test (the CLI
// acctest gate measures the real thing on trained fixtures): on a toy
// trained model the f32 engine's top-1 predictions should agree with
// f64 on a clear majority of searches — single precision shifts
// near-tied beams, not confident ones.
func TestPredictF32TracksF64(t *testing.T) {
	m, srcs := predictTestModel(t, 3)
	f64Preds := m.PredictBatch(srcs, 1)
	if err := m.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	f32Preds := m.PredictBatch(srcs, 1)
	agree := 0
	for i := range srcs {
		if reflect.DeepEqual(f64Preds[i][0].Tokens, f32Preds[i][0].Tokens) {
			agree++
		}
	}
	if agree*2 < len(srcs) {
		t.Errorf("f32 top-1 agrees with f64 on %d/%d searches", agree, len(srcs))
	}
}

// TestPredictF32WorkingSetHalved pins the headline memory claim: the
// f32 decode's peak pooled buffer is exactly half the f64 one in bytes
// — same element count (the shared encoder operand cache both engines
// peak on), four bytes per element instead of eight.
func TestPredictF32WorkingSetHalved(t *testing.T) {
	m, srcs := predictTestModel(t, 1)
	ks := make([]int, len(srcs))
	for i := range ks {
		ks[i] = 5
	}

	peak := func(mk func(*ad.Pool) *ad.Tape) (elems, bytes int) {
		pool := ad.NewPool()
		if _, err := m.predictMultiOn(mk(pool), srcs, ks, nil); err != nil {
			t.Fatal(err)
		}
		return pool.MaxBufferElems(), pool.MaxBufferBytes()
	}

	if err := m.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	e64, b64 := peak(ad.NewForward)
	e32, b32 := peak(ad.NewForwardF32)
	if e32 != e64 {
		t.Errorf("peak buffer elems: f32 %d, f64 %d — engines peak on different buffers", e32, e64)
	}
	if 2*b32 != b64 {
		t.Errorf("peak buffer bytes: f32 %d, f64 %d — want exactly half", b32, b64)
	}
}

// TestPredictF32AllocsSteadyState: the f32 engine recycles through the
// pool's float32 free list exactly like the f64 engines recycle through
// theirs — steady-state decoding must allocate a small fraction of what
// the recording-tape reference does.
func TestPredictF32AllocsSteadyState(t *testing.T) {
	m, srcs := predictTestModel(t, 1)
	src := srcs[0]
	if err := m.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	m.Predict(src, 5) // warm the buffer pool
	pooled := testing.AllocsPerRun(20, func() { m.Predict(src, 5) })
	if err := m.SetPrecision("f64"); err != nil {
		t.Fatal(err)
	}
	reference := testing.AllocsPerRun(20, func() { referencePredict(m, src, 5) })
	if pooled > reference/2 {
		t.Errorf("pooled f32 Predict allocates %.0f objects/run, reference %.0f — f32 pooling is not engaging", pooled, reference)
	}
}

// TestTrainingPrecisionIsolated is the model-level training guard: a
// model carrying SetPrecision("f32") must train bit-identically to its
// default-precision twin, because recording tapes never dispatch to the
// f32 kernels (ad.TestF32Dispatch pins the tape level; this pins the
// Fit entry point end to end, validation loss included).
func TestTrainingPrecisionIsolated(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	train := makeToyData(r, 60)
	valid := makeToyData(r, 12)
	cfg := testConfig()
	cfg.Epochs = 1

	build := func() *Model {
		var srcs, tgts [][]string
		for _, p := range train {
			srcs = append(srcs, p.Src)
			tgts = append(tgts, p.Tgt)
		}
		return NewModel(cfg, BuildVocab(srcs, cfg.SrcVocab), BuildVocab(tgts, cfg.TgtVocab))
	}

	base := build()
	base.Fit(train, valid, nil)

	f32m := build()
	if err := f32m.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	f32m.Fit(train, valid, nil)

	want, got := base.snapshot(), f32m.snapshot()
	if len(want) != len(got) {
		t.Fatalf("parameter count differs: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("parameter %d trained differently under an f32 precision flag", i)
		}
	}
}

// BenchmarkPredictF32 measures the single-precision engine on the exact
// workload of BenchmarkPredictFastMath, with the committed f64 tiers
// rerun beside it so the three-way ratio comes from one machine state.
// The acceptance bar is f32 ≥ 1.25× over fast-f64 at maxLen=16.
func BenchmarkPredictF32(b *testing.B) {
	for _, mode := range []struct {
		name      string
		fast      bool
		precision string
	}{{"full", false, "f64"}, {"fast", true, "f64"}, {"f32", false, "f32"}} {
		for _, maxLen := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/maxLen=%d", mode.name, maxLen), func(b *testing.B) {
				m, srcs := benchGroup(maxLen)
				m.SetFastMath(mode.fast)
				if err := m.SetPrecision(mode.precision); err != nil {
					b.Fatal(err)
				}
				ks := make([]int, len(srcs))
				for i := range ks {
					ks[i] = 5
				}
				m.PredictMulti(srcs, ks)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.PredictMulti(srcs, ks)
				}
				b.StopTimer()
				perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
				b.ReportMetric(perSearch, "ns/search")
			})
		}
	}
}
