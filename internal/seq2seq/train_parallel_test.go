package seq2seq

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/nn"
)

// fitGoldenRun trains a fresh model of the given encoder architecture
// on fixed toy data at the given worker count, checkpointing every
// epoch, and returns the final weights plus the last checkpoint's
// serialized bytes and the per-epoch progress lines.
func fitGoldenRun(t *testing.T, par int, encoder string) (weights [][]float64, ckpt []byte, lines []string) {
	t.Helper()
	r := rand.New(rand.NewSource(44))
	train := makeToyData(r, 90)
	valid := makeToyData(r, 24)
	cfg := testConfig()
	cfg.Epochs = 3
	cfg.Parallelism = par
	cfg.Encoder = encoder

	var srcSeqs, tgtSeqs [][]string
	for _, p := range train {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	m := NewModel(cfg, BuildVocab(srcSeqs, cfg.SrcVocab), BuildVocab(tgtSeqs, cfg.TgtVocab))
	var buf bytes.Buffer
	err := m.FitResume(train, valid, nil, func(st *TrainState) error {
		buf.Reset()
		// Checkpoints record the full Config, and the worker knob is the
		// one field this test varies on purpose; pin it so the byte
		// comparison covers everything the knob must NOT change — weights,
		// optimizer moments, early-stop state, vocabularies.
		old := m.Cfg.Parallelism
		m.Cfg.Parallelism = 1
		err := m.SaveCheckpoint(&buf, st)
		m.Cfg.Parallelism = old
		return err
	}, func(line string) { lines = append(lines, line) })
	if err != nil {
		t.Fatal(err)
	}
	return m.snapshot(), buf.Bytes(), lines
}

// TestFitParallelGolden: training is sharded identically at every
// worker count, gradients reduce in shard order, and dropout streams
// are position-seeded — so the final weights, every epoch's loss line,
// and the checkpoint files must be byte-identical at -j 1, 4, and 8.
func TestFitParallelGolden(t *testing.T) {
	testFitParallelGolden(t, EncoderBiLSTM)
}

// TestFitParallelGoldenTransformer: the same -j invariance for the
// Transformer encoder. Nothing architecture-specific earns it — the
// encoder interface draws dropout from the shard-seeded rng and every
// op reduces in shard order — but the golden pin keeps it honest as the
// architectures diverge.
func TestFitParallelGoldenTransformer(t *testing.T) {
	testFitParallelGolden(t, EncoderTransformer)
}

func testFitParallelGolden(t *testing.T, encoder string) {
	wantW, wantCkpt, wantLines := fitGoldenRun(t, 1, encoder)
	for _, par := range []int{4, 8} {
		gotW, gotCkpt, gotLines := fitGoldenRun(t, par, encoder)
		for pi := range wantW {
			for i := range wantW[pi] {
				if math.Float64bits(gotW[pi][i]) != math.Float64bits(wantW[pi][i]) {
					t.Fatalf("-j %d: weight tensor %d[%d] = %x, -j 1 has %x",
						par, pi, i, math.Float64bits(gotW[pi][i]), math.Float64bits(wantW[pi][i]))
				}
			}
		}
		if !bytes.Equal(gotCkpt, wantCkpt) {
			t.Errorf("-j %d: checkpoint bytes differ from -j 1 (%d vs %d bytes)", par, len(gotCkpt), len(wantCkpt))
		}
		if len(gotLines) != len(wantLines) {
			t.Fatalf("-j %d: %d progress lines, -j 1 had %d", par, len(gotLines), len(wantLines))
		}
		for i := range wantLines {
			if gotLines[i] != wantLines[i] {
				t.Errorf("-j %d epoch %d: %q, -j 1 said %q", par, i+1, gotLines[i], wantLines[i])
			}
		}
	}
}

// TestFitParallelResumeMatchesUninterrupted: the kill-and-resume
// equivalence of PR 3 must survive sharded training — a run killed
// after two epochs and resumed under -j 4 lands on the same weights as
// an uninterrupted -j 1 run.
func TestFitParallelResumeMatchesUninterrupted(t *testing.T) {
	testFitParallelResume(t, EncoderBiLSTM)
}

// TestFitTransformerResumeMatchesUninterrupted gives Transformer
// checkpoints the same kill-and-resume guarantee.
func TestFitTransformerResumeMatchesUninterrupted(t *testing.T) {
	testFitParallelResume(t, EncoderTransformer)
}

func testFitParallelResume(t *testing.T, encoder string) {
	r := rand.New(rand.NewSource(45))
	train := makeToyData(r, 100)
	valid := makeToyData(r, 25)
	cfg := testConfig()
	cfg.Epochs = 4
	cfg.Parallelism = 1
	cfg.Encoder = encoder

	var srcSeqs, tgtSeqs [][]string
	for _, p := range train {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)

	full := NewModel(cfg, src, tgt)
	if err := full.FitResume(train, valid, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	killed := errors.New("killed")
	parCfg := cfg
	parCfg.Parallelism = 4
	var ckpt bytes.Buffer
	m1 := NewModel(parCfg, src, tgt)
	err := m1.FitResume(train, valid, nil, func(st *TrainState) error {
		ckpt.Reset()
		if err := m1.SaveCheckpoint(&ckpt, st); err != nil {
			return err
		}
		if st.Epoch == 2 {
			return killed
		}
		return nil
	}, nil)
	if !errors.Is(err, killed) {
		t.Fatalf("FitResume returned %v, want the injected kill", err)
	}

	m2, st, err := LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m2.Cfg.Parallelism = 4
	if err := m2.FitResume(train, valid, st, nil, nil); err != nil {
		t.Fatal(err)
	}

	a, b := full.snapshot(), m2.snapshot()
	for i := range a {
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("resumed -j 4 run diverged from uninterrupted -j 1 run at tensor %d[%d]: %g vs %g",
					i, j, b[i][j], a[i][j])
			}
		}
	}
}

// TestFitShardedRaceStress drives the sharded backward pass with more
// workers than shards and observer callbacks installed; its value is
// under -race (scripts/verify.sh), where any cross-shard gradient or
// pool sharing shows up as a data race.
func TestFitShardedRaceStress(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	train := makeToyData(r, 80)
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 8
	cfg.Parallelism = 8
	var srcSeqs, tgtSeqs [][]string
	for _, p := range train {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	m := NewModel(cfg, BuildVocab(srcSeqs, cfg.SrcVocab), BuildVocab(tgtSeqs, cfg.TgtVocab))
	steps, epochs := 0, 0
	m.SetTrainObserver(TrainObserver{
		Step: func(e TrainEvent) {
			if e.Shards != 2 {
				t.Errorf("batch %d: %d shards for batch size 8, want 2", e.Batch, e.Shards)
			}
			steps++
		},
		Epoch: func(e TrainEpochEvent) { epochs++ },
	})
	if err := m.FitResume(train, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if wantSteps := 2 * ((80 + 7) / 8); steps != wantSteps {
		t.Errorf("observer saw %d steps, want %d", steps, wantSteps)
	}
	if epochs != 2 {
		t.Errorf("observer saw %d epochs, want 2", epochs)
	}
}

// TestShardSeedDistinct: shard dropout seeds must differ across every
// coordinate that identifies a shard's position in the run.
func TestShardSeedDistinct(t *testing.T) {
	seen := map[int64][3]int{}
	for e := 0; e < 4; e++ {
		for b := 0; b < 8; b++ {
			for s := 0; s < 8; s++ {
				k := shardSeed(1, e, b, s)
				if prev, dup := seen[k]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v", e, b, s, prev)
				}
				seen[k] = [3]int{e, b, s}
			}
		}
	}
	if shardSeed(1, 0, 0, 0) == shardSeed(2, 0, 0, 0) {
		t.Error("run seed does not affect shard seed")
	}
}

// BenchmarkTrainStep measures one sharded optimizer step (forward,
// backward, ordered reduce, Adam) at -j 1, -j 4, and -j NumCPU (when
// distinct) on a default-sized model. On a single-core host the widths
// land within noise of each other — the step arithmetic is identical
// and only scheduling differs; the shard phase is the parallel fraction.
func BenchmarkTrainStep(b *testing.B) {
	benchTrainStep(b, EncoderBiLSTM)
}

// BenchmarkTrainStepTransformer is the same sharded step on the
// Transformer encoder — the training half of the BiLSTM-vs-Transformer
// throughput comparison in EXPERIMENTS.md.
func BenchmarkTrainStepTransformer(b *testing.B) {
	benchTrainStep(b, EncoderTransformer)
}

func benchTrainStep(b *testing.B, encoder string) {
	r := rand.New(rand.NewSource(47))
	data := makeToyData(r, 256)
	cfg := DefaultConfig()
	cfg.BatchSize = 32
	cfg.Encoder = encoder
	var srcSeqs, tgtSeqs [][]string
	for _, p := range data {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)
	widths := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		widths = append(widths, n)
	}
	for _, j := range widths {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			c := cfg
			c.Parallelism = j
			m := NewModel(c, src, tgt)
			batches := m.makeBatches(data, rand.New(rand.NewSource(3)))
			opt := nn.NewAdam(&m.params, c.LR)
			ts := m.newTrainShards(j)
			tokens := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, n := m.trainStep(ts, opt, 0, i%len(batches), batches[i%len(batches)])
				tokens += n
			}
			b.ReportMetric(tokens/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}
