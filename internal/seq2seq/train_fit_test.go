package seq2seq

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestEarlyStopObserve(t *testing.T) {
	t.Run("tie is a new best, not a regression", func(t *testing.T) {
		es := earlyStop{patience: 2}
		if nb, stop := es.observe(1.0); !nb || stop {
			t.Fatalf("first observation: newBest=%v stop=%v", nb, stop)
		}
		if nb, stop := es.observe(1.0); !nb || stop {
			t.Fatalf("tie: newBest=%v stop=%v — a plateau must not count against patience", nb, stop)
		}
		if es.bad != 0 {
			t.Errorf("bad = %d after tie", es.bad)
		}
	})
	t.Run("improvement resets patience", func(t *testing.T) {
		es := earlyStop{patience: 2}
		es.observe(1.0)
		es.observe(1.5) // regression 1
		if nb, _ := es.observe(0.9); !nb {
			t.Fatal("improvement not recognized")
		}
		if es.bad != 0 {
			t.Errorf("bad = %d after improvement", es.bad)
		}
	})
	t.Run("patience 2 stops on second regression", func(t *testing.T) {
		es := earlyStop{patience: 2}
		es.observe(1.0)
		if _, stop := es.observe(1.1); stop {
			t.Fatal("stopped after one regression with patience 2")
		}
		if _, stop := es.observe(1.2); !stop {
			t.Fatal("did not stop after two regressions")
		}
	})
	t.Run("patience 1 stops immediately", func(t *testing.T) {
		es := earlyStop{patience: 1}
		es.observe(1.0)
		if _, stop := es.observe(1.0 + 1e-12); !stop {
			t.Fatal("patience 1 did not stop on first regression")
		}
	})
}

func TestSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := makeToyData(r, 40)
	cfg := testConfig()
	cfg.Epochs = 1
	m := Train(cfg, data, nil, nil)
	snap := m.snapshot()
	for _, v := range m.params.All() {
		for i := range v.W {
			v.W[i] += 1
		}
	}
	m.restore(snap)
	for pi, v := range m.params.All() {
		for i := range v.W {
			if v.W[i] != snap[pi][i] {
				t.Fatalf("param %d[%d] = %g after restore, want %g", pi, i, v.W[i], snap[pi][i])
			}
		}
	}
	m.restore(nil) // must be a no-op, not a panic
}

// TestValidLossBatchInvariant: a token-weighted mean cannot depend on how
// the validation set is sliced into batches. The old per-batch mean of
// means overweighted the final short batch; two models differing only in
// BatchSize would disagree on the same data.
func TestValidLossBatchInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := makeToyData(r, 50) // 50 % 16 != 0: guarantees a short final batch
	var srcSeqs, tgtSeqs [][]string
	for _, p := range data {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	cfg := testConfig()
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)

	losses := make([]float64, 0, 3)
	for _, bs := range []int{7, 16, len(data)} {
		c := cfg
		c.BatchSize = bs
		losses = append(losses, NewModel(c, src, tgt).ValidLoss(data))
	}
	for i := 1; i < len(losses); i++ {
		if diff := math.Abs(losses[i] - losses[0]); diff > 1e-9*math.Abs(losses[0]) {
			t.Errorf("ValidLoss depends on batch size: %.15g vs %.15g", losses[i], losses[0])
		}
	}
}

// TestValidLossParallelInvariant: batches reduce in index order, so the
// result is bitwise identical at any worker count.
func TestValidLossParallelInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	data := makeToyData(r, 60)
	cfg := testConfig()
	cfg.BatchSize = 8
	var srcSeqs, tgtSeqs [][]string
	for _, p := range data {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)

	cfg.Parallelism = 1
	want := NewModel(cfg, src, tgt).ValidLoss(data)
	for _, par := range []int{0, 2, 4, 8} {
		c := cfg
		c.Parallelism = par
		if got := NewModel(c, src, tgt).ValidLoss(data); got != want {
			t.Errorf("ValidLoss at -j %d = %.17g, serial %.17g", par, got, want)
		}
	}
}

func TestFitEmptyValidTrainsFullBudget(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data := makeToyData(r, 40)
	cfg := testConfig()
	cfg.Epochs = 3
	m := NewModel(cfg, BuildVocab(nil, 0), BuildVocab(nil, 0))
	epochs := 0
	if err := m.FitResume(data, nil, nil, func(st *TrainState) error {
		epochs++
		if st.Best != nil {
			t.Error("checkpoint has a best snapshot without a validation set")
		}
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if epochs != cfg.Epochs {
		t.Errorf("trained %d epochs with empty validation set, want %d", epochs, cfg.Epochs)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	train := makeToyData(r, 60)
	valid := makeToyData(r, 20)
	cfg := testConfig()
	cfg.Epochs = 2
	m := Train(cfg, train, valid, nil)
	st := &TrainState{Epoch: 2, BestValid: 0.25, Bad: 1, Best: m.snapshot()}
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	m2, st2, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch != st.Epoch || st2.BestValid != st.BestValid || st2.Bad != st.Bad {
		t.Errorf("state round-trip: got %+v", st2)
	}
	a, b := m.snapshot(), m2.snapshot()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("weights differ after checkpoint round-trip at tensor %d[%d]", i, j)
			}
		}
	}
	if len(st2.Best) != len(st.Best) {
		t.Errorf("best snapshot lost: %d tensors, want %d", len(st2.Best), len(st.Best))
	}
	if _, _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("LoadCheckpoint accepted garbage")
	}
}

// TestCheckpointResumeMatchesUninterrupted kills a training run after
// two epochs (by erroring out of the checkpoint callback, exactly what a
// SIGKILL between epochs leaves behind: the last written checkpoint),
// reloads the checkpoint into a fresh process's model, resumes, and
// demands bitwise-identical final weights to a never-interrupted run.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	train := makeToyData(r, 120)
	valid := makeToyData(r, 30)
	cfg := testConfig()
	cfg.Epochs = 5

	var srcSeqs, tgtSeqs [][]string
	for _, p := range train {
		srcSeqs = append(srcSeqs, p.Src)
		tgtSeqs = append(tgtSeqs, p.Tgt)
	}
	src := BuildVocab(srcSeqs, cfg.SrcVocab)
	tgt := BuildVocab(tgtSeqs, cfg.TgtVocab)

	full := NewModel(cfg, src, tgt)
	if err := full.FitResume(train, valid, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	killed := errors.New("killed")
	var ckpt bytes.Buffer
	m1 := NewModel(cfg, src, tgt)
	err := m1.FitResume(train, valid, nil, func(st *TrainState) error {
		ckpt.Reset()
		if err := m1.SaveCheckpoint(&ckpt, st); err != nil {
			return err
		}
		if st.Epoch == 2 {
			return killed
		}
		return nil
	}, nil)
	if !errors.Is(err, killed) {
		t.Fatalf("FitResume returned %v, want the injected kill", err)
	}

	m2, st, err := LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Fatalf("checkpoint at epoch %d, want 2", st.Epoch)
	}
	if err := m2.FitResume(train, valid, st, nil, nil); err != nil {
		t.Fatal(err)
	}

	a, b := full.snapshot(), m2.snapshot()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("resumed run diverged from uninterrupted run at tensor %d[%d]: %g vs %g", i, j, b[i][j], a[i][j])
			}
		}
	}
	if vf, vr := full.ValidLoss(valid), m2.ValidLoss(valid); vf != vr {
		t.Errorf("final validation loss differs: %g vs %g", vr, vf)
	}
}

// TestFitResumeRejectsShapeMismatch: resuming with an optimizer state
// from a differently shaped model must fail loudly, not corrupt training.
func TestFitResumeRejectsShapeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	data := makeToyData(r, 30)
	cfg := testConfig()
	cfg.Epochs = 1
	m := NewModel(cfg, BuildVocab(nil, 0), BuildVocab(nil, 0))
	bad := &TrainState{Epoch: 1, Opt: nn.AdamState{Step: 1, M: [][]float64{{1}}, V: [][]float64{{1}}}}
	if err := m.FitResume(data, nil, bad, nil, nil); err == nil {
		t.Fatal("FitResume accepted mismatched optimizer state")
	}
}
