// Package seq2seq implements the paper's type-prediction model (Section
// 4.2): a 2-layer bidirectional-LSTM encoder over WebAssembly instruction
// tokens, a 1-layer LSTM decoder with Luong global attention over type
// tokens, trained with teacher forcing and Adam, and queried with beam
// search to produce top-k type predictions.
package seq2seq

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro/internal/ad"
	"repro/internal/nn"
)

// Special token ids shared by both vocabularies.
const (
	PAD = 0
	BOS = 1
	EOS = 2
	UNK = 3
)

var specials = []string{"<pad>", "<s>", "</s>", "<unk>"}

// Vocab maps tokens to dense ids.
type Vocab struct {
	toks []string
	ids  map[string]int
}

// BuildVocab creates a vocabulary from sequences, keeping the maxSize most
// frequent tokens (0 = unlimited) after the special tokens.
func BuildVocab(seqs [][]string, maxSize int) *Vocab {
	freq := map[string]int{}
	for _, s := range seqs {
		for _, tok := range s {
			freq[tok]++
		}
	}
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(freq))
	for tok, n := range freq {
		all = append(all, tf{tok, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if maxSize > 0 && len(all) > maxSize {
		all = all[:maxSize]
	}
	v := &Vocab{ids: map[string]int{}}
	for _, s := range specials {
		v.ids[s] = len(v.toks)
		v.toks = append(v.toks, s)
	}
	for _, e := range all {
		if _, ok := v.ids[e.tok]; ok {
			continue
		}
		v.ids[e.tok] = len(v.toks)
		v.toks = append(v.toks, e.tok)
	}
	return v
}

// Size returns the vocabulary size including specials.
func (v *Vocab) Size() int { return len(v.toks) }

// ID returns the id of a token, or UNK.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return UNK
}

// Token returns the token for an id.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.toks) {
		return "<unk>"
	}
	return v.toks[id]
}

// Encode maps tokens to ids.
func (v *Vocab) Encode(toks []string) []int {
	out := make([]int, len(toks))
	for i, t := range toks {
		out[i] = v.ID(t)
	}
	return out
}

// Decode maps ids back to tokens, stopping at EOS and skipping specials.
func (v *Vocab) Decode(ids []int) []string {
	var out []string
	for _, id := range ids {
		if id == EOS {
			break
		}
		if id == PAD || id == BOS {
			continue
		}
		out = append(out, v.Token(id))
	}
	return out
}

// Config holds the model hyperparameters; the defaults downscale the
// paper's configuration (h=512, e=100, 2+1 layers) to CPU-trainable size
// while keeping the architecture identical.
type Config struct {
	Hidden    int     // decoder hidden size; each encoder direction uses Hidden/2
	Embed     int     // embedding dimension
	EncLayers int     // encoder depth (paper: 2)
	Dropout   float64 // dropout rate (paper: 0.2)
	LR        float64 // Adam learning rate (paper: 0.001)
	BatchSize int
	Epochs    int
	MaxSrcLen int // source truncation (paper: 500)
	MaxTgtLen int // target truncation
	SrcVocab  int // source vocabulary cap (paper: 500 subwords)
	TgtVocab  int
	Seed      int64
	// Encoder selects the encoder architecture: EncoderBiLSTM (default,
	// the paper's model) or EncoderTransformer (the alternative the paper
	// explored without accuracy gains).
	Encoder string
	// Parallelism bounds the worker pools used for training shards,
	// validation scoring, and EvalParallel — the same -j convention as
	// the dataset pipeline; 0 means runtime.NumCPU(). Any value produces
	// bitwise-identical results (weights, losses, predictions).
	Parallelism int
}

// DefaultConfig returns a configuration that trains in minutes on a CPU.
func DefaultConfig() Config {
	return Config{
		Hidden: 64, Embed: 48, EncLayers: 2,
		Dropout: 0.2, LR: 0.002, BatchSize: 32, Epochs: 4,
		MaxSrcLen: 120, MaxTgtLen: 12,
		SrcVocab: 800, TgtVocab: 400,
		Seed: 1,
	}
}

// Model is the trained sequence-to-sequence type predictor.
type Model struct {
	Cfg Config
	Src *Vocab
	Tgt *Vocab

	params  nn.Params
	embSrc  *nn.Embedding
	embTgt  *nn.Embedding
	enc     encoder // architecture selected by Cfg.Encoder
	bridgeH *nn.Linear
	bridgeC *nn.Linear
	dec     *nn.LSTM
	combine *nn.Linear
	out     *nn.Linear

	rng *rand.Rand

	// trainObs receives per-step and per-epoch training callbacks
	// (metrics); zero value means no observer.
	trainObs TrainObserver

	// pools hands each concurrent Predict call its own inference buffer
	// pool, so beam-search tensors recycle across calls without sharing.
	pools sync.Pool

	// fastMath routes the Predict family onto fast-math forward tapes
	// (ad.NewForwardFast): fused-rounding matmul kernels whose results
	// are deterministic but not bitwise-equal to the full-precision
	// path. Set once at load time (quantized exports); never set on
	// models that train.
	fastMath bool

	// f32 routes the Predict family onto single-precision forward tapes
	// (ad.NewForwardF32): float32 values end to end, 8-lane FMA kernels,
	// half the working set. Takes precedence over fastMath (an f32 tape
	// is already fast-math). Set once via SetPrecision at load time;
	// training entry points cannot reach the f32 kernels by construction
	// (recording tapes never dispatch to them).
	f32 bool
}

// SetFastMath selects fast-math inference for this model's Predict
// family. Call once after loading, before any concurrent use; training
// entry points ignore it by construction (recording tapes cannot reach
// the fast kernels).
func (m *Model) SetFastMath(on bool) { m.fastMath = on }

// FastMath reports whether Predict runs on fast-math tapes.
func (m *Model) FastMath() bool { return m.fastMath }

// SetPrecision selects the arithmetic width of the Predict family:
// "f64" (the default; exact or fast-math per SetFastMath) or "f32"
// (single-precision tapes, ad.NewForwardF32). Selecting f32 eagerly
// materializes every parameter's float32 view (ad.V.SyncF32), so the
// conversion happens once here rather than racing lazily under
// concurrent Predict calls. Call once after loading, before any
// concurrent use; like fast math, training ignores it by construction.
func (m *Model) SetPrecision(p string) error {
	switch p {
	case "", "f64":
		m.f32 = false
	case "f32":
		for _, v := range m.params.All() {
			v.SyncF32()
		}
		m.f32 = true
	default:
		return fmt.Errorf("seq2seq: unknown precision %q (want f64 or f32)", p)
	}
	return nil
}

// Precision reports the arithmetic width Predict runs at.
func (m *Model) Precision() string {
	if m.f32 {
		return "f32"
	}
	return "f64"
}

// inferTape returns the forward tape the Predict family decodes on.
// Precision outranks fast math: an f32 tape is already fused-rounding.
func (m *Model) inferTape(pool *ad.Pool) *ad.Tape {
	if m.f32 {
		return ad.NewForwardF32(pool)
	}
	if m.fastMath {
		return ad.NewForwardFast(pool)
	}
	return ad.NewForward(pool)
}

// getPool draws an inference buffer pool; pools are per-call, never
// shared between goroutines.
func (m *Model) getPool() *ad.Pool {
	if p, ok := m.pools.Get().(*ad.Pool); ok {
		return p
	}
	return ad.NewPool()
}

func (m *Model) putPool(p *ad.Pool) { m.pools.Put(p) }

// NewModel builds an untrained model over the given vocabularies.
func NewModel(cfg Config, src, tgt *Vocab) *Model {
	r := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Src: src, Tgt: tgt, rng: r}
	m.embSrc = nn.NewEmbedding(&m.params, "emb.src", r, src.Size(), cfg.Embed)
	m.embTgt = nn.NewEmbedding(&m.params, "emb.tgt", r, tgt.Size(), cfg.Embed)
	// Encoder parameters register here, between the embeddings and the
	// bridge — the same slot the pre-interface dispatch used — so each
	// architecture's serialized weight order is unchanged.
	m.enc = newEncoder(&m.params, r, cfg)
	m.bridgeH = nn.NewLinear(&m.params, "bridge.h", r, cfg.Hidden, cfg.Hidden)
	m.bridgeC = nn.NewLinear(&m.params, "bridge.c", r, cfg.Hidden, cfg.Hidden)
	m.dec = nn.NewLSTM(&m.params, "dec", r, cfg.Embed, cfg.Hidden)
	m.combine = nn.NewLinear(&m.params, "combine", r, 2*cfg.Hidden, cfg.Hidden)
	m.out = nn.NewLinear(&m.params, "out", r, cfg.Hidden, tgt.Size())
	return m
}

func name(prefix string, l int) string {
	return prefix + strconv.Itoa(l)
}

// NumParams returns the number of scalar parameters.
func (m *Model) NumParams() int { return m.params.Count() }

// encoded is the encoder's output for one batch.
type encoded struct {
	// states is [B*T, H], example-major, for attention.
	states *ad.V
	// mask is [B*T] with 1 for real tokens.
	mask []float64
	// initial decoder state derived from the final encoder states.
	init nn.State
	T    int
}

// attnOps is the decoder's per-search attention operand cache: the
// shared key/value blocks and mask a whole beam search attends over,
// computed once at encode time and read in place by every decode step —
// the LSTM+dot-attention analogue of a KV cache. With Luong dot
// attention the keys and values are both the raw encoder states; an
// encoder that projects separate keys/values (a cross-attention
// Transformer decoder) would fill them here, once, instead of per step.
type attnOps struct {
	// keys is [S*T, H]: S consecutive [T,H] blocks, one per search.
	keys *ad.V
	// mask is [S*T] with 1 for real source positions.
	mask []float64
	T    int
}

// operands returns the attention operands cached in the encoder output.
func (e encoded) operands() attnOps {
	return attnOps{keys: e.states, mask: e.mask, T: e.T}
}

// encode runs the configured encoder over a padded batch.
// srcIDs is [B][T] (padded with PAD); train enables dropout.
func (m *Model) encode(t *ad.Tape, srcIDs [][]int, train bool) encoded {
	return m.enc.encode(m, t, srcIDs, train)
}

// decodeStep advances the decoder one step: prev token ids -> logits.
func (m *Model) decodeStep(t *ad.Tape, enc encoded, s nn.State, prev []int, train bool) (nn.State, *ad.V) {
	return m.decodeStepOn(t, enc.states, enc.mask, enc.T, s, prev, train)
}

// decodeStepOn is decodeStep against an explicit encoder layout:
// encStates is [B*T, H] row-major by batch row then time, mask is [B*T]
// with 1 for real source positions, one example per batch row (training
// and the sequential reference decoder; batched beam search uses
// decodeStepGrouped). Every op in the chain is row-wise independent
// with a fixed ascending-index accumulation order, so a row's outputs
// do not depend on what other rows share the batch — the property the
// batched/sequential decoder equivalence rests on.
func (m *Model) decodeStepOn(t *ad.Tape, encStates *ad.V, mask []float64, T int, s nn.State, prev []int, train bool) (nn.State, *ad.V) {
	x := m.embTgt.Lookup(t, prev)
	s = m.dec.Step(t, x, s)
	scores := t.AttnScores(s.H, encStates, T)
	alpha := t.SoftmaxRowsMasked(scores, mask)
	ctx := t.WeightedSum(alpha, encStates, m.Cfg.Hidden)
	hTilde := t.Tanh(m.combine.Apply(t, t.ConcatCols(ctx, s.H)))
	if train && m.Cfg.Dropout > 0 {
		hTilde = t.Dropout(hTilde, m.Cfg.Dropout, m.rng.Float64)
	}
	logits := m.out.Apply(t, hTilde)
	return s, logits
}

// decodeStepGrouped is the batched beam decoder's step: row l of the
// [L,H] hypothesis batch attends over the shared encoder block
// groups[l] of the encode-time operand cache, read in place by the
// grouped attention ops — no per-hypothesis tiled copy, so the
// attention working set is one [T,H] block per search regardless of
// beam width. Inference-only (no dropout). Per row the chain runs
// decodeStepOn's exact arithmetic (the grouped ops pin this bitwise
// against the tiled formulation), preserving the batched/sequential
// decoder equivalence.
func (m *Model) decodeStepGrouped(t *ad.Tape, ops attnOps, groups []int, s nn.State, prev []int) (nn.State, *ad.V) {
	x := m.embTgt.Lookup(t, prev)
	s = m.dec.Step(t, x, s)
	scores := t.AttnScoresGrouped(s.H, ops.keys, groups, ops.T)
	alpha := t.SoftmaxRowsMaskedGrouped(scores, ops.mask, groups)
	ctx := t.WeightedSumGrouped(alpha, ops.keys, groups, m.Cfg.Hidden)
	hTilde := t.Tanh(m.combine.Apply(t, t.ConcatCols(ctx, s.H)))
	logits := m.out.Apply(t, hTilde)
	return s, logits
}
