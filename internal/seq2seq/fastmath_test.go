package seq2seq

import (
	"fmt"
	"reflect"
	"testing"
)

// TestPredictFastMathDeterministic: fast-math inference is a different
// numeric contract, not a nondeterministic one. Repeated decodes of the
// same sources must agree exactly, the fast/full switch must be
// observable, and turning fast-math off must restore the full-precision
// predictions bit-for-bit.
func TestPredictFastMathDeterministic(t *testing.T) {
	m, srcs := benchGroup(8)
	testPredictFastMathDeterministic(t, m, srcs)
}

// TestPredictFastMathDeterministicTransformer: the Transformer rides
// the same forward-only fast tapes through the encoder interface, so it
// owes the same contract — exact repeatability under fast-math, and a
// bit-exact return to full precision when it is switched off.
func TestPredictFastMathDeterministicTransformer(t *testing.T) {
	m, srcs := benchGroupEncoder(8, EncoderTransformer)
	testPredictFastMathDeterministic(t, m, srcs)
}

func testPredictFastMathDeterministic(t *testing.T, m *Model, srcs [][]string) {
	ks := make([]int, len(srcs))
	for i := range ks {
		ks[i] = 3
	}
	full := m.PredictMulti(srcs, ks)

	if m.FastMath() {
		t.Fatal("model born with fast-math on")
	}
	m.SetFastMath(true)
	if !m.FastMath() {
		t.Fatal("SetFastMath(true) not observable")
	}
	a := m.PredictMulti(srcs, ks)
	bPreds := m.PredictMulti(srcs, ks)
	if !reflect.DeepEqual(a, bPreds) {
		t.Error("fast-math predictions differ between identical calls")
	}
	for i, preds := range a {
		if len(preds) == 0 {
			t.Fatalf("fast-math search %d returned no beams", i)
		}
	}

	m.SetFastMath(false)
	again := m.PredictMulti(srcs, ks)
	if !reflect.DeepEqual(full, again) {
		t.Error("full-precision predictions changed after a fast-math episode")
	}
}

// BenchmarkPredictTransformer measures batched beam decoding behind the
// Transformer encoder, full-precision and fast-math, on the same ragged
// sources as BenchmarkPredict — the decode half of the
// BiLSTM-vs-Transformer throughput comparison in EXPERIMENTS.md.
func BenchmarkPredictTransformer(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"full", false}, {"fast", true}} {
		b.Run(fmt.Sprintf("%s/maxLen=16", mode.name), func(b *testing.B) {
			m, srcs := benchGroupEncoder(16, EncoderTransformer)
			m.SetFastMath(mode.fast)
			m.PredictBatch(srcs, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(srcs, 5)
			}
			b.StopTimer()
			perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
			b.ReportMetric(perSearch, "ns/search")
		})
	}
}

// BenchmarkPredictFastMath measures the inference-only fast-math engine
// against the full-precision decoder on identical batched beam
// searches. The delta is what the fused-rounding FMA kernels buy on the
// end-to-end predict path (encoder, attention, decoder, out-projection).
func BenchmarkPredictFastMath(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"full", false}, {"fast", true}} {
		for _, maxLen := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/maxLen=%d", mode.name, maxLen), func(b *testing.B) {
				m, srcs := benchGroup(maxLen)
				m.SetFastMath(mode.fast)
				ks := make([]int, len(srcs))
				for i := range ks {
					ks[i] = 5
				}
				m.PredictMulti(srcs, ks)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.PredictMulti(srcs, ks)
				}
				b.StopTimer()
				perSearch := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(srcs))
				b.ReportMetric(perSearch, "ns/search")
			})
		}
	}
}
