package seq2seq

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ad"
)

// modelState is the serialized form of a trained model. Weights are
// stored in parameter-registration order, which is deterministic given
// the config and vocabulary sizes.
type modelState struct {
	Cfg     Config
	SrcToks []string
	TgtToks []string
	Weights [][]float64
}

// Save writes the model (config, vocabularies, weights) to w.
func (m *Model) Save(w io.Writer) error {
	st := modelState{Cfg: m.Cfg, SrcToks: m.Src.toks, TgtToks: m.Tgt.toks}
	for _, v := range m.params.All() {
		st.Weights = append(st.Weights, v.W)
	}
	return gob.NewEncoder(w).Encode(st)
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("seq2seq: load: %w", err)
	}
	m, err := modelFromState(st)
	if err != nil {
		return nil, fmt.Errorf("seq2seq: load: %w", err)
	}
	return m, nil
}

// modelFromState rebuilds a model from its serialized form.
func modelFromState(st modelState) (*Model, error) {
	src := vocabFromTokens(st.SrcToks)
	tgt := vocabFromTokens(st.TgtToks)
	m := NewModel(st.Cfg, src, tgt)
	params := m.params.All()
	if len(params) != len(st.Weights) {
		return nil, fmt.Errorf("%d weight tensors, model has %d", len(st.Weights), len(params))
	}
	for i, v := range params {
		if len(v.W) != len(st.Weights[i]) {
			return nil, fmt.Errorf("tensor %d has %d weights, model wants %d", i, len(st.Weights[i]), len(v.W))
		}
		copy(v.W, st.Weights[i])
	}
	return m, nil
}

// Params returns the model's parameter tensors in registration order —
// the same order Save serializes and NewModelFromWeights consumes.
// Read-only use (quantized export); mutating them mid-inference races
// with Predict.
func (m *Model) Params() []*ad.V { return m.params.All() }

// VocabTokens returns the source and target vocabulary token lists in
// serialization order (specials included).
func (m *Model) VocabTokens() (src, tgt []string) { return m.Src.toks, m.Tgt.toks }

// NewModelFromWeights rebuilds a model from its config, vocabulary
// token lists, and weight slices in registration order — the layout
// Save/Load use, exposed so quantized checkpoints (internal/quant) can
// reconstruct a model without going through gob.
func NewModelFromWeights(cfg Config, srcToks, tgtToks []string, weights [][]float64) (*Model, error) {
	m, err := modelFromState(modelState{Cfg: cfg, SrcToks: srcToks, TgtToks: tgtToks, Weights: weights})
	if err != nil {
		return nil, fmt.Errorf("seq2seq: from weights: %w", err)
	}
	return m, nil
}

// NewModelFromFill rebuilds a model letting the caller write each
// parameter tensor's storage directly, in registration order — the
// zero-copy loading hook for quantized checkpoints: fill(i, v)
// dequantizes straight into v.W (or v.W32 for the f32 engine) instead
// of materializing an intermediate [][]float64 that modelFromState
// would copy once more and discard. fill may drop storage the engine
// will never read (v.W and v.G on an f32-only load); the model must
// then stay on the matching engine.
func NewModelFromFill(cfg Config, srcToks, tgtToks []string, fill func(i int, v *ad.V) error) (*Model, error) {
	m := NewModel(cfg, vocabFromTokens(srcToks), vocabFromTokens(tgtToks))
	for i, v := range m.params.All() {
		if err := fill(i, v); err != nil {
			return nil, fmt.Errorf("seq2seq: from fill: tensor %d: %w", i, err)
		}
	}
	return m, nil
}

// vocabFromTokens rebuilds a vocabulary from its serialized token list
// (which already includes the specials at the front).
func vocabFromTokens(toks []string) *Vocab {
	v := &Vocab{toks: toks, ids: make(map[string]int, len(toks))}
	for i, t := range toks {
		v.ids[t] = i
	}
	return v
}

// checkpointState is the serialized form of a training checkpoint: the
// current model (weights as of the last completed epoch) plus the
// TrainState needed to continue from there.
type checkpointState struct {
	Model modelState
	State TrainState
}

// SaveCheckpoint writes the model and its mid-training state to w.
// Feeding the result of LoadCheckpoint back into FitResume continues the
// run as if it had never been interrupted.
func (m *Model) SaveCheckpoint(w io.Writer, st *TrainState) error {
	ck := checkpointState{
		Model: modelState{Cfg: m.Cfg, SrcToks: m.Src.toks, TgtToks: m.Tgt.toks},
		State: *st,
	}
	for _, v := range m.params.All() {
		ck.Model.Weights = append(ck.Model.Weights, v.W)
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint reads a checkpoint previously written with
// SaveCheckpoint, returning the reconstructed model and the training
// state to pass to FitResume.
func LoadCheckpoint(r io.Reader) (*Model, *TrainState, error) {
	var ck checkpointState
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, nil, fmt.Errorf("seq2seq: load checkpoint: %w", err)
	}
	m, err := modelFromState(ck.Model)
	if err != nil {
		return nil, nil, fmt.Errorf("seq2seq: load checkpoint: %w", err)
	}
	return m, &ck.State, nil
}
