package cc

import (
	"strings"
	"testing"

	"repro/internal/wasm"
)

func TestSwitchDenseUsesBrTable(t *testing.T) {
	src := `
int classify(int x) {
	switch (x) {
	case 0: return 10;
	case 1: return 11;
	case 2: return 12;
	case 4: return 14;
	default: return -1;
	}
}
`
	obj := compileT(t, src)
	if err := wasm.Validate(obj.Module); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if !strings.Contains(text, "br_table") {
		t.Errorf("dense switch should use br_table:\n%s", text)
	}
}

func TestSwitchSparseUsesChain(t *testing.T) {
	src := `
int lookup(int x) {
	switch (x) {
	case 10: return 1;
	case 1000: return 2;
	case 100000: return 3;
	}
	return 0;
}
`
	obj := compileT(t, src)
	if err := wasm.Validate(obj.Module); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if strings.Contains(text, "br_table") {
		t.Errorf("sparse switch should not use br_table:\n%s", text)
	}
	if strings.Count(text, "i32.eq") < 3 {
		t.Errorf("sparse switch missing compare chain:\n%s", text)
	}
}

func TestSwitchParserErrors(t *testing.T) {
	cases := []string{
		`int f(int x) { switch (x) { case 1: case 1: break; } return 0; }`,
		`int f(int x) { switch (x) { default: break; case 1: break; } return 0; }`,
		`int f(int x) { switch (x) { break; } return 0; }`,
		`int f(int x) { switch (x) { case x: break; } return 0; }`,
		`int f(double d) { switch (d) { case 1: break; } return 0; }`,
		`int f(int x) { switch (x) { default: break; default: break; } return 0; }`,
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestSwitchWithEnumConstants(t *testing.T) {
	src := `
enum op { ADD, SUB, MUL };
int apply(enum op o, int a, int b) {
	switch ((int) o) {
	case ADD: return a + b;
	case SUB: return a - b;
	case MUL: return a * b;
	}
	return 0;
}
`
	obj := compileT(t, src)
	if err := wasm.Validate(obj.Module); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}
