package cc

import "fmt"

// binPrec returns the precedence of a binary operator, or 0.
func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "|":
		return 3
	case "^":
		return 4
	case "&":
		return 5
	case "==", "!=":
		return 6
	case "<", ">", "<=", ">=":
		return 7
	case "<<", ">>":
		return 8
	case "+", "-":
		return 9
	case "*", "/", "%":
		return 10
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if p.eat("=") {
		if !isLvalue(lhs) {
			return nil, p.errorf("assignment to non-lvalue")
		}
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if rhs, err = p.convertTo(rhs, lhs.CType()); err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{lhs.CType()}, Op: "=", LHS: lhs, RHS: rhs}, nil
	}
	for comp, op := range compoundOps {
		if p.at(comp) {
			p.pos++
			if !isLvalue(lhs) {
				return nil, p.errorf("assignment to non-lvalue")
			}
			rhs, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			// Desugar a op= b to a = a op b. The left side is re-evaluated;
			// the supported subset has no side effects in lvalues.
			bin, err := p.typeBinary(op, lhs, rhs)
			if err != nil {
				return nil, err
			}
			if bin, err = p.convertTo(bin, lhs.CType()); err != nil {
				return nil, err
			}
			return &Assign{exprBase: exprBase{lhs.CType()}, Op: "=", LHS: lhs, RHS: bin}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.eat("?") {
		return c, nil
	}
	if c, err = p.toCondition(c); err != nil {
		return nil, err
	}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	// Unify branch types.
	typ, err := p.commonType(t, f)
	if err != nil {
		return nil, err
	}
	if t, err = p.convertTo(t, typ); err != nil {
		return nil, err
	}
	if f, err = p.convertTo(f, typ); err != nil {
		return nil, err
	}
	return &Cond{exprBase: exprBase{typ}, C: c, T: t, F: f}, nil
}

func (p *parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec := binPrec(t.text)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := t.text
		p.pos++
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if lhs, err = p.typeBinary(op, lhs, rhs); err != nil {
			return nil, err
		}
	}
}

// typeBinary type-checks one binary operation, inserting implicit
// conversions and computing the result type.
func (p *parser) typeBinary(op string, x, y Expr) (Expr, error) {
	x, y = decay(x), decay(y)
	switch op {
	case "&&", "||":
		var err error
		if x, err = p.toCondition(x); err != nil {
			return nil, err
		}
		if y, err = p.toCondition(y); err != nil {
			return nil, err
		}
		return &Binary{exprBase: exprBase{tInt}, Op: op, X: x, Y: y}, nil

	case "==", "!=", "<", ">", "<=", ">=":
		xt, yt := x.CType(), y.CType()
		switch {
		case xt.IsPointer() && yt.IsPointer():
			// ok as-is
		case xt.IsPointer() && yt.IsInteger():
			var err error
			if y, err = p.convertTo(y, xt); err != nil {
				return nil, err
			}
		case yt.IsPointer() && xt.IsInteger():
			var err error
			if x, err = p.convertTo(x, yt); err != nil {
				return nil, err
			}
		case xt.IsArith() && yt.IsArith():
			ct, err := p.commonType(x, y)
			if err != nil {
				return nil, err
			}
			if x, err = p.convertTo(x, ct); err != nil {
				return nil, err
			}
			if y, err = p.convertTo(y, ct); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("invalid comparison between %s and %s", xt, yt)
		}
		return &Binary{exprBase: exprBase{tInt}, Op: op, X: x, Y: y}, nil

	case "+", "-":
		xt, yt := x.CType(), y.CType()
		if xt.IsPointer() && yt.IsInteger() {
			return &Binary{exprBase: exprBase{ptrValueType(xt)}, Op: op, X: x, Y: y}, nil
		}
		if op == "+" && xt.IsInteger() && yt.IsPointer() {
			return &Binary{exprBase: exprBase{ptrValueType(yt)}, Op: op, X: x, Y: y}, nil
		}
		if op == "-" && xt.IsPointer() && yt.IsPointer() {
			return &Binary{exprBase: exprBase{tInt}, Op: op, X: x, Y: y}, nil
		}
		fallthrough

	case "*", "/":
		ct, err := p.commonType(x, y)
		if err != nil {
			return nil, err
		}
		if x, err = p.convertTo(x, ct); err != nil {
			return nil, err
		}
		if y, err = p.convertTo(y, ct); err != nil {
			return nil, err
		}
		return &Binary{exprBase: exprBase{ct}, Op: op, X: x, Y: y}, nil

	case "%", "&", "|", "^", "<<", ">>":
		if !x.CType().IsInteger() || !y.CType().IsInteger() {
			return nil, p.errorf("operator %q requires integer operands", op)
		}
		ct, err := p.commonType(x, y)
		if err != nil {
			return nil, err
		}
		if x, err = p.convertTo(x, ct); err != nil {
			return nil, err
		}
		if y, err = p.convertTo(y, ct); err != nil {
			return nil, err
		}
		return &Binary{exprBase: exprBase{ct}, Op: op, X: x, Y: y}, nil
	}
	return nil, p.errorf("unknown binary operator %q", op)
}

// ptrValueType converts an array-typed operand's type to the decayed
// pointer type for pointer arithmetic results.
func ptrValueType(t *CType) *CType {
	rt := t.Resolved()
	if rt.Kind == KArray {
		return Ptr(rt.Elem)
	}
	return t
}

// commonType computes the usual arithmetic conversion target.
func (p *parser) commonType(x, y Expr) (*CType, error) {
	xt, yt := x.CType().Resolved(), y.CType().Resolved()
	if xt.Kind == KPointer && yt.Kind == KPointer {
		return x.CType(), nil
	}
	if !x.CType().IsArith() || !y.CType().IsArith() {
		// Pointer/arith mix in conditionals: prefer the pointer type.
		if x.CType().IsPointer() {
			return x.CType(), nil
		}
		if y.CType().IsPointer() {
			return y.CType(), nil
		}
		return nil, p.errorf("no common type for %s and %s", x.CType(), y.CType())
	}
	if x.CType().IsFloat() || y.CType().IsFloat() {
		bits := 32
		for _, t := range []*CType{xt, yt} {
			if t.Kind == KFloat && t.Bits > bits {
				bits = t.Bits
			}
			if t.Kind == KComplex {
				return tComplex, nil
			}
			if t.IsInteger() && bits < 64 {
				bits = 64 // int op float promotes to double
			}
		}
		switch bits {
		case 32:
			return tFloat, nil
		case 64:
			return tDouble, nil
		default:
			return tLongDouble, nil
		}
	}
	// Integer promotion: at least int.
	xb, xs := x.CType().IntInfo()
	yb, ys := y.CType().IntInfo()
	bits := 32
	if xb > bits {
		bits = xb
	}
	if yb > bits {
		bits = yb
	}
	signed := true
	if (xb == bits && !xs) || (yb == bits && !ys) {
		signed = false
	}
	switch {
	case bits == 64 && signed:
		return tLongLong, nil
	case bits == 64:
		return tULongLong, nil
	case signed:
		return tInt, nil
	default:
		return tUInt, nil
	}
}

func (p *parser) parseUnaryExpr() (Expr, error) {
	switch {
	case p.eat("-"):
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		x = decay(x)
		if !x.CType().IsArith() {
			return nil, p.errorf("unary - requires arithmetic operand")
		}
		t := x.CType()
		if t.IsInteger() {
			ct, _ := p.commonType(x, &IntLit{exprBase: exprBase{tInt}})
			if x, err = p.convertTo(x, ct); err != nil {
				return nil, err
			}
			t = ct
		}
		return &Unary{exprBase: exprBase{t}, Op: "-", X: x}, nil

	case p.eat("!"):
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		if x, err = p.toCondition(x); err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{tInt}, Op: "!", X: x}, nil

	case p.eat("~"):
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		x = decay(x)
		if !x.CType().IsInteger() {
			return nil, p.errorf("unary ~ requires integer operand")
		}
		ct, _ := p.commonType(x, &IntLit{exprBase: exprBase{tInt}})
		if x, err = p.convertTo(x, ct); err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{ct}, Op: "~", X: x}, nil

	case p.eat("*"):
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		x = decay(x)
		elem := x.CType().PointerElem()
		if elem == nil {
			return nil, p.errorf("cannot dereference %s", x.CType())
		}
		return &Unary{exprBase: exprBase{elem}, Op: "*", X: x}, nil

	case p.eat("&"):
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.addressable(x); err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Ptr(x.CType())}, Op: "&", X: x}, nil

	case p.at("++") || p.at("--"):
		op := p.cur().text
		p.pos++
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		if !isLvalue(x) {
			return nil, p.errorf("%s requires an lvalue", op)
		}
		return &Unary{exprBase: exprBase{x.CType()}, Op: op, X: x}, nil

	case p.eat("sizeof"):
		if p.at("(") && p.pos+1 < len(p.toks) && p.typeAt(p.pos+1) {
			p.pos++ // (
			specs, err := p.parseDeclSpecs()
			if err != nil {
				return nil, err
			}
			_, typ, err := p.parseDeclarator(specs.typ)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Sizeof{exprBase: exprBase{tUInt}, Of: typ}, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Sizeof{exprBase: exprBase{tUInt}, Of: x.CType()}, nil

	case p.at("(") && p.pos+1 < len(p.toks) && p.typeAt(p.pos+1):
		p.pos++ // (
		specs, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		_, typ, err := p.parseDeclarator(specs.typ)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return p.explicitCast(decay(x), typ)
	}
	return p.parsePostfixExpr()
}

// typeAt reports whether the token at index i begins a type.
func (p *parser) typeAt(i int) bool {
	t := p.toks[i]
	if t.kind == tokKeyword {
		switch t.text {
		case "void", "bool", "_Bool", "char", "short", "int", "long",
			"unsigned", "signed", "float", "double", "_Complex",
			"struct", "class", "union", "enum", "const":
			return true
		}
		return false
	}
	if t.kind == tokIdent {
		_, ok := p.typedefs[t.text]
		return ok
	}
	return false
}

func (p *parser) parsePostfixExpr() (Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eat("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			base := decay(x)
			elem := base.CType().PointerElem()
			if elem == nil {
				return nil, p.errorf("cannot index %s", x.CType())
			}
			if !idx.CType().IsInteger() {
				return nil, p.errorf("array index must be integer")
			}
			x = &Index{exprBase: exprBase{elem}, X: base, I: idx}

		case p.eat("("):
			x, err = p.parseCallArgs(x)
			if err != nil {
				return nil, err
			}

		case p.eat("->"):
			x, err = p.parseMember(x, true)
			if err != nil {
				return nil, err
			}

		case p.eat("."):
			x, err = p.parseMember(x, false)
			if err != nil {
				return nil, err
			}

		case p.at("++") || p.at("--"):
			op := p.cur().text
			p.pos++
			if !isLvalue(x) {
				return nil, p.errorf("%s requires an lvalue", op)
			}
			x = &Postfix{exprBase: exprBase{x.CType()}, Op: op, X: x}

		default:
			return x, nil
		}
	}
}

func (p *parser) parseMember(x Expr, arrow bool) (Expr, error) {
	if p.cur().kind != tokIdent {
		return nil, p.errorf("expected field name")
	}
	name := p.cur().text
	p.pos++
	var rec *Record
	if arrow {
		elem := decay(x).CType().PointerElem()
		if elem == nil {
			return nil, p.errorf("-> on non-pointer %s", x.CType())
		}
		rt := elem.Resolved()
		if rt.Kind != KStruct && rt.Kind != KUnion {
			return nil, p.errorf("-> into non-record %s", elem)
		}
		rec = rt.Record
		x = decay(x)
	} else {
		rt := x.CType().Resolved()
		if rt.Kind != KStruct && rt.Kind != KUnion {
			return nil, p.errorf(". on non-record %s", x.CType())
		}
		rec = rt.Record
	}
	if rec.Incomplete {
		return nil, p.errorf("access into incomplete type %q", rec.Name)
	}
	f, ok := rec.Field(name)
	if !ok {
		return nil, p.errorf("no field %q in %q", name, rec.Name)
	}
	return &Member{exprBase: exprBase{f.Type}, X: x, Name: name, Arrow: arrow, Field: f}, nil
}

func (p *parser) parseCallArgs(callee Expr) (Expr, error) {
	id, ok := callee.(*Ident)
	if !ok || id.Sym.Kind != SymFunc {
		return nil, p.errorf("only direct calls to named functions are supported")
	}
	ft := id.Sym.Type.Resolved()
	var args []Expr
	if !p.eat(")") {
		for {
			a, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, decay(a))
			if !p.eat(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if len(args) < len(ft.Params) {
		return nil, p.errorf("call to %s with %d args, want %d", id.Sym.Name, len(args), len(ft.Params))
	}
	if len(args) > len(ft.Params) && !ft.variadic {
		return nil, p.errorf("too many args in call to %s", id.Sym.Name)
	}
	for i := range ft.Params {
		var err error
		if args[i], err = p.convertTo(args[i], ft.Params[i]); err != nil {
			return nil, fmt.Errorf("%w (argument %d of %s)", err, i+1, id.Sym.Name)
		}
	}
	return &Call{exprBase: exprBase{ft.Ret}, Func: id.Sym, Args: args}, nil
}

func (p *parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIntLit:
		p.pos++
		typ := tInt
		if t.intVal > 0x7fffffff || t.intVal < -0x80000000 {
			typ = tLongLong
		}
		return &IntLit{exprBase: exprBase{typ}, Val: t.intVal}, nil
	case tokCharLit:
		p.pos++
		return &IntLit{exprBase: exprBase{tInt}, Val: t.intVal}, nil
	case tokFloatLit:
		p.pos++
		return &FloatLit{exprBase: exprBase{tDouble}, Val: t.floatVal}, nil
	case tokStringLit:
		p.pos++
		return &StringLit{exprBase: exprBase{Ptr(ConstOf(tChar))}, Val: t.strVal}, nil
	case tokIdent:
		name := t.text
		p.pos++
		if name == "NULL" || name == "nullptr" {
			return &IntLit{exprBase: exprBase{Ptr(tVoid)}, Val: 0}, nil
		}
		sym := p.lookup(name)
		if sym == nil {
			return nil, p.errorf("undeclared identifier %q", name)
		}
		if sym.Kind == SymEnumConst {
			return &IntLit{exprBase: exprBase{sym.Type}, Val: sym.EnumVal}, nil
		}
		return &Ident{exprBase: exprBase{sym.Type}, Sym: sym}, nil
	}
	if p.eat("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

// --- typing helpers ---

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Sym.Kind == SymVar
	case *Unary:
		return x.Op == "*"
	case *Index, *Member:
		return true
	}
	return false
}

// addressable checks whether & can be applied. Plain locals live in wasm
// locals (registers), which have no address; the supported subset takes
// addresses only of memory-resident storage.
func (p *parser) addressable(e Expr) error {
	switch x := e.(type) {
	case *Ident:
		if x.Sym.Kind == SymVar && x.Sym.Global {
			return nil
		}
		return p.errorf("cannot take the address of local %q (locals live in registers)", x.Sym.Name)
	case *Unary:
		if x.Op == "*" {
			return nil
		}
	case *Index, *Member:
		return nil
	}
	return p.errorf("expression is not addressable")
}

// decay converts array-typed expressions to pointers to their first
// element.
func decay(e Expr) Expr {
	rt := e.CType().Resolved()
	if rt.Kind == KArray {
		return &Cast{exprBase: exprBase{Ptr(rt.Elem)}, X: e}
	}
	return e
}

// toCondition normalizes an expression for use as a branch condition; the
// result always lowers to a nonzero-means-true i32.
func (p *parser) toCondition(e Expr) (Expr, error) {
	e = decay(e)
	t := e.CType()
	switch {
	case t.IsInteger() || t.Resolved().Kind == KPointer:
		if lt := lowerType(t); lt == lowI64 {
			zero := &IntLit{exprBase: exprBase{tLongLong}, Val: 0}
			return &Binary{exprBase: exprBase{tInt}, Op: "!=", X: e, Y: zero}, nil
		}
		return e, nil
	case t.IsFloat():
		zero := &FloatLit{exprBase: exprBase{t.Resolved()}, Val: 0}
		return &Binary{exprBase: exprBase{tInt}, Op: "!=", X: e, Y: zero}, nil
	}
	return nil, p.errorf("%s is not a valid condition type", t)
}

// convertTo inserts an implicit conversion from e to typ, or errors if the
// conversion is not allowed implicitly.
func (p *parser) convertTo(e Expr, typ *CType) (Expr, error) {
	e = decay(e)
	from, to := e.CType(), typ
	fr, tr := from.Resolved(), to.Resolved()
	switch {
	case sameScalar(fr, tr):
		if from == to {
			return e, nil
		}
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	case from.IsArith() && to.IsArith():
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	case fr.Kind == KPointer && tr.Kind == KPointer:
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	case from.IsInteger() && tr.Kind == KPointer:
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	case fr.Kind == KPointer && to.IsInteger():
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	case fr.Kind == KFunc && tr.Kind == KPointer:
		return &Cast{exprBase: exprBase{to}, X: e}, nil
	}
	return nil, p.errorf("cannot convert %s to %s", from, to)
}

// explicitCast allows everything convertTo allows plus pointer/int mixes.
func (p *parser) explicitCast(e Expr, typ *CType) (Expr, error) {
	if c, err := p.convertTo(e, typ); err == nil {
		return c, nil
	}
	return nil, p.errorf("invalid cast from %s to %s", e.CType(), typ)
}

// sameScalar reports whether two resolved types have identical scalar
// identity (used to skip redundant casts).
func sameScalar(a, b *CType) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt:
		return a.Bits == b.Bits && a.Signed == b.Signed
	case KFloat:
		return a.Bits == b.Bits
	case KBool, KChar, KVoid, KComplex:
		return true
	}
	return false
}
