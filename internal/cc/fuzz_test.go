package cc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompileNeverPanics mutates valid programs at the token level and
// feeds them to the compiler: every input must produce an object or an
// error, never a panic.
func TestCompileNeverPanics(t *testing.T) {
	seeds := []string{
		figure1Source,
		`struct s { int a; }; int f(struct s *p) { return p->a; }`,
		`typedef unsigned long size_t; size_t g(size_t n) { return n + 1; }`,
		`int h(int x) { switch (x) { case 1: return 2; default: return 0; } }`,
		`double m(double *xs, int n) { double a = 0; int i; for (i = 0; i < n; i++) { a += xs[i]; } return a; }`,
	}
	frags := []string{
		"int", "double", "struct", "{", "}", "(", ")", ";", "*", "return",
		"if", "while", "x", "42", "+", "=", ",", "[", "]", "->", "case",
		"switch", "\"str\"", "'c'", "&&", "enum", "typedef", "const", "...",
	}
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 1500; i++ {
		src := seeds[r.Intn(len(seeds))]
		// Apply a few random edits: insert, delete, or duplicate tokens.
		words := strings.Fields(src)
		for j := 0; j < 1+r.Intn(5); j++ {
			if len(words) == 0 {
				break
			}
			pos := r.Intn(len(words))
			switch r.Intn(3) {
			case 0:
				words = append(words[:pos], append([]string{frags[r.Intn(len(frags))]}, words[pos:]...)...)
			case 1:
				words = append(words[:pos], words[pos+1:]...)
			default:
				words[pos] = frags[r.Intn(len(frags))]
			}
		}
		mutated := strings.Join(words, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Compile panicked: %v\nsource: %s", p, mutated)
				}
			}()
			_, _ = Compile(mutated, Options{FileName: "fuzz.c", Debug: true})
		}()
	}
}
