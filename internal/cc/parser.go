package cc

import (
	"fmt"
	"strings"
)

// parser parses one translation unit and type-checks it on the fly,
// producing a fully typed AST. Typedef names feed back into the grammar
// (the classic lexer hack), so parsing and symbol resolution are fused.
type parser struct {
	file string
	toks []token
	pos  int

	unit     *Unit
	scopes   []map[string]*Symbol
	typedefs map[string]*CType
	tags     map[string]*CType // struct/class/union/enum by tag name

	curFunc *FuncDecl
}

func parseUnit(file, src string) (*Unit, error) {
	toks, err := newLexer(file, src).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{
		file:     file,
		toks:     toks,
		unit:     &Unit{File: file, Typedefs: map[string]*CType{}},
		typedefs: map[string]*CType{},
		tags:     map[string]*CType{},
	}
	p.pushScope()
	if err := p.parseTopLevel(); err != nil {
		return nil, err
	}
	p.unit.Typedefs = p.typedefs
	return p.unit, nil
}

// --- token helpers ---

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}
func (p *parser) eat(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(text string) error {
	if !p.eat(text) {
		return p.errorf("expected %q, got %q", text, p.cur().text)
	}
	return nil
}
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.cur().line, fmt.Sprintf(format, args...))
}

// --- scopes ---

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]*Symbol{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) declare(s *Symbol) error {
	top := p.scopes[len(p.scopes)-1]
	if old, ok := top[s.Name]; ok {
		// Redeclaring a function prototype is fine.
		if old.Kind == SymFunc && s.Kind == SymFunc {
			return nil
		}
		return p.errorf("redeclaration of %q", s.Name)
	}
	top[s.Name] = s
	return nil
}

func (p *parser) lookup(name string) *Symbol {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// --- declarations ---

// startsType reports whether the current token can begin a declaration.
func (p *parser) startsType() bool {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "void", "bool", "_Bool", "char", "short", "int", "long",
			"unsigned", "signed", "float", "double", "_Complex",
			"struct", "class", "union", "enum", "const", "volatile",
			"restrict", "typedef", "extern", "static", "inline":
			return true
		}
		return false
	}
	if t.kind == tokIdent {
		_, ok := p.typedefs[t.text]
		return ok
	}
	return false
}

func (p *parser) parseTopLevel() error {
	for p.cur().kind != tokEOF {
		if err := p.parseExternalDecl(); err != nil {
			return err
		}
	}
	return nil
}

type declSpecs struct {
	typ       *CType
	isTypedef bool
	isExtern  bool
}

func (p *parser) parseExternalDecl() error {
	specs, err := p.parseDeclSpecs()
	if err != nil {
		return err
	}
	// Pure type declaration: struct S {...}; enum E {...};
	if p.eat(";") {
		return nil
	}
	first := true
	for {
		name, typ, err := p.parseDeclarator(specs.typ)
		if err != nil {
			return err
		}
		if specs.isTypedef {
			if name == "" {
				return p.errorf("typedef requires a name")
			}
			p.typedefs[name] = &CType{Kind: KTypedef, Name: name, Underlying: typ}
		} else if typ.Resolved().Kind == KFunc && first && p.at("{") {
			return p.parseFuncBody(name, typ, specs)
		} else if typ.Resolved().Kind == KFunc {
			if err := p.declareFunc(name, typ, false); err != nil {
				return err
			}
		} else {
			if name == "" {
				return p.errorf("declaration requires a name")
			}
			sym := &Symbol{Name: name, Kind: SymVar, Type: typ, Global: true, Defined: !specs.isExtern}
			if err := p.declare(sym); err != nil {
				return err
			}
			var init Expr
			if p.eat("=") {
				if init, err = p.parseAssignExpr(); err != nil {
					return err
				}
				init, err = p.convertTo(init, typ)
				if err != nil {
					return err
				}
			}
			p.unit.Globals = append(p.unit.Globals, sym)
			p.unit.GlobalInits = append(p.unit.GlobalInits, init)
		}
		first = false
		if p.eat(",") {
			continue
		}
		return p.expect(";")
	}
}

func (p *parser) declareFunc(name string, typ *CType, defined bool) error {
	if old := p.lookup(name); old != nil && old.Kind == SymFunc {
		if defined {
			old.Defined = true
		}
		return nil
	}
	sym := &Symbol{Name: name, Kind: SymFunc, Type: typ, Global: true, Defined: defined}
	return p.declare(sym)
}

func (p *parser) parseFuncBody(name string, typ *CType, specs declSpecs) error {
	if err := p.declareFunc(name, typ, true); err != nil {
		return err
	}
	sym := p.lookup(name)
	fn := &FuncDecl{
		Name:     name,
		Ret:      typ.Ret,
		Sym:      sym,
		IsExtern: specs.isExtern,
	}
	for i, pt := range typ.Params {
		pname := typ.paramNames[i]
		fn.Params = append(fn.Params, Param{Name: pname, Type: pt})
	}
	p.curFunc = fn
	p.pushScope()
	for i := range fn.Params {
		if fn.Params[i].Name == "" {
			fn.Params[i].Name = fmt.Sprintf("arg%d", i)
		}
		psym := &Symbol{Name: fn.Params[i].Name, Kind: SymVar, Type: fn.Params[i].Type, LocalIdx: i}
		if err := p.declare(psym); err != nil {
			return err
		}
	}
	body, err := p.parseBlockNoScope()
	if err != nil {
		return err
	}
	p.popScope()
	fn.Body = body
	p.curFunc = nil
	p.unit.Funcs = append(p.unit.Funcs, fn)
	return nil
}

// parseDeclSpecs parses storage classes, qualifiers, and the base type.
func (p *parser) parseDeclSpecs() (declSpecs, error) {
	var specs declSpecs
	isConst := false
	var baseWords []string
	for {
		t := p.cur()
		if t.kind == tokKeyword {
			switch t.text {
			case "typedef":
				specs.isTypedef = true
				p.pos++
				continue
			case "extern":
				specs.isExtern = true
				p.pos++
				continue
			case "static", "inline":
				p.pos++
				continue
			case "const":
				isConst = true
				p.pos++
				continue
			case "volatile", "restrict":
				p.pos++ // accepted and dropped, like the DWARF conversion
				continue
			case "struct", "class", "union":
				typ, err := p.parseRecordSpecifier(t.text)
				if err != nil {
					return specs, err
				}
				specs.typ = typ
				if isConst {
					specs.typ = ConstOf(specs.typ)
				}
				return specs, nil
			case "enum":
				typ, err := p.parseEnumSpecifier()
				if err != nil {
					return specs, err
				}
				specs.typ = typ
				if isConst {
					specs.typ = ConstOf(specs.typ)
				}
				return specs, nil
			case "void", "bool", "_Bool", "char", "short", "int", "long",
				"unsigned", "signed", "float", "double", "_Complex":
				baseWords = append(baseWords, t.text)
				p.pos++
				continue
			}
		}
		if t.kind == tokIdent && len(baseWords) == 0 {
			if td, ok := p.typedefs[t.text]; ok {
				p.pos++
				specs.typ = td
				// Trailing const: `mytype const x`.
				for p.eat("const") {
					isConst = true
				}
				if isConst {
					specs.typ = ConstOf(specs.typ)
				}
				return specs, nil
			}
		}
		break
	}
	if len(baseWords) == 0 {
		return specs, p.errorf("expected type, got %q", p.cur().text)
	}
	typ, err := baseTypeFromWords(baseWords)
	if err != nil {
		return specs, p.errorf("%v", err)
	}
	// Trailing const: `int const x`.
	for p.eat("const") {
		isConst = true
	}
	specs.typ = typ
	if isConst {
		specs.typ = ConstOf(specs.typ)
	}
	return specs, nil
}

// baseTypeFromWords resolves a multi-keyword base type like
// "unsigned long long" to a concrete type under ILP32.
func baseTypeFromWords(words []string) (*CType, error) {
	count := map[string]int{}
	for _, w := range words {
		count[w]++
	}
	switch {
	case count["void"] > 0:
		return tVoid, nil
	case count["bool"] > 0 || count["_Bool"] > 0:
		return tBool, nil
	case count["_Complex"] > 0:
		return tComplex, nil
	case count["float"] > 0:
		return tFloat, nil
	case count["double"] > 0:
		if count["long"] > 0 {
			return tLongDouble, nil
		}
		return tDouble, nil
	case count["char"] > 0:
		switch {
		case count["unsigned"] > 0:
			return tUChar, nil
		case count["signed"] > 0:
			return tSChar, nil
		default:
			return tChar, nil
		}
	}
	unsigned := count["unsigned"] > 0
	pick := func(s, u *CType) *CType {
		if unsigned {
			return u
		}
		return s
	}
	switch {
	case count["short"] > 0:
		return pick(tShort, tUShort), nil
	case count["long"] >= 2:
		return pick(tLongLong, tULongLong), nil
	case count["long"] == 1:
		return pick(tInt, tUInt), nil // ILP32: long is 32 bits
	case count["int"] > 0 || unsigned || count["signed"] > 0:
		return pick(tInt, tUInt), nil
	}
	return nil, fmt.Errorf("cannot resolve base type %q", strings.Join(words, " "))
}

func (p *parser) parseRecordSpecifier(kw string) (*CType, error) {
	p.pos++ // struct/class/union
	tag := ""
	if p.cur().kind == tokIdent {
		tag = p.cur().text
		p.pos++
	}
	key := kw + " " + tag
	var typ *CType
	if tag != "" {
		if existing, ok := p.tags[key]; ok {
			typ = existing
		}
	}
	if typ == nil {
		rec := &Record{Name: tag, IsClass: kw == "class", IsUnion: kw == "union", Incomplete: true}
		kind := KStruct
		if kw == "union" {
			kind = KUnion
		}
		typ = &CType{Kind: kind, Record: rec}
		if tag != "" {
			p.tags[key] = typ
		}
		p.unit.Records = append(p.unit.Records, rec)
	}
	if p.eat("{") {
		if !typ.Record.Incomplete {
			return nil, p.errorf("redefinition of %s %s", kw, tag)
		}
		typ.Record.Incomplete = false
		for !p.eat("}") {
			specs, err := p.parseDeclSpecs()
			if err != nil {
				return nil, err
			}
			for {
				name, ft, err := p.parseDeclarator(specs.typ)
				if err != nil {
					return nil, err
				}
				if name == "" {
					return nil, p.errorf("field requires a name")
				}
				typ.Record.Fields = append(typ.Record.Fields, Field{Name: name, Type: ft})
				if p.eat(",") {
					continue
				}
				break
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		typ.Record.Layout()
	}
	return typ, nil
}

func (p *parser) parseEnumSpecifier() (*CType, error) {
	p.pos++ // enum
	tag := ""
	if p.cur().kind == tokIdent {
		tag = p.cur().text
		p.pos++
	}
	key := "enum " + tag
	var typ *CType
	if tag != "" {
		if existing, ok := p.tags[key]; ok {
			typ = existing
		}
	}
	if typ == nil {
		def := &EnumDef{Name: tag}
		typ = &CType{Kind: KEnum, Enum: def}
		if tag != "" {
			p.tags[key] = typ
		}
		p.unit.Enums = append(p.unit.Enums, def)
	}
	if p.eat("{") {
		next := int64(0)
		for !p.eat("}") {
			if p.cur().kind != tokIdent {
				return nil, p.errorf("expected enumerator name")
			}
			name := p.cur().text
			p.pos++
			if p.eat("=") {
				if p.cur().kind != tokIntLit {
					// Keep it simple: constant expressions are literals.
					return nil, p.errorf("enumerator value must be an integer literal")
				}
				next = p.cur().intVal
				p.pos++
			}
			typ.Enum.Members = append(typ.Enum.Members, name)
			typ.Enum.Values = append(typ.Enum.Values, next)
			sym := &Symbol{Name: name, Kind: SymEnumConst, Type: typ, EnumVal: next, Global: true}
			if err := p.declare(sym); err != nil {
				return nil, err
			}
			next++
			if !p.eat(",") {
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return typ, nil
}

// parseDeclarator parses pointers, the name, and array/function suffixes.
// It also supports the function-pointer form `base (*name)(params)`.
func (p *parser) parseDeclarator(base *CType) (string, *CType, error) {
	typ := base
	for p.eat("*") {
		typ = Ptr(typ)
		for {
			if p.eat("const") {
				typ = ConstOf(typ)
			} else if p.eat("volatile") || p.eat("restrict") {
				// dropped
			} else {
				break
			}
		}
	}
	// Function pointer: ( * name ) ( params )
	if p.at("(") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "*" {
		p.pos += 2 // ( *
		name := ""
		if p.cur().kind == tokIdent {
			name = p.cur().text
			p.pos++
		}
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		ft, err := p.parseParamList(typ)
		if err != nil {
			return "", nil, err
		}
		return name, Ptr(ft), nil
	}
	name := ""
	if p.cur().kind == tokIdent {
		name = p.cur().text
		p.pos++
	}
	// Suffixes.
	for {
		switch {
		case p.at("("):
			ft, err := p.parseParamList(typ)
			if err != nil {
				return "", nil, err
			}
			return name, ft, nil
		case p.eat("["):
			n := 0
			if p.cur().kind == tokIntLit {
				n = int(p.cur().intVal)
				p.pos++
			}
			if err := p.expect("]"); err != nil {
				return "", nil, err
			}
			typ = &CType{Kind: KArray, Elem: typ, Len: n}
		default:
			return name, typ, nil
		}
	}
}

func (p *parser) parseParamList(ret *CType) (*CType, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ft := &CType{Kind: KFunc, Ret: ret}
	if p.eat(")") {
		return ft, nil
	}
	// (void) means no parameters.
	if p.at("void") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == ")" {
		p.pos += 2
		return ft, nil
	}
	for {
		if p.eat("...") {
			ft.variadic = true
			break
		}
		specs, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		name, typ, err := p.parseDeclarator(specs.typ)
		if err != nil {
			return nil, err
		}
		// Arrays decay to pointers in parameter position, as in the
		// paper's motivating example `double Control[]`.
		if rt := typ.Resolved(); rt.Kind == KArray {
			typ = Ptr(rt.Elem)
		}
		ft.Params = append(ft.Params, typ)
		ft.paramNames = append(ft.paramNames, name)
		if !p.eat(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ft, nil
}
