package cc

import (
	"strings"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// figure1Source is the paper's motivating example (Figure 1a), lightly
// adapted to the supported subset.
const figure1Source = `
extern int printf(const char *fmt, ...);

enum control { DENSE, AGGRESSIVE };

double DEFAULT_DENSE = 10.0;
int DEFAULT_AGGRESSIVE = 1;

void amd_control(double Control[]) {
	double alpha;
	int aggressive;
	if (Control != (double *) NULL) {
		alpha = Control[DENSE];
		aggressive = Control[AGGRESSIVE] != 0;
	} else {
		alpha = DEFAULT_DENSE;
		aggressive = DEFAULT_AGGRESSIVE;
	}
	if (alpha < 0) {
		printf("no rows treated as dense");
	}
	if (aggressive) {
		printf("aggressive");
	}
}
`

func compileT(t *testing.T, src string) *Object {
	t.Helper()
	obj, err := Compile(src, Options{FileName: "test.c", Debug: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return obj
}

func TestCompileFigure1(t *testing.T) {
	obj := compileT(t, figure1Source)

	// The binary must decode cleanly.
	d, err := wasm.Decode(obj.Binary)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	m := d.Module
	if len(m.Funcs) != 1 {
		t.Fatalf("module has %d functions, want 1", len(m.Funcs))
	}
	// printf is imported.
	if m.NumImportedFuncs() != 1 || m.Imports[0].Name != "printf" {
		t.Fatalf("imports = %+v", m.Imports)
	}
	// The function body must reference the parameter and read doubles.
	text, err := wasm.DisassembleFunction(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"local.get 0", "f64.load", "call 0", "f64.lt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}

	// DWARF must be embedded and match the paper's structure.
	secs, err := dwarf.Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		t.Fatal(err)
	}
	subs := cu.FindAll(dwarf.TagSubprogram)
	if len(subs) != 1 || subs[0].Name() != "amd_control" {
		t.Fatalf("subprograms = %v", subs)
	}
	// low_pc matches the decoder-reported code offset.
	pc, ok := subs[0].Uint(dwarf.AttrLowPC)
	if !ok || uint32(pc) != d.CodeOffsets[0] {
		t.Errorf("low_pc = %d, code offset = %d", pc, d.CodeOffsets[0])
	}
	// The parameter converts to the paper's Figure 1d type.
	params := subs[0].FindAll(dwarf.TagFormalParameter)
	if len(params) != 1 || params[0].Name() != "Control" {
		t.Fatalf("params = %v", params)
	}
	typ := typelang.FromDWARF(params[0].TypeRef(), typelang.AllNames())
	if typ.String() != "pointer primitive float 64" {
		t.Errorf("Control type = %q, want %q", typ, "pointer primitive float 64")
	}
}

func TestCompileTypesToDWARF(t *testing.T) {
	src := `
typedef unsigned int size_t;
typedef struct sname { int a; double b; } tname;
class Widget { int id; double weight; };
union u { int i; float f; };
enum color { RED, GREEN = 5, BLUE };

extern void use(int x);

int f_int(int a) { return a + 1; }
unsigned long long f_u64(unsigned long long a) { return a * 2; }
float f_float(float a) { return a; }
long double f_ld(long double a) { return a; }
bool f_bool(bool b) { return !b; }
char f_char(char c) { return c; }
signed char f_schar(signed char c) { return c; }
const char *f_str(const char *s) { return s; }
size_t f_size(size_t n) { return n; }
tname *f_tname(tname *p) { return p; }
class Widget *f_class(class Widget *w) { return w; }
union u *f_union(union u *p) { return p; }
enum color f_enum(enum color c) { return c; }
void *f_voidp(void *p) { return p; }
int **f_pp(int **p) { return p ? 1 : 0 ? p : p; }
double f_member(tname *p) { return p->b; }
`
	obj := compileT(t, src)
	secs, err := dwarf.Extract(obj.Module)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ param, ret string }{
		"f_int":    {"primitive int 32", "primitive int 32"},
		"f_u64":    {"primitive uint 64", "primitive uint 64"},
		"f_float":  {"primitive float 32", "primitive float 32"},
		"f_ld":     {"primitive float 128", "primitive float 128"},
		"f_bool":   {"primitive bool", "primitive bool"},
		"f_char":   {"primitive cchar", "primitive cchar"},
		"f_schar":  {"primitive int 8", "primitive int 8"},
		"f_str":    {"pointer const primitive cchar", "pointer const primitive cchar"},
		"f_size":   {`name "size_t" primitive uint 32`, `name "size_t" primitive uint 32`},
		"f_tname":  {`pointer name "tname" struct`, `pointer name "tname" struct`},
		"f_class":  {`pointer name "Widget" class`, `pointer name "Widget" class`},
		"f_union":  {`pointer name "u" union`, `pointer name "u" union`},
		"f_enum":   {`name "color" enum`, `name "color" enum`},
		"f_voidp":  {"pointer unknown", "pointer unknown"},
		"f_pp":     {"pointer pointer primitive int 32", "pointer pointer primitive int 32"},
		"f_member": {`pointer name "tname" struct`, "primitive float 64"},
	}
	found := 0
	for _, sub := range cu.FindAll(dwarf.TagSubprogram) {
		exp, ok := want[sub.Name()]
		if !ok {
			continue
		}
		found++
		params := sub.FindAll(dwarf.TagFormalParameter)
		if len(params) != 1 {
			t.Errorf("%s: %d params", sub.Name(), len(params))
			continue
		}
		pt := typelang.FromDWARF(params[0].TypeRef(), typelang.AllNames())
		if pt.String() != exp.param {
			t.Errorf("%s param = %q, want %q", sub.Name(), pt, exp.param)
		}
		rt := typelang.FromDWARF(sub.TypeRef(), typelang.AllNames())
		if rt.String() != exp.ret {
			t.Errorf("%s return = %q, want %q", sub.Name(), rt, exp.ret)
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d expected subprograms", found, len(want))
	}
}

func TestControlFlowCodegen(t *testing.T) {
	src := `
int loops(int n) {
	int sum = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (i % 2 == 0) { continue; }
		if (i > 100) { break; }
		sum += i;
	}
	while (sum > 1000) { sum /= 2; }
	do { sum++; } while (sum < 10);
	return sum;
}
`
	obj := compileT(t, src)
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	for _, want := range []string{"loop", "br_if", "i32.rem_s", "i32.div_s"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Round-trip decode.
	if _, err := wasm.Decode(obj.Binary); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestPointerAndMemberCodegen(t *testing.T) {
	src := `
struct point { int x; int y; double w; };
double get(struct point *p, int i) {
	p[i].x = 1;
	p->y = p->x + 2;
	return p[i].w;
}
`
	obj := compileT(t, src)
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	// Field w is at offset 8 (x:0, y:4, w:8).
	if !strings.Contains(text, "f64.load offset=8") {
		t.Errorf("expected f64.load offset=8 in:\n%s", text)
	}
	if !strings.Contains(text, "i32.store offset=4") {
		t.Errorf("expected i32.store offset=4 in:\n%s", text)
	}
	// Index scaling by sizeof(struct point) = 16.
	if !strings.Contains(text, "i32.const 16") {
		t.Errorf("expected index scaling by 16 in:\n%s", text)
	}
}

func TestGlobalsAndStrings(t *testing.T) {
	src := `
extern int puts(const char *s);
int counter = 7;
double ratio = 2.5;
int bump(void) {
	counter = counter + 1;
	puts("bumped");
	return counter;
}
`
	obj := compileT(t, src)
	if len(obj.Module.Datas) != 3 { // counter, ratio, "bumped"
		t.Errorf("data segments = %d, want 3", len(obj.Module.Datas))
	}
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if !strings.Contains(text, "i32.load offset=1024") {
		t.Errorf("expected global load at 1024 in:\n%s", text)
	}
}

func TestConversions(t *testing.T) {
	src := `
double mix(int i, unsigned int u, long long ll, float f) {
	double d = i;
	d = d + u;
	d = d + ll;
	d = d + f;
	char c = (char)i;
	unsigned short s = (unsigned short)u;
	return d + c + s;
}
`
	obj := compileT(t, src)
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	for _, want := range []string{
		"f64.convert_i32_s", "f64.convert_i32_u", "f64.convert_i64_s",
		"f64.promote_f32", "i32.extend8_s", "i32.const 65535",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`int f( { return 0; }`,
		`int f(int x) { return y; }`,
		`int f(int x) { 1 = x; return 0; }`,
		`void f(struct unknown_s s) {}`,
		`int f(int x) { struct s2 { int a; } v; return 0; }`,
		`int f(int x) { return "str"; } garbage`,
		`int f(int x) { int x; return x; }`,
		`int f(int x) { return x +; }`,
		`int f(int x) { break; }`,
		`double f(double *p) { return &p; }`, // address of local
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{Debug: false}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestVariadicCall(t *testing.T) {
	src := `
extern int printf(const char *fmt, ...);
int log3(int a, double b) {
	return printf("%d %f", a, b);
}
`
	obj := compileT(t, src)
	// The import signature has only the fixed parameter.
	ft, err := obj.Module.FuncTypeAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 1 || ft.Params[0] != wasm.I32 {
		t.Errorf("printf import signature = %v", ft)
	}
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if !strings.Contains(text, "drop") {
		t.Errorf("variadic extras should be dropped:\n%s", text)
	}
}

func TestFunctionPointerTypedef(t *testing.T) {
	src := `
typedef int (*callback)(int, int);
int invoke_stub(callback cb, int x) {
	if (cb != NULL) { return x; }
	return 0;
}
`
	obj := compileT(t, src)
	secs, _ := dwarf.Extract(obj.Module)
	cu, err := dwarf.Read(secs)
	if err != nil {
		t.Fatal(err)
	}
	sub := cu.FindAll(dwarf.TagSubprogram)[0]
	pt := typelang.FromDWARF(sub.FindAll(dwarf.TagFormalParameter)[0].TypeRef(), typelang.AllNames())
	if pt.String() != `name "callback" pointer function` {
		t.Errorf("callback type = %q", pt)
	}
}

func TestRecursiveStructDWARF(t *testing.T) {
	src := `
struct list { struct list *next; int value; };
int length(struct list *head) {
	int n = 0;
	while (head != NULL) { n++; head = head->next; }
	return n;
}
`
	obj := compileT(t, src)
	secs, _ := dwarf.Extract(obj.Module)
	cu, err := dwarf.Read(secs)
	if err != nil {
		t.Fatal(err)
	}
	sub := cu.FindAll(dwarf.TagSubprogram)[0]
	pt := typelang.FromDWARF(sub.FindAll(dwarf.TagFormalParameter)[0].TypeRef(), typelang.AllNames())
	if pt.String() != `pointer name "list" struct` {
		t.Errorf("list type = %q", pt)
	}
}

func TestSizeofAndTernary(t *testing.T) {
	src := `
struct big { double a; double b; char c; };
int f(int x) {
	int n = sizeof(struct big);
	return x > 0 ? n : -n;
}
`
	obj := compileT(t, src)
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	// sizeof(struct big) = 24 (8+8+1 rounded to align 8).
	if !strings.Contains(text, "i32.const 24") {
		t.Errorf("expected sizeof 24 in:\n%s", text)
	}
	if !strings.Contains(text, "if (result i32)") {
		t.Errorf("expected typed if for ternary in:\n%s", text)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	src := `
extern int side(void);
int f(int a, int b) { return a && b || !a; }
`
	obj := compileT(t, src)
	if _, err := wasm.Decode(obj.Binary); err != nil {
		t.Fatal(err)
	}
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if strings.Count(text, "if (result i32)") < 2 {
		t.Errorf("expected short-circuit ifs:\n%s", text)
	}
}

func TestStructLayout(t *testing.T) {
	r := &Record{Fields: []Field{
		{Name: "c", Type: tChar},
		{Name: "d", Type: tDouble},
		{Name: "i", Type: tInt},
	}}
	r.Layout()
	if r.Fields[0].Offset != 0 || r.Fields[1].Offset != 8 || r.Fields[2].Offset != 16 {
		t.Errorf("offsets = %d %d %d", r.Fields[0].Offset, r.Fields[1].Offset, r.Fields[2].Offset)
	}
	if r.Size != 24 || r.Align != 8 {
		t.Errorf("size=%d align=%d", r.Size, r.Align)
	}
	u := &Record{IsUnion: true, Fields: []Field{
		{Name: "i", Type: tInt},
		{Name: "d", Type: tDouble},
	}}
	u.Layout()
	if u.Size != 8 || u.Fields[1].Offset != 0 {
		t.Errorf("union size=%d off=%d", u.Size, u.Fields[1].Offset)
	}
}

func TestEnumConstants(t *testing.T) {
	src := `
enum mode { OFF, SLOW = 10, FAST };
int pick(int x) {
	if (x == SLOW) { return FAST; }
	return OFF;
}
`
	obj := compileT(t, src)
	text, _ := wasm.DisassembleFunction(obj.Module, 0)
	if !strings.Contains(text, "i32.const 10") || !strings.Contains(text, "i32.const 11") {
		t.Errorf("enum constants not folded:\n%s", text)
	}
}

func TestNoDebugOption(t *testing.T) {
	obj, err := Compile("int f(int x) { return x; }", Options{Debug: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dwarf.Extract(obj.Module); err == nil {
		t.Error("module without -g should have no DWARF")
	}
}
