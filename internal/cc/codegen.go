package cc

import (
	"fmt"

	"repro/internal/wasm"
)

// lowKind is the wasm value type a C scalar lowers to.
type lowKind int

const (
	lowI32 lowKind = iota
	lowI64
	lowF32
	lowF64
)

// lowerType maps a semantic C type to its wasm value type. Pointers,
// enums, bools, and chars are i32; long double lowers to f64 (as
// Emscripten does for computation; the DWARF still records 16 bytes);
// _Complex lowers to f64 too and is realistically only used behind
// pointers.
func lowerType(t *CType) lowKind {
	switch rt := t.Resolved(); rt.Kind {
	case KInt:
		if rt.Bits == 64 {
			return lowI64
		}
		return lowI32
	case KFloat:
		if rt.Bits == 32 {
			return lowF32
		}
		return lowF64
	case KComplex:
		return lowF64
	default:
		return lowI32
	}
}

func (k lowKind) val() wasm.ValType {
	switch k {
	case lowI64:
		return wasm.I64
	case lowF32:
		return wasm.F32
	case lowF64:
		return wasm.F64
	}
	return wasm.I32
}

// labelKind tracks emitted structured-control nesting for branch distances.
type labelKind int

const (
	labelBlock labelKind = iota
	labelLoop
	labelIf
	labelBreak    // block that `break` targets
	labelContinue // block that `continue` targets
)

// codegen lowers a type-checked unit to a wasm module.
type codegen struct {
	unit *Unit
	mod  *wasm.Module

	funcIdx map[*Symbol]uint32

	// Static memory layout.
	memTop  uint32
	strAddr map[string]uint32

	// Current function state.
	fn      *FuncDecl
	body    []wasm.Instr
	locals  []wasm.ValType // extra locals beyond params
	nparams int
	localOf map[*Symbol]int
	scratch map[wasm.ValType]int
	ctrl    []labelKind
}

// memBase is where static data starts, leaving low memory untouched as
// Emscripten does.
const memBase = 1024

// generate lowers the unit into a fresh module.
func generate(unit *Unit) (*wasm.Module, error) {
	g := &codegen{
		unit:    unit,
		mod:     &wasm.Module{},
		funcIdx: make(map[*Symbol]uint32),
		memTop:  memBase,
		strAddr: make(map[string]uint32),
	}

	// Imports: extern functions (referenced prototypes without bodies),
	// in declaration order for determinism.
	var externs []*Symbol
	seen := map[*Symbol]bool{}
	collect := func(s *Symbol) {
		if s != nil && s.Kind == SymFunc && !s.Defined && !seen[s] {
			seen[s] = true
			externs = append(externs, s)
		}
	}
	for _, fn := range unit.Funcs {
		walkCalls(fn.Body, collect)
	}
	for i, s := range externs {
		ft, err := g.wasmSig(s.Type.Resolved())
		if err != nil {
			return nil, err
		}
		g.mod.Imports = append(g.mod.Imports, wasm.Import{
			Module: "env", Name: s.Name, Kind: wasm.KindFunc, TypeIdx: g.mod.AddType(ft),
		})
		g.funcIdx[s] = uint32(i)
		s.FuncIdx = uint32(i)
	}
	nimp := len(externs)
	for i, fn := range unit.Funcs {
		g.funcIdx[fn.Sym] = uint32(nimp + i)
		fn.Sym.FuncIdx = uint32(nimp + i)
	}

	// Static layout of globals.
	for _, sym := range unit.Globals {
		size := sym.Type.Size()
		align := sym.Type.Align()
		g.memTop = uint32(roundUp(int(g.memTop), align))
		sym.Addr = g.memTop
		g.memTop += uint32(size)
	}

	g.mod.Memories = append(g.mod.Memories, wasm.Limits{Min: 16})
	// Emscripten-style stack pointer global (module-internal convention).
	g.mod.Globals = append(g.mod.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: wasm.I32, Mutable: true},
		Init: []wasm.Instr{wasm.ConstI32(5 * 64 * 1024)},
	})

	// Global initializers become data segments.
	for i, sym := range unit.Globals {
		init := unit.GlobalInits[i]
		if init == nil {
			continue
		}
		data, err := constBytes(init, sym.Type)
		if err != nil {
			return nil, fmt.Errorf("%s: global %s: %w", unit.File, sym.Name, err)
		}
		g.mod.Datas = append(g.mod.Datas, wasm.Data{
			Offset: []wasm.Instr{wasm.ConstI32(int32(sym.Addr))},
			Bytes:  data,
		})
	}

	for _, fn := range unit.Funcs {
		if err := g.genFunc(fn); err != nil {
			return nil, err
		}
	}

	// Export all defined functions by name, like object files keep their
	// symbols visible.
	for _, fn := range unit.Funcs {
		g.mod.Exports = append(g.mod.Exports, wasm.Export{
			Name: fn.Name, Kind: wasm.KindFunc, Index: g.funcIdx[fn.Sym],
		})
	}
	return g.mod, nil
}

// walkCalls visits every Call in a statement tree.
func walkCalls(s Stmt, fn func(*Symbol)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Call:
			fn(x.Func)
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Unary:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *Assign:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *Cond:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *Index:
			walkExpr(x.X)
			walkExpr(x.I)
		case *Member:
			walkExpr(x.X)
		case *Cast:
			walkExpr(x.X)
		case *Postfix:
			walkExpr(x.X)
		}
	}
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch x := s.(type) {
		case *Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ExprStmt:
			walkExpr(x.E)
		case *Return:
			if x.E != nil {
				walkExpr(x.E)
			}
		case *If:
			walkExpr(x.C)
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *While:
			walkExpr(x.C)
			walk(x.Body)
		case *For:
			if x.Init != nil {
				walk(x.Init)
			}
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkExpr(x.Post)
			}
			walk(x.Body)
		case *LocalDecl:
			if x.Init != nil {
				walkExpr(x.Init)
			}
		case *Switch:
			walkExpr(x.Tag)
			for _, c := range x.Cases {
				for _, st := range c.Body {
					walk(st)
				}
			}
			for _, st := range x.Default {
				walk(st)
			}
		}
	}
	if s != nil {
		walk(s)
	}
}

// wasmSig lowers a C function type to a wasm signature.
func (g *codegen) wasmSig(ft *CType) (wasm.FuncType, error) {
	var out wasm.FuncType
	for _, pt := range ft.Params {
		if rt := pt.Resolved(); rt.Kind == KStruct || rt.Kind == KUnion {
			return out, fmt.Errorf("cc: by-value aggregate parameters are not supported")
		}
		out.Params = append(out.Params, lowerType(pt).val())
	}
	if !ft.Ret.IsVoid() {
		if rt := ft.Ret.Resolved(); rt.Kind == KStruct || rt.Kind == KUnion {
			return out, fmt.Errorf("cc: by-value aggregate returns are not supported")
		}
		out.Results = append(out.Results, lowerType(ft.Ret).val())
	}
	return out, nil
}

func (g *codegen) genFunc(fn *FuncDecl) error {
	sig, err := g.wasmSig(fn.Sym.Type.Resolved())
	if err != nil {
		return fmt.Errorf("%s: %w", fn.Name, err)
	}
	g.fn = fn
	g.body = nil
	g.locals = nil
	g.nparams = len(fn.Params)
	g.localOf = make(map[*Symbol]int)
	g.scratch = make(map[wasm.ValType]int)
	g.ctrl = nil

	if err := g.genBlock(fn.Body); err != nil {
		return fmt.Errorf("%s: %w", fn.Name, err)
	}
	// Functions with a result must not fall off the end in wasm; emit a
	// default value for paths the C code leaves undefined.
	if !fn.Ret.IsVoid() {
		g.emitZero(lowerType(fn.Ret))
	}

	// Compress locals into (count, type) runs.
	var decls []wasm.LocalDecl
	for _, vt := range g.locals {
		if n := len(decls); n > 0 && decls[n-1].Type == vt {
			decls[n-1].Count++
		} else {
			decls = append(decls, wasm.LocalDecl{Count: 1, Type: vt})
		}
	}
	g.mod.Funcs = append(g.mod.Funcs, wasm.Function{
		TypeIdx: g.mod.AddType(sig),
		Locals:  decls,
		Body:    g.body,
		Name:    fn.Name,
	})
	return nil
}

// --- emission helpers ---

func (g *codegen) emit(ins ...wasm.Instr) { g.body = append(g.body, ins...) }

func (g *codegen) newLocal(vt wasm.ValType) int {
	idx := g.nparams + len(g.locals)
	g.locals = append(g.locals, vt)
	return idx
}

func (g *codegen) scratchLocal(vt wasm.ValType) int {
	if idx, ok := g.scratch[vt]; ok {
		return idx
	}
	idx := g.newLocal(vt)
	g.scratch[vt] = idx
	return idx
}

func (g *codegen) emitZero(k lowKind) {
	switch k {
	case lowI32:
		g.emit(wasm.ConstI32(0))
	case lowI64:
		g.emit(wasm.ConstI64(0))
	case lowF32:
		g.emit(wasm.ConstF32(0))
	case lowF64:
		g.emit(wasm.ConstF64(0))
	}
}

// pushCtrl/popCtrl track branch label distances.
func (g *codegen) pushCtrl(k labelKind) { g.ctrl = append(g.ctrl, k) }
func (g *codegen) popCtrl()             { g.ctrl = g.ctrl[:len(g.ctrl)-1] }

func (g *codegen) branchDistance(want labelKind) (int64, error) {
	for i := len(g.ctrl) - 1; i >= 0; i-- {
		if g.ctrl[i] == want {
			return int64(len(g.ctrl) - 1 - i), nil
		}
	}
	return 0, fmt.Errorf("cc: branch target not found (break/continue outside loop)")
}

// internString places a string literal in static memory once.
func (g *codegen) internString(s string) uint32 {
	if addr, ok := g.strAddr[s]; ok {
		return addr
	}
	addr := g.memTop
	g.strAddr[s] = addr
	bytes := append([]byte(s), 0)
	g.mod.Datas = append(g.mod.Datas, wasm.Data{
		Offset: []wasm.Instr{wasm.ConstI32(int32(addr))},
		Bytes:  bytes,
	})
	g.memTop += uint32(len(bytes))
	return addr
}

// constBytes serializes a constant initializer for a data segment.
func constBytes(e Expr, typ *CType) ([]byte, error) {
	// Unwrap implicit conversion casts around literals.
	for {
		c, ok := e.(*Cast)
		if !ok {
			break
		}
		e = c.X
	}
	size := typ.Size()
	out := make([]byte, size)
	switch lit := e.(type) {
	case *IntLit:
		v := uint64(lit.Val)
		for i := 0; i < size && i < 8; i++ {
			out[i] = byte(v >> (8 * i))
		}
		return out, nil
	case *FloatLit:
		switch lowerType(typ) {
		case lowF32:
			bits := f32bits(float32(lit.Val))
			for i := 0; i < 4; i++ {
				out[i] = byte(bits >> (8 * i))
			}
		default:
			bits := f64bits(lit.Val)
			for i := 0; i < 8 && i < size; i++ {
				out[i] = byte(bits >> (8 * i))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported constant initializer")
}
