package cc

import (
	"fmt"
	"strings"
)

// CKind classifies semantic C types.
type CKind int

// C type kinds. The data model is ILP32 (wasm32): int and long are 32
// bits, long long is 64, pointers are 4 bytes — matching Emscripten.
const (
	KVoid CKind = iota
	KBool
	KChar  // plain char, distinct from signed/unsigned char
	KInt   // integer types with explicit Bits and Signed
	KFloat // float (32), double (64), long double (128)
	KComplex
	KPointer
	KArray
	KStruct // also classes, with Record.IsClass
	KUnion
	KEnum
	KFunc
	KTypedef
	KConst
)

// Field is a member of a struct, class, or union.
type Field struct {
	Name   string
	Type   *CType
	Offset int
}

// Record is the definition of a struct, class, or union.
type Record struct {
	Name       string
	IsClass    bool
	IsUnion    bool
	Fields     []Field
	Size       int
	Align      int
	Incomplete bool // forward declaration
}

// EnumDef is the definition of an enum.
type EnumDef struct {
	Name    string
	Members []string
	Values  []int64
}

// CType is a semantic C type.
type CType struct {
	Kind   CKind
	Bits   int  // KInt, KFloat
	Signed bool // KInt
	Elem   *CType
	Len    int // KArray
	Record *Record
	Enum   *EnumDef
	// KTypedef:
	Name       string
	Underlying *CType
	// KFunc:
	Ret    *CType
	Params []*CType
	// paramNames holds declared parameter names parallel to Params (may
	// contain empty strings for unnamed prototype parameters).
	paramNames []string
	variadic   bool
}

// Variadic reports whether the function type has a trailing ellipsis.
func (t *CType) Variadic() bool { return t.variadic }

// Singleton scalar types.
var (
	tVoid       = &CType{Kind: KVoid}
	tBool       = &CType{Kind: KBool}
	tChar       = &CType{Kind: KChar}
	tSChar      = &CType{Kind: KInt, Bits: 8, Signed: true}
	tUChar      = &CType{Kind: KInt, Bits: 8, Signed: false}
	tShort      = &CType{Kind: KInt, Bits: 16, Signed: true}
	tUShort     = &CType{Kind: KInt, Bits: 16, Signed: false}
	tInt        = &CType{Kind: KInt, Bits: 32, Signed: true}
	tUInt       = &CType{Kind: KInt, Bits: 32, Signed: false}
	tLongLong   = &CType{Kind: KInt, Bits: 64, Signed: true}
	tULongLong  = &CType{Kind: KInt, Bits: 64, Signed: false}
	tFloat      = &CType{Kind: KFloat, Bits: 32}
	tDouble     = &CType{Kind: KFloat, Bits: 64}
	tLongDouble = &CType{Kind: KFloat, Bits: 128}
	tComplex    = &CType{Kind: KComplex}
)

// Ptr returns a pointer to elem.
func Ptr(elem *CType) *CType { return &CType{Kind: KPointer, Elem: elem} }

// ConstOf returns a const-qualified t (idempotent).
func ConstOf(t *CType) *CType {
	if t.Kind == KConst {
		return t
	}
	return &CType{Kind: KConst, Elem: t}
}

// Unqualified strips const qualifiers.
func (t *CType) Unqualified() *CType {
	for t.Kind == KConst {
		t = t.Elem
	}
	return t
}

// Resolved strips typedefs and const qualifiers down to the structural type.
func (t *CType) Resolved() *CType {
	for {
		switch t.Kind {
		case KConst:
			t = t.Elem
		case KTypedef:
			t = t.Underlying
		default:
			return t
		}
	}
}

// Size returns the type's size in bytes under the wasm32 (ILP32) model.
func (t *CType) Size() int {
	switch t.Kind {
	case KVoid:
		return 1 // GNU extension for pointer arithmetic on void*
	case KBool, KChar:
		return 1
	case KInt:
		return t.Bits / 8
	case KFloat:
		return t.Bits / 8
	case KComplex:
		return 16
	case KPointer, KFunc:
		return 4
	case KEnum:
		return 4
	case KArray:
		return t.Len * t.Elem.Size()
	case KStruct, KUnion:
		return t.Record.Size
	case KTypedef:
		return t.Underlying.Size()
	case KConst:
		return t.Elem.Size()
	}
	return 4
}

// Align returns the type's alignment in bytes.
func (t *CType) Align() int {
	switch t.Kind {
	case KArray:
		return t.Elem.Align()
	case KStruct, KUnion:
		if t.Record.Align == 0 {
			return 1
		}
		return t.Record.Align
	case KTypedef:
		return t.Underlying.Align()
	case KConst:
		return t.Elem.Align()
	case KFloat:
		if t.Bits == 128 {
			return 8
		}
		return t.Bits / 8
	case KComplex:
		return 8
	}
	if s := t.Size(); s > 0 && s <= 8 {
		return s
	}
	return 4
}

// Layout computes field offsets, size, and alignment of a record.
func (r *Record) Layout() {
	if r.IsUnion {
		size, align := 0, 1
		for i := range r.Fields {
			r.Fields[i].Offset = 0
			if s := r.Fields[i].Type.Size(); s > size {
				size = s
			}
			if a := r.Fields[i].Type.Align(); a > align {
				align = a
			}
		}
		r.Size, r.Align = roundUp(size, align), align
		return
	}
	off, align := 0, 1
	for i := range r.Fields {
		a := r.Fields[i].Type.Align()
		if a > align {
			align = a
		}
		off = roundUp(off, a)
		r.Fields[i].Offset = off
		off += r.Fields[i].Type.Size()
	}
	if off == 0 {
		off = 1 // empty structs occupy one byte, as in C++
	}
	r.Size, r.Align = roundUp(off, align), align
}

func roundUp(n, align int) int {
	if align <= 1 {
		return n
	}
	return (n + align - 1) / align * align
}

// Field returns the named field and true if present.
func (r *Record) Field(name string) (Field, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsInteger reports whether the resolved type is integral (including bool,
// char, and enums).
func (t *CType) IsInteger() bool {
	switch t.Resolved().Kind {
	case KBool, KChar, KInt, KEnum:
		return true
	}
	return false
}

// IsFloat reports whether the resolved type is floating-point.
func (t *CType) IsFloat() bool {
	k := t.Resolved().Kind
	return k == KFloat || k == KComplex
}

// IsArith reports whether the resolved type is arithmetic.
func (t *CType) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsPointer reports whether the resolved type is a pointer (or array,
// which decays).
func (t *CType) IsPointer() bool {
	k := t.Resolved().Kind
	return k == KPointer || k == KArray || k == KFunc
}

// PointerElem returns the pointee type of a pointer or the element type of
// an array, or nil.
func (t *CType) PointerElem() *CType {
	rt := t.Resolved()
	if rt.Kind == KPointer || rt.Kind == KArray {
		return rt.Elem
	}
	return nil
}

// IsVoid reports whether the resolved type is void.
func (t *CType) IsVoid() bool { return t.Resolved().Kind == KVoid }

// IntInfo returns (bits, signed) of an integral type after integer
// promotion semantics: bool/char/enum behave as their machine widths.
func (t *CType) IntInfo() (int, bool) {
	switch rt := t.Resolved(); rt.Kind {
	case KBool:
		return 8, false
	case KChar:
		return 8, true
	case KEnum:
		return 32, true
	case KInt:
		return rt.Bits, rt.Signed
	}
	return 32, true
}

// String renders the type in C-ish syntax for diagnostics.
func (t *CType) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KBool:
		return "bool"
	case KChar:
		return "char"
	case KInt:
		sign := ""
		if !t.Signed {
			sign = "unsigned "
		}
		switch t.Bits {
		case 8:
			return sign + "char" // signed/unsigned char
		case 16:
			return sign + "short"
		case 32:
			return sign + "int"
		case 64:
			return sign + "long long"
		}
		return fmt.Sprintf("%sint%d", sign, t.Bits)
	case KFloat:
		switch t.Bits {
		case 32:
			return "float"
		case 64:
			return "double"
		case 128:
			return "long double"
		}
		return fmt.Sprintf("float%d", t.Bits)
	case KComplex:
		return "double _Complex"
	case KPointer:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case KStruct:
		kw := "struct"
		if t.Record.IsClass {
			kw = "class"
		}
		return kw + " " + t.Record.Name
	case KUnion:
		return "union " + t.Record.Name
	case KEnum:
		return "enum " + t.Enum.Name
	case KFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(*)(%s)", t.Ret, strings.Join(ps, ", "))
	case KTypedef:
		return t.Name
	case KConst:
		return "const " + t.Elem.String()
	}
	return "?"
}
