// Package cc implements a small C compiler targeting WebAssembly with
// DWARF debug information. It stands in for the Emscripten/LLVM toolchain
// the paper uses to build its training corpus: the supported subset is
// large enough to express the function shapes and type usage patterns that
// drive type recovery, and the emitted binaries carry real .debug_info /
// .debug_abbrev / .debug_str custom sections with DW_AT_low_pc values that
// point into the code section, so the extraction pipeline can match
// functions to their source types exactly as with real-world binaries.
package cc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokIntLit
	tokFloatLit
	tokCharLit
	tokStringLit
	tokPunct
)

type token struct {
	kind tokKind
	text string
	// For literals.
	intVal   int64
	floatVal float64
	strVal   string
	line     int
}

var keywords = map[string]bool{
	"void": true, "bool": true, "_Bool": true, "char": true, "short": true,
	"int": true, "long": true, "unsigned": true, "signed": true,
	"float": true, "double": true, "_Complex": true,
	"struct": true, "class": true, "union": true, "enum": true,
	"typedef": true, "const": true, "volatile": true, "restrict": true,
	"extern": true, "static": true, "inline": true,
	"return": true, "if": true, "else": true, "while": true, "for": true,
	"do": true, "break": true, "continue": true, "sizeof": true,
	"switch": true, "case": true, "default": true,
	"NULL": false, // not a keyword; handled as identifier
}

// lexer tokenizes a source file.
type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...))
}

// lexAll tokenizes the entire input.
func (l *lexer) lexAll() ([]token, error) {
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(s string) bool {
	return strings.HasPrefix(l.src[l.pos:], s)
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case l.at("//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case l.at("/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case c == '#':
			// Preprocessor lines (e.g. #include) are ignored: the corpus
			// generator emits self-contained translation units.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%",
	"<", ">", "=", "!", "&", "|", "^", "~", "?", ":",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, line: l.line}, nil
		}
		return token{kind: tokIdent, text: text, line: l.line}, nil

	case c >= '0' && c <= '9':
		return l.lexNumber()

	case c == '\'':
		return l.lexCharLit()

	case c == '"':
		return l.lexStringLit()
	}

	for _, p := range puncts {
		if l.at(p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: l.line}, nil
		}
	}
	return token{}, l.errorf("unexpected character %q", string(rune(c)))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isFloat := false
	if l.at("0x") || l.at("0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
	} else {
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			if l.src[l.pos] == '.' {
				if isFloat {
					break
				}
				isFloat = true
			}
			l.pos++
		}
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	text := l.src[start:l.pos]
	// Consume suffixes (u, l, ll, f) without changing the value model.
	suffix := ""
	for l.pos < len(l.src) && strings.ContainsRune("uUlLfF", rune(l.src[l.pos])) {
		suffix += string(l.src[l.pos])
		l.pos++
	}
	if isFloat || strings.ContainsAny(suffix, "fF") {
		var v float64
		if _, err := fmt.Sscanf(text, "%g", &v); err != nil {
			return token{}, l.errorf("bad float literal %q", text)
		}
		return token{kind: tokFloatLit, text: text, floatVal: v, line: l.line}, nil
	}
	var v int64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		_, err = fmt.Sscanf(text, "%v", &v)
	} else {
		_, err = fmt.Sscanf(text, "%d", &v)
	}
	if err != nil {
		return token{}, l.errorf("bad integer literal %q", text)
	}
	return token{kind: tokIntLit, text: text, intVal: v, line: l.line}, nil
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c|0x20 >= 'a' && c|0x20 <= 'f') }

func (l *lexer) lexCharLit() (token, error) {
	l.pos++ // opening quote
	if l.pos >= len(l.src) {
		return token{}, l.errorf("unterminated character literal")
	}
	var v int64
	if l.src[l.pos] == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated escape")
		}
		r, err := unescape(l.src[l.pos])
		if err != nil {
			return token{}, l.errorf("%v", err)
		}
		v = int64(r)
		l.pos++
	} else {
		v = int64(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return token{}, l.errorf("unterminated character literal")
	}
	l.pos++
	return token{kind: tokCharLit, intVal: v, line: l.line}, nil
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, fmt.Errorf("unknown escape \\%c", c)
}

func (l *lexer) lexStringLit() (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokStringLit, strVal: sb.String(), line: l.line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated escape")
			}
			r, err := unescape(l.src[l.pos])
			if err != nil {
				return token{}, l.errorf("%v", err)
			}
			sb.WriteByte(r)
			l.pos++
		case '\n':
			return token{}, l.errorf("newline in string literal")
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf("unterminated string literal")
}
