package cc

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/wasm"
)

// Options configures a compilation.
type Options struct {
	// FileName names the translation unit in diagnostics and DWARF.
	FileName string
	// Debug embeds DWARF sections (the -g flag). The dataset pipeline
	// requires it; reverse-engineering scenarios strip it afterwards.
	Debug bool
	// Producer is the DW_AT_producer string.
	Producer string
}

// Object is the result of compiling one translation unit: an in-memory
// module, its serialized binary, and the code-section layout used to match
// functions to DWARF.
type Object struct {
	Module *wasm.Module
	Binary []byte
	Layout *wasm.Layout
	Unit   *Unit
}

// Compile compiles a C translation unit to a WebAssembly object file.
func Compile(src string, opts Options) (*Object, error) {
	if opts.FileName == "" {
		opts.FileName = "input.c"
	}
	if opts.Producer == "" {
		opts.Producer = "snowwhite-cc (repro)"
	}
	unit, err := parseUnit(opts.FileName, src)
	if err != nil {
		return nil, err
	}
	mod, err := generate(unit)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", opts.FileName, err)
	}
	bin, layout, err := wasm.Encode(mod)
	if err != nil {
		return nil, fmt.Errorf("%s: encode: %w", opts.FileName, err)
	}
	if opts.Debug {
		secs, err := emitDWARF(unit, layout, opts.Producer)
		if err != nil {
			return nil, fmt.Errorf("%s: dwarf: %w", opts.FileName, err)
		}
		dwarf.Embed(mod, secs)
		// Debug builds also carry the standard "name" section, as
		// Emscripten emits with -g.
		wasm.AttachNames(mod, opts.FileName)
		// Custom sections follow the code section, so re-encoding does
		// not move the recorded code offsets (verified in tests).
		if bin, layout, err = wasm.Encode(mod); err != nil {
			return nil, fmt.Errorf("%s: re-encode: %w", opts.FileName, err)
		}
	}
	return &Object{Module: mod, Binary: bin, Layout: layout, Unit: unit}, nil
}
