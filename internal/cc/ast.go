package cc

// Expr is a typed expression node. Every expression carries its semantic C
// type, assigned during parsing.
type Expr interface {
	CType() *CType
}

type exprBase struct {
	typ *CType
}

func (e *exprBase) CType() *CType { return e.typ }

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymVar SymKind = iota
	SymFunc
	SymEnumConst
)

// Symbol is a named entity: variable, function, or enum constant.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   *CType
	Global bool
	// EnumVal is set for enum constants.
	EnumVal int64
	// Storage assigned by codegen.
	LocalIdx int    // wasm local index for locals/params
	Addr     uint32 // linear memory address for globals
	FuncIdx  uint32 // function index space position for functions
	Defined  bool   // function has a body / global is defined here
}

// Ident references a variable or enum constant.
type Ident struct {
	exprBase
	Sym *Symbol
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StringLit is a string literal; codegen places it in a data segment.
type StringLit struct {
	exprBase
	Val string
}

// Unary is a prefix operator: - ! ~ * & ++ --.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is an infix arithmetic/logical/comparison operator.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is an assignment, possibly compound (+=, -=, ...).
type Assign struct {
	exprBase
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// Cond is the ternary conditional operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call invokes a named function.
type Call struct {
	exprBase
	Func *Symbol
	Args []Expr
}

// Index is array/pointer subscripting.
type Index struct {
	exprBase
	X, I Expr
}

// Member accesses a struct/union field, via value (.) or pointer (->).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field Field
}

// Cast converts an expression to an explicit type.
type Cast struct {
	exprBase
	X Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Sizeof yields the size of a type.
type Sizeof struct {
	exprBase
	Of *CType
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	E Expr
}

// Return exits the function, optionally with a value.
type Return struct {
	E Expr // nil for void returns
}

// If is a conditional statement.
type If struct {
	C    Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop; DoFirst distinguishes do/while.
type While struct {
	C       Expr
	Body    Stmt
	DoFirst bool
}

// For is a for loop; any of Init/Cond/Post may be nil.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Switch is a C switch statement. The supported subset requires case
// bodies to be statement lists ending implicitly at the next case (with
// C's usual fallthrough semantics).
type Switch struct {
	Tag     Expr
	Cases   []SwitchCase
	Default []Stmt // nil if absent
}

// SwitchCase is one `case N:` arm.
type SwitchCase struct {
	Value int64
	Body  []Stmt
}

// Break exits the innermost loop or switch.
type Break struct{}

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{}

// LocalDecl declares a local variable, optionally initialized.
type LocalDecl struct {
	Sym  *Symbol
	Init Expr // may be nil
}

// Empty is the empty statement.
type Empty struct{}

func (*Block) stmt()     {}
func (*ExprStmt) stmt()  {}
func (*Return) stmt()    {}
func (*If) stmt()        {}
func (*While) stmt()     {}
func (*For) stmt()       {}
func (*Switch) stmt()    {}
func (*Break) stmt()     {}
func (*Continue) stmt()  {}
func (*LocalDecl) stmt() {}
func (*Empty) stmt()     {}

// Param is a function parameter.
type Param struct {
	Name string
	Type *CType
}

// FuncDecl is a function definition or prototype.
type FuncDecl struct {
	Name     string
	Ret      *CType
	Params   []Param
	Body     *Block // nil for prototypes (extern functions)
	Sym      *Symbol
	Locals   []*Symbol // all block-scoped locals, collected by the parser
	IsExtern bool
}

// Unit is one parsed translation unit.
type Unit struct {
	File    string
	Funcs   []*FuncDecl
	Globals []*Symbol
	// GlobalInits holds initializers parallel to Globals (nil entries mean
	// zero initialization).
	GlobalInits []Expr
	Records     []*Record
	Enums       []*EnumDef
	Typedefs    map[string]*CType
}
