package cc

import (
	"fmt"
	"math"

	"repro/internal/wasm"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }

// loadOp returns the load instruction and natural alignment exponent for a
// scalar type, or ok=false for aggregates (whose "value" is their address).
func loadOp(t *CType) (wasm.Opcode, int64, bool) {
	switch rt := t.Resolved(); rt.Kind {
	case KBool:
		return wasm.OpI32Load8U, 0, true
	case KChar:
		return wasm.OpI32Load8S, 0, true
	case KInt:
		switch {
		case rt.Bits == 8 && rt.Signed:
			return wasm.OpI32Load8S, 0, true
		case rt.Bits == 8:
			return wasm.OpI32Load8U, 0, true
		case rt.Bits == 16 && rt.Signed:
			return wasm.OpI32Load16S, 1, true
		case rt.Bits == 16:
			return wasm.OpI32Load16U, 1, true
		case rt.Bits == 64:
			return wasm.OpI64Load, 3, true
		default:
			return wasm.OpI32Load, 2, true
		}
	case KEnum, KPointer, KFunc:
		return wasm.OpI32Load, 2, true
	case KFloat:
		if rt.Bits == 32 {
			return wasm.OpF32Load, 2, true
		}
		return wasm.OpF64Load, 3, true
	case KComplex:
		return wasm.OpF64Load, 3, true
	}
	return 0, 0, false
}

// storeOp returns the store instruction and alignment for a scalar type.
func storeOp(t *CType) (wasm.Opcode, int64, bool) {
	switch rt := t.Resolved(); rt.Kind {
	case KBool, KChar:
		return wasm.OpI32Store8, 0, true
	case KInt:
		switch rt.Bits {
		case 8:
			return wasm.OpI32Store8, 0, true
		case 16:
			return wasm.OpI32Store16, 1, true
		case 64:
			return wasm.OpI64Store, 3, true
		default:
			return wasm.OpI32Store, 2, true
		}
	case KEnum, KPointer, KFunc:
		return wasm.OpI32Store, 2, true
	case KFloat:
		if rt.Bits == 32 {
			return wasm.OpF32Store, 2, true
		}
		return wasm.OpF64Store, 3, true
	case KComplex:
		return wasm.OpF64Store, 3, true
	}
	return 0, 0, false
}

// genAddr emits the address of a memory lvalue and returns a constant byte
// offset the caller folds into the load/store offset immediate — matching
// how LLVM emits struct field accesses (e.g. `f64.load offset=8`).
func (g *codegen) genAddr(e Expr) (int64, error) {
	switch x := e.(type) {
	case *Ident:
		if !x.Sym.Global {
			return 0, fmt.Errorf("cc: local %q has no address", x.Sym.Name)
		}
		g.emit(wasm.ConstI32(0))
		return int64(x.Sym.Addr), nil

	case *Unary:
		if x.Op != "*" {
			return 0, fmt.Errorf("cc: not an lvalue: unary %q", x.Op)
		}
		if err := g.genExpr(x.X); err != nil {
			return 0, err
		}
		return 0, nil

	case *Index:
		if err := g.genExpr(x.X); err != nil {
			return 0, err
		}
		if err := g.genIndexOffset(x.I, x.CType().Size()); err != nil {
			return 0, err
		}
		g.emit(wasm.I(wasm.OpI32Add))
		return 0, nil

	case *Member:
		if x.Arrow {
			if err := g.genExpr(x.X); err != nil {
				return 0, err
			}
			return int64(x.Field.Offset), nil
		}
		off, err := g.genAddr(x.X)
		if err != nil {
			return 0, err
		}
		return off + int64(x.Field.Offset), nil

	case *Cast:
		// Pointer-typed casts preserve the address computation.
		return g.genAddr(x.X)
	}
	return 0, fmt.Errorf("cc: expression %T is not a memory lvalue", e)
}

// genIndexOffset emits idx*size as an i32.
func (g *codegen) genIndexOffset(idx Expr, size int) error {
	if err := g.genExpr(idx); err != nil {
		return err
	}
	if lowerType(idx.CType()) == lowI64 {
		g.emit(wasm.I(wasm.OpI32WrapI64))
	}
	if size != 1 {
		g.emit(wasm.ConstI32(int32(size)), wasm.I(wasm.OpI32Mul))
	}
	return nil
}

// genExpr emits code leaving the expression's value on the stack.
func (g *codegen) genExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		if lowerType(x.CType()) == lowI64 {
			g.emit(wasm.ConstI64(x.Val))
		} else {
			g.emit(wasm.ConstI32(int32(x.Val)))
		}
		return nil

	case *FloatLit:
		if lowerType(x.CType()) == lowF32 {
			g.emit(wasm.ConstF32(float32(x.Val)))
		} else {
			g.emit(wasm.ConstF64(x.Val))
		}
		return nil

	case *StringLit:
		g.emit(wasm.ConstI32(int32(g.internString(x.Val))))
		return nil

	case *Sizeof:
		g.emit(wasm.ConstI32(int32(x.Of.Size())))
		return nil

	case *Ident:
		return g.genIdent(x)

	case *Unary:
		return g.genUnary(x)

	case *Binary:
		return g.genBinary(x)

	case *Assign:
		return g.genAssign(x, true)

	case *Cond:
		if err := g.genExpr(x.C); err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpIf, int64(lowerType(x.CType()).val())))
		g.pushCtrl(labelIf)
		if err := g.genExpr(x.T); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpElse))
		if err := g.genExpr(x.F); err != nil {
			return err
		}
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd))
		return nil

	case *Call:
		return g.genCall(x)

	case *Index, *Member:
		return g.genLoad(e)

	case *Cast:
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		return g.genConvert(x.X.CType(), x.CType())

	case *Postfix:
		return g.genIncDec(x.X, x.Op == "++", true, false)
	}
	return fmt.Errorf("cc: unknown expression %T", e)
}

func (g *codegen) genIdent(x *Ident) error {
	sym := x.Sym
	if sym.Kind == SymFunc {
		return fmt.Errorf("cc: taking the value of function %q is not supported", sym.Name)
	}
	if !sym.Global {
		g.emit(wasm.I1(wasm.OpLocalGet, int64(sym.LocalIdx)))
		return nil
	}
	// Globals live in linear memory.
	op, align, scalar := loadOp(sym.Type)
	if !scalar {
		// Aggregates and arrays evaluate to their address.
		g.emit(wasm.ConstI32(int32(sym.Addr)))
		return nil
	}
	g.emit(wasm.ConstI32(0), wasm.Mem(op, align, int64(sym.Addr)))
	return nil
}

// genLoad emits a load of a memory lvalue (Index or Member).
func (g *codegen) genLoad(e Expr) error {
	off, err := g.genAddr(e)
	if err != nil {
		return err
	}
	op, align, scalar := loadOp(e.CType())
	if !scalar {
		// The aggregate's value is its address.
		if off != 0 {
			g.emit(wasm.ConstI32(int32(off)), wasm.I(wasm.OpI32Add))
		}
		return nil
	}
	g.emit(wasm.Mem(op, align, off))
	return nil
}

func (g *codegen) genUnary(x *Unary) error {
	switch x.Op {
	case "-":
		k := lowerType(x.CType())
		switch k {
		case lowF32:
			if err := g.genExpr(x.X); err != nil {
				return err
			}
			g.emit(wasm.I(wasm.OpF32Neg))
		case lowF64:
			if err := g.genExpr(x.X); err != nil {
				return err
			}
			g.emit(wasm.I(wasm.OpF64Neg))
		case lowI64:
			g.emit(wasm.ConstI64(0))
			if err := g.genExpr(x.X); err != nil {
				return err
			}
			g.emit(wasm.I(wasm.OpI64Sub))
		default:
			g.emit(wasm.ConstI32(0))
			if err := g.genExpr(x.X); err != nil {
				return err
			}
			g.emit(wasm.I(wasm.OpI32Sub))
		}
		return nil

	case "!":
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Eqz))
		return nil

	case "~":
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		if lowerType(x.CType()) == lowI64 {
			g.emit(wasm.ConstI64(-1), wasm.I(wasm.OpI64Xor))
		} else {
			g.emit(wasm.ConstI32(-1), wasm.I(wasm.OpI32Xor))
		}
		return nil

	case "*":
		off, err := g.genAddrDeref(x)
		if err != nil {
			return err
		}
		op, align, scalar := loadOp(x.CType())
		if !scalar {
			if off != 0 {
				g.emit(wasm.ConstI32(int32(off)), wasm.I(wasm.OpI32Add))
			}
			return nil
		}
		g.emit(wasm.Mem(op, align, off))
		return nil

	case "&":
		off, err := g.genAddr(x.X)
		if err != nil {
			return err
		}
		if off != 0 {
			g.emit(wasm.ConstI32(int32(off)), wasm.I(wasm.OpI32Add))
		}
		return nil

	case "++", "--":
		return g.genIncDec(x.X, x.Op == "++", true, true)
	}
	return fmt.Errorf("cc: unknown unary operator %q", x.Op)
}

// genAddrDeref emits the address for *p.
func (g *codegen) genAddrDeref(x *Unary) (int64, error) {
	if err := g.genExpr(x.X); err != nil {
		return 0, err
	}
	return 0, nil
}

func (g *codegen) genCall(x *Call) error {
	ft := x.Func.Type.Resolved()
	// Variadic extras are evaluated for their side effects and dropped:
	// the wasm import has a fixed signature (see DESIGN.md).
	for _, a := range x.Args[len(ft.Params):] {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpDrop))
	}
	for _, a := range x.Args[:len(ft.Params)] {
		if err := g.genExpr(a); err != nil {
			return err
		}
	}
	g.emit(wasm.I1(wasm.OpCall, int64(g.funcIdx[x.Func])))
	return nil
}

// signedOf reports whether the expression's integer type is signed.
func signedOf(e Expr) bool {
	_, s := e.CType().IntInfo()
	return s
}

var i32BinOps = map[string][2]wasm.Opcode{ // [signed, unsigned]
	"+":  {wasm.OpI32Add, wasm.OpI32Add},
	"-":  {wasm.OpI32Sub, wasm.OpI32Sub},
	"*":  {wasm.OpI32Mul, wasm.OpI32Mul},
	"/":  {wasm.OpI32DivS, wasm.OpI32DivU},
	"%":  {wasm.OpI32RemS, wasm.OpI32RemU},
	"&":  {wasm.OpI32And, wasm.OpI32And},
	"|":  {wasm.OpI32Or, wasm.OpI32Or},
	"^":  {wasm.OpI32Xor, wasm.OpI32Xor},
	"<<": {wasm.OpI32Shl, wasm.OpI32Shl},
	">>": {wasm.OpI32ShrS, wasm.OpI32ShrU},
	"==": {wasm.OpI32Eq, wasm.OpI32Eq},
	"!=": {wasm.OpI32Ne, wasm.OpI32Ne},
	"<":  {wasm.OpI32LtS, wasm.OpI32LtU},
	">":  {wasm.OpI32GtS, wasm.OpI32GtU},
	"<=": {wasm.OpI32LeS, wasm.OpI32LeU},
	">=": {wasm.OpI32GeS, wasm.OpI32GeU},
}

var i64BinOps = map[string][2]wasm.Opcode{
	"+":  {wasm.OpI64Add, wasm.OpI64Add},
	"-":  {wasm.OpI64Sub, wasm.OpI64Sub},
	"*":  {wasm.OpI64Mul, wasm.OpI64Mul},
	"/":  {wasm.OpI64DivS, wasm.OpI64DivU},
	"%":  {wasm.OpI64RemS, wasm.OpI64RemU},
	"&":  {wasm.OpI64And, wasm.OpI64And},
	"|":  {wasm.OpI64Or, wasm.OpI64Or},
	"^":  {wasm.OpI64Xor, wasm.OpI64Xor},
	"<<": {wasm.OpI64Shl, wasm.OpI64Shl},
	">>": {wasm.OpI64ShrS, wasm.OpI64ShrU},
	"==": {wasm.OpI64Eq, wasm.OpI64Eq},
	"!=": {wasm.OpI64Ne, wasm.OpI64Ne},
	"<":  {wasm.OpI64LtS, wasm.OpI64LtU},
	">":  {wasm.OpI64GtS, wasm.OpI64GtU},
	"<=": {wasm.OpI64LeS, wasm.OpI64LeU},
	">=": {wasm.OpI64GeS, wasm.OpI64GeU},
}

var f32BinOps = map[string]wasm.Opcode{
	"+": wasm.OpF32Add, "-": wasm.OpF32Sub, "*": wasm.OpF32Mul, "/": wasm.OpF32Div,
	"==": wasm.OpF32Eq, "!=": wasm.OpF32Ne, "<": wasm.OpF32Lt, ">": wasm.OpF32Gt,
	"<=": wasm.OpF32Le, ">=": wasm.OpF32Ge,
}

var f64BinOps = map[string]wasm.Opcode{
	"+": wasm.OpF64Add, "-": wasm.OpF64Sub, "*": wasm.OpF64Mul, "/": wasm.OpF64Div,
	"==": wasm.OpF64Eq, "!=": wasm.OpF64Ne, "<": wasm.OpF64Lt, ">": wasm.OpF64Gt,
	"<=": wasm.OpF64Le, ">=": wasm.OpF64Ge,
}

func (g *codegen) genBinary(x *Binary) error {
	switch x.Op {
	case "&&":
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpIf, int64(wasm.I32)))
		g.pushCtrl(labelIf)
		if err := g.genExpr(x.Y); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Eqz), wasm.I(wasm.OpI32Eqz))
		g.emit(wasm.I(wasm.OpElse), wasm.ConstI32(0))
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd))
		return nil

	case "||":
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpIf, int64(wasm.I32)))
		g.pushCtrl(labelIf)
		g.emit(wasm.ConstI32(1))
		g.emit(wasm.I(wasm.OpElse))
		if err := g.genExpr(x.Y); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Eqz), wasm.I(wasm.OpI32Eqz))
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd))
		return nil
	}

	xt, yt := x.X.CType(), x.Y.CType()
	// Pointer arithmetic: scale the integer operand by the element size.
	if xt.IsPointer() && yt.IsInteger() && (x.Op == "+" || x.Op == "-") {
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		size := 1
		if el := xt.PointerElem(); el != nil {
			size = el.Size()
		}
		if err := g.genIndexOffset(x.Y, size); err != nil {
			return err
		}
		if x.Op == "+" {
			g.emit(wasm.I(wasm.OpI32Add))
		} else {
			g.emit(wasm.I(wasm.OpI32Sub))
		}
		return nil
	}
	if x.Op == "+" && xt.IsInteger() && yt.IsPointer() {
		if err := g.genExpr(x.Y); err != nil {
			return err
		}
		size := 1
		if el := yt.PointerElem(); el != nil {
			size = el.Size()
		}
		if err := g.genIndexOffset(x.X, size); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Add))
		return nil
	}
	if x.Op == "-" && xt.IsPointer() && yt.IsPointer() {
		if err := g.genExpr(x.X); err != nil {
			return err
		}
		if err := g.genExpr(x.Y); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Sub))
		size := 1
		if el := xt.PointerElem(); el != nil {
			size = el.Size()
		}
		if size != 1 {
			g.emit(wasm.ConstI32(int32(size)), wasm.I(wasm.OpI32DivS))
		}
		return nil
	}

	if err := g.genExpr(x.X); err != nil {
		return err
	}
	if err := g.genExpr(x.Y); err != nil {
		return err
	}
	// Operand kind drives the opcode (comparisons have i32 results but
	// operand-typed instructions).
	k := lowerType(xt)
	sIdx := 1
	if signedOf(x.X) {
		sIdx = 0
	}
	switch k {
	case lowI32:
		ops, ok := i32BinOps[x.Op]
		if !ok {
			return fmt.Errorf("cc: no i32 op for %q", x.Op)
		}
		g.emit(wasm.I(ops[sIdx]))
	case lowI64:
		ops, ok := i64BinOps[x.Op]
		if !ok {
			return fmt.Errorf("cc: no i64 op for %q", x.Op)
		}
		g.emit(wasm.I(ops[sIdx]))
	case lowF32:
		op, ok := f32BinOps[x.Op]
		if !ok {
			return fmt.Errorf("cc: no f32 op for %q", x.Op)
		}
		g.emit(wasm.I(op))
	case lowF64:
		op, ok := f64BinOps[x.Op]
		if !ok {
			return fmt.Errorf("cc: no f64 op for %q", x.Op)
		}
		g.emit(wasm.I(op))
	}
	return nil
}

// scratchPair allocates distinct scratch locals keyed by type and slot.
func (g *codegen) scratchSlot(vt wasm.ValType, slot int) int {
	key := wasm.ValType(int(vt)*8 + slot) // distinct synthetic key
	if idx, ok := g.scratch[key]; ok {
		return idx
	}
	idx := g.newLocal(vt)
	g.scratch[key] = idx
	return idx
}

// genAssign emits an assignment; if wantValue, the stored value remains on
// the stack.
func (g *codegen) genAssign(x *Assign, wantValue bool) error {
	if id, ok := x.LHS.(*Ident); ok && !id.Sym.Global {
		if err := g.genExpr(x.RHS); err != nil {
			return err
		}
		if wantValue {
			g.emit(wasm.I1(wasm.OpLocalTee, int64(id.Sym.LocalIdx)))
		} else {
			g.emit(wasm.I1(wasm.OpLocalSet, int64(id.Sym.LocalIdx)))
		}
		return nil
	}
	off, err := g.genAddr(x.LHS)
	if err != nil {
		return err
	}
	if err := g.genExpr(x.RHS); err != nil {
		return err
	}
	vt := lowerType(x.LHS.CType()).val()
	var valLocal int
	if wantValue {
		valLocal = g.scratchSlot(vt, 0)
		g.emit(wasm.I1(wasm.OpLocalTee, int64(valLocal)))
	}
	op, align, scalar := storeOp(x.LHS.CType())
	if !scalar {
		return fmt.Errorf("cc: cannot assign aggregate %s", x.LHS.CType())
	}
	g.emit(wasm.Mem(op, align, off))
	if wantValue {
		g.emit(wasm.I1(wasm.OpLocalGet, int64(valLocal)))
	}
	return nil
}

// genIncDec lowers ++/-- on an lvalue. pre selects prefix semantics (value
// is the new value); wantValue keeps a value on the stack.
func (g *codegen) genIncDec(lv Expr, inc, wantValue, pre bool) error {
	t := lv.CType()
	amount := int64(1)
	if el := t.PointerElem(); el != nil {
		amount = int64(el.Size())
	}
	k := lowerType(t)

	addAmount := func() {
		switch k {
		case lowI64:
			g.emit(wasm.ConstI64(amount))
			if inc {
				g.emit(wasm.I(wasm.OpI64Add))
			} else {
				g.emit(wasm.I(wasm.OpI64Sub))
			}
		case lowF32:
			g.emit(wasm.ConstF32(float32(amount)))
			if inc {
				g.emit(wasm.I(wasm.OpF32Add))
			} else {
				g.emit(wasm.I(wasm.OpF32Sub))
			}
		case lowF64:
			g.emit(wasm.ConstF64(float64(amount)))
			if inc {
				g.emit(wasm.I(wasm.OpF64Add))
			} else {
				g.emit(wasm.I(wasm.OpF64Sub))
			}
		default:
			g.emit(wasm.ConstI32(int32(amount)))
			if inc {
				g.emit(wasm.I(wasm.OpI32Add))
			} else {
				g.emit(wasm.I(wasm.OpI32Sub))
			}
		}
	}

	if id, ok := lv.(*Ident); ok && !id.Sym.Global {
		idx := int64(id.Sym.LocalIdx)
		if wantValue && !pre {
			g.emit(wasm.I1(wasm.OpLocalGet, idx)) // old value
		}
		g.emit(wasm.I1(wasm.OpLocalGet, idx))
		addAmount()
		if wantValue && pre {
			g.emit(wasm.I1(wasm.OpLocalTee, idx))
		} else {
			g.emit(wasm.I1(wasm.OpLocalSet, idx))
		}
		return nil
	}

	// Memory lvalue.
	addrLocal := g.scratchSlot(wasm.I32, 1)
	valLocal := g.scratchSlot(k.val(), 2)
	off, err := g.genAddr(lv)
	if err != nil {
		return err
	}
	g.emit(wasm.I1(wasm.OpLocalSet, int64(addrLocal)))
	op, align, scalar := loadOp(t)
	if !scalar {
		return fmt.Errorf("cc: cannot increment aggregate %s", t)
	}
	g.emit(wasm.I1(wasm.OpLocalGet, int64(addrLocal))) // addr for the store
	g.emit(wasm.I1(wasm.OpLocalGet, int64(addrLocal)), wasm.Mem(op, align, off))
	if wantValue && !pre {
		g.emit(wasm.I1(wasm.OpLocalTee, int64(valLocal))) // old value
	}
	addAmount()
	if wantValue && pre {
		g.emit(wasm.I1(wasm.OpLocalTee, int64(valLocal))) // new value
	}
	sop, salign, _ := storeOp(t)
	g.emit(wasm.Mem(sop, salign, off))
	if wantValue {
		g.emit(wasm.I1(wasm.OpLocalGet, int64(valLocal)))
	}
	return nil
}

// genConvert emits value conversion instructions from type `from` to `to`.
func (g *codegen) genConvert(from, to *CType) error {
	fk, tk := lowerType(from), lowerType(to)
	fs := isSignedForConvert(from)
	ts := isSignedForConvert(to)

	switch {
	case fk == tk:
		// Same machine representation; handle semantic narrowing.
	case fk == lowI32 && tk == lowI64:
		if fs {
			g.emit(wasm.I(wasm.OpI64ExtendI32S))
		} else {
			g.emit(wasm.I(wasm.OpI64ExtendI32U))
		}
	case fk == lowI64 && tk == lowI32:
		g.emit(wasm.I(wasm.OpI32WrapI64))
	case fk == lowI32 && tk == lowF32:
		if fs {
			g.emit(wasm.I(wasm.OpF32ConvertI32S))
		} else {
			g.emit(wasm.I(wasm.OpF32ConvertI32U))
		}
	case fk == lowI32 && tk == lowF64:
		if fs {
			g.emit(wasm.I(wasm.OpF64ConvertI32S))
		} else {
			g.emit(wasm.I(wasm.OpF64ConvertI32U))
		}
	case fk == lowI64 && tk == lowF32:
		if fs {
			g.emit(wasm.I(wasm.OpF32ConvertI64S))
		} else {
			g.emit(wasm.I(wasm.OpF32ConvertI64U))
		}
	case fk == lowI64 && tk == lowF64:
		if fs {
			g.emit(wasm.I(wasm.OpF64ConvertI64S))
		} else {
			g.emit(wasm.I(wasm.OpF64ConvertI64U))
		}
	case fk == lowF32 && tk == lowI32:
		if ts {
			g.emit(wasm.I(wasm.OpI32TruncF32S))
		} else {
			g.emit(wasm.I(wasm.OpI32TruncF32U))
		}
	case fk == lowF64 && tk == lowI32:
		if ts {
			g.emit(wasm.I(wasm.OpI32TruncF64S))
		} else {
			g.emit(wasm.I(wasm.OpI32TruncF64U))
		}
	case fk == lowF32 && tk == lowI64:
		if ts {
			g.emit(wasm.I(wasm.OpI64TruncF32S))
		} else {
			g.emit(wasm.I(wasm.OpI64TruncF32U))
		}
	case fk == lowF64 && tk == lowI64:
		if ts {
			g.emit(wasm.I(wasm.OpI64TruncF64S))
		} else {
			g.emit(wasm.I(wasm.OpI64TruncF64U))
		}
	case fk == lowF32 && tk == lowF64:
		g.emit(wasm.I(wasm.OpF64PromoteF32))
	case fk == lowF64 && tk == lowF32:
		g.emit(wasm.I(wasm.OpF32DemoteF64))
	}

	// Semantic adjustments within the target representation.
	switch rt := to.Resolved(); rt.Kind {
	case KBool:
		if tk == lowI32 && from.Resolved().Kind != KBool {
			g.emit(wasm.ConstI32(0), wasm.I(wasm.OpI32Ne))
		}
	case KChar:
		if needNarrow(from, to) {
			g.emit(wasm.I(wasm.OpI32Extend8S))
		}
	case KInt:
		if tk == lowI32 && needNarrow(from, to) {
			switch {
			case rt.Bits == 8 && rt.Signed:
				g.emit(wasm.I(wasm.OpI32Extend8S))
			case rt.Bits == 8:
				g.emit(wasm.ConstI32(0xff), wasm.I(wasm.OpI32And))
			case rt.Bits == 16 && rt.Signed:
				g.emit(wasm.I(wasm.OpI32Extend16S))
			case rt.Bits == 16:
				g.emit(wasm.ConstI32(0xffff), wasm.I(wasm.OpI32And))
			}
		}
	}
	return nil
}

// needNarrow reports whether a value-level truncation is needed when
// converting to a sub-32-bit integer.
func needNarrow(from, to *CType) bool {
	tb, _ := to.IntInfo()
	if tb >= 32 {
		return false
	}
	if !from.IsInteger() {
		return true
	}
	fb, fsigned := from.IntInfo()
	_, tsigned := to.IntInfo()
	return fb > tb || (fb == tb && fsigned != tsigned)
}

// isSignedForConvert treats pointers and floats as unsigned/signed
// appropriately for conversion opcode selection.
func isSignedForConvert(t *CType) bool {
	rt := t.Resolved()
	switch rt.Kind {
	case KInt:
		return rt.Signed
	case KChar, KEnum:
		return true
	case KBool, KPointer, KFunc:
		return false
	}
	return true
}
