package cc

func (p *parser) parseBlock() (*Block, error) {
	p.pushScope()
	defer p.popScope()
	return p.parseBlockNoScope()
}

// parseBlockNoScope parses a braced statement list in the current scope;
// the function body shares its scope with the parameters, as in C.
func (p *parser) parseBlockNoScope() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.eat("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at("{"):
		return p.parseBlock()

	case p.eat(";"):
		return &Empty{}, nil

	case p.eat("return"):
		if p.eat(";") {
			if !p.curFunc.Ret.IsVoid() {
				return nil, p.errorf("return without value in non-void function %s", p.curFunc.Name)
			}
			return &Return{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.curFunc.Ret.IsVoid() {
			return nil, p.errorf("return with value in void function %s", p.curFunc.Name)
		}
		if e, err = p.convertTo(e, p.curFunc.Ret); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{E: e}, nil

	case p.eat("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if c, err = p.toCondition(c); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.eat("else") {
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &If{C: c, Then: then, Else: els}, nil

	case p.eat("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if c, err = p.toCondition(c); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{C: c, Body: body}, nil

	case p.eat("do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if c, err = p.toCondition(c); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &While{C: c, Body: body, DoFirst: true}, nil

	case p.eat("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		p.pushScope()
		defer p.popScope()
		var init Stmt = &Empty{}
		if !p.eat(";") {
			if p.startsType() {
				var err error
				if init, err = p.parseLocalDecl(); err != nil {
					return nil, err
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
				init = &ExprStmt{E: e}
			}
		}
		var cond Expr
		if !p.eat(";") {
			var err error
			if cond, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if cond, err = p.toCondition(cond); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var post Expr
		if !p.at(")") {
			var err error
			if post, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Post: post, Body: body}, nil

	case p.eat("switch"):
		return p.parseSwitch()

	case p.eat("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Break{}, nil

	case p.eat("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Continue{}, nil

	case p.startsType():
		return p.parseLocalDecl()
	}

	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// parseSwitch parses a switch statement. Case labels must be integer
// constant expressions (literals, character literals, or enum constants);
// fallthrough follows C semantics.
func (p *parser) parseSwitch() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	tag = decay(tag)
	if !tag.CType().IsInteger() {
		return nil, p.errorf("switch tag must be an integer, got %s", tag.CType())
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()

	sw := &Switch{Tag: tag}
	seen := map[int64]bool{}
	var curBody *[]Stmt
	for !p.eat("}") {
		switch {
		case p.eat("case"):
			if sw.Default != nil {
				// The block-structured lowering places the default body
				// after all case bodies, so it must be the last label.
				return nil, p.errorf("default must be the last label in switch")
			}
			val, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			lit, ok := val.(*IntLit)
			if !ok {
				return nil, p.errorf("case label must be an integer constant")
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if seen[lit.Val] {
				return nil, p.errorf("duplicate case %d", lit.Val)
			}
			seen[lit.Val] = true
			sw.Cases = append(sw.Cases, SwitchCase{Value: lit.Val})
			curBody = &sw.Cases[len(sw.Cases)-1].Body
		case p.eat("default"):
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if sw.Default != nil {
				return nil, p.errorf("duplicate default label")
			}
			sw.Default = []Stmt{}
			curBody = &sw.Default
		default:
			if curBody == nil {
				return nil, p.errorf("statement before first case label in switch")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			*curBody = append(*curBody, s)
		}
	}
	return sw, nil
}

// parseLocalDecl parses one or more local variable declarations and
// consumes the trailing semicolon. Multiple declarators become a Block.
func (p *parser) parseLocalDecl() (Stmt, error) {
	specs, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	if specs.isTypedef {
		return nil, p.errorf("typedef not supported at block scope")
	}
	var decls []Stmt
	for {
		name, typ, err := p.parseDeclarator(specs.typ)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errorf("local declaration requires a name")
		}
		if rt := typ.Resolved(); rt.Kind == KStruct || rt.Kind == KUnion || rt.Kind == KArray {
			return nil, p.errorf("local %q: aggregate locals are not supported (use pointers)", name)
		}
		sym := &Symbol{Name: name, Kind: SymVar, Type: typ}
		if err := p.declare(sym); err != nil {
			return nil, err
		}
		p.curFunc.Locals = append(p.curFunc.Locals, sym)
		var init Expr
		if p.eat("=") {
			if init, err = p.parseAssignExpr(); err != nil {
				return nil, err
			}
			if init, err = p.convertTo(init, typ); err != nil {
				return nil, err
			}
		}
		decls = append(decls, &LocalDecl{Sym: sym, Init: init})
		if p.eat(",") {
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Block{Stmts: decls}, nil
}
