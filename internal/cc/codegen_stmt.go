package cc

import (
	"fmt"

	"repro/internal/wasm"
)

func (g *codegen) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)

	case *Empty:
		return nil

	case *ExprStmt:
		return g.genExprForEffect(st.E)

	case *LocalDecl:
		vt := lowerType(st.Sym.Type).val()
		st.Sym.LocalIdx = g.newLocal(vt)
		g.localOf[st.Sym] = st.Sym.LocalIdx
		if st.Init != nil {
			if err := g.genExpr(st.Init); err != nil {
				return err
			}
			g.emit(wasm.I1(wasm.OpLocalSet, int64(st.Sym.LocalIdx)))
		}
		return nil

	case *Return:
		if st.E != nil {
			if err := g.genExpr(st.E); err != nil {
				return err
			}
		}
		g.emit(wasm.I(wasm.OpReturn))
		return nil

	case *If:
		if err := g.genExpr(st.C); err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpIf, wasm.BlockTypeEmpty))
		g.pushCtrl(labelIf)
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			g.emit(wasm.I(wasm.OpElse))
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd))
		return nil

	case *While:
		if st.DoFirst {
			return g.genDoWhile(st)
		}
		// block $exit { loop $top { !cond br $exit; block $cont { body };
		// br $top } }
		g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
		g.pushCtrl(labelBreak)
		g.emit(wasm.I1(wasm.OpLoop, wasm.BlockTypeEmpty))
		g.pushCtrl(labelLoop)
		if err := g.genExpr(st.C); err != nil {
			return err
		}
		g.emit(wasm.I(wasm.OpI32Eqz))
		exit, err := g.branchDistance(labelBreak)
		if err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpBrIf, exit))
		g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
		g.pushCtrl(labelContinue)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // $cont
		top, err := g.branchDistance(labelLoop)
		if err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpBr, top))
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // loop
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // block
		return nil

	case *For:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
		g.pushCtrl(labelBreak)
		g.emit(wasm.I1(wasm.OpLoop, wasm.BlockTypeEmpty))
		g.pushCtrl(labelLoop)
		if st.Cond != nil {
			if err := g.genExpr(st.Cond); err != nil {
				return err
			}
			g.emit(wasm.I(wasm.OpI32Eqz))
			exit, err := g.branchDistance(labelBreak)
			if err != nil {
				return err
			}
			g.emit(wasm.I1(wasm.OpBrIf, exit))
		}
		g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
		g.pushCtrl(labelContinue)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // $cont
		if st.Post != nil {
			if err := g.genExprForEffect(st.Post); err != nil {
				return err
			}
		}
		top, err := g.branchDistance(labelLoop)
		if err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpBr, top))
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // loop
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd)) // block
		return nil

	case *Switch:
		return g.genSwitch(st)

	case *Break:
		d, err := g.branchDistance(labelBreak)
		if err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpBr, d))
		return nil

	case *Continue:
		d, err := g.branchDistance(labelContinue)
		if err != nil {
			return err
		}
		g.emit(wasm.I1(wasm.OpBr, d))
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

// genSwitch lowers a switch with the classic block ladder: one block per
// case plus one for the default, dispatched by br_table for dense value
// ranges or an eq/br_if chain otherwise. Fallthrough between case bodies
// is the natural fallthrough between block ends; break branches to the
// outermost block.
func (g *codegen) genSwitch(sw *Switch) error {
	n := len(sw.Cases)
	// Open the exit block (break target) and the default block.
	g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
	g.pushCtrl(labelBreak)
	g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
	g.pushCtrl(labelBlock)
	// One block per case, innermost = first case.
	for i := n - 1; i >= 0; i-- {
		_ = i
		g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
		g.pushCtrl(labelBlock)
	}

	// Dispatch: tag value on the stack as i32.
	if err := g.genExpr(sw.Tag); err != nil {
		return err
	}
	if lowerType(sw.Tag.CType()) == lowI64 {
		g.emit(wasm.I(wasm.OpI32WrapI64))
	}

	minV, maxV := int64(0), int64(0)
	for i, c := range sw.Cases {
		if i == 0 || c.Value < minV {
			minV = c.Value
		}
		if i == 0 || c.Value > maxV {
			maxV = c.Value
		}
	}
	span := maxV - minV + 1
	dense := n > 0 && span <= int64(2*n+8)
	if dense {
		// br_table over [minV, maxV], gaps going to the default.
		if minV != 0 {
			g.emit(wasm.ConstI32(int32(minV)), wasm.I(wasm.OpI32Sub))
		}
		table := make([]uint32, span)
		for i := range table {
			table[i] = uint32(n) // default
		}
		for i, c := range sw.Cases {
			table[c.Value-minV] = uint32(i)
		}
		g.emit(wasm.Instr{Op: wasm.OpBrTable, Table: table, Imm: int64(n)})
	} else {
		// Sparse: compare-and-branch chain through a scratch local.
		tagLocal := g.scratchSlot(wasm.I32, 3)
		g.emit(wasm.I1(wasm.OpLocalSet, int64(tagLocal)))
		for i, c := range sw.Cases {
			g.emit(wasm.I1(wasm.OpLocalGet, int64(tagLocal)))
			g.emit(wasm.ConstI32(int32(c.Value)), wasm.I(wasm.OpI32Eq))
			g.emit(wasm.I1(wasm.OpBrIf, int64(i)))
		}
		g.emit(wasm.I1(wasm.OpBr, int64(n))) // default
	}

	// Close each case block and emit its body; bodies fall through.
	for _, c := range sw.Cases {
		g.popCtrl()
		g.emit(wasm.I(wasm.OpEnd))
		for _, s := range c.Body {
			if err := g.genStmt(s); err != nil {
				return err
			}
		}
	}
	// Default block end, then the default body.
	g.popCtrl()
	g.emit(wasm.I(wasm.OpEnd))
	for _, s := range sw.Default {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	g.popCtrl()
	g.emit(wasm.I(wasm.OpEnd)) // exit
	return nil
}

func (g *codegen) genDoWhile(st *While) error {
	// block $exit { loop $top { block $cont { body }; cond; br_if $top } }
	g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
	g.pushCtrl(labelBreak)
	g.emit(wasm.I1(wasm.OpLoop, wasm.BlockTypeEmpty))
	g.pushCtrl(labelLoop)
	g.emit(wasm.I1(wasm.OpBlock, wasm.BlockTypeEmpty))
	g.pushCtrl(labelContinue)
	if err := g.genStmt(st.Body); err != nil {
		return err
	}
	g.popCtrl()
	g.emit(wasm.I(wasm.OpEnd)) // $cont
	if err := g.genExpr(st.C); err != nil {
		return err
	}
	top, err := g.branchDistance(labelLoop)
	if err != nil {
		return err
	}
	g.emit(wasm.I1(wasm.OpBrIf, top))
	g.popCtrl()
	g.emit(wasm.I(wasm.OpEnd)) // loop
	g.popCtrl()
	g.emit(wasm.I(wasm.OpEnd)) // block
	return nil
}

// genExprForEffect evaluates an expression and discards its value,
// avoiding dead tee/drop pairs for plain assignments.
func (g *codegen) genExprForEffect(e Expr) error {
	switch x := e.(type) {
	case *Assign:
		return g.genAssign(x, false)
	case *Postfix:
		return g.genIncDec(x.X, x.Op == "++", false, false)
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			return g.genIncDec(x.X, x.Op == "++", false, false)
		}
	case *Call:
		if err := g.genExpr(e); err != nil {
			return err
		}
		if !x.CType().IsVoid() {
			g.emit(wasm.I(wasm.OpDrop))
		}
		return nil
	}
	if err := g.genExpr(e); err != nil {
		return err
	}
	g.emit(wasm.I(wasm.OpDrop))
	return nil
}
