package cc

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/wasm"
)

// dwarfGen mirrors the unit's semantic types into DWARF DIEs, the way
// clang/Emscripten do when compiling with -g.
type dwarfGen struct {
	cu      *dwarf.DIE
	scalars map[string]*dwarf.DIE
	records map[*Record]*dwarf.DIE
	enums   map[*EnumDef]*dwarf.DIE
	derived map[string]*dwarf.DIE // pointer/const/array/typedef cache
}

// emitDWARF builds the DWARF sections for a compiled unit. layout provides
// the code offset of each defined function (index-aligned with
// unit.Funcs), which becomes DW_AT_low_pc — the key the extraction
// pipeline uses to match DWARF subprograms to WebAssembly functions.
func emitDWARF(unit *Unit, layout *wasm.Layout, producer string) (dwarf.Sections, error) {
	if len(layout.CodeOffsets) != len(unit.Funcs) {
		return dwarf.Sections{}, fmt.Errorf("cc: layout has %d code offsets for %d functions", len(layout.CodeOffsets), len(unit.Funcs))
	}
	lang := dwarf.LangC99
	if usesClasses(unit) {
		lang = dwarf.LangCPlusPlus
	}
	g := &dwarfGen{
		cu:      dwarf.NewCompileUnit(unit.File, producer, lang),
		scalars: make(map[string]*dwarf.DIE),
		records: make(map[*Record]*dwarf.DIE),
		enums:   make(map[*EnumDef]*dwarf.DIE),
		derived: make(map[string]*dwarf.DIE),
	}
	for i, fn := range unit.Funcs {
		sub := dwarf.NewSubprogram(fn.Name, uint64(layout.CodeOffsets[i]), 0, g.typeDIE(fn.Ret))
		sub.AddAttr(dwarf.AttrPrototyped, true)
		for _, p := range fn.Params {
			sub.AddChild(dwarf.NewFormalParameter(p.Name, g.typeDIE(p.Type)))
		}
		g.cu.AddChild(sub)
	}
	// Global variables also get DIEs, for realism and for future
	// experiments on variable-type recovery.
	for _, sym := range unit.Globals {
		v := &dwarf.DIE{Tag: dwarf.TagVariable}
		v.AddAttr(dwarf.AttrName, sym.Name)
		if t := g.typeDIE(sym.Type); t != nil {
			v.AddAttr(dwarf.AttrType, t)
		}
		v.AddAttr(dwarf.AttrExternal, true)
		g.cu.AddChild(v)
	}
	return dwarf.Write(g.cu)
}

func usesClasses(unit *Unit) bool {
	for _, r := range unit.Records {
		if r.IsClass {
			return true
		}
	}
	return false
}

// typeDIE returns (creating if needed) the DIE for a semantic type. A nil
// result represents void (absent DW_AT_type).
func (g *dwarfGen) typeDIE(t *CType) *dwarf.DIE {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case KVoid:
		return nil

	case KBool:
		return g.scalar("bool", dwarf.EncBoolean, 1)

	case KChar:
		return g.scalar("char", dwarf.EncSignedChar, 1)

	case KInt:
		name, enc := intName(t.Bits, t.Signed)
		return g.scalar(name, enc, uint64(t.Bits/8))

	case KFloat:
		switch t.Bits {
		case 32:
			return g.scalar("float", dwarf.EncFloat, 4)
		case 64:
			return g.scalar("double", dwarf.EncFloat, 8)
		default:
			return g.scalar("long double", dwarf.EncFloat, 16)
		}

	case KComplex:
		return g.scalar("complex", dwarf.EncComplexFloat, 16)

	case KPointer:
		return g.derive("*"+typeKey(t.Elem), func() *dwarf.DIE {
			return dwarf.NewModifier(dwarf.TagPointerType, g.typeDIE(t.Elem))
		})

	case KConst:
		return g.derive("const "+typeKey(t.Elem), func() *dwarf.DIE {
			return dwarf.NewModifier(dwarf.TagConstType, g.typeDIE(t.Elem))
		})

	case KArray:
		return g.derive(fmt.Sprintf("[%d]%s", t.Len, typeKey(t.Elem)), func() *dwarf.DIE {
			arr := dwarf.NewModifier(dwarf.TagArrayType, g.typeDIE(t.Elem))
			sub := &dwarf.DIE{Tag: dwarf.TagSubrangeType}
			if t.Len > 0 {
				sub.AddAttr(dwarf.AttrCount, uint64(t.Len))
			}
			arr.AddChild(sub)
			return arr
		})

	case KTypedef:
		return g.derive("typedef "+t.Name, func() *dwarf.DIE {
			return dwarf.NewTypedef(t.Name, g.typeDIE(t.Underlying))
		})

	case KStruct, KUnion:
		return g.recordDIE(t.Record)

	case KEnum:
		return g.enumDIE(t.Enum)

	case KFunc:
		key := "func " + typeKey(t)
		return g.derive(key, func() *dwarf.DIE {
			d := &dwarf.DIE{Tag: dwarf.TagSubroutineType}
			d.AddAttr(dwarf.AttrPrototyped, true)
			if rt := g.typeDIE(t.Ret); rt != nil {
				d.AddAttr(dwarf.AttrType, rt)
			}
			for _, pt := range t.Params {
				d.AddChild(dwarf.NewFormalParameter("", g.typeDIE(pt)))
			}
			return d
		})
	}
	return nil
}

// typeKey canonicalizes a type for the derived-DIE cache, using record
// identity for (possibly anonymous) aggregates.
func typeKey(t *CType) string {
	if t == nil {
		return "void"
	}
	switch t.Kind {
	case KStruct, KUnion:
		return fmt.Sprintf("rec%p", t.Record)
	case KEnum:
		return fmt.Sprintf("enum%p", t.Enum)
	case KPointer:
		return "*" + typeKey(t.Elem)
	case KConst:
		return "const " + typeKey(t.Elem)
	case KArray:
		return fmt.Sprintf("[%d]%s", t.Len, typeKey(t.Elem))
	case KTypedef:
		return "typedef " + t.Name
	case KFunc:
		key := "fn(" + typeKey(t.Ret)
		for _, p := range t.Params {
			key += "," + typeKey(p)
		}
		return key + ")"
	}
	return t.String()
}

func intName(bits int, signed bool) (string, dwarf.Encoding) {
	switch {
	case bits == 8 && signed:
		return "signed char", dwarf.EncSignedChar
	case bits == 8:
		return "unsigned char", dwarf.EncUnsignedChar
	case bits == 16 && signed:
		return "short", dwarf.EncSigned
	case bits == 16:
		return "unsigned short", dwarf.EncUnsigned
	case bits == 64 && signed:
		return "long long", dwarf.EncSigned
	case bits == 64:
		return "unsigned long long", dwarf.EncUnsigned
	case signed:
		return "int", dwarf.EncSigned
	default:
		return "unsigned int", dwarf.EncUnsigned
	}
}

func (g *dwarfGen) scalar(name string, enc dwarf.Encoding, size uint64) *dwarf.DIE {
	if d, ok := g.scalars[name]; ok {
		return d
	}
	d := dwarf.NewBaseType(name, enc, size)
	g.scalars[name] = d
	g.cu.AddChild(d)
	return d
}

func (g *dwarfGen) derive(key string, build func() *dwarf.DIE) *dwarf.DIE {
	if d, ok := g.derived[key]; ok {
		return d
	}
	// Reserve the slot first so recursive types terminate.
	placeholder := &dwarf.DIE{}
	g.derived[key] = placeholder
	d := build()
	*placeholder = *d
	g.cu.AddChild(placeholder)
	return placeholder
}

func (g *dwarfGen) recordDIE(r *Record) *dwarf.DIE {
	if d, ok := g.records[r]; ok {
		return d
	}
	tag := dwarf.TagStructType
	if r.IsClass {
		tag = dwarf.TagClassType
	}
	if r.IsUnion {
		tag = dwarf.TagUnionType
	}
	d := &dwarf.DIE{Tag: tag}
	g.records[r] = d // before fields, to terminate recursive types
	if r.Name != "" {
		d.AddAttr(dwarf.AttrName, r.Name)
	}
	if r.Incomplete {
		d.AddAttr(dwarf.AttrDeclaration, true)
	} else {
		d.AddAttr(dwarf.AttrByteSize, uint64(r.Size))
		for _, f := range r.Fields {
			m := &dwarf.DIE{Tag: dwarf.TagMember}
			m.AddAttr(dwarf.AttrName, f.Name)
			if ft := g.typeDIE(f.Type); ft != nil {
				m.AddAttr(dwarf.AttrType, ft)
			}
			m.AddAttr(dwarf.AttrDataMemberLoc, uint64(f.Offset))
			d.AddChild(m)
		}
	}
	g.cu.AddChild(d)
	return d
}

func (g *dwarfGen) enumDIE(e *EnumDef) *dwarf.DIE {
	if d, ok := g.enums[e]; ok {
		return d
	}
	d := &dwarf.DIE{Tag: dwarf.TagEnumerationType}
	g.enums[e] = d
	if e.Name != "" {
		d.AddAttr(dwarf.AttrName, e.Name)
	}
	d.AddAttr(dwarf.AttrByteSize, uint64(4))
	for i, m := range e.Members {
		en := &dwarf.DIE{Tag: dwarf.TagEnumerator}
		en.AddAttr(dwarf.AttrName, m)
		en.AddAttr(dwarf.AttrConstValue, e.Values[i])
		d.AddChild(en)
	}
	g.cu.AddChild(d)
	return d
}
