package cc

import (
	"testing"

	"repro/internal/wasm"
)

// TestCompiledModulesValidate type-checks the generated code of a broad
// set of programs with the wasm validator — the strongest static check on
// the code generator's stack discipline.
func TestCompiledModulesValidate(t *testing.T) {
	sources := []string{
		figure1Source,
		`int f(void) { return 42; }`,
		`
struct s { int a; double b; struct s *next; };
double walk(struct s *p) {
	double acc = 0;
	while (p != NULL) { acc += p->b; p = p->next; }
	return acc;
}`,
		`
long long mix64(long long a, unsigned long long b) {
	return a * 3 + (long long)(b >> 7);
}`,
		`
extern double sqrt_like(double x);
float hypot2(float a, float b) {
	return (float) sqrt_like((double)(a * a + b * b));
}`,
		`
int ctrl(int n) {
	int acc = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0) { continue; }
		if (acc > 1000) { break; }
		acc += i > 50 ? i * 2 : i;
	}
	do { acc--; } while (acc > 500);
	return acc;
}`,
		`
char classify(unsigned char b) {
	if (b >= 'a' && b <= 'z') { return 'l'; }
	if (b >= '0' && b <= '9') { return 'd'; }
	return '?';
}`,
		`
int g_counter = 0;
double g_ratio = 1.5;
int bump(int by) {
	g_counter += by;
	g_counter++;
	return g_counter;
}`,
		`
union u { int i; float f; };
float reinterpret(union u *p) {
	p->i = p->i | 1;
	return p->f;
}`,
		`
typedef double vec[3];
double dot(vec *a, vec *b) {
	return (*a)[0] * (*b)[0] + (*a)[1] * (*b)[1] + (*a)[2] * (*b)[2];
}`,
		`
extern int rand_like(void);
void effects_only(int *sink) {
	rand_like();
	if (sink != NULL) { sink[0] = rand_like(); }
}`,
		`
int logic(int a, int b, int c) {
	return (a && b) || (!c && a > b);
}`,
		`
unsigned int bits(unsigned int x) {
	x = ~x;
	x ^= x >> 16;
	x = x << 2 | x >> 30;
	return x;
}`,
		`
bool flagcheck(bool on, int mask) {
	bool other = mask != 0;
	return on && other;
}`,
		`
double postfix(double *xs, int n) {
	int i = 0;
	double acc = 0;
	while (i < n) { acc += xs[i++]; }
	i--;
	--i;
	++i;
	return acc;
}`,
	}
	for i, src := range sources {
		obj, err := Compile(src, Options{FileName: "v.c", Debug: true})
		if err != nil {
			t.Errorf("source %d does not compile: %v", i, err)
			continue
		}
		if err := wasm.Validate(obj.Module); err != nil {
			text := wasm.Disassemble(obj.Module)
			t.Errorf("source %d produces invalid wasm: %v\n%s", i, err, text)
		}
	}
}
