// Batched beam-search primitives. Beam search packs every live
// hypothesis — across all searches decoded together — into one batch so
// each decode step runs the band-fused GEMM kernels once instead of a
// matvec per hypothesis. The ops here do the packing: gathering parent
// states for surviving beams, broadcasting per-search encoder blocks
// across that search's hypotheses, and scoring all rows at once. Each op
// is row-wise identical to its one-row counterpart (copies, or the same
// ascending-index arithmetic), which is what keeps the batched decoder
// bitwise equal to the sequential reference.
package ad

import "fmt"

// GatherRows returns the rows of a selected by idx as a new
// [len(idx), C] value. It is the beam-search re-selection primitive:
// after pruning, the surviving hypotheses pick their parents' decoder
// states out of the previous step's batch in one pooled copy instead of
// round-tripping each row through Go slices. Indices may repeat (several
// survivors can share a parent); backward scatter-adds accordingly.
func (t *Tape) GatherRows(a *V, idx []int) *V {
	return t.Rows(a, idx)
}

// GatherRowBlocks gathers fixed-size row blocks: a is treated as a stack
// of a.R/block consecutive blocks of `block` rows each, and the output
// is the blocks selected by idx, concatenated — [len(idx)*block, C].
// Beam search uses it to tile each search's encoder states across that
// search's live hypotheses so one AttnScores call covers the whole
// batch. Indices may repeat; backward scatter-adds per block.
func (t *Tape) GatherRowBlocks(a *V, idx []int, block int) *V {
	if block <= 0 || a.R%block != 0 {
		panic(fmt.Sprintf("ad: GatherRowBlocks block %d of %d rows", block, a.R))
	}
	nb := a.R / block
	stride := block * a.C
	if t.f32 && !t.grad {
		return t.gatherRowBlocksF32(a, idx, block, nb, stride)
	}
	out := t.new(len(idx)*block, a.C)
	for i, id := range idx {
		if id < 0 || id >= nb {
			panic(fmt.Sprintf("ad: GatherRowBlocks index %d out of %d blocks", id, nb))
		}
		copy(out.W[i*stride:(i+1)*stride], a.W[id*stride:(id+1)*stride])
	}
	if t.grad {
		ids := append([]int(nil), idx...)
		t.record(func() {
			for i, id := range ids {
				dst := a.G[id*stride : (id+1)*stride]
				for j, g := range out.G[i*stride : (i+1)*stride] {
					dst[j] += g
				}
			}
		})
	}
	return out
}

// StackRowBlocks packs values with a common column count into one matrix
// of fixed-size row blocks: vs[i] (at most block rows) lands at rows
// [i*block, i*block+vs[i].R), and the rest of each block stays zero.
// It builds the combined encoder matrix for multi-search decoding, where
// searches have ragged source lengths: padding rows are all-zero and the
// caller masks them out of attention, so each search's arithmetic only
// ever touches its own real rows.
func (t *Tape) StackRowBlocks(vs []*V, block int) *V {
	C := vs[0].C
	if t.f32 && !t.grad {
		return t.stackRowBlocksF32(vs, block, C)
	}
	out := t.new(len(vs)*block, C)
	for i, v := range vs {
		if v.C != C || v.R > block {
			panic(fmt.Sprintf("ad: StackRowBlocks %dx%d into %d-row blocks of %d cols", v.R, v.C, block, C))
		}
		copy(out.W[i*block*C:], v.W)
	}
	if t.grad {
		t.record(func() {
			for i, v := range vs {
				for j, g := range out.G[i*block*C : i*block*C+len(v.G)] {
					v.G[j] += g
				}
			}
		})
	}
	return out
}

// LogSoftmaxRows computes the log-softmax of every row of a [B,V] matrix
// into one pooled value. Each row runs the exact LogSoftmaxRow
// arithmetic (max, exp-sum in ascending index order, subtract), so
// batched beam scores are bitwise equal to scoring each hypothesis
// alone. No gradients are recorded, matching LogSoftmaxRow
// (inference-only).
func (t *Tape) LogSoftmaxRows(a *V) *V {
	if t.f32 && !t.grad {
		return t.logSoftmaxRowsF32(a)
	}
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		logSoftmaxRow(out.W[i*a.C:(i+1)*a.C], a.W[i*a.C:(i+1)*a.C])
	}
	return out
}
