package ad

import (
	"math"
	"math/rand"
	"testing"
)

// groupedFixture builds S encoder blocks of T rows, L decoder rows, a
// row→block map with repeats (several rows sharing a block, one block
// unused), and a mask with ragged real lengths per block.
func groupedFixture(r *rand.Rand) (dec, enc *V, mask []float64, groups []int, T, H int) {
	const S = 3
	T, H = 5, 12
	enc = randV(r, S*T, H)
	groups = []int{0, 2, 0, 2, 2, 0} // block 1 unused; 0 and 2 shared
	dec = randV(r, len(groups), H)
	mask = make([]float64, S*T)
	lens := []int{T, 3, 4} // ragged real lengths, block 1 full
	for b, n := range lens {
		for tt := 0; tt < n; tt++ {
			mask[b*T+tt] = 1
		}
	}
	return dec, enc, mask, groups, T, H
}

// tiledAttn is the pre-grouped formulation: tile each row's block with
// GatherRowBlocks, then run the per-example attention chain.
func tiledAttn(tape *Tape, dec, enc *V, mask []float64, groups []int, T, H int) (scores, alpha, ctx *V) {
	tile := tape.GatherRowBlocks(enc, groups, T)
	tmask := make([]float64, 0, len(groups)*T)
	for _, g := range groups {
		tmask = append(tmask, mask[g*T:(g+1)*T]...)
	}
	scores = tape.AttnScores(dec, tile, T)
	alpha = tape.SoftmaxRowsMasked(scores, tmask)
	ctx = tape.WeightedSum(alpha, tile, H)
	return scores, alpha, ctx
}

func groupedAttn(tape *Tape, dec, enc *V, mask []float64, groups []int, T, H int) (scores, alpha, ctx *V) {
	scores = tape.AttnScoresGrouped(dec, enc, groups, T)
	alpha = tape.SoftmaxRowsMaskedGrouped(scores, mask, groups)
	ctx = tape.WeightedSumGrouped(alpha, enc, groups, H)
	return scores, alpha, ctx
}

// TestGroupedAttnMatchesTiled pins the grouped attention chain bitwise
// to the tiled GatherRowBlocks formulation on both the exact and the
// fast-math forward paths — the equivalence the batched decoder's
// bitwise oracle rests on after the tiling removal.
func TestGroupedAttnMatchesTiled(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Tape
	}{
		{"exact", func() *Tape { return NewForward(NewPool()) }},
		{"fast", func() *Tape { return NewForwardFast(NewPool()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(91))
			dec, enc, mask, groups, T, H := groupedFixture(r)
			ws, wa, wc := tiledAttn(tc.mk(), dec, enc, mask, groups, T, H)
			gs, ga, gc := groupedAttn(tc.mk(), dec, enc, mask, groups, T, H)
			if !equalW(gs, ws) {
				t.Errorf("AttnScoresGrouped differs from tiled AttnScores")
			}
			if !equalW(ga, wa) {
				t.Errorf("SoftmaxRowsMaskedGrouped differs from tiled SoftmaxRowsMasked")
			}
			if !equalW(gc, wc) {
				t.Errorf("WeightedSumGrouped differs from tiled WeightedSum")
			}
		})
	}
}

// TestGroupedAttnFullyMaskedRow pins the fully-masked-block contract:
// all-zero attention weights and an all-zero context, matching
// SoftmaxRowsMasked.
func TestGroupedAttnFullyMaskedRow(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	T, H := 4, 6
	enc := randV(r, 2*T, H)
	dec := randV(r, 2, H)
	groups := []int{1, 0}
	mask := make([]float64, 2*T) // block 0 fully masked
	for tt := 0; tt < T; tt++ {
		mask[T+tt] = 1
	}
	tape := NewForward(NewPool())
	_, alpha, ctx := groupedAttn(tape, dec, enc, mask, groups, T, H)
	for tt := 0; tt < T; tt++ {
		if alpha.W[T+tt] != 0 {
			t.Fatalf("masked row alpha[%d] = %v, want 0", tt, alpha.W[T+tt])
		}
	}
	for j := 0; j < H; j++ {
		if ctx.W[H+j] != 0 {
			t.Fatalf("masked row ctx[%d] = %v, want 0", j, ctx.W[H+j])
		}
	}
}

// TestGroupedAttnBackwardMatchesTiled seeds identical output gradients
// through both formulations on recording tapes and compares every input
// gradient. Shared-block gradients are mathematically the same sum of
// per-row contributions, but the grouped backward accumulates them per
// op (all WeightedSum rows, then all AttnScores rows) where the tiled
// backward sums both ops into each tile copy before scattering — a
// different rounding order — so the comparison is near-exact, not
// bitwise. Only the forward pass (what beam decoding uses) carries the
// bitwise contract; nothing trains through the grouped ops.
func TestGroupedAttnBackwardMatchesTiled(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	decT, encT, mask, groups, T, H := groupedFixture(r)
	decG := New(decT.R, decT.C)
	encG := New(encT.R, encT.C)
	copy(decG.W, decT.W)
	copy(encG.W, encT.W)

	seed := func(v *V) {
		for i := range v.G {
			v.G[i] = 0.01*float64(i%7) - 0.03
		}
	}
	tapeT := NewTape()
	_, _, ctxT := tiledAttn(tapeT, decT, encT, mask, groups, T, H)
	seed(ctxT)
	tapeT.Backward()

	tapeG := NewTape()
	_, _, ctxG := groupedAttn(tapeG, decG, encG, mask, groups, T, H)
	seed(ctxG)
	tapeG.Backward()

	closeSlice := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			diff := math.Abs(got[i] - want[i])
			if diff > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%s gradient[%d]: grouped %v, tiled %v", name, i, got[i], want[i])
			}
		}
	}
	closeSlice("dec", decG.G, decT.G)
	closeSlice("enc", encG.G, encT.G)
}

// TestGroupedAttnAllocsSteadyState pins the pooled steady state: once
// the pool is warm, a full grouped attention step allocates nothing —
// and in particular never draws a width-scaled [L*T,H] tile buffer. The
// row count L stands in for beam width; the largest buffer the chain
// ever draws must stay the shared encoder matrix (or smaller), not
// L*T*H.
func TestGroupedAttnAllocsSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	dec, enc, mask, groups, T, H := groupedFixture(r)
	for _, tc := range []struct {
		name string
		mk   func(*Pool) *Tape
	}{
		{"exact", NewForward},
		{"fast", NewForwardFast},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pool := NewPool()
			tape := tc.mk(pool)
			step := func() {
				groupedAttn(tape, dec, enc, mask, groups, T, H)
				tape.Reset()
			}
			step() // warm the pool
			if allocs := testing.AllocsPerRun(50, step); allocs > 0 {
				t.Errorf("grouped attention step allocates %v/run after warmup, want 0", allocs)
			}
			if tile := len(groups) * T * H; pool.MaxBufferElems() >= tile {
				t.Errorf("largest pooled buffer %d elems >= tile size %d: a width-scaled buffer is back",
					pool.MaxBufferElems(), tile)
			}
		})
	}
}
