package ad

import (
	"math"
	"math/rand"
	"testing"
)

// numGrad estimates d(loss)/d(x[i]) by central differences, where forward
// rebuilds the computation from scratch.
func numGrad(x []float64, i int, forward func() float64) float64 {
	const eps = 1e-6
	orig := x[i]
	x[i] = orig + eps
	fp := forward()
	x[i] = orig - eps
	fm := forward()
	x[i] = orig
	return (fp - fm) / (2 * eps)
}

// checkGrads compares analytic gradients against numeric ones for every
// element of every input.
func checkGrads(t *testing.T, inputs []*V, forward func(tape *Tape) *V) {
	t.Helper()
	run := func() (*Tape, *V) {
		tape := NewTape()
		for _, in := range inputs {
			in.ZeroGrad()
		}
		return tape, forward(tape)
	}
	tape, out := run()
	if out.R != 1 || out.C != 1 {
		t.Fatalf("forward must return a scalar, got %dx%d", out.R, out.C)
	}
	out.G[0] = 1
	tape.Backward()
	// Snapshot all analytic gradients before numeric re-runs zero them.
	analytics := make([][]float64, len(inputs))
	for vi, in := range inputs {
		analytics[vi] = append([]float64(nil), in.G...)
	}
	for vi, in := range inputs {
		analytic := analytics[vi]
		for i := range in.W {
			num := numGrad(in.W, i, func() float64 {
				_, o := run()
				return o.W[0]
			})
			if diff := math.Abs(num - analytic[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Errorf("input %d elem %d: analytic %g, numeric %g", vi, i, analytic[i], num)
			}
		}
	}
}

func randV(r *rand.Rand, rows, cols int) *V {
	v := New(rows, cols)
	for i := range v.W {
		v.W[i] = r.NormFloat64()
	}
	return v
}

// sumAll reduces a matrix to a scalar through a weighted sum so gradients
// are non-uniform.
func sumAll(tape *Tape, v *V) *V {
	w := New(v.R, v.C)
	for i := range w.W {
		w.W[i] = 0.1*float64(i) + 0.5
	}
	prod := tape.Mul(v, w)
	ones := New(v.C, 1)
	for i := range ones.W {
		ones.W[i] = 1
	}
	rowSums := tape.MatMul(prod, ones) // [R,1]
	onesR := New(1, v.R)
	for i := range onesR.W {
		onesR.W[i] = 1
	}
	return tape.MatMul(onesR, rowSums) // [1,1]
}

func TestGradMatMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a, b := randV(r, 3, 4), randV(r, 4, 2)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		return sumAll(tape, tape.MatMul(a, b))
	})
}

func TestGradAddBroadcast(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b := randV(r, 3, 4), randV(r, 1, 4)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		return sumAll(tape, tape.Add(a, b))
	})
}

func TestGradElementwise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randV(r, 2, 3), randV(r, 2, 3)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		x := tape.Mul(tape.Sigmoid(a), tape.Tanh(b))
		x = tape.Sub(x, tape.Scale(b, 0.3))
		return sumAll(tape, x)
	})
}

func TestGradConcatSlice(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a, b := randV(r, 2, 3), randV(r, 2, 2)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		cat := tape.ConcatCols(a, b)       // [2,5]
		left := tape.SliceCols(cat, 0, 2)  // [2,2]
		right := tape.SliceCols(cat, 2, 5) // [2,3]
		prod := tape.MatMul(left, right)   // [2,3]
		return sumAll(tape, tape.Tanh(prod))
	})
}

func TestGradRows(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	table := randV(r, 5, 3)
	idx := []int{0, 3, 3, 1}
	checkGrads(t, []*V{table}, func(tape *Tape) *V {
		return sumAll(tape, tape.Rows(table, idx))
	})
}

func TestGradSoftmaxCE(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	logits := randV(r, 4, 5)
	targets := []int{1, 0, 4, 2}
	weights := []float64{1, 1, 0, 0.5} // includes a masked row
	checkGrads(t, []*V{logits}, func(tape *Tape) *V {
		return tape.SoftmaxCrossEntropy(logits, targets, weights)
	})
}

func TestGradAttention(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	B, T, H := 2, 3, 4
	dec := randV(r, B, H)
	enc := randV(r, B*T, H)
	mask := []float64{1, 1, 0, 1, 1, 1} // padding in example 0
	checkGrads(t, []*V{dec, enc}, func(tape *Tape) *V {
		scores := tape.AttnScores(dec, enc, T)
		alpha := tape.SoftmaxRowsMasked(scores, mask)
		ctx := tape.WeightedSum(alpha, enc, H)
		return sumAll(tape, ctx)
	})
}

func TestGradStackAndMask(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a, b := randV(r, 2, 3), randV(r, 2, 3)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		st := tape.StackRows([]*V{a, b})
		masked := tape.MaskRows(st, []float64{1, 0, 1, 1})
		return sumAll(tape, masked)
	})
}

func TestGradBlend(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a, b := randV(r, 3, 2), randV(r, 3, 2)
	checkGrads(t, []*V{a, b}, func(tape *Tape) *V {
		return sumAll(tape, tape.Blend(a, b, []float64{1, 0, 1}))
	})
}

func TestDropout(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randV(r, 10, 10)
	tape := NewTape()
	rng := rand.New(rand.NewSource(11))
	out := tape.Dropout(a, 0.5, rng.Float64)
	zeros := 0
	for i := range out.W {
		if out.W[i] == 0 {
			zeros++
		} else if math.Abs(out.W[i]-2*a.W[i]) > 1e-12 {
			t.Fatalf("survivor not scaled: %g vs %g", out.W[i], a.W[i])
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Errorf("dropout zeroed %d of 100", zeros)
	}
	// p=0 is the identity (same value returned).
	if tape.Dropout(a, 0, nil) != a {
		t.Error("Dropout(p=0) should be identity")
	}
}

func TestLogSoftmaxRow(t *testing.T) {
	ls := LogSoftmaxRow([]float64{1, 2, 3})
	sum := 0.0
	for _, x := range ls {
		sum += math.Exp(x)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("exp(logsoftmax) sums to %g", sum)
	}
	if !(ls[2] > ls[1] && ls[1] > ls[0]) {
		t.Errorf("ordering broken: %v", ls)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with bad shapes should panic")
		}
	}()
	tape := NewTape()
	tape.MatMul(New(2, 3), New(2, 3))
}

func TestGradReLU(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randV(r, 3, 4)
	// Keep values away from the kink for numeric stability.
	for i := range a.W {
		if math.Abs(a.W[i]) < 0.1 {
			a.W[i] += 0.5
		}
	}
	checkGrads(t, []*V{a}, func(tape *Tape) *V {
		return sumAll(tape, tape.ReLU(a))
	})
}

func TestGradLayerNorm(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randV(r, 3, 5)
	gain := randV(r, 1, 5)
	bias := randV(r, 1, 5)
	checkGrads(t, []*V{a, gain, bias}, func(tape *Tape) *V {
		return sumAll(tape, tape.LayerNorm(a, gain, bias))
	})
}

func TestGradAddRowsConst(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randV(r, 2, 3)
	c := []float64{1, 2, 3, 4, 5, 6}
	checkGrads(t, []*V{a}, func(tape *Tape) *V {
		return sumAll(tape, tape.AddRowsConst(a, c))
	})
}
