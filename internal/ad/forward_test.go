package ad

import (
	"math/rand"
	"testing"
)

// chain runs a representative op mix (the ones beam search executes) on
// the given tape and returns the final value.
func chain(t *Tape, a, b *V) *V {
	h := t.Tanh(t.MatMul(a, b))             // [2,3]
	h = t.Add(h, t.Sigmoid(h))              // same shape
	h = t.Mul(h, h)                         //
	cat := t.ConcatCols(h, t.Scale(h, 0.5)) // [2,6]
	s := t.SliceCols(cat, 1, 4)             // [2,3]
	r := t.Rows(s, []int{1, 0, 1})          // [3,3]
	sm := t.SoftmaxRowsMasked(r, []float64{1, 1, 0, 1, 0, 1, 1, 1, 1})
	stack := t.StackRows([]*V{r, s2r(t, s), r}) // [9,3], T=3 per example
	return t.WeightedSum(sm, stack, 3)          // [3,3]
}

// s2r pads a [2,3] value to [3,3] by gathering rows, keeping shapes
// aligned for the stacked attention ops above.
func s2r(t *Tape, s *V) *V {
	return t.Rows(s, []int{0, 1, 0})
}

// TestForwardTapeMatchesRecording runs the same computation on a
// recording tape, a pool-less forward tape, and a pooled forward tape
// (twice, to exercise reuse): all four results must be bitwise equal.
func TestForwardTapeMatchesRecording(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randV(r, 2, 4)
	b := randV(r, 4, 3)

	want := chain(NewTape(), a, b)
	if got := chain(NewForward(nil), a, b); !equalW(got, want) {
		t.Errorf("forward tape differs: %v vs %v", got.W, want.W)
	}
	pool := NewPool()
	first := chain(NewForward(pool), a, b)
	if !equalW(first, want) {
		t.Errorf("pooled tape differs: %v vs %v", first.W, want.W)
	}
	// Release everything and rerun on the warmed pool: recycled buffers
	// must be re-zeroed, so the result is still identical.
	tape := NewForward(pool)
	tape.ReleaseExcept() // no-op, empty live set
	got := chain(tape, a, b)
	snapshot := append([]float64(nil), got.W...)
	tape.ReleaseExcept()
	again := chain(tape, a, b)
	if !equalWSlice(again.W, snapshot) {
		t.Errorf("pool reuse corrupted results: %v vs %v", again.W, snapshot)
	}
	if !equalW(again, want) {
		t.Errorf("warmed pool differs from recording tape: %v vs %v", again.W, want.W)
	}
}

// TestReleaseExceptKeepsLiveValues checks that kept values survive one
// release round untouched and are recycled after they leave the keep set.
func TestReleaseExceptKeepsLiveValues(t *testing.T) {
	pool := NewPool()
	tape := NewForward(pool)
	a := randV(rand.New(rand.NewSource(3)), 2, 2)
	kept := tape.Tanh(a)
	before := append([]float64(nil), kept.W...)
	dropped := tape.Sigmoid(a)
	_ = dropped
	tape.ReleaseExcept(kept)
	// A new allocation of the same size must not alias the kept value.
	fresh := tape.Scale(a, 2)
	if fresh == kept {
		t.Fatal("kept value was recycled")
	}
	if !equalWSlice(kept.W, before) {
		t.Errorf("kept value overwritten: %v vs %v", kept.W, before)
	}
	// Once dropped from the keep set, the value's storage is reusable.
	tape.ReleaseExcept()
	reused := tape.Scale(a, 3)
	if reused != kept && reused != fresh {
		t.Error("released storage not reused")
	}
}

// TestForwardTapeRecordsNothing ensures inference tapes stay empty.
func TestForwardTapeRecordsNothing(t *testing.T) {
	tape := NewForward(NewPool())
	a := randV(rand.New(rand.NewSource(5)), 3, 3)
	chain(tape, a, a)
	if tape.Len() != 0 {
		t.Errorf("forward tape recorded %d ops", tape.Len())
	}
	if tape.Recording() {
		t.Error("forward tape claims to be recording")
	}
	if !NewTape().Recording() {
		t.Error("recording tape claims not to be")
	}
}

func equalW(a, b *V) bool {
	return a.R == b.R && a.C == b.C && equalWSlice(a.W, b.W)
}

func equalWSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
