package ad

import "math"

// Fast-math inference kernels: the opt-in siblings of the bitwise
// kernels in kernels.go, reachable only through fast-math forward tapes
// (NewForwardFast) — recording tapes dispatch to the bitwise kernels
// unconditionally, so training can never observe these semantics.
//
// Relaxations relative to the bitwise contract, in full:
//
//  1. Every multiply-add rounds ONCE (math.FMA in Go, VFMADD231 in the
//     amd64 assembly) where the training kernels round twice. The
//     summation ORDER is unchanged: each output element still
//     accumulates its partial products in ascending-p order along a
//     single dependency chain, so the drift against the scalar
//     references is only the per-step rounding difference — bounded by
//     the standard fused-vs-unfused analysis (|fast-exact| grows like
//     k·eps·sum|a_p·b_p|; TestFastKernelsErrorBound enforces it).
//  2. No skip-zero tests on A. IEEE-754 applies: 0*Inf and 0*NaN
//     contribute NaN where the training kernels' skip would have
//     contributed nothing. Inference on finite weights never hits this.
//  3. The attention ops (dotFast for AttnScores, weightedSumFast)
//     additionally stripe their dot-product accumulation across eight
//     lanes — the one place fast-math reorders a summation. The stripe
//     pattern is fixed (see dotFMA), so determinism still holds; the
//     drift bound gains the usual log-shaped pairwise-summation term.
//
// The kernels are still deterministic: for a given input the result is
// identical across runs, worker counts, and — because the pure-Go
// math.FMA paths mirror the assembly operation-for-operation — across
// the asm and fallback paths (TestFastKernelsFMABitwise pins this).

// fmaAxpy computes o[j] = fma(s, bv[j], o[j]) over len(bv) elements; no
// skip-zero contract (s may be zero, and 0*Inf = NaN propagates).
func fmaAxpy(o, bv []float64, s float64) {
	o = o[:len(bv)]
	if useFMA && len(bv) >= avxMinC {
		axpyFMA(&o[0], &bv[0], s, len(bv))
		return
	}
	for j, v := range bv {
		o[j] = math.FMA(s, v, o[j])
	}
}

// matmulFast computes out += a@b with out [r,c], a [r,k], b [k,c]: the
// fast-math sibling of matmul, same band-fused blocking.
func matmulFast(out, a, b []float64, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		a0 := a[i*k : i*k+k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a0[p], a1[p], a2[p], a3[p]
			av10, av11, av12, av13 := a0[p+1], a1[p+1], a2[p+1], a3[p+1]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if useFMA && c >= avxMinC {
				av := [8]float64{av00, av01, av02, av03, av10, av11, av12, av13}
				band2pFMA(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
				continue
			}
			for j, bv0 := range bp {
				bv1 := bq[j]
				o0[j] = math.FMA(av10, bv1, math.FMA(av00, bv0, o0[j]))
				o1[j] = math.FMA(av11, bv1, math.FMA(av01, bv0, o1[j]))
				o2[j] = math.FMA(av12, bv1, math.FMA(av02, bv0, o2[j]))
				o3[j] = math.FMA(av13, bv1, math.FMA(av03, bv0, o3[j]))
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			fmaAxpy(o0, bp, a0[p])
			fmaAxpy(o1, bp, a1[p])
			fmaAxpy(o2, bp, a2[p])
			fmaAxpy(o3, bp, a3[p])
		}
	}
	if ib < r {
		matmulFastTail(out[ib*c:], a[ib*k:], b, r-ib, k, c)
	}
}

// matmulFastTail handles remainder rows: per-row ascending-p fused axpy.
func matmulFastTail(out, a, b []float64, r, k, c int) {
	for i := 0; i < r; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*c : (i+1)*c]
		for p := 0; p < k; p++ {
			fmaAxpy(oi, b[p*c:(p+1)*c], ai[p])
		}
	}
}

// matmulNTFast computes out += a @ b^T with a [r,k], b [c,k], out [r,c]:
// the fast-math sibling of matmulNT. Blocked shapes always pack (the
// panel feeds ntPanelFMA); remainders use single-chain fused dots.
func matmulNTFast(out, a, b []float64, r, k, c int) {
	ib, jb := r-r%blockDim, c-c%blockDim
	var panel []float64
	var panelPtr *[]float64
	if ib > 0 && jb > 0 {
		panelPtr = packBuf.Get().(*[]float64)
		if cap(*panelPtr) < blockDim*k {
			*panelPtr = make([]float64, blockDim*k)
		}
		panel = (*panelPtr)[:blockDim*k]
	}
	for j := 0; j < jb; j += blockDim {
		b0 := b[j*k : j*k+k : j*k+k]
		b1 := b[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
		b2 := b[(j+2)*k : (j+2)*k+k : (j+2)*k+k]
		b3 := b[(j+3)*k : (j+3)*k+k : (j+3)*k+k]
		if panel != nil {
			for p := 0; p < k; p++ {
				panel[4*p] = b0[p]
				panel[4*p+1] = b1[p]
				panel[4*p+2] = b2[p]
				panel[4*p+3] = b3[p]
			}
		}
		for i := 0; i < ib; i += blockDim {
			a0 := a[i*k : i*k+k : i*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
			var s [16]float64
			if useFMA && k > 0 {
				ntPanelFMA(&s, &a0[0], &a1[0], &a2[0], &a3[0], &panel[0], k)
			} else {
				for p := 0; p < k; p++ {
					v0, v1, v2, v3 := panel[4*p], panel[4*p+1], panel[4*p+2], panel[4*p+3]
					av := a0[p]
					s[0] = math.FMA(av, v0, s[0])
					s[1] = math.FMA(av, v1, s[1])
					s[2] = math.FMA(av, v2, s[2])
					s[3] = math.FMA(av, v3, s[3])
					av = a1[p]
					s[4] = math.FMA(av, v0, s[4])
					s[5] = math.FMA(av, v1, s[5])
					s[6] = math.FMA(av, v2, s[6])
					s[7] = math.FMA(av, v3, s[7])
					av = a2[p]
					s[8] = math.FMA(av, v0, s[8])
					s[9] = math.FMA(av, v1, s[9])
					s[10] = math.FMA(av, v2, s[10])
					s[11] = math.FMA(av, v3, s[11])
					av = a3[p]
					s[12] = math.FMA(av, v0, s[12])
					s[13] = math.FMA(av, v1, s[13])
					s[14] = math.FMA(av, v2, s[14])
					s[15] = math.FMA(av, v3, s[15])
				}
			}
			for r4 := 0; r4 < blockDim; r4++ {
				orow := out[(i+r4)*c+j : (i+r4)*c+j+blockDim : (i+r4)*c+j+blockDim]
				orow[0] += s[4*r4]
				orow[1] += s[4*r4+1]
				orow[2] += s[4*r4+2]
				orow[3] += s[4*r4+3]
			}
		}
	}
	if panelPtr != nil {
		packBuf.Put(panelPtr)
	}
	// Remainder columns across the blocked rows.
	if jb < c && ib > 0 {
		for i := 0; i < ib; i++ {
			ai := a[i*k : i*k+k : i*k+k]
			oi := out[i*c : i*c+c : i*c+c]
			for j := jb; j < c; j++ {
				bj := b[j*k : j*k+k : j*k+k]
				s := 0.0
				for p := 0; p < k; p++ {
					s = math.FMA(ai[p], bj[p], s)
				}
				oi[j] += s
			}
		}
	}
	// Remainder rows.
	if ib < r {
		for i := ib; i < r; i++ {
			ai := a[i*k : (i+1)*k]
			oi := out[i*c : (i+1)*c]
			for j := 0; j < c; j++ {
				bj := b[j*k : (j+1)*k]
				s := 0.0
				for p := 0; p < k; p++ {
					s = math.FMA(ai[p], bj[p], s)
				}
				oi[j] += s
			}
		}
	}
}

// matmulTNFast computes out += a^T @ b with a [k,r], b [k,c], out [r,c]:
// the fast-math sibling of matmulTN.
func matmulTNFast(out, a, b []float64, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a[p*r+i], a[p*r+i+1], a[p*r+i+2], a[p*r+i+3]
			av10, av11, av12, av13 := a[(p+1)*r+i], a[(p+1)*r+i+1], a[(p+1)*r+i+2], a[(p+1)*r+i+3]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if useFMA && c >= avxMinC {
				av := [8]float64{av00, av01, av02, av03, av10, av11, av12, av13}
				band2pFMA(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
				continue
			}
			for j, bv0 := range bp {
				bv1 := bq[j]
				o0[j] = math.FMA(av10, bv1, math.FMA(av00, bv0, o0[j]))
				o1[j] = math.FMA(av11, bv1, math.FMA(av01, bv0, o1[j]))
				o2[j] = math.FMA(av12, bv1, math.FMA(av02, bv0, o2[j]))
				o3[j] = math.FMA(av13, bv1, math.FMA(av03, bv0, o3[j]))
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			fmaAxpy(o0, bp, a[p*r+i])
			fmaAxpy(o1, bp, a[p*r+i+1])
			fmaAxpy(o2, bp, a[p*r+i+2])
			fmaAxpy(o3, bp, a[p*r+i+3])
		}
	}
	// Remainder rows: p-outer fused axpy over the tail rows of out.
	if ib < r {
		for p := 0; p < k; p++ {
			ap := a[p*r : p*r+r : p*r+r]
			bp := b[p*c : p*c+c : p*c+c]
			for i := ib; i < r; i++ {
				fmaAxpy(out[i*c:i*c+c:i*c+c], bp, ap[i])
			}
		}
	}
}

// dotFast returns the fused striped dot product of a and b, mirroring
// dotFMA's accumulation order exactly on hosts without FMA.
func dotFast(a, b []float64) float64 {
	n := len(a)
	if useFMA && n >= avxMinC {
		return dotFMA(&a[0], &b[0], n)
	}
	var acc [8]float64
	p := 0
	for ; p+8 <= n; p += 8 {
		acc[0] = math.FMA(a[p], b[p], acc[0])
		acc[1] = math.FMA(a[p+1], b[p+1], acc[1])
		acc[2] = math.FMA(a[p+2], b[p+2], acc[2])
		acc[3] = math.FMA(a[p+3], b[p+3], acc[3])
		acc[4] = math.FMA(a[p+4], b[p+4], acc[4])
		acc[5] = math.FMA(a[p+5], b[p+5], acc[5])
		acc[6] = math.FMA(a[p+6], b[p+6], acc[6])
		acc[7] = math.FMA(a[p+7], b[p+7], acc[7])
	}
	tail := 0.0
	for ; p < n; p++ {
		tail = math.FMA(a[p], b[p], tail)
	}
	a0 := acc[0] + acc[4]
	a1 := acc[1] + acc[5]
	a2 := acc[2] + acc[6]
	a3 := acc[3] + acc[7]
	return (a0 + a2) + (a1 + a3) + tail
}

// attnScoresFast fills out [B,T] with scores[b,t] = dec[b] · enc[b,t]
// using the striped fused dot: the fast-math sibling of the scalar loop
// in Tape.AttnScores.
func attnScoresFast(out, dec, enc []float64, B, T, H int) {
	for b := 0; b < B; b++ {
		db := dec[b*H : (b+1)*H]
		ob := out[b*T : (b+1)*T]
		eb := enc[b*T*H : (b+1)*T*H]
		for tt := 0; tt < T; tt++ {
			ob[tt] = dotFast(db, eb[tt*H:(tt+1)*H])
		}
	}
}

// weightedSumFast fills out [B,H] with ctx[b] = sum_t alpha[b,t] *
// enc[b,t]: the fast-math sibling of the scalar loop in
// Tape.WeightedSum — fused axpy per timestep, no skip-zero test.
func weightedSumFast(out, alpha, enc []float64, B, T, H int) {
	for b := 0; b < B; b++ {
		ob := out[b*H : (b+1)*H : (b+1)*H]
		for tt := 0; tt < T; tt++ {
			fmaAxpy(ob, enc[(b*T+tt)*H:(b*T+tt+1)*H], alpha[b*T+tt])
		}
	}
}

// attnScoresGroupedFast fills out [L,T] with scores[l,t] =
// dec[l] · enc[groups[l]*T+t]: the fast-math sibling of the grouped
// scalar loop in Tape.AttnScoresGrouped. Per (row, position) it runs the
// exact dotFast arithmetic of attnScoresFast — the block indirection
// changes which rows are read, never how a dot accumulates — so a
// grouped fast decode is bitwise equal to a tiled fast decode.
func attnScoresGroupedFast(out, dec, enc []float64, groups []int, T, H int) {
	for l, g := range groups {
		dl := dec[l*H : (l+1)*H]
		ob := out[l*T : (l+1)*T]
		eb := enc[g*T*H : (g+1)*T*H]
		for tt := 0; tt < T; tt++ {
			ob[tt] = dotFast(dl, eb[tt*H:(tt+1)*H])
		}
	}
}

// weightedSumGroupedFast fills out [L,H] with ctx[l] = sum_t alpha[l,t]
// * enc[groups[l]*T+t]: the fast-math sibling of the grouped scalar loop
// in Tape.WeightedSumGrouped — fused axpy per block row, no skip-zero
// test, matching weightedSumFast per row bitwise.
func weightedSumGroupedFast(out, alpha, enc []float64, groups []int, T, H int) {
	for l, g := range groups {
		ob := out[l*H : (l+1)*H : (l+1)*H]
		eb := enc[g*T*H : (g+1)*T*H]
		for tt := 0; tt < T; tt++ {
			fmaAxpy(ob, eb[tt*H:(tt+1)*H], alpha[l*T+tt])
		}
	}
}
