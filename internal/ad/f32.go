// Single-precision forward-op implementations. Every Tape op dispatches
// here when t.f32 && !t.grad (see NewForwardF32); each method mirrors
// its float64 sibling's shape contract and loop structure, reads inputs
// through f32w (cached W32 views of parameters, lazy conversion for
// per-call constants), and writes float32 outputs drawn from the pool's
// f32 free list. No gradients exist on f32 tapes, so none of these
// record backward closures.
package ad

import (
	"fmt"
	"math"
)

func (t *Tape) matMulF32(a, b *V) *V {
	out := t.new(a.R, b.C)
	matmul32(out.W32, f32w(a), f32w(b), a.R, a.C, b.C)
	return out
}

func (t *Tape) addF32(a, b *V) *V {
	aw, bw := f32w(a), f32w(b)
	if b.R == 1 && a.C == b.C && a.R != 1 {
		out := t.new(a.R, a.C)
		for i := 0; i < a.R; i++ {
			vadd32(out.W32[i*a.C:(i+1)*a.C], aw[i*a.C:(i+1)*a.C], bw)
		}
		return out
	}
	sameShape("Add", a, b)
	out := t.new(a.R, a.C)
	vadd32(out.W32, aw, bw)
	return out
}

func (t *Tape) subF32(a, b *V) *V {
	aw, bw := f32w(a), f32w(b)
	out := t.new(a.R, a.C)
	for i := range out.W32 {
		out.W32[i] = aw[i] - bw[i]
	}
	return out
}

func (t *Tape) mulF32(a, b *V) *V {
	aw, bw := f32w(a), f32w(b)
	out := t.new(a.R, a.C)
	for i := range out.W32 {
		out.W32[i] = aw[i] * bw[i]
	}
	return out
}

func (t *Tape) scaleF32(a *V, s float64) *V {
	aw, sf := f32w(a), float32(s)
	out := t.new(a.R, a.C)
	for i := range out.W32 {
		out.W32[i] = aw[i] * sf
	}
	return out
}

// sigmoidF32 runs the logistic function through the vector exp: negate
// into the output buffer, exponentiate 8 lanes at a time, then the
// scalar 1/(1+e) pass — the same arithmetic as sigmoidf32 modulo
// expv32's vector-vs-scalar ulps.
func (t *Tape) sigmoidF32(a *V) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	ow := out.W32
	for i, x := range aw {
		ow[i] = -x
	}
	expv32(ow, ow)
	for i, e := range ow {
		ow[i] = 1 / (1 + e)
	}
	return out
}

// tanhF32 mirrors tanhf32 through the vector exp: e = exp(-2|x|)
// batched, then the rational form with tanhf32's exact saturation and
// NaN edges restored per element from the original input.
func (t *Tape) tanhF32(a *V) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	ow := out.W32
	for i, x := range aw {
		if x < 0 {
			x = -x
		}
		ow[i] = -2 * x
	}
	expv32(ow, ow)
	for i, x := range aw {
		e := ow[i]
		v := (1 - e) / (1 + e)
		switch {
		case x != x:
			v = x
		case x > 9.01:
			v = 1
		case x < -9.01:
			v = -1
		case x < 0:
			v = -v
		}
		ow[i] = v
	}
	return out
}

func (t *Tape) reluF32(a *V) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	for i := range out.W32 {
		if aw[i] > 0 {
			out.W32[i] = aw[i]
		}
	}
	return out
}

func (t *Tape) concatColsF32(r, c int, vs []*V) *V {
	out := t.new(r, c)
	off := 0
	for _, v := range vs {
		vw := f32w(v)
		for i := 0; i < r; i++ {
			copy(out.W32[i*c+off:i*c+off+v.C], vw[i*v.C:(i+1)*v.C])
		}
		off += v.C
	}
	return out
}

func (t *Tape) sliceColsF32(a *V, lo, hi int) *V {
	aw := f32w(a)
	out := t.new(a.R, hi-lo)
	for i := 0; i < a.R; i++ {
		copy(out.W32[i*out.C:(i+1)*out.C], aw[i*a.C+lo:i*a.C+hi])
	}
	return out
}

func (t *Tape) rowsF32(a *V, idx []int) *V {
	aw := f32w(a)
	out := t.new(len(idx), a.C)
	for i, id := range idx {
		if id < 0 || id >= a.R {
			panic(fmt.Sprintf("ad: Rows index %d out of %d", id, a.R))
		}
		copy(out.W32[i*a.C:(i+1)*a.C], aw[id*a.C:(id+1)*a.C])
	}
	return out
}

func (t *Tape) dropoutF32(a *V, p float64, rng func() float64) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	scale := float32(1 / (1 - p))
	for i := range aw {
		if rng() >= p {
			out.W32[i] = aw[i] * scale
		}
	}
	return out
}

func (t *Tape) softmaxRowsMaskedF32(a *V, mask []float64) *V {
	B, T := a.R, a.C
	aw := f32w(a)
	out := t.new(B, T)
	for b := 0; b < B; b++ {
		softmaxRowMasked32(out.W32[b*T:(b+1)*T], aw[b*T:(b+1)*T], mask[b*T:(b+1)*T])
	}
	return out
}

func (t *Tape) softmaxRowsMaskedGroupedF32(a *V, mask []float64, groups []int) *V {
	L, T := a.R, a.C
	aw := f32w(a)
	out := t.new(L, T)
	for l, g := range groups {
		softmaxRowMasked32(out.W32[l*T:(l+1)*T], aw[l*T:(l+1)*T], mask[g*T:(g+1)*T])
	}
	return out
}

// softmaxRowMasked32 is one row of SoftmaxRowsMasked in float32: mask
// entries of 0 are -inf (padding), a fully masked row stays all-zero.
// The exponentials run through the vector exp with out as scratch;
// masked positions are exponentiated too (their shifted scores may
// exceed zero, even overflow — both harmless) and zeroed before the
// ascending-order sum, which adds exactly the unmasked terms the scalar
// form added.
func softmaxRowMasked32(out, row []float32, mask []float64) {
	max := float32(math.Inf(-1))
	any := false
	for tt, x := range row {
		if mask[tt] != 0 && (!any || x > max) {
			max, any = x, true
		}
	}
	if !any {
		return // fully masked row: all-zero attention
	}
	for tt, x := range row {
		out[tt] = x - max
	}
	expv32(out, out)
	var sum float32
	for tt := range out {
		if mask[tt] == 0 {
			out[tt] = 0
			continue
		}
		sum += out[tt]
	}
	for tt := range out {
		out[tt] /= sum
	}
}

func (t *Tape) stackRowsF32(vs []*V, T, B, C int) *V {
	out := t.new(B*T, C)
	for tt, v := range vs {
		if v.R != B || v.C != C {
			panic("ad: StackRows shape mismatch")
		}
		vw := f32w(v)
		for b := 0; b < B; b++ {
			copy(out.W32[(b*T+tt)*C:(b*T+tt+1)*C], vw[b*C:(b+1)*C])
		}
	}
	return out
}

func (t *Tape) maskRowsF32(a *V, mask []float64) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		if mask[i] != 0 {
			copy(out.W32[i*a.C:(i+1)*a.C], aw[i*a.C:(i+1)*a.C])
		}
	}
	return out
}

func (t *Tape) blendF32(a, b *V, mask []float64) *V {
	aw, bw := f32w(a), f32w(b)
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		src := bw
		if mask[i] != 0 {
			src = aw
		}
		copy(out.W32[i*a.C:(i+1)*a.C], src[i*a.C:(i+1)*a.C])
	}
	return out
}

func (t *Tape) layerNormF32(a, gain, bias *V, eps float64) *V {
	R, C := a.R, a.C
	aw, gw, bw := f32w(a), f32w(gain), f32w(bias)
	out := t.new(R, C)
	for i := 0; i < R; i++ {
		row := aw[i*C : (i+1)*C]
		// Mean and variance accumulate in float64: C terms of cancellation
		// would otherwise cost most of the float32 mantissa.
		m := 0.0
		for _, x := range row {
			m += float64(x)
		}
		m /= float64(C)
		v := 0.0
		for _, x := range row {
			d := float64(x) - m
			v += d * d
		}
		v /= float64(C)
		is := float32(1 / math.Sqrt(v+eps))
		mf := float32(m)
		orow := out.W32[i*C : (i+1)*C]
		for j, x := range row {
			orow[j] = (x-mf)*is*gw[j] + bw[j]
		}
	}
	return out
}

func (t *Tape) addRowsConstF32(a *V, c []float64) *V {
	if len(c) != a.R*a.C {
		panic("ad: AddRowsConst length mismatch")
	}
	aw := f32w(a)
	out := t.new(a.R, a.C)
	for i := range aw {
		out.W32[i] = aw[i] + float32(c[i])
	}
	return out
}

func (t *Tape) gatherRowBlocksF32(a *V, idx []int, block, nb, stride int) *V {
	aw := f32w(a)
	out := t.new(len(idx)*block, a.C)
	for i, id := range idx {
		if id < 0 || id >= nb {
			panic(fmt.Sprintf("ad: GatherRowBlocks index %d out of %d blocks", id, nb))
		}
		copy(out.W32[i*stride:(i+1)*stride], aw[id*stride:(id+1)*stride])
	}
	return out
}

func (t *Tape) stackRowBlocksF32(vs []*V, block, C int) *V {
	out := t.new(len(vs)*block, C)
	for i, v := range vs {
		if v.C != C || v.R > block {
			panic(fmt.Sprintf("ad: StackRowBlocks %dx%d into %d-row blocks of %d cols", v.R, v.C, block, C))
		}
		copy(out.W32[i*block*C:], f32w(v))
	}
	return out
}

func (t *Tape) logSoftmaxRowsF32(a *V) *V {
	aw := f32w(a)
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		logSoftmaxRow32(out.W32[i*a.C:(i+1)*a.C], aw[i*a.C:(i+1)*a.C])
	}
	return out
}
