package ad

import (
	"math"
	"math/rand"
	"testing"
)

// withAVX2 runs f twice — vector path forced on (when the host has it)
// and forced off — and returns both results for bitwise comparison.
// Serial only: it flips the package-level dispatch flag.
func withAVX2(f func() []float64) (vec, scalar []float64) {
	saved := useAVX2
	defer func() { useAVX2 = saved }()
	useAVX2 = saved // vector path only exists where detection succeeded
	vec = f()
	useAVX2 = false
	scalar = f()
	return vec, scalar
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBandKernelAVX2Bitwise pins the AVX2 band and axpy micro-kernels
// to the pure-Go kernels bitwise across randomized shapes, including
// sub-vector tails, denormals-by-product, and special values in b.
func TestBandKernelAVX2Bitwise(t *testing.T) {
	if !useAVX2 {
		t.Skip("host has no AVX2; vector path unreachable")
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		rr := 4 + r.Intn(9) // at least one full band
		k := 1 + r.Intn(17)
		c := 1 + r.Intn(37) // exercises c < avxMinC and ragged tails
		a := make([]float64, rr*k)
		b := make([]float64, k*c)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		switch trial % 5 {
		case 1: // zeros in a exercise the skip paths around the asm call
			a[r.Intn(len(a))] = 0
		case 2: // special values in b flow through mul/add identically
			b[r.Intn(len(b))] = math.Inf(1)
			b[r.Intn(len(b))] = math.NaN()
		case 3:
			b[r.Intn(len(b))] = math.Copysign(0, -1)
		}
		vec, scalar := withAVX2(func() []float64 {
			out := make([]float64, rr*c)
			matmul(out, a, b, rr, k, c)
			return out
		})
		if !bitsEqual(vec, scalar) {
			t.Fatalf("matmul vector/scalar mismatch at trial %d (r=%d k=%d c=%d)", trial, rr, k, c)
		}
		vecTN, scalarTN := withAVX2(func() []float64 {
			out := make([]float64, rr*c)
			matmulTN(out, a, b[:k*c], rr, k, c)
			return out
		})
		_ = scalarTN
		if !bitsEqual(vecTN, scalarTN) {
			t.Fatalf("matmulTN vector/scalar mismatch at trial %d (r=%d k=%d c=%d)", trial, rr, k, c)
		}
	}
}

// TestAxpyAVX2Bitwise covers every tail length through the unrolled,
// single-vector, and scalar segments of axpyAVX2.
func TestAxpyAVX2Bitwise(t *testing.T) {
	if !useAVX2 {
		t.Skip("host has no AVX2; vector path unreachable")
	}
	r := rand.New(rand.NewSource(13))
	for n := avxMinC; n < avxMinC+40; n++ {
		o := make([]float64, n)
		b := make([]float64, n)
		for i := range o {
			o[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		b[n/2] = math.Inf(-1)
		s := r.NormFloat64()
		vec, scalar := withAVX2(func() []float64 {
			out := append([]float64(nil), o...)
			axpy(out, b, s)
			return out
		})
		if !bitsEqual(vec, scalar) {
			t.Fatalf("axpy vector/scalar mismatch at n=%d", n)
		}
	}
}

// BenchmarkBandKernel measures the band matmul at the decoder's
// out-projection shape for both dispatch settings.
func BenchmarkBandKernel(b *testing.B) {
	const rr, k, c = 40, 64, 404
	a := make([]float64, rr*k)
	bm := make([]float64, k*c)
	out := make([]float64, rr*c)
	r := rand.New(rand.NewSource(17))
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range bm {
		bm[i] = r.NormFloat64()
	}
	for _, vec := range []bool{false, true} {
		name := "go"
		if vec {
			name = "avx2"
		}
		b.Run(name, func(b *testing.B) {
			if vec && !useAVX2 {
				b.Skip("host has no AVX2")
			}
			saved := useAVX2
			useAVX2 = vec
			defer func() { useAVX2 = saved }()
			for i := 0; i < b.N; i++ {
				matmul(out, a, bm, rr, k, c)
			}
			b.SetBytes(int64(rr * k * c * 16)) // 2 flops × 8 bytes/flop proxy
		})
	}
}
