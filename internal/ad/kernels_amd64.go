//go:build amd64

package ad

// The assembly micro-kernels below vectorize the hot inner loops of the
// band-fused matmul kernels with AVX2. They use separate VMULPD/VADDPD
// (never FMA): a fused multiply-add rounds once where scalar Go code
// rounds twice, so FMA would break the kernels' bitwise contract. With
// separate ops every SIMD lane performs exactly the scalar sequence
// out = (out + a0*b0) + a1*b1 on the same IEEE-754 doubles, so the
// vector path is bitwise-identical to the Go path by construction;
// TestBandKernelAVX2Bitwise and the kernel oracle enforce it.

// avxMinC is the minimum row width before band2pAVX2 pays for its call
// overhead; every model GEMM (gate, projection, vocabulary widths) is
// far above it.
const avxMinC = 8

// band2pAVX2 applies two fused axpy steps to a four-row band:
//
//	o_r[j] = (o_r[j] + av[r]*bp[j]) + av[4+r]*bq[j]   r=0..3, j=0..n-1
//
// matching the all-nonzero fast path of matmul/matmulTN bitwise.
//
//go:noescape
func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)

// axpyAVX2 computes o[j] += s*b[j] for j=0..n-1; s is nonzero.
//
//go:noescape
func axpyAVX2(o, b *float64, s float64, n int)
