//go:build amd64

package ad

// The assembly micro-kernels below vectorize the hot inner loops of the
// band-fused matmul kernels with AVX2. They use separate VMULPD/VADDPD
// (never FMA): a fused multiply-add rounds once where scalar Go code
// rounds twice, so FMA would break the kernels' bitwise contract. With
// separate ops every SIMD lane performs exactly the scalar sequence
// out = (out + a0*b0) + a1*b1 on the same IEEE-754 doubles, so the
// vector path is bitwise-identical to the Go path by construction;
// TestBandKernelAVX2Bitwise and the kernel oracle enforce it.

// avxMinC is the minimum row width before band2pAVX2 pays for its call
// overhead; every model GEMM (gate, projection, vocabulary widths) is
// far above it.
const avxMinC = 8

// band2pAVX2 applies two fused axpy steps to a four-row band:
//
//	o_r[j] = (o_r[j] + av[r]*bp[j]) + av[4+r]*bq[j]   r=0..3, j=0..n-1
//
// matching the all-nonzero fast path of matmul/matmulTN bitwise.
//
//go:noescape
func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)

// axpyAVX2 computes o[j] += s*b[j] for j=0..n-1; s is nonzero.
//
//go:noescape
func axpyAVX2(o, b *float64, s float64, n int)

// ntPanelAVX2 is the 4x4 matmulNT micro-kernel over a packed panel
// (panel[4p+jj] = b_{j+jj}[p]): it computes the sixteen dot products
//
//	s[4*r+jj] = sum_p a_r[p] * panel[4p+jj]   r,jj = 0..3
//
// with separate VMULPD/VADDPD and one ascending-p accumulator chain per
// output element, so each SIMD lane reproduces the Go panel loop's
// s += av*v sequence bitwise. Accumulators start at zero; the caller
// adds s into out.
//
//go:noescape
func ntPanelAVX2(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)

// The FMA kernels below are the fast-math inference siblings
// (kernels_fast.go): same loop structure and the same ascending-p
// accumulation order as the bitwise kernels, but every multiply-add is
// a single VFMADD231PD — one rounding where the training kernels round
// twice. They are bitwise-identical to the pure-Go math.FMA mirrors in
// kernels_fast.go (TestFastKernelsFMABitwise), NOT to the scalar
// references; only fast-math tapes (ad.NewForwardFast) may reach them.

// band2pFMA is band2pAVX2 with fused rounding:
//
//	o_r[j] = fma(av[4+r], bq[j], fma(av[r], bp[j], o_r[j]))   r=0..3
//
//go:noescape
func band2pFMA(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)

// axpyFMA computes o[j] = fma(s, b[j], o[j]) for j=0..n-1.
//
//go:noescape
func axpyFMA(o, b *float64, s float64, n int)

// ntPanelFMA is ntPanelAVX2 with fused rounding:
// s[4*r+jj] = fma(a_r[p], panel[4p+jj], s[4*r+jj]) ascending p.
//
//go:noescape
func ntPanelFMA(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)

// dotFMA returns the striped fused dot product of a[:n] and b[:n]: eight
// accumulator lanes stepped by 8, reduced ((A0+A2)+(A1+A3)) with
// A_l = acc[l]+acc[l+4], plus a single-chain fused n%8 tail.
//
//go:noescape
func dotFMA(a, b *float64, n int) float64

// The float32 kernels below serve the f32 inference tier
// (kernels_f32.go): 8-lane VFMADD231PS where the f64 FMA kernels run 4
// doubles per vector. Unlike the f64 tiers they are NOT bitwise-pinned
// to their pure-Go mirrors — the Go mirrors fuse through float64, which
// can double-round against hardware single-precision FMA on
// round-to-nearest ties — so asm and fallback are held together by ULP
// bounds (TestF32KernelsULPBound) instead.

// band2pFMA32 is band2pFMA in float32, 8 lanes per vector:
//
//	o_r[j] = fma(av[4+r], bq[j], fma(av[r], bp[j], o_r[j]))   r=0..3
//
//go:noescape
func band2pFMA32(o0, o1, o2, o3, bp, bq *float32, av *[8]float32, n int)

// axpyFMA32 computes o[j] = fma(s, b[j], o[j]) for j=0..n-1 in float32.
//
//go:noescape
func axpyFMA32(o, b *float32, s float32, n int)

// dotFMA32 returns the striped fused float32 dot product of a[:n] and
// b[:n]: sixteen accumulator lanes (two 8-float32 vectors) stepped by
// 16, reduced lane-pairwise, plus a single-chain fused n%16 tail.
//
//go:noescape
func dotFMA32(a, b *float32, n int) float32

// vexpFMA32 fills o[i] = exp(x[i]) for i < n (n a multiple of 8, n > 0)
// with expf32's reduction and polynomial, 8 lanes per vector: n rounds
// to nearest-even via VCVTPS2DQ, the polynomial runs on VFMADD213PS,
// and the 2^n scale uses the same two half-factor products as the
// scalar. Saturation (+Inf above expMaxIn, 0 below expMinIn) and NaN
// propagation are applied by masks compared against the original input,
// matching the scalar edges exactly. consts points at expConsts32's 14
// pre-broadcast 8-lane constant rows.
//
//go:noescape
func vexpFMA32(o, x, consts *float32, n int)

// vaddFMA32 computes o[j] = a[j] + b[j] for j < n: plain VADDPS, so —
// unlike the fused kernels — bitwise-identical to the scalar loop.
//
//go:noescape
func vaddFMA32(o, a, b *float32, n int)
