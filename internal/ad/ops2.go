package ad

import "math"

// ReLU returns the elementwise rectifier max(0, x).
func (t *Tape) ReLU(a *V) *V {
	if t.f32 && !t.grad {
		return t.reluF32(a)
	}
	out := t.new(a.R, a.C)
	for i := range a.W {
		if a.W[i] > 0 {
			out.W[i] = a.W[i]
		}
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				if a.W[i] > 0 {
					a.G[i] += out.G[i]
				}
			}
		})
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the learned elementwise gain and bias (both [1,C]).
func (t *Tape) LayerNorm(a, gain, bias *V) *V {
	const eps = 1e-5
	R, C := a.R, a.C
	if gain.C != C || bias.C != C || gain.R != 1 || bias.R != 1 {
		panic("ad: LayerNorm parameter shape mismatch")
	}
	if t.f32 && !t.grad {
		return t.layerNormF32(a, gain, bias, eps)
	}
	out := t.new(R, C)
	means := make([]float64, R)
	invStd := make([]float64, R)
	norm := make([]float64, R*C) // cached normalized values for backward
	for i := 0; i < R; i++ {
		row := a.W[i*C : (i+1)*C]
		m := 0.0
		for _, x := range row {
			m += x
		}
		m /= float64(C)
		v := 0.0
		for _, x := range row {
			d := x - m
			v += d * d
		}
		v /= float64(C)
		is := 1 / math.Sqrt(v+eps)
		means[i], invStd[i] = m, is
		for j, x := range row {
			nx := (x - m) * is
			norm[i*C+j] = nx
			out.W[i*C+j] = nx*gain.W[j] + bias.W[j]
		}
	}
	if t.grad {
		t.record(func() {
			for i := 0; i < R; i++ {
				// dL/dnorm_j = g_j * gain_j; then the standard layernorm
				// backward through mean and variance.
				var sumDn, sumDnN float64
				dn := make([]float64, C)
				for j := 0; j < C; j++ {
					g := out.G[i*C+j]
					gain.G[j] += g * norm[i*C+j]
					bias.G[j] += g
					dn[j] = g * gain.W[j]
					sumDn += dn[j]
					sumDnN += dn[j] * norm[i*C+j]
				}
				is := invStd[i]
				for j := 0; j < C; j++ {
					a.G[i*C+j] += is * (dn[j] - sumDn/float64(C) - norm[i*C+j]*sumDnN/float64(C))
				}
			}
		})
	}
	return out
}

// AddRowsConst adds a constant (non-learned) matrix to a — used for
// sinusoidal positional encodings.
func (t *Tape) AddRowsConst(a *V, c []float64) *V {
	if t.f32 && !t.grad {
		return t.addRowsConstF32(a, c)
	}
	if len(c) != len(a.W) {
		panic("ad: AddRowsConst length mismatch")
	}
	out := t.new(a.R, a.C)
	for i := range a.W {
		out.W[i] = a.W[i] + c[i]
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i]
			}
		})
	}
	return out
}
