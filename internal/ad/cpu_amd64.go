//go:build amd64

package ad

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the extended-state enable mask.
func xgetbv() (eax, edx uint32)

// useAVX2 gates the vector micro-kernels in kernels_amd64.s. It is a
// variable (not a constant) so the kernel oracle tests can force the
// pure-Go path on AVX2 hosts and compare the two bitwise.
var useAVX2 = detectAVX2()

// useFMA gates the fused-multiply-add inference kernels in
// kernels_amd64.s (band2pFMA, axpyFMA, ntPanelFMA). FMA uses the same
// YMM state as AVX2, so it is only probed once detectAVX2 passed. Also
// a variable so the fast-kernel tests can force the pure-Go math.FMA
// mirror and compare it to the assembly bitwise.
var useFMA = useAVX2 && detectFMA()

// detectFMA reports whether the host supports FMA3 (CPUID leaf 1 ECX
// bit 12).
func detectFMA() bool {
	_, _, ecx1, _ := cpuid(1, 0)
	const fma = 1 << 12
	return ecx1&fma != 0
}

// detectAVX2 reports whether the host supports AVX2 and the OS has
// enabled YMM state saving (OSXSAVE + XCR0 bits 1 and 2).
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
