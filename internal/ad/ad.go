// Package ad implements reverse-mode automatic differentiation over dense
// float64 matrices: the minimal tensor substrate needed to train the
// paper's bidirectional-LSTM encoder / attention-decoder model in pure Go.
// A Tape records backward closures during the forward pass; Backward runs
// them in reverse order, accumulating gradients into each value's G slice.
package ad

import (
	"fmt"
	"math"
)

// V is a matrix value with storage for its gradient. Values participating
// in training (parameters) are long-lived; intermediate values are created
// per forward pass.
//
// A value carries float64 storage (W), float32 storage (W32), or both.
// Training and full-precision inference use W exclusively; f32 forward
// tapes (NewForwardF32) compute entirely in W32. Long-lived parameters
// gain a cached W32 view via SyncF32 once, at precision-selection time,
// so the f32 decode path never converts weights per step. A value loaded
// directly from a quantized model for f32 serving may have W32 only.
type V struct {
	R, C int
	W    []float64 // row-major values
	G    []float64 // gradient, same shape
	W32  []float32 // float32 values (f32 inference engine storage)
}

// New allocates a zero matrix.
func New(r, c int) *V {
	return &V{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c) into a value; the slice is used
// directly, not copied.
func FromSlice(r, c int, data []float64) *V {
	if len(data) != r*c {
		panic(fmt.Sprintf("ad: FromSlice %dx%d with %d elements", r, c, len(data)))
	}
	return &V{R: r, C: c, W: data, G: make([]float64, r*c)}
}

// Elems returns the number of scalar elements the value stores,
// regardless of which precision backs it.
func (v *V) Elems() int {
	if len(v.W) > 0 {
		return len(v.W)
	}
	return len(v.W32)
}

// SyncF32 materializes (or refreshes) the value's float32 view from its
// float64 weights. Models call it once per parameter when an f32
// inference engine is selected, so shared weights are converted exactly
// once; it must not race with concurrent readers of W32 (convert before
// serving, like SetFastMath). Values without f64 storage keep their W32
// as is.
func (v *V) SyncF32() {
	if len(v.W) == 0 {
		return
	}
	if len(v.W32) != len(v.W) {
		v.W32 = make([]float32, len(v.W))
	}
	for i, x := range v.W {
		v.W32[i] = float32(x)
	}
}

// f32w returns v's float32 storage, converting lazily from W when
// absent. Lazy conversion serves per-call constants (zero states,
// pooling weights) that are goroutine-local; long-lived shared values
// must be converted eagerly via SyncF32 before concurrent f32 use.
func f32w(v *V) []float32 {
	if v.W32 != nil {
		return v.W32
	}
	v.SyncF32()
	return v.W32
}

// At returns the element at row i, column j.
func (v *V) At(i, j int) float64 { return v.W[i*v.C+j] }

// Set assigns the element at row i, column j.
func (v *V) Set(i, j int, x float64) { v.W[i*v.C+j] = x }

// ZeroGrad clears the gradient.
func (v *V) ZeroGrad() {
	for i := range v.G {
		v.G[i] = 0
	}
}

// Tape records the backward pass. A recording tape (NewTape) retains a
// backward closure — and therefore every intermediate value — for each
// op, which is what training needs and exactly what inference must not
// do: a beam search that appends maxLen × width decode steps to one
// recording tape holds the whole search in memory. A forward tape
// (NewForward) records nothing and can recycle intermediate storage
// between decode steps through a Pool.
type Tape struct {
	backward []func()
	// grad marks a recording tape; forward tapes skip all backward
	// bookkeeping.
	grad bool
	// pool recycles value storage on forward tapes (may be nil).
	pool *Pool
	// live tracks pool-eligible values allocated since the last Keep or
	// ReleaseExcept.
	live []*V
	// fast marks an inference-only fast-math tape (NewForwardFast):
	// matmuls dispatch to the fused-rounding kernels in kernels_fast.go.
	// Only the forward-only constructor can set it, and MatMul
	// additionally requires !grad, so a recording tape can never reach
	// the fast kernels.
	fast bool
	// f32 marks a single-precision forward tape (NewForwardF32): every
	// op computes in float32 (V.W32) through the kernels in
	// kernels_f32.go. Like fast, only the forward-only constructor sets
	// it and every dispatch additionally requires !grad, so recording
	// tapes provably cannot reach the f32 kernels (TestF32Dispatch).
	f32 bool
}

// NewTape returns an empty recording tape for training.
func NewTape() *Tape { return &Tape{grad: true} }

// NewTraining returns a recording tape that draws intermediate values
// (with gradient storage) from pool and returns them on Reset. A
// training loop that runs one forward+backward per shard on such a tape
// allocates a steady state once and then recycles it every step. pool
// may be nil, which degrades to NewTape behavior.
func NewTraining(pool *Pool) *Tape { return &Tape{grad: true, pool: pool} }

// NewForward returns a forward-only tape: no backward closures are
// recorded, so intermediates become garbage as soon as they are
// unreferenced. pool (may be nil) additionally allows explicit storage
// reuse via ReleaseExcept.
func NewForward(pool *Pool) *Tape { return &Tape{pool: pool} }

// NewForwardFast returns a forward-only tape whose matmuls use the
// fast-math inference kernels: fused multiply-add rounding and no
// skip-zero tests (kernels_fast.go). Results are deterministic but not
// bitwise-equal to NewForward; accuracy against the full-precision path
// is governed by the accbudget harness, not the bitwise oracle. There
// is deliberately no recording variant: training requires the bitwise
// kernels.
func NewForwardFast(pool *Pool) *Tape { return &Tape{pool: pool, fast: true} }

// NewForwardF32 returns a forward-only single-precision tape: every op
// computes in float32 storage (V.W32) with fused-rounding 8-lane
// kernels and fast float32 transcendentals (kernels_f32.go). It is the
// third engine tier after exact-f64 and fast-f64: deterministic for a
// given input and host, but a different numeric contract governed by
// the accbudget harness. There is deliberately no recording variant —
// training stays float64 on the bitwise kernels — and inputs' float64
// weights must be synced once via SyncF32 (Model.SetPrecision does)
// before concurrent use.
func NewForwardF32(pool *Pool) *Tape { return &Tape{pool: pool, fast: true, f32: true} }

// Recording reports whether the tape retains a backward pass.
func (t *Tape) Recording() bool { return t.grad }

// FastMath reports whether the tape dispatches matmuls to the fast-math
// inference kernels.
func (t *Tape) FastMath() bool { return t.fast && !t.grad }

// F32 reports whether the tape computes in single precision.
func (t *Tape) F32() bool { return t.f32 && !t.grad }

// new allocates an op output: with gradient storage on recording tapes,
// gradient-free on forward tapes; pool-recycled on pooled tapes.
func (t *Tape) new(r, c int) *V {
	if t.grad {
		if t.pool == nil {
			return New(r, c)
		}
		v := t.pool.getGrad(r, c)
		t.live = append(t.live, v)
		return v
	}
	var v *V
	if t.f32 {
		if t.pool != nil {
			v = t.pool.get32(r, c)
		} else {
			v = &V{R: r, C: c, W32: make([]float32, r*c)}
		}
	} else if t.pool != nil {
		v = t.pool.get(r, c)
	} else {
		v = &V{R: r, C: c, W: make([]float64, r*c)}
	}
	t.live = append(t.live, v)
	return v
}

// scratch allocates an n-element float buffer with the same lifetime as
// the tape's op outputs: pool-recycled where the tape is pooled. Ops use
// it for internal state (softmax probabilities, dropout masks) that the
// backward closure needs but that is not itself a differentiable value.
func (t *Tape) scratch(n int) []float64 {
	if t.pool == nil {
		return make([]float64, n)
	}
	v := t.pool.get(n, 1)
	t.live = append(t.live, v)
	return v.W
}

// scratch32 is scratch for single-precision tapes: an n-element float32
// buffer recycled through the pool where the tape is pooled.
func (t *Tape) scratch32(n int) []float32 {
	if t.pool == nil {
		return make([]float32, n)
	}
	v := t.pool.get32(n, 1)
	t.live = append(t.live, v)
	return v.W32
}

// Keep marks every value allocated on the tape so far as permanent:
// later ReleaseExcept calls will not recycle them. Beam search calls it
// once after encoding, so the encoder outputs survive all decode steps.
func (t *Tape) Keep() { t.live = t.live[:0] }

// ReleaseExcept returns the values allocated since the last Keep or
// ReleaseExcept to the tape's pool, except those listed in keep, which
// stay tracked and are recycled by a later call once dropped from the
// keep set. No-op on recording tapes (the backward pass needs every
// value) and on pool-less forward tapes (the garbage collector already
// reclaims unreferenced values).
func (t *Tape) ReleaseExcept(keep ...*V) {
	if t.grad || t.pool == nil {
		t.live = t.live[:0]
		return
	}
	kept := t.live[:0]
scan:
	for _, v := range t.live {
		// Keep lists are a handful of surviving states; a linear scan
		// beats allocating a set every decode step.
		for _, k := range keep {
			if v == k {
				kept = append(kept, v)
				continue scan
			}
		}
		t.pool.put(v)
	}
	t.live = kept
}

// Reset returns every value the tape allocated to its pool and clears
// the recorded backward pass, retaining slice capacity. Externally
// created values (parameters) are untouched. Training shard workers call
// it between shards so each step reuses the previous step's storage; do
// not mix with Keep, which hides values from Reset.
func (t *Tape) Reset() {
	if t.pool != nil {
		for _, v := range t.live {
			t.pool.put(v)
		}
	}
	t.live = t.live[:0]
	for i := range t.backward {
		t.backward[i] = nil
	}
	t.backward = t.backward[:0]
}

func (t *Tape) record(f func()) {
	t.backward = append(t.backward, f)
}

// Backward runs all recorded backward closures in reverse order. Seed the
// output gradient (typically loss.G[0] = 1) before calling.
func (t *Tape) Backward() {
	for i := len(t.backward) - 1; i >= 0; i-- {
		t.backward[i]()
	}
}

// Len reports the number of recorded operations (useful in tests).
func (t *Tape) Len() int { return len(t.backward) }

// MatMul returns a @ b, with a [R,K] and b [K,C].
func (t *Tape) MatMul(a, b *V) *V {
	if a.C != b.R {
		panic(fmt.Sprintf("ad: MatMul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	if t.f32 && !t.grad {
		return t.matMulF32(a, b)
	}
	out := t.new(a.R, b.C)
	if t.fast && !t.grad {
		matmulFast(out.W, a.W, b.W, a.R, a.C, b.C)
	} else {
		matmul(out.W, a.W, b.W, a.R, a.C, b.C)
	}
	if t.grad {
		t.record(func() {
			// dA += dOut @ B^T ; dB += A^T @ dOut
			matmulNT(a.G, out.G, b.W, a.R, b.C, a.C)
			matmulTN(b.G, a.W, out.G, a.C, a.R, b.C)
		})
	}
	return out
}

// Add returns a + b. b may be a [1,C] row vector, broadcast over a's rows.
func (t *Tape) Add(a, b *V) *V {
	if t.f32 && !t.grad {
		return t.addF32(a, b)
	}
	if b.R == 1 && a.C == b.C && a.R != 1 {
		out := t.new(a.R, a.C)
		for i := 0; i < a.R; i++ {
			for j := 0; j < a.C; j++ {
				out.W[i*a.C+j] = a.W[i*a.C+j] + b.W[j]
			}
		}
		if t.grad {
			t.record(func() {
				for i := 0; i < a.R; i++ {
					for j := 0; j < a.C; j++ {
						g := out.G[i*a.C+j]
						a.G[i*a.C+j] += g
						b.G[j] += g
					}
				}
			})
		}
		return out
	}
	sameShape("Add", a, b)
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i]
				b.G[i] += out.G[i]
			}
		})
	}
	return out
}

// Sub returns a - b (same shape).
func (t *Tape) Sub(a, b *V) *V {
	sameShape("Sub", a, b)
	if t.f32 && !t.grad {
		return t.subF32(a, b)
	}
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] - b.W[i]
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i]
				b.G[i] -= out.G[i]
			}
		})
	}
	return out
}

// Mul returns the elementwise product a * b.
func (t *Tape) Mul(a, b *V) *V {
	sameShape("Mul", a, b)
	if t.f32 && !t.grad {
		return t.mulF32(a, b)
	}
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i] * b.W[i]
				b.G[i] += out.G[i] * a.W[i]
			}
		})
	}
	return out
}

// Scale returns a * s for a scalar constant s.
func (t *Tape) Scale(a *V, s float64) *V {
	if t.f32 && !t.grad {
		return t.scaleF32(a, s)
	}
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * s
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i] * s
			}
		})
	}
	return out
}

// Sigmoid returns the elementwise logistic function.
func (t *Tape) Sigmoid(a *V) *V {
	if t.f32 && !t.grad {
		return t.sigmoidF32(a)
	}
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				y := out.W[i]
				a.G[i] += out.G[i] * y * (1 - y)
			}
		})
	}
	return out
}

// Tanh returns the elementwise hyperbolic tangent.
func (t *Tape) Tanh(a *V) *V {
	if t.f32 && !t.grad {
		return t.tanhF32(a)
	}
	out := t.new(a.R, a.C)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				y := out.W[i]
				a.G[i] += out.G[i] * (1 - y*y)
			}
		})
	}
	return out
}

// ConcatCols concatenates matrices with equal row counts along columns.
func (t *Tape) ConcatCols(vs ...*V) *V {
	r := vs[0].R
	c := 0
	for _, v := range vs {
		if v.R != r {
			panic("ad: ConcatCols with mismatched rows")
		}
		c += v.C
	}
	if t.f32 && !t.grad {
		return t.concatColsF32(r, c, vs)
	}
	out := t.new(r, c)
	off := 0
	for _, v := range vs {
		for i := 0; i < r; i++ {
			copy(out.W[i*c+off:i*c+off+v.C], v.W[i*v.C:(i+1)*v.C])
		}
		off += v.C
	}
	if t.grad {
		t.record(func() {
			off := 0
			for _, v := range vs {
				for i := 0; i < r; i++ {
					for j := 0; j < v.C; j++ {
						v.G[i*v.C+j] += out.G[i*c+off+j]
					}
				}
				off += v.C
			}
		})
	}
	return out
}

// SliceCols returns columns [lo, hi) as a new value.
func (t *Tape) SliceCols(a *V, lo, hi int) *V {
	if lo < 0 || hi > a.C || lo >= hi {
		panic(fmt.Sprintf("ad: SliceCols [%d,%d) of %d cols", lo, hi, a.C))
	}
	if t.f32 && !t.grad {
		return t.sliceColsF32(a, lo, hi)
	}
	out := t.new(a.R, hi-lo)
	for i := 0; i < a.R; i++ {
		copy(out.W[i*out.C:(i+1)*out.C], a.W[i*a.C+lo:i*a.C+hi])
	}
	if t.grad {
		t.record(func() {
			for i := 0; i < a.R; i++ {
				for j := 0; j < out.C; j++ {
					a.G[i*a.C+lo+j] += out.G[i*out.C+j]
				}
			}
		})
	}
	return out
}

// Rows gathers the given rows of a into a new matrix (used for embedding
// lookup); backward scatter-adds.
func (t *Tape) Rows(a *V, idx []int) *V {
	if t.f32 && !t.grad {
		return t.rowsF32(a, idx)
	}
	out := t.new(len(idx), a.C)
	for i, id := range idx {
		if id < 0 || id >= a.R {
			panic(fmt.Sprintf("ad: Rows index %d out of %d", id, a.R))
		}
		copy(out.W[i*a.C:(i+1)*a.C], a.W[id*a.C:(id+1)*a.C])
	}
	if t.grad {
		ids := append([]int(nil), idx...)
		t.record(func() {
			for i, id := range ids {
				for j := 0; j < a.C; j++ {
					a.G[id*a.C+j] += out.G[i*a.C+j]
				}
			}
		})
	}
	return out
}

// Dropout zeroes elements with probability p and scales survivors by
// 1/(1-p) (inverted dropout). rng must be a deterministic source; pass
// p=0 (or train=false at the layer level) to disable.
func (t *Tape) Dropout(a *V, p float64, rng func() float64) *V {
	if p <= 0 {
		return a
	}
	if t.f32 && !t.grad {
		return t.dropoutF32(a, p, rng)
	}
	out := t.new(a.R, a.C)
	mask := t.scratch(len(a.W))
	scale := 1 / (1 - p)
	for i := range a.W {
		if rng() >= p {
			mask[i] = scale
			out.W[i] = a.W[i] * scale
		}
	}
	if t.grad {
		t.record(func() {
			for i := range out.G {
				a.G[i] += out.G[i] * mask[i]
			}
		})
	}
	return out
}

func sameShape(op string, a, b *V) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("ad: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}
