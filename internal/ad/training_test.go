package ad

import (
	"math"
	"math/rand"
	"testing"
)

// trainStep runs one representative training step — embedding-style
// gather, dropout, two matmuls, masked cross-entropy — on the given
// tape, backpropagates, and returns the loss value. w1/w2 play the role
// of parameters: their gradients accumulate across calls unless zeroed.
func trainStep(t *Tape, w1, w2 *V, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	x := randV(rand.New(rand.NewSource(21)), 3, w1.R)
	h := t.Tanh(t.MatMul(x, w1))
	h = t.Dropout(h, 0.3, rng.Float64)
	logits := t.MatMul(h, w2)
	loss := t.SoftmaxCrossEntropy(logits, []int{1, 0, 2}, []float64{1, 1, 0})
	loss.G[0] = 1
	t.Backward()
	return loss.W[0]
}

// TestTrainingTapeMatchesNewTape: a pooled training tape must produce
// bitwise-identical losses and parameter gradients to a plain recording
// tape, including on reruns over recycled storage after Reset.
func TestTrainingTapeMatchesNewTape(t *testing.T) {
	mk := func() (*V, *V) {
		r := rand.New(rand.NewSource(31))
		return randV(r, 4, 6), randV(r, 6, 5)
	}
	w1a, w2a := mk()
	wantLoss := trainStep(NewTape(), w1a, w2a, 7)

	w1b, w2b := mk()
	pool := NewPool()
	tape := NewTraining(pool)
	for run := 0; run < 3; run++ {
		w1b.ZeroGrad()
		w2b.ZeroGrad()
		gotLoss := trainStep(tape, w1b, w2b, 7)
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("run %d: loss %v != %v", run, gotLoss, wantLoss)
		}
		if !equalWSlice(w1b.G, w1a.G) || !equalWSlice(w2b.G, w2a.G) {
			t.Fatalf("run %d: gradients diverge from plain recording tape", run)
		}
		if tape.Len() == 0 {
			t.Fatal("training tape recorded nothing")
		}
		tape.Reset()
		if tape.Len() != 0 {
			t.Fatal("Reset left recorded ops behind")
		}
	}
}

// TestSoftmaxCrossEntropySum: the summed loss relates to the mean loss
// by exactly the weight norm (mean is computed as sum/norm), and seeding
// the sum's output gradient with 1/norm reproduces the mean's parameter
// gradients bit for bit. Shard workers rely on this to compose
// per-shard sums into the batch-mean gradient.
func TestSoftmaxCrossEntropySum(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	logitsMean := randV(r, 4, 7)
	logitsSum := &V{R: 4, C: 7, W: append([]float64(nil), logitsMean.W...), G: make([]float64, 4*7)}
	targets := []int{2, 0, 5, 1}
	weights := []float64{1, 2, 0, 1}
	norm := 4.0 // sum of weights

	tm := NewTape()
	mean := tm.SoftmaxCrossEntropy(logitsMean, targets, weights)
	mean.G[0] = 1
	tm.Backward()

	ts := NewTape()
	sum := ts.SoftmaxCrossEntropySum(logitsSum, targets, weights)
	if math.Float64bits(sum.W[0]/norm) != math.Float64bits(mean.W[0]) {
		t.Fatalf("sum/norm = %v, mean = %v", sum.W[0]/norm, mean.W[0])
	}
	sum.G[0] = 1 / norm
	ts.Backward()
	if !equalWSlice(logitsSum.G, logitsMean.G) {
		t.Fatalf("gradients differ:\nsum:  %v\nmean: %v", logitsSum.G, logitsMean.G)
	}
}

// TestForwardPooledOpsZeroAlloc: on a warmed pooled forward tape,
// SoftmaxCrossEntropy and LogSoftmaxRow must not allocate — their
// internal buffers come from the pool (the training loop calls them for
// every batch; so does validation scoring).
func TestForwardPooledOpsZeroAlloc(t *testing.T) {
	logits := randV(rand.New(rand.NewSource(5)), 8, 64)
	targets := make([]int, 8)
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = 1
	}
	tape := NewForward(NewPool())
	step := func() {
		ce := tape.SoftmaxCrossEntropy(logits, targets, weights)
		_ = ce.W[0]
		lp := tape.LogSoftmaxRow(logits.W[:64])
		_ = lp[0]
		tape.ReleaseExcept()
	}
	step() // warm the pool
	if allocs := testing.AllocsPerRun(100, step); allocs > 0 {
		t.Errorf("pooled forward CE+logsoftmax allocates %.1f times per step, want 0", allocs)
	}
}

// TestTrainingTapeAllocsBounded: a warmed training tape's per-step
// allocations must be a small constant — backward closures and the
// target/weight snapshots — never the O(batch x vocab) probability or
// mask buffers, which come from the pool.
func TestTrainingTapeAllocsBounded(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	w1, w2 := randV(r, 4, 6), randV(r, 6, 128)
	pool := NewPool()
	tape := NewTraining(pool)
	step := func() {
		w1.ZeroGrad()
		w2.ZeroGrad()
		trainStep(tape, w1, w2, 3)
		tape.Reset()
	}
	for i := 0; i < 3; i++ {
		step() // warm pool and slice capacities
	}
	allocs := testing.AllocsPerRun(100, step)
	// Measured: ~12 (one closure per recorded op, the rand.Rand and
	// input value trainStep itself builds, CE's targets/weights copies).
	// A regression that reintroduces per-call make() for the softmax
	// probabilities or dropout mask adds at least one more.
	if allocs > 14 {
		t.Errorf("training step allocates %.1f times, want <= 14", allocs)
	}
}
