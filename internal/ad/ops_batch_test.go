package ad

import (
	"math/rand"
	"testing"
)

// TestGatherRowsMatchesRows pins GatherRows to Rows semantics: duplicate
// indices are allowed and backward scatter-adds into shared parents.
func TestGatherRowsMatchesRows(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := randV(r, 4, 3)
	idx := []int{2, 0, 2, 3}

	tape := NewTape()
	got := tape.GatherRows(a, idx)
	for i, id := range idx {
		for j := 0; j < a.C; j++ {
			if got.W[i*a.C+j] != a.W[id*a.C+j] {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got.W[i*a.C+j], a.W[id*a.C+j])
			}
		}
	}
	for i := range got.G {
		got.G[i] = float64(i + 1)
	}
	tape.Backward()
	// Row 2 was gathered twice (output rows 0 and 2): its gradient is the
	// sum of both output rows' seeds.
	for j := 0; j < a.C; j++ {
		want := float64(0*a.C+j+1) + float64(2*a.C+j+1)
		if a.G[2*a.C+j] != want {
			t.Errorf("a.G[2,%d] = %v, want %v", j, a.G[2*a.C+j], want)
		}
	}
}

// TestGatherRowBlocks checks block gathering forward and backward: a
// [3*2, C] stack of three 2-row blocks, gathered with a repeated index.
func TestGatherRowBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := randV(r, 6, 2) // 3 blocks of 2 rows
	idx := []int{1, 1, 0}

	tape := NewTape()
	got := tape.GatherRowBlocks(a, idx, 2)
	if got.R != 6 || got.C != 2 {
		t.Fatalf("shape %dx%d, want 6x2", got.R, got.C)
	}
	for i, id := range idx {
		for k := 0; k < 2*a.C; k++ {
			if got.W[i*2*a.C+k] != a.W[id*2*a.C+k] {
				t.Fatalf("block %d elem %d: got %v want %v", i, k, got.W[i*2*a.C+k], a.W[id*2*a.C+k])
			}
		}
	}
	for i := range got.G {
		got.G[i] = 1
	}
	tape.Backward()
	for k := 0; k < 2*a.C; k++ {
		if a.G[1*2*a.C+k] != 2 { // block 1 tiled twice
			t.Errorf("a.G block 1 elem %d = %v, want 2", k, a.G[1*2*a.C+k])
		}
		if a.G[0*2*a.C+k] != 1 {
			t.Errorf("a.G block 0 elem %d = %v, want 1", k, a.G[0*2*a.C+k])
		}
	}

	// Pooled forward tape must produce the same values, including after
	// buffer reuse (recycled storage is re-zeroed).
	pool := NewPool()
	ftape := NewForward(pool)
	first := ftape.GatherRowBlocks(a, idx, 2)
	if !equalW(first, got) {
		t.Errorf("pooled forward differs: %v vs %v", first.W, got.W)
	}
	ftape.ReleaseExcept()
	again := ftape.GatherRowBlocks(a, idx, 2)
	if !equalW(again, got) {
		t.Errorf("pool reuse corrupted gather: %v vs %v", again.W, got.W)
	}
}

// TestStackRowBlocks checks ragged packing: shorter inputs leave their
// block's tail rows exactly zero, even on a dirtied pool, and backward
// routes each block's gradient to its source.
func TestStackRowBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tape := NewTape()
	a := randV(r, 3, 2)
	b := randV(r, 1, 2)
	out := tape.StackRowBlocks([]*V{a, b}, 3)
	if out.R != 6 || out.C != 2 {
		t.Fatalf("shape %dx%d, want 6x2", out.R, out.C)
	}
	for k := 0; k < len(a.W); k++ {
		if out.W[k] != a.W[k] {
			t.Fatalf("block 0 elem %d: got %v want %v", k, out.W[k], a.W[k])
		}
	}
	for k := 0; k < len(b.W); k++ {
		if out.W[3*2+k] != b.W[k] {
			t.Fatalf("block 1 elem %d: got %v want %v", k, out.W[3*2+k], b.W[k])
		}
	}
	for k := len(b.W); k < 3*2; k++ {
		if out.W[3*2+k] != 0 {
			t.Fatalf("padding row not zero at %d: %v", k, out.W[3*2+k])
		}
	}
	for i := range out.G {
		out.G[i] = float64(i + 1)
	}
	tape.Backward()
	for k := range a.G {
		if a.G[k] != float64(k+1) {
			t.Errorf("a.G[%d] = %v, want %v", k, a.G[k], float64(k+1))
		}
	}
	for k := range b.G {
		if b.G[k] != float64(3*2+k+1) {
			t.Errorf("b.G[%d] = %v, want %v", k, b.G[k], float64(3*2+k+1))
		}
	}

	// Dirty a pooled buffer of the same size, release it, and restack:
	// the padding rows must still come out zero.
	pool := NewPool()
	ftape := NewForward(pool)
	dirty := ftape.new(6, 2)
	for i := range dirty.W {
		dirty.W[i] = 99
	}
	ftape.ReleaseExcept()
	restacked := ftape.StackRowBlocks([]*V{a, b}, 3)
	for k := len(b.W); k < 3*2; k++ {
		if restacked.W[3*2+k] != 0 {
			t.Fatalf("recycled padding not zeroed at %d: %v", k, restacked.W[3*2+k])
		}
	}
}

// TestLogSoftmaxRowsMatchesRow pins the batched log-softmax to the
// one-row reference, bitwise, row by row.
func TestLogSoftmaxRowsMatchesRow(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	a := randV(r, 5, 7)
	tape := NewForward(NewPool())
	got := tape.LogSoftmaxRows(a)
	if tape.Len() != 0 {
		t.Errorf("LogSoftmaxRows recorded %d ops on a forward tape", tape.Len())
	}
	for i := 0; i < a.R; i++ {
		want := LogSoftmaxRow(a.W[i*a.C : (i+1)*a.C])
		if !equalWSlice(got.W[i*a.C:(i+1)*a.C], want) {
			t.Errorf("row %d: %v vs %v", i, got.W[i*a.C:(i+1)*a.C], want)
		}
	}
}
