package ad

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// f32KernelCase pairs a float32 kernel with the exact float64 scalar
// reference it drifts from. The reference runs on float64 copies of the
// same float32 inputs, so its result is exact at the scale of float32
// rounding and ULP distances are measured in float32 bit space.
type f32KernelCase struct {
	name       string
	f32        func(out, a, b []float32, r, k, c int)
	exact      func(out, a, b []float64, r, k, c int)
	aLen, bLen func(r, k, c int) int
}

var f32KernelCases = []f32KernelCase{
	{
		name: "NN", f32: matmul32, exact: matmulScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return k * c },
	},
	{
		name: "NT", f32: matmulNT32, exact: matmulNTScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return c * k },
	},
	{
		name: "TN", f32: matmulTN32, exact: matmulTNScalar,
		aLen: func(r, k, c int) int { return k * r },
		bLen: func(r, k, c int) int { return k * c },
	},
}

// ulpDiff32 is ulpDiff in float32 bit space.
func ulpDiff32(x, y float32) uint32 {
	xb, yb := int32(math.Float32bits(x)), int32(math.Float32bits(y))
	if xb < 0 {
		xb = math.MinInt32 - xb // order negatives below positives
	}
	if yb < 0 {
		yb = math.MinInt32 - yb
	}
	if xb < yb {
		return uint32(yb - xb)
	}
	return uint32(xb - yb)
}

// withFMA32 is withFMA for float32 kernels: FMA assembly dispatch on
// (where the host has it) and forced off. Serial only.
func withFMA32(f func() []float32) (asm, golang []float32) {
	saved := useFMA
	defer func() { useFMA = saved }()
	asm = f()
	useFMA = false
	golang = f()
	return asm, golang
}

func randF32(r *rand.Rand, s []float32) {
	for i := range s {
		s[i] = float32(0.5 + 1.5*r.Float64())
	}
}

func toF64(s []float32) []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = float64(x)
	}
	return out
}

// TestF32KernelsULPBound: on well-conditioned inputs (all operands in
// [0.5, 2), positive increasing partial sums, no cancellation) each f32
// kernel must stay within 2k+16 float32 ULPs of the exact float64
// reference on the same inputs. Derivation: the fused chain performs at
// most k float32 roundings (the float64 reference is exact at this
// scale), each bounded by eps32 relative, so the drift is ~k ULPs;
// 2k+16 adds slack for the stripe reduction and eps-vs-ULP slop. Both
// the assembly and pure-Go paths must satisfy the bound, and — since
// they may differ on round-to-nearest ties but share the accumulation
// order — they must also stay within a few ULPs of each other.
func TestF32KernelsULPBound(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for _, kc := range f32KernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 100; trial++ {
				R, K, C := 1+r.Intn(16), 1+r.Intn(65), 1+r.Intn(37)
				a := make([]float32, kc.aLen(R, K, C))
				b := make([]float32, kc.bLen(R, K, C))
				randF32(r, a)
				randF32(r, b)
				want := make([]float64, R*C)
				kc.exact(want, toF64(a), toF64(b), R, K, C)
				asm, golang := withFMA32(func() []float32 {
					out := make([]float32, R*C)
					kc.f32(out, a, b, R, K, C)
					return out
				})
				maxULP := uint32(2*K + 16)
				for i := range want {
					wf := float32(want[i])
					if d := ulpDiff32(asm[i], wf); d > maxULP {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] asm %g vs exact %g: %d ulps > %d",
							kc.name, R, K, C, i, asm[i], wf, d, maxULP)
					}
					if d := ulpDiff32(golang[i], wf); d > maxULP {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] go %g vs exact %g: %d ulps > %d",
							kc.name, R, K, C, i, golang[i], wf, d, maxULP)
					}
					if d := ulpDiff32(asm[i], golang[i]); d > 4 {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] asm %g vs go %g: %d ulps > 4",
							kc.name, R, K, C, i, asm[i], golang[i], d)
					}
				}
			}
		})
	}
}

// TestF32KernelsErrorBound: on general inputs with mixed signs and wide
// dynamic range, the f32-vs-exact drift of each output element stays
// under the condition-aware estimate 2(k+8)·eps32·(|out0| + Σ|a_p·b_p|)
// — the forward-error analysis of a length-k+1 float32 summation, with
// the stripe term folded into the slack. Checked on the NN kernel for
// both dispatch paths (NT/TN share axpy32/dot32/band2pFMA32 with it).
func TestF32KernelsErrorBound(t *testing.T) {
	const eps = 0x1p-24
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 100; trial++ {
		R, K, C := 1+r.Intn(16), 1+r.Intn(65), 1+r.Intn(37)
		a := make([]float32, R*K)
		b := make([]float32, K*C)
		for i := range a {
			a[i] = float32(r.NormFloat64())
			if r.Intn(5) == 0 {
				a[i] = 0
			}
		}
		for i := range b {
			b[i] = float32(r.NormFloat64() * math.Exp(3*r.NormFloat64()))
		}
		want := make([]float64, R*C)
		matmulScalar(want, toF64(a), toF64(b), R, K, C)
		asm, golang := withFMA32(func() []float32 {
			out := make([]float32, R*C)
			matmul32(out, a, b, R, K, C)
			return out
		})
		for i := 0; i < R; i++ {
			for j := 0; j < C; j++ {
				cond := 0.0
				for p := 0; p < K; p++ {
					cond += math.Abs(float64(a[i*K+p]) * float64(b[p*C+j]))
				}
				bound := 2*float64(K+8)*eps*cond + 1e-40
				for _, got := range []float32{asm[i*C+j], golang[i*C+j]} {
					if d := math.Abs(float64(got) - want[i*C+j]); d > bound {
						t.Fatalf("NN r=%d k=%d c=%d: out[%d,%d] f32 %g vs exact %g: |Δ|=%g > %g",
							R, K, C, i, j, got, want[i*C+j], d, bound)
					}
				}
			}
		}
	}
}

// TestF32AttnKernels bounds the f32 attention kernels (plain and
// grouped) against exact float64 references with the pairwise-summation
// condition bound, on both dispatch paths.
func TestF32AttnKernels(t *testing.T) {
	const eps = 0x1p-24
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		L, T, H := 1+r.Intn(8), 1+r.Intn(12), 1+r.Intn(80)
		S := 1 + r.Intn(4)
		dec := make([]float32, L*H)
		enc := make([]float32, S*T*H)
		alpha := make([]float32, L*T)
		groups := make([]int, L)
		for i := range dec {
			dec[i] = float32(r.NormFloat64())
		}
		for i := range enc {
			enc[i] = float32(r.NormFloat64())
		}
		for i := range alpha {
			alpha[i] = float32(r.Float64())
		}
		for i := range groups {
			groups[i] = r.Intn(S)
		}

		sAsm, sGo := withFMA32(func() []float32 {
			out := make([]float32, L*T)
			attnScoresGrouped32(out, dec, enc, groups, T, H)
			return out
		})
		for l, g := range groups {
			for tt := 0; tt < T; tt++ {
				exact, cond := 0.0, 0.0
				for j := 0; j < H; j++ {
					p := float64(dec[l*H+j]) * float64(enc[(g*T+tt)*H+j])
					exact += p
					cond += math.Abs(p)
				}
				bound := 2*float64(H+16)*eps*cond + 1e-40
				for _, got := range []float32{sAsm[l*T+tt], sGo[l*T+tt]} {
					if d := math.Abs(float64(got) - exact); d > bound {
						t.Fatalf("attnScoresGrouped32 L=%d T=%d H=%d: [%d,%d] |Δ|=%g > %g", L, T, H, l, tt, d, bound)
					}
				}
			}
		}

		wAsm, wGo := withFMA32(func() []float32 {
			out := make([]float32, L*H)
			weightedSumGrouped32(out, alpha, enc, groups, T, H)
			return out
		})
		for l, g := range groups {
			for j := 0; j < H; j++ {
				exact, cond := 0.0, 0.0
				for tt := 0; tt < T; tt++ {
					p := float64(alpha[l*T+tt]) * float64(enc[(g*T+tt)*H+j])
					exact += p
					cond += math.Abs(p)
				}
				bound := 2*float64(T+16)*eps*cond + 1e-40
				for _, got := range []float32{wAsm[l*H+j], wGo[l*H+j]} {
					if d := math.Abs(float64(got) - exact); d > bound {
						t.Fatalf("weightedSumGrouped32 L=%d T=%d H=%d: [%d,%d] |Δ|=%g > %g", L, T, H, l, j, d, bound)
					}
				}
			}
		}

		// Ungrouped variants: identity grouping over an L-block encoder
		// must match the grouped kernels' arithmetic row for row.
		if S == 1 && L*T*H <= len(enc)*L {
			encT := make([]float32, L*T*H)
			for i := range encT {
				encT[i] = float32(r.NormFloat64())
			}
			scores := make([]float32, L*T)
			attnScores32(scores, dec, encT, L, T, H)
			for b := 0; b < L; b++ {
				for tt := 0; tt < T; tt++ {
					exact := 0.0
					cond := 0.0
					for j := 0; j < H; j++ {
						p := float64(dec[b*H+j]) * float64(encT[(b*T+tt)*H+j])
						exact += p
						cond += math.Abs(p)
					}
					bound := 2*float64(H+16)*eps*cond + 1e-40
					if d := math.Abs(float64(scores[b*T+tt]) - exact); d > bound {
						t.Fatalf("attnScores32: [%d,%d] |Δ|=%g > %g", b, tt, d, bound)
					}
				}
			}
			ctx := make([]float32, L*H)
			weightedSum32(ctx, alpha, encT, L, T, H)
			for b := 0; b < L; b++ {
				for j := 0; j < H; j++ {
					exact, cond := 0.0, 0.0
					for tt := 0; tt < T; tt++ {
						p := float64(alpha[b*T+tt]) * float64(encT[(b*T+tt)*H+j])
						exact += p
						cond += math.Abs(p)
					}
					bound := 2*float64(T+16)*eps*cond + 1e-40
					if d := math.Abs(float64(ctx[b*H+j]) - exact); d > bound {
						t.Fatalf("weightedSum32: [%d,%d] |Δ|=%g > %g", b, j, d, bound)
					}
				}
			}
		}
	}
}

// TestF32Transcendentals bounds the fast float32 approximations against
// the float64 stdlib over their full finite ranges, plus the saturation
// and special-value edges.
func TestF32Transcendentals(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	// exp: relative error within a few float32 ulps over the finite range.
	for trial := 0; trial < 20000; trial++ {
		x := float32((r.Float64()*2 - 1) * 87)
		got := float64(expf32(x))
		want := math.Exp(float64(x))
		if rel := math.Abs(got-want) / want; rel > 1e-6 {
			t.Fatalf("expf32(%g) = %g, want %g (rel err %g)", x, got, want, rel)
		}
	}
	if v := expf32(89); !math.IsInf(float64(v), 1) {
		t.Fatalf("expf32(89) = %g, want +Inf", v)
	}
	if v := expf32(-90); v != 0 {
		t.Fatalf("expf32(-90) = %g, want 0", v)
	}
	if v := expf32(88.7); math.IsInf(float64(v), 1) || v < 3e38 {
		t.Fatalf("expf32(88.7) = %g, want finite near MaxFloat32", v)
	}
	if v := expf32(float32(math.NaN())); v == v {
		t.Fatalf("expf32(NaN) = %g, want NaN", v)
	}
	if v := expf32(0); v != 1 {
		t.Fatalf("expf32(0) = %g, want 1", v)
	}
	// tanh: absolute error bound (|tanh| <= 1).
	for trial := 0; trial < 20000; trial++ {
		x := float32((r.Float64()*2 - 1) * 12)
		got := float64(tanhf32(x))
		want := math.Tanh(float64(x))
		if d := math.Abs(got - want); d > 1e-6 {
			t.Fatalf("tanhf32(%g) = %g, want %g (|Δ|=%g)", x, got, want, d)
		}
	}
	if tanhf32(100) != 1 || tanhf32(-100) != -1 || tanhf32(0) != 0 {
		t.Fatal("tanhf32 saturation/zero edges wrong")
	}
	if v := tanhf32(float32(math.NaN())); v == v {
		t.Fatalf("tanhf32(NaN) = %g, want NaN", v)
	}
	// sigmoid: absolute error bound (range (0,1)).
	for trial := 0; trial < 20000; trial++ {
		x := float32((r.Float64()*2 - 1) * 40)
		got := float64(sigmoidf32(x))
		want := 1 / (1 + math.Exp(-float64(x)))
		if d := math.Abs(got - want); d > 1e-6 {
			t.Fatalf("sigmoidf32(%g) = %g, want %g (|Δ|=%g)", x, got, want, d)
		}
	}
}

// TestF32Dispatch is the f32 sibling of TestTrainingDispatchBitwise:
// recording tapes and the f64 forward tapes must keep producing float64
// results bitwise equal to their own kernels — the f32 flag must be
// unreachable from them — and only NewForwardF32 computes in float32.
// Training-only ops must refuse f32 tapes loudly.
func TestF32Dispatch(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	const R, K, C = 8, 64, 48
	a := New(R, K)
	b := New(K, C)
	fillRand(r, a.W, 0)
	fillRand(r, b.W, 0)

	exact := make([]float64, R*C)
	matmul(exact, a.W, b.W, R, K, C)

	tapes := map[string]*Tape{
		"NewTape":        NewTape(),
		"NewTraining":    NewTraining(NewPool()),
		"NewForward":     NewForward(nil),
		"NewForwardFast": NewForwardFast(nil),
	}
	for name, tape := range tapes {
		if tape.F32() {
			t.Fatalf("%s reports F32", name)
		}
		out := tape.MatMul(a, b)
		if len(out.W) != R*C || out.W32 != nil {
			t.Fatalf("%s MatMul produced f32 storage (len(W)=%d, W32=%v)", name, len(out.W), out.W32 != nil)
		}
		if name != "NewForwardFast" && !bitsEqual(out.W, exact) {
			t.Fatalf("%s MatMul diverged from the bitwise kernel", name)
		}
	}

	ft := NewForwardF32(NewPool())
	if !ft.F32() || !ft.FastMath() {
		t.Fatal("NewForwardF32 must report both F32 and FastMath")
	}
	out := ft.MatMul(a, b)
	if len(out.W) != 0 || len(out.W32) != R*C {
		t.Fatalf("NewForwardF32 MatMul storage: len(W)=%d len(W32)=%d", len(out.W), len(out.W32))
	}
	// The f32 result must track the f64 one (sanity that weights were
	// actually converted and multiplied, not zeroed).
	for i := range exact {
		if d := math.Abs(float64(out.W32[i]) - exact[i]); d > 1e-3*math.Abs(exact[i])+1e-4 {
			t.Fatalf("f32 MatMul out[%d] = %g, f64 %g", i, out.W32[i], exact[i])
		}
	}

	// Training-only ops refuse f32 tapes.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SoftmaxCrossEntropy on an f32 tape did not panic")
			}
		}()
		logits := New(2, 4)
		NewForwardF32(nil).SoftmaxCrossEntropy(logits, []int{0, 1}, []float64{1, 1})
	}()
}

// TestF32PoolRecycling pins that f32 values round-trip the pool through
// their own free list: a released f32 buffer is reused for the next
// same-size f32 request, never handed to an f64 request, and the
// byte-based high-water mark accounts 4 bytes per f32 element.
func TestF32PoolRecycling(t *testing.T) {
	p := NewPool()
	v := p.get32(4, 8)
	if len(v.W32) != 32 || len(v.W) != 0 {
		t.Fatalf("get32 storage: len(W32)=%d len(W)=%d", len(v.W32), len(v.W))
	}
	if p.MaxBufferBytes() != 32*4 {
		t.Fatalf("MaxBufferBytes = %d, want %d", p.MaxBufferBytes(), 32*4)
	}
	v.W32[0] = 7
	p.put(v)
	v2 := p.get32(8, 4)
	if v2 != v {
		t.Fatal("released f32 buffer was not recycled for the next f32 request")
	}
	if v2.W32[0] != 0 {
		t.Fatal("recycled f32 buffer not zeroed")
	}
	p.put(v2)
	v3 := p.get(8, 4)
	if v3 == v {
		t.Fatal("f64 request was handed an f32 buffer")
	}
	if p.MaxBufferBytes() != 32*8 {
		t.Fatalf("MaxBufferBytes after f64 get = %d, want %d", p.MaxBufferBytes(), 32*8)
	}
}

// BenchmarkF32Kernels measures the float32 matmul kernels on the same
// hot shapes as BenchmarkFastKernels; scripts/bench.sh records both in
// BENCH_infer.json so the f32-vs-fast-f64 kernel speedup is tracked.
func BenchmarkF32Kernels(b *testing.B) {
	shapes := []struct {
		name    string
		r, k, c int
	}{
		{"shard-lstm", 4, 64, 256},
		{"batch-lstm", 32, 64, 256},
		{"logits", 4, 64, 400},
		{"square", 64, 64, 64},
	}
	kernels := map[string]func(out, a, bm []float32, r, k, c int){
		"NN": matmul32, "NT": matmulNT32, "TN": matmulTN32,
	}
	for _, kn := range []string{"NN", "NT", "TN"} {
		for _, sh := range shapes {
			r, k, c := sh.r, sh.k, sh.c
			if kn == "TN" {
				r, k = k, r
			}
			var aLen, bLen int
			switch kn {
			case "NN":
				aLen, bLen = r*k, k*c
			case "NT":
				aLen, bLen = r*k, c*k
			case "TN":
				aLen, bLen = k*r, k*c
			}
			rng := rand.New(rand.NewSource(3))
			a := make([]float32, aLen)
			bm := make([]float32, bLen)
			randF32(rng, a)
			randF32(rng, bm)
			out := make([]float32, r*c)
			flops := float64(2 * r * k * c)
			fn := kernels[kn]
			b.Run(fmt.Sprintf("%s/%s/f32", kn, sh.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fn(out, a, bm, r, k, c)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
			})
		}
	}
}

// TestVExp32TracksScalar holds the vector exp body (VCVTPS2DQ
// nearest-even rounding, fused polynomial) to the scalar expf32 within
// a few ulps over the finite range, and pins the saturation and NaN
// edges exactly equal — the masks compare the original input, as the
// scalar does. Runs the asm path and the pure-Go fallback (which is
// expf32 itself, trivially exact).
func TestVExp32TracksScalar(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const n = 8 * 257
	x := make([]float32, n)
	for i := range x {
		// Whole finite range plus a dense band around zero where decode
		// arguments live.
		switch i % 3 {
		case 0:
			x[i] = float32(r.Float64()*175 - 87)
		case 1:
			x[i] = float32(r.NormFloat64() * 4)
		default:
			x[i] = float32(r.NormFloat64() * 30)
		}
	}
	asm, golang := withFMA32(func() []float32 {
		out := make([]float32, n)
		expv32(out, x)
		return out
	})
	for i := range x {
		want := expf32(x[i])
		if golang[i] != want {
			t.Fatalf("fallback expv32(%g) = %g, want scalar %g", x[i], golang[i], want)
		}
		if d := ulpDiff32(asm[i], want); d > 8 {
			t.Errorf("vector exp(%g) = %g, scalar %g: %d ulps apart", x[i], asm[i], want, d)
		}
	}

	edges := []float32{
		89, 1000, float32(math.Inf(1)), // overflow: +Inf
		-90, -1000, float32(math.Inf(-1)), // underflow: 0
		float32(math.NaN()), // NaN propagates
		0, 1, -1,
	}
	in := make([]float32, 8*2)
	for i := range in {
		in[i] = edges[i%len(edges)]
	}
	out := make([]float32, len(in))
	expv32(out, in)
	for i, x := range in {
		want := expf32(x)
		if want != want {
			if out[i] == out[i] {
				t.Errorf("vector exp(NaN) = %g, want NaN", out[i])
			}
			continue
		}
		if x > expMaxIn || x < expMinIn {
			if out[i] != want {
				t.Errorf("vector exp(%g) = %g, want exact saturation %g", x, out[i], want)
			}
		}
	}
}

// TestVAdd32Bitwise: the vector add kernel uses plain single-rounded
// additions, so unlike the FMA kernels it owes bitwise equality with
// the scalar loop at every length (vector body, 8-wide step, scalar
// tail).
func TestVAdd32Bitwise(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 7, 8, 9, 16, 23, 64, 100, 403} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(r.NormFloat64() * float32Exp(r))
			b[i] = float32(r.NormFloat64() * float32Exp(r))
		}
		asm, golang := withFMA32(func() []float32 {
			out := make([]float32, n)
			vadd32(out, a, b)
			return out
		})
		for i := range asm {
			if math.Float32bits(asm[i]) != math.Float32bits(golang[i]) {
				t.Fatalf("n=%d i=%d: asm %g != go %g", n, i, asm[i], golang[i])
			}
			if want := a[i] + b[i]; math.Float32bits(golang[i]) != math.Float32bits(want) {
				t.Fatalf("n=%d i=%d: go %g != scalar %g", n, i, golang[i], want)
			}
		}
	}
}

// float32Exp draws a wide positive scale so sums hit many exponents.
func float32Exp(r *rand.Rand) float64 {
	return math.Exp(3 * r.NormFloat64())
}
