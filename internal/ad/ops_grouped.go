// Grouped attention ops for shared-encoder beam decoding. The batched
// beam decoder packs every live hypothesis — across all searches decoded
// together — into one [L,H] batch, but each row only ever attends over
// its own search's [T,H] encoder block. The tiled formulation
// (GatherRowBlocks + AttnScores) materializes a copy of that block for
// every row, multiplying attention memory traffic by beam width; the
// grouped ops here take the packed [S*T,H] encoder matrix plus a
// row→block map and read each search's block in place, so the attention
// working set stays one block per search no matter how wide the beams
// are. Every grouped op runs the exact per-row arithmetic of its tiled
// counterpart (same fixed ascending-index accumulation order), which is
// what keeps the batched decoder bitwise equal to the sequential
// reference (TestGroupedAttnMatchesTiled, and transitively
// TestPredictBatchedMatchesSequential in seq2seq).
package ad

import (
	"fmt"
	"math"
)

// checkGroups validates a row→block map against the block count.
func checkGroups(op string, groups []int, rows, blocks int) {
	if len(groups) != rows {
		panic(fmt.Sprintf("ad: %s %d groups for %d rows", op, len(groups), rows))
	}
	for _, g := range groups {
		if g < 0 || g >= blocks {
			panic(fmt.Sprintf("ad: %s group %d out of %d blocks", op, g, blocks))
		}
	}
}

// AttnScoresGrouped computes Luong dot-product attention scores between a
// decoder batch dec [L,H] and shared encoder blocks enc [S*T,H]
// (S = enc.R/T consecutive [T,H] blocks): scores[l,t] =
// dec[l] · enc[groups[l]*T+t]. Row l reads block groups[l] in place —
// no per-row tiled copy — with the same ascending-index accumulation as
// AttnScores, so each row is bitwise equal to scoring it against a tile
// of its block. Indices may repeat (all of a search's hypotheses share
// one block); backward scatter-adds into the shared blocks in ascending
// row order.
func (t *Tape) AttnScoresGrouped(dec, enc *V, groups []int, T int) *V {
	L, H := dec.R, dec.C
	if enc.C != H || T <= 0 || enc.R%T != 0 {
		panic(fmt.Sprintf("ad: AttnScoresGrouped enc %dx%d for L=%d T=%d H=%d", enc.R, enc.C, L, T, H))
	}
	checkGroups("AttnScoresGrouped", groups, L, enc.R/T)
	out := t.new(L, T)
	if t.f32 && !t.grad {
		attnScoresGrouped32(out.W32, f32w(dec), f32w(enc), groups, T, H)
		return out
	}
	if t.FastMath() {
		attnScoresGroupedFast(out.W, dec.W, enc.W, groups, T, H)
		return out
	}
	for l := 0; l < L; l++ {
		dl := dec.W[l*H : (l+1)*H]
		base := groups[l] * T
		for tt := 0; tt < T; tt++ {
			eb := enc.W[(base+tt)*H : (base+tt+1)*H]
			s := 0.0
			for j := 0; j < H; j++ {
				s += dl[j] * eb[j]
			}
			out.W[l*T+tt] = s
		}
	}
	if t.grad {
		gs := append([]int(nil), groups...)
		t.record(func() {
			for l, g := range gs {
				dl := dec.W[l*H : (l+1)*H]
				dg := dec.G[l*H : (l+1)*H]
				base := g * T
				for tt := 0; tt < T; tt++ {
					gv := out.G[l*T+tt]
					if gv == 0 {
						continue
					}
					eb := enc.W[(base+tt)*H : (base+tt+1)*H]
					eg := enc.G[(base+tt)*H : (base+tt+1)*H]
					for j := 0; j < H; j++ {
						dg[j] += gv * eb[j]
						eg[j] += gv * dl[j]
					}
				}
			}
		})
	}
	return out
}

// SoftmaxRowsMaskedGrouped applies SoftmaxRowsMasked's per-row masked
// softmax to a [L,T] score matrix whose row l uses mask block
// mask[groups[l]*T : (groups[l]+1)*T] — the grouped sibling that spares
// the decoder re-tiling the [S*T] mask per hypothesis row. A fully
// masked row yields all-zero attention, exactly like SoftmaxRowsMasked.
func (t *Tape) SoftmaxRowsMaskedGrouped(a *V, mask []float64, groups []int) *V {
	L, T := a.R, a.C
	if T <= 0 || len(mask)%T != 0 {
		panic(fmt.Sprintf("ad: SoftmaxRowsMaskedGrouped mask %d for T=%d", len(mask), T))
	}
	checkGroups("SoftmaxRowsMaskedGrouped", groups, L, len(mask)/T)
	if t.f32 && !t.grad {
		return t.softmaxRowsMaskedGroupedF32(a, mask, groups)
	}
	out := t.new(L, T)
	for l := 0; l < L; l++ {
		mb := mask[groups[l]*T : (groups[l]+1)*T]
		max := math.Inf(-1)
		for tt := 0; tt < T; tt++ {
			if mb[tt] != 0 && a.W[l*T+tt] > max {
				max = a.W[l*T+tt]
			}
		}
		if math.IsInf(max, -1) {
			continue // fully masked row: all-zero attention
		}
		sum := 0.0
		for tt := 0; tt < T; tt++ {
			if mb[tt] != 0 {
				e := math.Exp(a.W[l*T+tt] - max)
				out.W[l*T+tt] = e
				sum += e
			}
		}
		for tt := 0; tt < T; tt++ {
			out.W[l*T+tt] /= sum
		}
	}
	if t.grad {
		t.record(func() {
			for l := 0; l < L; l++ {
				// dL/dx_i = y_i * (g_i - sum_j g_j y_j)
				dot := 0.0
				for tt := 0; tt < T; tt++ {
					dot += out.G[l*T+tt] * out.W[l*T+tt]
				}
				for tt := 0; tt < T; tt++ {
					a.G[l*T+tt] += out.W[l*T+tt] * (out.G[l*T+tt] - dot)
				}
			}
		})
	}
	return out
}

// WeightedSumGrouped computes attention contexts against shared encoder
// blocks: given weights alpha [L,T], blocks enc [S*T,H], and a row→block
// map, returns ctx [L,H] with ctx[l] = sum_t alpha[l,t] *
// enc[groups[l]*T+t]. The scalar path keeps WeightedSum's skip on zero
// weights (masked positions contribute exactly nothing), so each row is
// bitwise equal to the tiled path; the fast-math path hands each block
// row to the fused axpy kernel like weightedSumFast.
func (t *Tape) WeightedSumGrouped(alpha, enc *V, groups []int, H int) *V {
	L, T := alpha.R, alpha.C
	if enc.C != H || T <= 0 || enc.R%T != 0 {
		panic(fmt.Sprintf("ad: WeightedSumGrouped enc %dx%d for L=%d T=%d H=%d", enc.R, enc.C, L, T, H))
	}
	checkGroups("WeightedSumGrouped", groups, L, enc.R/T)
	out := t.new(L, H)
	if t.f32 && !t.grad {
		weightedSumGrouped32(out.W32, f32w(alpha), f32w(enc), groups, T, H)
		return out
	}
	if t.FastMath() {
		weightedSumGroupedFast(out.W, alpha.W, enc.W, groups, T, H)
		return out
	}
	for l := 0; l < L; l++ {
		ob := out.W[l*H : (l+1)*H]
		base := groups[l] * T
		for tt := 0; tt < T; tt++ {
			w := alpha.W[l*T+tt]
			if w == 0 {
				continue
			}
			eb := enc.W[(base+tt)*H : (base+tt+1)*H]
			for j := 0; j < H; j++ {
				ob[j] += w * eb[j]
			}
		}
	}
	if t.grad {
		gs := append([]int(nil), groups...)
		t.record(func() {
			for l, g := range gs {
				og := out.G[l*H : (l+1)*H]
				base := g * T
				for tt := 0; tt < T; tt++ {
					eb := enc.W[(base+tt)*H : (base+tt+1)*H]
					eg := enc.G[(base+tt)*H : (base+tt+1)*H]
					w := alpha.W[l*T+tt]
					s := 0.0
					for j := 0; j < H; j++ {
						s += og[j] * eb[j]
						eg[j] += og[j] * w
					}
					alpha.G[l*T+tt] += s
				}
			}
		})
	}
	return out
}
