package ad

import "math"

// Single-precision inference kernels: the float32 tier below the
// fast-math float64 kernels (kernels_fast.go), reachable only through
// f32 forward tapes (NewForwardF32) — recording tapes dispatch to the
// bitwise float64 kernels unconditionally, so training can never
// observe these semantics.
//
// Numeric contract, relative to the fast-math float64 tier:
//
//  1. Storage and arithmetic are float32: ~2^-24 unit roundoff instead
//     of 2^-53. The summation order is the same fixed band/stripe order
//     as the fast kernels, so results are deterministic across runs and
//     worker counts for a given host.
//  2. Multiply-adds round once per step. The pure-Go mirrors fuse
//     through float64 (the product of two float32s is exact in float64)
//     and the assembly uses VFMADD231PS; the two can differ in the last
//     float32 ulp on round-to-nearest ties, so — unlike the f64 tiers —
//     asm and fallback are held together by ULP bounds
//     (TestF32KernelsULPBound), not bitwise equality.
//  3. The transcendentals (expf32/tanhf32/sigmoidf32) are polynomial
//     approximations accurate to a few float32 ulps, not math.Exp/Tanh
//     rounded; they are the main reason f32 decode outruns fast-f64.
//
// End-to-end accuracy of the tier is governed by the accbudget harness
// (snowwhite acctest -precision f32, gated >= 99% top-3 agreement in
// verify.sh), mirroring how the fast-math tier was introduced.

// fmaf is the float32 fused multiply-add: a*b is exact in float64, so
// a single float64 add-and-round then one round to float32 matches
// hardware FMA except on double-rounding ties (see contract note 2).
func fmaf(a, b, c float32) float32 {
	return float32(float64(a)*float64(b) + float64(c))
}

// axpy32 computes o[j] = fma(s, bv[j], o[j]) over len(bv) elements; no
// skip-zero contract (s may be zero, and 0*Inf = NaN propagates).
func axpy32(o, bv []float32, s float32) {
	o = o[:len(bv)]
	if useFMA && len(bv) >= avxMinC {
		axpyFMA32(&o[0], &bv[0], s, len(bv))
		return
	}
	for j, v := range bv {
		o[j] = fmaf(s, v, o[j])
	}
}

// dot32 returns the striped fused float32 dot product of a and b:
// dotFast's stripe pattern widened to 16 lanes (two 8-float32 vectors),
// matching dotFMA32's accumulation shape.
func dot32(a, b []float32) float32 {
	n := len(a)
	if useFMA && n >= 2*avxMinC {
		return dotFMA32(&a[0], &b[0], n)
	}
	var acc [16]float32
	p := 0
	for ; p+16 <= n; p += 16 {
		for l := 0; l < 16; l++ {
			acc[l] = fmaf(a[p+l], b[p+l], acc[l])
		}
	}
	var tail float32
	for ; p < n; p++ {
		tail = fmaf(a[p], b[p], tail)
	}
	var s [4]float32
	for l := 0; l < 4; l++ {
		s[l] = (acc[l] + acc[l+8]) + (acc[l+4] + acc[l+12])
	}
	return (s[0] + s[1]) + (s[2] + s[3]) + tail
}

// matmul32 computes out += a@b with out [r,c], a [r,k], b [k,c]: the
// float32 sibling of matmulFast, same band-fused blocking with the
// 8-lane band kernel.
func matmul32(out, a, b []float32, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		a0 := a[i*k : i*k+k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a0[p], a1[p], a2[p], a3[p]
			av10, av11, av12, av13 := a0[p+1], a1[p+1], a2[p+1], a3[p+1]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if useFMA && c >= avxMinC {
				av := [8]float32{av00, av01, av02, av03, av10, av11, av12, av13}
				band2pFMA32(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
				continue
			}
			for j, bv0 := range bp {
				bv1 := bq[j]
				o0[j] = fmaf(av10, bv1, fmaf(av00, bv0, o0[j]))
				o1[j] = fmaf(av11, bv1, fmaf(av01, bv0, o1[j]))
				o2[j] = fmaf(av12, bv1, fmaf(av02, bv0, o2[j]))
				o3[j] = fmaf(av13, bv1, fmaf(av03, bv0, o3[j]))
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			axpy32(o0, bp, a0[p])
			axpy32(o1, bp, a1[p])
			axpy32(o2, bp, a2[p])
			axpy32(o3, bp, a3[p])
		}
	}
	// Remainder rows: per-row ascending-p fused axpy.
	for i := ib; i < r; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*c : (i+1)*c]
		for p := 0; p < k; p++ {
			axpy32(oi, b[p*c:(p+1)*c], ai[p])
		}
	}
}

// matmulNT32 computes out += a @ b^T with a [r,k], b [c,k], out [r,c].
// Both operands of every output element are contiguous rows, so unlike
// matmulNTFast no packed panel is needed: each element is one striped
// fused dot.
func matmulNT32(out, a, b []float32, r, k, c int) {
	for i := 0; i < r; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			oi[j] += dot32(ai, b[j*k:(j+1)*k])
		}
	}
}

// matmulTN32 computes out += a^T @ b with a [k,r], b [k,c], out [r,c]:
// the float32 sibling of matmulTNFast, same band-fused blocking.
func matmulTN32(out, a, b []float32, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a[p*r+i], a[p*r+i+1], a[p*r+i+2], a[p*r+i+3]
			av10, av11, av12, av13 := a[(p+1)*r+i], a[(p+1)*r+i+1], a[(p+1)*r+i+2], a[(p+1)*r+i+3]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if useFMA && c >= avxMinC {
				av := [8]float32{av00, av01, av02, av03, av10, av11, av12, av13}
				band2pFMA32(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
				continue
			}
			for j, bv0 := range bp {
				bv1 := bq[j]
				o0[j] = fmaf(av10, bv1, fmaf(av00, bv0, o0[j]))
				o1[j] = fmaf(av11, bv1, fmaf(av01, bv0, o1[j]))
				o2[j] = fmaf(av12, bv1, fmaf(av02, bv0, o2[j]))
				o3[j] = fmaf(av13, bv1, fmaf(av03, bv0, o3[j]))
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			axpy32(o0, bp, a[p*r+i])
			axpy32(o1, bp, a[p*r+i+1])
			axpy32(o2, bp, a[p*r+i+2])
			axpy32(o3, bp, a[p*r+i+3])
		}
	}
	// Remainder rows: p-outer fused axpy over the tail rows of out.
	if ib < r {
		for p := 0; p < k; p++ {
			ap := a[p*r : p*r+r : p*r+r]
			bp := b[p*c : p*c+c : p*c+c]
			for i := ib; i < r; i++ {
				axpy32(out[i*c:i*c+c:i*c+c], bp, ap[i])
			}
		}
	}
}

// attnScores32 fills out [B,T] with scores[b,t] = dec[b] · enc[b,t]:
// the float32 sibling of attnScoresFast.
func attnScores32(out, dec, enc []float32, B, T, H int) {
	for b := 0; b < B; b++ {
		db := dec[b*H : (b+1)*H]
		ob := out[b*T : (b+1)*T]
		eb := enc[b*T*H : (b+1)*T*H]
		for tt := 0; tt < T; tt++ {
			ob[tt] = dot32(db, eb[tt*H:(tt+1)*H])
		}
	}
}

// weightedSum32 fills out [B,H] with ctx[b] = sum_t alpha[b,t] *
// enc[b,t]: the float32 sibling of weightedSumFast — fused axpy per
// timestep, no skip-zero test.
func weightedSum32(out, alpha, enc []float32, B, T, H int) {
	for b := 0; b < B; b++ {
		ob := out[b*H : (b+1)*H : (b+1)*H]
		for tt := 0; tt < T; tt++ {
			axpy32(ob, enc[(b*T+tt)*H:(b*T+tt+1)*H], alpha[b*T+tt])
		}
	}
}

// attnScoresGrouped32 fills out [L,T] with scores[l,t] =
// dec[l] · enc[groups[l]*T+t]: the float32 sibling of
// attnScoresGroupedFast, reading each search's shared encoder block in
// place.
func attnScoresGrouped32(out, dec, enc []float32, groups []int, T, H int) {
	for l, g := range groups {
		dl := dec[l*H : (l+1)*H]
		ob := out[l*T : (l+1)*T]
		eb := enc[g*T*H : (g+1)*T*H]
		for tt := 0; tt < T; tt++ {
			ob[tt] = dot32(dl, eb[tt*H:(tt+1)*H])
		}
	}
}

// weightedSumGrouped32 fills out [L,H] with ctx[l] = sum_t alpha[l,t] *
// enc[groups[l]*T+t]: the float32 sibling of weightedSumGroupedFast.
func weightedSumGrouped32(out, alpha, enc []float32, groups []int, T, H int) {
	for l, g := range groups {
		ob := out[l*H : (l+1)*H : (l+1)*H]
		eb := enc[g*T*H : (g+1)*T*H]
		for tt := 0; tt < T; tt++ {
			axpy32(ob, eb[tt*H:(tt+1)*H], alpha[l*T+tt])
		}
	}
}

// Fast float32 transcendentals. Decode time outside the GEMMs is
// dominated by exp/tanh/sigmoid over the LSTM gate activations and the
// softmax rows; math.Exp and math.Tanh compute 53-bit results the f32
// engine immediately throws away. The approximations below target a few
// float32 ulps — far inside the engine's accumulated rounding error —
// at a fraction of the latency.

const (
	expMaxIn  = 88.72283  // above this exp overflows float32
	expMinIn  = -87.33655 // below this exp underflows to zero (subnormals flushed)
	expLog2e  = 1.44269504088896341
	expLn2Hi  = 6.93145752e-1 // ln2 split: hi part exact in float32
	expLn2Lo  = 1.42860677e-6 // ln2 - expLn2Hi
	expPolyC0 = 1.9875691500e-4
	expPolyC1 = 1.3981999507e-3
	expPolyC2 = 8.3334519073e-3
	expPolyC3 = 4.1665795894e-2
	expPolyC4 = 1.6666665459e-1
	expPolyC5 = 5.0000001201e-1
)

// expf32 approximates e^x in float32: argument reduction against a
// split ln2 (x = n*ln2 + r, |r| <= ln2/2) followed by a degree-5
// minimax polynomial for e^r (Cephes expf coefficients) and exponent
// reconstruction. Relative error is a few float32 ulps over the finite
// range; out-of-range arguments saturate to +Inf/0. NaN propagates
// (n=int32(NaN) is implementation-pinned but the polynomial keeps NaN).
func expf32(x float32) float32 {
	if x != x {
		return x
	}
	if x > expMaxIn {
		return float32(math.Inf(1))
	}
	if x < expMinIn {
		return 0
	}
	// n = round(x / ln2), round half away from zero.
	z := x * expLog2e
	var n int32
	if z >= 0 {
		n = int32(z + 0.5)
	} else {
		n = int32(z - 0.5)
	}
	nf := float32(n)
	r := x - nf*expLn2Hi
	r -= nf * expLn2Lo
	p := float32(expPolyC0)
	p = p*r + expPolyC1
	p = p*r + expPolyC2
	p = p*r + expPolyC3
	p = p*r + expPolyC4
	p = p*r + expPolyC5
	y := p*r*r + r + 1
	// Scale by 2^n in two halves so n=128 (x near expMaxIn, result near
	// MaxFloat32) does not overflow the single-factor exponent field.
	n1 := n >> 1
	n2 := n - n1
	return y * math.Float32frombits(uint32(n1+127)<<23) * math.Float32frombits(uint32(n2+127)<<23)
}

// expConsts32 is vexpFMA32's constant table: each constant pre-broadcast
// to a full 8-lane vector so the assembly reads them as plain m256
// operands (no per-iteration VBROADCASTSS). Slot order is fixed by the
// assembly's 32-byte offsets; the last two slots hold integer bit
// patterns (the exponent bias as a dword, +Inf) smuggled through
// Float32frombits.
var expConsts32 = buildExpConsts32()

func buildExpConsts32() *[14 * 8]float32 {
	vals := [14]float32{
		expMaxIn, expMinIn, expLog2e, expLn2Hi, expLn2Lo,
		expPolyC0, expPolyC1, expPolyC2, expPolyC3, expPolyC4, expPolyC5,
		1,
		math.Float32frombits(127),        // exponent bias, read as a dword
		math.Float32frombits(0x7F800000), // +Inf
	}
	var t [14 * 8]float32
	for i, v := range vals {
		for l := 0; l < 8; l++ {
			t[i*8+l] = v
		}
	}
	return &t
}

// expv32 fills o[i] = exp(x[i]) under expf32's contract. The vector body
// (vexpFMA32) runs the same reduction and polynomial 8 lanes at a time
// but rounds n to nearest-even (VCVTPS2DQ) where the scalar rounds half
// away from zero, and fuses the polynomial steps (VFMADD213PS) where the
// scalar rounds each one — so vector and scalar lanes can differ by a
// few float32 ulps (TestVExp32TracksScalar bounds them together);
// saturation and NaN edges match exactly by construction (the masks
// compare the original input, as the scalar does). o and x may alias.
func expv32(o, x []float32) {
	o = o[:len(x)]
	i := 0
	if useFMA && len(x) >= 8 {
		m := len(x) &^ 7
		vexpFMA32(&o[0], &x[0], &expConsts32[0], m)
		i = m
	}
	for ; i < len(x); i++ {
		o[i] = expf32(x[i])
	}
}

// vadd32 fills o[i] = a[i] + b[i]. Plain single additions on both paths
// — no fusion anywhere — so the VADDPS body is bitwise-identical to the
// scalar loop (TestVAdd32Bitwise), unlike the FMA kernels. o may alias
// a or b.
func vadd32(o, a, b []float32) {
	o = o[:len(a)]
	if useFMA && len(a) >= avxMinC {
		vaddFMA32(&o[0], &a[0], &b[0], len(a))
		return
	}
	for i := range o {
		o[i] = a[i] + b[i]
	}
}

// tanhf32 approximates tanh(x) via expf32: t = (1-e)/(1+e) with
// e = exp(-2|x|), saturating to ±1 beyond |x| > 9.01 where float32
// tanh is exactly ±1 anyway.
func tanhf32(x float32) float32 {
	if x != x {
		return x
	}
	ax := x
	if ax < 0 {
		ax = -ax
	}
	if ax > 9.01 {
		if x < 0 {
			return -1
		}
		return 1
	}
	e := expf32(-2 * ax)
	t := (1 - e) / (1 + e)
	if x < 0 {
		return -t
	}
	return t
}

// sigmoidf32 approximates the logistic function 1/(1+e^-x) via expf32.
func sigmoidf32(x float32) float32 {
	return 1 / (1 + expf32(-x))
}

// logSoftmaxRow32 is logSoftmaxRow in float32: max-shifted exp sum with
// one float64 log per row (the log of a float32 sum is cheap and
// removes the last meaningful error term from beam scores). The shifted
// exponentials run through the vector exp with out as scratch — the
// vocabulary-width rows here are the engine's single largest
// transcendental bill — then sum in ascending index order.
func logSoftmaxRow32(out, row []float32) {
	max := row[0]
	for _, x := range row {
		if x > max {
			max = x
		}
	}
	for i, x := range row {
		out[i] = x - max
	}
	expv32(out, out)
	var sum float32
	for _, e := range out {
		sum += e
	}
	lse := max + float32(math.Log(float64(sum)))
	for i, x := range row {
		out[i] = x - lse
	}
}
