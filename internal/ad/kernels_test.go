package ad

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// kernelCase names one of the three matmul variants and pairs the
// blocked kernel with its scalar oracle. Dimension semantics follow the
// kernel signatures: out is [r,c]; a is [r,k] (or [k,r] for TN); b is
// [k,c] (or [c,k] for NT).
type kernelCase struct {
	name             string
	blocked, scalar  func(out, a, b []float64, r, k, c int)
	aLen, bLen, oLen func(r, k, c int) int
}

var kernelCases = []kernelCase{
	{
		name: "NN", blocked: matmul, scalar: matmulScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return k * c },
		oLen: func(r, k, c int) int { return r * c },
	},
	{
		name: "NT", blocked: matmulNT, scalar: matmulNTScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return c * k },
		oLen: func(r, k, c int) int { return r * c },
	},
	{
		name: "TN", blocked: matmulTN, scalar: matmulTNScalar,
		aLen: func(r, k, c int) int { return k * r },
		bLen: func(r, k, c int) int { return k * c },
		oLen: func(r, k, c int) int { return r * c },
	},
}

// fillRand populates dst with values drawn from r; zeroFrac entries are
// exact zeros, exercising the kernels' skip-zero paths.
func fillRand(r *rand.Rand, dst []float64, zeroFrac float64) {
	for i := range dst {
		if r.Float64() < zeroFrac {
			dst[i] = 0
			continue
		}
		dst[i] = (r.Float64()*2 - 1) * math.Exp(float64(r.Intn(20)-10))
	}
}

// TestKernelsBitwiseOracle: the blocked kernels must match the scalar
// kernels bit for bit on randomized shapes (including all remainder
// combinations around the 4x4 micro-kernel), random accumulation targets
// (the kernels have += semantics), and inputs with exact zeros. The
// training determinism guarantee rests on this equality.
func TestKernelsBitwiseOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 23, 31, 32, 33, 64}
	pick := func() int { return dims[r.Intn(len(dims))] }
	for _, kc := range kernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 300; trial++ {
				R, K, C := pick(), pick(), pick()
				a := make([]float64, kc.aLen(R, K, C))
				b := make([]float64, kc.bLen(R, K, C))
				fillRand(r, a, 0.2)
				fillRand(r, b, 0.1)
				want := make([]float64, kc.oLen(R, K, C))
				fillRand(r, want, 0.3) // accumulate into nonzero out
				got := append([]float64(nil), want...)
				kc.scalar(want, a, b, R, K, C)
				kc.blocked(got, a, b, R, K, C)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] = %x (%g), scalar %x (%g)",
							kc.name, R, K, C, i,
							math.Float64bits(got[i]), got[i],
							math.Float64bits(want[i]), want[i])
					}
				}
			}
		})
	}
}

// sameBits reports bitwise equality, except that any NaN matches any
// NaN: Go leaves NaN sign/payload propagation to the compiler's operand
// ordering, so only NaN-ness — not the payload — is portable.
func sameBits(x, y float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	return math.Float64bits(x) == math.Float64bits(y)
}

// TestKernelsBitwiseOracleSpecials repeats the oracle comparison with
// Inf and NaN planted in b: products against zero entries of a must stay
// skipped exactly as the scalar kernels skip them (an unskipped 0 x Inf
// would materialize a NaN the scalar kernel never produced).
func TestKernelsBitwiseOracleSpecials(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	specials := []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1)}
	for _, kc := range kernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 100; trial++ {
				R, K, C := 1+r.Intn(13), 1+r.Intn(13), 1+r.Intn(13)
				a := make([]float64, kc.aLen(R, K, C))
				b := make([]float64, kc.bLen(R, K, C))
				fillRand(r, a, 0.3)
				fillRand(r, b, 0)
				for i := 0; i < len(b)/4+1; i++ {
					b[r.Intn(len(b))] = specials[r.Intn(len(specials))]
				}
				want := make([]float64, kc.oLen(R, K, C))
				got := make([]float64, len(want))
				kc.scalar(want, a, b, R, K, C)
				kc.blocked(got, a, b, R, K, C)
				for i := range want {
					if !sameBits(got[i], want[i]) {
						t.Fatalf("%s r=%d k=%d c=%d with specials: out[%d] = %x, scalar %x",
							kc.name, R, K, C, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
		})
	}
}

// BenchmarkMatmulKernels compares the blocked kernels against the scalar
// reference on the model's hot shapes: the forward/backward products of
// an LSTM step on a 4-row training shard and on a full 32-row batch, and
// the decoder's output projection. scripts/bench.sh records the results
// in BENCH_train.json.
func BenchmarkMatmulKernels(b *testing.B) {
	shapes := []struct {
		name    string
		r, k, c int
	}{
		{"shard-lstm", 4, 64, 256},  // x[4,H] @ Wx[H,4H]
		{"batch-lstm", 32, 64, 256}, // full-batch step for comparison
		{"logits", 4, 64, 400},      // hTilde @ out.W (vocab projection)
		{"square", 64, 64, 64},      // generic mid-size product
		{"gradTN", 64, 32, 256},     // dW += X^T @ dOut (k = batch rows)
	}
	for _, kc := range kernelCases {
		for _, sh := range shapes {
			r, k, c := sh.r, sh.k, sh.c
			if kc.name == "TN" {
				// TN reduces over the batch: reinterpret r/k so the
				// shapes stay the model's actual gradient products.
				r, k = k, r
			}
			a := make([]float64, kc.aLen(r, k, c))
			bm := make([]float64, kc.bLen(r, k, c))
			out := make([]float64, kc.oLen(r, k, c))
			rng := rand.New(rand.NewSource(1))
			// Dense operands: tanh/sigmoid activations and softmax
			// gradients have no exact zeros; dropout-masked inputs do,
			// and degrade the fused kernels toward scalar speed (the
			// slow path is the scalar per-row axpy).
			fillRand(rng, a, 0)
			fillRand(rng, bm, 0)
			flops := float64(2 * r * k * c)
			b.Run(fmt.Sprintf("%s/%s/blocked", kc.name, sh.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kc.blocked(out, a, bm, r, k, c)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
			})
			b.Run(fmt.Sprintf("%s/%s/scalar", kc.name, sh.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kc.scalar(out, a, bm, r, k, c)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
			})
		}
	}
}
