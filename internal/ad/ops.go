package ad

import (
	"fmt"
	"math"
)

// SoftmaxCrossEntropy computes the mean masked cross-entropy between
// logits [B,V] and targets (len B). weights (len B) scales each example's
// contribution; zero weight masks padding. The result is a [1,1] scalar;
// the fused backward is the standard (softmax - onehot) * weight / norm.
func (t *Tape) SoftmaxCrossEntropy(logits *V, targets []int, weights []float64) *V {
	norm := 0.0
	for _, w := range weights {
		norm += w
	}
	if norm == 0 {
		norm = 1
	}
	return t.softmaxCE(logits, targets, weights, norm)
}

// SoftmaxCrossEntropySum is SoftmaxCrossEntropy without the weight
// normalization: the result is the summed weighted cross-entropy. Shard
// workers use it so per-shard losses compose exactly — the batch loss is
// the ordered sum of shard sums times one global 1/totalWeight, which is
// the same arithmetic at any shard count.
func (t *Tape) SoftmaxCrossEntropySum(logits *V, targets []int, weights []float64) *V {
	return t.softmaxCE(logits, targets, weights, 1)
}

func (t *Tape) softmaxCE(logits *V, targets []int, weights []float64, norm float64) *V {
	if t.f32 {
		// Training-only op: the f32 engine is inference-only by design
		// (see NewForwardF32). Fail loudly rather than silently reading
		// the absent float64 storage.
		panic("ad: SoftmaxCrossEntropy on an f32 tape")
	}
	if len(targets) != logits.R || len(weights) != logits.R {
		panic(fmt.Sprintf("ad: SoftmaxCrossEntropy %d logit rows, %d targets, %d weights", logits.R, len(targets), len(weights)))
	}
	B, Vc := logits.R, logits.C
	probs := t.scratch(B * Vc)
	loss := 0.0
	for i := 0; i < B; i++ {
		row := logits.W[i*Vc : (i+1)*Vc]
		max := row[0]
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		sum := 0.0
		for j, x := range row {
			e := math.Exp(x - max)
			probs[i*Vc+j] = e
			sum += e
		}
		for j := range row {
			probs[i*Vc+j] /= sum
		}
		if weights[i] != 0 {
			p := probs[i*Vc+targets[i]]
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= weights[i] * math.Log(p)
		}
	}
	out := t.new(1, 1)
	out.W[0] = loss / norm
	if t.grad {
		tg := append([]int(nil), targets...)
		wt := append([]float64(nil), weights...)
		t.record(func() {
			g := out.G[0] / norm
			for i := 0; i < B; i++ {
				if wt[i] == 0 {
					continue
				}
				for j := 0; j < Vc; j++ {
					d := probs[i*Vc+j]
					if j == tg[i] {
						d -= 1
					}
					logits.G[i*Vc+j] += g * wt[i] * d
				}
			}
		})
	}
	return out
}

// LogSoftmaxRow computes the log-softmax of a single row vector without
// recording gradients; used during inference (beam search).
func LogSoftmaxRow(row []float64) []float64 {
	return logSoftmaxRow(make([]float64, len(row)), row)
}

// LogSoftmaxRow on a tape draws the output buffer from the tape's pool:
// it lives until the tape's next ReleaseExcept or Reset, so callers in a
// recycled loop (beam search decode steps) get an allocation-free
// log-softmax. No gradients are recorded either way.
func (t *Tape) LogSoftmaxRow(row []float64) []float64 {
	return logSoftmaxRow(t.scratch(len(row)), row)
}

func logSoftmaxRow(out, row []float64) []float64 {
	max := row[0]
	for _, x := range row {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for _, x := range row {
		sum += math.Exp(x - max)
	}
	lse := max + math.Log(sum)
	for i, x := range row {
		out[i] = x - lse
	}
	return out
}

// AttnScores computes Luong dot-product attention scores between a
// decoder state dec [B,H] and per-example encoder states enc [B*T,H]
// (row-major by example, then time): scores[b,t] = dec[b] · enc[b,t].
func (t *Tape) AttnScores(dec, enc *V, T int) *V {
	B, H := dec.R, dec.C
	if enc.R != B*T || enc.C != H {
		panic(fmt.Sprintf("ad: AttnScores enc %dx%d for B=%d T=%d H=%d", enc.R, enc.C, B, T, H))
	}
	if t.f32 && !t.grad {
		out := t.new(B, T)
		attnScores32(out.W32, f32w(dec), f32w(enc), B, T, H)
		return out
	}
	out := t.new(B, T)
	if t.FastMath() {
		attnScoresFast(out.W, dec.W, enc.W, B, T, H)
		return out
	}
	for b := 0; b < B; b++ {
		db := dec.W[b*H : (b+1)*H]
		for tt := 0; tt < T; tt++ {
			eb := enc.W[(b*T+tt)*H : (b*T+tt+1)*H]
			s := 0.0
			for j := 0; j < H; j++ {
				s += db[j] * eb[j]
			}
			out.W[b*T+tt] = s
		}
	}
	if t.grad {
		t.record(func() {
			for b := 0; b < B; b++ {
				db := dec.W[b*H : (b+1)*H]
				dg := dec.G[b*H : (b+1)*H]
				for tt := 0; tt < T; tt++ {
					g := out.G[b*T+tt]
					if g == 0 {
						continue
					}
					eb := enc.W[(b*T+tt)*H : (b*T+tt+1)*H]
					eg := enc.G[(b*T+tt)*H : (b*T+tt+1)*H]
					for j := 0; j < H; j++ {
						dg[j] += g * eb[j]
						eg[j] += g * db[j]
					}
				}
			}
		})
	}
	return out
}

// SoftmaxRowsMasked applies a softmax over each row of a [B,T] matrix,
// treating positions with mask[b*T+t]==0 as -inf (padding).
func (t *Tape) SoftmaxRowsMasked(a *V, mask []float64) *V {
	B, T := a.R, a.C
	if len(mask) != B*T {
		panic("ad: SoftmaxRowsMasked mask length mismatch")
	}
	if t.f32 && !t.grad {
		return t.softmaxRowsMaskedF32(a, mask)
	}
	out := t.new(B, T)
	for b := 0; b < B; b++ {
		max := math.Inf(-1)
		for tt := 0; tt < T; tt++ {
			if mask[b*T+tt] != 0 && a.W[b*T+tt] > max {
				max = a.W[b*T+tt]
			}
		}
		if math.IsInf(max, -1) {
			continue // fully masked row: all-zero attention
		}
		sum := 0.0
		for tt := 0; tt < T; tt++ {
			if mask[b*T+tt] != 0 {
				e := math.Exp(a.W[b*T+tt] - max)
				out.W[b*T+tt] = e
				sum += e
			}
		}
		for tt := 0; tt < T; tt++ {
			out.W[b*T+tt] /= sum
		}
	}
	if t.grad {
		t.record(func() {
			for b := 0; b < B; b++ {
				// dL/dx_i = y_i * (g_i - sum_j g_j y_j)
				dot := 0.0
				for tt := 0; tt < T; tt++ {
					dot += out.G[b*T+tt] * out.W[b*T+tt]
				}
				for tt := 0; tt < T; tt++ {
					a.G[b*T+tt] += out.W[b*T+tt] * (out.G[b*T+tt] - dot)
				}
			}
		})
	}
	return out
}

// WeightedSum computes per-example attention contexts: given weights
// alpha [B,T] and encoder states enc [B*T,H], returns ctx [B,H] with
// ctx[b] = sum_t alpha[b,t] * enc[b,t].
func (t *Tape) WeightedSum(alpha, enc *V, H int) *V {
	B, T := alpha.R, alpha.C
	if enc.R != B*T || enc.C != H {
		panic("ad: WeightedSum shape mismatch")
	}
	if t.f32 && !t.grad {
		out := t.new(B, H)
		weightedSum32(out.W32, f32w(alpha), f32w(enc), B, T, H)
		return out
	}
	out := t.new(B, H)
	if t.FastMath() {
		weightedSumFast(out.W, alpha.W, enc.W, B, T, H)
		return out
	}
	for b := 0; b < B; b++ {
		ob := out.W[b*H : (b+1)*H]
		for tt := 0; tt < T; tt++ {
			w := alpha.W[b*T+tt]
			if w == 0 {
				continue
			}
			eb := enc.W[(b*T+tt)*H : (b*T+tt+1)*H]
			for j := 0; j < H; j++ {
				ob[j] += w * eb[j]
			}
		}
	}
	if t.grad {
		t.record(func() {
			for b := 0; b < B; b++ {
				og := out.G[b*H : (b+1)*H]
				for tt := 0; tt < T; tt++ {
					eb := enc.W[(b*T+tt)*H : (b*T+tt+1)*H]
					eg := enc.G[(b*T+tt)*H : (b*T+tt+1)*H]
					w := alpha.W[b*T+tt]
					s := 0.0
					for j := 0; j < H; j++ {
						s += og[j] * eb[j]
						eg[j] += og[j] * w
					}
					alpha.G[b*T+tt] += s
				}
			}
		})
	}
	return out
}

// StackRows builds a [len(vs)*B, C] matrix interleaved by example: row
// (b*T + t) is vs[t]'s row b. It converts a time-major sequence of [B,C]
// states into the example-major layout AttnScores/WeightedSum expect.
func (t *Tape) StackRows(vs []*V) *V {
	T := len(vs)
	B, C := vs[0].R, vs[0].C
	if t.f32 && !t.grad {
		return t.stackRowsF32(vs, T, B, C)
	}
	out := t.new(B*T, C)
	for tt, v := range vs {
		if v.R != B || v.C != C {
			panic("ad: StackRows shape mismatch")
		}
		for b := 0; b < B; b++ {
			copy(out.W[(b*T+tt)*C:(b*T+tt+1)*C], v.W[b*C:(b+1)*C])
		}
	}
	if t.grad {
		t.record(func() {
			for tt, v := range vs {
				for b := 0; b < B; b++ {
					for j := 0; j < C; j++ {
						v.G[b*C+j] += out.G[(b*T+tt)*C+j]
					}
				}
			}
		})
	}
	return out
}

// MaskRows zeroes rows whose mask entry is 0 (used to stop gradient and
// state flow through padding timesteps).
func (t *Tape) MaskRows(a *V, mask []float64) *V {
	if len(mask) != a.R {
		panic("ad: MaskRows mask length mismatch")
	}
	if t.f32 && !t.grad {
		return t.maskRowsF32(a, mask)
	}
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		if mask[i] != 0 {
			copy(out.W[i*a.C:(i+1)*a.C], a.W[i*a.C:(i+1)*a.C])
		}
	}
	if t.grad {
		t.record(func() {
			for i := 0; i < a.R; i++ {
				if mask[i] != 0 {
					for j := 0; j < a.C; j++ {
						a.G[i*a.C+j] += out.G[i*a.C+j]
					}
				}
			}
		})
	}
	return out
}

// Blend returns mask*a + (1-mask)*b row-wise: rows of a where mask is 1,
// rows of b where mask is 0. Used to hold LSTM state constant across
// padding timesteps.
func (t *Tape) Blend(a, b *V, mask []float64) *V {
	sameShape("Blend", a, b)
	if len(mask) != a.R {
		panic("ad: Blend mask length mismatch")
	}
	if t.f32 && !t.grad {
		return t.blendF32(a, b, mask)
	}
	out := t.new(a.R, a.C)
	for i := 0; i < a.R; i++ {
		src := b
		if mask[i] != 0 {
			src = a
		}
		copy(out.W[i*a.C:(i+1)*a.C], src.W[i*a.C:(i+1)*a.C])
	}
	if t.grad {
		t.record(func() {
			for i := 0; i < a.R; i++ {
				dst := b
				if mask[i] != 0 {
					dst = a
				}
				for j := 0; j < a.C; j++ {
					dst.G[i*a.C+j] += out.G[i*a.C+j]
				}
			}
		})
	}
	return out
}
