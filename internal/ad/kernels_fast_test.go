package ad

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// fastKernelCase pairs a fast-math kernel with the exact scalar
// reference it drifts from and element accessors for the two operands,
// so tests can recompute any single output element's condition number
// independently of the kernel loops.
type fastKernelCase struct {
	name        string
	fast, exact func(out, a, b []float64, r, k, c int)
	aLen, bLen  func(r, k, c int) int
	aAt         func(a []float64, r, k, c, i, p int) float64
	bAt         func(b []float64, r, k, c, p, j int) float64
}

var fastKernelCases = []fastKernelCase{
	{
		name: "NN", fast: matmulFast, exact: matmulScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return k * c },
		aAt:  func(a []float64, r, k, c, i, p int) float64 { return a[i*k+p] },
		bAt:  func(b []float64, r, k, c, p, j int) float64 { return b[p*c+j] },
	},
	{
		name: "NT", fast: matmulNTFast, exact: matmulNTScalar,
		aLen: func(r, k, c int) int { return r * k },
		bLen: func(r, k, c int) int { return c * k },
		aAt:  func(a []float64, r, k, c, i, p int) float64 { return a[i*k+p] },
		bAt:  func(b []float64, r, k, c, p, j int) float64 { return b[j*k+p] },
	},
	{
		name: "TN", fast: matmulTNFast, exact: matmulTNScalar,
		aLen: func(r, k, c int) int { return k * r },
		bLen: func(r, k, c int) int { return k * c },
		aAt:  func(a []float64, r, k, c, i, p int) float64 { return a[p*r+i] },
		bAt:  func(b []float64, r, k, c, p, j int) float64 { return b[p*c+j] },
	},
}

// withFMA runs f twice — FMA assembly dispatch on (where the host has
// it) and forced off, which routes the same kernels through their
// pure-Go math.FMA mirrors — and returns both results. Serial only: it
// flips the package-level dispatch flag.
func withFMA(f func() []float64) (asm, golang []float64) {
	saved := useFMA
	defer func() { useFMA = saved }()
	asm = f()
	useFMA = false
	golang = f()
	return asm, golang
}

// TestFastKernelsFMABitwise pins the FMA assembly to the pure-Go
// math.FMA mirrors bitwise: both fuse each multiply-add into a single
// rounding over the same ascending-p chains, so they must agree on
// every input, including Inf/NaN/±0 — the fast kernels have no
// skip-zero semantics, so specials are planted in BOTH operands (a
// zero times Inf must produce NaN on both paths).
func TestFastKernelsFMABitwise(t *testing.T) {
	if !useFMA {
		t.Skip("host has no FMA; assembly path unreachable")
	}
	r := rand.New(rand.NewSource(23))
	specials := []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1)}
	for _, kc := range fastKernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				R, K, C := 1+r.Intn(16), 1+r.Intn(17), 1+r.Intn(37)
				a := make([]float64, kc.aLen(R, K, C))
				b := make([]float64, kc.bLen(R, K, C))
				for i := range a {
					a[i] = r.NormFloat64()
				}
				for i := range b {
					b[i] = r.NormFloat64()
				}
				if trial%3 != 0 {
					a[r.Intn(len(a))] = specials[r.Intn(len(specials))]
					b[r.Intn(len(b))] = specials[r.Intn(len(specials))]
				}
				init := make([]float64, R*C)
				fillRand(r, init, 0.3) // += semantics: accumulate into nonzero out
				asm, golang := withFMA(func() []float64 {
					out := append([]float64(nil), init...)
					kc.fast(out, a, b, R, K, C)
					return out
				})
				for i := range asm {
					if !sameBits(asm[i], golang[i]) {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] asm %x (%g), go %x (%g)",
							kc.name, R, K, C, i,
							math.Float64bits(asm[i]), asm[i],
							math.Float64bits(golang[i]), golang[i])
					}
				}
			}
		})
	}
}

// TestFmaAxpyBitwise covers every tail length through the unrolled,
// single-vector, and scalar segments of axpyFMA against the math.FMA
// loop, including s = 0 with Inf in b (no skip: the NaN must appear on
// both paths).
func TestFmaAxpyBitwise(t *testing.T) {
	if !useFMA {
		t.Skip("host has no FMA; assembly path unreachable")
	}
	r := rand.New(rand.NewSource(29))
	for n := avxMinC; n < avxMinC+40; n++ {
		o := make([]float64, n)
		b := make([]float64, n)
		for i := range o {
			o[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		b[n/2] = math.Inf(-1)
		for _, s := range []float64{r.NormFloat64(), 0} {
			asm, golang := withFMA(func() []float64 {
				out := append([]float64(nil), o...)
				fmaAxpy(out, b, s)
				return out
			})
			for i := range asm {
				if !sameBits(asm[i], golang[i]) {
					t.Fatalf("fmaAxpy n=%d s=%g: out[%d] asm %x, go %x",
						n, s, i, math.Float64bits(asm[i]), math.Float64bits(golang[i]))
				}
			}
		}
	}
}

// ulpDiff returns the distance between two finite same-sign floats in
// units in the last place (the number of representable doubles between
// them).
func ulpDiff(x, y float64) uint64 {
	xb, yb := int64(math.Float64bits(x)), int64(math.Float64bits(y))
	if xb < 0 {
		xb = math.MinInt64 - xb // order negatives below positives
	}
	if yb < 0 {
		yb = math.MinInt64 - yb
	}
	if xb < yb {
		return uint64(yb - xb)
	}
	return uint64(xb - yb)
}

// TestFastKernelsULPBound: on well-conditioned inputs (all operands in
// [0.5, 2), so every partial sum is positive and increasing, and no
// cancellation occurs) the fast kernels must stay within 4k+8 ULPs of
// the exact scalar references. Derivation: the exact chain performs 2k
// roundings and the fused chain k, each bounded by eps relative, so the
// paths diverge by at most ~3k·eps relative ≈ 3k ULPs; 4k+8 adds slack
// for the accumulate-into-out step and eps-vs-ULP slop. This is the
// documented per-kernel accuracy contract replacing bitwise equality.
func TestFastKernelsULPBound(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, kc := range fastKernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 100; trial++ {
				R, K, C := 1+r.Intn(16), 1+r.Intn(65), 1+r.Intn(37)
				a := make([]float64, kc.aLen(R, K, C))
				b := make([]float64, kc.bLen(R, K, C))
				for i := range a {
					a[i] = 0.5 + 1.5*r.Float64()
				}
				for i := range b {
					b[i] = 0.5 + 1.5*r.Float64()
				}
				want := make([]float64, R*C)
				got := make([]float64, R*C)
				kc.exact(want, a, b, R, K, C)
				kc.fast(got, a, b, R, K, C)
				maxULP := uint64(4*K + 8)
				for i := range want {
					if d := ulpDiff(got[i], want[i]); d > maxULP {
						t.Fatalf("%s r=%d k=%d c=%d: out[%d] fast %g vs exact %g: %d ulps > %d",
							kc.name, R, K, C, i, got[i], want[i], d, maxULP)
					}
				}
			}
		})
	}
}

// TestFastKernelsErrorBound: on general inputs with mixed signs, wide
// dynamic range, and exact zeros, the fast-vs-exact drift of each
// output element is bounded by the condition-aware estimate
//
//	|fast - exact| <= 4(k+2)·eps·( |out0| + sum_p |a_p·b_p| )
//
// — the standard forward-error analysis for a length-k+1 summation
// evaluated at both rounding counts. Cancellation can make the RELATIVE
// error large; the absolute drift stays bounded by the magnitude the
// chain actually passed through.
func TestFastKernelsErrorBound(t *testing.T) {
	const eps = 0x1p-52
	r := rand.New(rand.NewSource(37))
	for _, kc := range fastKernelCases {
		t.Run(kc.name, func(t *testing.T) {
			for trial := 0; trial < 100; trial++ {
				R, K, C := 1+r.Intn(16), 1+r.Intn(65), 1+r.Intn(37)
				a := make([]float64, kc.aLen(R, K, C))
				b := make([]float64, kc.bLen(R, K, C))
				fillRand(r, a, 0.2)
				fillRand(r, b, 0.1)
				init := make([]float64, R*C)
				fillRand(r, init, 0.3)
				want := append([]float64(nil), init...)
				got := append([]float64(nil), init...)
				kc.exact(want, a, b, R, K, C)
				kc.fast(got, a, b, R, K, C)
				for i := 0; i < R; i++ {
					for j := 0; j < C; j++ {
						cond := math.Abs(init[i*C+j])
						for p := 0; p < K; p++ {
							cond += math.Abs(kc.aAt(a, R, K, C, i, p) * kc.bAt(b, R, K, C, p, j))
						}
						bound := 4*float64(K+2)*eps*cond + 1e-300
						if d := math.Abs(got[i*C+j] - want[i*C+j]); d > bound {
							t.Fatalf("%s r=%d k=%d c=%d: out[%d,%d] fast %g vs exact %g: |Δ|=%g > %g",
								kc.name, R, K, C, i, j, got[i*C+j], want[i*C+j], d, bound)
						}
					}
				}
			}
		})
	}
}

// TestTrainingDispatchBitwise is the regression gate for the
// InferenceMode switch: recording tapes (NewTape, NewTraining) must
// dispatch MatMul to the bitwise kernels even now that fused siblings
// exist — their output must equal the exact kernel bit for bit on
// inputs where the fast kernel demonstrably differs — and only
// NewForwardFast may produce the fast-math result. The skip-zero
// semantics are pinned too: a zero in A times an Inf in B must stay
// skipped on every training tape.
func TestTrainingDispatchBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const R, K, C = 8, 64, 48
	a := New(R, K)
	b := New(K, C)
	fillRand(r, a.W, 0)
	fillRand(r, b.W, 0)

	exact := make([]float64, R*C)
	fast := make([]float64, R*C)
	matmul(exact, a.W, b.W, R, K, C)
	matmulFast(fast, a.W, b.W, R, K, C)
	if bitsEqual(exact, fast) {
		t.Fatalf("fast and exact kernels agree on all %d elements; inputs cannot witness the dispatch", R*C)
	}

	tapes := map[string]*Tape{
		"NewTape":     NewTape(),
		"NewTraining": NewTraining(NewPool()),
		"NewForward":  NewForward(nil),
	}
	for name, tape := range tapes {
		if tape.FastMath() {
			t.Fatalf("%s reports FastMath", name)
		}
		out := tape.MatMul(a, b)
		if !bitsEqual(out.W, exact) {
			t.Fatalf("%s MatMul diverged from the bitwise kernel", name)
		}
	}
	ft := NewForwardFast(nil)
	if !ft.FastMath() {
		t.Fatal("NewForwardFast does not report FastMath")
	}
	if out := ft.MatMul(a, b); !bitsEqual(out.W, fast) {
		t.Fatal("NewForwardFast MatMul diverged from the fast kernel")
	}

	// Skip-zero pin: row 0 of A zeroed against an Inf in B.
	for p := 0; p < K; p++ {
		a.W[p] = 0
	}
	b.W[0] = math.Inf(1)
	out := NewTape().MatMul(a, b)
	for j := 0; j < C; j++ {
		if math.IsNaN(out.W[j]) {
			t.Fatalf("training MatMul materialized NaN at [0,%d]: skip-zero semantics lost", j)
		}
	}
	fout := NewForwardFast(nil).MatMul(a, b)
	if !math.IsNaN(fout.W[0]) {
		t.Fatal("fast MatMul skipped 0×Inf; expected IEEE NaN (no skip-zero contract)")
	}
}

// BenchmarkFastKernels compares the fast-math kernels against the
// bitwise blocked kernels on the model's hot shapes; scripts/bench.sh
// records the results in BENCH_infer.json.
func BenchmarkFastKernels(b *testing.B) {
	impls := []struct {
		name string
		fns  map[string]func(out, a, b []float64, r, k, c int)
	}{
		{"exact", map[string]func(out, a, b []float64, r, k, c int){
			"NN": matmul, "NT": matmulNT, "TN": matmulTN,
		}},
		{"fast", map[string]func(out, a, b []float64, r, k, c int){
			"NN": matmulFast, "NT": matmulNTFast, "TN": matmulTNFast,
		}},
	}
	shapes := []struct {
		name    string
		r, k, c int
	}{
		{"shard-lstm", 4, 64, 256},
		{"batch-lstm", 32, 64, 256},
		{"logits", 4, 64, 400},
		{"square", 64, 64, 64},
	}
	for _, kc := range fastKernelCases {
		for _, sh := range shapes {
			r, k, c := sh.r, sh.k, sh.c
			if kc.name == "TN" {
				r, k = k, r
			}
			a := make([]float64, kc.aLen(r, k, c))
			bm := make([]float64, kc.bLen(r, k, c))
			out := make([]float64, r*c)
			rng := rand.New(rand.NewSource(3))
			fillRand(rng, a, 0)
			fillRand(rng, bm, 0)
			flops := float64(2 * r * k * c)
			for _, impl := range impls {
				fn := impl.fns[kc.name]
				b.Run(fmt.Sprintf("%s/%s/%s", kc.name, sh.name, impl.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						fn(out, a, bm, r, k, c)
					}
					b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
				})
			}
		}
	}
}

// TestAttnFastBitwise pins the attention fast ops' assembly dispatch
// (dotFMA striping, axpyFMA) to their pure-Go mirrors bitwise,
// specials included — like the matmul kernels, the fast attention ops
// have no skip-zero test, so a zero weight times an Inf state must
// produce NaN on both paths.
func TestAttnFastBitwise(t *testing.T) {
	if !useFMA {
		t.Skip("host has no FMA; assembly path unreachable")
	}
	r := rand.New(rand.NewSource(43))
	specials := []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1)}
	for trial := 0; trial < 200; trial++ {
		B, T, H := 1+r.Intn(8), 1+r.Intn(12), 1+r.Intn(80)
		dec := make([]float64, B*H)
		enc := make([]float64, B*T*H)
		alpha := make([]float64, B*T)
		for i := range dec {
			dec[i] = r.NormFloat64()
		}
		for i := range enc {
			enc[i] = r.NormFloat64()
		}
		for i := range alpha {
			alpha[i] = r.Float64()
		}
		if trial%3 != 0 {
			enc[r.Intn(len(enc))] = specials[r.Intn(len(specials))]
			alpha[r.Intn(len(alpha))] = specials[r.Intn(len(specials))]
		}
		sAsm, sGo := withFMA(func() []float64 {
			out := make([]float64, B*T)
			attnScoresFast(out, dec, enc, B, T, H)
			return out
		})
		wAsm, wGo := withFMA(func() []float64 {
			out := make([]float64, B*H)
			weightedSumFast(out, alpha, enc, B, T, H)
			return out
		})
		for i := range sAsm {
			if !sameBits(sAsm[i], sGo[i]) {
				t.Fatalf("attnScoresFast B=%d T=%d H=%d: out[%d] asm %g, go %g", B, T, H, i, sAsm[i], sGo[i])
			}
		}
		for i := range wAsm {
			if !sameBits(wAsm[i], wGo[i]) {
				t.Fatalf("weightedSumFast B=%d T=%d H=%d: out[%d] asm %g, go %g", B, T, H, i, wAsm[i], wGo[i])
			}
		}
	}
}

// TestAttnFastAccuracy bounds the attention fast ops' drift from the
// scalar tape references. The striped dot reorders the summation, so
// the bound is the pairwise form: |fast-exact| ≤ 2(H+8)·eps·Σ|terms|.
func TestAttnFastAccuracy(t *testing.T) {
	const eps = 0x1p-52
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		B, T, H := 1+r.Intn(8), 1+r.Intn(12), 1+r.Intn(80)
		dec := make([]float64, B*H)
		enc := make([]float64, B*T*H)
		alpha := make([]float64, B*T)
		fillRand(r, dec, 0)
		fillRand(r, enc, 0)
		for i := range alpha {
			alpha[i] = r.Float64()
		}

		scores := make([]float64, B*T)
		attnScoresFast(scores, dec, enc, B, T, H)
		for b := 0; b < B; b++ {
			for tt := 0; tt < T; tt++ {
				exact, cond := 0.0, 0.0
				for j := 0; j < H; j++ {
					p := dec[b*H+j] * enc[(b*T+tt)*H+j]
					exact += p
					cond += math.Abs(p)
				}
				bound := 2*float64(H+8)*eps*cond + 1e-300
				if d := math.Abs(scores[b*T+tt] - exact); d > bound {
					t.Fatalf("attnScoresFast B=%d T=%d H=%d: [%d,%d] |Δ|=%g > %g", B, T, H, b, tt, d, bound)
				}
			}
		}

		ctx := make([]float64, B*H)
		weightedSumFast(ctx, alpha, enc, B, T, H)
		for b := 0; b < B; b++ {
			for j := 0; j < H; j++ {
				exact, cond := 0.0, 0.0
				for tt := 0; tt < T; tt++ {
					p := alpha[b*T+tt] * enc[(b*T+tt)*H+j]
					exact += p
					cond += math.Abs(p)
				}
				bound := 2*float64(T+8)*eps*cond + 1e-300
				if d := math.Abs(ctx[b*H+j] - exact); d > bound {
					t.Fatalf("weightedSumFast B=%d T=%d H=%d: [%d,%d] |Δ|=%g > %g", B, T, H, b, j, d, bound)
				}
			}
		}
	}
}
