//go:build !amd64

package ad

// Non-amd64 builds run the pure-Go kernels only.

const avxMinC = 8

var useAVX2 = false

func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int) {
	panic("ad: band2pAVX2 called without AVX2 support")
}

func axpyAVX2(o, b *float64, s float64, n int) {
	panic("ad: axpyAVX2 called without AVX2 support")
}
