//go:build !amd64

package ad

// Non-amd64 builds run the pure-Go kernels only.

const avxMinC = 8

var useAVX2 = false

var useFMA = false

func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int) {
	panic("ad: band2pAVX2 called without AVX2 support")
}

func axpyAVX2(o, b *float64, s float64, n int) {
	panic("ad: axpyAVX2 called without AVX2 support")
}

func ntPanelAVX2(s *[16]float64, a0, a1, a2, a3, panel *float64, k int) {
	panic("ad: ntPanelAVX2 called without AVX2 support")
}

func band2pFMA(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int) {
	panic("ad: band2pFMA called without FMA support")
}

func axpyFMA(o, b *float64, s float64, n int) {
	panic("ad: axpyFMA called without FMA support")
}

func ntPanelFMA(s *[16]float64, a0, a1, a2, a3, panel *float64, k int) {
	panic("ad: ntPanelFMA called without FMA support")
}

func dotFMA(a, b *float64, n int) float64 {
	panic("ad: dotFMA called without FMA support")
}

func band2pFMA32(o0, o1, o2, o3, bp, bq *float32, av *[8]float32, n int) {
	panic("ad: band2pFMA32 called without FMA support")
}

func axpyFMA32(o, b *float32, s float32, n int) {
	panic("ad: axpyFMA32 called without FMA support")
}

func dotFMA32(a, b *float32, n int) float32 {
	panic("ad: dotFMA32 called without FMA support")
}

func vexpFMA32(o, x, consts *float32, n int) {
	panic("ad: vexpFMA32 called without FMA support")
}

func vaddFMA32(o, a, b *float32, n int) {
	panic("ad: vaddFMA32 called without FMA support")
}
