package ad

import "sync"

// Dense matmul kernels. Three variants cover the forward pass and both
// backward products of MatMul:
//
//	matmul   : out += A  @ B    A [r,k], B [k,c]   (forward)
//	matmulNT : out += A  @ B^T  A [r,k], B [c,k]   (dA += dOut @ W^T)
//	matmulTN : out += A^T @ B   A [k,r], B [k,c]   (dW += X^T @ dOut)
//
// matmul and matmulTN are band-fused axpy kernels: four rows of out are
// updated together so each streamed row of b is reused four times, and
// the p loop is unrolled 2x so every out element is loaded and stored
// once per two multiply-adds — ~2.4x fewer memory ops per FLOP than the
// scalar kernels, whose inner loops are load/store-port bound. The
// scalar kernels' skip-zero tests on a are hoisted out of the c-wide
// inner loop (one predictable branch per p step instead of one per
// element band), which matters more than register blocking here: a
// data-dependent branch inside the micro-kernel costs more than the
// loads it saves. matmulNT has no skip semantics, so it keeps a classic
// 4x4 register micro-kernel (sixteen independent accumulator chains)
// with a panel-packed b for tall a. Remainder rows and columns fall
// through to the scalar kernels, which double as the oracle reference
// in kernels_test.go.
//
// On amd64 hosts with AVX2 the all-nonzero band fast path and axpy
// dispatch to vector micro-kernels (kernels_amd64.s). Those use
// separate VMULPD/VADDPD — never FMA, whose single rounding would
// diverge from the scalar kernels — so each SIMD lane executes exactly
// the scalar op sequence and the bitwise contract below is preserved.
// Only multi-row (r >= blockDim) calls reach the band kernel: this is
// what batching beam hypotheses into one GEMM buys, since batch-size-1
// matvecs never form a band and stay on the scalar path.
//
// Bitwise contract: every kernel reproduces the scalar kernels' result
// exactly — for each out[i,j], partial products accumulate in ascending-p
// order along a single dependency chain, and the scalar kernels'
// skip-zero tests on A are preserved (so a zero times Inf/NaN stays
// skipped, never materializing a NaN the scalar kernel would not have).
// TestKernelsBitwiseOracle enforces equality on randomized shapes; the
// training determinism guarantee (-j 1 ≡ -j N) rests on it.

// blockDim is the micro-kernel edge: 4 rows x 4 columns of out per block.
const blockDim = 4

// packMinRows gates panel-packing in matmulNT: packing a 4-column panel
// of B costs 4k copies and pays for itself only when it is reused across
// enough row blocks of A.
const packMinRows = 4 * blockDim

// packBuf recycles matmulNT packing panels across calls; kernels run
// concurrently on training shard workers, so the scratch cannot be
// package-global state.
var packBuf = sync.Pool{New: func() any { return new([]float64) }}

// axpy computes o[j] += s * bv[j] over len(bv) elements; s is nonzero.
func axpy(o, bv []float64, s float64) {
	o = o[:len(bv)]
	if useAVX2 && len(bv) >= avxMinC {
		axpyAVX2(&o[0], &bv[0], s, len(bv))
		return
	}
	for j, v := range bv {
		o[j] += s * v
	}
}

// matmul computes out += a@b with out [r,c], a [r,k], b [k,c]; out is
// assumed zeroed (fresh) by callers that need assignment semantics.
func matmul(out, a, b []float64, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		a0 := a[i*k : i*k+k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a0[p], a1[p], a2[p], a3[p]
			av10, av11, av12, av13 := a0[p+1], a1[p+1], a2[p+1], a3[p+1]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if av00 != 0 && av01 != 0 && av02 != 0 && av03 != 0 &&
				av10 != 0 && av11 != 0 && av12 != 0 && av13 != 0 {
				if useAVX2 && c >= avxMinC {
					av := [8]float64{av00, av01, av02, av03, av10, av11, av12, av13}
					band2pAVX2(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
					continue
				}
				for j, bv0 := range bp {
					bv1 := bq[j]
					t0 := o0[j] + av00*bv0
					o0[j] = t0 + av10*bv1
					t1 := o1[j] + av01*bv0
					o1[j] = t1 + av11*bv1
					t2 := o2[j] + av02*bv0
					o2[j] = t2 + av12*bv1
					t3 := o3[j] + av03*bv0
					o3[j] = t3 + av13*bv1
				}
				continue
			}
			// A zero somewhere in the band: per-row axpy keeps each
			// element's ascending-p chain and the scalar skip exactly.
			if av00 != 0 {
				axpy(o0, bp, av00)
			}
			if av10 != 0 {
				axpy(o0, bq, av10)
			}
			if av01 != 0 {
				axpy(o1, bp, av01)
			}
			if av11 != 0 {
				axpy(o1, bq, av11)
			}
			if av02 != 0 {
				axpy(o2, bp, av02)
			}
			if av12 != 0 {
				axpy(o2, bq, av12)
			}
			if av03 != 0 {
				axpy(o3, bp, av03)
			}
			if av13 != 0 {
				axpy(o3, bq, av13)
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			if av := a0[p]; av != 0 {
				axpy(o0, bp, av)
			}
			if av := a1[p]; av != 0 {
				axpy(o1, bp, av)
			}
			if av := a2[p]; av != 0 {
				axpy(o2, bp, av)
			}
			if av := a3[p]; av != 0 {
				axpy(o3, bp, av)
			}
		}
	}
	if ib < r {
		matmulScalar(out[ib*c:], a[ib*k:], b, r-ib, k, c)
	}
}

// matmulNT computes out += a @ b^T with a [r,k], b [c,k], out [r,c].
// For tall a, four rows of b are packed into an interleaved [k x 4]
// panel so the micro-kernel streams one contiguous buffer instead of
// four strided rows; the panel is reused across all row blocks of a.
// On AVX2 hosts the packed panel additionally feeds ntPanelAVX2, whose
// lanes replay the Go panel loop's accumulator chains exactly; packing
// is then worth it for any blocked shape, not just tall a.
func matmulNT(out, a, b []float64, r, k, c int) {
	ib, jb := r-r%blockDim, c-c%blockDim
	var panel []float64
	var panelPtr *[]float64
	if ib > 0 && jb > 0 && (useAVX2 || r >= packMinRows) {
		panelPtr = packBuf.Get().(*[]float64)
		if cap(*panelPtr) < blockDim*k {
			*panelPtr = make([]float64, blockDim*k)
		}
		panel = (*panelPtr)[:blockDim*k]
	}
	for j := 0; j < jb; j += blockDim {
		b0 := b[j*k : j*k+k : j*k+k]
		b1 := b[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
		b2 := b[(j+2)*k : (j+2)*k+k : (j+2)*k+k]
		b3 := b[(j+3)*k : (j+3)*k+k : (j+3)*k+k]
		if panel != nil {
			for p := 0; p < k; p++ {
				panel[4*p] = b0[p]
				panel[4*p+1] = b1[p]
				panel[4*p+2] = b2[p]
				panel[4*p+3] = b3[p]
			}
		}
		for i := 0; i < ib; i += blockDim {
			a0 := a[i*k : i*k+k : i*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			var s20, s21, s22, s23 float64
			var s30, s31, s32, s33 float64
			if panel != nil && useAVX2 && k > 0 {
				var s [16]float64
				ntPanelAVX2(&s, &a0[0], &a1[0], &a2[0], &a3[0], &panel[0], k)
				s00, s01, s02, s03 = s[0], s[1], s[2], s[3]
				s10, s11, s12, s13 = s[4], s[5], s[6], s[7]
				s20, s21, s22, s23 = s[8], s[9], s[10], s[11]
				s30, s31, s32, s33 = s[12], s[13], s[14], s[15]
			} else if panel != nil {
				for p := 0; p < k; p++ {
					v0, v1, v2, v3 := panel[4*p], panel[4*p+1], panel[4*p+2], panel[4*p+3]
					av := a0[p]
					s00 += av * v0
					s01 += av * v1
					s02 += av * v2
					s03 += av * v3
					av = a1[p]
					s10 += av * v0
					s11 += av * v1
					s12 += av * v2
					s13 += av * v3
					av = a2[p]
					s20 += av * v0
					s21 += av * v1
					s22 += av * v2
					s23 += av * v3
					av = a3[p]
					s30 += av * v0
					s31 += av * v1
					s32 += av * v2
					s33 += av * v3
				}
			} else {
				for p := 0; p < k; p++ {
					v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
					av := a0[p]
					s00 += av * v0
					s01 += av * v1
					s02 += av * v2
					s03 += av * v3
					av = a1[p]
					s10 += av * v0
					s11 += av * v1
					s12 += av * v2
					s13 += av * v3
					av = a2[p]
					s20 += av * v0
					s21 += av * v1
					s22 += av * v2
					s23 += av * v3
					av = a3[p]
					s30 += av * v0
					s31 += av * v1
					s32 += av * v2
					s33 += av * v3
				}
			}
			out[i*c+j] += s00
			out[i*c+j+1] += s01
			out[i*c+j+2] += s02
			out[i*c+j+3] += s03
			out[(i+1)*c+j] += s10
			out[(i+1)*c+j+1] += s11
			out[(i+1)*c+j+2] += s12
			out[(i+1)*c+j+3] += s13
			out[(i+2)*c+j] += s20
			out[(i+2)*c+j+1] += s21
			out[(i+2)*c+j+2] += s22
			out[(i+2)*c+j+3] += s23
			out[(i+3)*c+j] += s30
			out[(i+3)*c+j+1] += s31
			out[(i+3)*c+j+2] += s32
			out[(i+3)*c+j+3] += s33
		}
	}
	if panelPtr != nil {
		packBuf.Put(panelPtr)
	}
	// Remainder columns across the blocked rows.
	if jb < c && ib > 0 {
		for i := 0; i < ib; i++ {
			ai := a[i*k : i*k+k : i*k+k]
			oi := out[i*c : i*c+c : i*c+c]
			for j := jb; j < c; j++ {
				bj := b[j*k : j*k+k : j*k+k]
				s := 0.0
				for p := 0; p < k; p++ {
					s += ai[p] * bj[p]
				}
				oi[j] += s
			}
		}
	}
	// Remainder rows.
	if ib < r {
		matmulNTScalar(out[ib*c:], a[ib*k:], b, r-ib, k, c)
	}
}

// matmulTN computes out += a^T @ b with a [k,r], b [k,c], out [r,c].
// Same band-fused axpy shape as matmul; here the four a coefficients of
// a band sit contiguously in a's row p (a[p*r+i..i+3]).
func matmulTN(out, a, b []float64, r, k, c int) {
	ib := r - r%blockDim
	for i := 0; i < ib; i += blockDim {
		o0 := out[i*c : i*c+c : i*c+c]
		o1 := out[(i+1)*c : (i+1)*c+c : (i+1)*c+c]
		o2 := out[(i+2)*c : (i+2)*c+c : (i+2)*c+c]
		o3 := out[(i+3)*c : (i+3)*c+c : (i+3)*c+c]
		p := 0
		for ; p+1 < k; p += 2 {
			av00, av01, av02, av03 := a[p*r+i], a[p*r+i+1], a[p*r+i+2], a[p*r+i+3]
			av10, av11, av12, av13 := a[(p+1)*r+i], a[(p+1)*r+i+1], a[(p+1)*r+i+2], a[(p+1)*r+i+3]
			bp := b[p*c : p*c+c : p*c+c]
			bq := b[(p+1)*c : (p+1)*c+c : (p+1)*c+c]
			if av00 != 0 && av01 != 0 && av02 != 0 && av03 != 0 &&
				av10 != 0 && av11 != 0 && av12 != 0 && av13 != 0 {
				if useAVX2 && c >= avxMinC {
					av := [8]float64{av00, av01, av02, av03, av10, av11, av12, av13}
					band2pAVX2(&o0[0], &o1[0], &o2[0], &o3[0], &bp[0], &bq[0], &av, c)
					continue
				}
				for j, bv0 := range bp {
					bv1 := bq[j]
					t0 := o0[j] + av00*bv0
					o0[j] = t0 + av10*bv1
					t1 := o1[j] + av01*bv0
					o1[j] = t1 + av11*bv1
					t2 := o2[j] + av02*bv0
					o2[j] = t2 + av12*bv1
					t3 := o3[j] + av03*bv0
					o3[j] = t3 + av13*bv1
				}
				continue
			}
			if av00 != 0 {
				axpy(o0, bp, av00)
			}
			if av10 != 0 {
				axpy(o0, bq, av10)
			}
			if av01 != 0 {
				axpy(o1, bp, av01)
			}
			if av11 != 0 {
				axpy(o1, bq, av11)
			}
			if av02 != 0 {
				axpy(o2, bp, av02)
			}
			if av12 != 0 {
				axpy(o2, bq, av12)
			}
			if av03 != 0 {
				axpy(o3, bp, av03)
			}
			if av13 != 0 {
				axpy(o3, bq, av13)
			}
		}
		if p < k { // odd k tail
			bp := b[p*c : p*c+c : p*c+c]
			if av := a[p*r+i]; av != 0 {
				axpy(o0, bp, av)
			}
			if av := a[p*r+i+1]; av != 0 {
				axpy(o1, bp, av)
			}
			if av := a[p*r+i+2]; av != 0 {
				axpy(o2, bp, av)
			}
			if av := a[p*r+i+3]; av != 0 {
				axpy(o3, bp, av)
			}
		}
	}
	// Remainder rows: scalar p-outer axpy over the tail rows of out.
	if ib < r {
		for p := 0; p < k; p++ {
			ap := a[p*r : p*r+r : p*r+r]
			bp := b[p*c : p*c+c : p*c+c]
			for i := ib; i < r; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				axpy(out[i*c:i*c+c:i*c+c], bp, av)
			}
		}
	}
}

// The scalar kernels below are the pre-blocking implementations. They
// serve as the remainder path for dimensions not divisible by blockDim
// and as the bitwise oracle the blocked kernels are tested against.

// matmulScalar is the scalar reference for matmul.
func matmulScalar(out, a, b []float64, r, k, c int) {
	for i := 0; i < r; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*c : (i+1)*c]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*c : (p+1)*c]
			for j := 0; j < c; j++ {
				oi[j] += av * bp[j]
			}
		}
	}
}

// matmulNTScalar is the scalar reference for matmulNT.
func matmulNTScalar(out, a, b []float64, r, k, c int) {
	for i := 0; i < r; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			bj := b[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			oi[j] += s
		}
	}
}

// matmulTNScalar is the scalar reference for matmulTN.
func matmulTNScalar(out, a, b []float64, r, k, c int) {
	for p := 0; p < k; p++ {
		ap := a[p*r : (p+1)*r]
		bp := b[p*c : (p+1)*c]
		for i := 0; i < r; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			oi := out[i*c : (i+1)*c]
			for j := 0; j < c; j++ {
				oi[j] += av * bp[j]
			}
		}
	}
}
