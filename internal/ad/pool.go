package ad

// Pool recycles the storage of forward-only values, keyed by element
// count. Beam search allocates the same tensor shapes at every decode
// step; drawing them from a Pool and releasing them between steps keeps
// a Predict call's allocation footprint bounded by one step's working
// set instead of the whole search (maxLen × width steps).
//
// A Pool is not safe for concurrent use: give each goroutine its own
// (Model.Predict and the parallel evaluators do this internally).
type Pool struct {
	free map[int][]*V
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{free: map[int][]*V{}} }

// get returns a zeroed [r,c] value, reusing released storage of the same
// element count when available. Pooled values carry no gradient storage;
// they only ever live on forward tapes, which never run Backward.
func (p *Pool) get(r, c int) *V {
	n := r * c
	if vs := p.free[n]; len(vs) > 0 {
		v := vs[len(vs)-1]
		p.free[n] = vs[:len(vs)-1]
		v.R, v.C = r, c
		for i := range v.W {
			v.W[i] = 0
		}
		return v
	}
	return &V{R: r, C: c, W: make([]float64, n)}
}

// put returns a value's storage to the pool. The caller must not use v
// after releasing it.
func (p *Pool) put(v *V) {
	if len(v.W) == 0 {
		return
	}
	p.free[len(v.W)] = append(p.free[len(v.W)], v)
}
