package ad

// Pool recycles the storage of forward-only values, keyed by element
// count. Beam search allocates the same tensor shapes at every decode
// step; drawing them from a Pool and releasing them between steps keeps
// a Predict call's allocation footprint bounded by one step's working
// set instead of the whole search (maxLen × width steps).
//
// float64 and float32 storage are recycled through separate free lists
// (a value is one or the other, discriminated by which slice is
// non-empty), so a pool shared across engine tiers never hands f32
// storage to an f64 tape or vice versa.
//
// A Pool is not safe for concurrent use: give each goroutine its own
// (Model.Predict and the parallel evaluators do this internally).
type Pool struct {
	free   map[int][]*V
	free32 map[int][]*V
	// maxElems is the element count of the largest buffer ever drawn
	// from this pool — the high-water mark of the working set. Tests use
	// it to pin memory-footprint properties (e.g. that beam decoding's
	// attention working set is independent of beam width).
	maxElems int
	// maxBytes is the byte size of the largest value buffer ever drawn
	// (8 bytes/elem for float64, 4 for float32; gradient storage not
	// counted). Tests use it to pin that the f32 engine's working set is
	// half the f64 one for the same shapes.
	maxBytes int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{free: map[int][]*V{}, free32: map[int][]*V{}} }

// MaxBufferElems returns the element count of the largest single buffer
// drawn from the pool since creation (recycled or fresh).
func (p *Pool) MaxBufferElems() int { return p.maxElems }

// MaxBufferBytes returns the byte size of the largest single value
// buffer drawn from the pool since creation, accounting for element
// width (float32 buffers count 4 bytes per element, float64 count 8).
func (p *Pool) MaxBufferBytes() int { return p.maxBytes }

// get returns a zeroed [r,c] value, reusing released storage of the same
// element count when available. Values from get carry no gradient
// storage; forward tapes, which never run Backward, use them directly.
func (p *Pool) get(r, c int) *V {
	n := r * c
	if n > p.maxElems {
		p.maxElems = n
	}
	if b := n * 8; b > p.maxBytes {
		p.maxBytes = b
	}
	if v := p.take(n); v != nil {
		v.R, v.C = r, c
		return v
	}
	return &V{R: r, C: c, W: make([]float64, n)}
}

// get32 returns a zeroed [r,c] float32-backed value for single-precision
// forward tapes, recycled through the pool's separate f32 free list.
func (p *Pool) get32(r, c int) *V {
	n := r * c
	if n > p.maxElems {
		p.maxElems = n
	}
	if b := n * 4; b > p.maxBytes {
		p.maxBytes = b
	}
	if v := p.take32(n); v != nil {
		v.R, v.C = r, c
		return v
	}
	return &V{R: r, C: c, W32: make([]float32, n)}
}

// getGrad returns a zeroed [r,c] value with zeroed gradient storage, for
// pooled training tapes. A recycled value that last served a forward
// tape gains its gradient slice here; the pool is shared either way.
func (p *Pool) getGrad(r, c int) *V {
	n := r * c
	if n > p.maxElems {
		p.maxElems = n
	}
	if b := n * 8; b > p.maxBytes {
		p.maxBytes = b
	}
	v := p.take(n)
	if v == nil {
		return New(r, c)
	}
	v.R, v.C = r, c
	if cap(v.G) < n {
		v.G = make([]float64, n)
		return v
	}
	v.G = v.G[:n]
	for i := range v.G {
		v.G[i] = 0
	}
	return v
}

// take pops a free value of element count n with W zeroed, or nil.
func (p *Pool) take(n int) *V {
	vs := p.free[n]
	if len(vs) == 0 {
		return nil
	}
	v := vs[len(vs)-1]
	p.free[n] = vs[:len(vs)-1]
	for i := range v.W {
		v.W[i] = 0
	}
	return v
}

// take32 pops a free float32 value of element count n with W32 zeroed,
// or nil.
func (p *Pool) take32(n int) *V {
	vs := p.free32[n]
	if len(vs) == 0 {
		return nil
	}
	v := vs[len(vs)-1]
	p.free32[n] = vs[:len(vs)-1]
	for i := range v.W32 {
		v.W32[i] = 0
	}
	return v
}

// put returns a value's storage to the pool. The caller must not use v
// after releasing it. float32-only values go to the f32 free list;
// everything else is keyed by its float64 storage.
func (p *Pool) put(v *V) {
	if len(v.W) == 0 {
		if len(v.W32) == 0 {
			return
		}
		p.free32[len(v.W32)] = append(p.free32[len(v.W32)], v)
		return
	}
	p.free[len(v.W)] = append(p.free[len(v.W)], v)
}
