//go:build amd64

#include "textflag.h"

// func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)
//
// For each j: o_r[j] = (o_r[j] + av[r]*bp[j]) + av[4+r]*bq[j], r=0..3.
// VMULPD/VADDPD only — FMA would fuse the two roundings the scalar code
// performs and break bitwise equality with the Go kernels.
TEXT ·band2pAVX2(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast the eight band coefficients once.
	VBROADCASTSD 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSD 8(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSD 16(AX), Y2 // av02 (row 2, column p)
	VBROADCASTSD 24(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSD 32(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSD 40(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSD 48(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSD 56(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // vector loop end (n & ^3)

loop4:
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R12)(DX*8), Y8 // bp[j:j+4]
	VMOVUPD (R13)(DX*8), Y9 // bq[j:j+4]

	// row 0: o = (o + av00*bp) + av10*bq
	VMOVUPD (R8)(DX*8), Y10
	VMULPD  Y8, Y0, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y4, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R8)(DX*8)

	// row 1
	VMOVUPD (R9)(DX*8), Y10
	VMULPD  Y8, Y1, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y5, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R9)(DX*8)

	// row 2
	VMOVUPD (R10)(DX*8), Y10
	VMULPD  Y8, Y2, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y6, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R10)(DX*8)

	// row 3
	VMOVUPD (R11)(DX*8), Y10
	VMULPD  Y8, Y3, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y7, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R11)(DX*8)

	ADDQ $4, DX
	JMP  loop4

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R12)(DX*8), X8
	VMOVSD (R13)(DX*8), X9

	// row 0
	VMOVSD (R8)(DX*8), X10
	VMULSD X8, X0, X11
	VADDSD X11, X10, X10
	VMULSD X9, X4, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R8)(DX*8)

	// row 1
	VMOVSD (R9)(DX*8), X10
	VMULSD X8, X1, X11
	VADDSD X11, X10, X10
	VMULSD X9, X5, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R9)(DX*8)

	// row 2
	VMOVSD (R10)(DX*8), X10
	VMULSD X8, X2, X11
	VADDSD X11, X10, X10
	VMULSD X9, X6, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R10)(DX*8)

	// row 3
	VMOVSD (R11)(DX*8), X10
	VMULSD X8, X3, X11
	VADDSD X11, X10, X10
	VMULSD X9, X7, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R11)(DX*8)

	INCQ DX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpyAVX2(o, b *float64, s float64, n int)
//
// o[j] += s*b[j]; one multiply then one add per element, matching the
// scalar axpy's rounding exactly.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSD s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // 2x-unrolled vector loop end (n & ^7)

loop8:
	CMPQ DX, BX
	JGE  loop4
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	VMOVUPD 32(R9)(DX*8), Y3
	VMULPD  Y3, Y0, Y3
	VMOVUPD 32(R8)(DX*8), Y4
	VADDPD  Y3, Y4, Y4
	VMOVUPD Y4, 32(R8)(DX*8)
	ADDQ    $8, DX
	JMP     loop8

loop4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	ADDQ    $4, DX

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R9)(DX*8), X1
	VMULSD X1, X0, X1
	VMOVSD (R8)(DX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (R8)(DX*8)
	INCQ   DX
	JMP    tail

done:
	VZEROUPPER
	RET

// func ntPanelAVX2(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)
//
// s[4*r+jj] = sum_p a_r[p] * panel[4p+jj], accumulated in ascending-p
// order with separate VMULPD/VADDPD: each lane of Y0..Y3 is one output
// element's single accumulator chain, exactly the Go panel loop's
// s += av*v sequence, so the bitwise contract holds. One VMOVUPD streams
// the packed panel column group; the four a coefficients broadcast.
TEXT ·ntPanelAVX2(SB), NOSPLIT, $0-56
	MOVQ s+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), R12
	MOVQ k+48(FP), CX

	VXORPD Y0, Y0, Y0       // s row 0, columns j..j+3
	VXORPD Y1, Y1, Y1       // s row 1
	VXORPD Y2, Y2, Y2       // s row 2
	VXORPD Y3, Y3, Y3       // s row 3

	XORQ DX, DX             // p

ntloop:
	CMPQ DX, CX
	JGE  ntdone
	VMOVUPD      (R12), Y4  // panel[4p : 4p+4]
	VBROADCASTSD (R8)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD (R9)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y1, Y1
	VBROADCASTSD (R10)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y2, Y2
	VBROADCASTSD (R11)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y3, Y3
	ADDQ         $32, R12
	INCQ         DX
	JMP          ntloop

ntdone:
	VMOVUPD Y0, 0(DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Fast-math inference kernels. Unlike everything above, these use
// VFMADD231: one rounding per multiply-add. They are bitwise-identical
// to the pure-Go math.FMA mirrors in kernels_fast.go, NOT to the scalar
// references, and are reachable only from fast-math forward tapes.
// ---------------------------------------------------------------------

// func band2pFMA(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)
//
// o_r[j] = fma(av[4+r], bq[j], fma(av[r], bp[j], o_r[j])), r=0..3.
TEXT ·band2pFMA(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	VBROADCASTSD 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSD 8(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSD 16(AX), Y2 // av02 (row 2, column p)
	VBROADCASTSD 24(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSD 32(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSD 40(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSD 48(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSD 56(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // vector loop end (n & ^3)

floop4:
	CMPQ DX, BX
	JGE  ftail
	VMOVUPD (R12)(DX*8), Y8 // bp[j:j+4]
	VMOVUPD (R13)(DX*8), Y9 // bq[j:j+4]

	// row 0: o = fma(av10, bq, fma(av00, bp, o))
	VMOVUPD     (R8)(DX*8), Y10
	VFMADD231PD Y8, Y0, Y10
	VFMADD231PD Y9, Y4, Y10
	VMOVUPD     Y10, (R8)(DX*8)

	// row 1
	VMOVUPD     (R9)(DX*8), Y10
	VFMADD231PD Y8, Y1, Y10
	VFMADD231PD Y9, Y5, Y10
	VMOVUPD     Y10, (R9)(DX*8)

	// row 2
	VMOVUPD     (R10)(DX*8), Y10
	VFMADD231PD Y8, Y2, Y10
	VFMADD231PD Y9, Y6, Y10
	VMOVUPD     Y10, (R10)(DX*8)

	// row 3
	VMOVUPD     (R11)(DX*8), Y10
	VFMADD231PD Y8, Y3, Y10
	VFMADD231PD Y9, Y7, Y10
	VMOVUPD     Y10, (R11)(DX*8)

	ADDQ $4, DX
	JMP  floop4

ftail:
	CMPQ DX, CX
	JGE  fdone
	VMOVSD (R12)(DX*8), X8
	VMOVSD (R13)(DX*8), X9

	// row 0
	VMOVSD      (R8)(DX*8), X10
	VFMADD231SD X8, X0, X10
	VFMADD231SD X9, X4, X10
	VMOVSD      X10, (R8)(DX*8)

	// row 1
	VMOVSD      (R9)(DX*8), X10
	VFMADD231SD X8, X1, X10
	VFMADD231SD X9, X5, X10
	VMOVSD      X10, (R9)(DX*8)

	// row 2
	VMOVSD      (R10)(DX*8), X10
	VFMADD231SD X8, X2, X10
	VFMADD231SD X9, X6, X10
	VMOVSD      X10, (R10)(DX*8)

	// row 3
	VMOVSD      (R11)(DX*8), X10
	VFMADD231SD X8, X3, X10
	VFMADD231SD X9, X7, X10
	VMOVSD      X10, (R11)(DX*8)

	INCQ DX
	JMP  ftail

fdone:
	VZEROUPPER
	RET

// func axpyFMA(o, b *float64, s float64, n int)
//
// o[j] = fma(s, b[j], o[j]).
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSD s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // 2x-unrolled vector loop end (n & ^7)

faloop8:
	CMPQ DX, BX
	JGE  faloop4
	VMOVUPD     (R9)(DX*8), Y1
	VMOVUPD     (R8)(DX*8), Y2
	VFMADD231PD Y1, Y0, Y2
	VMOVUPD     Y2, (R8)(DX*8)
	VMOVUPD     32(R9)(DX*8), Y3
	VMOVUPD     32(R8)(DX*8), Y4
	VFMADD231PD Y3, Y0, Y4
	VMOVUPD     Y4, 32(R8)(DX*8)
	ADDQ        $8, DX
	JMP         faloop8

faloop4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  fatail
	VMOVUPD     (R9)(DX*8), Y1
	VMOVUPD     (R8)(DX*8), Y2
	VFMADD231PD Y1, Y0, Y2
	VMOVUPD     Y2, (R8)(DX*8)
	ADDQ        $4, DX

fatail:
	CMPQ DX, CX
	JGE  fadone
	VMOVSD      (R9)(DX*8), X1
	VMOVSD      (R8)(DX*8), X2
	VFMADD231SD X1, X0, X2
	VMOVSD      X2, (R8)(DX*8)
	INCQ        DX
	JMP         fatail

fadone:
	VZEROUPPER
	RET

// func ntPanelFMA(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)
//
// ntPanelAVX2 with fused rounding:
// s[4*r+jj] = fma(a_r[p], panel[4p+jj], s[4*r+jj]) ascending p.
TEXT ·ntPanelFMA(SB), NOSPLIT, $0-56
	MOVQ s+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), R12
	MOVQ k+48(FP), CX

	VXORPD Y0, Y0, Y0       // s row 0, columns j..j+3
	VXORPD Y1, Y1, Y1       // s row 1
	VXORPD Y2, Y2, Y2       // s row 2
	VXORPD Y3, Y3, Y3       // s row 3

	XORQ DX, DX             // p

fntloop:
	CMPQ DX, CX
	JGE  fntdone
	VMOVUPD      (R12), Y4  // panel[4p : 4p+4]
	VBROADCASTSD (R8)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD (R9)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y1
	VBROADCASTSD (R10)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD (R11)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y3
	ADDQ         $32, R12
	INCQ         DX
	JMP          fntloop

fntdone:
	VMOVUPD Y0, 0(DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dotFMA(a, b *float64, n int) float64
//
// Striped fused dot product: eight accumulator lanes (two Y registers)
// walk the vectors in steps of 8, then lane l of the step-8 prefix is
// reduced as ((A0+A2)+(A1+A3)) with A_l = acc[l]+acc[l+4], and the
// scalar n%8 tail accumulates on its own fused chain added last. The
// pure-Go fallback in kernels_fast.go mirrors this exact order.
TEXT ·dotFMA(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+16(FP), CX

	VXORPD Y0, Y0, Y0       // acc[0..3]
	VXORPD Y1, Y1, Y1       // acc[4..7]
	VXORPD X5, X5, X5       // scalar tail accumulator

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // vector loop end (n & ^7)

dloop8:
	CMPQ DX, BX
	JGE  dtail
	VMOVUPD     (R8)(DX*8), Y2
	VMOVUPD     (R9)(DX*8), Y3
	VFMADD231PD Y3, Y2, Y0
	VMOVUPD     32(R8)(DX*8), Y2
	VMOVUPD     32(R9)(DX*8), Y3
	VFMADD231PD Y3, Y2, Y1
	ADDQ        $8, DX
	JMP         dloop8

dtail:
	CMPQ DX, CX
	JGE  dreduce
	VMOVSD      (R8)(DX*8), X2
	VMOVSD      (R9)(DX*8), X3
	VFMADD231SD X3, X2, X5
	INCQ        DX
	JMP         dtail

dreduce:
	VADDPD       Y1, Y0, Y0 // A_l = acc[l] + acc[l+4]
	VEXTRACTF128 $1, Y0, X1 // X1 = (A2, A3)
	VADDPD       X1, X0, X0 // (A0+A2, A1+A3)
	VHADDPD      X0, X0, X0 // (A0+A2)+(A1+A3)
	VADDSD       X5, X0, X0 // + tail chain
	VMOVSD       X0, ret+24(FP)
	VZEROUPPER
	RET
